(* Benchmark & experiment harness.

   Default: regenerate every table and figure of the paper (plus the
   ablations) and print them.

     dune exec bench/main.exe                   # everything
     dune exec bench/main.exe -- table2         # one experiment
     dune exec bench/main.exe -- --json         # everything, as one JSON
                                                # document (Report schema)
     dune exec bench/main.exe -- --json fig6    # a subset, as JSON
     dune exec bench/main.exe -- bechamel       # Bechamel timings of the
                                                # regeneration of each table

   -j N / --jobs N (default: physical cores) shards the experiment cells
   over a work-stealing domain pool; the experiments member of --json
   output is byte-identical at every -j level (only the "runtime"
   section varies).

   Every compile is checked by the static speculation-safety verifier
   (lib/verify) and aborts the run on a violation; --no-verify skips the
   check to save compile time in exploratory sweeps.

   Experiments: table2 table3 fig6 fig7 fig8 shadow validation counter btb
   related dup size unroll sweep limits hwcost *)

open Psb_eval
module Pool = Psb_parallel.Pool
module Hwcost = Psb_machine.Hwcost

let jobs = ref (Pool.default_jobs ())
let verify = ref true
let pool = lazy (if !jobs > 1 then Some (Pool.create ~jobs:!jobs ()) else None)
let h = lazy (Harness.create ?pool:(Lazy.force pool) ~verify:!verify ())

let experiments : (string * string * (Format.formatter -> unit)) list =
  [
    ( "table2",
      "benchmark programs (lines, scalar cycles)",
      fun ppf -> Experiments.pp_table2 ppf (Experiments.table2 (Lazy.force h)) );
    ( "table3",
      "prediction accuracy of successive branches",
      fun ppf -> Experiments.pp_table3 ppf (Experiments.table3 (Lazy.force h)) );
    ( "fig6",
      "restricted speculative execution models",
      fun ppf ->
        Experiments.pp_speedups ~title:"Figure 6: restricted models" ppf
          (Experiments.figure6 (Lazy.force h)) );
    ( "fig7",
      "predicating vs conventional speculative execution",
      fun ppf ->
        Experiments.pp_speedups ~title:"Figure 7: predicating models" ppf
          (Experiments.figure7 (Lazy.force h)) );
    ( "fig8",
      "full-issue machines x speculation depth",
      fun ppf -> Experiments.pp_figure8 ppf (Experiments.figure8 (Lazy.force h)) );
    ( "related",
      "the 2.2 related-work mechanism spectrum",
      fun ppf ->
        Experiments.pp_speedups ~title:"Related-work spectrum (2.2)" ppf
          (Experiments.related_work (Lazy.force h)) );
    ( "shadow",
      "single vs infinite shadow registers (fn.1)",
      fun ppf ->
        Experiments.pp_shadow ppf (Experiments.shadow_ablation (Lazy.force h)) );
    ( "validation",
      "estimated vs machine-measured cycles",
      fun ppf ->
        Experiments.pp_validation ppf (Experiments.validation (Lazy.force h)) );
    ( "counter",
      "vector vs counter predicate representation (4.2.1)",
      fun ppf ->
        Experiments.pp_counter ppf (Experiments.counter_ablation (Lazy.force h)) );
    ( "btb",
      "region-transition penalty (BTB optimism)",
      fun ppf -> Experiments.pp_btb ppf (Experiments.btb_ablation (Lazy.force h)) );
    ( "dup",
      "join duplication vs commit dependences (4.2.2)",
      fun ppf -> Experiments.pp_dup ppf (Experiments.dup_ablation (Lazy.force h)) );
    ( "size",
      "static code growth per model",
      fun ppf -> Experiments.pp_size ppf (Experiments.code_growth (Lazy.force h)) );
    ( "unroll",
      "loop unrolling on the 8-issue machine (future work)",
      fun ppf ->
        Experiments.pp_unroll ppf (Experiments.unroll_ablation (Lazy.force h)) );
    ( "sweep",
      "synthetic branch-predictability sweep",
      fun ppf ->
        Experiments.pp_sweep ppf
          (Experiments.predictability_sweep ?pool:(Lazy.force pool) ()) );
    ( "limits",
      "ILP limit study (block vs oracle, the paper's motivation)",
      fun ppf -> Limits.pp ppf (Limits.analyze_suite ()) );
    ( "hwcost",
      "hardware cost model (4.2.1)",
      fun ppf -> Hwcost.pp_report ppf (Hwcost.analyze Hwcost.default) );
  ]

let usage_error name =
  Format.eprintf "unknown experiment %s; available: %s@." name
    (String.concat " " (List.map (fun (n, _, _) -> n) experiments));
  exit 2

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, _, f) ->
      f Format.std_formatter;
      Format.printf "@."
  | None -> usage_error name

let run_all () =
  List.iter
    (fun (name, desc, f) ->
      Format.printf "== %s: %s ==@." name desc;
      f Format.std_formatter;
      Format.printf "@.@.")
    experiments

(* Bechamel timings: one Test.make per table/figure, timing its full
   regeneration against a null formatter. *)
let run_bechamel () =
  let open Bechamel in
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) ignore in
  let tests =
    List.map
      (fun (name, _, f) -> Test.make ~name (Staged.stage (fun () -> f null_ppf)))
      experiments
  in
  let test = Test.make_grouped ~name:"experiments" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Format.printf "%-40s %14.0f ns/run@." name est
         | Some _ | None -> Format.printf "%-40s (no estimate)@." name)

let run_json names =
  let names = if names = [] then Report.experiment_names else names in
  List.iter
    (fun n -> if not (List.mem n Report.experiment_names) then usage_error n)
    names;
  let doc = Report.all ~names ~runtime:true (Lazy.force h) in
  print_endline (Psb_obs.Json.to_string doc)

(* Strip -j N / --jobs N / -jN (setting [jobs]) and --no-verify (clearing
   [verify]) from anywhere in argv. *)
let parse_jobs args =
  let set n =
    match int_of_string_opt n with
    | Some v when v >= 1 -> jobs := v
    | Some _ | None ->
        Format.eprintf "bench: -j expects a positive integer, got %s@." n;
        exit 2
  in
  let rec go acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: [] ->
        Format.eprintf "bench: -j expects an argument@.";
        exit 2
    | ("-j" | "--jobs") :: n :: rest ->
        set n;
        go acc rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        set (String.sub a 2 (String.length a - 2));
        go acc rest
    | "--no-verify" :: rest ->
        verify := false;
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  Fun.protect
    ~finally:(fun () ->
      if Lazy.is_val pool then Option.iter Pool.shutdown (Lazy.force pool))
    (fun () ->
      match args with
      | [] -> run_all ()
      | [ "bechamel" ] -> run_bechamel ()
      | "--json" :: names -> run_json names
      | names -> List.iter run_one names)
