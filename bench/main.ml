(* Benchmark & experiment harness.

   Default: regenerate every table and figure of the paper (plus the
   ablations) and print them.

     dune exec bench/main.exe                   # everything
     dune exec bench/main.exe -- table2         # one experiment
     dune exec bench/main.exe -- --json         # everything, as one JSON
                                                # document (Report schema)
     dune exec bench/main.exe -- --json fig6    # a subset, as JSON
     dune exec bench/main.exe -- bechamel       # Bechamel timings: table
                                                # regeneration + kernels
     dune exec bench/main.exe -- bechamel --json pred_kernel
                                                # one bench group, as JSON
     dune exec bench/main.exe -- --baseline BENCH_5.json --threshold 50
                                                # regression gate: re-run the
                                                # baseline's bench groups and
                                                # exit 1 past the threshold

   -j N / --jobs N (default: physical cores) shards the experiment cells
   over a work-stealing domain pool; the experiments member of --json
   output is byte-identical at every -j level (only the "runtime"
   section varies).

   Every compile is checked by the static speculation-safety verifier
   (lib/verify) and aborts the run on a violation; --no-verify skips the
   check to save compile time in exploratory sweeps.

   Experiments: table2 table3 fig6 fig7 fig8 shadow validation counter btb
   related dup size unroll sweep limits limits-gen hwcost *)

open Psb_eval
module Pool = Psb_parallel.Pool
module Hwcost = Psb_machine.Hwcost

let jobs = ref (Pool.default_jobs ())
let verify = ref true
let baseline_file : string option ref = ref None
let threshold = ref 50.
let pool = lazy (if !jobs > 1 then Some (Pool.create ~jobs:!jobs ()) else None)
let h = lazy (Harness.create ?pool:(Lazy.force pool) ~verify:!verify ())

let experiments : (string * string * (Format.formatter -> unit)) list =
  [
    ( "table2",
      "benchmark programs (lines, scalar cycles)",
      fun ppf -> Experiments.pp_table2 ppf (Experiments.table2 (Lazy.force h)) );
    ( "table3",
      "prediction accuracy of successive branches",
      fun ppf -> Experiments.pp_table3 ppf (Experiments.table3 (Lazy.force h)) );
    ( "fig6",
      "restricted speculative execution models",
      fun ppf ->
        Experiments.pp_speedups ~title:"Figure 6: restricted models" ppf
          (Experiments.figure6 (Lazy.force h)) );
    ( "fig7",
      "predicating vs conventional speculative execution",
      fun ppf ->
        Experiments.pp_speedups ~title:"Figure 7: predicating models" ppf
          (Experiments.figure7 (Lazy.force h)) );
    ( "fig8",
      "full-issue machines x speculation depth",
      fun ppf -> Experiments.pp_figure8 ppf (Experiments.figure8 (Lazy.force h)) );
    ( "related",
      "the 2.2 related-work mechanism spectrum",
      fun ppf ->
        Experiments.pp_speedups ~title:"Related-work spectrum (2.2)" ppf
          (Experiments.related_work (Lazy.force h)) );
    ( "shadow",
      "single vs infinite shadow registers (fn.1)",
      fun ppf ->
        Experiments.pp_shadow ppf (Experiments.shadow_ablation (Lazy.force h)) );
    ( "validation",
      "estimated vs machine-measured cycles",
      fun ppf ->
        Experiments.pp_validation ppf (Experiments.validation (Lazy.force h)) );
    ( "counter",
      "vector vs counter predicate representation (4.2.1)",
      fun ppf ->
        Experiments.pp_counter ppf (Experiments.counter_ablation (Lazy.force h)) );
    ( "btb",
      "region-transition penalty (BTB optimism)",
      fun ppf -> Experiments.pp_btb ppf (Experiments.btb_ablation (Lazy.force h)) );
    ( "dup",
      "join duplication vs commit dependences (4.2.2)",
      fun ppf -> Experiments.pp_dup ppf (Experiments.dup_ablation (Lazy.force h)) );
    ( "size",
      "static code growth per model",
      fun ppf -> Experiments.pp_size ppf (Experiments.code_growth (Lazy.force h)) );
    ( "unroll",
      "loop unrolling on the 8-issue machine (future work)",
      fun ppf ->
        Experiments.pp_unroll ppf (Experiments.unroll_ablation (Lazy.force h)) );
    ( "sweep",
      "synthetic branch-predictability sweep",
      fun ppf ->
        Experiments.pp_sweep ppf
          (Experiments.predictability_sweep ?pool:(Lazy.force pool) ()) );
    ( "limits",
      "ILP limit study (block vs oracle vs value oracle, the paper's motivation)",
      fun ppf -> Limits.pp ppf (Limits.analyze_suite ()) );
    ( "limits-gen",
      "ILP limit study over the random-generator fleet",
      fun ppf ->
        Limits.pp ppf (Psb_proptest.Fuzz.limits_fleet ~n:8 ~seed:7 ()) );
    ( "hwcost",
      "hardware cost model (4.2.1)",
      fun ppf -> Hwcost.pp_report ppf (Hwcost.analyze Hwcost.default) );
    ( "rob",
      "rival out-of-order (reorder-buffer) backend vs scalar",
      fun ppf -> Experiments.pp_rob ppf (Experiments.rob_rival (Lazy.force h)) );
  ]

let usage_error name =
  Format.eprintf "unknown experiment %s; available: %s@." name
    (String.concat " " (List.map (fun (n, _, _) -> n) experiments));
  exit 2

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, _, f) ->
      f Format.std_formatter;
      Format.printf "@."
  | None -> usage_error name

let run_all () =
  List.iter
    (fun (name, desc, f) ->
      Format.printf "== %s: %s ==@." name desc;
      f Format.std_formatter;
      Format.printf "@.@.")
    experiments

(* ----- pred_kernel microbenches -----

   Per-cycle predicate evaluation: the compiled bitmask kernel vs the
   reference map walk, on the two structures that re-evaluate predicates
   every cycle (register-file versions, store-buffer entries). All
   predicates mention only unspecified conditions so every tick stays
   Unspec and the timed state survives arbitrarily many iterations;
   [gated] variants pass [dirty:0] to measure the skip fast path. *)
module Pred_bench = struct
  open Psb_isa
  module Regfile = Psb_machine.Regfile
  module Store_buffer = Psb_machine.Store_buffer
  module Ccr = Psb_machine.Ccr
  module Pred_kernel = Psb_machine.Pred_kernel

  let entries = 16

  let pred i =
    Pred.of_list
      [ (Cond.make (i mod 4), true); (Cond.make (4 + (i mod 4)), i mod 2 = 0) ]

  let ccr = lazy (Ccr.create ~width:8)

  let rf =
    lazy
      (let rf = Regfile.create ~mode:Regfile.Single ~nregs:entries () in
       for i = 0 to entries - 1 do
         match
           Regfile.write_spec rf (Reg.make i) i
             ~cpred:(Pred.compile (pred i)) ~fault:None
         with
         | `Ok -> ()
         | `Conflict -> assert false
       done;
       rf)

  let sb =
    lazy
      (let sb = Store_buffer.create () in
       for i = 0 to entries - 1 do
         Store_buffer.append sb ~addr:i ~value:i
           ~cpred:(Pred.compile (pred i)) ~spec:true ~fault:None
       done;
       sb)

  let tests () =
    let open Bechamel in
    let t name f = Test.make ~name (Staged.stage f) in
    let rf_tick ~mode ~dirty () =
      ignore (Regfile.tick ~mode ~dirty (Lazy.force rf) (Lazy.force ccr))
    and sb_tick ~mode ~dirty () =
      ignore (Store_buffer.tick ~mode ~dirty (Lazy.force sb) (Lazy.force ccr))
    in
    let cp = lazy (Pred.compile (pred 0)) in
    Test.make_grouped ~name:"pred_kernel"
      [
        t "eval/mask" (fun () ->
            ignore (Ccr.evalc (Lazy.force ccr) (Lazy.force cp)));
        t "eval/map" (fun () ->
            ignore (Ccr.eval (Lazy.force ccr) (pred 0)));
        t "rf_tick/mask" (rf_tick ~mode:Pred_kernel.Mask ~dirty:(-1));
        t "rf_tick/mask_gated" (rf_tick ~mode:Pred_kernel.Mask ~dirty:0);
        t "rf_tick/map" (rf_tick ~mode:Pred_kernel.Map ~dirty:(-1));
        t "sb_tick/mask" (sb_tick ~mode:Pred_kernel.Mask ~dirty:(-1));
        t "sb_tick/mask_gated" (sb_tick ~mode:Pred_kernel.Mask ~dirty:0);
        t "sb_tick/map" (sb_tick ~mode:Pred_kernel.Map ~dirty:(-1));
      ]
end

(* ----- events microbenches -----

   The structured event log must be free when absent and cheap when
   attached: [emit] is the raw ring cost (alloc-free, overwrite past
   capacity), and the tick pairs run the same all-Unspec per-cycle state
   with and without a ring attached — the delta is the cost of the
   [?events] option check on the hot path, which the zero-overhead claim
   says is a pointer test. *)
module Events_bench = struct
  open Psb_isa
  module Regfile = Psb_machine.Regfile
  module Store_buffer = Psb_machine.Store_buffer
  module Pred_kernel = Psb_machine.Pred_kernel
  module Events = Psb_obs.Events

  let ring = lazy (Events.create ~capacity:4096 ())

  let make_rf events =
    let rf =
      Regfile.create ~mode:Regfile.Single ?events ~nregs:Pred_bench.entries ()
    in
    for i = 0 to Pred_bench.entries - 1 do
      match
        Regfile.write_spec rf (Reg.make i) i
          ~cpred:(Pred.compile (Pred_bench.pred i))
          ~fault:None
      with
      | `Ok -> ()
      | `Conflict -> assert false
    done;
    rf

  let make_sb events =
    let sb = Store_buffer.create ?events () in
    for i = 0 to Pred_bench.entries - 1 do
      Store_buffer.append sb ~addr:i ~value:i
        ~cpred:(Pred.compile (Pred_bench.pred i))
        ~spec:true ~fault:None
    done;
    sb

  let rf_plain = lazy (make_rf None)
  let rf_events = lazy (make_rf (Some (Lazy.force ring)))
  let sb_plain = lazy (make_sb None)
  let sb_events = lazy (make_sb (Some (Lazy.force ring)))

  let tests () =
    let open Bechamel in
    let t name f = Test.make ~name (Staged.stage f) in
    let tick_rf rf () =
      ignore
        (Regfile.tick ~mode:Pred_kernel.Mask ~dirty:(-1) (Lazy.force rf)
           (Lazy.force Pred_bench.ccr))
    and tick_sb sb () =
      ignore
        (Store_buffer.tick ~mode:Pred_kernel.Mask ~dirty:(-1) (Lazy.force sb)
           (Lazy.force Pred_bench.ccr))
    in
    Test.make_grouped ~name:"events"
      [
        t "emit" (fun () ->
            Events.emit (Lazy.force ring) ~cycle:0 Events.Issue ~a:1 ~b:0);
        t "rf_tick/no_events" (tick_rf rf_plain);
        t "rf_tick/events" (tick_rf rf_events);
        t "sb_tick/no_events" (tick_sb sb_plain);
        t "sb_tick/events" (tick_sb sb_events);
      ]
end

(* ----- execution-kernel microbenches -----

   Whole-workload simulation under the two execution kernels:
   [sim/lowered] walks the flat structure-of-arrays form of
   [Psb_machine.Lowered] (the default), [sim/tree] re-walks the
   [Pcode.bundle] slot lists every cycle (the differential-testing
   reference). The compile — and the lowering cached inside it — is
   shared by both rows, so the delta is purely the per-cycle issue-phase
   cost. [lower] prices the one-time lowering pass itself, to show it is
   amortised after a handful of simulated cycles. *)
module Lowered_bench = struct
  module Driver = Psb_compiler.Driver
  module Model = Psb_compiler.Model
  module Machine_model = Psb_machine.Machine_model
  module Lowered = Psb_machine.Lowered
  module Exec_kernel = Psb_machine.Exec_kernel
  module Suite = Psb_workloads.Suite
  module Dsl = Psb_workloads.Dsl

  let w = lazy (Suite.find "compress")

  let compiled =
    lazy
      (let w = Lazy.force w in
       let _, profile =
         Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs
           ~mem:(w.Dsl.make_mem ())
       in
       Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
         ~profile w.Dsl.program)

  let run kernel () =
    let w = Lazy.force w in
    ignore
      (Driver.run_vliw ~exec_kernel:kernel (Lazy.force compiled)
         ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()))

  let tests () =
    let open Bechamel in
    let t name f = Test.make ~name (Staged.stage f) in
    Test.make_grouped ~name:"lowered"
      [
        t "sim/lowered" (run Exec_kernel.Lowered);
        t "sim/tree" (run Exec_kernel.Tree);
        t "lower" (fun () ->
            let c = Lazy.force compiled in
            match c.Driver.pcode with
            | Some code -> ignore (Lowered.compile ~machine:c.Driver.machine code)
            | None -> assert false);
      ]
end

(* ----- rival-backend microbenches -----

   Whole-workload simulation cost of the three backends on the same
   program: the scalar reference interpreter, the out-of-order
   reorder-buffer backend, and the predicating VLIW machine (lowered
   kernel, sharing [Lowered_bench]'s cached compile). The ROB row prices
   the per-cycle dispatch/issue/complete/commit walk — the simulator's
   hot loop — so regressions in the rival model's throughput gate like
   any other kernel. *)
module Rob_bench = struct
  module Rob_sim = Psb_machine.Rob_sim
  module Machine_model = Psb_machine.Machine_model
  module Interp = Psb_isa.Interp
  module Suite = Psb_workloads.Suite
  module Dsl = Psb_workloads.Dsl

  let w = lazy (Suite.find "compress")

  let tests () =
    let open Bechamel in
    let t name f = Test.make ~name (Staged.stage f) in
    Test.make_grouped ~name:"rob"
      [
        t "sim/rob" (fun () ->
            let w = Lazy.force w in
            ignore
              (Rob_sim.run ~model:Machine_model.base ~regs:w.Dsl.regs
                 ~mem:(w.Dsl.make_mem ()) w.Dsl.program));
        t "sim/scalar" (fun () ->
            let w = Lazy.force w in
            ignore
              (Interp.run ~record_trace:false ~regs:w.Dsl.regs
                 ~mem:(w.Dsl.make_mem ()) w.Dsl.program));
        t "sim/vliw" (Lowered_bench.run Psb_machine.Exec_kernel.Lowered);
      ]
end

(* ----- predecode microbenches -----

   Whole-workload cost of the two scalar kernels on both scalar
   backends: the predecoded flat walk ([Decoded.of_program], the
   default) against the tree-walking reference, on the interpreter and
   on the ROB machine, plus the one-time decode itself. The decoded
   rows price the per-instruction array walk — the hot loop of every
   profile run and every fuzz trial — so a slow-down gates like any
   other kernel. Traces are off: these rows measure the kernel, not the
   trace cells. *)
module Decoded_bench = struct
  module Rob_sim = Psb_machine.Rob_sim
  module Machine_model = Psb_machine.Machine_model
  module Interp = Psb_isa.Interp
  module Decoded = Psb_isa.Decoded
  module Scalar_kernel = Psb_isa.Scalar_kernel
  module Suite = Psb_workloads.Suite
  module Dsl = Psb_workloads.Dsl

  let w = lazy (Suite.find "compress")
  let decoded = lazy (Decoded.of_program (Lazy.force w).Dsl.program)

  let interp kernel () =
    let w = Lazy.force w in
    ignore
      (Interp.run ~record_trace:false ~kernel ~decoded:(Lazy.force decoded)
         ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program)

  let rob kernel () =
    let w = Lazy.force w in
    ignore
      (Rob_sim.run ~kernel ~decoded:(Lazy.force decoded)
         ~model:Machine_model.base ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
         w.Dsl.program)

  let tests () =
    let open Bechamel in
    let t name f = Test.make ~name (Staged.stage f) in
    Test.make_grouped ~name:"decoded"
      [
        t "interp/decoded" (interp Scalar_kernel.Decoded);
        t "interp/tree" (interp Scalar_kernel.Tree);
        t "rob/decoded" (rob Scalar_kernel.Decoded);
        t "rob/tree" (rob Scalar_kernel.Tree);
        t "decode" (fun () ->
            let w = Lazy.force w in
            ignore (Decoded.of_program w.Dsl.program));
      ]
end

(* Bechamel timings. Groups: [experiments] times the full regeneration of
   each table/figure against a null formatter; [pred_kernel] times the
   per-cycle predicate-evaluation kernels; [events] times the structured
   event log against the machine hot paths; [lowered] times whole-workload
   simulation under the lowered vs tree execution kernels; [rob] times the
   rival reorder-buffer backend against the scalar and VLIW simulators;
   [decoded] times the predecoded vs tree scalar kernels on both scalar
   backends, plus the decode pass itself. *)
let bench_groups : (string * (unit -> Bechamel.Test.t)) list =
  [
    ( "experiments",
      fun () ->
        let open Bechamel in
        let null_ppf = Format.make_formatter (fun _ _ _ -> ()) ignore in
        Test.make_grouped ~name:"experiments"
          (List.map
             (fun (name, _, f) ->
               Test.make ~name (Staged.stage (fun () -> f null_ppf)))
             experiments) );
    ("pred_kernel", Pred_bench.tests);
    ("events", Events_bench.tests);
    ("lowered", Lowered_bench.tests);
    ("rob", Rob_bench.tests);
    ("decoded", Decoded_bench.tests);
  ]

let bench_usage_error name =
  Format.eprintf "unknown bench group %s; available: %s@." name
    (String.concat " " (List.map fst bench_groups));
  exit 2

(* [(test name, ns/run, minor words/run)] rows of one group. *)
let bench_group name =
  let open Bechamel in
  let mk =
    match List.assoc_opt name bench_groups with
    | Some mk -> mk
    | None -> bench_usage_error name
  in
  let instances = Toolkit.Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances (mk ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let estimate instance n =
    match Analyze.OLS.estimates (Analyze.one ols instance (Hashtbl.find raw n)) with
    | Some [ est ] -> est
    | Some _ | None -> Float.nan
  in
  Hashtbl.fold (fun n _ acc -> n :: acc) raw []
  |> List.sort compare
  |> List.map (fun n ->
         ( n,
           estimate Toolkit.Instance.monotonic_clock n,
           estimate Toolkit.Instance.minor_allocated n ))

(* [(group name, rows)] as a psb-bechamel-v1 document — the shape both
   [bechamel --json] emits and [--baseline] compares against. *)
let bechamel_doc groups =
  Psb_obs.Json.obj
    [
      ("schema", Psb_obs.Json.String "psb-bechamel-v1");
      ( "groups",
        Psb_obs.Json.List
          (List.map
             (fun (name, rows) ->
               Psb_obs.Json.obj
                 [
                   ("name", Psb_obs.Json.String name);
                   ( "results",
                     Psb_obs.Json.List
                       (List.map
                          (fun (n, ns, words) ->
                            Psb_obs.Json.obj
                              [
                                ("name", Psb_obs.Json.String n);
                                ("ns_per_run", Psb_obs.Json.Float ns);
                                ( "minor_words_per_run",
                                  Psb_obs.Json.Float words );
                              ])
                          rows) );
                 ])
             groups) );
    ]

let run_bechamel ~json names =
  let names = if names = [] then List.map fst bench_groups else names in
  List.iter
    (fun n -> if not (List.mem_assoc n bench_groups) then bench_usage_error n)
    names;
  let groups = List.map (fun n -> (n, bench_group n)) names in
  if json then
    print_endline (Psb_obs.Json.to_string (bechamel_doc groups))
  else
    List.iter
      (fun (name, rows) ->
        Format.printf "== %s ==@." name;
        List.iter
          (fun (n, ns, words) ->
            Format.printf "%-40s %14.1f ns/run %10.1f mw/run@." n ns words)
          rows;
        Format.printf "@.")
      groups

(* Regression gate: re-measure exactly the bench groups the baseline
   document names, compare ns/run per benchmark, and exit 1 on any
   slowdown past the threshold (or a vanished benchmark). *)
let run_baseline file =
  let contents =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error msg ->
      Format.eprintf "bench: cannot read baseline: %s@." msg;
      exit 2
  in
  let baseline =
    match Baseline.of_string contents with
    | Ok d -> d
    | Error msg ->
        Format.eprintf "bench: %s: %s@." file msg;
        exit 2
  in
  let known, unknown =
    List.partition (fun n -> List.mem_assoc n bench_groups) (Baseline.groups baseline)
  in
  if unknown <> [] then
    Format.eprintf "bench: baseline names unknown bench groups: %s@."
      (String.concat " " unknown);
  if known = [] then begin
    Format.eprintf "bench: baseline %s names no runnable bench groups@." file;
    exit 2
  end;
  let current =
    match
      Baseline.of_json (bechamel_doc (List.map (fun n -> (n, bench_group n)) known))
    with
    | Ok d -> d
    | Error msg ->
        Format.eprintf "bench: internal error building current document: %s@." msg;
        exit 2
  in
  let report =
    Baseline.compare_docs ~threshold_pct:!threshold ~baseline ~current
  in
  Format.printf "%a" Baseline.pp report;
  if not (Baseline.ok report) then exit 1

let run_json names =
  let names = if names = [] then Report.experiment_names else names in
  List.iter
    (fun n -> if not (List.mem n Report.experiment_names) then usage_error n)
    names;
  let doc = Report.all ~names ~runtime:true (Lazy.force h) in
  print_endline (Psb_obs.Json.to_string doc)

(* Strip -j N / --jobs N / -jN (setting [jobs]), --no-verify (clearing
   [verify]), --baseline FILE and --threshold PCT from anywhere in
   argv. *)
let parse_jobs args =
  let set n =
    match int_of_string_opt n with
    | Some v when v >= 1 -> jobs := v
    | Some _ | None ->
        Format.eprintf "bench: -j expects a positive integer, got %s@." n;
        exit 2
  in
  let rec go acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: [] ->
        Format.eprintf "bench: -j expects an argument@.";
        exit 2
    | ("-j" | "--jobs") :: n :: rest ->
        set n;
        go acc rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        set (String.sub a 2 (String.length a - 2));
        go acc rest
    | "--no-verify" :: rest ->
        verify := false;
        go acc rest
    | "--baseline" :: [] ->
        Format.eprintf "bench: --baseline expects a file@.";
        exit 2
    | "--baseline" :: f :: rest ->
        baseline_file := Some f;
        go acc rest
    | "--threshold" :: [] ->
        Format.eprintf "bench: --threshold expects a percentage@.";
        exit 2
    | "--threshold" :: p :: rest ->
        (match float_of_string_opt p with
        | Some v when v > 0. -> threshold := v
        | Some _ | None ->
            Format.eprintf
              "bench: --threshold expects a positive percentage, got %s@." p;
            exit 2);
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  Fun.protect
    ~finally:(fun () ->
      if Lazy.is_val pool then Option.iter Pool.shutdown (Lazy.force pool))
    (fun () ->
      match (!baseline_file, args) with
      | Some f, [] -> run_baseline f
      | Some _, _ ->
          Format.eprintf "bench: --baseline takes no experiment arguments@.";
          exit 2
      | None, args -> (
      match args with
      | [] -> run_all ()
      | "bechamel" :: rest ->
          let json, names =
            match rest with
            | "--json" :: names -> (true, names)
            | names -> (false, names)
          in
          run_bechamel ~json names
      | "--json" :: names -> run_json names
      | names -> List.iter run_one names))
