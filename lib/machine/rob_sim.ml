open Psb_isa
module Events = Psb_obs.Events
module Metrics = Psb_obs.Metrics

type stats = {
  fetched : int;
  committed : int;
  squashed : int;
  branches : int;
  mispredicts : int;
  loads_forwarded : int;
  squashed_faults : int;
  fault_restarts : int;
  rob_max_occupancy : int;
  rob_full_stalls : int;
}

type breakdown = {
  rb_fault : int;
  rb_commit : int;
  rb_flush : int;
  rb_mem : int;
  rb_frontend : int;
  rb_exec : int;
}

let breakdown_fields b =
  [
    ("fault_restart", b.rb_fault);
    ("commit", b.rb_commit);
    ("redirect_flush", b.rb_flush);
    ("memory_wait", b.rb_mem);
    ("frontend", b.rb_frontend);
    ("execute", b.rb_exec);
  ]

let breakdown_total b =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (breakdown_fields b)

let pp_breakdown ppf b =
  let total = breakdown_total b in
  let pct v =
    if total = 0 then 0. else 100. *. float_of_int v /. float_of_int total
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-22s %10d  %5.1f%%@," name v (pct v))
    (breakdown_fields b);
  Format.fprintf ppf "%-22s %10d@]" "total" total

type result = {
  outcome : Interp.outcome;
  output : int list;
  cycles : int;
  dyn_instrs : int;
  regs : int Reg.Map.t;
  faults_handled : int;
  stats : stats;
  breakdown : breakdown;
}

(* An operand captured at dispatch: either the value was available
   (architectural, or the producing entry had already completed), or the
   producing entry's slot — replaced by [Ready] when that slot's
   completion broadcasts. *)
type src = Ready of int | Wait of int

type estate = Waiting | Exec of int | Done

(* Entries are predecoded at dispatch into the same dense class tags the
   {!Psb_isa.Decoded} form uses ([kind] is a [Decoded.k*] value, or
   [branch_class]), so the issue/complete/commit loops dispatch on ints —
   no [Instr.op] variant walks on the per-cycle paths. The decoded
   frontend copies the ints straight out of the flat arrays; the tree
   reference frontend derives them from the variant at fetch time. *)
type entry = {
  seq : int;  (* fetch sequence number: program order, wrong paths included *)
  visit : int;  (* dynamic block-visit id, for commit-ordered region events *)
  label : Label.t;
  blk : int;  (* decoded block index; -1 under the tree frontend *)
  idx : int;  (* position in the block body, the fault-restart point *)
  kind : int;
  dst : int;  (* register index, condition index for setc; -1 *)
  aux : int;  (* load/store offset *)
  alu : Opcode.alu;
  cmp : Opcode.cmp;
  if_true : Label.t;  (* branch targets, tree frontend *)
  if_false : Label.t;
  t_true : int;  (* branch targets as block indices, decoded frontend *)
  t_false : int;
  predicted : bool;
  srcs : src array;
  mutable state : estate;
  mutable result : int;
  mutable addr : int;  (* resolved memory address; -1 until known *)
  mutable fault : Fault.t option;  (* buffered, raised only at commit *)
}

(* Cached array form of a basic block, so the tree frontend's per-cycle
   fetch never walks lists. *)
type fblock = { body : Instr.op array; term : Instr.control }

let op_classes =
  [| "alu"; "mov"; "load"; "store"; "cmp"; "setc"; "out"; "nop"; "branch" |]

let branch_class = Decoded.kbranch

(* kinds that write an architectural register: alu, mov, load, cmp *)
let has_reg_dst k =
  k = Decoded.kalu || k = Decoded.kmov || k = Decoded.kload || k = Decoded.kcmp

let default_fuel = 60_000_000

exception Abort of Fault.t
exception Halted_exn
exception Fuel_exhausted

let run ?(fuel = default_fuel) ?events ?metrics
    ?(kernel = Scalar_kernel.default) ?decoded ~model ~regs ~mem program =
  (match decoded with
  | Some d -> Decoded.check_source d program
  | None -> ());
  let dform =
    match kernel with
    | Scalar_kernel.Tree -> None
    | Scalar_kernel.Decoded ->
        Some
          (match decoded with
          | Some d -> d
          | None -> Decoded.of_program program)
  in
  let nregs = max 1 (Program.max_reg program + 1) in
  let nregs =
    List.fold_left (fun m (r, _) -> max m (Reg.index r + 1)) nregs regs
  in
  let nconds = max 1 (Program.max_cond program + 1) in
  let size = Machine_model.rob_size model in
  let issue_width = model.Machine_model.issue_width in
  let dcache_ports = model.Machine_model.dcache_ports in
  (* architectural state — only commit touches it *)
  let arch = Array.make nregs 0 in
  let written = Array.make nregs false in
  let conds = Array.make nconds false in
  List.iter
    (fun (r, v) ->
      arch.(Reg.index r) <- v;
      written.(Reg.index r) <- true)
    regs;
  let output_rev = ref [] in
  let faults_handled = ref 0 in
  (* the reorder buffer: circular, [head] oldest, [count] live entries *)
  let buf : entry option array = Array.make size None in
  let head = ref 0 in
  let count = ref 0 in
  let slot_at k = (!head + k) mod size in
  let entry_at k =
    match buf.(slot_at k) with Some e -> e | None -> assert false
  in
  (* rename map: architectural register -> slot of the youngest live
     producer, -1 when the architectural file holds the value *)
  let rmap = Array.make nregs (-1) in
  (* fetch state; [cur_label] is kept in sync by both frontends (entry
     labels feed the commit-ordered region events), [cur_blk] only by
     the decoded one *)
  let blocks : (string, fblock) Hashtbl.t = Hashtbl.create 16 in
  let fblock label =
    let key = Label.name label in
    match Hashtbl.find_opt blocks key with
    | Some fb -> fb
    | None ->
        let b = Program.find program label in
        let fb =
          { body = Array.of_list b.Program.body; term = b.Program.term }
        in
        Hashtbl.add blocks key fb;
        fb
  in
  let cur_label = ref program.Program.entry in
  let cur_blk =
    ref (match dform with Some d -> d.Decoded.entry | None -> -1)
  in
  let cur_idx = ref 0 in
  let visit_counter = ref 0 in
  let cur_visit = ref 0 in
  let fetch_halted = ref false in
  let redirect_stall = ref 0 in
  let seq_counter = ref 0 in
  (* 2-bit saturating counter per branch block, initially weakly taken:
     a string-keyed table under the tree frontend, a flat int array
     indexed by block under the decoded one (same state machine) *)
  let pred_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let pred_arr =
    match dform with
    | Some d -> Array.make (max 1 d.Decoded.nblocks) 2
    | None -> [||]
  in
  let predict_label label =
    let key = Label.name label in
    match Hashtbl.find_opt pred_tbl key with
    | Some c -> c >= 2
    | None ->
        Hashtbl.add pred_tbl key 2;
        true
  in
  let predict_blk bi = pred_arr.(bi) >= 2 in
  let train (e : entry) taken =
    if e.blk >= 0 then
      let c = pred_arr.(e.blk) in
      pred_arr.(e.blk) <- (if taken then min 3 (c + 1) else max 0 (c - 1))
    else
      let key = Label.name e.label in
      let c =
        match Hashtbl.find_opt pred_tbl key with Some c -> c | None -> 2
      in
      Hashtbl.replace pred_tbl key
        (if taken then min 3 (c + 1) else max 0 (c - 1))
  in
  (* statistics *)
  let fetched = ref 0 in
  let committed = ref 0 in
  let squashed = ref 0 in
  let branches = ref 0 in
  let mispredicts = ref 0 in
  let loads_forwarded = ref 0 in
  let squashed_faults = ref 0 in
  let fault_restarts = ref 0 in
  let max_occ = ref 0 in
  let full_stalls = ref 0 in
  let class_counts = Array.make (Array.length op_classes) 0 in
  (* cycle accounting *)
  let now = ref 0 in
  let acct_fault = ref 0 in
  let acct_commit = ref 0 in
  let acct_flush = ref 0 in
  let acct_mem = ref 0 in
  let acct_frontend = ref 0 in
  let acct_exec = ref 0 in
  (* per-cycle classification inputs *)
  let ncommitted = ref 0 in
  let fault_cycle = ref false in
  let flush_cycle = ref false in
  let eev kind ~a ~b =
    match events with
    | None -> ()
    | Some e -> Events.emit e ~cycle:!now kind ~a ~b
  in
  let region_id label =
    match events with
    | None -> -1
    | Some e -> Events.intern e (Label.name label)
  in
  let occ_hist =
    Option.map
      (fun m ->
        Metrics.histogram m "rob_occupancy"
          ~buckets:[ 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. ])
      metrics
  in
  (* ----- dispatch ----- *)
  let capture_reg ri =
    let s = rmap.(ri) in
    if s < 0 then Ready arch.(ri)
    else
      match buf.(s) with
      | Some p when p.state = Done -> Ready p.result
      | Some _ -> Wait s
      | None -> Ready arch.(ri)
  in
  let capture (o : Operand.t) =
    match o with
    | Operand.Imm i -> Ready i
    | Operand.Reg r -> capture_reg (Reg.index r)
  in
  let push ~blk ~idx ~kind ~dst ~aux ~alu ~cmp ~if_true ~if_false ~t_true
      ~t_false ~predicted ~srcs =
    let slot = (!head + !count) mod size in
    let e =
      {
        seq = !seq_counter;
        visit = !cur_visit;
        label = !cur_label;
        blk;
        idx;
        kind;
        dst;
        aux;
        alu;
        cmp;
        if_true;
        if_false;
        t_true;
        t_false;
        predicted;
        srcs;
        state = Waiting;
        result = 0;
        addr = -1;
        fault = None;
      }
    in
    incr seq_counter;
    buf.(slot) <- Some e;
    incr count;
    incr fetched;
    if has_reg_dst kind then rmap.(dst) <- slot
  in
  let push_op ~blk ~idx ~kind ~dst ~aux ~alu ~cmp ~srcs =
    push ~blk ~idx ~kind ~dst ~aux ~alu ~cmp ~if_true:!cur_label
      ~if_false:!cur_label ~t_true:(-1) ~t_false:(-1) ~predicted:false ~srcs
  in
  (* the tree frontend decodes each fetched variant into the flat entry
     fields; the decoded frontend below copies them from the arrays *)
  let push_tree_op ~idx (op : Instr.op) =
    match op with
    | Instr.Alu { op = aop; dst; a; b } ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.kalu ~dst:(Reg.index dst) ~aux:0
          ~alu:aop ~cmp:Opcode.Eq ~srcs:[| capture a; capture b |]
    | Instr.Mov { dst; src } ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.kmov ~dst:(Reg.index dst) ~aux:0
          ~alu:Opcode.Add ~cmp:Opcode.Eq ~srcs:[| capture src |]
    | Instr.Load { dst; base; off } ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.kload ~dst:(Reg.index dst)
          ~aux:off ~alu:Opcode.Add ~cmp:Opcode.Eq
          ~srcs:[| capture_reg (Reg.index base) |]
    | Instr.Store { src; base; off } ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.kstore ~dst:(-1) ~aux:off
          ~alu:Opcode.Add ~cmp:Opcode.Eq
          ~srcs:[| capture_reg (Reg.index base); capture_reg (Reg.index src) |]
    | Instr.Cmp { op = cop; dst; a; b } ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.kcmp ~dst:(Reg.index dst) ~aux:0
          ~alu:Opcode.Add ~cmp:cop ~srcs:[| capture a; capture b |]
    | Instr.Setc { dst; op = cop; a; b } ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.ksetc ~dst:(Cond.index dst)
          ~aux:0 ~alu:Opcode.Add ~cmp:cop ~srcs:[| capture a; capture b |]
    | Instr.Out o ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.kout ~dst:(-1) ~aux:0
          ~alu:Opcode.Add ~cmp:Opcode.Eq ~srcs:[| capture o |]
    | Instr.Nop ->
        push_op ~blk:(-1) ~idx ~kind:Decoded.knop ~dst:(-1) ~aux:0
          ~alu:Opcode.Add ~cmp:Opcode.Eq ~srcs:[||]
  in
  let next_visit () =
    incr visit_counter;
    cur_visit := !visit_counter;
    cur_idx := 0
  in
  let fetch_tree () =
    let budget = ref issue_width in
    let stop = ref false in
    let noted_full = ref false in
    let full () =
      if not !noted_full then begin
        noted_full := true;
        incr full_stalls
      end;
      stop := true
    in
    while (not !stop) && (not !fetch_halted) && !budget > 0 do
      let fb = fblock !cur_label in
      if !cur_idx < Array.length fb.body then
        if !count >= size then full ()
        else begin
          push_tree_op ~idx:!cur_idx fb.body.(!cur_idx);
          incr cur_idx;
          decr budget
        end
      else
        match fb.term with
        | Instr.Halt -> fetch_halted := true
        | Instr.Jmp l ->
            (* free, but charged a slot so a pure-Jmp cycle cannot spin
               forever inside one machine cycle *)
            decr budget;
            cur_label := l;
            next_visit ()
        | Instr.Br { src; if_true; if_false } ->
            if !count >= size then full ()
            else begin
              let predicted = predict_label !cur_label in
              push ~blk:(-1) ~idx:(Array.length fb.body) ~kind:branch_class
                ~dst:(-1) ~aux:0 ~alu:Opcode.Add ~cmp:Opcode.Eq ~if_true
                ~if_false ~t_true:(-1) ~t_false:(-1) ~predicted
                ~srcs:[| capture_reg (Reg.index src) |];
              decr budget;
              cur_label := (if predicted then if_true else if_false);
              next_visit ()
            end
    done
  in
  let fetch_decoded (d : Decoded.t) =
    let goto t =
      cur_blk := t;
      if t >= 0 then cur_label := d.Decoded.labels.(t);
      next_visit ()
    in
    let cap1 i =
      let r = d.Decoded.s1_reg.(i) in
      if r >= 0 then capture_reg r else Ready d.Decoded.s1_imm.(i)
    in
    let cap2 i =
      let r = d.Decoded.s2_reg.(i) in
      if r >= 0 then capture_reg r else Ready d.Decoded.s2_imm.(i)
    in
    let budget = ref issue_width in
    let stop = ref false in
    let noted_full = ref false in
    let full () =
      if not !noted_full then begin
        noted_full := true;
        incr full_stalls
      end;
      stop := true
    in
    while (not !stop) && (not !fetch_halted) && !budget > 0 do
      let bi = !cur_blk in
      if bi < 0 then raise Not_found (* parity with the tree path's find *);
      let lo = d.Decoded.op_bounds.(bi) in
      let len = d.Decoded.op_bounds.(bi + 1) - lo in
      if !cur_idx < len then
        if !count >= size then full ()
        else begin
          let i = lo + !cur_idx in
          let k = d.Decoded.kind.(i) in
          let srcs =
            if k = Decoded.knop then [||]
            else if k = Decoded.kmov || k = Decoded.kload || k = Decoded.kout
            then [| cap1 i |]
            else [| cap1 i; cap2 i |]
          in
          push_op ~blk:bi ~idx:!cur_idx ~kind:k ~dst:d.Decoded.dst.(i)
            ~aux:d.Decoded.aux.(i) ~alu:d.Decoded.alu.(i)
            ~cmp:d.Decoded.cmp.(i) ~srcs;
          incr cur_idx;
          decr budget
        end
      else begin
        let tk = d.Decoded.term_kind.(bi) in
        if tk = Decoded.thalt then fetch_halted := true
        else if tk = Decoded.tjmp then begin
          decr budget;
          goto d.Decoded.term_t.(bi)
        end
        else if !count >= size then full ()
        else begin
          let predicted = predict_blk bi in
          let tt = d.Decoded.term_t.(bi) and tf = d.Decoded.term_f.(bi) in
          let lbl t = if t >= 0 then d.Decoded.labels.(t) else !cur_label in
          push ~blk:bi ~idx:len ~kind:branch_class ~dst:(-1) ~aux:0
            ~alu:Opcode.Add ~cmp:Opcode.Eq ~if_true:(lbl tt)
            ~if_false:(lbl tf) ~t_true:tt ~t_false:tf ~predicted
            ~srcs:[| capture_reg d.Decoded.term_src.(bi) |];
          decr budget;
          goto (if predicted then tt else tf)
        end
      end
    done
  in
  let fetch_cycle () =
    if !redirect_stall > 0 then decr redirect_stall
    else
      match dform with
      | None -> fetch_tree ()
      | Some d -> fetch_decoded d
  in
  (* ----- completion ----- *)
  let broadcast slot v =
    for k = 0 to !count - 1 do
      let e = entry_at k in
      for i = 0 to Array.length e.srcs - 1 do
        match e.srcs.(i) with
        | Wait s when s = slot -> e.srcs.(i) <- Ready v
        | Wait _ | Ready _ -> ()
      done
    done
  in
  let squash_entry ~reason e =
    eev Events.Rob_squash ~a:e.seq ~b:reason;
    incr squashed;
    if e.fault <> None then incr squashed_faults
  in
  (* youngest older store with a matching resolved address; entries
     strictly older than position [pos] *)
  let forward_from_store pos addr =
    let rec scan j =
      if j < 0 then None
      else
        let p = entry_at j in
        if p.kind = Decoded.kstore && p.state = Done && p.addr = addr then
          Some p.result
        else scan (j - 1)
    in
    scan (pos - 1)
  in
  let mispredict_flush pos ~label ~blk =
    incr mispredicts;
    for k = pos + 1 to !count - 1 do
      let e = entry_at k in
      squash_entry ~reason:0 e;
      buf.(slot_at k) <- None
    done;
    count := pos + 1;
    Array.fill rmap 0 nregs (-1);
    for k = 0 to pos do
      let e = entry_at k in
      if has_reg_dst e.kind then rmap.(e.dst) <- slot_at k
    done;
    cur_label := label;
    cur_blk := blk;
    next_visit ();
    fetch_halted := false;
    redirect_stall := 1 + model.Machine_model.transition_penalty;
    flush_cycle := true
  in
  let complete_entry e ~pos ~slot =
    let v i =
      match e.srcs.(i) with Ready v -> v | Wait _ -> assert false
    in
    if e.kind = branch_class then begin
      let taken = v 0 <> 0 in
      e.result <- (if taken then 1 else 0);
      e.state <- Done;
      train e taken;
      if taken <> e.predicted then
        mispredict_flush pos
          ~label:(if taken then e.if_true else e.if_false)
          ~blk:(if taken then e.t_true else e.t_false)
    end
    else begin
      (* dense dispatch on the Decoded class tags:
         0 alu, 1 mov, 2 load, 3 store, 4 cmp, 5 setc, 6 out, 7 nop *)
      (match e.kind with
      | 0 -> (
          match Opcode.eval_alu e.alu (v 0) (v 1) with
          | r -> e.result <- r
          | exception Opcode.Arithmetic_fault m ->
              e.result <- 0;
              e.fault <- Some (Fault.Arith m);
              eev Events.Fault_deferred ~a:(-1) ~b:0)
      | 1 | 6 -> e.result <- v 0
      | 4 | 5 -> e.result <- (if Opcode.eval_cmp e.cmp (v 0) (v 1) then 1 else 0)
      | 2 -> (
          let addr = v 0 + e.aux in
          e.addr <- addr;
          match forward_from_store pos addr with
          | Some fv ->
              e.result <- fv;
              incr loads_forwarded
          | None -> (
              match Memory.read mem addr with
              | value -> e.result <- value
              | exception Memory.Fault f ->
                  e.result <- 0;
                  e.fault <- Some (Fault.Mem f);
                  eev Events.Fault_deferred ~a:addr ~b:0))
      | 3 -> (
          let addr = v 0 + e.aux in
          e.addr <- addr;
          e.result <- v 1;
          match Memory.probe mem addr with
          | None -> ()
          | Some f ->
              e.fault <- Some (Fault.Mem f);
              eev Events.Fault_deferred ~a:addr ~b:0)
      | _ (* nop *) -> e.result <- 0);
      e.state <- Done;
      if has_reg_dst e.kind then broadcast slot e.result
    end
  in
  let complete_cycle () =
    let k = ref 0 in
    while (not !flush_cycle) && !k < !count do
      let e = entry_at !k in
      (match e.state with
      | Exec n when n <= 1 -> complete_entry e ~pos:!k ~slot:(slot_at !k)
      | Exec n -> e.state <- Exec (n - 1)
      | Waiting | Done -> ());
      incr k
    done
  in
  (* ----- issue ----- *)
  let issue_cycle () =
    let avail c = Machine_model.units_available model c in
    let alu = ref (avail Machine_model.Alu_unit) in
    let br = ref (avail Machine_model.Branch_unit) in
    let ld = ref (avail Machine_model.Load_unit) in
    let st = ref (avail Machine_model.Store_unit) in
    let pending_store = ref false in
    for k = 0 to !count - 1 do
      let e = entry_at k in
      (match e.state with
      | Waiting ->
          let ready =
            Array.for_all
              (function Ready _ -> true | Wait _ -> false)
              e.srcs
          in
          if ready then
            if e.kind = branch_class then begin
              if !br > 0 then begin
                decr br;
                e.state <- Exec model.Machine_model.int_latency
              end
            end
            else begin
              let unit =
                if e.kind = Decoded.kload then ld
                else if e.kind = Decoded.kstore then st
                else alu
              in
              (* total store-queue disambiguation: a load waits until
                 every older store has resolved its address *)
              let blocked = e.kind = Decoded.kload && !pending_store in
              if (not blocked) && !unit > 0 then begin
                decr unit;
                e.state <-
                  Exec
                    (if e.kind = Decoded.kload then
                       model.Machine_model.load_latency
                     else model.Machine_model.int_latency)
              end
            end
      | Exec _ | Done -> ());
      if e.kind = Decoded.kstore && e.state <> Done then pending_store := true
    done
  in
  (* ----- commit ----- *)
  let last_committed_visit = ref 0 in
  let restart_at e =
    incr fault_restarts;
    for k = 0 to !count - 1 do
      let p = entry_at k in
      (* the head's own fault was raised, not discarded *)
      if k = 0 then begin
        eev Events.Rob_squash ~a:p.seq ~b:1;
        incr squashed
      end
      else squash_entry ~reason:1 p;
      buf.(slot_at k) <- None
    done;
    count := 0;
    head := 0;
    Array.fill rmap 0 nregs (-1);
    cur_label := e.label;
    cur_blk := e.blk;
    cur_idx := e.idx;
    cur_visit := e.visit;
    fetch_halted := false;
    redirect_stall := 1 + model.Machine_model.transition_penalty;
    fault_cycle := true
  in
  let commit_fault e f =
    match f with
    | Fault.Arith _ ->
        eev Events.Fault_raised ~a:(-1) ~b:0;
        raise (Abort f)
    | Fault.Mem _ -> (
        (* Re-probe: an older instruction's commit may already have
           mapped the page (it flushed us too, but be robust); a stale
           fault just restarts without counting a handled fault. *)
        match Memory.probe mem e.addr with
        | Some mf when Memory.is_fatal mf ->
            eev Events.Fault_raised ~a:e.addr ~b:0;
            raise (Abort (Fault.Mem mf))
        | Some mf ->
            assert (Memory.handle_fault mem mf);
            incr faults_handled;
            eev Events.Fault_raised ~a:e.addr ~b:1;
            restart_at e
        | None -> restart_at e)
  in
  let commit_cycle () =
    let budget = ref issue_width in
    let st_budget = ref dcache_ports in
    let stop = ref false in
    while (not !stop) && !budget > 0 && !count > 0 do
      let slot = !head in
      let e = entry_at 0 in
      if e.state <> Done then stop := true
      else
        match e.fault with
        | Some f ->
            commit_fault e f;
            stop := true
        | None ->
            let is_store = e.kind = Decoded.kstore in
            if is_store && !st_budget <= 0 then stop := true
            else begin
              if e.visit <> !last_committed_visit then begin
                last_committed_visit := e.visit;
                eev Events.Region_enter ~a:(region_id e.label) ~b:0
              end;
              if e.kind = branch_class then incr branches
              else if is_store then begin
                Memory.write mem e.addr e.result;
                decr st_budget
              end
              else if e.kind = Decoded.kout then
                output_rev := e.result :: !output_rev
              else if e.kind = Decoded.ksetc then
                conds.(e.dst) <- e.result <> 0
              else if e.kind <> Decoded.knop then begin
                (* alu / mov / load / cmp: architectural writeback *)
                let ri = e.dst in
                arch.(ri) <- e.result;
                written.(ri) <- true;
                if rmap.(ri) = slot then rmap.(ri) <- -1
              end;
              class_counts.(e.kind) <- class_counts.(e.kind) + 1;
              eev Events.Rob_commit ~a:e.seq ~b:slot;
              incr committed;
              incr ncommitted;
              buf.(slot) <- None;
              head := (slot + 1) mod size;
              decr count;
              decr budget
            end
    done
  in
  let head_mem_wait () =
    !count > 0
    &&
    let e = entry_at 0 in
    (e.kind = Decoded.kload || e.kind = Decoded.kstore) && e.state <> Done
  in
  let finish outcome =
    let breakdown =
      {
        rb_fault = !acct_fault;
        rb_commit = !acct_commit;
        rb_flush = !acct_flush;
        rb_mem = !acct_mem;
        rb_frontend = !acct_frontend;
        rb_exec = !acct_exec;
      }
    in
    (match metrics with
    | None -> ()
    | Some m ->
        let c name v = Metrics.inc (Metrics.counter m name) ~by:v in
        c "rob_cycles_total" !now;
        c "rob_dyn_instrs" !committed;
        c "rob_fetched" !fetched;
        c "rob_squashed_entries" !squashed;
        c "rob_mispredicts" !mispredicts;
        c "rob_fault_restarts" !fault_restarts;
        c "rob_loads_forwarded" !loads_forwarded;
        c "rob_full_stalls" !full_stalls;
        Array.iteri
          (fun i n ->
            if n > 0 then
              Metrics.inc
                (Metrics.counter m "rob_ops"
                   ~labels:[ ("class", op_classes.(i)) ])
                ~by:n)
          class_counts;
        List.iter
          (fun (cat, v) ->
            Metrics.inc
              (Metrics.counter m "rob_cycles" ~labels:[ ("category", cat) ])
              ~by:v)
          (breakdown_fields breakdown));
    let final_regs =
      Array.to_seqi arch
      |> Seq.filter (fun (i, _) -> written.(i))
      |> Seq.fold_left
           (fun m (i, v) -> Reg.Map.add (Reg.make i) v m)
           Reg.Map.empty
    in
    {
      outcome;
      output = List.rev !output_rev;
      cycles = !now;
      dyn_instrs = !committed;
      regs = final_regs;
      faults_handled = !faults_handled;
      stats =
        {
          fetched = !fetched;
          committed = !committed;
          squashed = !squashed;
          branches = !branches;
          mispredicts = !mispredicts;
          loads_forwarded = !loads_forwarded;
          squashed_faults = !squashed_faults;
          fault_restarts = !fault_restarts;
          rob_max_occupancy = !max_occ;
          rob_full_stalls = !full_stalls;
        };
      breakdown;
    }
  in
  eev Events.Region_enter ~a:(region_id program.Program.entry) ~b:0;
  let rec loop () =
    if !count = 0 && !fetch_halted then raise Halted_exn;
    if !now > fuel then raise Fuel_exhausted;
    let was_empty = !count = 0 in
    ncommitted := 0;
    fault_cycle := false;
    flush_cycle := false;
    commit_cycle ();
    complete_cycle ();
    issue_cycle ();
    let redirect_active = !redirect_stall > 0 || !flush_cycle in
    fetch_cycle ();
    if !count > !max_occ then max_occ := !count;
    (match occ_hist with
    | Some h -> Metrics.observe h (float_of_int !count)
    | None -> ());
    (if !fault_cycle then incr acct_fault
     else if !ncommitted > 0 then incr acct_commit
     else if redirect_active then incr acct_flush
     else if head_mem_wait () then incr acct_mem
     else if was_empty then incr acct_frontend
     else incr acct_exec);
    incr now;
    loop ()
  in
  try loop () with
  | Halted_exn -> finish Interp.Halted
  | Abort f -> finish (Interp.Fatal f)
  | Fuel_exhausted -> finish (Interp.Out_of_fuel)

let cycles ~model ~regs ~mem program = (run ~model ~regs ~mem program).cycles
