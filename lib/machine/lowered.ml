open Psb_isa

type kind = Knop | Kalu | Kmov | Kload | Kcmp | Kstore | Ksetc | Kout

type region = {
  source : Pcode.region;
  nbundles : int;
  op_bounds : int array;
  ex_bounds : int array;
  has_store : bool array;
  op_kind : kind array;
  op_cpred : Pred.compiled array;
  op_pred : Pred.t array;
  op_lat : int array;
  op_dst : int array;
  op_aux : int array;
  op_alu : Opcode.alu array;
  op_cmp : Opcode.cmp array;
  op_s1_reg : int array;
  op_s1_imm : int array;
  op_s1_sh : bool array;
  op_s2_reg : int array;
  op_s2_imm : int array;
  op_s2_sh : bool array;
  op_src : Pcode.pinstr array;
  ex_cpred : Pred.compiled array;
  ex_target : int array;
  ex_tgt : Pcode.exit_target array;
}

type t = {
  source : Pcode.t;
  machine : Machine_model.t;
  regions : region array;
  entry : int;
  nregs : int;
  max_bundle_ops : int;
}

let dummy_pinstr =
  {
    Pcode.pred = Pred.always;
    cpred = Pred.compiled_always;
    op = Instr.Nop;
    shadow_srcs = Reg.Set.empty;
  }

let lower_region ~machine ~region_index (r : Pcode.region) =
  let nbundles = Array.length r.Pcode.code in
  let nops = ref 0 and nexits = ref 0 in
  Array.iter
    (List.iter (function
      | Pcode.Op _ -> incr nops
      | Pcode.Exit _ -> incr nexits))
    r.Pcode.code;
  let nops = !nops and nexits = !nexits in
  let op_bounds = Array.make (nbundles + 1) 0 in
  let ex_bounds = Array.make (nbundles + 1) 0 in
  let has_store = Array.make nbundles false in
  let op_kind = Array.make nops Knop in
  let op_cpred = Array.make nops Pred.compiled_always in
  let op_pred = Array.make nops Pred.always in
  let op_lat = Array.make nops 0 in
  let op_dst = Array.make nops (-1) in
  let op_aux = Array.make nops 0 in
  let op_alu = Array.make nops Opcode.Add in
  let op_cmp = Array.make nops Opcode.Eq in
  let op_s1_reg = Array.make nops (-1) in
  let op_s1_imm = Array.make nops 0 in
  let op_s1_sh = Array.make nops false in
  let op_s2_reg = Array.make nops (-1) in
  let op_s2_imm = Array.make nops 0 in
  let op_s2_sh = Array.make nops false in
  let op_src = Array.make nops dummy_pinstr in
  let ex_cpred = Array.make nexits Pred.compiled_always in
  let ex_target = Array.make nexits (-1) in
  let ex_tgt = Array.make nexits Pcode.Stop in
  let oi = ref 0 and xi = ref 0 in
  Array.iteri
    (fun b bundle ->
      op_bounds.(b) <- !oi;
      ex_bounds.(b) <- !xi;
      List.iter
        (function
          | Pcode.Op pi ->
              let i = !oi in
              incr oi;
              let shadow_srcs = pi.Pcode.shadow_srcs in
              let s1 = function
                | Operand.Reg r ->
                    op_s1_reg.(i) <- Reg.index r;
                    op_s1_sh.(i) <- Reg.Set.mem r shadow_srcs
                | Operand.Imm v ->
                    op_s1_reg.(i) <- -1;
                    op_s1_imm.(i) <- v
              and s2 = function
                | Operand.Reg r ->
                    op_s2_reg.(i) <- Reg.index r;
                    op_s2_sh.(i) <- Reg.Set.mem r shadow_srcs
                | Operand.Imm v ->
                    op_s2_reg.(i) <- -1;
                    op_s2_imm.(i) <- v
              in
              op_src.(i) <- pi;
              op_cpred.(i) <- pi.Pcode.cpred;
              op_pred.(i) <- pi.Pcode.pred;
              op_lat.(i) <- Machine_model.latency machine pi.Pcode.op;
              (match pi.Pcode.op with
              | Instr.Nop -> op_kind.(i) <- Knop
              | Instr.Out o ->
                  op_kind.(i) <- Kout;
                  s1 o
              | Instr.Mov { dst; src } ->
                  op_kind.(i) <- Kmov;
                  op_dst.(i) <- Reg.index dst;
                  s1 src
              | Instr.Alu { op; dst; a; b } ->
                  op_kind.(i) <- Kalu;
                  op_alu.(i) <- op;
                  op_dst.(i) <- Reg.index dst;
                  s1 a;
                  s2 b
              | Instr.Cmp { op; dst; a; b } ->
                  op_kind.(i) <- Kcmp;
                  op_cmp.(i) <- op;
                  op_dst.(i) <- Reg.index dst;
                  s1 a;
                  s2 b
              | Instr.Load { dst; base; off } ->
                  op_kind.(i) <- Kload;
                  op_dst.(i) <- Reg.index dst;
                  op_s1_reg.(i) <- Reg.index base;
                  op_s1_sh.(i) <- Reg.Set.mem base shadow_srcs;
                  op_aux.(i) <- off
              | Instr.Store { src; base; off } ->
                  op_kind.(i) <- Kstore;
                  has_store.(b) <- true;
                  op_s1_reg.(i) <- Reg.index base;
                  op_s1_sh.(i) <- Reg.Set.mem base shadow_srcs;
                  op_s2_reg.(i) <- Reg.index src;
                  op_s2_sh.(i) <- Reg.Set.mem src shadow_srcs;
                  op_aux.(i) <- off
              | Instr.Setc { dst; op; a; b } ->
                  op_kind.(i) <- Ksetc;
                  op_cmp.(i) <- op;
                  op_aux.(i) <- Cond.index dst;
                  s1 a;
                  s2 b)
          | Pcode.Exit { cpred; target; _ } ->
              let j = !xi in
              incr xi;
              ex_cpred.(j) <- cpred;
              ex_tgt.(j) <- target;
              ex_target.(j) <-
                (match target with
                | Pcode.Stop -> -1
                | Pcode.To_region l -> region_index l))
        bundle)
    r.Pcode.code;
  op_bounds.(nbundles) <- !oi;
  ex_bounds.(nbundles) <- !xi;
  {
    source = r;
    nbundles;
    op_bounds;
    ex_bounds;
    has_store;
    op_kind;
    op_cpred;
    op_pred;
    op_lat;
    op_dst;
    op_aux;
    op_alu;
    op_cmp;
    op_s1_reg;
    op_s1_imm;
    op_s1_sh;
    op_s2_reg;
    op_s2_imm;
    op_s2_sh;
    op_src;
    ex_cpred;
    ex_target;
    ex_tgt;
  }

(* Identical to the register scan [Vliw_sim.run] performs on the tree
   form, so a register file sized from either agrees. *)
let count_regs (code : Pcode.t) =
  List.fold_left
    (fun acc r ->
      Array.fold_left
        (List.fold_left (fun acc slot ->
             match slot with
             | Pcode.Exit _ -> acc
             | Pcode.Op { op; _ } ->
                 List.fold_left
                   (fun acc r -> max acc (Reg.index r + 1))
                   acc
                   (Instr.defs op @ Instr.uses op)))
        acc r.Pcode.code)
    1 code.Pcode.regions

let compile ~machine (code : Pcode.t) =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i (r : Pcode.region) ->
      Hashtbl.replace index (Label.name r.Pcode.name) i)
    code.Pcode.regions;
  let region_index l =
    match Hashtbl.find_opt index (Label.name l) with
    | Some i -> i
    | None ->
        invalid_arg
          (Format.asprintf "Lowered.compile: undefined region %a" Label.pp l)
  in
  let regions =
    Array.of_list
      (List.map (lower_region ~machine ~region_index) code.Pcode.regions)
  in
  let max_bundle_ops =
    Array.fold_left
      (fun acc r ->
        let m = ref acc in
        for b = 0 to r.nbundles - 1 do
          m := max !m (r.op_bounds.(b + 1) - r.op_bounds.(b))
        done;
        !m)
      0 regions
  in
  {
    source = code;
    machine;
    regions;
    entry = region_index code.Pcode.entry;
    nregs = count_regs code;
    max_bundle_ops;
  }

let num_ops t =
  Array.fold_left (fun acc r -> acc + Array.length r.op_kind) 0 t.regions

let num_exits t =
  Array.fold_left (fun acc r -> acc + Array.length r.ex_cpred) 0 t.regions
