open Psb_isa

let class_of (op : Instr.op) =
  match op with
  | Instr.Alu _ -> "alu"
  | Instr.Mov _ -> "mov"
  | Instr.Load _ -> "load"
  | Instr.Store _ -> "store"
  | Instr.Cmp _ -> "cmp"
  | Instr.Setc _ -> "setc"
  | Instr.Out _ -> "out"
  | Instr.Nop -> "nop"

let run ?fuel ?record_trace ?kernel ?decoded ?observer ?events ?metrics ~regs
    ~mem program =
  (* The scalar machine never speculates, so its event stream is just the
     block timeline: one [Region_enter] per block entered (block labels
     interned), stamped with the scalar cycle count. *)
  let on_block =
    Option.map
      (fun e cycle label ->
        let a = Psb_obs.Events.intern e (Label.name label) in
        Psb_obs.Events.emit e ~cycle Psb_obs.Events.Region_enter ~a ~b:0)
      events
  in
  match metrics with
  | None ->
      Interp.run ?fuel ?record_trace ?kernel ?decoded ?observer ?on_block ~regs
        ~mem program
  | Some m ->
      let open Psb_obs.Metrics in
      let count op addr =
        inc (counter m "scalar_ops" ~labels:[ ("class", class_of op) ]);
        if addr <> None then inc (counter m "scalar_mem_accesses");
        match observer with Some f -> f op addr | None -> ()
      in
      let r =
        Interp.run ?fuel ?record_trace ?kernel ?decoded ~observer:count
          ?on_block ~regs ~mem program
      in
      inc (counter m "scalar_cycles_total") ~by:r.Interp.cycles;
      inc (counter m "scalar_dyn_instrs") ~by:r.Interp.dyn_instrs;
      r

let cycles ~regs ~mem program =
  (run ~record_trace:false ~regs ~mem program).Interp.cycles
