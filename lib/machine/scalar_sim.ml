open Psb_isa

let class_of (op : Instr.op) =
  match op with
  | Instr.Alu _ -> "alu"
  | Instr.Mov _ -> "mov"
  | Instr.Load _ -> "load"
  | Instr.Store _ -> "store"
  | Instr.Cmp _ -> "cmp"
  | Instr.Setc _ -> "setc"
  | Instr.Out _ -> "out"
  | Instr.Nop -> "nop"

let run ?fuel ?record_trace ?observer ?metrics ~regs ~mem program =
  match metrics with
  | None -> Interp.run ?fuel ?record_trace ?observer ~regs ~mem program
  | Some m ->
      let open Psb_obs.Metrics in
      let count op addr =
        inc (counter m "scalar_ops" ~labels:[ ("class", class_of op) ]);
        if addr <> None then inc (counter m "scalar_mem_accesses");
        match observer with Some f -> f op addr | None -> ()
      in
      let r =
        Interp.run ?fuel ?record_trace ~observer:count ~regs ~mem program
      in
      inc (counter m "scalar_cycles_total") ~by:r.Interp.cycles;
      inc (counter m "scalar_dyn_instrs") ~by:r.Interp.dyn_instrs;
      r

let cycles ~regs ~mem program =
  (run ~record_trace:false ~regs ~mem program).Interp.cycles
