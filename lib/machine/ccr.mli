(** Condition code register: [K] branch conditions, each true, false or
    unspecified. Conditions are region-local: {!reset} is applied by the
    hardware on every region transition (§3.3).

    Storage is packed — one [specified] and one [values] bit per
    condition — so a {!Psb_isa.Pred.compiled} predicate evaluates via
    {!evalc} in a handful of word operations, mirroring the per-entry
    ternary-mask comparators of §4.2.1. Widths beyond
    [Pred.word_bits] spill into overflow words transparently. *)

open Psb_isa

type t

val create : width:int -> t
val width : t -> int

val get : t -> Cond.t -> Pred.cond_value
(** @raise Invalid_argument if the condition is outside the CCR. *)

val set : t -> Cond.t -> bool -> unit
val reset : t -> unit
val copy : t -> t
val assign : t -> from:t -> unit
(** Overwrite the contents of [t] with those of [from]. *)

val lookup : t -> Cond.t -> Pred.cond_value
(** Same as {!get}; shaped for {!Pred.eval}. *)

val eval : t -> Pred.t -> Pred.value
(** Reference (map-walk) evaluation; counts into {!evals_map}. *)

val evalc : t -> Pred.compiled -> Pred.value
(** Mask evaluation against the packed words: [Unspec] if any mentioned
    condition is unspecified, else [True] iff all values match. Zero
    allocation; counts into {!evals_mask}. A condition beyond the CCR
    width reads as unspecified (the compiler and verifier reject such
    predicates before they reach the machine). *)

val all_specified : t -> Pred.t -> bool
val all_specified_c : t -> Pred.compiled -> bool
(** Mask form: [mask land specified = mask], per word. *)

val evals_mask : t -> int
val evals_map : t -> int
(** Evaluation counts since {!create}, by kernel, for observability. *)

val pp : Format.formatter -> t -> unit
