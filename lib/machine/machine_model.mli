(** Machine configurations.

    The paper's base VLIW machine (§4): 4 ALUs, 4 branch units, 2 load
    units, 1 store unit, up to 4 instructions issued per cycle, CCR with 4
    entries, load latency 2 cycles, all other latencies 1.

    "Full-issue" machines (Figure 8) duplicate every resource to the issue
    width. *)

open Psb_isa

type t = {
  issue_width : int;
  alu_units : int;
  branch_units : int;  (** jump/exit slots per cycle *)
  load_units : int;
  store_units : int;
  ccr_size : int;  (** number of branch conditions, K *)
  load_latency : int;
  int_latency : int;
  max_spec_conds : int;
      (** how many unresolved branch conditions an instruction may be
          speculated past (Figure 8 sweeps 1/2/4/8) *)
  transition_penalty : int;
      (** extra cycles charged on a region transition; 0 under the paper's
          optimistic BTB assumption, 1 models a BTB-miss redirect (the
          paper notes the optimism is worth "a few percent") *)
  sb_capacity : int;
      (** store-buffer entries; a bundle carrying a store stalls while the
          FIFO is full *)
  dcache_ports : int;
      (** D-cache write ports: store-buffer entries drained per cycle *)
  rob_size : int;
      (** reorder-buffer entries of the rival out-of-order backend
          ({!Rob_sim}); bounds how far its fetch may run ahead of commit *)
}

val base : t
(** The paper's base 4-issue machine. *)

val scalar : t
(** Single-issue reference (R3000-like). *)

val full_issue : width:int -> max_spec_conds:int -> t
(** Fully duplicated resources at the given issue width (Figure 8). *)

(** {2 Capacity accessors}

    Stable accessors for the buffering limits a compiled schedule must
    respect, used by the static verifier ([Psb_verify.Verify]) so that
    capacity checks name the limit they enforce rather than reaching into
    record fields. *)

val ccr_size : t -> int
(** Number of physical CCR entries [K]; every condition a region names
    must index below this. *)

val max_spec_conds : t -> int
(** Maximum number of unresolved branch conditions an instruction's
    predicate may carry at issue. *)

val sb_capacity : t -> int
(** Predicated store-buffer entries available to buffer speculative and
    retiring stores. *)

val dcache_ports : t -> int
(** Store-buffer entries drained to the D-cache per cycle. *)

val rob_size : t -> int
(** Reorder-buffer entries available to the out-of-order backend
    ({!Rob_sim}): 32 on the base machine, 8 on the scalar reference,
    [8 * width] on full-issue machines. *)

val shadow_capacity : single_shadow:bool -> t -> int
(** Speculative (shadow) versions storable per architectural register:
    1 under the paper's single-shadow register file, unbounded
    ([max_int]) for the infinite ablation. *)

val latency : t -> Instr.op -> int
(** Issue-to-writeback distance in cycles for one operation:
    [load_latency] for loads, [int_latency] for everything else. This is
    the single source of latency truth — the scheduler, the cycle
    estimator, the machine simulator and the region-lowering pass
    ([Lowered], which precomputes it per flat slot) all call it. *)

(** The function-unit class an operation occupies for one cycle at
    issue. [Branch_unit] serves region-exit slots; [Nop]s and condition
    writes ([Setc]) occupy ALU slots like any other computation. *)
type unit_class = Alu_unit | Branch_unit | Load_unit | Store_unit

val unit_of_op : Instr.op -> unit_class
(** Classify one operation. Total — every [Instr.op] maps to exactly one
    class, so resource checks can fold over a bundle without a default
    case. *)

val units_available : t -> unit_class -> int
(** How many units of a class the machine issues to per cycle
    ([alu_units], [branch_units], [load_units], [store_units]); the
    static budget [Pcode.check_resources] and the scheduler enforce per
    bundle. *)

val pp : Format.formatter -> t -> unit
(** One-line summary of the configuration (issue width, unit counts,
    CCR size, latencies) for diagnostics and experiment headers. *)
