type mode = Mask | Map

include Psb_isa.Kernel_mode.Make (struct
  type nonrec mode = mode

  let name = "PSB_PRED_KERNEL"
  let values = [ ("mask", Mask); ("map", Map) ]
  let fallback = Mask
end)
