type mode = Mask | Map

let of_string = function
  | "mask" -> Some Mask
  | "map" -> Some Map
  | _ -> None

let to_string = function Mask -> "mask" | Map -> "map"

let default =
  match Sys.getenv_opt "PSB_PRED_KERNEL" with
  | None -> Mask
  | Some s -> (
      match of_string (String.lowercase_ascii (String.trim s)) with
      | Some m -> m
      | None ->
          Printf.eprintf
            "psb: ignoring unknown PSB_PRED_KERNEL=%s (expected mask|map)\n%!"
            s;
          Mask)

let pp ppf m = Format.pp_print_string ppf (to_string m)
