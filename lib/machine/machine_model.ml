open Psb_isa

type t = {
  issue_width : int;
  alu_units : int;
  branch_units : int;
  load_units : int;
  store_units : int;
  ccr_size : int;
  load_latency : int;
  int_latency : int;
  max_spec_conds : int;
  transition_penalty : int;
  sb_capacity : int;
  dcache_ports : int;
  rob_size : int;
}

let base =
  {
    issue_width = 4;
    alu_units = 4;
    branch_units = 4;
    load_units = 2;
    store_units = 1;
    ccr_size = 4;
    load_latency = 2;
    int_latency = 1;
    max_spec_conds = 4;
    transition_penalty = 0;
    sb_capacity = 16;
    dcache_ports = 1;
    rob_size = 32;
  }

let scalar =
  {
    issue_width = 1;
    alu_units = 1;
    branch_units = 1;
    load_units = 1;
    store_units = 1;
    ccr_size = 1;
    load_latency = 2;
    int_latency = 1;
    max_spec_conds = 0;
    transition_penalty = 0;
    sb_capacity = 16;
    dcache_ports = 1;
    rob_size = 8;
  }

let full_issue ~width ~max_spec_conds =
  {
    issue_width = width;
    alu_units = width;
    branch_units = width;
    load_units = width;
    store_units = width;
    ccr_size = max max_spec_conds 4;
    load_latency = 2;
    int_latency = 1;
    max_spec_conds;
    transition_penalty = 0;
    sb_capacity = 16;
    dcache_ports = width;
    rob_size = 8 * width;
  }

let ccr_size t = t.ccr_size
let rob_size t = t.rob_size
let max_spec_conds t = t.max_spec_conds
let sb_capacity t = t.sb_capacity
let dcache_ports t = t.dcache_ports
let shadow_capacity ~single_shadow _t = if single_shadow then 1 else max_int

let latency t = function
  | Instr.Load _ -> t.load_latency
  | Instr.Alu _ | Instr.Mov _ | Instr.Store _ | Instr.Cmp _ | Instr.Setc _
  | Instr.Out _ | Instr.Nop ->
      t.int_latency

type unit_class = Alu_unit | Branch_unit | Load_unit | Store_unit

let unit_of_op = function
  | Instr.Load _ -> Load_unit
  | Instr.Store _ -> Store_unit
  | Instr.Alu _ | Instr.Mov _ | Instr.Cmp _ | Instr.Setc _ | Instr.Out _
  | Instr.Nop ->
      Alu_unit

let units_available t = function
  | Alu_unit -> t.alu_units
  | Branch_unit -> t.branch_units
  | Load_unit -> t.load_units
  | Store_unit -> t.store_units

let pp ppf t =
  Format.fprintf ppf
    "%d-issue (alu %d, br %d, ld %d, st %d; CCR %d; load lat %d; spec past %d \
     conds)"
    t.issue_width t.alu_units t.branch_units t.load_units t.store_units
    t.ccr_size t.load_latency t.max_spec_conds
