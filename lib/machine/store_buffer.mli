(** Predicated store buffer (§3.2).

    A FIFO in front of the D-cache. Both speculative and non-speculative
    stores are appended in issue order. Entries carry W (speculative), V
    (valid) and E (outstanding speculative exception) flags and a
    predicate with its own evaluation hardware: true → commit (clear W),
    false → squash (clear V). Head entries that are valid and
    non-speculative drain to the D-cache.

    The FIFO is a growable ring: appends are O(1) amortised and the
    per-cycle {!tick} walks a flat array evaluating {e compiled}
    predicates ({!Psb_isa.Pred.compiled}) against the packed {!Ccr}
    without allocating. *)

open Psb_isa

type t

val create : ?events:Psb_obs.Events.t -> unit -> t
(** [events], when given, receives the buffer lifecycle: [Sb_append] on
    every store (payload [b = 1] when speculative), [Sb_commit] and
    [Sb_squash] ([b = 0]) from {!tick}, [Sb_forward] on forwarding hits,
    [Sb_flush] per D-cache write from {!drain}, and [Sb_squash] with
    [b = 1] from {!invalidate_spec}. Absent, nothing is recorded and
    nothing is paid. *)

val set_now : t -> int -> unit
(** Stamp subsequent emitted events with this cycle. The owning
    simulator calls it once per cycle (only when events are attached). *)

val append :
  t -> addr:int -> value:int -> cpred:Pred.compiled -> spec:bool ->
  fault:Fault.t option -> unit

val tick :
  ?mode:Pred_kernel.mode -> ?dirty:int ->
  t -> Ccr.t -> (int * [ `Commit | `Squash ]) list
(** Evaluate speculative entries' predicates; commit or squash. Returns
    the affected addresses, in buffer order, for event tracing.

    [dirty] is the word-0 bitmask of conditions written since the last
    tick (default [-1]: everything dirty); under the [Mask] kernel an
    entry already examined once whose mask does not intersect [dirty] is
    still [Unspec] and is skipped without evaluation. A fresh entry is
    always examined on its first tick — unlike register versions, a store
    may be appended with an already-decided predicate. Callers that wrote
    a condition at index [>= Pred.word_bits], or replaced the CCR
    wholesale, must pass [-1]. The [Map] kernel examines everything. *)

val committing_exceptions :
  t -> (Cond.t -> Pred.cond_value) -> Fault.t list
(** Buffered store exceptions whose predicate evaluates true under the
    given (tentative) CCR. Takes a lookup closure because detection
    evaluates hypothetical states; returns immediately when no live
    speculative entry carries a fault. *)

val drain : t -> max:int -> Memory.t -> int
(** Write up to [max] head entries that are valid and non-speculative to
    memory; squashed head entries are discarded for free. Stops at the
    first still-speculative entry. Returns the number of D-cache writes.
    @raise Memory.Fault if a drained store faults (a non-speculative
    exception; the machine handles it like the scalar machine would). *)

val drain_all : t -> Memory.t -> unit
(** Drain every non-speculative entry (used when the machine halts).
    @raise Invalid_argument if speculative entries remain. *)

val forward :
  ?mode:Pred_kernel.mode ->
  t -> addr:int -> load_pred:Pred.t -> Ccr.t ->
  [ `Hit of int * Fault.t option | `Miss | `Commit_dependence ]
(** Store-to-load forwarding. Searches youngest → oldest among valid
    entries with the same address: entries on mutually exclusive paths
    (disjoint predicates) or already-squashed entries are skipped; an entry
    the load is control-dependent on (its predicate implied by the load's,
    or already true) forwards its value. An unresolved entry that may or
    may not be on the load's path is a {e commit dependence}
    (§4.2.2) — the scheduler must have prevented it, so the machine
    reports it as an error. *)

val invalidate_spec : t -> unit
val has_spec : t -> bool

val length : t -> int
(** Stored entries, including squashed ones not yet discarded by drain —
    what occupies the hardware FIFO. *)

val max_occupancy : t -> int
val spec_appends : t -> int
val commits : t -> int
val squashes : t -> int

val buffered_faults : t -> int
(** Live speculative entries currently carrying a buffered exception. *)

val tick_examined : t -> int
val tick_skipped : t -> int
(** Entries evaluated vs skipped by dirty-mask gating across all ticks. *)

val debug_recount : t -> int * int * int
(** [(length, live speculative, faulting speculative)] recounted by full
    scan — test oracle for the incremental counters. *)
