open Psb_isa
module Trace_event = Psb_obs.Trace_event
module Json = Psb_obs.Json

type t = {
  sink : Trace_event.t;
  model : Machine_model.t;
  limit : int;
  mutable truncated : bool;
  (* functional-unit lane assignment: ops within one cycle fill lanes of
     their unit class in issue order *)
  mutable lane_cycle : int;
  lanes : int array;  (* per unit class, next free lane this cycle *)
  mutable recovery_start : int option;
  (* cumulative commit/squash counters rendered as Perfetto counter
     tracks: the slopes make squash-heavy phases visible at a glance *)
  mutable spec_commits : int;
  mutable spec_squashes : int;
}

let class_index = function
  | Machine_model.Alu_unit -> 0
  | Machine_model.Branch_unit -> 1
  | Machine_model.Load_unit -> 2
  | Machine_model.Store_unit -> 3

let class_prefix = function
  | Machine_model.Alu_unit -> "alu"
  | Machine_model.Branch_unit -> "br"
  | Machine_model.Load_unit -> "ld"
  | Machine_model.Store_unit -> "st"

let create ?(limit = 2_000_000) ~model () =
  {
    sink = Trace_event.create ~process_name:"psb-vliw" ();
    model;
    limit;
    truncated = false;
    lane_cycle = -1;
    lanes = Array.make 4 0;
    recovery_start = None;
    spec_commits = 0;
    spec_squashes = 0;
  }

let issue_track t = Trace_event.track t.sink ~sort_index:1 "issue"

let fu_track t cls lane =
  let sort = 10 + (10 * class_index cls) + lane in
  Trace_event.track t.sink ~sort_index:sort
    (Printf.sprintf "%s%d" (class_prefix cls) lane)

let recovery_track t = Trace_event.track t.sink ~sort_index:50 "recovery"
let ccr_track t = Trace_event.track t.sink ~sort_index:60 "ccr"
let shadow_track t = Trace_event.track t.sink ~sort_index:70 "shadow-regfile"
let sb_track t = Trace_event.track t.sink ~sort_index:80 "store-buffer"

let truncated t = t.truncated

let note_commit t cycle =
  t.spec_commits <- t.spec_commits + 1;
  Trace_event.counter t.sink ~name:"spec-commits" ~ts:cycle
    ~value:t.spec_commits

let note_squash t cycle =
  t.spec_squashes <- t.spec_squashes + 1;
  Trace_event.counter t.sink ~name:"spec-squashes" ~ts:cycle
    ~value:t.spec_squashes

let on_event t cycle (ev : Vliw_sim.event) =
  if Trace_event.num_events t.sink >= t.limit then t.truncated <- true
  else
    match ev with
    | Vliw_sim.Bundle_issue { region; pc; ops; squashed; spec } ->
        Trace_event.span t.sink (issue_track t)
          ~name:(Printf.sprintf "%s[%d]" (Label.name region) pc)
          ~ts:cycle ~dur:1
          ~args:
            [
              ("region", Json.String (Label.name region));
              ("pc", Json.Int pc);
              ("ops", Json.Int ops);
              ("squashed", Json.Int squashed);
              ("spec", Json.Int spec);
            ]
          ()
    | Vliw_sim.Op_issue { op; pred; spec; latency } ->
        if cycle <> t.lane_cycle then begin
          t.lane_cycle <- cycle;
          Array.fill t.lanes 0 (Array.length t.lanes) 0
        end;
        let cls = Machine_model.unit_of_op op in
        let lane = t.lanes.(class_index cls) in
        t.lanes.(class_index cls) <- lane + 1;
        let name =
          Format.asprintf "%a%s" Instr.pp_op op (if spec then " .s" else "")
        in
        Trace_event.span t.sink (fu_track t cls lane) ~name ~ts:cycle
          ~dur:latency
          ~args:
            [
              ("pred", Json.String (Format.asprintf "%a" Pred.pp pred));
              ("spec", Json.Bool spec);
            ]
          ()
    | Vliw_sim.Stall reason ->
        Trace_event.instant t.sink (issue_track t)
          ~name:
            (match reason with
            | Vliw_sim.Shadow_conflict -> "stall: shadow conflict"
            | Vliw_sim.Store_buffer_full -> "stall: store buffer full")
          ~ts:cycle ()
    | Vliw_sim.Region_exit target ->
        Trace_event.instant t.sink (issue_track t)
          ~name:
            (match target with
            | Pcode.To_region l -> "exit -> " ^ Label.name l
            | Pcode.Stop -> "exit -> halt")
          ~ts:cycle ()
    | Vliw_sim.Exception_detected ->
        t.recovery_start <- Some cycle;
        Trace_event.instant t.sink (recovery_track t) ~name:"exception detected"
          ~ts:cycle ()
    | Vliw_sim.Recovery_done ->
        let start = Option.value t.recovery_start ~default:cycle in
        t.recovery_start <- None;
        Trace_event.span t.sink (recovery_track t) ~name:"recovery" ~ts:start
          ~dur:(cycle - start) ()
    | Vliw_sim.Cond_set (c, v) ->
        Trace_event.instant t.sink (ccr_track t)
          ~name:(Format.asprintf "%a := %b" Cond.pp c v)
          ~ts:cycle ()
    | Vliw_sim.Reg_commit r ->
        note_commit t cycle;
        Trace_event.instant t.sink (shadow_track t)
          ~name:(Format.asprintf "commit %a" Reg.pp r)
          ~ts:cycle ()
    | Vliw_sim.Reg_squash r ->
        note_squash t cycle;
        Trace_event.instant t.sink (shadow_track t)
          ~name:(Format.asprintf "squash %a" Reg.pp r)
          ~ts:cycle ()
    | Vliw_sim.Store_commit a ->
        note_commit t cycle;
        Trace_event.instant t.sink (sb_track t)
          ~name:(Printf.sprintf "commit sb@%d" a)
          ~ts:cycle ()
    | Vliw_sim.Store_squash a ->
        note_squash t cycle;
        Trace_event.instant t.sink (sb_track t)
          ~name:(Printf.sprintf "squash sb@%d" a)
          ~ts:cycle ()
    | Vliw_sim.Sb_occupancy n ->
        ignore (sb_track t);
        Trace_event.counter t.sink ~name:"sb-occupancy" ~ts:cycle ~value:n

let to_json ?result t =
  let metadata =
    [
      ("issue_width", Json.Int t.model.Machine_model.issue_width);
      ("truncated", Json.Bool t.truncated);
    ]
    @
    match result with
    | None -> []
    | Some (r : Vliw_sim.result) ->
        [
          ( "outcome",
            Json.String (Format.asprintf "%a" Interp.pp_outcome r.Vliw_sim.outcome)
          );
          ("cycles", Json.Int r.Vliw_sim.cycles);
          ( "cycle_breakdown",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Int v))
                 (Vliw_sim.breakdown_fields r.Vliw_sim.breakdown)) );
        ]
  in
  Trace_event.to_json t.sink ~metadata ()
