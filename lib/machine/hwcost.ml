type params = {
  nregs : int;
  width : int;
  read_ports : int;
  write_ports : int;
  ccr_size : int;
  shadow_read_ports : int;
  shadow_write_ports : int;
  rob_entries : int;
}

let default =
  {
    nregs = 32;
    width = 32;
    read_ports = 8;
    write_ports = 4;
    ccr_size = 4;
    (* The shadow value is read through the same operand-fetch path but
       needs its own write ports for speculative writebacks plus the
       commit-copy path. *)
    shadow_read_ports = 8;
    shadow_write_ports = 1;
    (* the rival out-of-order backend's buffer, at the base machine
       model's capacity (Machine_model.base.rob_size) *)
    rob_entries = 32;
  }

type report = {
  base_transistors : int;
  storage_transistors : int;
  commit_transistors : int;
  storage_overhead : float;
  commit_overhead : float;
  total_overhead : float;
  eval_gate_levels : int;
  encode_bits_region : int;
  encode_bits_trace : int;
  encode_bits_srcs : int;
  rob_entry_transistors : int;
  rob_rename_transistors : int;
  rob_cam_transistors : int;
  rob_overhead : float;
}

(* A multi-ported SRAM cell: a cross-coupled pair (4T) plus one pass
   transistor per single-ended port connection. *)
let cell_transistors ~read_ports ~write_ports = 4 + read_ports + write_ports

let xor_t = 6 (* CMOS XOR *)
let or_t = 4
let and_t = 4
let flipflop_t = 8

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let analyze p =
  let base_cell = cell_transistors ~read_ports:p.read_ports ~write_ports:p.write_ports in
  let base = p.nregs * p.width * base_cell in
  let shadow_cell =
    cell_transistors ~read_ports:p.shadow_read_ports ~write_ports:p.shadow_write_ports
  in
  let storage = p.nregs * p.width * shadow_cell in
  (* Commit hardware per entry: 2K bits of ternary predicate storage, the
     masked-match logic (XOR + OR per condition, an AND tree), the three
     flags (W, V, E) and their update logic. *)
  let pred_storage = 2 * p.ccr_size * flipflop_t in
  let match_logic = p.ccr_size * (xor_t + or_t) + (p.ccr_size - 1) * and_t in
  let flags = 3 * (flipflop_t + and_t) in
  let commit = p.nregs * (pred_storage + match_logic + flags) in
  (* The rival reorder-buffer backend, costed against the same base
     register file (per the elgron-eon blueprint: circular entry array,
     rename map, completion broadcast, store-to-load address match).
     Per entry: the buffered result, the destination architectural
     register id, and valid/issued/done/exception state, all in
     flip-flops (the entries are randomly written by completion, not a
     simple multi-ported SRAM). *)
  let tag_bits = ceil_log2 p.rob_entries in
  let dst_bits = ceil_log2 p.nregs in
  let rob_entry =
    p.rob_entries * ((p.width + dst_bits + 4) * flipflop_t)
  in
  (* Rename table: one ROB tag (plus a busy bit) per architectural
     register, ported like the base file's operand-fetch path. *)
  let rename_cell =
    cell_transistors ~read_ports:p.read_ports ~write_ports:p.write_ports
  in
  let rob_rename = (p.nregs * tag_bits * rename_cell) + (p.nregs * flipflop_t) in
  (* CAMs: the completion broadcast matches the finished tag against two
     source tags in every entry, and loads match their address against
     every entry's store address for forwarding. A comparator is an XOR
     per bit folded by an AND tree. *)
  let tag_cmp = (tag_bits * xor_t) + ((tag_bits - 1) * and_t) in
  let addr_cmp = (p.width * xor_t) + ((p.width - 1) * and_t) in
  let rob_cam = p.rob_entries * ((2 * tag_cmp) + addr_cmp) in
  let fb = float_of_int base in
  {
    base_transistors = base;
    storage_transistors = storage;
    commit_transistors = commit;
    storage_overhead = float_of_int storage /. fb;
    commit_overhead = float_of_int commit /. fb;
    total_overhead = float_of_int (storage + commit) /. fb;
    eval_gate_levels = 3;
    encode_bits_region = 2 * p.ccr_size;
    encode_bits_trace = ceil_log2 p.ccr_size + 1;
    encode_bits_srcs = 2;
    rob_entry_transistors = rob_entry;
    rob_rename_transistors = rob_rename;
    rob_cam_transistors = rob_cam;
    rob_overhead = float_of_int (rob_entry + rob_rename + rob_cam) /. fb;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>base register file:     %d transistors@,\
     speculative storage:   +%d (%.0f%%)@,\
     commit hardware:       +%d (%.0f%%)@,\
     total overhead:        %.0f%%@,\
     predicate evaluation:  %d gate levels@,\
     encoding: region +%d predicate bits, trace +%d bits, +%d source bits@,\
     rival ROB backend:     +%d entries, +%d rename, +%d CAM (%.0f%%)@]"
    r.base_transistors r.storage_transistors (100. *. r.storage_overhead)
    r.commit_transistors (100. *. r.commit_overhead)
    (100. *. r.total_overhead) r.eval_gate_levels r.encode_bits_region
    r.encode_bits_trace r.encode_bits_srcs r.rob_entry_transistors
    r.rob_rename_transistors r.rob_cam_transistors (100. *. r.rob_overhead)
