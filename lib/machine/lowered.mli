(** Regions lowered to flat threaded code: the structure-of-arrays form
    the machine's default execution kernel walks every cycle.

    {!Pcode.t} is the right shape for the compiler — slots are variant
    trees, operands are symbolic, bundles are lists — but the simulator
    pays for that shape on every simulated cycle: list traversals,
    variant matches, shadow-set membership tests and latency lookups per
    issued operation. [Lowered.compile] pays those costs {e once} per
    region, producing parallel flat arrays indexed by a dense operation
    number:

    - per-bundle index ranges ([op_bounds]/[ex_bounds], CSR-style) so a
      bundle's operations and exits are contiguous array slices;
    - a dense {!kind} tag per operation (constant constructors, so the
      per-cycle dispatch compiles to a jump table);
    - preresolved operand descriptors: register index or immediate, with
      the shadow-source membership test ([.s] sourcing, §3.5) folded
      into a per-operand flag;
    - the {!Psb_isa.Pred.compiled} mask (shared with the tree form — the
      same physical comparator the predicate kernel evaluates) and the
      source predicate per slot;
    - the issue latency from {!Machine_model.latency}, resolved at
      lowering time;
    - exit targets preresolved to region {e indices}, so a region
      transition is an array read instead of {!Pcode.find_region}'s
      list search.

    The lowering is purely representational: {!Vliw_sim} running the
    lowered form must be cycle- and event-identical to the tree
    reference (enforced by the differential suite and the fuzzer; see
    {!Exec_kernel}). [op_src] keeps the originating {!Pcode.pinstr} per
    operation for event emission and diagnostics. *)

open Psb_isa

type kind = Knop | Kalu | Kmov | Kload | Kcmp | Kstore | Ksetc | Kout
(** Dense operation tag. [Knop] pads unused table entries. *)

type region = {
  source : Pcode.region;  (** the region this was lowered from *)
  nbundles : int;
  op_bounds : int array;
      (** length [nbundles + 1]; bundle [b]'s operations occupy indices
          [op_bounds.(b) .. op_bounds.(b+1) - 1], in slot order *)
  ex_bounds : int array;  (** same, for the exit slots *)
  has_store : bool array;
      (** per bundle: whether any slot is a store (the store-buffer
          structural-hazard test, precomputed) *)
  op_kind : kind array;
  op_cpred : Pred.compiled array;  (** compiled predicate per operation *)
  op_pred : Pred.t array;  (** its source form (shadow reads, events) *)
  op_lat : int array;  (** {!Machine_model.latency}, preresolved *)
  op_dst : int array;  (** destination register index; [-1] if none *)
  op_aux : int array;
      (** load/store address offset, or the condition index a [Setc]
          writes *)
  op_alu : Opcode.alu array;  (** ALU opcode ([Kalu] rows only) *)
  op_cmp : Opcode.cmp array;  (** compare opcode ([Kcmp]/[Ksetc] rows) *)
  op_s1_reg : int array;
      (** first source (ALU/Mov/Cmp/Setc operand [a]/[src], load/store
          base): register index, or [-1] for an immediate *)
  op_s1_imm : int array;  (** immediate value when [op_s1_reg] is [-1] *)
  op_s1_sh : bool array;  (** read the shadow version (speculative source) *)
  op_s2_reg : int array;
      (** second source (operand [b], store data register) *)
  op_s2_imm : int array;
  op_s2_sh : bool array;
  op_src : Pcode.pinstr array;
      (** originating slot, for event emission and diagnostics *)
  ex_cpred : Pred.compiled array;
  ex_target : int array;
      (** exit target as an index into {!t.regions}; [-1] for [Stop] *)
  ex_tgt : Pcode.exit_target array;  (** source form, for events *)
}

type t = {
  source : Pcode.t;
  machine : Machine_model.t;
      (** the machine whose latencies are baked into [op_lat]; a lowered
          form may only run on this model *)
  regions : region array;  (** in [source.regions] order *)
  entry : int;  (** index of the entry region *)
  nregs : int;
      (** register-file size the code requires (same scan {!Vliw_sim}
          performs on the tree form) *)
  max_bundle_ops : int;
      (** widest bundle's operation count — sizes the per-cycle decision
          scratch buffer *)
}

val compile : machine:Machine_model.t -> Pcode.t -> t
(** Lower every region once. Pure; the result shares the [Pcode.t]'s
    compiled predicates and slots (no predicate recompilation). Latency
    preresolution makes the result model-specific: running it on a
    machine other than [machine] is rejected by {!Vliw_sim.run}.
    @raise Invalid_argument if an exit names an undefined region (the
    same condition {!Pcode.make} validates). *)

val num_ops : t -> int
(** Total lowered operation slots (equals the [Op] slots of [source]). *)

val num_exits : t -> int
(** Total lowered exit slots (equals the [Exit] slots of [source]). *)
