(** The scalar baseline (MIPS R3000-like, §4).

    A thin, documented front-end over the reference interpreter: single
    issue, one cycle per instruction, two-cycle loads (one-cycle load-use
    interlock), branches free under the paper's optimistic BTB assumption.
    Its cycle counts play the role of the pixie-measured R3000 cycles. *)

open Psb_isa

val run :
  ?fuel:int ->
  ?record_trace:bool ->
  ?kernel:Scalar_kernel.mode ->
  ?decoded:Decoded.t ->
  ?observer:(Instr.op -> int option -> unit) ->
  ?events:Psb_obs.Events.t ->
  ?metrics:Psb_obs.Metrics.t ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Program.t ->
  Interp.result
(** [metrics] collects per-class dynamic instruction counters
    ([scalar_ops{class=alu|load|...}]), memory-access and cycle totals —
    the same registry the VLIW machine and the compiler report into, so
    one dump covers a whole compile-and-run pipeline.

    [events] records one [Region_enter] per block entered (the scalar
    machine never speculates, so its stream is just the block
    timeline).

    [kernel]/[decoded] pass through to {!Psb_isa.Interp.run}: the
    decoded flat-array engine is the default, and a prebuilt
    {!Psb_isa.Decoded.t} lets repeated runs of one program decode
    once. *)

val cycles :
  regs:(Reg.t * int) list -> mem:Memory.t -> Program.t -> int
(** Convenience: scalar cycle count only (no trace recorded). *)
