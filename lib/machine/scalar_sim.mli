(** The scalar baseline (MIPS R3000-like, §4).

    A thin, documented front-end over the reference interpreter: single
    issue, one cycle per instruction, two-cycle loads (one-cycle load-use
    interlock), branches free under the paper's optimistic BTB assumption.
    Its cycle counts play the role of the pixie-measured R3000 cycles. *)

open Psb_isa

val run :
  ?fuel:int ->
  ?record_trace:bool ->
  ?observer:(Instr.op -> int option -> unit) ->
  ?metrics:Psb_obs.Metrics.t ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Program.t ->
  Interp.result
(** [metrics] collects per-class dynamic instruction counters
    ([scalar_ops{class=alu|load|...}]), memory-access and cycle totals —
    the same registry the VLIW machine and the compiler report into, so
    one dump covers a whole compile-and-run pipeline. *)

val cycles :
  regs:(Reg.t * int) list -> mem:Memory.t -> Program.t -> int
(** Convenience: scalar cycle count only (no trace recorded). *)
