(** Structured trace sink for the VLIW machine: maps {!Vliw_sim.event}s
    onto Chrome trace-event tracks ({!Psb_obs.Trace_event}), one per
    functional unit plus the CCR, the shadow register file and the store
    buffer. Open the emitted JSON in Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing]; one simulated cycle renders as 1 µs.

    Tracks:
    - [issue] — one span per issued bundle (args: region, pc, executed /
      squashed / speculative slot counts), instant markers for region
      exits and stalls;
    - [alu0..], [br], [ld0..], [st0..] — one lane per functional unit;
      each executed operation is a span lasting its latency, suffixed
      [.s] when issued speculatively;
    - [recovery] — one span per exception-recovery episode (detection →
      recovery done);
    - [ccr] — condition writes as instant markers;
    - [shadow-regfile] — speculative commits and squashes;
    - [store-buffer] — store commits/squashes, plus an occupancy counter
      series rendered as an area chart;
    - [spec-commits] / [spec-squashes] — cumulative counter series over
      all buffered speculative state (shadow registers + store buffer);
      their slopes make squash-heavy phases visible at a glance. *)

type t

val create : ?limit:int -> model:Machine_model.t -> unit -> t
(** [limit] caps the number of recorded trace events (default 2_000_000)
    so tracing a pathological run cannot exhaust memory; past the cap,
    events are dropped and {!truncated} reports it. *)

val on_event : t -> int -> Vliw_sim.event -> unit
(** Pass as [Vliw_sim.run ~on_event:(Vliw_trace.on_event sink)]. *)

val truncated : t -> bool

val to_json : ?result:Vliw_sim.result -> t -> Psb_obs.Json.t
(** The trace document. When [result] is given, outcome, cycle count and
    the cycle-accounting breakdown are attached as trace metadata. *)
