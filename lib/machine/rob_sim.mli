(** Out-of-order reorder-buffer backend — the modern rival model.

    Where the predicating VLIW machine buffers speculative state in
    predicated shadow registers and a predicated store buffer, this
    backend runs the {e same scalar ISA} on the classic dynamic
    alternative: a circular reorder buffer with register renaming,
    following the compact hardware blueprint cited in ROADMAP
    ([elgron-eon__eonv/commit.v]) — a head/tail circular buffer, a
    per-architectural-register rename map ([rmap], valid bits [rrob]),
    completion notification that broadcasts results to waiting
    consumers, and exceptions held in entries and raised only at
    commit.

    Per cycle, in order:

    + {e commit}: up to [issue_width] completed entries retire from the
      head in program order (stores bounded by [dcache_ports]); stores
      write the D-cache, [Out] values are emitted, architectural
      registers and conditions are updated. A fault held in the head
      entry is raised here: recoverable faults (demand paging) are
      handled, the whole buffer is flushed and fetch restarts at the
      faulting instruction; fatal faults end the run.
    + {e complete}: executing entries count down their latency; on
      completion the result is computed (loads forward from the
      youngest older store to the same address, else read the D-cache;
      faults are buffered in the entry, never raised), and broadcast to
      entries waiting on this slot. A resolved branch that disagrees
      with its prediction squashes all younger entries, rebuilds the
      rename map from the survivors and redirects fetch.
    + {e issue}: waiting entries whose operands are all ready begin
      executing, oldest first, bounded by the per-class function-unit
      counts; a load additionally waits until every older store has
      resolved its address (total store-queue disambiguation).
    + {e dispatch}: up to [issue_width] instructions enter at the tail
      along the predicted path (a 2-bit saturating counter per branch
      block), capturing each operand as a value or as the producing
      slot's tag; [Jmp]s are followed for free; a full buffer stalls
      fetch.

    Because stores, outputs and faults only touch architectural state
    at in-order commit, a squashed wrong-path entry can never write
    memory, emit output, map a demand page or raise — so the
    architectural results (outcome, output, final registers, final
    memory, handled-fault count) are byte-identical to the DSL
    interpreter ({!Psb_isa.Interp}), a property the differential test
    stack enforces on every fuzz trial. *)

open Psb_isa

type stats = {
  fetched : int;  (** entries dispatched, wrong paths included *)
  committed : int;  (** entries retired in program order *)
  squashed : int;  (** entries flushed on mispredict or fault restart *)
  branches : int;  (** branch entries retired *)
  mispredicts : int;
  loads_forwarded : int;  (** loads satisfied from an older store entry *)
  squashed_faults : int;
      (** faults buffered in squashed entries — discarded, never raised *)
  fault_restarts : int;  (** commit-time fault flushes (incl. stale retries) *)
  rob_max_occupancy : int;
  rob_full_stalls : int;  (** dispatch-blocked cycles with a full buffer *)
}

(** {2 Cycle accounting}

    Every simulated cycle is attributed to exactly one category, so the
    breakdown always sums to {!result.cycles} (test-enforced across the
    whole suite × machine models, mirroring the VLIW machine's
    accounting). The priority is the order of the fields below. *)

type breakdown = {
  rb_fault : int;  (** commit-time fault handling and restart flushes *)
  rb_commit : int;  (** cycles that retired at least one entry *)
  rb_flush : int;  (** redirect stall after a mispredict flush *)
  rb_mem : int;
      (** head is a memory operation still waiting (disambiguation,
          load latency) *)
  rb_frontend : int;  (** buffer empty, refilling from fetch *)
  rb_exec : int;  (** otherwise: in-flight work executing or waiting *)
}

val breakdown_total : breakdown -> int

val breakdown_fields : breakdown -> (string * int) list
(** Category name → cycles, in priority order (for serialisation). *)

val pp_breakdown : Format.formatter -> breakdown -> unit
(** Table with per-category percentages. *)

type result = {
  outcome : Interp.outcome;
  output : int list;
  cycles : int;
  dyn_instrs : int;  (** committed entries (operations and branches) *)
  regs : int Reg.Map.t;  (** registers ever written, as {!Interp.result} *)
  faults_handled : int;
  stats : stats;
  breakdown : breakdown;
}

val default_fuel : int
(** Cycle budget (60M, like the VLIW machine). *)

val run :
  ?fuel:int ->
  ?events:Psb_obs.Events.t ->
  ?metrics:Psb_obs.Metrics.t ->
  ?kernel:Scalar_kernel.mode ->
  ?decoded:Decoded.t ->
  model:Machine_model.t ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Program.t ->
  result
(** [fuel] bounds the cycle count. [mem] is mutated (at commit only).
    The machine draws [issue_width], function-unit counts, latencies,
    [dcache_ports], [transition_penalty] and [rob_size] from [model] —
    the same capacities the VLIW machine runs under, so the two
    backends are compared under identical cycle accounting.

    [kernel] selects the fetch frontend ({!Psb_isa.Scalar_kernel}):
    [Decoded] — the default — dispatches straight from the flat
    {!Psb_isa.Decoded} arrays (block-indexed branch-predictor counters,
    no [Label] hashing on the per-cycle path), [Tree] re-walks the
    block lists and decodes each variant at fetch. Entries carry the
    same dense class tags either way, so the issue/complete/commit
    machinery is shared and the two frontends are pinned
    cycle-, event- and metric-identical by the differential tests.
    [decoded] supplies a prebuilt form so repeated runs of one program
    decode once; it must have been built from exactly this program.
    @raise Invalid_argument if [decoded] was decoded from a different
    program value ({!Psb_isa.Decoded.check_source}).

    [events] records the retirement timeline into the structured ring:
    one [Region_enter] per committed-path block visit (commit-ordered,
    so per-region residencies telescope to the cycle total and the
    {!Psb_obs.Spec_profile} fold reconciles), [Rob_commit] per retired
    entry ([a] = fetch sequence number — strictly increasing, the
    program-order witness), [Rob_squash] per flushed entry, and
    [Fault_deferred]/[Fault_raised] for the buffered-exception
    lifecycle. Absent, instrumentation costs one pointer test.

    [metrics] collects, under the [rob_] prefix: committed operations
    by class ([rob_ops{class=...}]), cycle and instruction totals, the
    cycle-accounting categories ([rob_cycles{category=...}]), and
    mispredict/flush counters. *)

val cycles :
  model:Machine_model.t ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Program.t ->
  int
(** Convenience: cycle count only. *)
