(** Cycle-level simulator of the predicating VLIW machine (Figure 1).

    Executes {!Pcode.t}. Each cycle: completed writebacks are applied;
    pending condition writes are checked against the buffered speculative
    exceptions ({e detection}, §3.5) before updating the CCR; the register
    file and store buffer evaluate their stored predicates and commit or
    squash; the store buffer drains to the D-cache; and one bundle issues.
    An instruction whose predicate evaluates true executes
    non-speculatively, false is squashed, unspecified executes
    speculatively into the shadow state.

    On detection of a committed speculative exception the machine saves the
    future condition, invalidates all speculative state, rolls back to the
    region top (the implicit RPC) and re-executes in {e recovery mode}:
    instructions whose predicate is specified under the (frozen) current
    condition are squashed, unspecified ones re-execute, and a re-occurring
    exception is handled if its predicate is true under the future
    condition. Recovery ends when the PC reaches the EPC; the future
    condition is then copied into the CCR.

    Region exits reset the CCR and squash any speculative state left
    behind — the closed-region property of §3.3 guarantees such state
    belongs to untaken paths. *)

open Psb_isa

type stats = {
  dyn_bundles : int;
  dyn_ops : int;  (** executed operation slots (squashed ones excluded) *)
  squashed_ops : int;
  spec_ops : int;  (** ops issued with an unspecified predicate *)
  commits : int;  (** speculative register/store commits *)
  squashes : int;
  recoveries : int;  (** recovery-mode episodes *)
  recovery_cycles : int;
  shadow_conflicts : int;
  conflict_stall_cycles : int;
  sb_max_occupancy : int;
  sb_stall_cycles : int;  (** cycles issue stalled on a full store buffer *)
  region_transitions : int;
}

(** {2 Cycle accounting}

    Every simulated cycle is attributed to exactly one category, so the
    breakdown answers "where did the cycles go" and always sums to
    {!result.cycles} (a property the test suite enforces for every
    workload × model pair). A cycle that both stalls and sits in recovery
    mode is charged to the stall — the priority is the order of the
    record fields below. *)

type breakdown = {
  bd_useful : int;
      (** normal-mode issue cycles in which at least one operation
          executed or an exit fired *)
  bd_squashed : int;
      (** normal-mode issue cycles whose every operation slot had a false
          predicate — fetched but fully wasted work *)
  bd_shadow_stall : int;  (** issue held by a shadow-storage conflict *)
  bd_sb_stall : int;  (** issue held by a full store buffer *)
  bd_recovery : int;
      (** recovery-mode re-execution (including the detection cycle) *)
  bd_transition : int;
      (** region-transition cost: the interlock that drains in-flight
          writebacks plus the configured redirect penalty *)
}

val breakdown_total : breakdown -> int
val breakdown_fields : breakdown -> (string * int) list
(** Category name → cycles, in priority order (for serialisation). *)

val pp_breakdown : Format.formatter -> breakdown -> unit
(** Table with per-category percentages. *)

type result = {
  outcome : Interp.outcome;
  output : int list;
  cycles : int;
  regs : int Reg.Map.t;
  faults_handled : int;
  stats : stats;
  breakdown : breakdown;
}

type stall_reason = Shadow_conflict | Store_buffer_full

type event =
  | Reg_commit of Reg.t
  | Reg_squash of Reg.t
  | Store_commit of int  (** address *)
  | Store_squash of int
  | Exception_detected
  | Recovery_done
  | Region_exit of Pcode.exit_target
  | Bundle_issue of {
      region : Label.t;
      pc : int;  (** bundle index within the region *)
      ops : int;  (** operation slots that executed (incl. speculative) *)
      squashed : int;  (** slots whose predicate evaluated false *)
      spec : int;  (** slots issued speculatively *)
    }
  | Op_issue of { op : Instr.op; pred : Pred.t; spec : bool; latency : int }
      (** One executed operation slot, emitted after its
          {!Bundle_issue}. [latency] is the writeback distance — the
          trace sink renders the span. *)
  | Stall of stall_reason
  | Cond_set of Cond.t * bool  (** CCR update applied (no detection) *)
  | Sb_occupancy of int
      (** store-buffer occupancy after this cycle's commit/squash
          resolution (before the drain), emitted only when it changed *)

val pp_event : Format.formatter -> event -> unit

exception Machine_error of string
(** Raised when executed code violates a machine invariant the scheduler
    must uphold (commit-dependence violation, side effect with an
    unspecified predicate, running off a region end, Setc bundled with an
    exit, ...). Indicates a compiler bug, not a program fault. *)

val run :
  ?fuel:int ->
  ?regfile_mode:Regfile.mode ->
  ?pred_kernel:Pred_kernel.mode ->
  ?exec_kernel:Exec_kernel.mode ->
  ?lowered:Lowered.t ->
  ?on_event:(int -> event -> unit) ->
  ?events:Psb_obs.Events.t ->
  ?metrics:Psb_obs.Metrics.t ->
  model:Machine_model.t ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Pcode.t ->
  result
(** [fuel] bounds the cycle count (default 60M). [mem] is mutated.
    [on_event] receives commit/squash/detection/recovery/exit/issue
    events with the cycle they occur in — the machine's observable
    timeline (compare Table 1). When neither [on_event] nor [metrics] is
    given the instrumentation costs nothing.

    [events], independently of [on_event], records the speculation
    lifecycle into a structured ring buffer ([Psb_obs.Events]): region
    enter/exit (region names interned), predicate resolutions
    ([Pred_true]/[Pred_false] per applied condition write), one normal-mode
    [Issue] per issued bundle ([a] = executed slots, [b] = squashed
    slots; recovery-mode bundles are deliberately not logged so that
    useful/wasted sums reconcile with the {!breakdown}), shadow-register
    and store-buffer lifecycles (via {!Regfile} and {!Store_buffer}), and
    [Fault_deferred]/[Fault_raised]. Absent, the per-cycle path allocates
    nothing on its behalf (enforced by a minor-words test).

    [pred_kernel] selects how per-cycle predicate evaluation runs
    (default {!Pred_kernel.default}): [Mask] uses the compiled bitmask
    comparators with dirty-condition gating, [Map] re-evaluates the
    source condition maps. Both produce identical results and cycle
    counts; [Map] exists as the differential-testing reference.

    [exec_kernel] selects the issue-phase representation (default
    {!Exec_kernel.default}): [Lowered] walks the flat
    structure-of-arrays form of {!Lowered}, [Tree] re-walks the
    {!Pcode.bundle} slot lists every cycle. Both are cycle- and
    event-identical; [Tree] is the differential-testing reference.
    Under [Lowered], [lowered] supplies a pre-lowered form (e.g. from
    the compile cache via [Psb_compiler.Driver]); when absent the code
    is lowered on entry. The supplied form must have been built by
    {!Lowered.compile} from this exact [Pcode.t] value and [model]
    (@raise Invalid_argument otherwise) — callers that substitute a
    different pcode, like the fuzzer's miscompile injection, must drop
    the cached lowering. [lowered] is ignored under [Tree].

    [metrics] collects, under the [vliw_] prefix: a store-buffer
    occupancy histogram sampled every cycle ([vliw_sb_occupancy]), an
    executed-ops-per-bundle histogram ([vliw_bundle_ops]), final
    counters for cycles, operations and the cycle-accounting categories
    ([vliw_cycles{category=...}]), plus predicate-kernel counters:
    [vliw_tick_entries{gate=examined|skipped}] (buffered entries
    evaluated vs skipped by dirty-mask gating) and
    [vliw_pred_evals{kind=mask|map}] (evaluations by kernel). *)
