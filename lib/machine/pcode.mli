(** Predicated VLIW code: the compiler's output and the machine's input.

    A program is a set of {e regions}; each region is a straight line of
    VLIW bundles (one bundle issues per cycle). Control transfer inside a
    region has been eliminated by predication; leaving a region happens
    through predicated {e exit} slots, which fire when their predicate
    evaluates true against the CCR. Condition registers are region-local:
    the CCR is reset on every region transition (§3.3).

    This tree-shaped form (bundles as slot lists, operands as variants)
    is the canonical interchange format: the compiler emits it
    ([Psb_compiler.Sched]), the static verifier analyses it
    ([Psb_verify.Verify]), the text format round-trips it
    ([Pcode_text], [.ppsb]), and the machine's reference execution
    kernel walks it directly. For simulation throughput the machine
    normally executes a flat structure-of-arrays lowering of it instead
    — see {!Lowered} and {!Exec_kernel}. *)

open Psb_isa

type pinstr = {
  pred : Pred.t;
  cpred : Pred.compiled;
      (** [pred] compiled to mask form, once, at slot construction — what
          the machine's per-cycle paths evaluate *)
  op : Instr.op;
  shadow_srcs : Reg.Set.t;
      (** source registers the instruction fetches from the speculative
          state ([.s] suffix in the paper); the hardware falls back to the
          sequential register when the shadow entry is invalid (§3.5) *)
}

type exit_target = To_region of Label.t | Stop

type slot =
  | Op of pinstr
  | Exit of { pred : Pred.t; cpred : Pred.compiled; target : exit_target }

type bundle = slot list

type region = {
  name : Label.t;
  code : bundle array;
  source_blocks : Label.t list;
      (** scalar blocks this region was built from (diagnostics) *)
}

type t = { entry : Label.t; regions : region list }

val op : ?shadow_srcs:Reg.Set.t -> Pred.t -> Instr.op -> slot
(** Operation slot under a predicate; compiles the predicate to mask
    form once, here. [shadow_srcs] (default empty) marks which source
    registers read the speculative version. *)

val exit_to : Pred.t -> Label.t -> slot
(** Predicated region exit transferring control to the named region. *)

val exit_stop : Pred.t -> slot
(** Predicated exit that halts the program. *)

val make : entry:Label.t -> region list -> t
(** Validates region-name uniqueness, entry and exit-target resolution,
    and that the final bundle of each region contains an exit slot (the
    exit predicates together must be exhaustive; the machine checks this
    dynamically). @raise Invalid_argument otherwise. *)

val find_region : t -> Label.t -> region
(** Region by name. @raise Not_found on an unknown label (cannot happen
    for exit targets of a {!make}-validated program). *)

val num_regions : t -> int

val num_slots : t -> int
(** Total static slots — operations {e and} exits — across all regions;
    the code-growth metric, and exactly the slot population the lowering
    pass flattens ([Lowered.num_ops] + [Lowered.num_exits]). *)

val num_bundles : t -> int
(** Total bundles (issue cycles of straight-line code) across all
    regions. *)

val slot_pred : slot -> Pred.t
(** The predicate of either slot form. *)

val slot_cpred : slot -> Pred.compiled
(** The compiled mask of either slot form. *)

val check_resources : Machine_model.t -> t -> (unit, string) result
(** Every bundle must fit the machine's issue width and function units,
    and every predicate must fit the CCR. *)

val pp : Format.formatter -> t -> unit
(** Full listing in [.ppsb] syntax (parseable by [Pcode_text]); also the
    structural-identity witness the property tests compare compiles
    with. *)

val pp_region : Format.formatter -> region -> unit
(** One region in the same syntax. *)
