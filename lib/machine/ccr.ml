open Psb_isa

(* The CCR is stored packed: [specified] has bit [i] set iff condition
   [i] is specified, [values] its value (meaningful only under a
   specified bit — {!set} keeps unspecified value bits at 0 so packed
   words compare equal whenever the ternary contents do). Conditions
   [>= Pred.word_bits] live in the [wide] overflow words; real machines
   never get there (the paper's K is single-digit), but the fallback
   keeps the module total in width. *)

type wide = { w_spec : int array; w_vals : int array }
(* words 1..: condition [i] is bit [i mod word_bits] of word
   [i / word_bits], stored at array index [i / word_bits - 1]. *)

type t = {
  width : int;
  mutable specified : int;
  mutable values : int;
  wide : wide option;
  (* evaluation accounting (exported through lib/obs by the machine) *)
  mutable evals_mask : int;
  mutable evals_map : int;
}

let word_bits = Pred.word_bits

let create ~width =
  if width <= 0 then invalid_arg "Ccr.create: width must be positive";
  let wide =
    if width <= word_bits then None
    else
      let nwords = (width - 1) / word_bits in
      Some { w_spec = Array.make nwords 0; w_vals = Array.make nwords 0 }
  in
  { width; specified = 0; values = 0; wide; evals_mask = 0; evals_map = 0 }

let width t = t.width

let out_of_range name t c =
  ignore t;
  invalid_arg (Format.asprintf "Ccr.%s: %a outside CCR" name Cond.pp c)

let get t c =
  let i = Cond.index c in
  if i >= t.width then out_of_range "get" t c;
  if i < word_bits then
    let b = 1 lsl i in
    if t.specified land b = 0 then Pred.U
    else if t.values land b = 0 then Pred.F
    else Pred.T
  else
    let w = match t.wide with Some w -> w | None -> assert false in
    let j = (i / word_bits) - 1 and b = 1 lsl (i mod word_bits) in
    if w.w_spec.(j) land b = 0 then Pred.U
    else if w.w_vals.(j) land b = 0 then Pred.F
    else Pred.T

let set t c v =
  let i = Cond.index c in
  if i >= t.width then out_of_range "set" t c;
  if i < word_bits then begin
    let b = 1 lsl i in
    t.specified <- t.specified lor b;
    t.values <- (if v then t.values lor b else t.values land lnot b)
  end
  else begin
    let w = match t.wide with Some w -> w | None -> assert false in
    let j = (i / word_bits) - 1 and b = 1 lsl (i mod word_bits) in
    w.w_spec.(j) <- w.w_spec.(j) lor b;
    w.w_vals.(j) <-
      (if v then w.w_vals.(j) lor b else w.w_vals.(j) land lnot b)
  end

let reset t =
  t.specified <- 0;
  t.values <- 0;
  match t.wide with
  | None -> ()
  | Some w ->
      Array.fill w.w_spec 0 (Array.length w.w_spec) 0;
      Array.fill w.w_vals 0 (Array.length w.w_vals) 0

let copy t =
  {
    t with
    wide =
      Option.map
        (fun w ->
          { w_spec = Array.copy w.w_spec; w_vals = Array.copy w.w_vals })
        t.wide;
  }

let assign t ~from =
  if t.width <> from.width then invalid_arg "Ccr.assign: width mismatch";
  t.specified <- from.specified;
  t.values <- from.values;
  match (t.wide, from.wide) with
  | None, None -> ()
  | Some w, Some f ->
      Array.blit f.w_spec 0 w.w_spec 0 (Array.length w.w_spec);
      Array.blit f.w_vals 0 w.w_vals 0 (Array.length w.w_vals)
  | _ -> assert false (* same width implies same shape *)

let lookup t c = get t c

let eval t p =
  t.evals_map <- t.evals_map + 1;
  Pred.eval p (lookup t)

(* [word t w]: packed (specified, values) of CCR word [w]; zero past the
   physical width, so an out-of-CCR condition reads as unspecified. *)
let word t w =
  if w = 0 then (t.specified, t.values)
  else
    match t.wide with
    | Some wd when w - 1 < Array.length wd.w_spec ->
        (wd.w_spec.(w - 1), wd.w_vals.(w - 1))
    | Some _ | None -> (0, 0)

(* Mask reproduction of {!Pred.eval}'s unspec-dominant rule: any
   mentioned-but-unspecified condition → [Unspec]; otherwise all
   mentioned value bits must match [c_want]. *)
let evalc t (cp : Pred.compiled) =
  t.evals_mask <- t.evals_mask + 1;
  match cp.Pred.c_wide with
  | None ->
      let m = cp.Pred.c_mask in
      if m land t.specified <> m then Pred.Unspec
      else if (t.values lxor cp.Pred.c_want) land m = 0 then Pred.True
      else Pred.False
  | Some (masks, wants) ->
      let n = Array.length masks in
      let result = ref Pred.True in
      (try
         for w = 0 to n - 1 do
           let m = masks.(w) in
           if m <> 0 then begin
             let spec, vals = word t w in
             if m land spec <> m then begin
               result := Pred.Unspec;
               raise Exit (* Unspec dominates any earlier mismatch *)
             end
             else if (vals lxor wants.(w)) land m <> 0 then
               result := Pred.False
           end
         done
       with Exit -> ());
      !result

let evals_mask t = t.evals_mask
let evals_map t = t.evals_map

let all_specified t p =
  (* No [Cond.Set] detour: fold the literal map directly. *)
  Pred.fold_conds (fun c _ acc -> acc && get t c <> Pred.U) p true

let all_specified_c t (cp : Pred.compiled) =
  match cp.Pred.c_wide with
  | None -> cp.Pred.c_mask land t.specified = cp.Pred.c_mask
  | Some (masks, _) ->
      let ok = ref true in
      Array.iteri
        (fun w m ->
          if m <> 0 then
            let spec, _ = word t w in
            if m land spec <> m then ok := false)
        masks;
      !ok

let pp ppf t =
  Format.pp_print_string ppf "{";
  for i = 0 to t.width - 1 do
    if i > 0 then Format.pp_print_string ppf ",";
    Format.pp_print_string ppf
      (match get t (Cond.make i) with
      | Pred.T -> "T"
      | Pred.F -> "F"
      | Pred.U -> "U")
  done;
  Format.pp_print_string ppf "}"
