(** Which per-cycle execution kernel {!Vliw_sim} runs.

    [Lowered] — the default — walks the flat structure-of-arrays form
    produced by {!Lowered.compile}: per-bundle operand indices,
    latencies, predicate masks and a dense opcode dispatch table,
    compiled once per region before execution starts. The per-cycle
    issue step is plain [int]-array reads instead of list traversal and
    variant matching.

    [Tree] is the reference path: every cycle re-walks the
    {!Pcode.bundle} slot lists and pattern-matches the instruction
    variants directly. It exists for differential testing and for the
    [PSB_EXEC_KERNEL=tree] environment toggle (read once at startup
    into {!default}), exactly mirroring the {!Pred_kernel} precedent;
    both kernels must produce identical results, cycle counts and
    event streams. *)

type mode = Lowered | Tree

val default : mode
(** [Lowered], unless the environment sets [PSB_EXEC_KERNEL=tree]. *)

val of_string : string -> mode option
val to_string : mode -> string
val pp : Format.formatter -> mode -> unit
