open Psb_isa

type stats = {
  dyn_bundles : int;
  dyn_ops : int;
  squashed_ops : int;
  spec_ops : int;
  commits : int;
  squashes : int;
  recoveries : int;
  recovery_cycles : int;
  shadow_conflicts : int;
  conflict_stall_cycles : int;
  sb_max_occupancy : int;
  sb_stall_cycles : int;
  region_transitions : int;
}

type breakdown = {
  bd_useful : int;
  bd_squashed : int;
  bd_shadow_stall : int;
  bd_sb_stall : int;
  bd_recovery : int;
  bd_transition : int;
}

let breakdown_fields b =
  [
    ("useful_issue", b.bd_useful);
    ("squashed_issue", b.bd_squashed);
    ("shadow_conflict_stall", b.bd_shadow_stall);
    ("store_buffer_stall", b.bd_sb_stall);
    ("recovery", b.bd_recovery);
    ("region_transition", b.bd_transition);
  ]

let breakdown_total b =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (breakdown_fields b)

let pp_breakdown ppf b =
  let total = breakdown_total b in
  let pct v =
    if total = 0 then 0. else 100. *. float_of_int v /. float_of_int total
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) ->
      Format.fprintf ppf "%-22s %10d  %5.1f%%@," name v (pct v))
    (breakdown_fields b);
  Format.fprintf ppf "%-22s %10d@]" "total" total

type result = {
  outcome : Interp.outcome;
  output : int list;
  cycles : int;
  regs : int Reg.Map.t;
  faults_handled : int;
  stats : stats;
  breakdown : breakdown;
}

type stall_reason = Shadow_conflict | Store_buffer_full

type event =
  | Reg_commit of Reg.t
  | Reg_squash of Reg.t
  | Store_commit of int
  | Store_squash of int
  | Exception_detected
  | Recovery_done
  | Region_exit of Pcode.exit_target
  | Bundle_issue of {
      region : Label.t;
      pc : int;
      ops : int;
      squashed : int;
      spec : int;
    }
  | Op_issue of { op : Instr.op; pred : Pred.t; spec : bool; latency : int }
  | Stall of stall_reason
  | Cond_set of Cond.t * bool
  | Sb_occupancy of int

let pp_event ppf = function
  | Reg_commit r -> Format.fprintf ppf "commit %a" Reg.pp r
  | Reg_squash r -> Format.fprintf ppf "squash %a" Reg.pp r
  | Store_commit a -> Format.fprintf ppf "commit sb@%d" a
  | Store_squash a -> Format.fprintf ppf "squash sb@%d" a
  | Exception_detected -> Format.pp_print_string ppf "exception detected"
  | Recovery_done -> Format.pp_print_string ppf "recovery done"
  | Region_exit (Pcode.To_region l) -> Format.fprintf ppf "exit -> %a" Label.pp l
  | Region_exit Pcode.Stop -> Format.pp_print_string ppf "exit -> halt"
  | Bundle_issue { region; pc; ops; squashed; spec } ->
      Format.fprintf ppf "issue %a[%d]: %d ops (%d spec, %d squashed)"
        Label.pp region pc ops spec squashed
  | Op_issue { op; spec; latency; _ } ->
      Format.fprintf ppf "op%s %a (latency %d)"
        (if spec then ".s" else "")
        Instr.pp_op op latency
  | Stall Shadow_conflict -> Format.pp_print_string ppf "stall: shadow conflict"
  | Stall Store_buffer_full ->
      Format.pp_print_string ppf "stall: store buffer full"
  | Cond_set (c, v) -> Format.fprintf ppf "%a := %b" Cond.pp c v
  | Sb_occupancy n -> Format.fprintf ppf "sb occupancy %d" n

exception Machine_error of string

let machine_error fmt = Format.kasprintf (fun s -> raise (Machine_error s)) fmt

(* Writebacks in flight. [load_addr] lets a buffered load exception be
   re-executed when it turns out to be committed and recoverable. *)
type wb =
  | Wreg of {
      dst : Reg.t;
      value : int;
      cpred : Pred.compiled;
      fault : Fault.t option;
      decided_seq : bool;
      load_addr : int option;
      shadow_srcs : Reg.Set.t;
    }
  | Wcond of { dst : Cond.t; value : bool }
  | Wstore of {
      addr : int;
      value : int;
      cpred : Pred.compiled;
      spec : bool;
      fault : Fault.t option;
    }
  | Wout of int

type pending = { due : int; order : int; action : wb }

type mode = Normal | Recovery of { future : Ccr.t; epc : int }

(* Category of the cycle currently being simulated; bumped into the
   accounting counters when the cycle completes (in [run]'s loop), so a
   cycle aborted mid-way by a fatal fault is charged to no category —
   exactly matching [st.now], which that cycle never increments. *)
type cycle_kind = Kuseful | Ksquashed | Kshadow_stall | Ksb_stall | Krecovery

exception Abort of Fault.t
exception Halted_exn
exception Fuel_exhausted
exception Cycle_done
(* Ends the current cycle early (recovery initiation). *)

(* Which representation the issue phase walks (Exec_kernel.mode resolved
   to runtime state). [Elow] carries the lowered program, the lowered
   image of the current region (kept in lock-step with [st.region]) and
   a reusable per-bundle decision scratch buffer sized to the widest
   bundle, so the lowered decode allocates nothing per cycle. *)
type low_state = {
  lcode : Lowered.t;
  mutable lr : Lowered.region;
  dec : int array; (* 0 = squash, 1 = nonspec, 2 = spec *)
}

type exec_repr = Etree | Elow of low_state

type state = {
  model : Machine_model.t;
  pred_kernel : Pred_kernel.mode;
  exec : exec_repr;
  on_event : (int -> event -> unit) option;
  events : Psb_obs.Events.t option;
  sb_hist : Psb_obs.Metrics.histogram option;
  bundle_hist : Psb_obs.Metrics.histogram option;
  code : Pcode.t;
  mem : Memory.t;
  rf : Regfile.t;
  sb : Store_buffer.t;
  ccr : Ccr.t;
  mutable mode : mode;
  mutable region : Pcode.region;
  mutable pc : int;
  mutable now : int;
  mutable pending : pending list;
  mutable next_order : int;
  mutable dirty : int;
      (* word-0 bitmask of conditions written since the last commit/squash
         tick; -1 after any wholesale CCR change (assign, reset) or a
         write to a condition beyond word 0. Lets the tick skip buffered
         entries whose predicates cannot have resolved. *)
  mutable output_rev : int list;
  mutable faults_handled : int;
  (* statistics *)
  mutable dyn_bundles : int;
  mutable dyn_ops : int;
  mutable squashed_ops : int;
  mutable spec_ops : int;
  mutable recoveries : int;
  mutable recovery_cycles : int;
  mutable conflict_stall_cycles : int;
  mutable consecutive_stalls : int;
  mutable region_transitions : int;
  mutable sb_stall_cycles : int;
  mutable wb_squashes : int; (* results squashed in flight (pred false at WB) *)
  (* cycle accounting *)
  mutable kind : cycle_kind;
  mutable acct_useful : int;
  mutable acct_squashed : int;
  mutable acct_shadow_stall : int;
  mutable acct_sb_stall : int;
  mutable acct_recovery : int;
  mutable acct_transition : int;
  mutable last_sb_occ : int;
}

let emit st ev =
  match st.on_event with None -> () | Some f -> f st.now ev

(* Structured event-log emission (the [?events] channel). One branch on
   the option when absent — the per-cycle hot path must not allocate. *)
let eev st kind ~a ~b =
  match st.events with
  | None -> ()
  | Some e -> Psb_obs.Events.emit e ~cycle:st.now kind ~a ~b

let region_id st label =
  match st.events with
  | None -> -1
  | Some e -> Psb_obs.Events.intern e (Label.name label)

(* Keep the regfile/store-buffer cycle stamps in step with [st.now]; they
   emit events from inside their own operations. *)
let sync_now st =
  match st.events with
  | None -> ()
  | Some _ ->
      Regfile.set_now st.rf st.now;
      Store_buffer.set_now st.sb st.now

let fault_addr = function
  | Fault.Mem (Memory.Out_of_bounds a) | Fault.Mem (Memory.Unmapped a) -> a
  | Fault.Arith _ -> -1

(* Evaluate a compiled predicate under the selected kernel. The [Map]
   kernel re-evaluates the source condition map — the pre-bitmask
   reference semantics, kept for differential testing. *)
let eval_cpred st ccr cp =
  match st.pred_kernel with
  | Pred_kernel.Mask -> Ccr.evalc ccr cp
  | Pred_kernel.Map -> Ccr.eval ccr (Pred.source cp)

let note_cond_write st c =
  let i = Cond.index c in
  st.dirty <-
    (if i >= Pred.word_bits then -1 else st.dirty lor (1 lsl i))

let observing st = st.on_event <> None

(* Emitted only when the occupancy changed, to keep traces small. *)
let note_sb_occupancy st =
  (match st.sb_hist with
  | Some h -> Psb_obs.Metrics.observe h (float_of_int (Store_buffer.length st.sb))
  | None -> ());
  if observing st then begin
    let occ = Store_buffer.length st.sb in
    if occ <> st.last_sb_occ then begin
      st.last_sb_occ <- occ;
      emit st (Sb_occupancy occ)
    end
  end

let schedule st ~latency action =
  st.pending <- { due = st.now + latency; order = st.next_order; action } :: st.pending;
  st.next_order <- st.next_order + 1

let handle_or_abort st fault =
  if Fault.recoverable fault then begin
    (match fault with
    | Fault.Mem f -> assert (Memory.handle_fault st.mem f)
    | Fault.Arith _ -> assert false);
    eev st Psb_obs.Events.Fault_raised ~a:(fault_addr fault) ~b:1;
    st.faults_handled <- st.faults_handled + 1
  end
  else begin
    eev st Psb_obs.Events.Fault_raised ~a:(fault_addr fault) ~b:0;
    raise (Abort fault)
  end

(* A load access: store-buffer forwarding first, then the D-cache.
   Returns the value, or the fault if the access faults. *)
let load_access st ~addr ~load_pred =
  match
    Store_buffer.forward ~mode:st.pred_kernel st.sb ~addr ~load_pred st.ccr
  with
  | `Hit (v, None) -> Ok v
  | `Hit (v, Some f) -> Error (f, Some v)
  | `Commit_dependence ->
      machine_error "commit-dependence violation: load at %d hits an unresolved speculative store" addr
  | `Miss -> (
      match Memory.read st.mem addr with
      | v -> Ok v
      | exception Memory.Fault f -> Error (Fault.Mem f, None))

(* Non-speculative load: faults are handled on the spot (or abort). *)
let rec load_nonspec st ~addr ~load_pred =
  match load_access st ~addr ~load_pred with
  | Ok v -> v
  | Error (f, forwarded) -> (
      handle_or_abort st f;
      match forwarded with
      | Some v -> v (* the forwarded store's page is mapped now *)
      | None -> load_nonspec st ~addr ~load_pred)

let read_reg st ~shadow_srcs ~pred r =
  Regfile.read st.rf r ~shadow:(Reg.Set.mem r shadow_srcs) ~pred

let read_operand st ~shadow_srcs ~pred = function
  | Operand.Reg r -> read_reg st ~shadow_srcs ~pred r
  | Operand.Imm i -> i

(* Compute an ALU/Mov/Setc-style value; faults become [Error]. *)
let compute st ~shadow_srcs ~pred (op : Instr.op) =
  let rd = read_reg st ~shadow_srcs ~pred in
  let rop = read_operand st ~shadow_srcs ~pred in
  match op with
  | Instr.Alu { op; a; b; _ } -> (
      match Opcode.eval_alu op (rop a) (rop b) with
      | v -> Ok v
      | exception Opcode.Arithmetic_fault m -> Error (Fault.Arith m, None))
  | Instr.Mov { src; _ } -> Ok (rop src)
  | Instr.Load { base; off; _ } -> (
      let addr = rd base + off in
      match load_access st ~addr ~load_pred:pred with
      | Ok v -> Ok v
      | Error (f, fw) -> Error (f, Some (addr, fw)))
  | Instr.Cmp { op; a; b; _ } ->
      Ok (if Opcode.eval_cmp op (rop a) (rop b) then 1 else 0)
  | Instr.Store _ | Instr.Setc _ | Instr.Out _ | Instr.Nop ->
      assert false (* handled by the callers *)

let dest_of (op : Instr.op) =
  match Instr.defs op with [ r ] -> r | _ -> assert false

(* Issue one operation slot whose predicate evaluated True: execute
   non-speculatively. *)
let issue_nonspec st (pi : Pcode.pinstr) =
  let latency = Machine_model.latency st.model pi.op in
  let shadow_srcs = pi.shadow_srcs and pred = pi.pred in
  match pi.op with
  | Instr.Nop -> ()
  | Instr.Out o ->
      schedule st ~latency (Wout (read_operand st ~shadow_srcs ~pred o))
  | Instr.Setc { dst; op; a; b } ->
      let v =
        Opcode.eval_cmp op
          (read_operand st ~shadow_srcs ~pred a)
          (read_operand st ~shadow_srcs ~pred b)
      in
      schedule st ~latency (Wcond { dst; value = v })
  | Instr.Store { src; base; off } ->
      let addr = read_reg st ~shadow_srcs ~pred base + off in
      let value = read_reg st ~shadow_srcs ~pred src in
      schedule st ~latency
        (Wstore { addr; value; cpred = pi.cpred; spec = false; fault = None })
  | Instr.Alu _ | Instr.Mov _ | Instr.Cmp _ | Instr.Load _ ->
      let value =
        match compute st ~shadow_srcs ~pred pi.op with
        | Ok v -> v
        | Error (f, Some (addr, forwarded)) -> (
            handle_or_abort st f;
            match forwarded with
            | Some v -> v
            | None -> load_nonspec st ~addr ~load_pred:pred)
        | Error (f, None) ->
            (* Arithmetic fault with a true predicate: fatal. *)
            handle_or_abort st f;
            assert false
      in
      schedule st ~latency
        (Wreg
           {
             dst = dest_of pi.op;
             value;
             cpred = pi.cpred;
             fault = None;
             decided_seq = true;
             load_addr = None;
             shadow_srcs;
           })

(* Issue one operation slot whose predicate is unspecified: execute
   speculatively. In recovery mode a fault consults the future condition:
   true → handled now, false → ignored, unspecified → buffered again. *)
let issue_spec st (pi : Pcode.pinstr) =
  st.spec_ops <- st.spec_ops + 1;
  let latency = Machine_model.latency st.model pi.op in
  let shadow_srcs = pi.shadow_srcs and pred = pi.pred in
  let future_value () =
    match st.mode with
    | Normal -> Pred.Unspec
    | Recovery { future; _ } -> eval_cpred st future pi.cpred
  in
  let resolve_fault f ~addr_info =
    (* Decide what to do with a speculative fault. Returns
       (value, buffered fault). *)
    match future_value () with
    | Pred.Unspec ->
        eev st Psb_obs.Events.Fault_deferred
          ~a:(match addr_info with Some (addr, _) -> addr | None -> -1)
          ~b:0;
        (0, Some f)
    | Pred.False -> (0, None) (* ignored: result squashes under the future *)
    | Pred.True -> (
        handle_or_abort st f;
        match addr_info with
        | None -> (0, None)
        | Some (addr, forwarded) -> (
            match forwarded with
            | Some v -> (v, None)
            | None -> (load_nonspec st ~addr ~load_pred:pred, None)))
  in
  match pi.op with
  | Instr.Nop -> ()
  | Instr.Out _ ->
      machine_error "side-effecting Out issued with an unspecified predicate"
  | Instr.Setc _ ->
      machine_error "Setc issued with an unspecified predicate (must be alw)"
  | Instr.Store { src; base; off } ->
      let addr = read_reg st ~shadow_srcs ~pred base + off in
      let value = read_reg st ~shadow_srcs ~pred src in
      let fault = Option.map (fun f -> Fault.Mem f) (Memory.probe st.mem addr) in
      let fault =
        match fault with
        | None -> None
        | Some f -> (
            match future_value () with
            | Pred.Unspec ->
                eev st Psb_obs.Events.Fault_deferred ~a:addr ~b:0;
                Some f
            | Pred.False -> None
            | Pred.True ->
                handle_or_abort st f;
                None)
      in
      schedule st ~latency
        (Wstore { addr; value; cpred = pi.cpred; spec = true; fault })
  | Instr.Alu _ | Instr.Mov _ | Instr.Cmp _ | Instr.Load _ ->
      let value, fault, load_addr =
        match compute st ~shadow_srcs ~pred pi.op with
        | Ok v -> (v, None, None)
        | Error (f, (Some (addr, _) as ai)) ->
            let v, bf = resolve_fault f ~addr_info:ai in
            (v, bf, Some addr)
        | Error (f, None) ->
            let v, bf = resolve_fault f ~addr_info:None in
            (v, bf, None)
      in
      schedule st ~latency
        (Wreg
           {
             dst = dest_of pi.op;
             value;
             cpred = pi.cpred;
             fault;
             decided_seq = false;
             load_addr;
             shadow_srcs;
           })

(* ----- lowered issue path -----

   Mirrors [issue_nonspec]/[issue_spec] over the structure-of-arrays
   region form: operand registers, shadow flags, latencies and compiled
   predicates come from flat arrays resolved once by [Lowered.compile],
   and the instruction-variant match is a dense dispatch on
   [Lowered.kind]. Observable behaviour — state changes, events,
   metrics, predicate-evaluation counts, machine errors — must stay
   identical to the tree path; the differential suite and the fuzzer pin
   this. *)

let low_s1 st (lr : Lowered.region) i ~pred =
  let r = lr.Lowered.op_s1_reg.(i) in
  if r >= 0 then Regfile.read st.rf r ~shadow:lr.Lowered.op_s1_sh.(i) ~pred
  else lr.Lowered.op_s1_imm.(i)

let low_s2 st (lr : Lowered.region) i ~pred =
  let r = lr.Lowered.op_s2_reg.(i) in
  if r >= 0 then Regfile.read st.rf r ~shadow:lr.Lowered.op_s2_sh.(i) ~pred
  else lr.Lowered.op_s2_imm.(i)

(* [compute] over the lowered form (value-producing kinds only). *)
let compute_low st (lr : Lowered.region) i ~pred =
  match lr.Lowered.op_kind.(i) with
  | Lowered.Kalu -> (
      let a = low_s1 st lr i ~pred in
      let b = low_s2 st lr i ~pred in
      match Opcode.eval_alu lr.Lowered.op_alu.(i) a b with
      | v -> Ok v
      | exception Opcode.Arithmetic_fault m -> Error (Fault.Arith m, None))
  | Lowered.Kmov -> Ok (low_s1 st lr i ~pred)
  | Lowered.Kload -> (
      let addr = low_s1 st lr i ~pred + lr.Lowered.op_aux.(i) in
      match load_access st ~addr ~load_pred:pred with
      | Ok v -> Ok v
      | Error (f, fw) -> Error (f, Some (addr, fw)))
  | Lowered.Kcmp ->
      let a = low_s1 st lr i ~pred in
      let b = low_s2 st lr i ~pred in
      Ok (if Opcode.eval_cmp lr.Lowered.op_cmp.(i) a b then 1 else 0)
  | Lowered.Knop | Lowered.Kout | Lowered.Ksetc | Lowered.Kstore ->
      assert false (* handled by the callers *)

let issue_nonspec_low st (lr : Lowered.region) i =
  let latency = lr.Lowered.op_lat.(i) in
  let pred = lr.Lowered.op_pred.(i) in
  match lr.Lowered.op_kind.(i) with
  | Lowered.Knop -> ()
  | Lowered.Kout -> schedule st ~latency (Wout (low_s1 st lr i ~pred))
  | Lowered.Ksetc ->
      let a = low_s1 st lr i ~pred in
      let b = low_s2 st lr i ~pred in
      let v = Opcode.eval_cmp lr.Lowered.op_cmp.(i) a b in
      schedule st ~latency (Wcond { dst = lr.Lowered.op_aux.(i); value = v })
  | Lowered.Kstore ->
      let addr = low_s1 st lr i ~pred + lr.Lowered.op_aux.(i) in
      let value = low_s2 st lr i ~pred in
      schedule st ~latency
        (Wstore
           {
             addr;
             value;
             cpred = lr.Lowered.op_cpred.(i);
             spec = false;
             fault = None;
           })
  | Lowered.Kalu | Lowered.Kmov | Lowered.Kcmp | Lowered.Kload ->
      let value =
        match compute_low st lr i ~pred with
        | Ok v -> v
        | Error (f, Some (addr, forwarded)) -> (
            handle_or_abort st f;
            match forwarded with
            | Some v -> v
            | None -> load_nonspec st ~addr ~load_pred:pred)
        | Error (f, None) ->
            (* Arithmetic fault with a true predicate: fatal. *)
            handle_or_abort st f;
            assert false
      in
      schedule st ~latency
        (Wreg
           {
             dst = lr.Lowered.op_dst.(i);
             value;
             cpred = lr.Lowered.op_cpred.(i);
             fault = None;
             decided_seq = true;
             load_addr = None;
             shadow_srcs = lr.Lowered.op_src.(i).Pcode.shadow_srcs;
           })

let issue_spec_low st (lr : Lowered.region) i =
  st.spec_ops <- st.spec_ops + 1;
  let latency = lr.Lowered.op_lat.(i) in
  let pred = lr.Lowered.op_pred.(i) in
  let cpred = lr.Lowered.op_cpred.(i) in
  let future_value () =
    match st.mode with
    | Normal -> Pred.Unspec
    | Recovery { future; _ } -> eval_cpred st future cpred
  in
  let resolve_fault f ~addr_info =
    match future_value () with
    | Pred.Unspec ->
        eev st Psb_obs.Events.Fault_deferred
          ~a:(match addr_info with Some (addr, _) -> addr | None -> -1)
          ~b:0;
        (0, Some f)
    | Pred.False -> (0, None)
    | Pred.True -> (
        handle_or_abort st f;
        match addr_info with
        | None -> (0, None)
        | Some (addr, forwarded) -> (
            match forwarded with
            | Some v -> (v, None)
            | None -> (load_nonspec st ~addr ~load_pred:pred, None)))
  in
  match lr.Lowered.op_kind.(i) with
  | Lowered.Knop -> ()
  | Lowered.Kout ->
      machine_error "side-effecting Out issued with an unspecified predicate"
  | Lowered.Ksetc ->
      machine_error "Setc issued with an unspecified predicate (must be alw)"
  | Lowered.Kstore ->
      let addr = low_s1 st lr i ~pred + lr.Lowered.op_aux.(i) in
      let value = low_s2 st lr i ~pred in
      let fault = Option.map (fun f -> Fault.Mem f) (Memory.probe st.mem addr) in
      let fault =
        match fault with
        | None -> None
        | Some f -> (
            match future_value () with
            | Pred.Unspec ->
                eev st Psb_obs.Events.Fault_deferred ~a:addr ~b:0;
                Some f
            | Pred.False -> None
            | Pred.True ->
                handle_or_abort st f;
                None)
      in
      schedule st ~latency (Wstore { addr; value; cpred; spec = true; fault })
  | Lowered.Kalu | Lowered.Kmov | Lowered.Kcmp | Lowered.Kload ->
      let value, fault, load_addr =
        match compute_low st lr i ~pred with
        | Ok v -> (v, None, None)
        | Error (f, (Some (addr, _) as ai)) ->
            let v, bf = resolve_fault f ~addr_info:ai in
            (v, bf, Some addr)
        | Error (f, None) ->
            let v, bf = resolve_fault f ~addr_info:None in
            (v, bf, None)
      in
      schedule st ~latency
        (Wreg
           {
             dst = lr.Lowered.op_dst.(i);
             value;
             cpred;
             fault;
             decided_seq = false;
             load_addr;
             shadow_srcs = lr.Lowered.op_src.(i).Pcode.shadow_srcs;
           })

(* Apply one due writeback. Returns [`Conflict] when a speculative register
   write hits an occupied shadow entry (single-shadow model): the caller
   requeues it and stalls issue. *)
let apply_wb st action ~cond_writes =
  match action with
  | Wout v ->
      st.output_rev <- v :: st.output_rev;
      `Ok
  | Wcond { dst; value } ->
      cond_writes := (dst, value) :: !cond_writes;
      `Ok
  | Wstore { addr; value; cpred; spec; fault } ->
      Store_buffer.append st.sb ~addr ~value ~cpred ~spec ~fault;
      `Ok
  | Wreg { dst; value; cpred; fault; decided_seq; load_addr; _ } ->
      if decided_seq then begin
        Regfile.write_seq st.rf dst value;
        `Ok
      end
      else begin
        match eval_cpred st st.ccr cpred with
        | Pred.False ->
            st.wb_squashes <- st.wb_squashes + 1;
            `Ok (* squashed in flight *)
        | Pred.True ->
            (* Committed during execution (like i6 in Table 1). A fault
               surfacing here is a committed exception caught before
               buffering: handle it like a normal exception. *)
            let value =
              match fault with
              | None -> value
              | Some f -> (
                  handle_or_abort st f;
                  match load_addr with
                  | Some addr ->
                      load_nonspec st ~addr ~load_pred:(Pred.source cpred)
                  | None -> assert false)
            in
            Regfile.write_seq st.rf dst value;
            `Ok
        | Pred.Unspec -> (
            match Regfile.write_spec st.rf dst value ~cpred ~fault with
            | `Ok -> `Ok
            | `Conflict -> `Conflict)
      end

let lookup_with st writes c =
  match List.assoc_opt c writes with
  | Some v -> if v then Pred.T else Pred.F
  | None -> Ccr.get st.ccr c

(* Detection (§3.5): would applying the pending condition writes commit a
   buffered speculative exception? *)
let detect st writes =
  let lookup = lookup_with st writes in
  Regfile.committing_exceptions st.rf lookup <> []
  || Store_buffer.committing_exceptions st.sb lookup <> []

let drain_store_buffer st =
  let rec go () =
    match Store_buffer.drain st.sb ~max:st.model.Machine_model.dcache_ports st.mem with
    | _ -> ()
    | exception Memory.Fault f ->
        handle_or_abort st (Fault.Mem f);
        go ()
  in
  go ()

(* Complete all in-flight writebacks (used at region transitions: the
   machine interlocks until outstanding latencies drain). Returns the
   number of extra cycles charged. *)
let flush_pending st ~allow_cond =
  if st.pending = [] then 0
  else begin
    let last_due = List.fold_left (fun m p -> max m p.due) st.now st.pending in
    let ps =
      List.sort (fun a b -> compare (a.due, a.order) (b.due, b.order)) st.pending
    in
    st.pending <- [];
    let cond_writes = ref [] in
    List.iter
      (fun p ->
        match apply_wb st p.action ~cond_writes with
        | `Ok -> ()
        | `Conflict -> () (* dead: speculative state is about to be squashed *))
      ps;
    if !cond_writes <> [] && not allow_cond then
      machine_error "Setc write pending at region exit";
    List.iter
      (fun (c, v) ->
        Ccr.set st.ccr c v;
        note_cond_write st c)
      !cond_writes;
    max 0 (last_due - st.now)
  end

let start_recovery st ~future =
  emit st Exception_detected;
  st.recoveries <- st.recoveries + 1;
  (* Invalidate all speculative state: this establishes the precise
     interrupt point. In-flight non-speculative writebacks complete;
     speculative ones are dropped with the shadow state they target. *)
  let spec, nonspec =
    List.partition
      (fun p ->
        match p.action with
        | Wreg { decided_seq; _ } -> not decided_seq
        | Wstore { spec; _ } -> spec
        | Wcond _ | Wout _ -> false)
      st.pending
  in
  ignore spec;
  st.pending <- nonspec;
  let cond_writes = ref [] in
  let ps = List.sort (fun a b -> compare (a.due, a.order) (b.due, b.order)) st.pending in
  st.pending <- [];
  List.iter (fun p -> ignore (apply_wb st p.action ~cond_writes)) ps;
  if !cond_writes <> [] then
    machine_error "non-speculative Setc pending across exception detection";
  Regfile.invalidate_spec st.rf;
  Store_buffer.invalidate_spec st.sb;
  st.mode <- Recovery { future; epc = st.pc };
  st.pc <- 0

(* Region-transition work common to both execution kernels: events,
   accounting, the writeback-drain interlock and the squash of leftover
   speculative state. The caller then installs the next region (or
   halts). *)
let exit_prologue st (target : Pcode.exit_target) =
  emit st (Region_exit target);
  eev st Psb_obs.Events.Region_exit
    ~a:(region_id st st.region.Pcode.name)
    ~b:
      (match target with
      | Pcode.Stop -> -1
      | Pcode.To_region l -> region_id st l);
  st.region_transitions <- st.region_transitions + 1;
  let extra = flush_pending st ~allow_cond:false in
  st.acct_transition <-
    st.acct_transition + extra + st.model.Machine_model.transition_penalty;
  st.now <- st.now + extra + st.model.Machine_model.transition_penalty;
  sync_now st;
  (* A final resolve pass: writebacks applied during the flush may have
     buffered state whose predicate is already decided. *)
  ignore (Regfile.tick ~mode:st.pred_kernel ~dirty:(-1) st.rf st.ccr);
  ignore (Store_buffer.tick ~mode:st.pred_kernel ~dirty:(-1) st.sb st.ccr);
  (* Whatever speculative state remains belongs to untaken paths of the
     region being left (closed-region property): squash it. *)
  Regfile.invalidate_spec st.rf;
  Store_buffer.invalidate_spec st.sb;
  Ccr.reset st.ccr;
  st.dirty <- -1

let exit_stop st =
  drain_store_buffer st;
  (try Store_buffer.drain_all st.sb st.mem
   with Memory.Fault f ->
     handle_or_abort st (Fault.Mem f);
     Store_buffer.drain_all st.sb st.mem);
  raise Halted_exn

let take_exit st (target : Pcode.exit_target) =
  exit_prologue st target;
  match target with
  | Pcode.Stop -> exit_stop st
  | Pcode.To_region l ->
      st.region <- Pcode.find_region st.code l;
      eev st Psb_obs.Events.Region_enter ~a:(region_id st l) ~b:0;
      st.pc <- 0

(* Lowered transition: the fired exit carries its target's region index,
   so entering the next region is an array read. [st.region] follows so
   diagnostics and events name the right region. *)
let take_exit_low st ls ~tidx (target : Pcode.exit_target) =
  exit_prologue st target;
  if tidx < 0 then exit_stop st
  else begin
    ls.lr <- ls.lcode.Lowered.regions.(tidx);
    st.region <- ls.lr.Lowered.source;
    eev st Psb_obs.Events.Region_enter
      ~a:(region_id st st.region.Pcode.name)
      ~b:0;
    st.pc <- 0
  end

(* ----- issue phase (stage 5 of the cycle) -----

   One body per execution kernel; both share the stall logic. *)

let stall_sb st =
  (* structural hazard: a store cannot enter the full FIFO; bundles
     without stores flow past (otherwise the condition-set instruction
     that resolves the blocking speculative head could never issue) *)
  st.sb_stall_cycles <- st.sb_stall_cycles + 1;
  st.kind <- Ksb_stall;
  emit st (Stall Store_buffer_full);
  st.consecutive_stalls <- st.consecutive_stalls + 1;
  if st.consecutive_stalls > 10_000 then
    machine_error "store buffer never drains (speculative head stuck)"

let stall_conflict st =
  st.conflict_stall_cycles <- st.conflict_stall_cycles + 1;
  st.kind <- Kshadow_stall;
  emit st (Stall Shadow_conflict);
  st.consecutive_stalls <- st.consecutive_stalls + 1;
  (* A conflict that never resolves means the scheduler violated the
     shadow-storage WAW commit dependence: the blocking predicate can
     only specify through a Setc that the stall itself is blocking. *)
  if st.consecutive_stalls > 10_000 then
    machine_error
      "shadow storage conflict deadlock (WAW commit dependence violated)"

let issue_tree st ~conflict =
  let bundle_has_store () =
    st.pc < Array.length st.region.Pcode.code
    && List.exists
         (function
           | Pcode.Op { op = Instr.Store _; _ } -> true
           | Pcode.Op _ | Pcode.Exit _ -> false)
         st.region.Pcode.code.(st.pc)
  in
  if
    Store_buffer.length st.sb >= st.model.Machine_model.sb_capacity
    && bundle_has_store ()
  then stall_sb st
  else if conflict then stall_conflict st
  else begin
    st.consecutive_stalls <- 0;
    if st.pc >= Array.length st.region.Pcode.code then
      machine_error "ran off the end of region %s (exits not exhaustive)"
        (Label.name st.region.Pcode.name);
    let bundle = st.region.Pcode.code.(st.pc) in
    (* A Setc may share a bundle with an exit as long as that exit does not
       fire (Figure 4 bundles them); if it fires, the pending condition
       write is caught at the transition (flush_pending). *)
    st.dyn_bundles <- st.dyn_bundles + 1;
    let in_recovery = match st.mode with Recovery _ -> true | Normal -> false in
    (* Operations first. The issue decision per slot is made once, up
       front, so the Bundle_issue event (and the accounting below) can
       never disagree with what actually executed. *)
    let decisions =
      List.map
        (fun slot ->
          match slot with
          | Pcode.Exit _ -> (slot, `Exit)
          | Pcode.Op pi -> (
              ( slot,
                match eval_cpred st st.ccr pi.cpred with
                | Pred.False -> `Squash
                | Pred.True -> if in_recovery then `Squash else `Nonspec
                | Pred.Unspec -> `Spec )))
        bundle
    in
    let count k =
      List.fold_left (fun n (_, d) -> if d = k then n + 1 else n) 0 decisions
    in
    let executed = count `Nonspec + count `Spec in
    if not in_recovery then
      eev st Psb_obs.Events.Issue ~a:executed ~b:(count `Squash);
    if observing st then
      emit st
        (Bundle_issue
           {
             region = st.region.Pcode.name;
             pc = st.pc;
             ops = executed;
             squashed = count `Squash;
             spec = count `Spec;
           });
    (match st.bundle_hist with
    | Some h -> Psb_obs.Metrics.observe h (float_of_int executed)
    | None -> ());
    List.iter
      (fun (slot, decision) ->
        match (slot, decision) with
        | Pcode.Exit _, _ | _, `Exit -> ()
        | Pcode.Op _, `Squash -> st.squashed_ops <- st.squashed_ops + 1
        | Pcode.Op pi, (`Nonspec | `Spec) ->
            st.dyn_ops <- st.dyn_ops + 1;
            let spec = decision = `Spec in
            if observing st then
              emit st
                (Op_issue
                   {
                     op = pi.Pcode.op;
                     pred = pi.Pcode.pred;
                     spec;
                     latency = Machine_model.latency st.model pi.Pcode.op;
                   });
            if spec then issue_spec st pi else issue_nonspec st pi)
      decisions;
    (* ... then exits: the first whose predicate is true fires. *)
    let exit_target =
      List.find_map
        (function
          | Pcode.Op _ -> None
          | Pcode.Exit { cpred; target; _ } -> (
              match eval_cpred st st.ccr cpred with
              | Pred.True ->
                  if in_recovery then
                    machine_error "exit fired during recovery mode";
                  Some target
              | Pred.False | Pred.Unspec -> None))
        bundle
    in
    st.kind <-
      (if in_recovery then Krecovery
       else if executed > 0 || exit_target <> None then Kuseful
       else Ksquashed);
    st.pc <- st.pc + 1;
    match exit_target with
    | Some target -> take_exit st target
    | None -> ()
  end

(* The lowered issue phase: fetch (stall checks over precomputed
   [has_store]), decode (one predicate evaluation per operation into the
   scratch decision buffer — exactly one, like the tree path, so kernel
   evaluation counters agree), issue (dense dispatch on [Lowered.kind]),
   then the exit scan. *)
let issue_low st ls ~conflict =
  let lr = ls.lr in
  if
    Store_buffer.length st.sb >= st.model.Machine_model.sb_capacity
    && st.pc < lr.Lowered.nbundles
    && lr.Lowered.has_store.(st.pc)
  then stall_sb st
  else if conflict then stall_conflict st
  else begin
    st.consecutive_stalls <- 0;
    if st.pc >= lr.Lowered.nbundles then
      machine_error "ran off the end of region %s (exits not exhaustive)"
        (Label.name st.region.Pcode.name);
    st.dyn_bundles <- st.dyn_bundles + 1;
    let in_recovery = match st.mode with Recovery _ -> true | Normal -> false in
    let lo = lr.Lowered.op_bounds.(st.pc)
    and hi = lr.Lowered.op_bounds.(st.pc + 1) in
    let dec = ls.dec in
    let nexec = ref 0 and nspec = ref 0 and nsq = ref 0 in
    for i = lo to hi - 1 do
      let d =
        match eval_cpred st st.ccr lr.Lowered.op_cpred.(i) with
        | Pred.False -> 0
        | Pred.True -> if in_recovery then 0 else 1
        | Pred.Unspec -> 2
      in
      dec.(i - lo) <- d;
      if d = 0 then incr nsq
      else begin
        incr nexec;
        if d = 2 then incr nspec
      end
    done;
    if not in_recovery then eev st Psb_obs.Events.Issue ~a:!nexec ~b:!nsq;
    if observing st then
      emit st
        (Bundle_issue
           {
             region = st.region.Pcode.name;
             pc = st.pc;
             ops = !nexec;
             squashed = !nsq;
             spec = !nspec;
           });
    (match st.bundle_hist with
    | Some h -> Psb_obs.Metrics.observe h (float_of_int !nexec)
    | None -> ());
    for i = lo to hi - 1 do
      match dec.(i - lo) with
      | 0 -> st.squashed_ops <- st.squashed_ops + 1
      | d ->
          st.dyn_ops <- st.dyn_ops + 1;
          let spec = d = 2 in
          if observing st then
            emit st
              (Op_issue
                 {
                   op = lr.Lowered.op_src.(i).Pcode.op;
                   pred = lr.Lowered.op_pred.(i);
                   spec;
                   latency = lr.Lowered.op_lat.(i);
                 });
          if spec then issue_spec_low st lr i else issue_nonspec_low st lr i
    done;
    let xlo = lr.Lowered.ex_bounds.(st.pc)
    and xhi = lr.Lowered.ex_bounds.(st.pc + 1) in
    let fired = ref (-1) in
    let j = ref xlo in
    while !fired < 0 && !j < xhi do
      (match eval_cpred st st.ccr lr.Lowered.ex_cpred.(!j) with
      | Pred.True ->
          if in_recovery then machine_error "exit fired during recovery mode";
          fired := !j
      | Pred.False | Pred.Unspec -> ());
      incr j
    done;
    st.kind <-
      (if in_recovery then Krecovery
       else if !nexec > 0 || !fired >= 0 then Kuseful
       else Ksquashed);
    st.pc <- st.pc + 1;
    if !fired >= 0 then
      take_exit_low st ls
        ~tidx:lr.Lowered.ex_target.(!fired)
        lr.Lowered.ex_tgt.(!fired)
  end

let step st ~fuel =
  if st.now > fuel then raise Fuel_exhausted;
  sync_now st;
  (* 0. Recovery completion: reaching the EPC ends recovery mode; the
     future condition becomes the current condition (checked through the
     detection path like any CCR update). *)
  let pending_assign =
    match st.mode with
    | Recovery { future; epc } when st.pc = epc ->
        st.mode <- Normal;
        emit st Recovery_done;
        Some future
    | Recovery _ | Normal -> None
  in
  (match st.mode with
  | Recovery _ -> st.recovery_cycles <- st.recovery_cycles + 1
  | Normal -> ());
  (* 1. Apply writebacks due this cycle. *)
  let due, later = List.partition (fun p -> p.due <= st.now) st.pending in
  st.pending <- later;
  let due = List.sort (fun a b -> compare (a.due, a.order) (b.due, b.order)) due in
  let cond_writes = ref [] in
  let conflict = ref false in
  List.iter
    (fun p ->
      match apply_wb st p.action ~cond_writes with
      | `Ok -> ()
      | `Conflict ->
          conflict := true;
          st.pending <- { p with due = st.now + 1 } :: st.pending)
    due;
  (* 2. CCR update with exception detection. *)
  (match pending_assign with
  | Some future ->
      assert (!cond_writes = []);
      if
        Regfile.committing_exceptions st.rf (Ccr.lookup future) <> []
        || Store_buffer.committing_exceptions st.sb (Ccr.lookup future) <> []
      then machine_error "detection while leaving recovery";
      Ccr.assign st.ccr ~from:future;
      st.dirty <- -1
  | None ->
      let writes = !cond_writes in
      if writes <> [] && detect st writes then begin
        match st.mode with
        | Recovery _ -> machine_error "exception detection during recovery"
        | Normal ->
            (* Suppress the CCR update; the new value goes to the future
               CCR (§3.5). *)
            let future = Ccr.copy st.ccr in
            List.iter (fun (c, v) -> Ccr.set future c v) writes;
            start_recovery st ~future;
            st.kind <- Krecovery;
            raise Cycle_done (* re-execution starts next cycle *)
      end
      else
        List.iter
          (fun (c, v) ->
            Ccr.set st.ccr c v;
            note_cond_write st c;
            eev st
              (if v then Psb_obs.Events.Pred_true else Psb_obs.Events.Pred_false)
              ~a:(Cond.index c) ~b:0;
            emit st (Cond_set (c, v)))
          writes);
  (* 3. Commit/squash the buffered speculative state. *)
  List.iter
    (fun (r, a) ->
      emit st (match a with `Commit -> Reg_commit r | `Squash -> Reg_squash r))
    (Regfile.tick ~mode:st.pred_kernel ~dirty:st.dirty st.rf st.ccr);
  List.iter
    (fun (a, act) ->
      emit st
        (match act with `Commit -> Store_commit a | `Squash -> Store_squash a))
    (Store_buffer.tick ~mode:st.pred_kernel ~dirty:st.dirty st.sb st.ccr);
  st.dirty <- 0;
  (* Sample occupancy after commit/squash but before the drain — this is
     the point where buffered state held across the cycle is visible. *)
  note_sb_occupancy st;
  (* 4. Store buffer drains to the D-cache. *)
  drain_store_buffer st;
  (* 5. Issue one bundle (unless stalled on a shadow-storage conflict),
     through whichever execution kernel this run selected. *)
  match st.exec with
  | Etree -> issue_tree st ~conflict:!conflict
  | Elow ls -> issue_low st ls ~conflict:!conflict

let default_fuel = 60_000_000

let run ?(fuel = default_fuel) ?(regfile_mode = Regfile.Single)
    ?(pred_kernel = Pred_kernel.default) ?(exec_kernel = Exec_kernel.default)
    ?lowered ?on_event ?events ?metrics ~model ~regs ~mem (code : Pcode.t) =
  let exec, region0 =
    match exec_kernel with
    | Exec_kernel.Tree -> (Etree, Pcode.find_region code code.Pcode.entry)
    | Exec_kernel.Lowered ->
        let low =
          match lowered with
          | Some (l : Lowered.t) ->
              if l.Lowered.source != code then
                invalid_arg
                  "Vliw_sim.run: lowered form was compiled from a different \
                   pcode";
              if l.Lowered.machine <> model then
                invalid_arg
                  "Vliw_sim.run: lowered form was compiled for a different \
                   machine model";
              l
          | None -> Lowered.compile ~machine:model code
        in
        let lr = low.Lowered.regions.(low.Lowered.entry) in
        ( Elow { lcode = low; lr; dec = Array.make low.Lowered.max_bundle_ops 0 },
          lr.Lowered.source )
  in
  let nregs =
    let m =
      match exec with
      | Elow ls -> ls.lcode.Lowered.nregs
      | Etree ->
          List.fold_left
            (fun acc r ->
              Array.fold_left
                (List.fold_left (fun acc slot ->
                     match slot with
                     | Pcode.Exit _ -> acc
                     | Pcode.Op { op; _ } ->
                         List.fold_left
                           (fun acc r -> max acc (Reg.index r + 1))
                           acc
                           (Instr.defs op @ Instr.uses op)))
                acc r.Pcode.code)
            1 code.Pcode.regions
    in
    List.fold_left (fun acc (r, _) -> max acc (Reg.index r + 1)) m regs
  in
  let sb_hist =
    Option.map
      (fun m ->
        Psb_obs.Metrics.histogram m "vliw_sb_occupancy"
          ~buckets:[ 0.; 1.; 2.; 4.; 8.; 16.; 32. ])
      metrics
  in
  let bundle_hist =
    Option.map
      (fun m ->
        Psb_obs.Metrics.histogram m "vliw_bundle_ops"
          ~buckets:[ 0.; 1.; 2.; 3.; 4.; 6.; 8.; 16. ])
      metrics
  in
  let st =
    {
      model;
      pred_kernel;
      exec;
      on_event;
      events;
      sb_hist;
      bundle_hist;
      code;
      mem;
      rf = Regfile.create ~mode:regfile_mode ?events ~nregs ();
      sb = Store_buffer.create ?events ();
      ccr = Ccr.create ~width:model.Machine_model.ccr_size;
      mode = Normal;
      region = region0;
      pc = 0;
      now = 0;
      pending = [];
      next_order = 0;
      dirty = -1;
      output_rev = [];
      faults_handled = 0;
      dyn_bundles = 0;
      dyn_ops = 0;
      squashed_ops = 0;
      spec_ops = 0;
      recoveries = 0;
      recovery_cycles = 0;
      conflict_stall_cycles = 0;
      consecutive_stalls = 0;
      region_transitions = 0;
      sb_stall_cycles = 0;
      wb_squashes = 0;
      kind = Kuseful;
      acct_useful = 0;
      acct_squashed = 0;
      acct_shadow_stall = 0;
      acct_sb_stall = 0;
      acct_recovery = 0;
      acct_transition = 0;
      last_sb_occ = 0;
    }
  in
  List.iter (fun (r, v) -> Regfile.write_seq st.rf r v) regs;
  eev st Psb_obs.Events.Region_enter
    ~a:(region_id st st.region.Pcode.name)
    ~b:0;
  let finish outcome =
    let breakdown =
      {
        bd_useful = st.acct_useful;
        bd_squashed = st.acct_squashed;
        bd_shadow_stall = st.acct_shadow_stall;
        bd_sb_stall = st.acct_sb_stall;
        bd_recovery = st.acct_recovery;
        bd_transition = st.acct_transition;
      }
    in
    (match metrics with
    | None -> ()
    | Some m ->
        let open Psb_obs.Metrics in
        let c name v = inc (counter m name) ~by:v in
        c "vliw_cycles_total" st.now;
        c "vliw_dyn_bundles" st.dyn_bundles;
        c "vliw_dyn_ops" st.dyn_ops;
        c "vliw_spec_ops" st.spec_ops;
        c "vliw_recoveries" st.recoveries;
        c "vliw_shadow_conflicts" (Regfile.conflicts st.rf);
        let g name label v = inc (counter m name ~labels:[ label ]) ~by:v in
        g "vliw_tick_entries" ("gate", "examined")
          (Regfile.tick_examined st.rf + Store_buffer.tick_examined st.sb);
        g "vliw_tick_entries" ("gate", "skipped")
          (Regfile.tick_skipped st.rf + Store_buffer.tick_skipped st.sb);
        g "vliw_pred_evals" ("kind", "mask") (Ccr.evals_mask st.ccr);
        g "vliw_pred_evals" ("kind", "map") (Ccr.evals_map st.ccr);
        List.iter
          (fun (cat, v) ->
            inc (counter m "vliw_cycles" ~labels:[ ("category", cat) ]) ~by:v)
          (breakdown_fields breakdown));
    {
      outcome;
      output = List.rev st.output_rev;
      cycles = st.now;
      regs = Regfile.final_state st.rf;
      faults_handled = st.faults_handled;
      stats =
        {
          dyn_bundles = st.dyn_bundles;
          dyn_ops = st.dyn_ops;
          squashed_ops = st.squashed_ops;
          spec_ops = st.spec_ops;
          commits = Regfile.commits st.rf + Store_buffer.commits st.sb;
          squashes =
            Regfile.squashes st.rf + Store_buffer.squashes st.sb
            + st.wb_squashes;
          recoveries = st.recoveries;
          recovery_cycles = st.recovery_cycles;
          shadow_conflicts = Regfile.conflicts st.rf;
          conflict_stall_cycles = st.conflict_stall_cycles;
          sb_max_occupancy = Store_buffer.max_occupancy st.sb;
          sb_stall_cycles = st.sb_stall_cycles;
          region_transitions = st.region_transitions;
        };
      breakdown;
    }
  in
  let bump_kind () =
    match st.kind with
    | Kuseful -> st.acct_useful <- st.acct_useful + 1
    | Ksquashed -> st.acct_squashed <- st.acct_squashed + 1
    | Kshadow_stall -> st.acct_shadow_stall <- st.acct_shadow_stall + 1
    | Ksb_stall -> st.acct_sb_stall <- st.acct_sb_stall + 1
    | Krecovery -> st.acct_recovery <- st.acct_recovery + 1
  in
  let rec loop () =
    (try step st ~fuel with Cycle_done -> ());
    bump_kind ();
    st.now <- st.now + 1;
    loop ()
  in
  try loop () with
  | Halted_exn ->
      bump_kind ();
      st.now <- st.now + 1;
      finish Interp.Halted
  | Abort f ->
      (* Stores semantically before the fault must be visible, as on the
         scalar machine. *)
      Regfile.invalidate_spec st.rf;
      Store_buffer.invalidate_spec st.sb;
      (try Store_buffer.drain_all st.sb st.mem with Memory.Fault _ -> ());
      finish (Interp.Fatal f)
  | Fuel_exhausted -> finish Interp.Out_of_fuel
