(** Analytic hardware-cost model (§4.2.1).

    The paper quantifies the cost of predicating as: the extra speculative
    storage adds 76% of the transistors of a normal 8-read/4-write 32-entry
    register file; the commit hardware (predicate storage, per-entry
    evaluation logic, flags) adds another 31%; 107% in total. Predicate
    evaluation is a three-gate-level masked match (XOR per entry, OR for
    the mask, AND for the total match). The instruction encoding grows by
    [2K] bits of predicate ([ceil(log2 K)+1] in the trace-predicating
    variant) plus one bit per source register.

    The model below recomputes these quantities from first principles
    (multi-ported SRAM cell transistor counts) so the trade-off can be
    explored at other design points. *)

type params = {
  nregs : int;
  width : int;  (** bits per register *)
  read_ports : int;
  write_ports : int;
  ccr_size : int;  (** K *)
  shadow_read_ports : int;
      (** the speculative storage needs fewer ports: it is read only by the
          operand-fetch fallback path and written by the spec writeback *)
  shadow_write_ports : int;
  rob_entries : int;
      (** capacity of the rival out-of-order backend's reorder buffer
          ({!Rob_sim}), for the comparative cost columns *)
}

val default : params
(** The paper's design point: 32 registers, 32 bits, 8R/4W, K = 4; the
    rival ROB at the base machine model's 32 entries. *)

type report = {
  base_transistors : int;  (** normal register file *)
  storage_transistors : int;  (** additional speculative storage *)
  commit_transistors : int;  (** predicates + evaluation + flags *)
  storage_overhead : float;  (** storage_transistors / base (paper: 0.76) *)
  commit_overhead : float;  (** commit_transistors / base (paper: 0.31) *)
  total_overhead : float;  (** paper: 1.07 *)
  eval_gate_levels : int;  (** paper: 3 *)
  encode_bits_region : int;  (** predicate bits, region predicating: 2K *)
  encode_bits_trace : int;  (** trace predicating: ceil(log2 K) + 1 *)
  encode_bits_srcs : int;  (** shadow-state bits, one per source *)
  rob_entry_transistors : int;
      (** rival backend: per-entry result/destination/state flip-flops *)
  rob_rename_transistors : int;
      (** rename map (one ROB tag + busy bit per architectural register,
          operand-fetch ported) *)
  rob_cam_transistors : int;
      (** completion tag broadcast (two source comparators per entry) plus
          the store-to-load address match *)
  rob_overhead : float;
      (** (entries + rename + CAM) / base — the dynamic alternative's
          cost on the same yardstick as {!total_overhead} *)
}

val analyze : params -> report
val pp_report : Format.formatter -> report -> unit
