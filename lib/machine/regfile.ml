open Psb_isa

type mode = Single | Infinite

type version = {
  value : int;
  cpred : Pred.compiled;
  fault : Fault.t option;
  seqno : int; (* issue order, newest wins on reads *)
}

type entry = {
  mutable seq : int;
  mutable written : bool;
  mutable versions : version list; (* valid speculative versions, newest first *)
}

type t = {
  mode : mode;
  events : Psb_obs.Events.t option;
  mutable now : int; (* cycle stamp for emitted events, set by the sim *)
  entries : entry array;
  mutable conflicts : int;
  mutable spec_writes : int;
  mutable commits : int;
  mutable squashes : int;
  mutable next_seqno : int;
  (* live-state tracking: [live] buffered versions in total (the tick
     returns immediately when none exist), [faults] of them carrying a
     buffered exception (detection walks nothing when zero). *)
  mutable live : int;
  mutable faults : int;
  (* tick accounting for lib/obs *)
  mutable tick_examined : int;
  mutable tick_skipped : int;
}

let create ?(mode = Single) ?events ~nregs () =
  {
    mode;
    events;
    now = 0;
    entries =
      Array.init (max nregs 1) (fun _ ->
          { seq = 0; written = false; versions = [] });
    conflicts = 0;
    spec_writes = 0;
    commits = 0;
    squashes = 0;
    next_seqno = 0;
    live = 0;
    faults = 0;
    tick_examined = 0;
    tick_skipped = 0;
  }

let nregs t = Array.length t.entries
let mode t = t.mode
let set_now t cycle = t.now <- cycle

let ev t kind a b =
  match t.events with
  | None -> ()
  | Some e -> Psb_obs.Events.emit e ~cycle:t.now kind ~a ~b
let entry t r = t.entries.(Reg.index r)
let read_seq t r = (entry t r).seq

let vpred v = Pred.source v.cpred

(* Pick the speculative version a reader with predicate [pred] should see:
   the newest version whose predicate is not on a mutually-exclusive path.
   In the Single model there is at most one version. *)
let pick_version e ~pred =
  List.find_opt (fun v -> not (Pred.disjoint (vpred v) pred)) e.versions

let read t r ~shadow ~pred =
  let e = entry t r in
  if shadow then
    match pick_version e ~pred with Some v -> v.value | None -> e.seq
  else e.seq

let read_fault t r ~shadow ~pred =
  let e = entry t r in
  if shadow then
    match pick_version e ~pred with Some v -> v.fault | None -> None
  else None

let write_seq t r v =
  let e = entry t r in
  e.seq <- v;
  e.written <- true

let count_fault = function Some _ -> 1 | None -> 0

let write_spec t r value ~cpred ~fault =
  let e = entry t r in
  t.spec_writes <- t.spec_writes + 1;
  ev t Psb_obs.Events.Shadow_write (Reg.index r) value;
  (* A same-predicate rewrite (speculative WAW on one path) takes the new
     value, but flag E is sticky: an outstanding exception buffered in the
     overwritten version must still be detected when the predicate commits
     — the excepting instruction's result may be dead, its exception is
     not. Recovery re-executes both instructions in order, so the final
     value regenerates correctly. The earliest fault wins, matching the
     order recovery would handle them. *)
  let merge_fault old_fault =
    match old_fault with Some f -> Some f | None -> fault
  in
  let pred = Pred.source cpred in
  let fresh = { value; cpred; fault; seqno = t.next_seqno } in
  t.next_seqno <- t.next_seqno + 1;
  match t.mode with
  | Infinite ->
      let same, rest =
        List.partition (fun v -> Pred.equal (vpred v) pred) e.versions
      in
      let fresh =
        match same with
        | v :: _ ->
            t.live <- t.live - 1;
            t.faults <- t.faults - count_fault v.fault;
            { fresh with fault = merge_fault v.fault }
        | [] -> fresh
      in
      e.versions <- fresh :: rest;
      t.live <- t.live + 1;
      t.faults <- t.faults + count_fault fresh.fault;
      `Ok
  | Single -> (
      match e.versions with
      | [] ->
          e.versions <- [ fresh ];
          t.live <- t.live + 1;
          t.faults <- t.faults + count_fault fresh.fault;
          `Ok
      | [ v ] when Pred.equal (vpred v) pred ->
          let fresh = { fresh with fault = merge_fault v.fault } in
          e.versions <- [ fresh ];
          t.faults <- t.faults - count_fault v.fault + count_fault fresh.fault;
          `Ok
      | _ ->
          t.conflicts <- t.conflicts + 1;
          `Conflict)

let committing_exceptions t lookup =
  if t.faults = 0 then []
  else
    Array.to_seqi t.entries
    |> Seq.concat_map (fun (i, e) ->
           List.to_seq e.versions
           |> Seq.filter_map (fun v ->
                  match v.fault with
                  | Some f when Pred.eval (vpred v) lookup = Pred.True ->
                      Some (Reg.make i, f)
                  | Some _ | None -> None))
    |> List.of_seq

let tick ?(mode = Pred_kernel.Mask) ?(dirty = -1) t ccr =
  if t.live = 0 then []
  else begin
    let events = ref [] in
    Array.iteri
      (fun idx e ->
        if e.versions <> [] then begin
          (* Evaluate each version exactly once.  Under the mask kernel a
             version whose mask meets none of the conditions written since
             the last tick ([dirty]) is still Unspec — the gating
             invariant: every buffered version was Unspec when last
             examined (speculative writes only buffer on Unspec), and only
             a write to a mentioned condition can change that. *)
          let value v =
            match mode with
            | Pred_kernel.Map ->
                t.tick_examined <- t.tick_examined + 1;
                Ccr.eval ccr (vpred v)
            | Pred_kernel.Mask ->
                if
                  v.cpred.Pred.c_wide = None
                  && v.cpred.Pred.c_mask land dirty = 0
                then begin
                  t.tick_skipped <- t.tick_skipped + 1;
                  Pred.Unspec
                end
                else begin
                  t.tick_examined <- t.tick_examined + 1;
                  Ccr.evalc ccr v.cpred
                end
          in
          match e.versions with
          | [ v ] -> (
              (* At most one version (always, in the Single model): decide
                 in place, allocating nothing while it stays Unspec — the
                 overwhelmingly common per-cycle outcome. *)
              match value v with
              | Pred.Unspec -> ()
              | Pred.True ->
                  assert (v.fault = None);
                  t.commits <- t.commits + 1;
                  ev t Psb_obs.Events.Shadow_commit idx v.value;
                  e.seq <- v.value;
                  e.written <- true;
                  e.versions <- [];
                  t.live <- t.live - 1;
                  events := (Reg.make idx, `Commit) :: !events
              | Pred.False ->
                  t.squashes <- t.squashes + 1;
                  ev t Psb_obs.Events.Shadow_squash idx 0;
                  t.faults <- t.faults - count_fault v.fault;
                  e.versions <- [];
                  t.live <- t.live - 1;
                  events := (Reg.make idx, `Squash) :: !events)
          | versions ->
              (* Commits are processed oldest-first so that if several
                 versions of the same register commit in one cycle (compiler
                 bug in the Single model, possible WAW in Infinite), the
                 newest wins. *)
              let committing = ref [] and keep_rev = ref [] in
              let squashed = ref 0 in
              List.iter
                (fun v ->
                  match value v with
                  | Pred.True -> committing := v :: !committing
                  | Pred.False ->
                      squashed := !squashed + 1;
                      ev t Psb_obs.Events.Shadow_squash idx 0;
                      t.faults <- t.faults - count_fault v.fault
                  | Pred.Unspec -> keep_rev := v :: !keep_rev)
                versions;
              (match
                 List.sort (fun a b -> compare a.seqno b.seqno) !committing
               with
              | [] -> ()
              | winners ->
                  List.iter
                    (fun v ->
                      assert (v.fault = None);
                      t.commits <- t.commits + 1;
                      ev t Psb_obs.Events.Shadow_commit idx v.value;
                      e.seq <- v.value;
                      e.written <- true)
                    winners;
                  events := (Reg.make idx, `Commit) :: !events);
              t.squashes <- t.squashes + !squashed;
              if !squashed > 0 then events := (Reg.make idx, `Squash) :: !events;
              t.live <- t.live - List.length !committing - !squashed;
              e.versions <- List.rev !keep_rev
        end)
      t.entries;
    List.rev !events
  end

let invalidate_spec t =
  (match t.events with
  | None -> ()
  | Some _ when t.live = 0 -> ()
  | Some _ ->
      Array.iteri
        (fun idx e ->
          List.iter (fun _ -> ev t Psb_obs.Events.Shadow_squash idx 1) e.versions)
        t.entries);
  Array.iter (fun e -> e.versions <- []) t.entries;
  t.live <- 0;
  t.faults <- 0

let has_spec t = t.live > 0
let conflicts t = t.conflicts
let spec_writes t = t.spec_writes
let commits t = t.commits
let squashes t = t.squashes
let buffered_faults t = t.faults
let tick_examined t = t.tick_examined
let tick_skipped t = t.tick_skipped

let debug_recount t =
  Array.fold_left
    (fun (live, faults) e ->
      ( live + List.length e.versions,
        faults
        + List.length (List.filter (fun v -> v.fault <> None) e.versions) ))
    (0, 0) t.entries

let final_state t =
  Array.to_seqi t.entries
  |> Seq.filter (fun (_, e) -> e.written)
  |> Seq.fold_left (fun m (i, e) -> Reg.Map.add (Reg.make i) e.seq m) Reg.Map.empty
