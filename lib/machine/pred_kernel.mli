(** Which predicate-evaluation kernel the machine's per-cycle paths use.

    [Mask] — the default — evaluates {!Psb_isa.Pred.compiled} bitmasks
    against the packed CCR mirror: allocation-free, no exceptions, and
    eligible for dirty-condition gating in the commit/squash tick.

    [Map] is the reference path: every evaluation walks the predicate's
    [Cond.Map] through {!Psb_isa.Pred.eval} and nothing is gated. It
    exists for differential testing and for the [PSB_PRED_KERNEL=map]
    environment toggle (read once at startup into {!default}); both
    kernels must produce identical cycle counts and results. *)

type mode = Mask | Map

val default : mode
(** [Mask], unless the environment sets [PSB_PRED_KERNEL=map]. *)

val of_string : string -> mode option
val to_string : mode -> string
val pp : Format.formatter -> mode -> unit
