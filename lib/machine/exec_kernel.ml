type mode = Lowered | Tree

let of_string = function
  | "lowered" -> Some Lowered
  | "tree" -> Some Tree
  | _ -> None

let to_string = function Lowered -> "lowered" | Tree -> "tree"

let default =
  match Sys.getenv_opt "PSB_EXEC_KERNEL" with
  | None -> Lowered
  | Some s -> (
      match of_string (String.lowercase_ascii (String.trim s)) with
      | Some m -> m
      | None ->
          Printf.eprintf
            "psb: ignoring unknown PSB_EXEC_KERNEL=%s (expected lowered|tree)\n%!"
            s;
          Lowered)

let pp ppf m = Format.pp_print_string ppf (to_string m)
