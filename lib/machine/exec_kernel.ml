type mode = Lowered | Tree

include Psb_isa.Kernel_mode.Make (struct
  type nonrec mode = mode

  let name = "PSB_EXEC_KERNEL"
  let values = [ ("lowered", Lowered); ("tree", Tree) ]
  let fallback = Lowered
end)
