(** Predicated register file (Figure 2).

    Each entry holds a sequential value and (at most) one speculative value
    labelled with its predicate, plus flags: V (speculative value valid) and
    E (outstanding speculative exception). The paper's W flag — which of the
    two physical storages currently holds the speculative value, flipped on
    commit to avoid a copy — is an implementation trick; here commit copies
    the shadow into the sequential storage, which is observably identical.

    Two capacity models: [Single] (the paper's cost-reduced design — a
    second same-register speculative write with a different predicate is a
    {e storage conflict} and must stall, footnote 1) and [Infinite]
    (the idealised design used to bound the cost of that choice).

    Buffered versions carry {e compiled} predicates
    ({!Psb_isa.Pred.compiled}); the per-cycle {!tick} evaluates them as
    bitmasks against the packed {!Ccr} — the software mirror of the
    paper's per-entry predicate hardware — and can skip entries whose
    masks do not intersect the conditions written since the last tick. *)

open Psb_isa

type mode = Single | Infinite

type t

val create : ?mode:mode -> ?events:Psb_obs.Events.t -> nregs:int -> unit -> t
(** [events], when given, receives the shadow-state lifecycle:
    [Shadow_write] on every speculative write attempt (conflicts
    included, matching {!spec_writes}), [Shadow_commit]/[Shadow_squash]
    from {!tick} (squash payload [b = 0]) and [Shadow_squash] with
    [b = 1] from {!invalidate_spec}. Absent, nothing is recorded and
    nothing is paid. *)

val nregs : t -> int
val mode : t -> mode

val set_now : t -> int -> unit
(** Stamp subsequent emitted events with this cycle. The owning
    simulator calls it once per cycle (only when events are attached). *)

val read_seq : t -> Reg.t -> int

val read : t -> Reg.t -> shadow:bool -> pred:Pred.t -> int
(** Operand fetch. With [shadow:true] the speculative value is returned if
    valid, falling back to the sequential register otherwise (the §3.5
    operand-fetch fix). [pred] is the reader's predicate, used in the
    [Infinite] model to pick the matching speculative version. *)

val read_fault : t -> Reg.t -> shadow:bool -> pred:Pred.t -> Fault.t option
(** The buffered exception attached to the value {!read} would return, if
    any (a corrupted operand propagates corruption, sentinel-style). *)

val write_seq : t -> Reg.t -> int -> unit

val write_spec :
  t -> Reg.t -> int -> cpred:Pred.compiled -> fault:Fault.t option ->
  [ `Ok | `Conflict ]
(** Speculative write: buffer the value with its (compiled) predicate;
    sets V, and E when [fault] is given. [`Conflict] (single-shadow model
    only) when a valid speculative value with a different predicate
    already occupies the entry — the machine must stall the writer. *)

val committing_exceptions :
  t -> (Cond.t -> Pred.cond_value) -> (Reg.t * Fault.t) list
(** Buffered exceptions whose predicate evaluates true under the given
    (tentative) CCR — the detection signal of §3.5. Takes a lookup
    closure, not a CCR, because detection evaluates hypothetical states
    (pending condition writes, the future CCR); returns immediately when
    no version carries a fault. *)

val tick :
  ?mode:Pred_kernel.mode -> ?dirty:int ->
  t -> Ccr.t -> (Reg.t * [ `Commit | `Squash ]) list
(** Evaluate every valid speculative entry: true → commit (copy to
    sequential state, clear V), false → squash (clear V). Returns what
    happened, in register order, for event tracing. Entries with E must
    have been intercepted by {!committing_exceptions} first; a committing
    entry with E set is an internal error.

    [dirty] is the word-0 bitmask of conditions written since the last
    tick (default [-1]: everything dirty). Under the [Mask] kernel a
    version whose mask does not intersect [dirty] is still [Unspec] —
    it was Unspec when buffered or last examined and none of its
    conditions changed — and is skipped without evaluation. Callers that
    wrote a condition at index [>= Pred.word_bits], or replaced the CCR
    wholesale, must pass [-1]. The [Map] kernel examines everything. *)

val invalidate_spec : t -> unit
(** Clear all speculative state (on exception detection and region exit). *)

val has_spec : t -> bool
val conflicts : t -> int
(** Number of storage conflicts reported so far (ablation statistic). *)

val spec_writes : t -> int
val commits : t -> int
val squashes : t -> int

val buffered_faults : t -> int
(** Versions currently carrying a buffered exception (E set). *)

val tick_examined : t -> int
val tick_skipped : t -> int
(** Versions evaluated vs skipped by dirty-mask gating across all ticks. *)

val debug_recount : t -> int * int
(** [(live versions, versions with E)] recounted by full scan — test
    oracle for the incremental counters. *)

val final_state : t -> int Reg.Map.t
(** Sequential values of registers ever written. *)
