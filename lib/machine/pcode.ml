open Psb_isa

type pinstr = {
  pred : Pred.t;
  cpred : Pred.compiled;
  op : Instr.op;
  shadow_srcs : Reg.Set.t;
}

type exit_target = To_region of Label.t | Stop

type slot =
  | Op of pinstr
  | Exit of { pred : Pred.t; cpred : Pred.compiled; target : exit_target }

type bundle = slot list

type region = {
  name : Label.t;
  code : bundle array;
  source_blocks : Label.t list;
}

type t = { entry : Label.t; regions : region list }

(* Predicates compile to their mask form once, here, when a slot is
   built — the software analogue of loading a region's ternary vectors
   into the per-entry comparators. *)
let op ?(shadow_srcs = Reg.Set.empty) pred op =
  Op { pred; cpred = Pred.compile pred; op; shadow_srcs }

let exit_to pred l =
  Exit { pred; cpred = Pred.compile pred; target = To_region l }

let exit_stop pred = Exit { pred; cpred = Pred.compile pred; target = Stop }

let slot_pred = function Op { pred; _ } -> pred | Exit { pred; _ } -> pred

let slot_cpred = function
  | Op { cpred; _ } -> cpred
  | Exit { cpred; _ } -> cpred

(* The last bundle must offer a way out. The exits of a region need not
   include an always-exit: as in Figure 4, a set of predicated exits whose
   predicates exhaust all outcomes is legal — the machine checks at run
   time that some exit fires before the code runs out. *)
let ends_in_exit region =
  let n = Array.length region.code in
  n > 0
  && List.exists
       (function Exit _ -> true | Op _ -> false)
       region.code.(n - 1)

let make ~entry regions =
  let names = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem names r.name then
        invalid_arg
          (Format.asprintf "Pcode.make: duplicate region %a" Label.pp r.name);
      Hashtbl.add names r.name ())
    regions;
  if not (Hashtbl.mem names entry) then
    invalid_arg
      (Format.asprintf "Pcode.make: entry region %a missing" Label.pp entry);
  List.iter
    (fun r ->
      if not (ends_in_exit r) then
        invalid_arg
          (Format.asprintf "Pcode.make: region %a does not end in an exit"
             Label.pp r.name);
      Array.iter
        (List.iter (function
          | Exit { target = To_region l; _ } ->
              if not (Hashtbl.mem names l) then
                invalid_arg
                  (Format.asprintf
                     "Pcode.make: region %a exits to undefined region %a"
                     Label.pp r.name Label.pp l)
          | Exit { target = Stop; _ } | Op _ -> ()))
        r.code)
    regions;
  { entry; regions }

let find_region t l = List.find (fun r -> Label.equal r.name l) t.regions
let num_regions t = List.length t.regions

let num_bundles t =
  List.fold_left (fun acc r -> acc + Array.length r.code) 0 t.regions

let num_slots t =
  List.fold_left
    (fun acc r ->
      acc + Array.fold_left (fun a b -> a + List.length b) 0 r.code)
    0 t.regions

let check_resources model t =
  let module M = Machine_model in
  let check_region r =
    let check_bundle i bundle =
      let counts = Hashtbl.create 4 in
      let bump k =
        Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
      in
      List.iter
        (function
          | Op { op; _ } -> bump (M.unit_of_op op)
          | Exit _ -> bump M.Branch_unit)
        bundle;
      let over k =
        Option.value (Hashtbl.find_opt counts k) ~default:0 > M.units_available model k
      in
      if List.length bundle > model.M.issue_width then
        Error
          (Format.asprintf "region %a bundle %d exceeds issue width" Label.pp
             r.name i)
      else if List.exists over [ M.Alu_unit; M.Branch_unit; M.Load_unit; M.Store_unit ]
      then
        Error
          (Format.asprintf "region %a bundle %d exceeds function units"
             Label.pp r.name i)
      else
        let bad_pred =
          List.exists
            (fun s ->
              not (Pred.compiled_fits ~width:model.M.ccr_size (slot_cpred s)))
            bundle
        in
        if bad_pred then
          Error
            (Format.asprintf "region %a bundle %d predicate beyond CCR width"
               Label.pp r.name i)
        else Ok ()
    in
    Array.to_seqi r.code
    |> Seq.fold_left
         (fun acc (i, b) ->
           match acc with Error _ -> acc | Ok () -> check_bundle i b)
         (Ok ())
  in
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> check_region r)
    (Ok ()) t.regions

let pp_slot ppf = function
  | Op { pred; op; shadow_srcs; _ } ->
      Format.fprintf ppf "%a ? %a" Pred.pp pred Instr.pp_op op;
      if not (Reg.Set.is_empty shadow_srcs) then
        Format.fprintf ppf " [shadow:%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
             Reg.pp)
          (Reg.Set.elements shadow_srcs)
  | Exit { pred; target = To_region l; _ } ->
      Format.fprintf ppf "%a ? j %a" Pred.pp pred Label.pp l
  | Exit { pred; target = Stop; _ } ->
      Format.fprintf ppf "%a ? halt" Pred.pp pred

let pp_region ppf r =
  Format.fprintf ppf "@[<v>region %a:@," Label.pp r.name;
  Array.iteri
    (fun i bundle ->
      Format.fprintf ppf "  (%d) " i;
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " || ")
        pp_slot ppf bundle;
      Format.pp_print_cut ppf ())
    r.code;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>entry %a@," Label.pp t.entry;
  List.iter (fun r -> pp_region ppf r) t.regions;
  Format.fprintf ppf "@]"
