open Psb_isa

type entry = {
  addr : int;
  value : int;
  cpred : Pred.compiled;
  mutable spec : bool; (* W *)
  mutable valid : bool; (* V *)
  mutable examined : bool;
      (* seen by at least one tick — a fresh entry may have been appended
         with an already-decided predicate, so it is never dirty-gated
         before its first examination *)
  fault : Fault.t option; (* E *)
}

(* A growable ring: [buf.(wrap (head + i))] for [i < count] are the live
   entries, oldest first. Appends are O(1) amortised (the old list
   representation paid an O(n) [entries @ [e]] per append), drains pop at
   the head, and iteration walks indices — no per-cycle allocation. *)
type t = {
  events : Psb_obs.Events.t option;
  mutable now : int; (* cycle stamp for emitted events, set by the sim *)
  mutable buf : entry array;
  mutable head : int;
  mutable count : int;
  mutable max_occupancy : int;
  mutable spec_appends : int;
  mutable commits : int;
  mutable squashes : int;
  (* live-state tracking, mirroring Regfile: [spec_live] entries still
     awaiting their predicate (tick returns immediately at zero),
     [faults] of them with a buffered exception. *)
  mutable spec_live : int;
  mutable faults : int;
  (* tick accounting for lib/obs *)
  mutable tick_examined : int;
  mutable tick_skipped : int;
}

let dummy =
  {
    addr = 0;
    value = 0;
    cpred = Pred.compiled_always;
    spec = false;
    valid = false;
    examined = true;
    fault = None;
  }

let initial_capacity = 16

let create ?events () =
  {
    events;
    now = 0;
    buf = Array.make initial_capacity dummy;
    head = 0;
    count = 0;
    max_occupancy = 0;
    spec_appends = 0;
    commits = 0;
    squashes = 0;
    spec_live = 0;
    faults = 0;
    tick_examined = 0;
    tick_skipped = 0;
  }

let nth t i = t.buf.((t.head + i) mod Array.length t.buf)
let set_now t cycle = t.now <- cycle

let ev t kind a b =
  match t.events with
  | None -> ()
  | Some e -> Psb_obs.Events.emit e ~cycle:t.now kind ~a ~b

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) dummy in
  for i = 0 to t.count - 1 do
    buf.(i) <- nth t i
  done;
  t.buf <- buf;
  t.head <- 0

let is_live_spec e = e.spec && e.valid

let count_fault e = if e.fault <> None then 1 else 0

let append t ~addr ~value ~cpred ~spec ~fault =
  if t.count = Array.length t.buf then grow t;
  let e = { addr; value; cpred; spec; valid = true; examined = false; fault } in
  t.buf.((t.head + t.count) mod Array.length t.buf) <- e;
  t.count <- t.count + 1;
  ev t Psb_obs.Events.Sb_append addr (if spec then 1 else 0);
  if spec then begin
    t.spec_appends <- t.spec_appends + 1;
    t.spec_live <- t.spec_live + 1;
    t.faults <- t.faults + count_fault e
  end;
  if t.count > t.max_occupancy then t.max_occupancy <- t.count

let tick ?(mode = Pred_kernel.Mask) ?(dirty = -1) t ccr =
  if t.spec_live = 0 then []
  else begin
    let events = ref [] in
    for i = 0 to t.count - 1 do
      let e = nth t i in
      if is_live_spec e then begin
        let value =
          match mode with
          | Pred_kernel.Map ->
              t.tick_examined <- t.tick_examined + 1;
              Ccr.eval ccr (Pred.source e.cpred)
          | Pred_kernel.Mask ->
              if
                e.examined
                && e.cpred.Pred.c_wide = None
                && e.cpred.Pred.c_mask land dirty = 0
              then begin
                t.tick_skipped <- t.tick_skipped + 1;
                Pred.Unspec
              end
              else begin
                t.tick_examined <- t.tick_examined + 1;
                e.examined <- true;
                Ccr.evalc ccr e.cpred
              end
        in
        match value with
        | Pred.True ->
            assert (e.fault = None);
            t.commits <- t.commits + 1;
            ev t Psb_obs.Events.Sb_commit e.addr 0;
            e.spec <- false;
            t.spec_live <- t.spec_live - 1;
            events := (e.addr, `Commit) :: !events
        | Pred.False ->
            t.squashes <- t.squashes + 1;
            ev t Psb_obs.Events.Sb_squash e.addr 0;
            e.valid <- false;
            t.spec_live <- t.spec_live - 1;
            t.faults <- t.faults - count_fault e;
            events := (e.addr, `Squash) :: !events
        | Pred.Unspec -> ()
      end
    done;
    List.rev !events
  end

let committing_exceptions t lookup =
  if t.faults = 0 then []
  else begin
    let acc = ref [] in
    for i = t.count - 1 downto 0 do
      let e = nth t i in
      match e.fault with
      | Some f
        when is_live_spec e && Pred.eval (Pred.source e.cpred) lookup = Pred.True
        ->
          acc := f :: !acc
      | Some _ | None -> ()
    done;
    !acc
  end

let pop_head t =
  t.buf.(t.head) <- dummy;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.count <- t.count - 1

let drain t ~max:limit mem =
  let written = ref 0 in
  let continue = ref true in
  while !continue && t.count > 0 do
    let e = t.buf.(t.head) in
    if not e.valid then pop_head t (* squashed: free discard *)
    else if e.spec || !written >= limit then continue := false
    else begin
      (match e.fault with
      | Some (Fault.Mem f) -> raise (Memory.Fault f)
      | Some (Fault.Arith _) | None -> ());
      Memory.write mem e.addr e.value;
      ev t Psb_obs.Events.Sb_flush e.addr e.value;
      incr written;
      pop_head t
    end
  done;
  !written

let drain_all t mem =
  ignore (drain t ~max:max_int mem);
  (* With no limit, drain only stops at a still-speculative entry. *)
  if t.count > 0 then
    invalid_arg "Store_buffer.drain_all: speculative entries remain"

let forward ?(mode = Pred_kernel.Mask) t ~addr ~load_pred ccr =
  (* Search youngest → oldest among valid entries with the address. *)
  let rec search i =
    if i < 0 then `Miss
    else
      let e = nth t i in
      if not (e.valid && e.addr = addr) then search (i - 1)
      else if Pred.disjoint (Pred.source e.cpred) load_pred then search (i - 1)
      else if (not e.spec) || Pred.implies load_pred (Pred.source e.cpred) then begin
        ev t Psb_obs.Events.Sb_forward e.addr e.value;
        `Hit (e.value, e.fault)
      end
      else
        let v =
          match mode with
          | Pred_kernel.Mask -> Ccr.evalc ccr e.cpred
          | Pred_kernel.Map -> Ccr.eval ccr (Pred.source e.cpred)
        in
        match v with
        | Pred.True ->
            ev t Psb_obs.Events.Sb_forward e.addr e.value;
            `Hit (e.value, e.fault)
        | Pred.False -> search (i - 1)
        | Pred.Unspec -> `Commit_dependence
  in
  search (t.count - 1)

let invalidate_spec t =
  (* Squash every speculative entry and compact the invalid ones away, as
     the list representation did. Cold path: exception detection, region
     exit, halt. *)
  let kept = ref [] in
  for i = t.count - 1 downto 0 do
    let e = nth t i in
    if e.spec then begin
      if e.valid then ev t Psb_obs.Events.Sb_squash e.addr 1;
      e.valid <- false
    end;
    if e.valid then kept := e :: !kept
  done;
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.head <- 0;
  t.count <- 0;
  List.iter
    (fun e ->
      t.buf.(t.count) <- e;
      t.count <- t.count + 1)
    !kept;
  t.spec_live <- 0;
  t.faults <- 0

let has_spec t = t.spec_live > 0
let length t = t.count
let max_occupancy t = t.max_occupancy
let spec_appends t = t.spec_appends
let commits t = t.commits
let squashes t = t.squashes
let buffered_faults t = t.faults
let tick_examined t = t.tick_examined
let tick_skipped t = t.tick_skipped

let debug_recount t =
  let len = t.count and spec = ref 0 and faults = ref 0 in
  for i = 0 to t.count - 1 do
    let e = nth t i in
    if is_live_spec e then begin
      incr spec;
      if e.fault <> None then incr faults
    end
  done;
  (len, !spec, !faults)
