open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Branch_predict = Psb_cfg.Branch_predict

type key = string

let add_model b (m : Model.t) =
  let spec = function
    | Model.No_spec -> "none"
    | Model.Squash n -> Printf.sprintf "squash%d" n
    | Model.Buffered -> "buffered"
  in
  Buffer.add_string b
    (Printf.sprintf "|model=%s;scope=%s;safe=%s;unsafe=%s;store=%s;elim=%b;climit=%s;counter=%b;exec=%b"
       m.Model.name
       (match m.Model.scope with Model.Trace -> "trace" | Model.Region -> "region")
       (spec m.Model.safe_spec) (spec m.Model.unsafe_spec)
       (spec m.Model.store_spec) m.Model.branch_elim
       (match m.Model.cond_limit with None -> "inf" | Some n -> string_of_int n)
       m.Model.counter_preds m.Model.executable)

let add_machine b (m : Machine_model.t) =
  Buffer.add_string b
    (Printf.sprintf "|machine=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d"
       m.Machine_model.issue_width m.Machine_model.alu_units
       m.Machine_model.branch_units m.Machine_model.load_units
       m.Machine_model.store_units m.Machine_model.ccr_size
       m.Machine_model.load_latency m.Machine_model.int_latency
       m.Machine_model.max_spec_conds m.Machine_model.transition_penalty
       m.Machine_model.sb_capacity m.Machine_model.dcache_ports)

(* Bumped whenever the [Driver.compiled] representation changes shape
   (v2: pcode slots carry compiled predicate masks; v3: compiles carry
   the lowered structure-of-arrays region form; v4: compiles carry the
   predecoded scalar form for the interpreter and ROB kernels), so a
   process mixing library versions through a shared cache can never
   alias keys. *)
let format_version = 4

let key ~model ~machine ~single_shadow ~avoid_commit_deps ~verify ~profile
    program =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "v%d|" format_version);
  Buffer.add_string b (Asm.print program);
  add_model b model;
  add_machine b machine;
  Buffer.add_string b
    (Printf.sprintf "|single_shadow=%b|avoid_commit_deps=%b|verify=%b|profile="
       single_shadow avoid_commit_deps verify);
  Buffer.add_string b (Branch_predict.fingerprint profile);
  Digest.to_hex (Digest.string (Buffer.contents b))

type 'a t = {
  lock : Mutex.t;
  tbl : (key, 'a) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let find_or_compile t key build =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some v ->
      Atomic.incr t.hits;
      Mutex.unlock t.lock;
      v
  | None ->
      Mutex.unlock t.lock;
      Atomic.incr t.misses;
      let v = build () in
      Mutex.lock t.lock;
      (* A racing domain may have inserted first: keep the incumbent so
         every later hit shares one value. *)
      let v =
        match Hashtbl.find_opt t.tbl key with
        | Some v' -> v'
        | None ->
            Hashtbl.replace t.tbl key v;
            v
      in
      Mutex.unlock t.lock;
      v

type stats = { hits : int; misses : int; entries : int }

let stats t =
  Mutex.lock t.lock;
  let entries = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  { hits = Atomic.get t.hits; misses = Atomic.get t.misses; entries }

let observe_metrics t m =
  let s = stats t in
  let set name v =
    let c = Psb_obs.Metrics.counter m name in
    Psb_obs.Metrics.inc c ~by:(v - Psb_obs.Metrics.counter_value c)
  in
  set "compile_cache_hits" s.hits;
  set "compile_cache_misses" s.misses;
  set "compile_cache_entries" s.entries
