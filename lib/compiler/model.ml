open Psb_isa

type scope = Trace | Region
type spec_class = No_spec | Squash of int | Buffered

type t = {
  name : string;
  scope : scope;
  safe_spec : spec_class;
  unsafe_spec : spec_class;
  store_spec : spec_class;
  branch_elim : bool;
  cond_limit : int option;
  counter_preds : bool;
  executable : bool;
}

(* Issue-to-writeback distance of the scalar pipeline: a squashing machine
   can cancel a side effect up to this many cycles after issue. *)
let squash_window = 2

let global =
  {
    name = "global";
    (* The paper's global scheduler iterates motions between adjacent
       blocks until fixpoint, which lets legal+safe instructions cross
       several block boundaries; a region models that reach. *)
    scope = Region;
    safe_spec = Buffered (* renaming provides the buffering, no hardware *);
    unsafe_spec = No_spec;
    store_spec = No_spec;
    branch_elim = false;
    cond_limit = Some 1;
    counter_preds = false;
    executable = false;
  }

let squashing =
  {
    global with
    name = "squashing";
    unsafe_spec = Squash squash_window;
    store_spec = Squash squash_window;
  }

let trace_sched =
  { squashing with name = "trace-sched"; scope = Trace; cond_limit = None }

let region_sched =
  {
    squashing with
    name = "region-sched";
    scope = Region;
    branch_elim = true;
    cond_limit = None;
    executable = true;
  }

let guarded =
  {
    name = "guarded";
    scope = Region;
    safe_spec = Squash squash_window;
    unsafe_spec = Squash squash_window;
    store_spec = Squash squash_window;
    branch_elim = true;
    cond_limit = None;
    counter_preds = false;
    executable = true;
  }

let boosting =
  {
    name = "boosting";
    scope = Trace;
    safe_spec = Buffered;
    unsafe_spec = Buffered;
    store_spec = Buffered;
    branch_elim = false (* basic blocks are maintained (§4.2.2) *);
    cond_limit = None;
    counter_preds = false;
    executable = false;
  }

let trace_pred =
  {
    boosting with
    name = "trace-pred";
    branch_elim = true;
    executable = true;
  }

let trace_pred_counter =
  { trace_pred with name = "trace-pred-counter"; counter_preds = true }

let region_pred =
  { trace_pred with name = "region-pred"; scope = Region }

let all =
  [
    global; squashing; trace_sched; region_sched; guarded; boosting;
    trace_pred; region_pred;
  ]

let restricted = [ global; squashing; trace_sched; region_sched ]
let predicating = [ global; boosting; trace_pred; region_pred ]

let find s =
  (* accept underscores for hyphens, as the CLI always has *)
  let s = String.map (function '_' -> '-' | c -> c) s in
  let candidates = trace_pred_counter :: all in
  match List.find_opt (fun m -> m.name = s) candidates with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown model %s (expected one of: %s)" s
           (String.concat ", " (List.map (fun m -> m.name) candidates)))

let spec_class_of t (op : Instr.op) =
  if Instr.is_store op then t.store_spec
  else if Instr.has_side_effect op then No_spec (* Out is never speculated *)
  else if Instr.is_unsafe op then t.unsafe_spec
  else t.safe_spec

let pp ppf t = Format.pp_print_string ppf t.name
