open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode
module Vliw_sim = Psb_machine.Vliw_sim
module Branch_predict = Psb_cfg.Branch_predict
module Cfg = Psb_cfg.Cfg
module Dominance = Psb_cfg.Dominance
module Loops = Psb_cfg.Loops

type compiled = {
  model : Model.t;
  machine : Machine_model.t;
  units : Runit.t Label.Map.t;
  schedules : Sched.t Label.Map.t;
  pcode : Pcode.t option;
  lowered : Psb_machine.Lowered.t option;
  decoded : Decoded.t;
}

let profile_of program ~regs ~mem =
  let result = Interp.run ~regs ~mem program in
  let cfg = Cfg.of_program program in
  let trace = Trace.of_result program result in
  (result, Branch_predict.of_trace cfg trace)

let compile_uncached ?metrics ~single_shadow ~avoid_commit_deps ~verify
    ~model ~machine ~profile program =
  let timed pass f =
    match metrics with
    | None -> f ()
    | Some m ->
        Psb_obs.Metrics.time m "compile_pass_seconds"
          ~labels:[ ("pass", pass) ]
          f
  in
  let cfg, dom = timed "cfg" (fun () ->
      let cfg = Cfg.of_program program in
      (cfg, Dominance.compute cfg))
  in
  let loop_heads = Loops.loop_heads cfg dom in
  let params =
    Runit.default_params ~scope:model.Model.scope
      ~max_conds:machine.Machine_model.ccr_size
      ~fuse_compare:model.Model.branch_elim ~avoid_commit_deps ()
  in
  let units = timed "unit_formation" (fun () ->
      Runit.build_all params cfg profile ~loop_heads ~entry:program.Program.entry)
  in
  let schedules = timed "schedule" (fun () ->
      Label.Map.map (fun u -> Sched.schedule model machine ~single_shadow u) units)
  in
  timed "check" (fun () ->
      Label.Map.iter
        (fun header sched ->
          match Sched.check sched model machine with
          | Ok () -> ()
          | Error e ->
              failwith
                (Format.asprintf "Driver.compile: %s schedule for %a invalid: %s"
                   model.Model.name Label.pp header e))
        schedules);
  let pcode =
    if model.Model.executable then
      timed "emit" (fun () ->
          let regions =
            Label.Map.bindings schedules |> List.map (fun (_, s) -> Sched.emit s)
          in
          let code = Pcode.make ~entry:program.Program.entry regions in
          (match Pcode.check_resources machine code with
          | Ok () -> ()
          | Error e ->
              failwith ("Driver.compile: emitted code over budget: " ^ e));
          Some code)
    else None
  in
  (match pcode with
  | Some code when verify ->
      timed "verify" (fun () ->
          let report = Psb_verify.Verify.run ~single_shadow machine code in
          (match metrics with
          | Some m -> Psb_verify.Verify.observe_metrics report m
          | None -> ());
          if not (Psb_verify.Verify.ok report) then
            failwith
              (Format.asprintf
                 "Driver.compile: %s code fails speculation-safety \
                  verification@.%a"
                 model.Model.name Psb_verify.Verify.pp report))
  | _ -> ());
  (* Lower the verified regions to the flat threaded form the machine's
     default execution kernel walks; cached alongside the pcode so every
     cache hit skips the lowering too. *)
  let lowered =
    Option.map
      (fun code ->
        timed "lower" (fun () -> Psb_machine.Lowered.compile ~machine code))
      pcode
  in
  (* Predecode the scalar source for the baseline interpreter and the ROB
     rival, for the same reason: every cache hit skips the decode. *)
  let decoded = timed "decode" (fun () -> Decoded.of_program program) in
  (match metrics with
  | None -> ()
  | Some m ->
      let open Psb_obs.Metrics in
      inc (counter m "compile_units") ~by:(Label.Map.cardinal units);
      let density =
        histogram m "sched_density"
          ~buckets:[ 0.5; 1.; 1.5; 2.; 2.5; 3.; 3.5; 4.; 6.; 8. ]
      in
      Label.Map.iter
        (fun _ (s : Sched.t) ->
          if s.Sched.length > 0 then
            observe density
              (float_of_int (Array.length s.Sched.issue)
              /. float_of_int s.Sched.length))
        schedules);
  { model; machine; units; schedules; pcode; lowered; decoded }

let compile ?metrics ?cache ?(single_shadow = true) ?(avoid_commit_deps = false)
    ?(verify = true) ~model ~machine ~profile program =
  let build () =
    compile_uncached ?metrics ~single_shadow ~avoid_commit_deps ~verify ~model
      ~machine ~profile program
  in
  match cache with
  | None -> build ()
  | Some cache ->
      let key =
        Compile_cache.key ~model ~machine ~single_shadow ~avoid_commit_deps
          ~verify ~profile program
      in
      Compile_cache.find_or_compile cache key build

let estimate_cycles c program ~block_trace =
  (Cycles.measure ~units:c.units ~schedules:c.schedules program ~block_trace)
    .Cycles.cycles

let run_vliw ?regfile_mode ?pred_kernel ?exec_kernel ?on_event ?events ?metrics
    c ~regs ~mem =
  match c.pcode with
  | None ->
      invalid_arg
        (Format.asprintf "Driver.run_vliw: model %s is not executable"
           c.model.Model.name)
  | Some code ->
      Vliw_sim.run ?regfile_mode ?pred_kernel ?exec_kernel ?lowered:c.lowered
        ?on_event ?events ?metrics ~model:c.machine ~regs ~mem code

let code_size c =
  match c.pcode with
  | Some code -> Pcode.num_slots code
  | None ->
      Label.Map.fold
        (fun _ (u : Runit.t) acc ->
          acc + Array.length u.Runit.instrs + Array.length u.Runit.exits)
        c.units 0
