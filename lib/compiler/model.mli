(** The speculative-execution models evaluated in the paper (§4).

    Each model is a point in a small configuration space:
    - {b scope}: how scheduling units are formed — single likely path
      ({e trace}) or multi-path single-entry subgraph ({e region});
    - {b speculation class} per instruction category: [No_spec] (must wait
      until its control conditions are resolved), [Squash w] (may issue up
      to [w] cycles before resolution — speculative state lives only in the
      pipeline and is squashed before writeback), or [Buffered]
      (unconstrained — side effects buffered in predicated shadow state);
    - {b branch elimination}: whether intra-unit branches are converted to
      condition-set instructions and predicates (predicated execution) or
      remain branch-unit instructions. *)

type scope = Trace | Region

type spec_class = No_spec | Squash of int | Buffered

type t = {
  name : string;
  scope : scope;
  safe_spec : spec_class;
      (** exception-free register instructions; renaming makes their
          speculation legal without hardware support *)
  unsafe_spec : spec_class;  (** loads and other faulting instructions *)
  store_spec : spec_class;
  branch_elim : bool;
  cond_limit : int option;
      (** cap on unresolved conditions an instruction may be speculated
          past, independent of the machine's CCR: the global/squashing
          models reach across roughly one branch (iterated adjacent-block
          motion); trace/region models use the full CCR *)
  counter_preds : bool;
      (** encode predicates as dependence counters instead of ternary
          vectors (§4.2.1's strawman): loses which condition is which, so
          condition-set instructions must execute sequentially *)
  executable : bool;
      (** whether the compiled unit is emitted as predicated VLIW code and
          run on the machine simulator (models relying on the predicating
          hardware) — other models are evaluated by trace-driven cycle
          accounting on their schedules *)
}

val squash_window : int
(** Pipeline squashing window in cycles (issue → writeback distance). *)

val global : t
(** Global scheduling (Fig. 6): safe+legal motion only, renaming-based. *)

val squashing : t
(** + unsafe motion with pipeline squashing (Fig. 6). *)

val trace_sched : t
(** Trace scheduling with renaming and squashing (Fig. 6). *)

val region_sched : t
(** Region scheduling with simple predicated execution, squashing
    speculation only (Fig. 6). *)

val guarded : t
(** The guarded-instruction architecture of Hsu & Davidson as §2.2
    describes it: predicated execution where {e all} speculative state
    lives only in the pipeline — every instruction class is limited to
    the squash window, including safe register operations. The weakest
    predicated point of the related-work spectrum. *)

val boosting : t
(** Trace-scoped shadow buffering (Fig. 7). *)

val trace_pred : t
(** Predicating hardware, compiler limited to a trace (Fig. 7). *)

val trace_pred_counter : t
(** Trace predicating with counter-type predicates (§4.2.1's comparison
    point): condition-set instructions are forced into sequential order. *)

val region_pred : t
(** Full predicating — the paper's contribution (Fig. 7). *)

val all : t list

val restricted : t list
(** The four Fig. 6 models. *)

val find : string -> (t, string) result
(** Look a model up by name ({!all} plus {!trace_pred_counter});
    underscores normalise to hyphens, so [region_pred] finds
    [region-pred]. The error message lists every valid name — CLI
    front-ends surface it verbatim. *)

val predicating : t list
(** The four Fig. 7 models. *)

val spec_class_of : t -> Psb_isa.Instr.op -> spec_class
val pp : Format.formatter -> t -> unit
