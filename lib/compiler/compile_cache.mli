(** Content-addressed compile cache.

    The evaluation sweeps re-ask the driver for the same schedules over
    and over — figure 6 and figure 7 share the [global] column, every
    ablation recompiles [region-pred] on the base machine, the unroll
    study re-profiles the x1 programs figure 8 already covered. Keying
    compiled results on {e content} (not on which experiment asked)
    makes all of that reuse automatic, including across experiments in
    one [bench --json] run and across domains of the parallel pool.

    The key is a digest of everything that determines the output of
    {!Driver.compile}:

    - the program, in its canonical assembly text ({!Psb_isa.Asm.print}
      round-trips, so the text is a faithful content address);
    - every field of the {!Model.t} (not just its name);
    - every field of the {!Psb_machine.Machine_model.t};
    - the [single_shadow], [avoid_commit_deps] and [verify] compile
      options ([verify] does not change the emitted code, but a value
      compiled with verification off has proved nothing — serving it to
      a verified caller would skip the check silently);
    - the profile's {!Psb_cfg.Branch_predict.fingerprint}.

    The table is guarded by a mutex, so domains of a parallel sweep
    share one cache. Two domains racing on the same missing key both
    compile (compilation is deterministic, so either result is {e the}
    result — and both misses are counted, because both compiles really
    happened); the first insertion wins and is what later hits return.
    Cached values are immutable after construction and safe to share
    across domains. *)

type key = string
(** Hex digest. Obtain one only via {!key}. *)

val key :
  model:Model.t ->
  machine:Psb_machine.Machine_model.t ->
  single_shadow:bool ->
  avoid_commit_deps:bool ->
  verify:bool ->
  profile:Psb_cfg.Branch_predict.t ->
  Psb_isa.Program.t ->
  key

type 'a t
(** A cache of ['a] values (the driver instantiates ['a = compiled];
    the type is parametric only to keep this module below {!Driver}). *)

val create : unit -> 'a t

val find_or_compile : 'a t -> key -> (unit -> 'a) -> 'a
(** Return the cached value for [key], or run the thunk, cache, and
    return it. The thunk runs outside the cache lock, so concurrent
    misses on distinct keys compile in parallel. *)

type stats = { hits : int; misses : int; entries : int }

val stats : 'a t -> stats

val observe_metrics : 'a t -> Psb_obs.Metrics.t -> unit
(** Export the current counters into a metrics registry as
    [compile_cache_hits], [compile_cache_misses] and
    [compile_cache_entries]. *)
