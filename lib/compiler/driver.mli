(** Whole-program compilation driver: profile → units → schedules →
    (for the predicating models) executable VLIW code. *)

open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode
module Vliw_sim = Psb_machine.Vliw_sim
module Branch_predict = Psb_cfg.Branch_predict

type compiled = {
  model : Model.t;
  machine : Machine_model.t;
  units : Runit.t Label.Map.t;
  schedules : Sched.t Label.Map.t;
  pcode : Pcode.t option;  (** for executable models *)
  lowered : Psb_machine.Lowered.t option;
      (** [pcode] lowered to the flat threaded form ({!Psb_machine.Lowered}),
          built once per compile (and so shared by every cache hit). Always
          corresponds to [pcode] exactly — a caller substituting a different
          pcode (e.g. injecting a miscompile) must drop this field. *)
  decoded : Decoded.t;
      (** The scalar source predecoded to the flat form the default
          interpreter and ROB kernels walk ({!Psb_isa.Decoded}), built
          once per compile. Its [source] is the exact program value this
          compile saw; on a cache hit under a structurally-equal but
          physically-distinct program, run against
          [decoded.Decoded.source] (the stale-form check is physical,
          like the lowered form's). *)
}

val profile_of : Program.t -> regs:(Reg.t * int) list -> mem:Memory.t ->
  Psb_isa.Interp.result * Branch_predict.t
(** Run the scalar reference once to obtain the training profile. The
    memory is consumed (pass a fresh copy). *)

val compile :
  ?metrics:Psb_obs.Metrics.t ->
  ?cache:compiled Compile_cache.t ->
  ?single_shadow:bool ->
  ?avoid_commit_deps:bool ->
  ?verify:bool ->
  model:Model.t ->
  machine:Machine_model.t ->
  profile:Branch_predict.t ->
  Program.t ->
  compiled
(** @raise Failure if any unit schedule fails validation, or — for
    executable models, unless [verify:false] — if the emitted predicated
    code fails the static speculation-safety verifier
    ({!Psb_verify.Verify}; the failure message embeds the full
    diagnostic report). [verify] defaults to [true]: every compile in
    the tests and the bench proves its output safe; pass [verify:false]
    only when the caller wants the raw (possibly unsafe) code, e.g. to
    inspect a miscompile or to run the verifier itself with custom
    reporting. To compile an
    optimised program, apply {!Transform.optimize} (and
    {!Transform.jump_thread}) {e before} profiling, so the training trace
    and the compiled code agree on block labels.

    [metrics] collects per-pass wall-clock timings
    ([compile_pass_seconds{pass=cfg|unit_formation|schedule|check|emit|verify|lower}]),
    the unit count, and a schedule-density histogram ([sched_density],
    operations per bundle).

    [cache] short-circuits the whole pipeline on a content hit (see
    {!Compile_cache} for the key derivation); on a hit no passes run,
    so no pass timings are recorded. The returned value may be shared
    with other callers (and other domains) — treat it as read-only,
    which every consumer already does. *)

val estimate_cycles : compiled -> Program.t -> block_trace:Label.t list -> int
(** Trace-driven cycle count (see {!Cycles}). *)

val run_vliw :
  ?regfile_mode:Psb_machine.Regfile.mode ->
  ?pred_kernel:Psb_machine.Pred_kernel.mode ->
  ?exec_kernel:Psb_machine.Exec_kernel.mode ->
  ?on_event:(int -> Vliw_sim.event -> unit) ->
  ?events:Psb_obs.Events.t ->
  ?metrics:Psb_obs.Metrics.t ->
  compiled ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Vliw_sim.result
(** Execute the compiled predicated code on the machine simulator;
    [pred_kernel], [exec_kernel], [on_event], [events] and [metrics] are
    passed through to {!Vliw_sim.run}, along with the cached [lowered]
    form (so a lowered-kernel run never re-lowers).
    @raise Invalid_argument if the model is not executable. *)

val code_size : compiled -> int
(** Total static slots across all regions (code-growth metric). *)
