(** Double-ended work queue for the domain pool's scheduler.

    The owning worker pushes and pops at the {e bottom} (LIFO, so it
    keeps working on what it queued most recently — good locality);
    thieves take from the {e top} (FIFO, so they grab the oldest, and
    usually largest-remaining, work). Every operation is guarded by a
    per-deque mutex: the tasks this pool schedules are whole
    compile-and-simulate cells, large enough that lock traffic is noise,
    and a mutex keeps the structure obviously correct under any
    interleaving. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner end (bottom). *)

val pop : 'a t -> 'a option
(** Owner end (bottom): most recently pushed element. *)

val steal : 'a t -> 'a option
(** Thief end (top): oldest element. *)

val length : 'a t -> int
