type error = { exn : exn; backtrace : Printexc.raw_backtrace }
type domain_stat = { tasks : int; busy_seconds : float }

(* A task is a closure that stores its own result slot; the scheduler
   only ever sees [unit -> unit]. *)
type worker = {
  deque : (unit -> unit) Deque.t;
  mutable w_tasks : int;
  mutable w_busy : float;
}

type t = {
  workers : worker array;  (* index 0 belongs to the calling domain *)
  mutable domains : unit Domain.t array;
  lock : Mutex.t;  (* guards sleeping/wakeup and [stop] *)
  wake : Condition.t;
  queued : int Atomic.t;  (* tasks pushed but not yet taken *)
  mutable stop : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Take a task: own deque first (LIFO), then steal round-robin (FIFO).
   The [queued] decrement happens at the moment of a successful take, so
   [queued > 0] means a task is findable (or being taken right now). *)
let find_task t me =
  let n = Array.length t.workers in
  let taken = ref (Deque.pop t.workers.(me).deque) in
  let i = ref 1 in
  while !taken = None && !i < n do
    taken := Deque.steal t.workers.((me + !i) mod n).deque;
    incr i
  done;
  (match !taken with Some _ -> Atomic.decr t.queued | None -> ());
  !taken

let run_task t me task =
  let w = t.workers.(me) in
  let t0 = Unix.gettimeofday () in
  task ();
  w.w_busy <- w.w_busy +. (Unix.gettimeofday () -. t0);
  w.w_tasks <- w.w_tasks + 1

let worker_loop t me () =
  let rec loop () =
    match find_task t me with
    | Some task ->
        run_task t me task;
        loop ()
    | None ->
        Mutex.lock t.lock;
        let stop = t.stop in
        if (not stop) && Atomic.get t.queued = 0 then Condition.wait t.wake t.lock;
        Mutex.unlock t.lock;
        if not stop then loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let workers =
    Array.init jobs (fun _ ->
        { deque = Deque.create (); w_tasks = 0; w_busy = 0. })
  in
  let t =
    {
      workers;
      domains = [||];
      lock = Mutex.create ();
      wake = Condition.create ();
      queued = Atomic.make 0;
      stop = false;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
  t

let jobs t = Array.length t.workers

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let capture f x =
  try Ok (f x)
  with exn -> Error { exn; backtrace = Printexc.get_raw_backtrace () }

let map_seq t f items =
  (* jobs = 1: no scheduler, but identical per-task capture semantics. *)
  List.map
    (fun x ->
      let t0 = Unix.gettimeofday () in
      let r = capture f x in
      t.workers.(0).w_busy <- t.workers.(0).w_busy +. (Unix.gettimeofday () -. t0);
      t.workers.(0).w_tasks <- t.workers.(0).w_tasks + 1;
      r)
    items

let map t f items =
  let n = List.length items in
  let jobs = Array.length t.workers in
  if jobs = 1 || n <= 1 then map_seq t f items
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let fin_lock = Mutex.create () in
    let finished = Condition.create () in
    List.iteri
      (fun idx item ->
        let task () =
          let r = capture f item in
          results.(idx) <- Some r;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock fin_lock;
            Condition.broadcast finished;
            Mutex.unlock fin_lock
          end
        in
        Deque.push t.workers.(idx mod jobs).deque task;
        Atomic.incr t.queued)
      items;
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    (* The caller works the batch as worker 0, then sleeps until the
       last in-flight task signals completion. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        (match find_task t 0 with
        | Some task -> run_task t 0 task
        | None ->
            Mutex.lock fin_lock;
            if Atomic.get remaining > 0 then Condition.wait finished fin_lock;
            Mutex.unlock fin_lock);
        help ()
      end
    in
    help ();
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* remaining = 0 implies every slot filled *))
         results)
  end

let map_exn t f items =
  let results = map t f items in
  List.map
    (function
      | Ok v -> v
      | Error { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace)
    results

let stats t =
  Array.map (fun w -> { tasks = w.w_tasks; busy_seconds = w.w_busy }) t.workers
