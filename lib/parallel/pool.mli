(** Fixed-size domain pool with a work-stealing deque scheduler.

    The evaluation harness is embarrassingly parallel — every
    (workload × model) cell profiles, compiles and simulates
    independently — so the pool's contract is a deterministic batch
    [map]: results come back in input order no matter which domain ran
    which task, and every per-task exception is captured (with its
    backtrace) instead of tearing down the whole sweep.

    A pool of [jobs] = N executes on N domains: N-1 dedicated worker
    domains spawned at {!create}, plus the calling domain, which joins
    in as worker 0 for the duration of each {!map}. Tasks are dealt
    round-robin across the per-worker deques; an idle worker pops its
    own deque LIFO and steals FIFO from the others.

    Restrictions: one batch at a time per pool, and tasks must not call
    {!map} on the pool that is running them (the worker would wait on
    itself). Keep task bodies pure up to freshly-allocated state — the
    whole compile/simulate pipeline already is. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}. [jobs = 1] spawns no domains:
    {!map} then runs every task inline on the caller, in order — the
    sequential baseline the determinism tests compare against.
    @raise Invalid_argument if [jobs < 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — roughly the physical cores. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    used afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

type error = { exn : exn; backtrace : Printexc.raw_backtrace }

val map : t -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** Run [f] over every element as independent tasks; block until all
    have finished. The result list matches the input list element for
    element, so ordering is deterministic by construction. A raising
    task yields [Error] in its own slot and nothing else. *)

val map_exn : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map}, then re-raise the first captured exception (with its
    original backtrace) if any task failed. The whole batch still runs
    to completion first — one failing cell never aborts the sweep
    mid-flight. *)

type domain_stat = {
  tasks : int;  (** tasks this domain executed *)
  busy_seconds : float;  (** wall-clock time spent inside task bodies *)
}

val stats : t -> domain_stat array
(** Per-domain accounting since [create]; index 0 is the calling
    domain, 1.. the spawned workers. Read it between batches. *)
