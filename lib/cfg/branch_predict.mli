(** Static branch prediction.

    The paper drives trace formation, region growth and the boosting model
    with static (profile-based) prediction. With a profile we predict the
    majority direction; without one we fall back to the classic
    backward-taken/forward-not-taken heuristic. *)

open Psb_isa

type t

val of_trace : Cfg.t -> Trace.t -> t
val heuristic : Cfg.t -> Dominance.t -> t

val predict : t -> Label.t -> bool
(** Predicted direction of the branch terminating block [l]
    ([true] = [if_true]). Blocks without a branch predict [true]. *)

val confidence : t -> Label.t -> float
(** Probability that the prediction is correct ([0.5] if unknown,
    [1.0] for non-branches). *)

val edge_probability : t -> Label.t -> Label.t -> float
(** [edge_probability t src dst]: estimated probability that control
    leaving [src] goes to [dst]. *)

val fingerprint : t -> string
(** Hex digest of everything the compiler can observe of this profile
    (per-block prediction, confidence, edge probabilities, walked in a
    deterministic order). Profiles with equal fingerprints produce
    identical schedules — the compile cache keys on this. *)
