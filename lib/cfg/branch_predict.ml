open Psb_isa

type source =
  | Profile of Trace.t
  | Heuristic of Dominance.t

type t = { cfg : Cfg.t; source : source }

let of_trace cfg trace = { cfg; source = Profile trace }
let heuristic cfg dom = { cfg; source = Heuristic dom }

let branch_of t l =
  match (Cfg.block t.cfg l).Program.term with
  | Instr.Br { src; if_true; if_false } -> Some (src, if_true, if_false)
  | Instr.Jmp _ | Instr.Halt -> None

let predict t l =
  match branch_of t l with
  | None -> true
  | Some (_, if_true, _) -> (
      match t.source with
      | Profile trace -> Trace.predict trace l
      | Heuristic dom ->
          (* Backward-taken heuristic: predict the successor that is a loop
             head dominating this block (a back edge). *)
          Dominance.dominates dom if_true l)

let confidence t l =
  match branch_of t l with
  | None -> 1.0
  | Some _ -> (
      match t.source with
      | Profile trace -> (
          match Trace.taken_fraction trace l with
          | Some f -> if predict t l then f else 1.0 -. f
          | None -> 0.5)
      | Heuristic _ -> 0.6)

let edge_probability t src dst =
  match branch_of t src with
  | None ->
      if List.exists (Label.equal dst) (Cfg.succs t.cfg src) then 1.0 else 0.0
  | Some (_, if_true, if_false) ->
      let p_true =
        match t.source with
        | Profile trace ->
            Option.value (Trace.taken_fraction trace src) ~default:0.5
        | Heuristic _ -> if predict t src then 0.6 else 0.4
      in
      (* A branch can target the same label on both arms. *)
      let p = ref 0.0 in
      if Label.equal dst if_true then p := !p +. p_true;
      if Label.equal dst if_false then p := !p +. (1.0 -. p_true);
      !p

let fingerprint t =
  (* Everything the compiler can observe of a profile — per reachable
     block (in the CFG's reverse post-order, so the walk is
     deterministic): the predicted direction, its confidence, and the
     probability of every outgoing edge. Two profiles with the same
     fingerprint schedule identically, which is what the compile cache
     needs from its key. *)
  let b = Buffer.create 256 in
  List.iter
    (fun (blk : Program.block) ->
      let l = blk.Program.label in
      Buffer.add_string b (Label.name l);
      Buffer.add_char b (if predict t l then 'T' else 'F');
      Buffer.add_string b (Printf.sprintf "%.9f" (confidence t l));
      List.iter
        (fun s ->
          Buffer.add_string b
            (Printf.sprintf ",%s:%.9f" (Label.name s)
               (edge_probability t l s)))
        (Program.successors blk);
      Buffer.add_char b ';')
    (Cfg.blocks t.cfg);
  Digest.to_hex (Digest.string (Buffer.contents b))
