(** Structured speculation event log: a fixed-capacity ring buffer of
    typed lifecycle events, cheap enough to leave compiled into every
    hot path.

    Where {!Metrics} aggregates and {!Trace_event} renders, this module
    {e records}: each event is a (cycle, kind, a, b) quadruple kept in
    flat integer arrays, so emission allocates nothing — the log can sit
    inside the machine's per-cycle loops without disturbing them. When
    the ring fills, the oldest events are overwritten and counted as
    dropped; consumers that need a complete stream (the
    {!Spec_profile} scorecards) size the capacity to the run and check
    {!dropped} is zero.

    Every instrumented entry point takes [?events] and does nothing when
    it is absent, mirroring the [?metrics] convention — absent
    instrumentation costs one pointer test.

    {2 Event vocabulary}

    The [a]/[b] payloads are plain integers whose meaning is fixed per
    kind (region names go through the {!intern} table):

    - [Region_enter]: [a] = region name id; [b] = 0
    - [Region_exit]: [a] = region name id being left; [b] = target
      region id, or [-1] for halt
    - [Pred_true] / [Pred_false]: a condition write specified buffered
      predicates; [a] = condition index
    - [Issue]: one bundle issued in normal mode; [a] = operation slots
      that executed, [b] = slots squashed (predicate false)
    - [Shadow_write]: a speculative result buffered into the shadow
      register file; [a] = register index, [b] = value
    - [Shadow_commit] / [Shadow_squash]: a buffered register resolved;
      [a] = register index; for squashes [b] = 0 when the predicate
      specified false, [1] when the state was invalidated wholesale
      (region exit, exception detection)
    - [Sb_append]: a store entered the store buffer; [a] = address,
      [b] = 1 if speculative else 0
    - [Sb_forward]: a load was satisfied from the buffer; [a] = address,
      [b] = forwarded value
    - [Sb_commit]: a speculative entry's predicate specified true
      (W cleared); [a] = address
    - [Sb_flush]: an entry drained to the D-cache; [a] = address,
      [b] = value
    - [Sb_squash]: [a] = address; [b] = 0 predicate-false, 1 invalidated
    - [Fault_deferred]: a speculative fault was buffered with its
      predicate; [a] = faulting address, or [-1] for arithmetic faults
    - [Fault_raised]: a fault was actually handled or proved fatal;
      [a] = address or [-1], [b] = 1 if recovered, 0 if fatal
    - [Rob_commit]: a reorder-buffer entry retired in program order;
      [a] = fetch sequence number (strictly increasing over a run),
      [b] = ROB slot index
    - [Rob_squash]: an entry was flushed before retiring; [a] = fetch
      sequence number, [b] = 0 on a branch mispredict, [1] on a
      commit-time fault restart *)

type kind =
  | Region_enter
  | Region_exit
  | Pred_true
  | Pred_false
  | Issue
  | Shadow_write
  | Shadow_commit
  | Shadow_squash
  | Sb_append
  | Sb_forward
  | Sb_commit
  | Sb_flush
  | Sb_squash
  | Fault_deferred
  | Fault_raised
  | Rob_commit
  | Rob_squash

val kind_name : kind -> string
(** Stable lower-snake name ([region_enter], [sb_flush], ...) used in
    JSON and the pretty-printer. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default [65536]) fixes the ring size up front; no
    further allocation ever happens. @raise Invalid_argument when
    [capacity < 1]. *)

val capacity : t -> int

val emit : t -> cycle:int -> kind -> a:int -> b:int -> unit
(** O(1), allocation-free. Overwrites the oldest event when full. *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events ever emitted (since the last {!clear}). *)

val dropped : t -> int
(** Events overwritten because the ring was full. [total - dropped =
    length] until the first wrap. *)

val clear : t -> unit
(** Empty the ring and reset all counters; interned names survive. *)

val iter : t -> (int -> kind -> int -> int -> unit) -> unit
(** [iter t f] calls [f cycle kind a b] for each held event, oldest
    first. *)

val intern : t -> string -> int
(** Find-or-create a small integer id for a name (region labels). Ids
    are dense from 0 in first-intern order; the table is tiny (one entry
    per static region), looked up linearly and never reset by
    {!clear}. *)

val name : t -> int -> string
(** The interned name for an id; ["?<id>"] for ids never interned
    (including [-1], which conventionally means "none"/halt). *)

val to_json : t -> Json.t
(** [{"capacity", "total", "dropped", "names": [..in id order..],
     "events": [{"cycle", "kind", "a", "b"}...]}] — events oldest
    first. *)

val pp : Format.formatter -> t -> unit
(** One line per held event, region ids resolved through the intern
    table. *)
