type track = int

type t = {
  process_name : string;
  mutable tracks : (string * (track * int)) list;  (* name -> tid, sort *)
  mutable next_tid : int;
  mutable events_rev : Json.t list;
  mutable num_events : int;
}

let pid = 1

let create ?(process_name = "psb") () =
  { process_name; tracks = []; next_tid = 1; events_rev = []; num_events = 0 }

let track t ?sort_index name =
  match List.assoc_opt name t.tracks with
  | Some (tid, _) -> tid
  | None ->
      let tid = t.next_tid in
      t.next_tid <- tid + 1;
      let sort = Option.value sort_index ~default:tid in
      t.tracks <- (name, (tid, sort)) :: t.tracks;
      tid

let push t ev =
  t.events_rev <- ev :: t.events_rev;
  t.num_events <- t.num_events + 1

let base ~name ~ph ~ts ~tid rest =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ rest)

let args_field = function
  | None | Some [] -> []
  | Some args -> [ ("args", Json.Obj args) ]

let span t tid ~name ~ts ~dur ?args () =
  push t (base ~name ~ph:"X" ~ts ~tid (("dur", Json.Int (max 1 dur)) :: args_field args))

let instant t tid ~name ~ts ?args () =
  push t (base ~name ~ph:"i" ~ts ~tid (("s", Json.String "t") :: args_field args))

let counter t ~name ~ts ~value =
  push t
    (base ~name ~ph:"C" ~ts ~tid:0
       [ ("args", Json.Obj [ ("value", Json.Int value) ]) ])

let num_events t = t.num_events

let to_json t ?(metadata = []) () =
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let process_meta =
    [ meta "process_name" 0 [ ("name", Json.String t.process_name) ] ]
  in
  let track_meta =
    List.rev t.tracks
    |> List.concat_map (fun (name, (tid, sort)) ->
           [
             meta "thread_name" tid [ ("name", Json.String name) ];
             meta "thread_sort_index" tid [ ("sort_index", Json.Int sort) ];
           ])
  in
  Json.obj
    [
      ( "traceEvents",
        Json.List (process_meta @ track_meta @ List.rev t.events_rev) );
      ("displayTimeUnit", Json.String "ms");
      ("metadata", if metadata = [] then Json.Null else Json.Obj metadata);
    ]
