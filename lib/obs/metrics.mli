(** Metrics registry: labelled counters and histograms, shared by the
    scalar simulator, the VLIW machine and the compiler driver so that
    pass timings, schedule densities and store-buffer occupancies are
    collected through one API and serialised in one schema.

    A metric is identified by its name plus a (sorted) label set —
    [("workload", "li"); ("model", "region-pred")] — so the same code
    path instruments every configuration without string mangling. The
    registry is a plain value, not global state: callers create one per
    collection scope (a [psb profile] invocation, a bench run) and pass
    it down; every instrumented entry point takes [?metrics] and does
    nothing when it is absent, so the hot paths pay nothing by default. *)

type t
(** A registry. *)

val create : unit -> t

type labels = (string * string) list

type counter

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-create. Counters with the same name and labels are the same
    counter. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

type histogram

val histogram : t -> ?labels:labels -> ?buckets:float list -> string -> histogram
(** Find-or-create. [buckets] are upper bounds of cumulative buckets (a
    [+inf] bucket is implicit); they are fixed by the first creation.
    Default buckets suit small non-negative integer distributions
    (occupancies, densities): 1 2 4 8 16 32 64.
    @raise Invalid_argument when the histogram already exists and an
    explicit [buckets] disagrees (after sorting and deduplication) with
    the layout it was created with — a silent mismatch would observe
    into the wrong buckets. Re-passing the original layout is fine. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_mean : histogram -> float
(** 0 when empty. *)

val histogram_quantile : histogram -> float -> float option
(** Prometheus-style quantile estimate from the cumulative buckets:
    locate the bucket holding rank [q * count] and interpolate linearly
    within it. Estimates are clamped to the observed [min]/[max] (the
    [+inf] bucket degrades to [max]); [None] when the histogram is
    empty. [q] outside [0..1] clamps to the range endpoints. Surfaced as
    p50/p90/p99 by {!pp} and {!to_json}. *)

val time : t -> ?labels:labels -> string -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration, in seconds, in
    histogram [name]. The conventional name suffix is [_seconds]. *)

val to_json : t -> Json.t
(** Schema:
    [{"counters": [{"name", "labels": {..}, "value"}...],
      "histograms": [{"name", "labels": {..}, "count", "sum", "min",
                      "max", "buckets": [{"le", "count"}...]}...]}]
    Entries are sorted by name then labels, so output is deterministic. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump (one metric per line). *)

val is_empty : t -> bool
