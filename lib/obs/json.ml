type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj (List.filter (fun (_, v) -> v <> Null) fields)

(* ----- printing ----- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_literal f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    "null" (* JSON has no NaN/inf; observability data degrades to null *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_literal f)
  | String s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
      let b = Buffer.create 32 in
      write b v;
      Format.pp_print_string ppf (Buffer.contents b)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
      Format.fprintf ppf "@[<v 1>[%a]@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        xs
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let field ppf (k, v) =
        let b = Buffer.create 16 in
        escape_string b k;
        Format.fprintf ppf "@[<hov 1>%s:@ %a@]" (Buffer.contents b) pp v
      in
      Format.fprintf ppf "@[<v 1>{%a}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           field)
        fields

let to_string ?(minify = false) v =
  if minify then begin
    let b = Buffer.create 256 in
    write b v;
    Buffer.contents b
  end
  else Format.asprintf "%a" pp v

(* ----- parsing ----- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with Failure _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* encode the code point as UTF-8 (surrogates passed raw) *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ----- accessors ----- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> a = b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> ka = kb && equal va vb)
           (List.sort (fun (k, _) (k', _) -> compare k k') a)
           (List.sort (fun (k, _) (k', _) -> compare k k') b)
  | _ -> false
