type labels = (string * string) list

let norm_labels labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

type counter = { c_name : string; c_labels : labels; mutable value : int }

type histogram = {
  h_name : string;
  h_labels : labels;
  bounds : float array;  (* upper bounds, sorted; +inf implicit *)
  bucket_counts : int array;  (* same length as bounds + 1 *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type t = {
  counters : (string * labels, counter) Hashtbl.t;
  histograms : (string * labels, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let counter t ?(labels = []) name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.counters (name, labels) with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_labels = labels; value = 0 } in
      Hashtbl.replace t.counters (name, labels) c;
      c

let inc ?(by = 1) c = c.value <- c.value + by
let counter_value c = c.value

let default_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64. ]

let histogram t ?(labels = []) ?buckets name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.histograms (name, labels) with
  | Some h ->
      (* Buckets are fixed by the first creation; a caller asking for a
         different layout would silently observe into the wrong buckets,
         so reject the mismatch instead (explicitly re-passing the
         original layout stays fine — Metrics.time does). *)
      (match buckets with
      | None -> ()
      | Some buckets ->
          let asked = Array.of_list (List.sort_uniq compare buckets) in
          if asked <> h.bounds then
            invalid_arg
              (Printf.sprintf
                 "Metrics.histogram: %s%s already exists with different \
                  buckets"
                 name
                 (match labels with
                 | [] -> ""
                 | l ->
                     "{"
                     ^ String.concat ","
                         (List.map (fun (k, v) -> k ^ "=" ^ v) l)
                     ^ "}")));
      h
  | None ->
      let buckets = Option.value buckets ~default:default_buckets in
      let bounds = Array.of_list (List.sort_uniq compare buckets) in
      let h =
        {
          h_name = name;
          h_labels = labels;
          bounds;
          bucket_counts = Array.make (Array.length bounds + 1) 0;
          count = 0;
          sum = 0.;
          min = Float.infinity;
          max = Float.neg_infinity;
        }
      in
      Hashtbl.replace t.histograms (name, labels) h;
      h

let observe h v =
  let rec slot i =
    if i >= Array.length h.bounds || v <= h.bounds.(i) then i else slot (i + 1)
  in
  let i = slot 0 in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min then h.min <- v;
  if v > h.max then h.max <- v

let histogram_count h = h.count
let histogram_sum h = h.sum

let histogram_mean h =
  if h.count = 0 then 0. else h.sum /. float_of_int h.count

(* Prometheus-style quantile estimation from cumulative buckets: find the
   bucket holding the target rank and interpolate linearly inside it. The
   first bucket's lower edge is the observed minimum (not 0 — values may
   be negative), the +inf bucket degrades to the observed maximum, and
   the result is clamped to [min, max] so an estimate never leaves the
   observed range. *)
let histogram_quantile h q =
  if h.count = 0 then None
  else if q <= 0. then Some h.min
  else if q >= 1. then Some h.max
  else begin
    let target = q *. float_of_int h.count in
    let nbounds = Array.length h.bounds in
    let rec go i cum =
      if i > nbounds then Some h.max
      else
        let cum' = cum + h.bucket_counts.(i) in
        if float_of_int cum' < target then go (i + 1) cum'
        else if i = nbounds then Some h.max (* +inf bucket *)
        else begin
          let hi = h.bounds.(i) in
          let lo = if i = 0 then Float.min h.min hi else h.bounds.(i - 1) in
          let frac =
            if h.bucket_counts.(i) = 0 then 1.
            else (target -. float_of_int cum) /. float_of_int h.bucket_counts.(i)
          in
          let v = lo +. ((hi -. lo) *. frac) in
          Some (Float.max h.min (Float.min h.max v))
        end
    in
    go 0 0
  end

let time t ?labels name f =
  let h = histogram t ?labels ~buckets:[ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. ] name in
  let t0 = Unix.gettimeofday () in
  let finally () = observe h (Unix.gettimeofday () -. t0) in
  Fun.protect ~finally f

let is_empty t =
  Hashtbl.length t.counters = 0 && Hashtbl.length t.histograms = 0

let sorted_entries tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k, _) (k', _) -> compare k k')
  |> List.map snd

let labels_json labels =
  match labels with
  | [] -> Json.Null
  | l -> Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) l)

let to_json t =
  let counters =
    sorted_entries t.counters
    |> List.map (fun c ->
           Json.obj
             [
               ("name", Json.String c.c_name);
               ("labels", labels_json c.c_labels);
               ("value", Json.Int c.value);
             ])
  in
  let histograms =
    sorted_entries t.histograms
    |> List.map (fun h ->
           let buckets =
             List.init
               (Array.length h.bucket_counts)
               (fun i ->
                 let le =
                   if i < Array.length h.bounds then Json.Float h.bounds.(i)
                   else Json.String "+inf"
                 in
                 Json.Obj [ ("le", le); ("count", Json.Int h.bucket_counts.(i)) ])
           in
           let quantile q =
             match histogram_quantile h q with
             | None -> Json.Null
             | Some v -> Json.Float v
           in
           Json.obj
             [
               ("name", Json.String h.h_name);
               ("labels", labels_json h.h_labels);
               ("count", Json.Int h.count);
               ("sum", Json.Float h.sum);
               ("min", if h.count = 0 then Json.Null else Json.Float h.min);
               ("max", if h.count = 0 then Json.Null else Json.Float h.max);
               ("p50", quantile 0.5);
               ("p90", quantile 0.9);
               ("p99", quantile 0.99);
               ("buckets", Json.List buckets);
             ])
  in
  Json.Obj [ ("counters", Json.List counters); ("histograms", Json.List histograms) ]

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun c ->
      Format.fprintf ppf "%s%a %d@," c.c_name pp_labels c.c_labels c.value)
    (sorted_entries t.counters);
  List.iter
    (fun h ->
      if h.count = 0 then
        Format.fprintf ppf "%s%a (empty)@," h.h_name pp_labels h.h_labels
      else begin
        let q p = Option.value (histogram_quantile h p) ~default:Float.nan in
        Format.fprintf ppf
          "%s%a count=%d sum=%g mean=%g min=%g max=%g p50=%g p90=%g p99=%g@,"
          h.h_name pp_labels h.h_labels h.count h.sum (histogram_mean h) h.min
          h.max (q 0.5) (q 0.9) (q 0.99)
      end)
    (sorted_entries t.histograms);
  Format.pp_close_box ppf ()
