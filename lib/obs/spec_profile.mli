(** Per-region speculation scorecards, folded from an {!Events} stream.

    Each region (one card per distinct region name, accumulated across
    visits) answers the paper's cost question — how much buffered
    speculative work committed, how much squashed, and how long values
    dwelt in the buffers:

    - {e residency}: cycles attributed to the region, telescoped from
      [Region_enter] stamps (a region owns everything up to the next
      enter, including its transition-out and any recovery re-execution);
      the final region is closed by the run's total cycle count, so the
      attribution always sums exactly to it
    - {e issue quality}: normal-mode issue cycles split into useful
      (at least one operation executed, or an exit fired) and wasted
      (every slot predicate-false) — these reconcile with the machine's
      own [bd_useful]/[bd_squashed] cycle accounting, test-enforced
    - {e buffered-state outcomes}: shadow-register and store-buffer
      commits vs squashes (predicate-false vs wholesale invalidation),
      forwarding hits, D-cache flushes, deferred and raised faults
    - {e lifetimes}: histograms of shadow-value lifetime (speculative
      write → commit/squash) and store-buffer dwell (append →
      flush/squash), in cycles

    The fold requires a complete stream: {!reconciles} is [false] when
    the ring dropped events (size the {!Events} capacity to the run) or
    when a fatal abort cut a cycle short. *)

type card = {
  region : string;
  mutable visits : int;
  mutable cycles : int;
  mutable useful : int;
  mutable wasted : int;
  mutable preds_true : int;
  mutable preds_false : int;
  mutable spec_writes : int;
  mutable shadow_commits : int;
  mutable shadow_squashes : int;  (** predicate specified false *)
  mutable shadow_invalidated : int;
      (** squashed wholesale: region exit, exception detection *)
  mutable sb_appends : int;  (** all stores entering the buffer *)
  mutable sb_spec_appends : int;
  mutable sb_forwards : int;
  mutable sb_commits : int;
  mutable sb_squashes : int;
  mutable sb_invalidated : int;
  mutable sb_flushes : int;  (** D-cache writes *)
  mutable faults_deferred : int;
  mutable faults_raised : int;
  mutable rob_commits : int;
      (** reorder-buffer entries retired ({!Events.Rob_commit}) *)
  mutable rob_squashes : int;
      (** entries flushed on mispredict or fault restart *)
  shadow_lifetime : Metrics.histogram;
  sb_dwell : Metrics.histogram;
}

type t

val of_events : total_cycles:int -> Events.t -> t
(** Fold the stream. [total_cycles] closes the final region's residency
    (pass the machine's cycle count). *)

val cards : t -> card list
(** One card per region name, in first-appearance order. *)

val find : t -> string -> card option

val total_cycles : t -> int
(** The [total_cycles] the profile was folded with. *)

val attributed_cycles : t -> int
(** Sum of per-region residencies. *)

val dropped : t -> int
(** Events the ring dropped (capacity overflow) — nonzero voids
    reconciliation. *)

val reconciles : t -> bool
(** No dropped events and {!attributed_cycles} [=] {!total_cycles}. *)

val commit_total : t -> int
(** Shadow + store-buffer + reorder-buffer commits across all regions
    (equals the machine's [stats.commits], test-enforced). *)

val squash_rate : card -> float
(** Squashed buffered state (shadow + store buffer, invalidations
    included) over all resolved buffered state; [0.] when nothing
    resolved. *)

val metrics : t -> Metrics.t
(** The registry holding the per-region [spec_shadow_lifetime_cycles]
    and [spec_sb_dwell_cycles] histograms (labelled
    [{region="..."}]) — exportable alongside any other metrics dump. *)

val pp : Format.formatter -> t -> unit
(** Scorecard table plus a reconciliation line. *)

val to_json : t -> Json.t
(** [{"total_cycles", "dropped", "reconciles", "regions": [{card
    fields, "shadow_lifetime": {histogram}, "sb_dwell":
    {histogram}}...]}]. *)
