type card = {
  region : string;
  mutable visits : int;
  mutable cycles : int;
  mutable useful : int;
  mutable wasted : int;
  mutable preds_true : int;
  mutable preds_false : int;
  mutable spec_writes : int;
  mutable shadow_commits : int;
  mutable shadow_squashes : int;
  mutable shadow_invalidated : int;
  mutable sb_appends : int;
  mutable sb_spec_appends : int;
  mutable sb_forwards : int;
  mutable sb_commits : int;
  mutable sb_squashes : int;
  mutable sb_invalidated : int;
  mutable sb_flushes : int;
  mutable faults_deferred : int;
  mutable faults_raised : int;
  mutable rob_commits : int;
  mutable rob_squashes : int;
  shadow_lifetime : Metrics.histogram;
  sb_dwell : Metrics.histogram;
}

type t = {
  total_cycles : int;
  dropped : int;
  mutable cards_rev : card list;
  by_name : (string, card) Hashtbl.t;
  metrics : Metrics.t;
}

let lifetime_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ]

let new_card t region =
  let labels = [ ("region", region) ] in
  let card =
    {
      region;
      visits = 0;
      cycles = 0;
      useful = 0;
      wasted = 0;
      preds_true = 0;
      preds_false = 0;
      spec_writes = 0;
      shadow_commits = 0;
      shadow_squashes = 0;
      shadow_invalidated = 0;
      sb_appends = 0;
      sb_spec_appends = 0;
      sb_forwards = 0;
      sb_commits = 0;
      sb_squashes = 0;
      sb_invalidated = 0;
      sb_flushes = 0;
      faults_deferred = 0;
      faults_raised = 0;
      rob_commits = 0;
      rob_squashes = 0;
      shadow_lifetime =
        Metrics.histogram t.metrics ~labels ~buckets:lifetime_buckets
          "spec_shadow_lifetime_cycles";
      sb_dwell =
        Metrics.histogram t.metrics ~labels ~buckets:lifetime_buckets
          "spec_sb_dwell_cycles";
    }
  in
  t.cards_rev <- card :: t.cards_rev;
  Hashtbl.replace t.by_name region card;
  card

let get_card t region =
  match Hashtbl.find_opt t.by_name region with
  | Some c -> c
  | None -> new_card t region

let of_events ~total_cycles events =
  let t =
    {
      total_cycles;
      dropped = Events.dropped events;
      cards_rev = [];
      by_name = Hashtbl.create 8;
      metrics = Metrics.create ();
    }
  in
  (* The fold's running state. [cur] is the region owning events right
     now — it changes on [Region_enter] only, so a region keeps owning
     its transition-out (and any trailing drain) until the next region
     starts, which is what makes residencies telescope to the total. *)
  let cur = ref None in
  let enter_cycle = ref 0 in
  (* A normal-mode bundle with zero executed slots is still useful when
     its exit fired; the exit shows up as a same-cycle [Region_exit]
     later in the stream, so the classification of an [Issue] is held
     until an event from a later cycle (or the exit) settles it. *)
  let pending_issue = ref None (* (card, cycle, executed) *) in
  let settle_issue ~useful =
    match !pending_issue with
    | None -> ()
    | Some (card, _, executed) ->
        if useful || executed > 0 then card.useful <- card.useful + 1
        else card.wasted <- card.wasted + 1;
        pending_issue := None
  in
  (* Open-value tracking for the lifetime histograms: last speculative
     write cycle per register, append cycles per address (FIFO — the
     store buffer resolves same-address entries oldest-first). *)
  let shadow_open = Hashtbl.create 32 in
  let sb_open = Hashtbl.create 32 in
  let sb_pop addr =
    match Hashtbl.find_opt sb_open addr with
    | Some (c :: rest) ->
        (if rest = [] then Hashtbl.remove sb_open addr
         else Hashtbl.replace sb_open addr rest);
        Some c
    | Some [] | None -> None
  in
  Events.iter events (fun cycle kind a b ->
      (match !pending_issue with
      | Some (_, c, _) when cycle > c -> settle_issue ~useful:false
      | _ -> ());
      let card () =
        match !cur with
        | Some c -> c
        | None ->
            (* Stream did not start with a Region_enter (truncated ring):
               attribute to a synthetic card; reconciliation will fail on
               [dropped] anyway. *)
            let c = get_card t "<orphan>" in
            cur := Some c;
            c
      in
      match (kind : Events.kind) with
      | Events.Region_enter ->
          (match !cur with
          | Some prev -> prev.cycles <- prev.cycles + (cycle - !enter_cycle)
          | None -> ());
          let c = get_card t (Events.name events a) in
          c.visits <- c.visits + 1;
          cur := Some c;
          enter_cycle := cycle
      | Events.Region_exit ->
          (match !pending_issue with
          | Some (_, c, _) when c = cycle -> settle_issue ~useful:true
          | _ -> ());
          ignore (card ())
      | Events.Issue -> pending_issue := Some (card (), cycle, a)
      | Events.Pred_true ->
          let c = card () in
          c.preds_true <- c.preds_true + 1
      | Events.Pred_false ->
          let c = card () in
          c.preds_false <- c.preds_false + 1
      | Events.Shadow_write ->
          let c = card () in
          c.spec_writes <- c.spec_writes + 1;
          Hashtbl.replace shadow_open a cycle
      | Events.Shadow_commit | Events.Shadow_squash ->
          let c = card () in
          (if kind = Events.Shadow_commit then
             c.shadow_commits <- c.shadow_commits + 1
           else if b = 0 then c.shadow_squashes <- c.shadow_squashes + 1
           else c.shadow_invalidated <- c.shadow_invalidated + 1);
          (match Hashtbl.find_opt shadow_open a with
          | Some wc ->
              Hashtbl.remove shadow_open a;
              Metrics.observe c.shadow_lifetime (float_of_int (cycle - wc))
          | None -> ())
      | Events.Sb_append ->
          let c = card () in
          c.sb_appends <- c.sb_appends + 1;
          if b = 1 then c.sb_spec_appends <- c.sb_spec_appends + 1;
          let tail =
            Option.value (Hashtbl.find_opt sb_open a) ~default:[]
          in
          Hashtbl.replace sb_open a (tail @ [ cycle ])
      | Events.Sb_forward ->
          let c = card () in
          c.sb_forwards <- c.sb_forwards + 1
      | Events.Sb_commit ->
          let c = card () in
          c.sb_commits <- c.sb_commits + 1
      | Events.Sb_flush | Events.Sb_squash ->
          let c = card () in
          (if kind = Events.Sb_flush then c.sb_flushes <- c.sb_flushes + 1
           else if b = 0 then c.sb_squashes <- c.sb_squashes + 1
           else c.sb_invalidated <- c.sb_invalidated + 1);
          (match sb_pop a with
          | Some ac -> Metrics.observe c.sb_dwell (float_of_int (cycle - ac))
          | None -> ())
      | Events.Fault_deferred ->
          let c = card () in
          c.faults_deferred <- c.faults_deferred + 1
      | Events.Fault_raised ->
          let c = card () in
          c.faults_raised <- c.faults_raised + 1
      | Events.Rob_commit ->
          let c = card () in
          c.rob_commits <- c.rob_commits + 1
      | Events.Rob_squash ->
          let c = card () in
          c.rob_squashes <- c.rob_squashes + 1);
  settle_issue ~useful:false;
  (match !cur with
  | Some last -> last.cycles <- last.cycles + (total_cycles - !enter_cycle)
  | None -> ());
  t

let cards t = List.rev t.cards_rev
let find t region = Hashtbl.find_opt t.by_name region
let total_cycles t = t.total_cycles
let dropped t = t.dropped

let attributed_cycles t =
  List.fold_left (fun acc c -> acc + c.cycles) 0 t.cards_rev

let reconciles t = t.dropped = 0 && attributed_cycles t = t.total_cycles

let commit_total t =
  List.fold_left
    (fun acc c -> acc + c.shadow_commits + c.sb_commits + c.rob_commits)
    0 t.cards_rev

let squash_rate c =
  let squashed =
    c.shadow_squashes + c.shadow_invalidated + c.sb_squashes + c.sb_invalidated
    + c.rob_squashes
  in
  let resolved =
    squashed + c.shadow_commits + c.sb_commits + c.rob_commits
  in
  if resolved = 0 then 0. else float_of_int squashed /. float_of_int resolved

let metrics t = t.metrics

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%-14s %6s %9s %8s %7s %7s %8s %8s %7s %6s %6s %6s %7s@," "region"
    "visits" "cycles" "useful" "wasted" "sq-rate" "shw-wr" "commits"
    "squash" "sb-app" "sb-fwd" "flush" "faults";
  List.iter
    (fun c ->
      Format.fprintf ppf
        "%-14s %6d %9d %8d %7d %6.1f%% %8d %8d %7d %6d %6d %6d %3d/%-3d@,"
        c.region c.visits c.cycles c.useful c.wasted
        (100. *. squash_rate c)
        c.spec_writes
        (c.shadow_commits + c.sb_commits + c.rob_commits)
        (c.shadow_squashes + c.shadow_invalidated + c.sb_squashes
       + c.sb_invalidated + c.rob_squashes)
        c.sb_appends c.sb_forwards c.sb_flushes c.faults_deferred
        c.faults_raised)
    (cards t);
  let q h p = Option.value (Metrics.histogram_quantile h p) ~default:Float.nan in
  List.iter
    (fun c ->
      if Metrics.histogram_count c.shadow_lifetime > 0 then
        Format.fprintf ppf
          "%-14s shadow lifetime p50=%g p90=%g p99=%g (n=%d)@," c.region
          (q c.shadow_lifetime 0.5) (q c.shadow_lifetime 0.9)
          (q c.shadow_lifetime 0.99)
          (Metrics.histogram_count c.shadow_lifetime);
      if Metrics.histogram_count c.sb_dwell > 0 then
        Format.fprintf ppf "%-14s sb dwell        p50=%g p90=%g p99=%g (n=%d)@,"
          c.region (q c.sb_dwell 0.5) (q c.sb_dwell 0.9) (q c.sb_dwell 0.99)
          (Metrics.histogram_count c.sb_dwell))
    (cards t);
  if reconciles t then
    Format.fprintf ppf
      "reconciled: %d region cycles = %d machine cycles, 0 dropped events@]"
      (attributed_cycles t) t.total_cycles
  else
    Format.fprintf ppf
      "NOT reconciled: %d region cycles vs %d machine cycles, %d dropped \
       events@]"
      (attributed_cycles t) t.total_cycles t.dropped

let hist_json h =
  let quantile p =
    match Metrics.histogram_quantile h p with
    | None -> Json.Null
    | Some v -> Json.Float v
  in
  Json.obj
    [
      ("count", Json.Int (Metrics.histogram_count h));
      ("sum", Json.Float (Metrics.histogram_sum h));
      ("mean", Json.Float (Metrics.histogram_mean h));
      ("p50", quantile 0.5);
      ("p90", quantile 0.9);
      ("p99", quantile 0.99);
    ]

let to_json t =
  let region_json c =
    Json.obj
      [
        ("region", Json.String c.region);
        ("visits", Json.Int c.visits);
        ("cycles", Json.Int c.cycles);
        ("useful_issue_cycles", Json.Int c.useful);
        ("wasted_issue_cycles", Json.Int c.wasted);
        ("squash_rate", Json.Float (squash_rate c));
        ("preds_true", Json.Int c.preds_true);
        ("preds_false", Json.Int c.preds_false);
        ("shadow_writes", Json.Int c.spec_writes);
        ("shadow_commits", Json.Int c.shadow_commits);
        ("shadow_squashes", Json.Int c.shadow_squashes);
        ("shadow_invalidated", Json.Int c.shadow_invalidated);
        ("sb_appends", Json.Int c.sb_appends);
        ("sb_spec_appends", Json.Int c.sb_spec_appends);
        ("sb_forwards", Json.Int c.sb_forwards);
        ("sb_commits", Json.Int c.sb_commits);
        ("sb_squashes", Json.Int c.sb_squashes);
        ("sb_invalidated", Json.Int c.sb_invalidated);
        ("sb_flushes", Json.Int c.sb_flushes);
        ("faults_deferred", Json.Int c.faults_deferred);
        ("faults_raised", Json.Int c.faults_raised);
        ("rob_commits", Json.Int c.rob_commits);
        ("rob_squashes", Json.Int c.rob_squashes);
        ("shadow_lifetime", hist_json c.shadow_lifetime);
        ("sb_dwell", hist_json c.sb_dwell);
      ]
  in
  Json.obj
    [
      ("total_cycles", Json.Int t.total_cycles);
      ("attributed_cycles", Json.Int (attributed_cycles t));
      ("dropped", Json.Int t.dropped);
      ("reconciles", Json.Bool (reconciles t));
      ("regions", Json.List (List.map region_json (cards t)));
    ]
