type kind =
  | Region_enter
  | Region_exit
  | Pred_true
  | Pred_false
  | Issue
  | Shadow_write
  | Shadow_commit
  | Shadow_squash
  | Sb_append
  | Sb_forward
  | Sb_commit
  | Sb_flush
  | Sb_squash
  | Fault_deferred
  | Fault_raised
  | Rob_commit
  | Rob_squash

let kind_name = function
  | Region_enter -> "region_enter"
  | Region_exit -> "region_exit"
  | Pred_true -> "pred_true"
  | Pred_false -> "pred_false"
  | Issue -> "issue"
  | Shadow_write -> "shadow_write"
  | Shadow_commit -> "shadow_commit"
  | Shadow_squash -> "shadow_squash"
  | Sb_append -> "sb_append"
  | Sb_forward -> "sb_forward"
  | Sb_commit -> "sb_commit"
  | Sb_flush -> "sb_flush"
  | Sb_squash -> "sb_squash"
  | Fault_deferred -> "fault_deferred"
  | Fault_raised -> "fault_raised"
  | Rob_commit -> "rob_commit"
  | Rob_squash -> "rob_squash"

(* All constructors of [kind] are constant, so values are immediates and
   [kinds] below is an unboxed int array: [emit] touches four flat
   arrays and three mutable ints, never the allocator. *)
type t = {
  cap : int;
  kinds : kind array;
  cycles : int array;
  aa : int array;
  bb : int array;
  mutable start : int;  (* index of the oldest held event *)
  mutable len : int;
  mutable total : int;
  mutable dropped : int;
  mutable names : string array;  (* intern table, id = index *)
  mutable num_names : int;
}

let create ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Events.create: capacity < 1";
  {
    cap = capacity;
    kinds = Array.make capacity Region_enter;
    cycles = Array.make capacity 0;
    aa = Array.make capacity 0;
    bb = Array.make capacity 0;
    start = 0;
    len = 0;
    total = 0;
    dropped = 0;
    names = Array.make 8 "";
    num_names = 0;
  }

let capacity t = t.cap
let length t = t.len
let total t = t.total
let dropped t = t.dropped

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.total <- 0;
  t.dropped <- 0

let emit t ~cycle kind ~a ~b =
  let i =
    if t.len < t.cap then begin
      let i = t.start + t.len in
      let i = if i >= t.cap then i - t.cap else i in
      t.len <- t.len + 1;
      i
    end
    else begin
      (* full: reuse the oldest slot and advance the window *)
      let i = t.start in
      t.start <- (if i + 1 >= t.cap then 0 else i + 1);
      t.dropped <- t.dropped + 1;
      i
    end
  in
  t.kinds.(i) <- kind;
  t.cycles.(i) <- cycle;
  t.aa.(i) <- a;
  t.bb.(i) <- b;
  t.total <- t.total + 1

let iter t f =
  for k = 0 to t.len - 1 do
    let i = t.start + k in
    let i = if i >= t.cap then i - t.cap else i in
    f t.cycles.(i) t.kinds.(i) t.aa.(i) t.bb.(i)
  done

let intern t s =
  let n = t.num_names in
  let rec find i = if i >= n then -1 else if t.names.(i) = s then i else find (i + 1) in
  match find 0 with
  | id when id >= 0 -> id
  | _ ->
      if n = Array.length t.names then begin
        let bigger = Array.make (2 * n) "" in
        Array.blit t.names 0 bigger 0 n;
        t.names <- bigger
      end;
      t.names.(n) <- s;
      t.num_names <- n + 1;
      n

let name t id =
  if id >= 0 && id < t.num_names then t.names.(id) else Printf.sprintf "?%d" id

let to_json t =
  let events = ref [] in
  iter t (fun cycle kind a b ->
      events :=
        Json.Obj
          [
            ("cycle", Json.Int cycle);
            ("kind", Json.String (kind_name kind));
            ("a", Json.Int a);
            ("b", Json.Int b);
          ]
        :: !events);
  let names =
    List.init t.num_names (fun i -> Json.String t.names.(i))
  in
  Json.Obj
    [
      ("capacity", Json.Int t.cap);
      ("total", Json.Int t.total);
      ("dropped", Json.Int t.dropped);
      ("names", Json.List names);
      ("events", Json.List (List.rev !events));
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>events: %d held, %d total, %d dropped@," t.len
    t.total t.dropped;
  iter t (fun cycle kind a b ->
      match kind with
      | Region_enter ->
          Format.fprintf ppf "%6d  region_enter    %s@," cycle (name t a)
      | Region_exit ->
          Format.fprintf ppf "%6d  region_exit     %s -> %s@," cycle (name t a)
            (if b < 0 then "<halt>" else name t b)
      | _ -> Format.fprintf ppf "%6d  %-15s a=%d b=%d@," cycle (kind_name kind) a b);
  Format.fprintf ppf "@]"
