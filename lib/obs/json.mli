(** Minimal JSON values: the machine-readable wire format of the
    observability stack (traces, metrics, experiment reports).

    Self-contained on purpose — the toolchain has no JSON library baked
    in, and the formats we emit (Chrome trace events, metrics dumps) are
    simple enough that a small total printer plus a strict parser keeps
    the schema honest: the golden tests round-trip every emitted document
    through {!parse} so the format cannot drift silently. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val obj : (string * t) list -> t
(** {!Obj} with [Null] members dropped — keeps emitted documents tidy. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printed (indented) form, suitable for humans and Perfetto. *)

val to_string : ?minify:bool -> t -> string
(** [minify] (default false) emits the compact single-line form. *)

val parse : string -> (t, string) result
(** Strict RFC-8259-style parser (UTF-8 passed through verbatim; [\uXXXX]
    escapes decoded; numbers without [.], [e] or [E] parse as {!Int}).
    Errors carry a byte offset. *)

(* ----- accessors (for tests and report post-processing) ----- *)

val member : string -> t -> t option
(** Field of an {!Obj}; [None] for missing fields or non-objects. *)

val to_list : t -> t list
(** Elements of a {!List}; [[]] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
(** {!Int} widens to float. *)

val to_str : t -> string option

val equal : t -> t -> bool
(** Structural equality with order-insensitive objects (duplicate keys
    compare positionally). *)
