(** Structured trace sink: the Chrome trace-event JSON format, loadable
    in Perfetto ([ui.perfetto.dev]) or [chrome://tracing].

    The builder is deliberately generic — tracks are named lanes, spans
    have a start and a duration, instants are point markers, counters are
    sampled series. The machine-specific adapter ([Psb_machine.Vliw_trace])
    maps simulator events onto tracks; this module only owns the format.

    Timestamps are in simulated cycles; one cycle is rendered as one
    microsecond (the trace-event [ts] unit), which keeps Perfetto's
    zoom levels sensible for million-cycle runs. *)

type t

val create : ?process_name:string -> unit -> t
(** [process_name] defaults to ["psb"]. *)

type track

val track : t -> ?sort_index:int -> string -> track
(** Find-or-create a named track (a "thread" in trace-event terms).
    [sort_index] orders tracks in the viewer; defaults to creation
    order. *)

val span :
  t -> track -> name:string -> ts:int -> dur:int ->
  ?args:(string * Json.t) list -> unit -> unit
(** A complete event (phase ["X"]): [dur] cycles starting at [ts].
    Zero-duration spans are widened to 1 so they stay visible. *)

val instant :
  t -> track -> name:string -> ts:int -> ?args:(string * Json.t) list ->
  unit -> unit
(** A point marker (phase ["i"], thread scope). *)

val counter : t -> name:string -> ts:int -> value:int -> unit
(** A sampled counter series (phase ["C"]): one numeric series per
    [name], rendered as an area chart. *)

val num_events : t -> int
(** Number of events recorded so far (excluding track metadata). *)

val to_json : t -> ?metadata:(string * Json.t) list -> unit -> Json.t
(** The document: [{"traceEvents": [...], "displayTimeUnit": "ms",
    "metadata": {...}}]. Events appear in emission order, preceded by the
    process/thread-name metadata records. *)
