(** Random structured-program generator for whole-pipeline property
    testing.

    Produces always-terminating programs — counted loops (optionally
    nested) around chains of data-dependent diamonds — with loads,
    stores, faulting arithmetic, demand paging and occasional
    out-of-bounds accesses. The generator first draws a {!plan} (a pure
    data description of the program's shape) and derives the [Program.t]
    deterministically from it; shrinking operates on the plan — drop
    diamonds, drop ops, shrink iteration counts, drop the inner loop —
    and rebuilds, so failing properties reduce to minimal
    counterexamples instead of unshrunk dumps. *)

open Psb_isa

(** {1 Shape parameters} *)

type shape = {
  max_diamonds : int;  (** diamonds per loop body (at least 1 is drawn) *)
  max_iters : int;  (** outer loop trip-count bound (at least 2) *)
  nesting : int;
      (** loop-nesting depth: [1] = a single counted loop, [>= 2] may
          additionally wrap a second diamond chain in an inner counted
          loop *)
  alias_mask : int;
      (** address mask for generated loads/stores — a smaller mask
          concentrates accesses on fewer words, raising the memory
          aliasing density the scheduler has to disambiguate *)
  oob_prob : float;
      (** probability that a memory access uses the wide (511) mask
          instead of [alias_mask], ranging over demand pages and,
          rarely, out of bounds *)
  fault_prob : float;
      (** relative weight of faulting division among generated ops *)
  demand : [ `Random | `On | `Off ];  (** demand-paged memory *)
  max_arm_ops : int;  (** random ops bound per diamond arm *)
}

val default_shape : shape
(** Matches the historical [test/gen_programs.ml] distribution:
    1-3 diamonds, 2-8 iterations, single loop, mask 63, 10% wide
    accesses, division (register or immediate divisors, occasionally a
    literal zero) at weight ~1/10, random demand paging. *)

(** {1 Plans and generated programs} *)

type diamond = {
  d_pre : Instr.op list;  (** ops before the branch compare *)
  d_cmp : Opcode.cmp;
  d_cmp_reg : int;
  d_cmp_operand : Operand.t;
  d_true : Instr.op list;
  d_false : Instr.op list;
  d_join : Instr.op list;
}

type plan = {
  p_iters : int;  (** outer trip count *)
  p_outer : diamond list;  (** outer-loop diamond chain *)
  p_inner : (int * diamond list) option;
      (** optional inner counted loop: trip count and its own chain *)
  p_init : (int * int) list;  (** initial data-register values *)
  p_mem : (int * int) list;  (** initial memory words *)
  p_demand : bool;
}

type t = {
  plan : plan option;
      (** [None] for handmade/corpus programs — those never shrink *)
  program : Program.t;
  mem_data : (int * int) list;
  demand : bool;
  descr : string;
}

val build : plan -> t
(** Deterministically derive the program from a plan. *)

val handmade :
  ?demand:bool -> ?mem_data:(int * int) list -> descr:string -> Program.t -> t
(** Wrap an explicit program (corpus replay, handcrafted regressions).
    The result has no plan and yields no shrink candidates. *)

val num_diamonds : t -> int
(** Diamonds in the plan (outer + inner); [0] for handmade programs. *)

(** {1 Generation and shrinking} *)

val gen : shape -> Random.State.t -> t
val arb : ?shape:shape -> unit -> t QCheck.arbitrary

val shrink : t -> t QCheck.Iter.t
(** Plan-level shrink candidates, each rebuilt into a full program:
    drop the inner loop, drop diamonds, shrink trip counts, drop
    individual ops from diamond arms. *)

val pp : t -> string

(** {1 Historical interface (test/gen_programs.ml)} *)

val data_regs : int list
val gen_program : Random.State.t -> t
(** [gen default_shape]. *)

val arb_program : t QCheck.arbitrary
(** [arb ~shape:default_shape ()] — shrinking included. *)

val make_mem : t -> Memory.t
val regs : (Reg.t * int) list
val pp_gprog : t -> string

(** {1 Bridges} *)

val to_dsl : ?name:string -> t -> Psb_workloads.Dsl.t
(** View a generated program as a workload (for {!Psb_eval.Limits} and
    the evaluation harness): same program, registers and fresh-memory
    factory. *)
