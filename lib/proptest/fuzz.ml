module Pool = Psb_parallel.Pool

type config = {
  trials : int;
  seed : int;
  shape : Gen.shape;
  inject : Inject.t option;
  shrink : bool;
  max_shrink_steps : int;
  max_counterexamples : int;
}

let default =
  {
    trials = 200;
    seed = 0;
    shape = Gen.default_shape;
    inject = None;
    shrink = true;
    max_shrink_steps = 1000;
    max_counterexamples = 5;
  }

type counterexample = {
  cx_trial : int;
  cx_stage : string;
  cx_detail : string;
  cx_program : Gen.t;
  cx_shrink_steps : int;
}

type outcome = { tested : int; counterexamples : counterexample list }

let gen_trial cfg i =
  Gen.gen cfg.shape (Random.State.make [| 0x50FB; cfg.seed; i |])

exception Shrunk of Gen.t * Diff.failure

let minimize cfg g failure =
  let g = ref g and failure = ref failure and steps = ref 0 in
  let progress = ref true in
  while !progress && !steps < cfg.max_shrink_steps do
    progress := false;
    (* take the first candidate that still fails; Gen.shrink yields
       structural drops first, so this is a greedy descent *)
    match
      Gen.shrink !g (fun candidate ->
          match Diff.check ?inject:cfg.inject candidate with
          | Ok () -> ()
          | Error f -> raise (Shrunk (candidate, f)))
    with
    | () -> ()
    | exception Shrunk (candidate, f) ->
        g := candidate;
        failure := f;
        incr steps;
        progress := true
  done;
  (!g, !failure, !steps)

let run_trial cfg i =
  let g = gen_trial cfg i in
  match Diff.check ?inject:cfg.inject g with
  | Ok () -> None
  | Error f ->
      let g, f, steps =
        if cfg.shrink then minimize cfg g f else (g, f, 0)
      in
      Some
        {
          cx_trial = i;
          cx_stage = f.Diff.stage;
          cx_detail = f.Diff.detail;
          cx_program = g;
          cx_shrink_steps = steps;
        }

let run ?pool ?on_progress cfg =
  let batch_size =
    match pool with Some p -> max 1 (4 * Pool.jobs p) | None -> 16
  in
  let tested = ref 0 and found = ref [] in
  let report_batch results =
    List.iter
      (fun r ->
        incr tested;
        match r with
        | Ok None -> ()
        | Ok (Some cx) -> found := cx :: !found
        | Error (i, e) ->
            found :=
              {
                cx_trial = i;
                cx_stage = "harness";
                cx_detail = e;
                cx_program = gen_trial cfg i;
                cx_shrink_steps = 0;
              }
              :: !found)
      results;
    match on_progress with
    | Some f -> f ~tested:!tested ~found:(List.length !found)
    | None -> ()
  in
  let i = ref 0 in
  while !i < cfg.trials && List.length !found < cfg.max_counterexamples do
    let n = min batch_size (cfg.trials - !i) in
    let indices = List.init n (fun k -> !i + k) in
    i := !i + n;
    let results =
      match pool with
      | Some p ->
          Pool.map p (fun idx -> run_trial cfg idx) indices
          |> List.map2
               (fun idx -> function
                 | Ok r -> Ok r
                 | Error e ->
                     Error (idx, Printexc.to_string e.Pool.exn))
               indices
      | None ->
          List.map
            (fun idx ->
              match run_trial cfg idx with
              | r -> Ok r
              | exception e -> Error (idx, Printexc.to_string e))
            indices
    in
    report_batch results
  done;
  { tested = !tested; counterexamples = List.rev !found }

let limits_fleet ?(n = 8) ?(shape = Gen.default_shape) ~seed () =
  let st = Random.State.make [| 0x50FB; seed |] in
  List.init n (fun i ->
      let g = Gen.gen shape st in
      Psb_eval.Limits.analyze (Gen.to_dsl ~name:(Printf.sprintf "gen-%03d" i) g))
