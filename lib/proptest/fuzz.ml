module Pool = Psb_parallel.Pool

type config = {
  trials : int;
  seed : int;
  shape : Gen.shape;
  inject : Inject.t option;
  shrink : bool;
  max_shrink_steps : int;
  max_counterexamples : int;
}

let default =
  {
    trials = 200;
    seed = 0;
    shape = Gen.default_shape;
    inject = None;
    shrink = true;
    max_shrink_steps = 1000;
    max_counterexamples = 5;
  }

type counterexample = {
  cx_trial : int;
  cx_stage : string;
  cx_detail : string;
  cx_program : Gen.t;
  cx_shrink_steps : int;
}

type outcome = {
  tested : int;
  counterexamples : counterexample list;
  wall_s : float;
  stage_seconds : (string * float) list;
}

let trials_per_second o = if o.wall_s > 0. then float_of_int o.tested /. o.wall_s else 0.

let gen_trial cfg i =
  Gen.gen cfg.shape (Random.State.make [| 0x50FB; cfg.seed; i |])

exception Shrunk of Gen.t * Diff.failure

let minimize cfg g failure =
  let g = ref g and failure = ref failure and steps = ref 0 in
  let progress = ref true in
  while !progress && !steps < cfg.max_shrink_steps do
    progress := false;
    (* take the first candidate that still fails; Gen.shrink yields
       structural drops first, so this is a greedy descent *)
    match
      Gen.shrink !g (fun candidate ->
          match Diff.check ?inject:cfg.inject candidate with
          | Ok () -> ()
          | Error f -> raise (Shrunk (candidate, f)))
    with
    | () -> ()
    | exception Shrunk (candidate, f) ->
        g := candidate;
        failure := f;
        incr steps;
        progress := true
  done;
  (!g, !failure, !steps)

(* Per-trial stage timings live in a trial-local table (pool workers are
   domains — no shared table) and are merged by the caller. *)
let run_trial cfg i =
  let times : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let bucket name f =
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        let prev =
          match Hashtbl.find_opt times name with Some v -> v | None -> 0.
        in
        Hashtbl.replace times name (prev +. Unix.gettimeofday () -. t0))
  in
  let g = bucket "gen" (fun () -> gen_trial cfg i) in
  let cx =
    match Diff.check ?inject:cfg.inject ~times g with
    | Ok () -> None
    | Error f ->
        let g, f, steps =
          if cfg.shrink then
            bucket "shrink" (fun () -> minimize cfg g f)
          else (g, f, 0)
        in
        Some
          {
            cx_trial = i;
            cx_stage = f.Diff.stage;
            cx_detail = f.Diff.detail;
            cx_program = g;
            cx_shrink_steps = steps;
          }
  in
  (cx, Hashtbl.fold (fun k v acc -> (k, v) :: acc) times [])

let run ?pool ?on_progress cfg =
  let t_start = Unix.gettimeofday () in
  let batch_size =
    match pool with Some p -> max 1 (4 * Pool.jobs p) | None -> 16
  in
  let tested = ref 0 and found = ref [] in
  let stage_tbl : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let merge_times l =
    List.iter
      (fun (k, v) ->
        let prev =
          match Hashtbl.find_opt stage_tbl k with Some v -> v | None -> 0.
        in
        Hashtbl.replace stage_tbl k (prev +. v))
      l
  in
  let report_batch results =
    List.iter
      (fun r ->
        incr tested;
        match r with
        | Ok (None, times) -> merge_times times
        | Ok (Some cx, times) ->
            merge_times times;
            found := cx :: !found
        | Error (i, e) ->
            found :=
              {
                cx_trial = i;
                cx_stage = "harness";
                cx_detail = e;
                cx_program = gen_trial cfg i;
                cx_shrink_steps = 0;
              }
              :: !found)
      results;
    match on_progress with
    | Some f -> f ~tested:!tested ~found:(List.length !found)
    | None -> ()
  in
  let i = ref 0 in
  while !i < cfg.trials && List.length !found < cfg.max_counterexamples do
    let n = min batch_size (cfg.trials - !i) in
    let indices = List.init n (fun k -> !i + k) in
    i := !i + n;
    let results =
      match pool with
      | Some p ->
          Pool.map p (fun idx -> run_trial cfg idx) indices
          |> List.map2
               (fun idx -> function
                 | Ok r -> Ok r
                 | Error e ->
                     Error (idx, Printexc.to_string e.Pool.exn))
               indices
      | None ->
          List.map
            (fun idx ->
              match run_trial cfg idx with
              | r -> Ok r
              | exception e -> Error (idx, Printexc.to_string e))
            indices
    in
    report_batch results
  done;
  let stage_seconds =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) stage_tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    tested = !tested;
    counterexamples = List.rev !found;
    wall_s = Unix.gettimeofday () -. t_start;
    stage_seconds;
  }

let limits_fleet ?(n = 8) ?(shape = Gen.default_shape) ~seed () =
  let st = Random.State.make [| 0x50FB; seed |] in
  List.init n (fun i ->
      let g = Gen.gen shape st in
      Psb_eval.Limits.analyze (Gen.to_dsl ~name:(Printf.sprintf "gen-%03d" i) g))
