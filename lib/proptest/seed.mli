(** Replayable random seeds for property runs.

    One process-wide seed, resolved once: [PSB_QCHECK_SEED] if set (and a
    valid integer), else [QCHECK_SEED] (the stock qcheck-alcotest
    variable), else self-initialised. The seed is printed to stderr on
    first use with the one-command replay recipe, so any CI failure
    reproduces locally with [PSB_QCHECK_SEED=N dune runtest]. *)

val value : unit -> int
(** The resolved seed (prints the replay line on first call). *)

val rand : unit -> Random.State.t
(** A fresh state derived from {!value} — one per property, so a single
    seed replays every property in a test binary regardless of how many
    run before it. *)
