open Psb_isa

let header_line key value = Printf.sprintf "# %s: %s" key value

let render ?seed ~stage ~detail (g : Gen.t) =
  let mem =
    String.concat " "
      (List.map (fun (a, v) -> Printf.sprintf "%d=%d" a v) g.Gen.mem_data)
  in
  let one_line s =
    String.map (function '\n' | '\r' -> ' ' | c -> c) s
  in
  let hdr =
    [
      header_line "psb-corpus" "v1";
      header_line "descr" (one_line g.Gen.descr);
      header_line "demand" (string_of_bool g.Gen.demand);
      header_line "mem" mem;
      header_line "stage" (one_line stage);
      header_line "detail" (one_line detail);
    ]
    @ (match seed with
      | Some s -> [ header_line "seed" (string_of_int s) ]
      | None -> [])
  in
  String.concat "\n" hdr ^ "\n" ^ Asm.print g.Gen.program

let save ~dir ?seed ~stage ~detail g =
  let text = render ?seed ~stage ~detail g in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "cx-%s.psbasm"
         (String.sub (Digest.to_hex (Digest.string text)) 0 12))
  in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let parse_headers text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line < 2 || line.[0] <> '#' then None
         else
           let body = String.trim (String.sub line 1 (String.length line - 1)) in
           match String.index_opt body ':' with
           | None -> None
           | Some i ->
               Some
                 ( String.trim (String.sub body 0 i),
                   String.trim
                     (String.sub body (i + 1) (String.length body - i - 1)) ))

let parse_mem s =
  String.split_on_char ' ' s
  |> List.filter_map (fun pair ->
         match String.split_on_char '=' pair with
         | [ a; v ] -> (
             match (int_of_string_opt a, int_of_string_opt v) with
             | Some a, Some v -> Some (a, v)
             | _ -> None)
         | _ -> None)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> (
      match Asm.parse text with
      | Error m -> Error (Printf.sprintf "%s: %s" path m)
      | Ok program ->
          let hdrs = parse_headers text in
          let find k = List.assoc_opt k hdrs in
          let demand =
            match find "demand" with Some "true" -> true | _ -> false
          in
          let mem_data =
            match find "mem" with Some s -> parse_mem s | None -> []
          in
          let descr =
            match find "descr" with
            | Some d -> Printf.sprintf "%s [%s]" d (Filename.basename path)
            | None -> Filename.basename path
          in
          Ok (Gen.handmade ~demand ~mem_data ~descr program))

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".psbasm")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (f, load path))
