open Psb_isa
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Scalar_sim = Psb_machine.Scalar_sim
module Rob_sim = Psb_machine.Rob_sim
module Pred_kernel = Psb_machine.Pred_kernel
module Exec_kernel = Psb_machine.Exec_kernel
module Verify = Psb_verify.Verify

type failure = { stage : string; detail : string }

let pp_failure f = Printf.sprintf "[%s] %s" f.stage f.detail

exception Failed of failure

let fail stage fmt = Format.kasprintf (fun detail -> raise (Failed { stage; detail })) fmt

(* A stage that raises (Machine_error on injected code, Failure from the
   compiler, stack overflow in a runaway pass) is a finding at that
   stage, not a harness crash. *)
let staged stage f =
  try f ()
  with
  | Failed _ as e -> raise e
  | e -> fail stage "raised %s" (Printexc.to_string e)

(* Coarse per-stage wall-clock, accumulated into a caller-owned table
   (one per trial under the fuzz pool — domains must not share one). *)
let timed times bucket f =
  match times with
  | None -> f ()
  | Some tbl ->
      let t0 = Unix.gettimeofday () in
      Fun.protect f ~finally:(fun () ->
          let prev =
            match Hashtbl.find_opt tbl bucket with Some v -> v | None -> 0.
          in
          Hashtbl.replace tbl bucket (prev +. Unix.gettimeofday () -. t0))

let scalar_fuel = 500_000
let vliw_fuel = 2_000_000

(* cycle fuel, not instruction fuel: the out-of-order backend burns
   frontend/stall cycles the interpreter never sees *)
let rob_fuel = 4_000_000

let outcomes_match (a : Interp.outcome) (b : Interp.outcome) =
  match (a, b) with
  | Interp.Halted, Interp.Halted -> true
  | Interp.Fatal f1, Interp.Fatal f2 -> Fault.equal f1 f2
  | Interp.Out_of_fuel, Interp.Out_of_fuel -> true
  | _ -> false

let pp_out l = String.concat "," (List.map string_of_int l)

let executable_models =
  List.filter (fun (m : Model.t) -> m.Model.executable) Model.all

let compiled_equal (a : Driver.compiled) (b : Driver.compiled) =
  Driver.code_size a = Driver.code_size b
  && Label.Map.equal
       (fun (s1 : Sched.t) (s2 : Sched.t) -> s1.Sched.issue = s2.Sched.issue)
       a.Driver.schedules b.Driver.schedules
  && Option.equal
       (fun c1 c2 ->
         Format.asprintf "%a" Psb_machine.Pcode.pp c1
         = Format.asprintf "%a" Psb_machine.Pcode.pp c2)
       a.Driver.pcode b.Driver.pcode

(* stage 1: the two scalar oracles must agree with each other *)
let check_scalar (g : Gen.t) ~decoded (reference : Interp.result) ref_mem =
  staged "interp-vs-scalar" (fun () ->
      let mem = Gen.make_mem g in
      let s =
        Scalar_sim.run ~fuel:scalar_fuel ~record_trace:false ~decoded
          ~regs:Gen.regs ~mem g.Gen.program
      in
      if not (Interp.equivalent reference s) then
        fail "interp-vs-scalar" "interp %a / %s, scalar %a / %s"
          Interp.pp_outcome reference.Interp.outcome (pp_out reference.Interp.output)
          Interp.pp_outcome s.Interp.outcome (pp_out s.Interp.output);
      if reference.Interp.cycles <> s.Interp.cycles then
        fail "interp-vs-scalar" "cycles %d vs %d" reference.Interp.cycles
          s.Interp.cycles;
      if not (Memory.equal ref_mem mem) then
        fail "interp-vs-scalar" "final memory differs")

(* stage 2: the out-of-order ROB backend must be architecturally
   byte-identical to the interpreter — outcome (same fatal fault),
   output, final registers, final memory and the handled-fault count;
   predicated-state buffering and reorder-buffer speculation are rival
   mechanisms for the same contract. The cycle-accounting breakdown must
   also sum exactly to the cycle count. *)
let check_rob (g : Gen.t) ~decoded (reference : Interp.result) ref_mem =
  staged "rob-vs-interp" (fun () ->
      let mem = Gen.make_mem g in
      let r =
        Rob_sim.run ~fuel:rob_fuel ~decoded ~model:Machine_model.base
          ~regs:Gen.regs ~mem g.Gen.program
      in
      if not (outcomes_match reference.Interp.outcome r.Rob_sim.outcome) then
        fail "rob-vs-interp" "interp %a, rob %a" Interp.pp_outcome
          reference.Interp.outcome Interp.pp_outcome r.Rob_sim.outcome;
      if reference.Interp.output <> r.Rob_sim.output then
        fail "rob-vs-interp" "output %s vs %s"
          (pp_out reference.Interp.output)
          (pp_out r.Rob_sim.output);
      if not (Reg.Map.equal Int.equal reference.Interp.regs r.Rob_sim.regs)
      then fail "rob-vs-interp" "final registers differ";
      if not (Memory.equal ref_mem mem) then
        fail "rob-vs-interp" "final memory differs";
      if reference.Interp.faults_handled <> r.Rob_sim.faults_handled then
        fail "rob-vs-interp" "faults handled: interp %d, rob %d"
          reference.Interp.faults_handled r.Rob_sim.faults_handled;
      let bd = Rob_sim.breakdown_total r.Rob_sim.breakdown in
      if bd <> r.Rob_sim.cycles then
        fail "rob-vs-interp" "breakdown sums to %d but cycles = %d" bd
          r.Rob_sim.cycles;
      r)

(* stage 1b: the two interpreter kernels must agree on everything the
   result carries — cycles, dynamic instructions, block trace, faults *)
let check_scalar_kernels (g : Gen.t) ~decoded =
  staged "scalar-decoded-vs-tree" (fun () ->
      let mem_d = Gen.make_mem g in
      let d =
        Interp.run ~fuel:scalar_fuel ~kernel:Scalar_kernel.Decoded ~decoded
          ~regs:Gen.regs ~mem:mem_d g.Gen.program
      in
      let mem_t = Gen.make_mem g in
      let t =
        Interp.run ~fuel:scalar_fuel ~kernel:Scalar_kernel.Tree ~regs:Gen.regs
          ~mem:mem_t g.Gen.program
      in
      if not (outcomes_match d.Interp.outcome t.Interp.outcome) then
        fail "scalar-decoded-vs-tree" "decoded %a, tree %a" Interp.pp_outcome
          d.Interp.outcome Interp.pp_outcome t.Interp.outcome;
      if d.Interp.output <> t.Interp.output then
        fail "scalar-decoded-vs-tree" "output %s vs %s" (pp_out d.Interp.output)
          (pp_out t.Interp.output);
      if d.Interp.cycles <> t.Interp.cycles then
        fail "scalar-decoded-vs-tree" "cycles %d vs %d" d.Interp.cycles
          t.Interp.cycles;
      if d.Interp.dyn_instrs <> t.Interp.dyn_instrs then
        fail "scalar-decoded-vs-tree" "dyn_instrs %d vs %d" d.Interp.dyn_instrs
          t.Interp.dyn_instrs;
      if
        not
          (List.equal Label.equal d.Interp.block_trace t.Interp.block_trace)
      then fail "scalar-decoded-vs-tree" "block traces differ";
      if not (Reg.Map.equal Int.equal d.Interp.regs t.Interp.regs) then
        fail "scalar-decoded-vs-tree" "final registers differ";
      if d.Interp.faults_handled <> t.Interp.faults_handled then
        fail "scalar-decoded-vs-tree" "faults handled %d vs %d"
          d.Interp.faults_handled t.Interp.faults_handled;
      if not (Memory.equal mem_d mem_t) then
        fail "scalar-decoded-vs-tree" "final memory differs")

(* stage 2b: the two ROB fetch frontends must be cycle-, stat- and
   breakdown-identical, not just architecturally equal *)
let check_rob_kernels (g : Gen.t) (d : Rob_sim.result) =
  staged "rob-decoded-vs-tree" (fun () ->
      let mem = Gen.make_mem g in
      let t =
        Rob_sim.run ~fuel:rob_fuel ~kernel:Scalar_kernel.Tree
          ~model:Machine_model.base ~regs:Gen.regs ~mem g.Gen.program
      in
      if not (outcomes_match d.Rob_sim.outcome t.Rob_sim.outcome) then
        fail "rob-decoded-vs-tree" "decoded %a, tree %a" Interp.pp_outcome
          d.Rob_sim.outcome Interp.pp_outcome t.Rob_sim.outcome;
      if d.Rob_sim.output <> t.Rob_sim.output then
        fail "rob-decoded-vs-tree" "output %s vs %s" (pp_out d.Rob_sim.output)
          (pp_out t.Rob_sim.output);
      if d.Rob_sim.cycles <> t.Rob_sim.cycles then
        fail "rob-decoded-vs-tree" "cycles %d vs %d" d.Rob_sim.cycles
          t.Rob_sim.cycles;
      if d.Rob_sim.dyn_instrs <> t.Rob_sim.dyn_instrs then
        fail "rob-decoded-vs-tree" "dyn_instrs %d vs %d" d.Rob_sim.dyn_instrs
          t.Rob_sim.dyn_instrs;
      if not (Reg.Map.equal Int.equal d.Rob_sim.regs t.Rob_sim.regs) then
        fail "rob-decoded-vs-tree" "final registers differ";
      if d.Rob_sim.faults_handled <> t.Rob_sim.faults_handled then
        fail "rob-decoded-vs-tree" "faults handled %d vs %d"
          d.Rob_sim.faults_handled t.Rob_sim.faults_handled;
      if d.Rob_sim.stats <> t.Rob_sim.stats then
        fail "rob-decoded-vs-tree"
          "stats differ (decoded fetched=%d squashed=%d mispredicts=%d, tree \
           fetched=%d squashed=%d mispredicts=%d)"
          d.Rob_sim.stats.Rob_sim.fetched d.Rob_sim.stats.Rob_sim.squashed
          d.Rob_sim.stats.Rob_sim.mispredicts t.Rob_sim.stats.Rob_sim.fetched
          t.Rob_sim.stats.Rob_sim.squashed t.Rob_sim.stats.Rob_sim.mispredicts;
      if d.Rob_sim.breakdown <> t.Rob_sim.breakdown then
        fail "rob-decoded-vs-tree" "cycle-accounting breakdowns differ")

let run_vliw ?pred_kernel ?exec_kernel (compiled : Driver.compiled) ~mem =
  match compiled.Driver.pcode with
  | None -> invalid_arg "Diff.run_vliw: model not executable"
  | Some pcode ->
      (* not [Driver.run_vliw]: injected miscompiles can loop forever, so
         the machine needs a much shorter leash than its 60M default *)
      Vliw_sim.run ~fuel:vliw_fuel ?pred_kernel ?exec_kernel
        ~model:compiled.Driver.machine ~regs:Gen.regs ~mem pcode

(* stages 3-5, once per executable model *)
let check_model ?inject (g : Gen.t) (scalar : Interp.result) scalar_mem profile
    (model : Model.t) =
  let m = model.Model.name in
  let stage s = m ^ "/" ^ s in
  let compiled =
    staged (stage "compile") (fun () ->
        Driver.compile ~verify:false ~model ~machine:Machine_model.base ~profile
          g.Gen.program)
  in
  let compiled =
    match (inject, compiled.Driver.pcode) with
    | Some bug, Some pcode ->
        (* the cached lowering describes the uninjected pcode; keeping it
           would mask the very miscompile we just planted *)
        {
          compiled with
          Driver.pcode = Some (Inject.apply bug pcode);
          Driver.lowered = None;
        }
    | _ -> compiled
  in
  (* verify-then-run: the static verifier must accept what we are about
     to execute (on injected code, a rejection here is the bug being
     caught at compile time — still a finding for the fuzzer) *)
  staged (stage "verify") (fun () ->
      match compiled.Driver.pcode with
      | None -> ()
      | Some pcode ->
          let report = Verify.run Machine_model.base pcode in
          if not (Verify.ok report) then
            fail (stage "verify") "%a" Verify.pp report);
  let vliw_mem = Gen.make_mem g in
  let vliw =
    staged (stage "vliw-vs-scalar") (fun () ->
        run_vliw compiled ~mem:vliw_mem)
  in
  staged (stage "vliw-vs-scalar") (fun () ->
      match scalar.Interp.outcome with
      | Interp.Out_of_fuel -> ()
      | Interp.Fatal _ -> (
          (* only same-fatality is defined: the compiler may hoist
             independent side effects above a fatal trap *)
          match vliw.Vliw_sim.outcome with
          | Interp.Fatal _ -> ()
          | o -> fail (stage "vliw-vs-scalar") "fatal scalar but vliw %a"
                   Interp.pp_outcome o)
      | Interp.Halted ->
          if not (outcomes_match scalar.Interp.outcome vliw.Vliw_sim.outcome)
          then
            fail (stage "vliw-vs-scalar") "outcome %a" Interp.pp_outcome
              vliw.Vliw_sim.outcome;
          if scalar.Interp.output <> vliw.Vliw_sim.output then
            fail (stage "vliw-vs-scalar") "output %s vs %s"
              (pp_out scalar.Interp.output) (pp_out vliw.Vliw_sim.output);
          if not (Memory.equal scalar_mem vliw_mem) then
            fail (stage "vliw-vs-scalar") "final memory differs";
          if scalar.Interp.faults_handled > 0 && vliw.Vliw_sim.faults_handled = 0
          then
            fail (stage "vliw-vs-scalar")
              "scalar recovered %d faults but vliw reported no recovery"
              scalar.Interp.faults_handled);
  (* predicate-kernel identity: the bitmask kernel (what ran above) and
     the reference map kernel must be cycle-exact *)
  staged (stage "mask-vs-map") (fun () ->
      let map =
        run_vliw ~pred_kernel:Pred_kernel.Map compiled ~mem:(Gen.make_mem g)
      in
      let agree =
        outcomes_match vliw.Vliw_sim.outcome map.Vliw_sim.outcome
        && vliw.Vliw_sim.output = map.Vliw_sim.output
        && vliw.Vliw_sim.cycles = map.Vliw_sim.cycles
        && vliw.Vliw_sim.stats.Vliw_sim.commits = map.Vliw_sim.stats.Vliw_sim.commits
        && vliw.Vliw_sim.stats.Vliw_sim.squashes = map.Vliw_sim.stats.Vliw_sim.squashes
        && vliw.Vliw_sim.stats.Vliw_sim.recoveries
           = map.Vliw_sim.stats.Vliw_sim.recoveries
      in
      if not agree then
        fail (stage "mask-vs-map")
          "mask %d cycles / %a, map %d cycles / %a" vliw.Vliw_sim.cycles
          Interp.pp_outcome vliw.Vliw_sim.outcome map.Vliw_sim.cycles
          Interp.pp_outcome map.Vliw_sim.outcome);
  (* execution-kernel identity: the lowered structure-of-arrays walk
     (what ran above, being the default) and the tree-walking reference
     must be cycle-exact *)
  staged (stage "lowered-vs-tree") (fun () ->
      let tree =
        run_vliw ~exec_kernel:Exec_kernel.Tree compiled ~mem:(Gen.make_mem g)
      in
      let agree =
        outcomes_match vliw.Vliw_sim.outcome tree.Vliw_sim.outcome
        && vliw.Vliw_sim.output = tree.Vliw_sim.output
        && vliw.Vliw_sim.cycles = tree.Vliw_sim.cycles
        && vliw.Vliw_sim.stats.Vliw_sim.commits
           = tree.Vliw_sim.stats.Vliw_sim.commits
        && vliw.Vliw_sim.stats.Vliw_sim.squashes
           = tree.Vliw_sim.stats.Vliw_sim.squashes
        && vliw.Vliw_sim.stats.Vliw_sim.recoveries
           = tree.Vliw_sim.stats.Vliw_sim.recoveries
      in
      if not agree then
        fail (stage "lowered-vs-tree")
          "lowered %d cycles / %a, tree %d cycles / %a" vliw.Vliw_sim.cycles
          Interp.pp_outcome vliw.Vliw_sim.outcome tree.Vliw_sim.cycles
          Interp.pp_outcome tree.Vliw_sim.outcome)

(* stage 6: cache hit = cold compile, on the flagship model (the cache
   key covers model/machine/options, so one model suffices per program) *)
let check_cache (g : Gen.t) profile =
  staged "cache" (fun () ->
      let model = Model.region_pred and machine = Machine_model.base in
      let cache = Compile_cache.create () in
      let via_cache () =
        Driver.compile ~cache ~model ~machine ~profile g.Gen.program
      in
      let first = via_cache () in
      let second = via_cache () in
      let fresh = Driver.compile ~model ~machine ~profile g.Gen.program in
      if not (second == first) then
        fail "cache" "second lookup recompiled instead of hitting";
      if not (compiled_equal first fresh) then
        fail "cache" "cache hit differs structurally from cold compile")

let check ?inject ?times (g : Gen.t) =
  try
    (* decode once; every scalar and ROB stage below reuses the form *)
    let decoded =
      timed times "decode" (fun () ->
          staged "decode" (fun () -> Decoded.of_program g.Gen.program))
    in
    let scalar_mem = Gen.make_mem g in
    let scalar =
      timed times "interp" (fun () ->
          staged "interp" (fun () ->
              Interp.run ~fuel:scalar_fuel ~record_trace:false ~decoded
                ~regs:Gen.regs ~mem:scalar_mem g.Gen.program))
    in
    if scalar.Interp.outcome = Interp.Out_of_fuel then Ok ()
    else begin
      timed times "scalar" (fun () ->
          check_scalar g ~decoded scalar scalar_mem;
          check_scalar_kernels g ~decoded);
      timed times "rob" (fun () ->
          let rob = check_rob g ~decoded scalar scalar_mem in
          check_rob_kernels g rob);
      let profile =
        timed times "profile" (fun () ->
            staged "profile" (fun () ->
                snd
                  (Driver.profile_of g.Gen.program ~regs:Gen.regs
                     ~mem:(Gen.make_mem g))))
      in
      timed times "models" (fun () ->
          List.iter
            (check_model ?inject g scalar scalar_mem profile)
            executable_models);
      (match inject with
      | None -> timed times "cache" (fun () -> check_cache g profile)
      | Some _ -> ());
      Ok ()
    end
  with Failed f -> Error f
