(** Whole-pipeline differential driver.

    One generated program, every stage boundary checked. The program is
    predecoded once ({!Psb_isa.Decoded.of_program}) and the flat form is
    shared by every scalar and ROB stage below:

    + the DSL-level reference ({!Psb_isa.Interp}) against the scalar
      baseline front-end ({!Psb_machine.Scalar_sim}) — outcome, output,
      cycles and final memory;
    + the decoded interpreter kernel against the tree-walking one —
      outcome, output, cycles, dynamic instructions, block trace, final
      registers, handled-fault count and final memory, all exact;
    + the reference against the out-of-order reorder-buffer backend
      ({!Psb_machine.Rob_sim}) — outcome (same fatal fault), output,
      final registers, final memory, handled-fault count, and the
      cycle-accounting breakdown summing exactly to the cycle count;
    + the ROB's decoded fetch frontend against its tree frontend —
      cycles, stats and the accounting breakdown identical, not just
      the architectural results;
    + for every executable {!Psb_compiler.Model}: compile (optionally
      with an {!Inject}ed miscompile), statically verify
      ({!Psb_verify.Verify}), then run the predicated code on the VLIW
      machine with the bitmask predicate kernel and compare against the
      scalar reference (exact for halting runs; same-fatality for fatal
      traps; recovery episodes must not be lost);
    + the reference map predicate kernel against the bitmask kernel,
      cycle-exact (cycles, output, commits, squashes, recoveries);
    + the tree-walking execution kernel against the lowered
      structure-of-arrays kernel ({!Psb_machine.Lowered}), cycle-exact
      on the same counters;
    + compile-cache hit against cold compile, structurally equal
      (flagship model only — the cache key covers the rest).

    The first failing stage is reported; an exception anywhere in the
    pipeline (e.g. the machine's [Machine_error] on injected code) is a
    failure of the stage that raised it, not a harness crash. *)

type failure = {
  stage : string;
      (** [decode], [interp-vs-scalar], [scalar-decoded-vs-tree],
          [rob-vs-interp], [rob-decoded-vs-tree], [compile], [verify],
          [vliw-vs-scalar], [mask-vs-map], [lowered-vs-tree], [cache],
          prefixed by the model name where model-specific *)
  detail : string;
}

val pp_failure : failure -> string

val check :
  ?inject:Inject.t ->
  ?times:(string, float) Hashtbl.t ->
  Gen.t ->
  (unit, failure) result
(** Run the full stage chain on one program. With [inject], the bug is
    applied to every executable model's compiled code before the verify
    and run stages — a healthy harness must then return [Error].

    [times] accumulates coarse per-stage wall-clock seconds into the
    given table (buckets: [decode], [interp], [scalar], [rob],
    [profile], [models], [cache]) — the fuzz driver sums these across
    trials for its throughput report. The table must not be shared
    between domains; give each trial its own and merge. *)
