(** Whole-pipeline differential driver.

    One generated program, every stage boundary checked:

    + the DSL-level reference ({!Psb_isa.Interp}) against the scalar
      baseline front-end ({!Psb_machine.Scalar_sim}) — outcome, output,
      cycles and final memory;
    + the reference against the out-of-order reorder-buffer backend
      ({!Psb_machine.Rob_sim}) — outcome (same fatal fault), output,
      final registers, final memory, handled-fault count, and the
      cycle-accounting breakdown summing exactly to the cycle count;
    + for every executable {!Psb_compiler.Model}: compile (optionally
      with an {!Inject}ed miscompile), statically verify
      ({!Psb_verify.Verify}), then run the predicated code on the VLIW
      machine with the bitmask predicate kernel and compare against the
      scalar reference (exact for halting runs; same-fatality for fatal
      traps; recovery episodes must not be lost);
    + the reference map predicate kernel against the bitmask kernel,
      cycle-exact (cycles, output, commits, squashes, recoveries);
    + the tree-walking execution kernel against the lowered
      structure-of-arrays kernel ({!Psb_machine.Lowered}), cycle-exact
      on the same counters;
    + compile-cache hit against cold compile, structurally equal
      (flagship model only — the cache key covers the rest).

    The first failing stage is reported; an exception anywhere in the
    pipeline (e.g. the machine's [Machine_error] on injected code) is a
    failure of the stage that raised it, not a harness crash. *)

type failure = {
  stage : string;
      (** [interp-vs-scalar], [rob-vs-interp], [compile], [verify],
          [vliw-vs-scalar], [mask-vs-map], [lowered-vs-tree], [cache],
          prefixed by the model name where model-specific *)
  detail : string;
}

val pp_failure : failure -> string

val check : ?inject:Inject.t -> Gen.t -> (unit, failure) result
(** Run the full stage chain on one program. With [inject], the bug is
    applied to every executable model's compiled code before the verify
    and run stages — a healthy harness must then return [Error]. *)
