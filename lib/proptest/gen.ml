(* Plan-driven random-program generator: a [plan] is a pure description
   of the program's shape (trip counts, diamond chains, per-arm op
   lists, memory image); [build] derives the Program.t from it
   deterministically. Generation draws a plan; shrinking edits the plan
   and rebuilds, so every shrink candidate is a well-formed,
   always-terminating program. *)

open Psb_isa

let reg = Reg.make
let lbl = Label.make
let rr i = Operand.reg (reg i)
let im i = Operand.imm i

(* Data registers the random ops read and write — small pool so WAW/WAR
   collisions across diamond arms are frequent. *)
let data_regs = [ 1; 2; 3; 4 ]
let scratch = 6 (* comparison scratch *)
let addr_reg = 7
let counter = 10
let inner_counter = 11
let base = 20

type shape = {
  max_diamonds : int;
  max_iters : int;
  nesting : int;
  alias_mask : int;
  oob_prob : float;
  fault_prob : float;
  demand : [ `Random | `On | `Off ];
  max_arm_ops : int;
}

let default_shape =
  {
    max_diamonds = 3;
    max_iters = 8;
    nesting = 1;
    alias_mask = 63;
    oob_prob = 0.1;
    fault_prob = 0.1;
    demand = `Random;
    max_arm_ops = 3;
  }

type diamond = {
  d_pre : Instr.op list;
  d_cmp : Opcode.cmp;
  d_cmp_reg : int;
  d_cmp_operand : Operand.t;
  d_true : Instr.op list;
  d_false : Instr.op list;
  d_join : Instr.op list;
}

type plan = {
  p_iters : int;
  p_outer : diamond list;
  p_inner : (int * diamond list) option;
  p_init : (int * int) list;
  p_mem : (int * int) list;
  p_demand : bool;
}

type t = {
  plan : plan option;
  program : Program.t;
  mem_data : (int * int) list;
  demand : bool;
  descr : string;
}

(* ---------- plan -> program ---------- *)

let build plan =
  let blocks = ref [] in
  let addb name body term =
    blocks := Program.block (lbl name) body term :: !blocks
  in
  let first_of prefix ds next =
    if ds = [] then next else prefix ^ "0_test"
  in
  let diamond_blocks prefix ds next =
    let n = List.length ds in
    List.iteri
      (fun k (d : diamond) ->
        let pre = Format.asprintf "%s%d" prefix k in
        let nxt =
          if k + 1 < n then Format.asprintf "%s%d_test" prefix (k + 1)
          else next
        in
        addb (pre ^ "_test")
          (d.d_pre
          @ [
              Instr.Cmp
                { op = d.d_cmp; dst = reg scratch; a = rr d.d_cmp_reg;
                  b = d.d_cmp_operand };
            ])
          (Instr.Br
             { src = reg scratch; if_true = lbl (pre ^ "_t");
               if_false = lbl (pre ^ "_f") });
        addb (pre ^ "_t") d.d_true (Instr.Jmp (lbl (pre ^ "_join")));
        addb (pre ^ "_f") d.d_false (Instr.Jmp (lbl (pre ^ "_join")));
        addb (pre ^ "_join") d.d_join (Instr.Jmp (lbl nxt)))
      ds
  in
  let after_outer =
    match plan.p_inner with Some _ -> "inner_init" | None -> "latch"
  in
  addb "entry"
    (Instr.Mov { dst = reg counter; src = im 0 }
    :: List.map
         (fun (r, v) -> Instr.Mov { dst = reg r; src = im v })
         plan.p_init)
    (Instr.Jmp (lbl "head"));
  addb "head"
    [ Instr.Cmp
        { op = Opcode.Lt; dst = reg scratch; a = rr counter;
          b = im plan.p_iters };
    ]
    (Instr.Br
       { src = reg scratch;
         if_true = lbl (first_of "d" plan.p_outer after_outer);
         if_false = lbl "end" });
  diamond_blocks "d" plan.p_outer after_outer;
  (match plan.p_inner with
  | None -> ()
  | Some (n, ds) ->
      addb "inner_init"
        [ Instr.Mov { dst = reg inner_counter; src = im 0 } ]
        (Instr.Jmp (lbl "inner_head"));
      addb "inner_head"
        [ Instr.Cmp
            { op = Opcode.Lt; dst = reg scratch; a = rr inner_counter;
              b = im n };
        ]
        (Instr.Br
           { src = reg scratch;
             if_true = lbl (first_of "i" ds "inner_latch");
             if_false = lbl "latch" });
      diamond_blocks "i" ds "inner_latch";
      addb "inner_latch"
        [ Instr.Alu
            { op = Opcode.Add; dst = reg inner_counter;
              a = rr inner_counter; b = im 1 };
        ]
        (Instr.Jmp (lbl "inner_head")));
  addb "latch"
    [ Instr.Alu { op = Opcode.Add; dst = reg counter; a = rr counter; b = im 1 } ]
    (Instr.Jmp (lbl "head"));
  addb "end"
    [ Instr.Out (rr 1); Instr.Out (rr 2); Instr.Out (rr 3); Instr.Out (rr 4) ]
    Instr.Halt;
  let program = Program.make ~entry:(lbl "entry") (List.rev !blocks) in
  let descr =
    Format.asprintf "diamonds=%d%s iters=%d demand=%b"
      (List.length plan.p_outer)
      (match plan.p_inner with
      | None -> ""
      | Some (n, ds) -> Format.asprintf "+%d(inner x%d)" (List.length ds) n)
      plan.p_iters plan.p_demand
  in
  {
    plan = Some plan;
    program;
    mem_data = plan.p_mem;
    demand = plan.p_demand;
    descr;
  }

let handmade ?(demand = false) ?(mem_data = []) ~descr program =
  { plan = None; program; mem_data; demand; descr }

let num_diamonds t =
  match t.plan with
  | None -> 0
  | Some p ->
      List.length p.p_outer
      + (match p.p_inner with Some (_, ds) -> List.length ds | None -> 0)

(* ---------- generation ---------- *)

let gen_operand st =
  if QCheck.Gen.bool st then rr (QCheck.Gen.oneofl data_regs st)
  else im (QCheck.Gen.int_range (-3) 9 st)

let gen_alu_op st =
  QCheck.Gen.oneofl
    [ Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.And; Opcode.Or; Opcode.Xor ]
    st

(* Division divisors must cover the whole fault-recovery spectrum:
   registers (value unknown until runtime, the case the small-pool bias
   of the historical generator never emitted), immediates, and an
   occasional literal zero (a certain divide fault). *)
let gen_divisor st =
  match QCheck.Gen.int_bound 5 st with
  | 0 -> im 0
  | 1 | 2 -> rr (QCheck.Gen.oneofl data_regs st)
  | _ -> gen_operand st

let mem_mask shape st =
  if QCheck.Gen.float_bound_inclusive 1.0 st < shape.oob_prob then 511
  else shape.alias_mask land 511

(* One random straight-line operation (as a short op sequence: memory
   accesses come with their address computation). Loads/stores index off
   the single data structure at [base]; the index is usually masked to
   [shape.alias_mask], but occasionally ranges over demand pages and,
   rarely, out of range (fatal faults). Division can fault too. *)
let gen_op shape st =
  let dreg st = QCheck.Gen.oneofl data_regs st in
  let alu st =
    [ Instr.Alu
        { op = gen_alu_op st; dst = reg (dreg st); a = gen_operand st;
          b = gen_operand st };
    ]
  and mov st = [ Instr.Mov { dst = reg (dreg st); src = gen_operand st } ]
  and load st =
    [
      Instr.Alu
        { op = Opcode.And; dst = reg addr_reg; a = rr (dreg st);
          b = im (mem_mask shape st) };
      Instr.Load { dst = reg (dreg st); base = reg addr_reg; off = 0 };
    ]
  and store st =
    [
      Instr.Alu
        { op = Opcode.And; dst = reg addr_reg; a = rr (dreg st);
          b = im (mem_mask shape st) };
      Instr.Store { src = reg (dreg st); base = reg addr_reg; off = 0 };
    ]
  and div st =
    [ Instr.Alu
        { op = Opcode.Div; dst = reg (dreg st); a = gen_operand st;
          b = gen_divisor st };
    ]
  and cmp st =
    [ Instr.Cmp
        { op = QCheck.Gen.oneofl [ Opcode.Lt; Opcode.Eq; Opcode.Ge ] st;
          dst = reg (dreg st); a = gen_operand st; b = gen_operand st };
    ]
  and out st = [ Instr.Out (gen_operand st) ] in
  let w_div =
    int_of_float (Float.round (shape.fault_prob *. 10.)) in
  let cases =
    List.filter
      (fun (w, _) -> w > 0)
      [ (3, alu); (1, mov); (2, load); (1, store); (w_div, div); (1, cmp);
        (1, out) ]
  in
  QCheck.Gen.frequency cases st

let gen_ops shape n st = List.concat (List.init n (fun _ -> gen_op shape st))

let gen_diamond shape st =
  {
    d_pre = gen_ops shape (QCheck.Gen.int_bound 2 st) st;
    d_cmp = QCheck.Gen.oneofl [ Opcode.Lt; Opcode.Ne; Opcode.Ge ] st;
    d_cmp_reg = QCheck.Gen.oneofl data_regs st;
    d_cmp_operand = gen_operand st;
    d_true = gen_ops shape (1 + QCheck.Gen.int_bound (max 0 (shape.max_arm_ops - 1)) st) st;
    d_false = gen_ops shape (1 + QCheck.Gen.int_bound (max 0 (shape.max_arm_ops - 1)) st) st;
    d_join = gen_ops shape (QCheck.Gen.int_bound 1 st) st;
  }

let gen_plan shape st =
  let ndiamonds = 1 + QCheck.Gen.int_bound (max 0 (shape.max_diamonds - 1)) st in
  let iters = 2 + QCheck.Gen.int_bound (max 0 (shape.max_iters - 2)) st in
  let inner =
    if shape.nesting >= 2 && QCheck.Gen.bool st then
      Some
        ( 1 + QCheck.Gen.int_bound 2 st,
          List.init (1 + QCheck.Gen.int_bound 1 st) (fun _ ->
              gen_diamond shape st) )
    else None
  in
  {
    p_iters = iters;
    p_outer = List.init ndiamonds (fun _ -> gen_diamond shape st);
    p_inner = inner;
    p_init =
      [
        (1, QCheck.Gen.int_bound 20 st); (2, QCheck.Gen.int_bound 20 st);
        (3, 1); (4, 2);
      ];
    p_mem = List.init 64 (fun k -> (k, QCheck.Gen.int_range (-20) 40 st));
    p_demand =
      (match shape.demand with
      | `On -> true
      | `Off -> false
      | `Random -> QCheck.Gen.bool st);
  }

let gen shape st = build (gen_plan shape st)

(* ---------- shrinking ---------- *)

let shrink_ops = QCheck.Shrink.list_spine

let shrink_diamond (d : diamond) yield =
  shrink_ops d.d_pre (fun l -> yield { d with d_pre = l });
  shrink_ops d.d_true (fun l -> yield { d with d_true = l });
  shrink_ops d.d_false (fun l -> yield { d with d_false = l });
  shrink_ops d.d_join (fun l -> yield { d with d_join = l })

let shrink_plan (p : plan) yield =
  (* structural candidates first (drop whole loops/diamonds), then trip
     counts, then per-op candidates — the greedy minimizer takes the
     first failing candidate, so order is a descent strategy *)
  (match p.p_inner with
  | Some _ -> yield { p with p_inner = None }
  | None -> ());
  QCheck.Shrink.list_spine p.p_outer (fun ds -> yield { p with p_outer = ds });
  (match p.p_inner with
  | Some (n, ds) ->
      QCheck.Shrink.list_spine ds (fun ds' ->
          yield { p with p_inner = Some (n, ds') });
      QCheck.Shrink.int n (fun n' -> yield { p with p_inner = Some (n', ds) })
  | None -> ());
  QCheck.Shrink.int p.p_iters (fun n -> yield { p with p_iters = n });
  QCheck.Shrink.list_elems shrink_diamond p.p_outer (fun ds ->
      yield { p with p_outer = ds });
  match p.p_inner with
  | Some (n, ds) ->
      QCheck.Shrink.list_elems shrink_diamond ds (fun ds' ->
          yield { p with p_inner = Some (n, ds') })
  | None -> ()

let shrink t yield =
  match t.plan with
  | None -> ()
  | Some p -> shrink_plan p (fun p' -> yield (build p'))

let pp g = Format.asprintf "%s@.%a" g.descr Program.pp g.program

let arb ?(shape = default_shape) () =
  QCheck.make ~print:pp ~shrink (gen shape)

(* ---------- historical interface ---------- *)

let gen_program st = gen default_shape st
let arb_program = arb ()
let pp_gprog = pp

let make_mem g =
  let mem =
    if g.demand then Memory.create_demand ~size:512 ~unmapped:(128, 384)
    else Memory.create ~size:512
  in
  List.iter (fun (a, v) -> Memory.poke mem a v) g.mem_data;
  mem

let regs = [ (reg base, 0) ]

let to_dsl ?(name = "gen") g =
  {
    Psb_workloads.Dsl.name;
    description = g.descr;
    program = g.program;
    regs;
    make_mem = (fun () -> make_mem g);
  }
