let parse_env name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Some n
      | None ->
          Printf.eprintf "[psb] ignoring malformed %s=%S (want an integer)\n%!"
            name s;
          None)

let seed =
  lazy
    (let s =
       match parse_env "PSB_QCHECK_SEED" with
       | Some n -> n
       | None -> (
           match parse_env "QCHECK_SEED" with
           | Some n -> n
           | None ->
               Random.self_init ();
               Random.int 1_000_000_000)
     in
     Printf.eprintf "[psb] qcheck seed: %d (replay: PSB_QCHECK_SEED=%d)\n%!" s s;
     s)

let value () = Lazy.force seed
let rand () = Random.State.make [| value () |]
