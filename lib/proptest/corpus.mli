(** Replayable counterexample corpus.

    Each counterexample is one [.psbasm] file: a header of [# key: value]
    comment lines (description, demand-paging flag, initial memory image,
    the failing stage, the seed that found it) followed by the program in
    {!Psb_isa.Asm} syntax. The assembler ignores [#] comments, so the
    whole file parses as a program with any assembler — the metadata only
    matters to the replayer. Files under [test/corpus/] are replayed by
    the tier-1 suite on every [dune runtest], forever. *)

val save :
  dir:string ->
  ?seed:int ->
  stage:string ->
  detail:string ->
  Gen.t ->
  string
(** Write one counterexample; the file name is content-addressed
    ([cx-<digest>.psbasm]), so re-finding a known bug never duplicates an
    entry. Creates [dir] if missing. Returns the path written. *)

val load : string -> (Gen.t, string) result
(** Parse one corpus file back into a (handmade, non-shrinking)
    generated program. *)

val load_dir : string -> (string * (Gen.t, string) result) list
(** All [.psbasm] files in a directory, sorted by name. Empty if the
    directory does not exist. *)
