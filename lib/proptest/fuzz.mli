(** Sharded fuzzing campaigns over the pipeline differential.

    Trials are numbered [0 .. trials-1]; trial [i] derives its program
    from [Random.State.make [| magic; seed; i |]], so any counterexample
    replays from [(seed, i)] alone regardless of job count or sharding.
    Failing programs are greedily minimized through {!Gen.shrink} before
    being reported. *)

type config = {
  trials : int;
  seed : int;
  shape : Gen.shape;
  inject : Inject.t option;
  shrink : bool;
  max_shrink_steps : int;
      (** bound on accepted shrink steps (each step re-runs the whole
          differential on every candidate until one fails) *)
  max_counterexamples : int;  (** stop the campaign early at this many *)
}

val default : config
(** 200 trials, seed 0, {!Gen.default_shape}, no injection, shrinking
    on (1000 steps), stop after 5 counterexamples. *)

type counterexample = {
  cx_trial : int;  (** replay: same seed + this trial index *)
  cx_stage : string;
  cx_detail : string;
  cx_program : Gen.t;  (** minimized *)
  cx_shrink_steps : int;
}

type outcome = {
  tested : int;
  counterexamples : counterexample list;  (** in trial order *)
  wall_s : float;  (** campaign wall-clock, batching and sharding included *)
  stage_seconds : (string * float) list;
      (** cumulative per-stage seconds summed across all trials, largest
          first — {!Diff.check}'s buckets plus [gen] and [shrink]. Under a
          pool this is cross-domain CPU time, so it can exceed [wall_s]. *)
}

val trials_per_second : outcome -> float
(** [tested /. wall_s] (0 when the campaign did no timed work). *)

val gen_trial : config -> int -> Gen.t
(** The program for one trial index (deterministic in [seed] and index). *)

val minimize : config -> Gen.t -> Diff.failure -> Gen.t * Diff.failure * int
(** Greedy descent: repeatedly take the first shrink candidate that
    still fails the differential, until a fixpoint or the step bound.
    Returns the minimized program, its (possibly different) failure, and
    the steps taken. *)

val run :
  ?pool:Psb_parallel.Pool.t ->
  ?on_progress:(tested:int -> found:int -> unit) ->
  config ->
  outcome
(** Run the campaign, sharding trials across [pool] when given (batched,
    so the early-stop bound is respected without running the full trial
    count). A trial that crashes the harness itself is reported as a
    counterexample at stage [harness]. *)

val limits_fleet :
  ?n:int -> ?shape:Gen.shape -> seed:int -> unit -> Psb_eval.Limits.row list
(** The generator fleet as an ILP limit study: [n] (default 8) random
    programs viewed as workloads through {!Gen.to_dsl}, analyzed with
    {!Psb_eval.Limits.analyze} — block, oracle and value-prediction
    regimes per program. *)
