(** Deliberate miscompile injection — the fuzzer's own fire drill.

    A bug kind is applied to compiled {!Psb_machine.Pcode} after the
    scheduler has run, producing exactly the class of silent miscompile
    the differential driver and the static verifier exist to catch. CI
    runs [psb fuzz] with an injection enabled and requires a minimized
    counterexample, proving the harness end-to-end. *)

module Pcode = Psb_machine.Pcode

type t =
  | Sched_order
      (** Swap the first adjacent pair of exit-free bundles in each
          region: issues operations out of dependence order while
          keeping the code structurally well-formed. *)

val all : t list
val name : t -> string
val of_name : string -> (t, string) result
val of_env : unit -> t option
(** Reads [PSB_INJECT_BUG] (e.g. [sched-order]); [None] when unset.
    @raise Invalid_argument on an unknown kind name. *)

val apply : t -> Pcode.t -> Pcode.t
(** Pure: the input code (which may be shared via the compile cache) is
    never mutated. Regions with no swappable bundle pair pass through
    unchanged. *)
