module Pcode = Psb_machine.Pcode

type t = Sched_order

let all = [ Sched_order ]
let name Sched_order = "sched-order"

let of_name s =
  match s with
  | "sched-order" -> Ok Sched_order
  | _ ->
      Error
        (Printf.sprintf "unknown injected bug %S (known: %s)" s
           (String.concat ", " (List.map name all)))

let of_env () =
  match Sys.getenv_opt "PSB_INJECT_BUG" with
  | None | Some "" -> None
  | Some s -> (
      match of_name s with
      | Ok t -> Some t
      | Error m -> invalid_arg ("PSB_INJECT_BUG: " ^ m))

let has_exit bundle =
  List.exists (function Pcode.Exit _ -> true | Pcode.Op _ -> false) bundle

let swap_first_pair (r : Pcode.region) =
  let code = r.Pcode.code in
  let n = Array.length code in
  let rec find k =
    if k + 1 >= n then None
    else if
      code.(k) <> [] && code.(k + 1) <> []
      && (not (has_exit code.(k)))
      && not (has_exit code.(k + 1))
    then Some k
    else find (k + 1)
  in
  match find 0 with
  | None -> r
  | Some k ->
      let code = Array.copy code in
      let tmp = code.(k) in
      code.(k) <- code.(k + 1);
      code.(k + 1) <- tmp;
      { r with Pcode.code }

let apply Sched_order (p : Pcode.t) =
  (* rebuild the record directly: [Pcode.make] would re-validate, and the
     whole point is emitting code the scheduler never would *)
  { p with Pcode.regions = List.map swap_first_pair p.Pcode.regions }
