(** Regeneration of every table and figure in the paper's evaluation
    (§4), plus the ablations discussed in the text. Each function returns
    typed rows and has a matching pretty-printer, so the bench harness and
    the tests consume the same data. *)

open Psb_compiler

(* ----- Table 2: benchmark programs ----- *)

type table2_row = {
  t2_name : string;
  t2_lines : int;  (** static instruction count — the paper's "Lines" *)
  t2_scalar_cycles : int;  (** the paper's "R3000 Cycles" via pixie *)
}

val table2 : Harness.t -> table2_row list
val pp_table2 : Format.formatter -> table2_row list -> unit

(* ----- Table 3: prediction accuracy of successive branches ----- *)

type table3_row = { t3_name : string; t3_acc : float array (* index 0 = depth 1 *) }

val table3 : Harness.t -> table3_row list
val pp_table3 : Format.formatter -> table3_row list -> unit

(* ----- Figures 6 and 7: speedups per model ----- *)

type speedup_table = {
  models : Model.t list;
  rows : (string * float list) list;  (** workload → speedup per model *)
  geomean : float list;
}

val figure6 : Harness.t -> speedup_table
(** Restricted models: global, squashing, trace-sched, region-sched. *)

val figure7 : Harness.t -> speedup_table
(** Predicating models: global, boosting, trace-pred, region-pred. *)

val pp_speedups : title:string -> Format.formatter -> speedup_table -> unit

(* ----- Rival out-of-order backend ----- *)

type rob_row = {
  r_name : string;
  r_scalar_cycles : int;
  r_rob_cycles : int;
  r_speedup : float;
  r_mispredicts : int;
  r_squashed : int;
  r_identical : bool;
      (** outcome, output, final registers and handled-fault count all
          match the scalar reference — the architectural-equivalence
          witness, re-checked on every report *)
}

type rob_table = { rob_rows : rob_row list; rob_geomean : float }

val rob_rival : Harness.t -> rob_table
(** The dynamic alternative ({!Psb_machine.Rob_sim}) on the harness
    machine model: per-workload cycles vs the scalar reference, with the
    speculation-waste counters. Kept out of {!speedup_table} on purpose —
    the ROB runs the {e scalar} program, so it has no compile model
    column. *)

val pp_rob : Format.formatter -> rob_table -> unit

(* ----- Figure 8: full-issue machines × speculation depth ----- *)

type fig8_cell = { issue : int; conds : int; speedup : float }

type fig8_row = { f8_name : string; cells : fig8_cell list }

val figure8 :
  ?issues:int list -> ?cond_depths:int list -> Harness.t -> fig8_row list
(** Region predicating on fully duplicated machines (default 2/4/8-issue)
    with speculation past 1/2/4/8 conditions. *)

val pp_figure8 : Format.formatter -> fig8_row list -> unit

(* ----- Ablations ----- *)

type shadow_row = {
  sh_name : string;
  sh_single_cycles : int;
  sh_infinite_cycles : int;
  sh_conflicts : int;
  sh_loss : float;  (** single/infinite - 1; paper fn.1 reports 0–1% *)
}

val shadow_ablation : Harness.t -> shadow_row list
(** Footnote 1: single vs infinite shadow registers (machine-measured). *)

val pp_shadow : Format.formatter -> shadow_row list -> unit

type validation_row = {
  v_name : string;
  v_model : string;
  v_estimated : int;
  v_measured : int;
}

val validation : Harness.t -> validation_row list
(** Trace-driven estimates vs machine-measured cycles for the executable
    models — the accounting cross-check. *)

val pp_validation : Format.formatter -> validation_row list -> unit

type counter_row = {
  c_name : string;
  c_vector : float;  (** trace predicating, vector predicates *)
  c_counter : float;  (** counter-type predicates: sequential Setc *)
}

val counter_ablation : Harness.t -> counter_row list
(** §4.2.1: vector vs counter predicate representation — the vector form
    permits reordering of condition-set instructions. *)

val pp_counter : Format.formatter -> counter_row list -> unit

type btb_row = {
  b_name : string;
  b_free : int;  (** measured cycles under the zero-penalty BTB assumption *)
  b_miss1 : int;  (** with a one-cycle redirect on every region transition *)
}

val btb_ablation : Harness.t -> btb_row list
(** The paper's optimism check: region transitions cost 0 vs 1 cycle —
    "this optimistic assumption increases the evaluated performance a few
    percent". *)

val pp_btb : Format.formatter -> btb_row list -> unit

type dup_row = {
  d_name : string;
  d_merged : float;  (** region predicating, joins merged (simple heuristic) *)
  d_split : float;  (** joins duplicated to avoid commit dependences *)
}

val dup_ablation : Harness.t -> dup_row list
(** §4.2.2: the paper attributes region predicating's occasional dips
    below trace predicating to commit dependences at merged joins, and
    duplicates join blocks when beneficial; this compares both policies. *)

val pp_dup : Format.formatter -> dup_row list -> unit

val related_work : Harness.t -> speedup_table
(** §2.2's mechanism spectrum, quantified: guarded (pipeline-only
    speculative state) → squashing → boosting (trace shadow buffering) →
    region predicating (unconstrained). *)

type size_row = {
  s_name : string;
  s_scalar : int;  (** static scalar instructions (Table 2 lines) *)
  s_by_model : (string * int) list;  (** model → static slots after compile *)
}

val code_growth : Harness.t -> size_row list
(** Code-size cost of speculation support (§2.2 notes boosting's recovery
    code doubles the original; region formation grows code by join and
    tail duplication instead). Static slot counts per model. *)

val pp_size : Format.formatter -> size_row list -> unit

type unroll_row = {
  u_name : string;
  u_by_factor : (int * float) list;  (** unroll factor → speedup, 8-issue *)
}

val unroll_ablation : ?factors:int list -> Harness.t -> unroll_row list
(** The paper's named future work: loop unrolling to feed wide machines
    ("speculative execution past eight conditions or eight duplications of
    resources produces little impact ... other compilation techniques
    which expose more parallelism (e.g. loop unrolling) may be
    required"). Region predicating on the 8-issue full machine with
    innermost loops unrolled 1/2/4 times. *)

val pp_unroll : Format.formatter -> unroll_row list -> unit

type sweep_row = { sw_taken_prob : float; sw_trace : float; sw_region : float }

val predictability_sweep :
  ?pool:Psb_parallel.Pool.t -> ?probs:float list -> unit -> sweep_row list
(** Synthetic diamond chains: region- vs trace-predicating speedup as
    branch predictability varies — the mechanism behind the paper's
    per-benchmark Figure 7 pattern. Each probability point is an
    independent task on [pool] when given (the per-point harnesses stay
    sequential so nothing nests). *)

val pp_sweep : Format.formatter -> sweep_row list -> unit
