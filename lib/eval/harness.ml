open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Pool = Psb_parallel.Pool
open Psb_compiler
open Psb_workloads

type entry = {
  workload : Dsl.t;
  scalar : Interp.result;
  profile : Psb_cfg.Branch_predict.t;
}

type t = {
  machine : Machine_model.t;
  entries : entry list;
  pool : Pool.t option;
  cache : Driver.compiled Compile_cache.t;
  verify : bool;
}

let profile_workload (w : Dsl.t) =
  let scalar, profile =
    Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
  in
  (match scalar.Interp.outcome with
  | Interp.Halted -> ()
  | o ->
      failwith
        (Format.asprintf "Harness.create: %s did not halt (%a)" w.Dsl.name
           Interp.pp_outcome o));
  { workload = w; scalar; profile }

let create ?(machine = Machine_model.base) ?(workloads = Suite.all) ?pool
    ?(verify = true) () =
  let entries =
    match pool with
    | Some p -> Pool.map_exn p profile_workload workloads
    | None -> List.map profile_workload workloads
  in
  { machine; entries; pool; cache = Compile_cache.create (); verify }

let jobs t = match t.pool with Some p -> Pool.jobs p | None -> 1

let par_map t f xs =
  match t.pool with Some p -> Pool.map_exn p f xs | None -> List.map f xs

let cache_stats t = Compile_cache.stats t.cache

let scalar_cycles e = e.scalar.Interp.cycles

let compile t ?machine ?(single_shadow = true) ?(avoid_commit_deps = false)
    model e =
  let machine = Option.value machine ~default:t.machine in
  Driver.compile ~cache:t.cache ~single_shadow ~avoid_commit_deps
    ~verify:t.verify ~model ~machine ~profile:e.profile
    e.workload.Dsl.program

let estimated_cycles t ?machine model e =
  let compiled = compile t ?machine model e in
  Driver.estimate_cycles compiled e.workload.Dsl.program
    ~block_trace:e.scalar.Interp.block_trace

let measured t ?(single_shadow = true) ?regfile_mode ?pred_kernel ?events model
    e =
  let compiled = compile t ~single_shadow model e in
  let mem = e.workload.Dsl.make_mem () in
  let res =
    Driver.run_vliw ?regfile_mode ?pred_kernel ?events compiled
      ~regs:e.workload.Dsl.regs ~mem
  in
  if
    not
      (res.Vliw_sim.outcome = Interp.Halted
      && res.Vliw_sim.output = e.scalar.Interp.output)
  then
    failwith
      (Format.asprintf "Harness.measured: %s/%s diverged from scalar"
         e.workload.Dsl.name model.Model.name);
  res

let speedup ~scalar ~cycles = float_of_int scalar /. float_of_int cycles

let geomean = function
  | [] -> 1.0 (* the empty product: total, and the unit of aggregation *)
  | xs ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
           /. float_of_int (List.length xs))
