(** Benchmark regression gating: compare a fresh Bechamel run against a
    recorded [psb-bechamel-v1] document (the [BENCH_*.json] files checked
    into the repo root) and fail past a configurable slowdown threshold —
    so the perf trajectory is a gate, not just an artifact.

    Both sides of the comparison are the same schema ([bench bechamel
    --json] output), so a baseline can be re-recorded by redirecting that
    command; [bench --baseline FILE.json] then runs exactly the groups
    the baseline names and exits non-zero on a regression or a missing
    benchmark. Timings are noisy — thresholds are meant to be generous
    (CI uses hundreds of percent to catch order-of-magnitude cliffs, not
    single-digit drift). *)

module Json = Psb_obs.Json

type doc
(** A parsed [psb-bechamel-v1] document: benchmark name → ns/run. *)

val of_json : Json.t -> (doc, string) result
(** Checks the ["schema"] marker and the group/result shape; the error
    says what was malformed. *)

val of_string : string -> (doc, string) result
(** {!Json.parse} then {!of_json}. *)

val groups : doc -> string list
(** Group names, in document order — the groups a gated run must
    re-measure. *)

type row = {
  name : string;
  baseline_ns : float;
  current_ns : float option;  (** [None]: missing from the current run *)
  delta_pct : float;  (** (current - baseline) / baseline × 100; [nan]
                          when missing *)
  regressed : bool;
}

type report = {
  threshold_pct : float;
  rows : row list;  (** baseline order *)
}

val compare_docs : threshold_pct:float -> baseline:doc -> current:doc -> report
(** A row regresses when [current_ns > baseline_ns × (1 + threshold/100)]
    or when the benchmark vanished from the current run. Benchmarks only
    present in the current run are ignored (new benchmarks are not
    regressions). *)

val ok : report -> bool
(** No regressed rows. *)

val pp : Format.formatter -> report -> unit
(** Per-benchmark delta table plus a PASS/FAIL summary line. *)

val to_json : report -> Json.t
(** [{"threshold_pct", "ok", "rows": [{"name", "baseline_ns",
    "current_ns", "delta_pct", "regressed"}...]}]. *)
