open Psb_isa
open Psb_workloads

type row = {
  name : string;
  dyn_instrs : int;
  block_ipc : float;
  oracle_ipc : float;
  value_ipc : float;
  headroom : float;
  value_headroom : float;
}

(* Latencies of the oracle machine match the base machine: loads 2,
   everything else 1. *)
let latency = function Instr.Load _ -> 2 | _ -> 1

(* One dataflow-schedule accumulator. *)
type sched_state = {
  mutable reg_ready : int array;
  addr_ready : (int, int) Hashtbl.t; (* per-address last store completion *)
  mutable barrier : int; (* control barrier (block-limited regime only) *)
  mutable makespan : int;
  mutable count : int;
}

let fresh_state () =
  {
    reg_ready = Array.make 64 0;
    addr_ready = Hashtbl.create 64;
    barrier = 0;
    makespan = 0;
    count = 0;
  }

let slot st r =
  let i = Reg.index r in
  if i >= Array.length st.reg_ready then begin
    let a = Array.make (max (i + 1) (2 * Array.length st.reg_ready)) 0 in
    Array.blit st.reg_ready 0 a 0 (Array.length st.reg_ready);
    st.reg_ready <- a
  end;
  i

(* Earliest issue = operands ready (+ control barrier when enabled, with
   perfect renaming and memory disambiguation otherwise). Returns the
   completion cycle.

   [value_predict] adds the third regime: a perfect value-prediction
   oracle for loads and ALU results (after Mitrevski–Gušev). Consumers
   of a predicted result never wait for it — the dataflow edge out of
   the producer is broken (its defs become ready immediately) and a
   predicted load also skips the store-to-load memory dependence. The
   producer itself still occupies the schedule (prediction must be
   verified), so [makespan] keeps counting its completion. Every
   constraint in this regime is a subset of the unconstrained oracle's,
   which guarantees [value_ipc >= oracle_ipc] pointwise. *)
let issue ~control_barriers ?(value_predict = false) st op addr =
  st.count <- st.count + 1;
  let predicted =
    value_predict
    && match op with Instr.Load _ | Instr.Alu _ -> true | _ -> false
  in
  let t0 =
    List.fold_left (fun acc r -> max acc st.reg_ready.(slot st r)) 0
      (Instr.uses op)
  in
  let t0 =
    match (op, addr) with
    | Instr.Load _, Some a when not predicted ->
        max t0 (Option.value (Hashtbl.find_opt st.addr_ready a) ~default:0)
    | _ -> t0
  in
  let t0 = if control_barriers then max t0 st.barrier else t0 in
  let done_at = t0 + latency op in
  let def_ready = if predicted then 0 else done_at in
  List.iter (fun r -> st.reg_ready.(slot st r) <- def_ready) (Instr.defs op);
  (match (op, addr) with
  | Instr.Store _, Some a -> Hashtbl.replace st.addr_ready a done_at
  | _ -> ());
  st.makespan <- max st.makespan done_at;
  done_at

(* Replay the dynamic block trace with a tiny fault-tolerant evaluator
   (addresses are needed for the disambiguation oracle). *)
let analyze (w : Dsl.t) =
  (* decode once: the traced reference run and the trace replay below
     both walk the flat form instead of re-finding blocks per label *)
  let decoded = Decoded.of_program w.Dsl.program in
  let res =
    Interp.run ~decoded ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program
  in
  let block_limited = fresh_state ()
  and oracle = fresh_state ()
  and value = fresh_state () in
  let block_end = ref 0 in
  let mem = w.Dsl.make_mem () in
  let regs = Array.make 64 0 in
  List.iter
    (fun (r, v) -> if Reg.index r < Array.length regs then regs.(Reg.index r) <- v)
    w.Dsl.regs;
  let rr r = if Reg.index r < Array.length regs then regs.(Reg.index r) else 0 in
  let operand = function Operand.Reg r -> rr r | Operand.Imm i -> i in
  let wr r v = if Reg.index r < Array.length regs then regs.(Reg.index r) <- v in
  let mem_read a =
    match Memory.read mem a with
    | v -> v
    | exception Memory.Fault f ->
        if Memory.is_fatal f then 0
        else begin
          ignore (Memory.handle_fault mem f);
          try Memory.read mem a with Memory.Fault _ -> 0
        end
  in
  let mem_write a v =
    match Memory.write mem a v with
    | () -> ()
    | exception Memory.Fault f ->
        if not (Memory.is_fatal f) then begin
          ignore (Memory.handle_fault mem f);
          try Memory.write mem a v with Memory.Fault _ -> ()
        end
  in
  let step op =
    let addr =
      match op with
      | Instr.Load { base; off; _ } | Instr.Store { base; off; _ } ->
          Some (rr base + off)
      | _ -> None
    in
    block_end := max !block_end (issue ~control_barriers:true block_limited op addr);
    ignore (issue ~control_barriers:false oracle op addr);
    ignore (issue ~control_barriers:false ~value_predict:true value op addr);
    match op with
    | Instr.Alu { op = aop; dst; a; b } -> (
        match Opcode.eval_alu aop (operand a) (operand b) with
        | v -> wr dst v
        | exception Opcode.Arithmetic_fault _ -> wr dst 0)
    | Instr.Mov { dst; src } -> wr dst (operand src)
    | Instr.Cmp { op = cop; dst; a; b } ->
        wr dst (if Opcode.eval_cmp cop (operand a) (operand b) then 1 else 0)
    | Instr.Load { dst; _ } -> wr dst (mem_read (Option.get addr))
    | Instr.Store { src; _ } -> mem_write (Option.get addr) (rr src)
    | Instr.Setc _ | Instr.Out _ | Instr.Nop -> ()
  in
  List.iter
    (fun label ->
      let bi = Decoded.block_index decoded label in
      let hi = decoded.Decoded.op_bounds.(bi + 1) in
      for i = decoded.Decoded.op_bounds.(bi) to hi - 1 do
        step decoded.Decoded.ops.(i)
      done;
      (* the block's branch resolves here: downstream instructions of the
         block-limited regime cannot start earlier *)
      block_limited.barrier <- !block_end)
    res.Interp.block_trace;
  let ipc st =
    if st.makespan = 0 then 0.0
    else float_of_int st.count /. float_of_int st.makespan
  in
  {
    name = w.Dsl.name;
    dyn_instrs = block_limited.count;
    block_ipc = ipc block_limited;
    oracle_ipc = ipc oracle;
    value_ipc = ipc value;
    headroom = ipc oracle /. max (ipc block_limited) 1e-9;
    value_headroom = ipc value /. max (ipc oracle) 1e-9;
  }

let analyze_suite ?(workloads = Suite.all) () = List.map analyze workloads

let pp ppf rows =
  Format.fprintf ppf
    "@[<v>ILP limit study (oracle dataflow schedule of the dynamic trace)@,";
  Format.fprintf ppf "%-10s %10s %12s %12s %12s %10s %10s@," "Program"
    "dyn ops" "block IPC" "oracle IPC" "value IPC" "headroom" "value+";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10d %12.2f %12.2f %12.2f %9.1fx %9.1fx@,"
        r.name r.dyn_instrs r.block_ipc r.oracle_ipc r.value_ipc r.headroom
        r.value_headroom)
    rows;
  Format.fprintf ppf "@]"
