(** Machine-readable (JSON) serialisation of the experiment results —
    the schema behind [bench/main.exe --json] and future benchmark
    trajectories.

    Document shape:
    {v
    { "schema_version": 4,
      "experiments": {
        "table2":     [ {"name", "lines", "scalar_cycles"} ... ],
        "table3":     [ {"name", "accuracy": [..8 floats..]} ... ],
        "fig6" / "fig7" / "related":
                      { "models": [..], "rows": [{"name", "speedups"}..],
                        "geomean": [..] },
        "fig8":       [ {"name", "cells": [{"issue","conds","speedup"}..]} ],
        "shadow":     [ {"name", "single_cycles", "infinite_cycles",
                         "conflicts", "loss"} ... ],
        "validation": [ {"name", "model", "estimated", "measured"} ... ],
        "counter":    [ {"name", "vector", "counter"} ... ],
        "btb":        [ {"name", "free", "miss1"} ... ],
        "dup":        [ {"name", "merged", "split"} ... ],
        "size":       [ {"name", "scalar", "by_model": {..}} ... ],
        "unroll":     [ {"name", "by_factor": [{"factor","speedup"}..]} ],
        "sweep":      [ {"taken_prob", "trace", "region"} ... ],
        "limits":     [ {"name", "dyn_instrs", "block_ipc", "oracle_ipc",
                         "headroom"} ... ],
        "hwcost":     { ... the Hwcost.report fields ... },
        "rob":        { "rows": [{"name", "scalar_cycles", "rob_cycles",
                         "speedup", "mispredicts", "squashed",
                         "architecturally_identical"}..],
                        "geomean" } },
      "runtime":      (optional, only with [~runtime:true])
                      { "jobs", "domains": [{"domain","tasks",
                        "busy_seconds"}..],
                        "compile_cache": {"hits","misses","entries"},
                        "experiments_wall_seconds": {name: seconds, ..},
                        "wall_seconds",
                        "speculation": {workload:
                          {"model", "cycles", "reconciles", "commits",
                           "regions": [{"region","cycles","useful",
                           "wasted","squash_rate"}..]}, ..} } }
    v}

    Schema 3 adds the "speculation" member: per-workload speculation
    scorecards from one {!Psb_obs.Spec_profile} run of the flagship
    executable model ({!Psb_compiler.Model.region_pred}) with the
    structured event log attached.

    Schema 4 adds the "rob" experiment (the rival out-of-order backend,
    {!Psb_machine.Rob_sim}, vs the scalar reference) and the four
    [rob_*] cost columns inside "hwcost".

    Everything under "experiments" is deterministic — byte-identical at
    any [-j] level. "runtime" is the sole nondeterministic member
    (wall-clock, per-domain load and cache traffic depend on
    scheduling); strip it before comparing documents.

    A golden test round-trips the document through {!Psb_obs.Json.parse}
    so the schema cannot drift silently. *)

module Json = Psb_obs.Json

val experiment_names : string list
(** Every name {!experiment} accepts, in canonical order. *)

val experiment : Harness.t -> string -> Json.t option
(** Run one experiment by its bench/CLI name; [None] for unknown names. *)

val all : ?names:string list -> ?runtime:bool -> Harness.t -> Json.t
(** The full document ([names] defaults to {!experiment_names});
    [~runtime:true] (default false) appends the "runtime" member with
    per-domain wall-clock and compile-cache statistics.
    @raise Invalid_argument on an unknown name. *)

val speedup_table_json : Experiments.speedup_table -> Json.t
