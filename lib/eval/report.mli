(** Machine-readable (JSON) serialisation of the experiment results —
    the schema behind [bench/main.exe --json] and future benchmark
    trajectories.

    Document shape:
    {v
    { "schema_version": 1,
      "experiments": {
        "table2":     [ {"name", "lines", "scalar_cycles"} ... ],
        "table3":     [ {"name", "accuracy": [..8 floats..]} ... ],
        "fig6" / "fig7" / "related":
                      { "models": [..], "rows": [{"name", "speedups"}..],
                        "geomean": [..] },
        "fig8":       [ {"name", "cells": [{"issue","conds","speedup"}..]} ],
        "shadow":     [ {"name", "single_cycles", "infinite_cycles",
                         "conflicts", "loss"} ... ],
        "validation": [ {"name", "model", "estimated", "measured"} ... ],
        "counter":    [ {"name", "vector", "counter"} ... ],
        "btb":        [ {"name", "free", "miss1"} ... ],
        "dup":        [ {"name", "merged", "split"} ... ],
        "size":       [ {"name", "scalar", "by_model": {..}} ... ],
        "unroll":     [ {"name", "by_factor": [{"factor","speedup"}..]} ],
        "sweep":      [ {"taken_prob", "trace", "region"} ... ],
        "limits":     [ {"name", "dyn_instrs", "block_ipc", "oracle_ipc",
                         "headroom"} ... ],
        "hwcost":     { ... the Hwcost.report fields ... } } }
    v}

    A golden test round-trips the document through {!Psb_obs.Json.parse}
    so the schema cannot drift silently. *)

module Json = Psb_obs.Json

val experiment_names : string list
(** Every name {!experiment} accepts, in canonical order. *)

val experiment : Harness.t -> string -> Json.t option
(** Run one experiment by its bench/CLI name; [None] for unknown names. *)

val all : ?names:string list -> Harness.t -> Json.t
(** The full document ([names] defaults to {!experiment_names}).
    @raise Invalid_argument on an unknown name. *)

val speedup_table_json : Experiments.speedup_table -> Json.t
