open Psb_compiler
module Json = Psb_obs.Json
module Hwcost = Psb_machine.Hwcost

let str s = Json.String s
let flt f = Json.Float f

let speedup_table_json (t : Experiments.speedup_table) =
  Json.Obj
    [
      ( "models",
        Json.List (List.map (fun (m : Model.t) -> str m.Model.name) t.models)
      );
      ( "rows",
        Json.List
          (List.map
             (fun (name, speedups) ->
               Json.Obj
                 [
                   ("name", str name);
                   ("speedups", Json.List (List.map flt speedups));
                 ])
             t.Experiments.rows) );
      ("geomean", Json.List (List.map flt t.Experiments.geomean));
    ]

let table2_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.table2_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.t2_name);
             ("lines", Json.Int r.Experiments.t2_lines);
             ("scalar_cycles", Json.Int r.Experiments.t2_scalar_cycles);
           ])
       rows)

let table3_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.table3_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.t3_name);
             ( "accuracy",
               Json.List
                 (Array.to_list (Array.map flt r.Experiments.t3_acc)) );
           ])
       rows)

let fig8_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.fig8_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.f8_name);
             ( "cells",
               Json.List
                 (List.map
                    (fun (c : Experiments.fig8_cell) ->
                      Json.Obj
                        [
                          ("issue", Json.Int c.Experiments.issue);
                          ("conds", Json.Int c.Experiments.conds);
                          ("speedup", flt c.Experiments.speedup);
                        ])
                    r.Experiments.cells) );
           ])
       rows)

let shadow_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.shadow_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.sh_name);
             ("single_cycles", Json.Int r.Experiments.sh_single_cycles);
             ("infinite_cycles", Json.Int r.Experiments.sh_infinite_cycles);
             ("conflicts", Json.Int r.Experiments.sh_conflicts);
             ("loss", flt r.Experiments.sh_loss);
           ])
       rows)

let validation_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.validation_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.v_name);
             ("model", str r.Experiments.v_model);
             ("estimated", Json.Int r.Experiments.v_estimated);
             ("measured", Json.Int r.Experiments.v_measured);
           ])
       rows)

let counter_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.counter_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.c_name);
             ("vector", flt r.Experiments.c_vector);
             ("counter", flt r.Experiments.c_counter);
           ])
       rows)

let btb_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.btb_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.b_name);
             ("free", Json.Int r.Experiments.b_free);
             ("miss1", Json.Int r.Experiments.b_miss1);
           ])
       rows)

let dup_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.dup_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.d_name);
             ("merged", flt r.Experiments.d_merged);
             ("split", flt r.Experiments.d_split);
           ])
       rows)

let size_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.size_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.s_name);
             ("scalar", Json.Int r.Experiments.s_scalar);
             ( "by_model",
               Json.Obj
                 (List.map
                    (fun (m, slots) -> (m, Json.Int slots))
                    r.Experiments.s_by_model) );
           ])
       rows)

let unroll_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.unroll_row) ->
         Json.Obj
           [
             ("name", str r.Experiments.u_name);
             ( "by_factor",
               Json.List
                 (List.map
                    (fun (factor, speedup) ->
                      Json.Obj
                        [
                          ("factor", Json.Int factor);
                          ("speedup", flt speedup);
                        ])
                    r.Experiments.u_by_factor) );
           ])
       rows)

let sweep_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.sweep_row) ->
         Json.Obj
           [
             ("taken_prob", flt r.Experiments.sw_taken_prob);
             ("trace", flt r.Experiments.sw_trace);
             ("region", flt r.Experiments.sw_region);
           ])
       rows)

let limits_json rows =
  Json.List
    (List.map
       (fun (r : Limits.row) ->
         Json.Obj
           [
             ("name", str r.Limits.name);
             ("dyn_instrs", Json.Int r.Limits.dyn_instrs);
             ("block_ipc", flt r.Limits.block_ipc);
             ("oracle_ipc", flt r.Limits.oracle_ipc);
             ("value_ipc", flt r.Limits.value_ipc);
             ("headroom", flt r.Limits.headroom);
             ("value_headroom", flt r.Limits.value_headroom);
           ])
       rows)

let rob_json (t : Experiments.rob_table) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (r : Experiments.rob_row) ->
               Json.Obj
                 [
                   ("name", str r.Experiments.r_name);
                   ("scalar_cycles", Json.Int r.Experiments.r_scalar_cycles);
                   ("rob_cycles", Json.Int r.Experiments.r_rob_cycles);
                   ("speedup", flt r.Experiments.r_speedup);
                   ("mispredicts", Json.Int r.Experiments.r_mispredicts);
                   ("squashed", Json.Int r.Experiments.r_squashed);
                   ( "architecturally_identical",
                     Json.Bool r.Experiments.r_identical );
                 ])
             t.Experiments.rob_rows) );
      ("geomean", flt t.Experiments.rob_geomean);
    ]

let hwcost_json (r : Hwcost.report) =
  Json.Obj
    [
      ("base_transistors", Json.Int r.Hwcost.base_transistors);
      ("storage_transistors", Json.Int r.Hwcost.storage_transistors);
      ("commit_transistors", Json.Int r.Hwcost.commit_transistors);
      ("storage_overhead", flt r.Hwcost.storage_overhead);
      ("commit_overhead", flt r.Hwcost.commit_overhead);
      ("total_overhead", flt r.Hwcost.total_overhead);
      ("eval_gate_levels", Json.Int r.Hwcost.eval_gate_levels);
      ("encode_bits_region", Json.Int r.Hwcost.encode_bits_region);
      ("encode_bits_trace", Json.Int r.Hwcost.encode_bits_trace);
      ("encode_bits_srcs", Json.Int r.Hwcost.encode_bits_srcs);
      ("rob_entry_transistors", Json.Int r.Hwcost.rob_entry_transistors);
      ("rob_rename_transistors", Json.Int r.Hwcost.rob_rename_transistors);
      ("rob_cam_transistors", Json.Int r.Hwcost.rob_cam_transistors);
      ("rob_overhead", flt r.Hwcost.rob_overhead);
    ]

let experiment_names =
  [
    "table2"; "table3"; "fig6"; "fig7"; "fig8"; "related"; "shadow";
    "validation"; "counter"; "btb"; "dup"; "size"; "unroll"; "sweep";
    "limits"; "hwcost"; "rob";
  ]

let experiment (h : Harness.t) = function
  | "table2" -> Some (table2_json (Experiments.table2 h))
  | "table3" -> Some (table3_json (Experiments.table3 h))
  | "fig6" -> Some (speedup_table_json (Experiments.figure6 h))
  | "fig7" -> Some (speedup_table_json (Experiments.figure7 h))
  | "fig8" -> Some (fig8_json (Experiments.figure8 h))
  | "related" -> Some (speedup_table_json (Experiments.related_work h))
  | "shadow" -> Some (shadow_json (Experiments.shadow_ablation h))
  | "validation" -> Some (validation_json (Experiments.validation h))
  | "counter" -> Some (counter_json (Experiments.counter_ablation h))
  | "btb" -> Some (btb_json (Experiments.btb_ablation h))
  | "dup" -> Some (dup_json (Experiments.dup_ablation h))
  | "size" -> Some (size_json (Experiments.code_growth h))
  | "unroll" -> Some (unroll_json (Experiments.unroll_ablation h))
  | "sweep" ->
      Some (sweep_json (Experiments.predictability_sweep ?pool:h.Harness.pool ()))
  | "limits" -> Some (limits_json (Limits.analyze_suite ()))
  | "hwcost" -> Some (hwcost_json (Hwcost.analyze Hwcost.default))
  | "rob" -> Some (rob_json (Experiments.rob_rival h))
  | _ -> None

(* Per-workload speculation scorecards (schema 3): each workload runs
   once on the flagship executable model with the structured event log
   attached, and the folded profile is summarised per region. *)
let speculation_json (h : Harness.t) =
  let model = Model.region_pred in
  Json.Obj
    (List.map
       (fun (e : Harness.entry) ->
         let events = Psb_obs.Events.create ~capacity:(1 lsl 20) () in
         let res = Harness.measured h ~events model e in
         let prof =
           Psb_obs.Spec_profile.of_events
             ~total_cycles:res.Harness.Vliw_sim.cycles events
         in
         ( e.Harness.workload.Psb_workloads.Dsl.name,
           Json.Obj
             [
               ("model", str model.Model.name);
               ("cycles", Json.Int res.Harness.Vliw_sim.cycles);
               ( "reconciles",
                 Json.Bool (Psb_obs.Spec_profile.reconciles prof) );
               ("commits", Json.Int (Psb_obs.Spec_profile.commit_total prof));
               ( "regions",
                 Json.List
                   (List.map
                      (fun (c : Psb_obs.Spec_profile.card) ->
                        Json.Obj
                          [
                            ("region", str c.Psb_obs.Spec_profile.region);
                            ("cycles", Json.Int c.Psb_obs.Spec_profile.cycles);
                            ("useful", Json.Int c.Psb_obs.Spec_profile.useful);
                            ("wasted", Json.Int c.Psb_obs.Spec_profile.wasted);
                            ( "squash_rate",
                              flt (Psb_obs.Spec_profile.squash_rate c) );
                          ])
                      (Psb_obs.Spec_profile.cards prof)) );
             ] ))
       h.Harness.entries)

(* The "runtime" section is the one part of the document that is NOT
   deterministic (wall-clock, per-domain load, cache traffic depend on
   scheduling): consumers comparing documents across [-j] levels strip
   this member first, and the determinism tests do exactly that. *)
let runtime_json (h : Harness.t) ~wall_seconds ~per_experiment =
  let pool_stats =
    match h.Harness.pool with
    | Some p -> Psb_parallel.Pool.stats p
    | None -> [||]
  in
  let cache = Harness.cache_stats h in
  Json.Obj
    [
      ("jobs", Json.Int (Harness.jobs h));
      ( "domains",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i (s : Psb_parallel.Pool.domain_stat) ->
                  Json.Obj
                    [
                      ("domain", Json.Int i);
                      ("tasks", Json.Int s.Psb_parallel.Pool.tasks);
                      ( "busy_seconds",
                        Json.Float s.Psb_parallel.Pool.busy_seconds );
                    ])
                pool_stats)) );
      ( "compile_cache",
        Json.Obj
          [
            ("hits", Json.Int cache.Psb_compiler.Compile_cache.hits);
            ("misses", Json.Int cache.Psb_compiler.Compile_cache.misses);
            ("entries", Json.Int cache.Psb_compiler.Compile_cache.entries);
          ] );
      ( "experiments_wall_seconds",
        Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) per_experiment) );
      ("wall_seconds", Json.Float wall_seconds);
      ("speculation", speculation_json h);
    ]

let all ?(names = experiment_names) ?(runtime = false) h =
  let t0 = Unix.gettimeofday () in
  let timings = ref [] in
  let experiments =
    List.map
      (fun name ->
        let e0 = Unix.gettimeofday () in
        match experiment h name with
        | Some v ->
            timings := (name, Unix.gettimeofday () -. e0) :: !timings;
            (name, v)
        | None -> invalid_arg ("Report.all: unknown experiment " ^ name))
      names
  in
  Json.Obj
    ([
       ("schema_version", Json.Int 4);
       ("experiments", Json.Obj experiments);
     ]
    @
    if runtime then
      [
        ( "runtime",
          runtime_json h
            ~wall_seconds:(Unix.gettimeofday () -. t0)
            ~per_experiment:(List.rev !timings) );
      ]
    else [])
