(** Shared experiment harness: scalar reference runs, profiles, per-model
    cycle measurements, and speedup arithmetic.

    Methodology (recorded in EXPERIMENTS.md): all figures use the
    trace-driven cycle estimates so that predicated and non-predicated
    models are compared under one accounting; the machine-measured cycles
    of the executable models are reported separately as validation and in
    the ablations.

    Scale: a harness optionally carries a {!Psb_parallel.Pool.t}; when it
    does, {!create} profiles workloads concurrently and {!par_map} shards
    experiment cells over the pool. Every harness carries a
    {!Psb_compiler.Compile_cache} shared by all its compiles (and all
    pool domains), so repeated (program × model × machine) cells across
    figures reuse schedules instead of recompiling. Both are invisible in
    the results: cells are pure, result order is by input position, and
    cache hits return the same (deterministically compiled) value — so a
    sweep at any [-j] is byte-identical to the sequential one. *)

open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Pool = Psb_parallel.Pool
open Psb_compiler
open Psb_workloads

type entry = {
  workload : Dsl.t;
  scalar : Interp.result;
  profile : Psb_cfg.Branch_predict.t;
}

type t = {
  machine : Machine_model.t;
  entries : entry list;
  pool : Pool.t option;
  cache : Driver.compiled Compile_cache.t;
  verify : bool;  (** statically verify every compile (default) *)
}

val create :
  ?machine:Machine_model.t -> ?workloads:Dsl.t list -> ?pool:Pool.t ->
  ?verify:bool -> unit -> t
(** With [pool], the per-workload profiling runs (scalar reference +
    profile construction) execute as parallel tasks.

    [verify] (default [true]) is threaded into every {!compile}: each
    schedule an experiment uses has passed the static speculation-safety
    verifier ({!Psb_verify.Verify}), so a figure can never be computed
    from unsafe code. Pass [verify:false] to trade the safety net for
    compile time in large exploratory sweeps ([bench --no-verify]). *)

val jobs : t -> int
(** Pool width; [1] when the harness is sequential. *)

val par_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Map over independent experiment cells: through the pool when
    present (input-order results, per-task exception capture — the
    batch completes before the first failure re-raises), plain
    [List.map] otherwise. Do not nest: [f] must not itself call
    [par_map] on the same harness. *)

val cache_stats : t -> Compile_cache.stats

val scalar_cycles : entry -> int

val compile :
  t -> ?machine:Machine_model.t -> ?single_shadow:bool ->
  ?avoid_commit_deps:bool -> Model.t -> entry -> Driver.compiled
(** All harness compiles go through the harness cache. *)

val estimated_cycles :
  t -> ?machine:Machine_model.t -> Model.t -> entry -> int
(** Trace-driven accounting on the model's schedules. *)

val measured : t -> ?single_shadow:bool ->
  ?regfile_mode:Psb_machine.Regfile.mode ->
  ?pred_kernel:Psb_machine.Pred_kernel.mode ->
  ?events:Psb_obs.Events.t -> Model.t -> entry ->
  Vliw_sim.result
(** Run the compiled code on the machine simulator (executable models).
    Also asserts observable equivalence with the scalar reference.
    [pred_kernel] selects the per-cycle predicate evaluation kernel
    (see {!Psb_machine.Pred_kernel}); [events] records the speculation
    lifecycle (see {!Psb_obs.Events}). *)

val speedup : scalar:int -> cycles:int -> float

val geomean : float list -> float
(** Total on every input: the geometric mean, with [geomean [] = 1.0]
    (the empty product — the identity of speedup aggregation, so an
    empty sweep reports "no change" rather than collapsing on a
    0-length fold). *)
