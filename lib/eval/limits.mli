(** ILP limit study (the paper's §1 motivation, after Lam & Wilson [10]
    and Wall [20]).

    An oracle dataflow schedule of the dynamic instruction stream: every
    instruction issues as soon as its operands are ready (infinite
    resources, perfect renaming and memory disambiguation). Two regimes:

    - {b block-limited}: control dependences are barriers — no instruction
      issues before the branch that guards it; this is the basic-block ILP
      the limit studies call "very limited";
    - {b unconstrained}: control dependences eliminated (perfect
      speculation of all instructions) — the oracle the predicating
      mechanism chases;
    - {b value oracle}: additionally a perfect value predictor for loads
      and ALU results (after Mitrevski–Gušev, "On the Performance
      Potential of Speculative Execution based on Branch and Value
      Prediction") — consumers of a predicted result issue without
      waiting for it, and predicted loads skip store-to-load memory
      dependences; the producer still occupies the schedule, since a
      prediction must be verified. Its constraints are a strict subset
      of the unconstrained oracle's, so [value_ipc >= oracle_ipc]
      always.

    The ratio between the first two is the headroom that motivates the
    paper; the third bounds what even unconstrained speculation leaves
    on the table for value prediction. *)

open Psb_workloads

type row = {
  name : string;
  dyn_instrs : int;
  block_ipc : float;
  oracle_ipc : float;
  value_ipc : float;
  headroom : float;  (** oracle / block *)
  value_headroom : float;  (** value / oracle *)
}

val analyze : Dsl.t -> row
val analyze_suite : ?workloads:Dsl.t list -> unit -> row list
val pp : Format.formatter -> row list -> unit
