open Psb_isa
open Psb_compiler
open Psb_workloads
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Rob_sim = Psb_machine.Rob_sim

(* Sharding helpers: experiments flatten their (workload x model x
   config) grids into one task list, evaluate it through the harness
   pool, and regroup. Regrouping by fixed-size chunk keeps the result
   deterministic: position in the flat list encodes the cell. *)

let chunks n xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> invalid_arg "Experiments.chunks: ragged input"
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go = function
    | [] -> []
    | xs ->
        let c, rest = take n [] xs in
        c :: go rest
  in
  if n <= 0 then invalid_arg "Experiments.chunks" else go xs

let grid entries cols = List.concat_map (fun e -> List.map (fun c -> (e, c)) cols) entries

(* ----- Table 2 ----- *)

type table2_row = { t2_name : string; t2_lines : int; t2_scalar_cycles : int }

let table2 (h : Harness.t) =
  List.map
    (fun (e : Harness.entry) ->
      {
        t2_name = e.Harness.workload.Dsl.name;
        t2_lines = Program.size e.Harness.workload.Dsl.program;
        t2_scalar_cycles = Harness.scalar_cycles e;
      })
    h.Harness.entries

let pp_table2 ppf rows =
  Format.fprintf ppf "@[<v>Table 2: Benchmark programs@,";
  Format.fprintf ppf "%-10s %8s %14s@," "Program" "Lines" "Scalar cycles";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %8d %14d@," r.t2_name r.t2_lines
        r.t2_scalar_cycles)
    rows;
  Format.fprintf ppf "@]"

(* ----- Table 3 ----- *)

type table3_row = { t3_name : string; t3_acc : float array }

let table3 (h : Harness.t) =
  Harness.par_map h
    (fun (e : Harness.entry) ->
      let t =
        Trace.of_result e.Harness.workload.Dsl.program e.Harness.scalar
      in
      {
        t3_name = e.Harness.workload.Dsl.name;
        t3_acc = Array.init 8 (fun i -> Trace.successive_accuracy t (i + 1));
      })
    h.Harness.entries

let pp_table3 ppf rows =
  Format.fprintf ppf
    "@[<v>Table 3: Prediction accuracy of successive branches@,";
  Format.fprintf ppf "%-10s" "#branches";
  for n = 1 to 8 do
    Format.fprintf ppf " %5d" n
  done;
  Format.fprintf ppf "@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s" r.t3_name;
      Array.iter (fun a -> Format.fprintf ppf " %5.2f" a) r.t3_acc;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

(* ----- speedup tables ----- *)

type speedup_table = {
  models : Model.t list;
  rows : (string * float list) list;
  geomean : float list;
}

let speedups (h : Harness.t) models =
  (* one task per (workload x model) cell *)
  let flat =
    Harness.par_map h
      (fun ((e : Harness.entry), m) ->
        let scalar = Harness.scalar_cycles e in
        let cycles = Harness.estimated_cycles h m e in
        Harness.speedup ~scalar ~cycles)
      (grid h.Harness.entries models)
  in
  let rows =
    List.map2
      (fun (e : Harness.entry) per_model ->
        (e.Harness.workload.Dsl.name, per_model))
      h.Harness.entries
      (chunks (List.length models) flat)
  in
  let geomean =
    List.mapi
      (fun idx _ -> Harness.geomean (List.map (fun (_, s) -> List.nth s idx) rows))
      models
  in
  { models; rows; geomean }

let figure6 h = speedups h Model.restricted
let figure7 h = speedups h Model.predicating

let related_work h =
  speedups h [ Model.guarded; Model.squashing; Model.boosting; Model.region_pred ]

let pp_speedups ~title ppf t =
  Format.fprintf ppf "@[<v>%s (speedup over the scalar machine)@," title;
  Format.fprintf ppf "%-10s" "";
  List.iter (fun m -> Format.fprintf ppf " %12s" m.Model.name) t.models;
  Format.fprintf ppf "@,";
  List.iter
    (fun (name, ss) ->
      Format.fprintf ppf "%-10s" name;
      List.iter (fun s -> Format.fprintf ppf " %12.2f" s) ss;
      Format.fprintf ppf "@,")
    t.rows;
  Format.fprintf ppf "%-10s" "geomean";
  List.iter (fun s -> Format.fprintf ppf " %12.2f" s) t.geomean;
  Format.fprintf ppf "@,@]"

(* ----- rival out-of-order backend ----- *)

type rob_row = {
  r_name : string;
  r_scalar_cycles : int;
  r_rob_cycles : int;
  r_speedup : float;
  r_mispredicts : int;
  r_squashed : int;
  r_identical : bool;
}

type rob_table = { rob_rows : rob_row list; rob_geomean : float }

let rob_rival (h : Harness.t) =
  let rob_rows =
    Harness.par_map h
      (fun (e : Harness.entry) ->
        let w = e.Harness.workload in
        let r =
          Rob_sim.run ~model:h.Harness.machine ~regs:w.Dsl.regs
            ~mem:(w.Dsl.make_mem ()) w.Dsl.program
        in
        let scalar = Harness.scalar_cycles e in
        let s = e.Harness.scalar in
        {
          r_name = w.Dsl.name;
          r_scalar_cycles = scalar;
          r_rob_cycles = r.Rob_sim.cycles;
          r_speedup = Harness.speedup ~scalar ~cycles:r.Rob_sim.cycles;
          r_mispredicts = r.Rob_sim.stats.Rob_sim.mispredicts;
          r_squashed = r.Rob_sim.stats.Rob_sim.squashed;
          r_identical =
            s.Interp.outcome = r.Rob_sim.outcome
            && s.Interp.output = r.Rob_sim.output
            && Reg.Map.equal Int.equal s.Interp.regs r.Rob_sim.regs
            && s.Interp.faults_handled = r.Rob_sim.faults_handled;
        })
      h.Harness.entries
  in
  {
    rob_rows;
    rob_geomean = Harness.geomean (List.map (fun r -> r.r_speedup) rob_rows);
  }

let pp_rob ppf t =
  Format.fprintf ppf
    "@[<v>Rival out-of-order backend (same ISA, same capacities)@,";
  Format.fprintf ppf "%-10s %10s %10s %8s %10s %9s %6s@," "Program" "scalar"
    "rob" "speedup" "mispredict" "squashed" "ident";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10d %10d %8.2f %10d %9d %6s@," r.r_name
        r.r_scalar_cycles r.r_rob_cycles r.r_speedup r.r_mispredicts
        r.r_squashed
        (if r.r_identical then "yes" else "NO"))
    t.rob_rows;
  Format.fprintf ppf "%-10s %10s %10s %8.2f@," "geomean" "" "" t.rob_geomean;
  Format.fprintf ppf "@]"

(* ----- Figure 8 ----- *)

type fig8_cell = { issue : int; conds : int; speedup : float }
type fig8_row = { f8_name : string; cells : fig8_cell list }

let figure8 ?(issues = [ 2; 4; 8 ]) ?(cond_depths = [ 1; 2; 4; 8 ]) (h : Harness.t) =
  let configs =
    List.concat_map (fun issue -> List.map (fun c -> (issue, c)) cond_depths) issues
  in
  let flat =
    Harness.par_map h
      (fun ((e : Harness.entry), (issue, conds)) ->
        let scalar = Harness.scalar_cycles e in
        let machine =
          Machine_model.full_issue ~width:issue ~max_spec_conds:conds
        in
        let cycles = Harness.estimated_cycles h ~machine Model.region_pred e in
        { issue; conds; speedup = Harness.speedup ~scalar ~cycles })
      (grid h.Harness.entries configs)
  in
  List.map2
    (fun (e : Harness.entry) cells ->
      { f8_name = e.Harness.workload.Dsl.name; cells })
    h.Harness.entries
    (chunks (List.length configs) flat)

let pp_figure8 ppf rows =
  Format.fprintf ppf
    "@[<v>Figure 8: full-issue machines x speculation depth (region \
     predicating)@,";
  match rows with
  | [] -> Format.fprintf ppf "(no rows)@]"
  | first :: _ ->
      Format.fprintf ppf "%-10s" "";
      List.iter
        (fun c -> Format.fprintf ppf " %3d-i/%d" c.issue c.conds)
        first.cells;
      Format.fprintf ppf "@,";
      List.iter
        (fun r ->
          Format.fprintf ppf "%-10s" r.f8_name;
          List.iter (fun c -> Format.fprintf ppf " %7.2f" c.speedup) r.cells;
          Format.fprintf ppf "@,")
        rows;
      Format.fprintf ppf "@]"

(* ----- shadow-register ablation (footnote 1) ----- *)

type shadow_row = {
  sh_name : string;
  sh_single_cycles : int;
  sh_infinite_cycles : int;
  sh_conflicts : int;
  sh_loss : float;
}

let shadow_ablation (h : Harness.t) =
  Harness.par_map h
    (fun (e : Harness.entry) ->
      let single = Harness.measured h Model.region_pred e in
      let infinite =
        Harness.measured h ~single_shadow:false
          ~regfile_mode:Psb_machine.Regfile.Infinite Model.region_pred e
      in
      {
        sh_name = e.Harness.workload.Dsl.name;
        sh_single_cycles = single.Vliw_sim.cycles;
        sh_infinite_cycles = infinite.Vliw_sim.cycles;
        sh_conflicts = single.Vliw_sim.stats.Vliw_sim.shadow_conflicts;
        sh_loss =
          (float_of_int single.Vliw_sim.cycles
           /. float_of_int infinite.Vliw_sim.cycles)
          -. 1.0;
      })
    h.Harness.entries

let pp_shadow ppf rows =
  Format.fprintf ppf
    "@[<v>Shadow-register ablation (single vs infinite; paper fn.1: 0-1%% \
     loss)@,";
  Format.fprintf ppf "%-10s %10s %10s %10s %8s@," "Program" "single" "infinite"
    "conflicts" "loss";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10d %10d %10d %7.2f%%@," r.sh_name
        r.sh_single_cycles r.sh_infinite_cycles r.sh_conflicts
        (100. *. r.sh_loss))
    rows;
  Format.fprintf ppf "@]"

(* ----- estimate vs measured validation ----- *)

type validation_row = {
  v_name : string;
  v_model : string;
  v_estimated : int;
  v_measured : int;
}

let validation (h : Harness.t) =
  Harness.par_map h
    (fun ((e : Harness.entry), m) ->
      {
        v_name = e.Harness.workload.Dsl.name;
        v_model = m.Model.name;
        v_estimated = Harness.estimated_cycles h m e;
        v_measured = (Harness.measured h m e).Vliw_sim.cycles;
      })
    (grid h.Harness.entries
       [ Model.region_sched; Model.trace_pred; Model.region_pred ])

let pp_validation ppf rows =
  Format.fprintf ppf "@[<v>Accounting validation: estimated vs machine-measured@,";
  Format.fprintf ppf "%-10s %-14s %10s %10s %7s@," "Program" "Model" "est"
    "measured" "ratio";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-14s %10d %10d %7.2f@," r.v_name r.v_model
        r.v_estimated r.v_measured
        (float_of_int r.v_estimated /. float_of_int r.v_measured))
    rows;
  Format.fprintf ppf "@]"

(* ----- counter vs vector predicates (§4.2.1) ----- *)

type counter_row = { c_name : string; c_vector : float; c_counter : float }

let counter_ablation (h : Harness.t) =
  Harness.par_map h
    (fun (e : Harness.entry) ->
      let scalar = Harness.scalar_cycles e in
      let s m = Harness.speedup ~scalar ~cycles:(Harness.estimated_cycles h m e) in
      {
        c_name = e.Harness.workload.Dsl.name;
        c_vector = s Model.trace_pred;
        c_counter = s Model.trace_pred_counter;
      })
    h.Harness.entries

let pp_counter ppf rows =
  Format.fprintf ppf
    "@[<v>Predicate representation (4.2.1): vector vs counter@,";
  Format.fprintf ppf "%-10s %10s %10s@," "Program" "vector" "counter";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10.2f %10.2f@," r.c_name r.c_vector r.c_counter)
    rows;
  Format.fprintf ppf "@]"

(* ----- BTB optimism (region-transition penalty) ----- *)

type btb_row = { b_name : string; b_free : int; b_miss1 : int }

let btb_ablation (h : Harness.t) =
  Harness.par_map h
    (fun (e : Harness.entry) ->
      let free = Harness.measured h Model.region_pred e in
      let machine1 =
        { h.Harness.machine with Machine_model.transition_penalty = 1 }
      in
      let compiled = Harness.compile h ~machine:machine1 Model.region_pred e in
      let mem = e.Harness.workload.Dsl.make_mem () in
      let miss =
        Driver.run_vliw compiled ~regs:e.Harness.workload.Dsl.regs ~mem
      in
      {
        b_name = e.Harness.workload.Dsl.name;
        b_free = free.Vliw_sim.cycles;
        b_miss1 = miss.Vliw_sim.cycles;
      })
    h.Harness.entries

let pp_btb ppf rows =
  Format.fprintf ppf
    "@[<v>BTB optimism: free region transitions vs 1-cycle redirect@,";
  Format.fprintf ppf "%-10s %10s %10s %8s@," "Program" "free" "miss=1" "cost";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10d %10d %7.1f%%@," r.b_name r.b_free r.b_miss1
        (100. *. (float_of_int r.b_miss1 /. float_of_int r.b_free -. 1.0)))
    rows;
  Format.fprintf ppf "@]"

(* ----- join duplication vs commit dependences (§4.2.2) ----- *)

type dup_row = { d_name : string; d_merged : float; d_split : float }

let dup_ablation (h : Harness.t) =
  Harness.par_map h
    (fun (e : Harness.entry) ->
      let scalar = Harness.scalar_cycles e in
      let est ~avoid =
        let compiled =
          Harness.compile h ~avoid_commit_deps:avoid Model.region_pred e
        in
        Driver.estimate_cycles compiled e.Harness.workload.Dsl.program
          ~block_trace:e.Harness.scalar.Interp.block_trace
      in
      {
        d_name = e.Harness.workload.Dsl.name;
        d_merged = Harness.speedup ~scalar ~cycles:(est ~avoid:false);
        d_split = Harness.speedup ~scalar ~cycles:(est ~avoid:true);
      })
    h.Harness.entries

let pp_dup ppf rows =
  Format.fprintf ppf
    "@[<v>Join duplication (4.2.2): merged joins vs commit-dependence      avoidance@,";
  Format.fprintf ppf "%-10s %10s %10s@," "Program" "merged" "split";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %10.2f %10.2f@," r.d_name r.d_merged r.d_split)
    rows;
  Format.fprintf ppf "@]"

(* ----- code growth ----- *)

type size_row = {
  s_name : string;
  s_scalar : int;
  s_by_model : (string * int) list;
}

let code_growth (h : Harness.t) =
  let models = [ Model.global; Model.boosting; Model.trace_pred; Model.region_pred ] in
  Harness.par_map h
    (fun (e : Harness.entry) ->
      let w = e.Harness.workload in
      {
        s_name = w.Dsl.name;
        s_scalar = Program.size w.Dsl.program;
        s_by_model =
          List.map
            (fun m ->
              let compiled = Harness.compile h m e in
              (m.Model.name, Driver.code_size compiled))
            models;
      })
    h.Harness.entries

let pp_size ppf rows =
  Format.fprintf ppf "@[<v>Static code size (slots) per model@,";
  (match rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "%-10s %8s" "" "scalar";
      List.iter (fun (m, _) -> Format.fprintf ppf " %12s" m) first.s_by_model;
      Format.fprintf ppf "@,");
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %8d" r.s_name r.s_scalar;
      List.iter (fun (_, n) -> Format.fprintf ppf " %12d" n) r.s_by_model;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

(* ----- loop unrolling on wide machines (the paper's future work) ----- *)

type unroll_row = { u_name : string; u_by_factor : (int * float) list }

let unroll_ablation ?(factors = [ 1; 2; 4 ]) (h : Harness.t) =
  let machine = Machine_model.full_issue ~width:8 ~max_spec_conds:8 in
  let flat =
    Harness.par_map h
      (fun ((e : Harness.entry), factor) ->
        let w = e.Harness.workload in
        let program =
          if factor <= 1 then w.Dsl.program
          else Transform.unroll_loops ~factor w.Dsl.program
        in
        let scalar, profile =
          Driver.profile_of program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
        in
        let compiled =
          Driver.compile ~cache:h.Harness.cache ~model:Model.region_pred
            ~machine ~profile program
        in
        let cycles =
          Driver.estimate_cycles compiled program
            ~block_trace:scalar.Interp.block_trace
        in
        (factor, Harness.speedup ~scalar:scalar.Interp.cycles ~cycles))
      (grid h.Harness.entries factors)
  in
  List.map2
    (fun (e : Harness.entry) u_by_factor ->
      { u_name = e.Harness.workload.Dsl.name; u_by_factor })
    h.Harness.entries
    (chunks (List.length factors) flat)

let pp_unroll ppf rows =
  Format.fprintf ppf
    "@[<v>Loop unrolling x region predicating, 8-issue (the paper's future \
     work)@,";
  (match rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "%-10s" "";
      List.iter (fun (f, _) -> Format.fprintf ppf " %7s" (Format.asprintf "x%d" f)) first.u_by_factor;
      Format.fprintf ppf "@,");
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s" r.u_name;
      List.iter (fun (_, s) -> Format.fprintf ppf " %7.2f" s) r.u_by_factor;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

(* ----- synthetic predictability sweep ----- *)

type sweep_row = { sw_taken_prob : float; sw_trace : float; sw_region : float }

let predictability_sweep ?pool ?(probs = [ 0.5; 0.65; 0.8; 0.9; 0.98 ]) () =
  let cell p =
    (* Each probability point is one task: it builds its own (sequential)
       single-workload harness, so tasks stay independent and nothing
       nests inside the pool. *)
    let w = Synth.generate { Synth.default with taken_prob = p } in
    let h = Harness.create ~workloads:[ w ] () in
    let e = List.hd h.Harness.entries in
    let scalar = Harness.scalar_cycles e in
    let s m = Harness.speedup ~scalar ~cycles:(Harness.estimated_cycles h m e) in
    {
      sw_taken_prob = p;
      sw_trace = s Model.trace_pred;
      sw_region = s Model.region_pred;
    }
  in
  match pool with
  | Some p -> Psb_parallel.Pool.map_exn p cell probs
  | None -> List.map cell probs

let pp_sweep ppf rows =
  Format.fprintf ppf
    "@[<v>Predictability sweep (synthetic): trace- vs region-predicating@,";
  Format.fprintf ppf "%-12s %10s %10s@," "taken-prob" "trace" "region";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12.2f %10.2f %10.2f@," r.sw_taken_prob r.sw_trace
        r.sw_region)
    rows;
  Format.fprintf ppf "@]"
