module Json = Psb_obs.Json

(* Group order and per-group row order both follow the document, so a
   report reads in the same order as the baseline file. *)
type doc = { doc_groups : (string * (string * float) list) list }

let of_json json =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" json with
    | Some (Json.String "psb-bechamel-v1") -> Ok ()
    | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing \"schema\" marker (want psb-bechamel-v1)"
  in
  let* groups =
    match Json.member "groups" json with
    | Some (Json.List gs) -> Ok gs
    | _ -> Error "missing \"groups\" list"
  in
  let result r =
    match (Json.member "name" r, Json.member "ns_per_run" r) with
    | Some (Json.String n), Some v -> (
        match Json.to_float v with
        | Some ns -> Ok (n, ns)
        | None -> Error (Printf.sprintf "result %S: ns_per_run not a number" n))
    | _ -> Error "result without \"name\"/\"ns_per_run\""
  in
  let group g =
    match (Json.member "name" g, Json.member "results" g) with
    | Some (Json.String n), Some (Json.List rs) ->
        let* rows =
          List.fold_left
            (fun acc r ->
              let* acc = acc in
              let* row = result r in
              Ok (row :: acc))
            (Ok []) rs
        in
        Ok (n, List.rev rows)
    | _ -> Error "group without \"name\"/\"results\""
  in
  let* doc_groups =
    List.fold_left
      (fun acc g ->
        let* acc = acc in
        let* g = group g in
        Ok (g :: acc))
      (Ok []) groups
  in
  Ok { doc_groups = List.rev doc_groups }

let of_string s = Result.bind (Json.parse s) of_json
let groups d = List.map fst d.doc_groups

type row = {
  name : string;
  baseline_ns : float;
  current_ns : float option;
  delta_pct : float;
  regressed : bool;
}

type report = { threshold_pct : float; rows : row list }

let compare_docs ~threshold_pct ~baseline ~current =
  let flat d = List.concat_map snd d.doc_groups in
  let cur = flat current in
  let rows =
    List.map
      (fun (name, baseline_ns) ->
        match List.assoc_opt name cur with
        | None ->
            {
              name;
              baseline_ns;
              current_ns = None;
              delta_pct = Float.nan;
              regressed = true;
            }
        | Some ns ->
            let delta_pct = (ns -. baseline_ns) /. baseline_ns *. 100. in
            {
              name;
              baseline_ns;
              current_ns = Some ns;
              delta_pct;
              regressed = ns > baseline_ns *. (1. +. (threshold_pct /. 100.));
            })
      (flat baseline)
  in
  { threshold_pct; rows }

let ok r = not (List.exists (fun row -> row.regressed) r.rows)

let pp ppf r =
  Format.fprintf ppf "%-40s %14s %14s %9s@." "benchmark" "baseline ns"
    "current ns" "delta";
  List.iter
    (fun row ->
      match row.current_ns with
      | None ->
          Format.fprintf ppf "%-40s %14.1f %14s %9s  REGRESSED@." row.name
            row.baseline_ns "missing" "-"
      | Some ns ->
          Format.fprintf ppf "%-40s %14.1f %14.1f %+8.1f%%%s@." row.name
            row.baseline_ns ns row.delta_pct
            (if row.regressed then "  REGRESSED" else ""))
    r.rows;
  let n_reg = List.length (List.filter (fun row -> row.regressed) r.rows) in
  if ok r then
    Format.fprintf ppf "PASS: %d benchmarks within +%g%% of baseline@."
      (List.length r.rows) r.threshold_pct
  else
    Format.fprintf ppf "FAIL: %d of %d benchmarks regressed past +%g%%@." n_reg
      (List.length r.rows) r.threshold_pct

let to_json r =
  Json.Obj
    [
      ("threshold_pct", Json.Float r.threshold_pct);
      ("ok", Json.Bool (ok r));
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.obj
                 [
                   ("name", Json.String row.name);
                   ("baseline_ns", Json.Float row.baseline_ns);
                   ( "current_ns",
                     match row.current_ns with
                     | Some ns -> Json.Float ns
                     | None -> Json.Null );
                   ( "delta_pct",
                     if Float.is_nan row.delta_pct then Json.Null
                     else Json.Float row.delta_pct );
                   ("regressed", Json.Bool row.regressed);
                 ])
             r.rows) );
    ]
