type t = int

let make i =
  if i < 0 then invalid_arg "Cond.make: negative index";
  i

let index c = c
let equal = Int.equal
let compare = Int.compare
let pp ppf c = Format.fprintf ppf "c%d" c
let to_string c = Format.asprintf "%a" pp c

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp)
    (Set.elements s)
