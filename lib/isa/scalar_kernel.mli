(** Which per-instruction kernel the scalar machines run.

    [Decoded] — the default — walks the flat structure-of-arrays form
    produced by {!Decoded.of_program}: dense int opcode tags,
    preresolved operand register indices and immediates, branch targets
    as block indices, decoded once per program before execution starts.
    The per-instruction step in {!Interp} (and the dispatch/complete
    loops of the ROB backend) is plain [int]-array reads — no variant
    matching, no list allocation, no [Label] hashing.

    [Tree] is the reference path: every dynamic instruction re-walks
    the {!Program.block} body lists and pattern-matches the {!Instr.op}
    variants directly. It exists for differential testing and for the
    [PSB_SCALAR_KERNEL=tree] environment toggle (read once at startup
    into {!default}), exactly mirroring the [Pred_kernel] and
    [Exec_kernel] precedents; both kernels must produce identical
    results, cycle counts, traces and event streams. *)

type mode = Decoded | Tree

val default : mode
(** [Decoded], unless the environment sets [PSB_SCALAR_KERNEL=tree]. *)

val of_string : string -> mode option
val to_string : mode -> string
val pp : Format.formatter -> mode -> unit
