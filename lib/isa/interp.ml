type outcome = Halted | Fatal of Fault.t | Out_of_fuel

type result = {
  outcome : outcome;
  output : int list;
  cycles : int;
  dyn_instrs : int;
  block_trace : Label.t list;
  regs : int Reg.Map.t;
  faults_handled : int;
}

type env = {
  regs : int array;
  conds : bool array;
  written : bool array; (* registers ever written, for the final map *)
  mem : Memory.t;
  mutable output_rev : int list;
  mutable cycles : int;
  mutable dyn_instrs : int;
  mutable trace_rev : Label.t list;
  mutable faults_handled : int;
  mutable last_load_dst : Reg.t option; (* for the load-use interlock *)
}

let reg_value env r = env.regs.(Reg.index r)

let set_reg env r v =
  env.regs.(Reg.index r) <- v;
  env.written.(Reg.index r) <- true

let operand_value env = function
  | Operand.Reg r -> reg_value env r
  | Operand.Imm i -> i

exception Stop of Fault.t

(* Execute one operation, retrying after recoverable faults (the "OS"
   maps the demand page and the access restarts). *)
let rec exec_op env op =
  try
    match op with
    | Instr.Alu { op; dst; a; b } ->
        let v =
          try Opcode.eval_alu op (operand_value env a) (operand_value env b)
          with Opcode.Arithmetic_fault m -> raise (Stop (Fault.Arith m))
        in
        set_reg env dst v
    | Instr.Mov { dst; src } -> set_reg env dst (operand_value env src)
    | Instr.Cmp { op; dst; a; b } ->
        let v =
          Opcode.eval_cmp op (operand_value env a) (operand_value env b)
        in
        set_reg env dst (if v then 1 else 0)
    | Instr.Load { dst; base; off } ->
        set_reg env dst (Memory.read env.mem (reg_value env base + off))
    | Instr.Store { src; base; off } ->
        Memory.write env.mem (reg_value env base + off) (reg_value env src)
    | Instr.Setc { dst; op; a; b } ->
        env.conds.(Cond.index dst) <-
          Opcode.eval_cmp op (operand_value env a) (operand_value env b)
    | Instr.Out o -> env.output_rev <- operand_value env o :: env.output_rev
    | Instr.Nop -> ()
  with Memory.Fault f ->
    if Memory.is_fatal f then raise (Stop (Fault.Mem f))
    else begin
      assert (Memory.handle_fault env.mem f);
      env.faults_handled <- env.faults_handled + 1;
      exec_op env op
    end

let charge env op =
  env.dyn_instrs <- env.dyn_instrs + 1;
  env.cycles <- env.cycles + 1;
  (match env.last_load_dst with
  | Some r when List.exists (Reg.equal r) (Instr.uses op) ->
      env.cycles <- env.cycles + 1
  | Some _ | None -> ());
  env.last_load_dst <- (match op with Instr.Load { dst; _ } -> Some dst | _ -> None)

let default_fuel = 30_000_000

let run ?(fuel = default_fuel) ?(record_trace = true)
    ?(kernel = Scalar_kernel.default) ?decoded ?observer ?on_block ~regs ~mem
    program =
  let nregs = max 1 (Program.max_reg program + 1) in
  let nregs =
    List.fold_left (fun m (r, _) -> max m (Reg.index r + 1)) nregs regs
  in
  let nconds = max 1 (Program.max_cond program + 1) in
  let env =
    {
      regs = Array.make nregs 0;
      conds = Array.make nconds false;
      written = Array.make nregs false;
      mem;
      output_rev = [];
      cycles = 0;
      dyn_instrs = 0;
      trace_rev = [];
      faults_handled = 0;
      last_load_dst = None;
    }
  in
  List.iter (fun (r, v) -> set_reg env r v) regs;
  let finish outcome =
    let final_regs =
      Array.to_seqi env.regs
      |> Seq.filter (fun (i, _) -> env.written.(i))
      |> Seq.fold_left (fun m (i, v) -> Reg.Map.add (Reg.make i) v m) Reg.Map.empty
    in
    {
      outcome;
      output = List.rev env.output_rev;
      cycles = env.cycles;
      dyn_instrs = env.dyn_instrs;
      block_trace = List.rev env.trace_rev;
      regs = final_regs;
      faults_handled = env.faults_handled;
    }
  in
  (* ----- tree kernel: walk the block lists, match the variants ----- *)
  let rec run_block label =
    if env.dyn_instrs > fuel then finish Out_of_fuel
    else begin
      if record_trace then env.trace_rev <- label :: env.trace_rev;
      (match on_block with None -> () | Some f -> f env.cycles label);
      let b = Program.find program label in
      List.iter
        (fun op ->
          charge env op;
          (match observer with
          | None -> ()
          | Some f ->
              let addr =
                match op with
                | Instr.Load { base; off; _ } -> Some (reg_value env base + off)
                | Instr.Store { base; off; _ } -> Some (reg_value env base + off)
                | _ -> None
              in
              f op addr);
          exec_op env op)
        b.Program.body;
      env.dyn_instrs <- env.dyn_instrs + 1;
      env.cycles <- env.cycles + 1;
      env.last_load_dst <- None;
      match b.Program.term with
      | Instr.Halt -> finish Halted
      | Instr.Jmp l -> run_block l
      | Instr.Br { src; if_true; if_false } ->
          run_block (if reg_value env src <> 0 then if_true else if_false)
    end
  in
  (* ----- decoded kernel: walk the flat arrays -----
     Cycle accounting, trace/observer/hook ordering, fuel-check position
     and fault semantics mirror the tree path exactly (the differential
     stack pins the two kernels identical on every fuzz trial). *)
  let run_decoded (d : Decoded.t) =
    let regs = env.regs and conds = env.conds and written = env.written in
    let kind = d.Decoded.kind
    and dst = d.Decoded.dst
    and aux = d.Decoded.aux
    and alu = d.Decoded.alu
    and cmp = d.Decoded.cmp
    and s1_reg = d.Decoded.s1_reg
    and s1_imm = d.Decoded.s1_imm
    and s2_reg = d.Decoded.s2_reg
    and s2_imm = d.Decoded.s2_imm
    and op_bounds = d.Decoded.op_bounds
    and labels = d.Decoded.labels in
    (* last-load destination register index; -1 = none *)
    let lld = ref (-1) in
    let s1 i = (let r = s1_reg.(i) in if r >= 0 then regs.(r) else s1_imm.(i))
    and s2 i = (let r = s2_reg.(i) in if r >= 0 then regs.(r) else s2_imm.(i)) in
    let rec mem_read addr =
      match Memory.read env.mem addr with
      | v -> v
      | exception Memory.Fault f ->
          if Memory.is_fatal f then raise (Stop (Fault.Mem f))
          else begin
            assert (Memory.handle_fault env.mem f);
            env.faults_handled <- env.faults_handled + 1;
            mem_read addr
          end
    in
    let rec mem_write addr v =
      match Memory.write env.mem addr v with
      | () -> ()
      | exception Memory.Fault f ->
          if Memory.is_fatal f then raise (Stop (Fault.Mem f))
          else begin
            assert (Memory.handle_fault env.mem f);
            env.faults_handled <- env.faults_handled + 1;
            mem_write addr v
          end
    in
    let step i =
      let k = kind.(i) in
      (* charge: 1 cycle, +1 when this op uses the last load's dst *)
      env.dyn_instrs <- env.dyn_instrs + 1;
      env.cycles <- env.cycles + 1;
      let l = !lld in
      if l >= 0 && (s1_reg.(i) = l || s2_reg.(i) = l) then
        env.cycles <- env.cycles + 1;
      lld := (if k = 2 (* kload *) then dst.(i) else -1);
      (match observer with
      | None -> ()
      | Some f ->
          let addr =
            if k = 2 || k = 3 then Some (regs.(s1_reg.(i)) + aux.(i)) else None
          in
          f d.Decoded.ops.(i) addr);
      match k with
      | 0 (* kalu *) ->
          let v =
            try Opcode.eval_alu alu.(i) (s1 i) (s2 i)
            with Opcode.Arithmetic_fault m -> raise (Stop (Fault.Arith m))
          in
          regs.(dst.(i)) <- v;
          written.(dst.(i)) <- true
      | 1 (* kmov *) ->
          regs.(dst.(i)) <- s1 i;
          written.(dst.(i)) <- true
      | 2 (* kload *) ->
          regs.(dst.(i)) <- mem_read (regs.(s1_reg.(i)) + aux.(i));
          written.(dst.(i)) <- true
      | 3 (* kstore *) -> mem_write (regs.(s1_reg.(i)) + aux.(i)) regs.(s2_reg.(i))
      | 4 (* kcmp *) ->
          regs.(dst.(i)) <- (if Opcode.eval_cmp cmp.(i) (s1 i) (s2 i) then 1 else 0);
          written.(dst.(i)) <- true
      | 5 (* ksetc *) -> conds.(dst.(i)) <- Opcode.eval_cmp cmp.(i) (s1 i) (s2 i)
      | 6 (* kout *) -> env.output_rev <- s1 i :: env.output_rev
      | _ (* knop *) -> ()
    in
    let rec run_block bi =
      if env.dyn_instrs > fuel then finish Out_of_fuel
      else if bi < 0 then raise Not_found (* parity with the tree path's find *)
      else begin
        if record_trace then env.trace_rev <- labels.(bi) :: env.trace_rev;
        (match on_block with None -> () | Some f -> f env.cycles labels.(bi));
        let hi = op_bounds.(bi + 1) in
        for i = op_bounds.(bi) to hi - 1 do
          step i
        done;
        env.dyn_instrs <- env.dyn_instrs + 1;
        env.cycles <- env.cycles + 1;
        lld := -1;
        let tk = d.Decoded.term_kind.(bi) in
        if tk = 0 (* thalt *) then finish Halted
        else if tk = 1 (* tjmp *) then run_block d.Decoded.term_t.(bi)
        else
          run_block
            (if regs.(d.Decoded.term_src.(bi)) <> 0 then d.Decoded.term_t.(bi)
             else d.Decoded.term_f.(bi))
      end
    in
    run_block d.Decoded.entry
  in
  (match decoded with
  | Some d -> Decoded.check_source d program
  | None -> ());
  try
    match kernel with
    | Scalar_kernel.Tree -> run_block program.Program.entry
    | Scalar_kernel.Decoded ->
        let d =
          match decoded with Some d -> d | None -> Decoded.of_program program
        in
        run_decoded d
  with Stop f -> finish (Fatal f)

let equivalent a b =
  a.outcome = b.outcome && a.output = b.output && Reg.Map.equal Int.equal a.regs b.regs

let pp_outcome ppf = function
  | Halted -> Format.pp_print_string ppf "halted"
  | Fatal f -> Format.fprintf ppf "fatal: %a" Fault.pp f
  | Out_of_fuel -> Format.pp_print_string ppf "out of fuel"
