type outcome = Halted | Fatal of Fault.t | Out_of_fuel

type result = {
  outcome : outcome;
  output : int list;
  cycles : int;
  dyn_instrs : int;
  block_trace : Label.t list;
  regs : int Reg.Map.t;
  faults_handled : int;
}

type env = {
  regs : int array;
  conds : bool array;
  written : bool array; (* registers ever written, for the final map *)
  mem : Memory.t;
  mutable output_rev : int list;
  mutable cycles : int;
  mutable dyn_instrs : int;
  mutable trace_rev : Label.t list;
  mutable faults_handled : int;
  mutable last_load_dst : Reg.t option; (* for the load-use interlock *)
}

let reg_value env r = env.regs.(Reg.index r)

let set_reg env r v =
  env.regs.(Reg.index r) <- v;
  env.written.(Reg.index r) <- true

let operand_value env = function
  | Operand.Reg r -> reg_value env r
  | Operand.Imm i -> i

exception Stop of Fault.t

(* Execute one operation, retrying after recoverable faults (the "OS"
   maps the demand page and the access restarts). *)
let rec exec_op env op =
  try
    match op with
    | Instr.Alu { op; dst; a; b } ->
        let v =
          try Opcode.eval_alu op (operand_value env a) (operand_value env b)
          with Opcode.Arithmetic_fault m -> raise (Stop (Fault.Arith m))
        in
        set_reg env dst v
    | Instr.Mov { dst; src } -> set_reg env dst (operand_value env src)
    | Instr.Cmp { op; dst; a; b } ->
        let v =
          Opcode.eval_cmp op (operand_value env a) (operand_value env b)
        in
        set_reg env dst (if v then 1 else 0)
    | Instr.Load { dst; base; off } ->
        set_reg env dst (Memory.read env.mem (reg_value env base + off))
    | Instr.Store { src; base; off } ->
        Memory.write env.mem (reg_value env base + off) (reg_value env src)
    | Instr.Setc { dst; op; a; b } ->
        env.conds.(Cond.index dst) <-
          Opcode.eval_cmp op (operand_value env a) (operand_value env b)
    | Instr.Out o -> env.output_rev <- operand_value env o :: env.output_rev
    | Instr.Nop -> ()
  with Memory.Fault f ->
    if Memory.is_fatal f then raise (Stop (Fault.Mem f))
    else begin
      assert (Memory.handle_fault env.mem f);
      env.faults_handled <- env.faults_handled + 1;
      exec_op env op
    end

let charge env op =
  env.dyn_instrs <- env.dyn_instrs + 1;
  env.cycles <- env.cycles + 1;
  (match env.last_load_dst with
  | Some r when List.exists (Reg.equal r) (Instr.uses op) ->
      env.cycles <- env.cycles + 1
  | Some _ | None -> ());
  env.last_load_dst <- (match op with Instr.Load { dst; _ } -> Some dst | _ -> None)

let default_fuel = 30_000_000

let run ?(fuel = default_fuel) ?(record_trace = true) ?observer ?on_block ~regs
    ~mem program =
  let nregs = max 1 (Program.max_reg program + 1) in
  let nregs =
    List.fold_left (fun m (r, _) -> max m (Reg.index r + 1)) nregs regs
  in
  let nconds = max 1 (Program.max_cond program + 1) in
  let env =
    {
      regs = Array.make nregs 0;
      conds = Array.make nconds false;
      written = Array.make nregs false;
      mem;
      output_rev = [];
      cycles = 0;
      dyn_instrs = 0;
      trace_rev = [];
      faults_handled = 0;
      last_load_dst = None;
    }
  in
  List.iter (fun (r, v) -> set_reg env r v) regs;
  let finish outcome =
    let final_regs =
      Array.to_seqi env.regs
      |> Seq.filter (fun (i, _) -> env.written.(i))
      |> Seq.fold_left (fun m (i, v) -> Reg.Map.add (Reg.make i) v m) Reg.Map.empty
    in
    {
      outcome;
      output = List.rev env.output_rev;
      cycles = env.cycles;
      dyn_instrs = env.dyn_instrs;
      block_trace = List.rev env.trace_rev;
      regs = final_regs;
      faults_handled = env.faults_handled;
    }
  in
  let rec run_block label =
    if env.dyn_instrs > fuel then finish Out_of_fuel
    else begin
      if record_trace then env.trace_rev <- label :: env.trace_rev;
      (match on_block with None -> () | Some f -> f env.cycles label);
      let b = Program.find program label in
      List.iter
        (fun op ->
          charge env op;
          (match observer with
          | None -> ()
          | Some f ->
              let addr =
                match op with
                | Instr.Load { base; off; _ } -> Some (reg_value env base + off)
                | Instr.Store { base; off; _ } -> Some (reg_value env base + off)
                | _ -> None
              in
              f op addr);
          exec_op env op)
        b.Program.body;
      env.dyn_instrs <- env.dyn_instrs + 1;
      env.cycles <- env.cycles + 1;
      env.last_load_dst <- None;
      match b.Program.term with
      | Instr.Halt -> finish Halted
      | Instr.Jmp l -> run_block l
      | Instr.Br { src; if_true; if_false } ->
          run_block (if reg_value env src <> 0 then if_true else if_false)
    end
  in
  try run_block program.Program.entry with Stop f -> finish (Fatal f)

let equivalent a b =
  a.outcome = b.outcome && a.output = b.output && Reg.Map.equal Int.equal a.regs b.regs

let pp_outcome ppf = function
  | Halted -> Format.pp_print_string ppf "halted"
  | Fatal f -> Format.fprintf ppf "fatal: %a" Fault.pp f
  | Out_of_fuel -> Format.pp_print_string ppf "out of fuel"
