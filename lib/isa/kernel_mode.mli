(** Shared boilerplate for two-valued kernel-mode toggles.

    Every fast-path/reference-path pair in the codebase exposes the same
    tiny module: a [mode] variant, [of_string]/[to_string], a [default]
    read once at startup from an environment variable (with a warning on
    unknown values), and a [pp]. {!Make} generates all of that from the
    variable name and the accepted spellings, so the parsing and the
    warning format can never drift between kernels (the
    [Pred_kernel]/[Exec_kernel]/[Scalar_kernel] axes all instantiate
    it). *)

module type SPEC = sig
  type mode

  val name : string
  (** Environment variable consulted by [default], e.g.
      ["PSB_EXEC_KERNEL"]. *)

  val values : (string * mode) list
  (** Accepted spellings (lowercase) and their modes; must cover every
      mode, first spelling per mode is canonical for [to_string]. *)

  val fallback : mode
  (** The mode used when the variable is unset or unrecognised. *)
end

module Make (X : SPEC) : sig
  val default : X.mode
  (** [X.fallback], unless the environment overrides it. Evaluated once
      at module initialisation; unknown values warn on stderr and fall
      back. *)

  val of_string : string -> X.mode option
  val to_string : X.mode -> string
  val pp : Format.formatter -> X.mode -> unit
end
