type t = {
  block_counts : (Label.t, int) Hashtbl.t;
  edge_counts : (Label.t * Label.t, int) Hashtbl.t;
  (* Per dynamic branch, in execution order: (branch block, went-to-if_true). *)
  branch_stream : (Label.t * bool) array;
  predictions : (Label.t, bool) Hashtbl.t;
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let of_blocks program blocks =
  let block_counts = Hashtbl.create 64 in
  let edge_counts = Hashtbl.create 64 in
  let stream_rev = ref [] in
  let taken_counts = Hashtbl.create 64 in
  let rec walk = function
    | [] -> ()
    | [ last ] -> bump block_counts last
    | b1 :: (b2 :: _ as rest) ->
        bump block_counts b1;
        bump edge_counts (b1, b2);
        (match (Program.find program b1).Program.term with
        | Instr.Br { if_true; _ } ->
            let taken = Label.equal b2 if_true in
            stream_rev := (b1, taken) :: !stream_rev;
            let t, n =
              Option.value (Hashtbl.find_opt taken_counts b1) ~default:(0, 0)
            in
            Hashtbl.replace taken_counts b1
              (if taken then (t + 1, n) else (t, n + 1))
        | Instr.Jmp _ | Instr.Halt -> ());
        walk rest
  in
  walk blocks;
  let predictions = Hashtbl.create 64 in
  Hashtbl.iter (fun l (t, n) -> Hashtbl.replace predictions l (t >= n)) taken_counts;
  {
    block_counts;
    edge_counts;
    branch_stream = Array.of_list (List.rev !stream_rev);
    predictions;
  }

let of_result program (r : Interp.result) = of_blocks program r.Interp.block_trace

let block_count t l = Option.value (Hashtbl.find_opt t.block_counts l) ~default:0

let edge_count t ~src ~dst =
  Option.value (Hashtbl.find_opt t.edge_counts (src, dst)) ~default:0

let hot_blocks ?limit t =
  let all =
    Hashtbl.fold (fun l n acc -> (l, n) :: acc) t.block_counts []
    |> List.sort (fun (la, na) (lb, nb) ->
           match compare nb na with
           | 0 -> compare (Label.name la) (Label.name lb)
           | c -> c)
  in
  match limit with
  | None -> all
  | Some n -> List.filteri (fun i _ -> i < n) all

let dynamic_branches t = Array.length t.branch_stream

let taken_fraction t l =
  let total = ref 0 and taken = ref 0 in
  Array.iter
    (fun (b, tk) ->
      if Label.equal b l then begin
        incr total;
        if tk then incr taken
      end)
    t.branch_stream;
  if !total = 0 then None else Some (float_of_int !taken /. float_of_int !total)

let predict t l = Option.value (Hashtbl.find_opt t.predictions l) ~default:true

let correctness t =
  Array.map (fun (b, taken) -> predict t b = taken) t.branch_stream

let prediction_accuracy t =
  let c = correctness t in
  let n = Array.length c in
  if n = 0 then 1.0
  else
    float_of_int (Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 c)
    /. float_of_int n

let successive_accuracy t n =
  if n <= 0 then invalid_arg "Trace.successive_accuracy: n must be positive";
  let c = correctness t in
  let len = Array.length c in
  if len < n then 1.0
  else begin
    (* Sliding window: maintain the count of correct predictions inside the
       current window; a window counts iff all [n] are correct. *)
    let in_window = ref 0 in
    for i = 0 to n - 1 do
      if c.(i) then incr in_window
    done;
    let good = ref (if !in_window = n then 1 else 0) in
    for i = n to len - 1 do
      if c.(i - n) then decr in_window;
      if c.(i) then incr in_window;
      if !in_window = n then incr good
    done;
    float_of_int !good /. float_of_int (len - n + 1)
  end
