(** Reference interpreter for scalar programs.

    Plays the role the MIPS R3000 + [pixie] play in the paper: it is both
    the semantic oracle (final registers, memory, observable output) and
    the cycle/trace oracle for the evaluation. The cycle model follows the
    paper's base machine: every instruction takes one cycle, loads take
    two (a one-cycle stall is charged when the next executed instruction
    uses the loaded value), and branches are free under the paper's
    optimistic BTB assumption. Recoverable faults are handled in place
    (demand page mapped, access retried); fatal faults stop the run. *)

type outcome = Halted | Fatal of Fault.t | Out_of_fuel

type result = {
  outcome : outcome;
  output : int list;  (** values emitted by [Out], in order *)
  cycles : int;
  dyn_instrs : int;
  block_trace : Label.t list;  (** blocks entered, in order *)
  regs : int Reg.Map.t;  (** final register file (registers ever written) *)
  faults_handled : int;
}

val run :
  ?fuel:int ->
  ?record_trace:bool ->
  ?kernel:Scalar_kernel.mode ->
  ?decoded:Decoded.t ->
  ?observer:(Instr.op -> int option -> unit) ->
  ?on_block:(int -> Label.t -> unit) ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Program.t ->
  result
(** [fuel] bounds the number of dynamic instructions (default 30M).
    [record_trace] (default true) controls whether [block_trace] is kept.
    [observer] is called for every executed operation with the memory
    address it touches, if any — the hook behind trace-driven analyses
    such as the ILP limit study. [on_block] is called with the current
    cycle count on every block entry (regardless of [record_trace]) —
    the hook behind per-block timelines. [mem] is mutated in place.

    [kernel] selects the per-instruction engine ({!Scalar_kernel}):
    [Decoded] — the default — walks the flat {!Decoded} form, [Tree]
    re-walks the block lists and variant trees; the two are pinned
    identical (cycles, trace, hooks, faults) by the differential tests.
    [decoded] supplies a prebuilt form so repeated runs of one program
    (fuzz stages, limit regimes) decode once; it must have been built
    from exactly this program.
    @raise Invalid_argument if [decoded] was decoded from a different
    program value ({!Decoded.check_source}). *)

val equivalent : result -> result -> bool
(** Same outcome, output and final registers — used to check that compiled
    code preserves semantics (memory is compared separately with
    {!Memory.equal}). *)

val pp_outcome : Format.formatter -> outcome -> unit
