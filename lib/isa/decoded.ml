(* Opcode class tags. The order matches the ROB backend's retirement
   class table ("alu"; "mov"; "load"; "store"; "cmp"; "setc"; "out";
   "nop"; "branch"), so class counters index by tag directly. *)
let kalu = 0
let kmov = 1
let kload = 2
let kstore = 3
let kcmp = 4
let ksetc = 5
let kout = 6
let knop = 7
let kbranch = 8
let num_kinds = 9

(* Terminator tags. *)
let thalt = 0
let tjmp = 1
let tbr = 2

type t = {
  source : Program.t;
  entry : int;
  nblocks : int;
  index : (string, int) Hashtbl.t;
  labels : Label.t array;
  op_bounds : int array;
  kind : int array;
  dst : int array;
  aux : int array;
  alu : Opcode.alu array;
  cmp : Opcode.cmp array;
  s1_reg : int array;
  s1_imm : int array;
  s2_reg : int array;
  s2_imm : int array;
  is_load : bool array;
  is_store : bool array;
  may_fault : bool array;
  ops : Instr.op array;
  term_kind : int array;
  term_src : int array;
  term_t : int array;
  term_f : int array;
  nregs : int;
  nconds : int;
}

let num_ops d = Array.length d.kind
let block_ops d bi = d.op_bounds.(bi + 1) - d.op_bounds.(bi)

let of_program (p : Program.t) =
  let blocks = Array.of_list p.Program.blocks in
  let nblocks = Array.length blocks in
  let index : (string, int) Hashtbl.t = Hashtbl.create (2 * nblocks) in
  Array.iteri
    (fun i (b : Program.block) -> Hashtbl.add index (Label.name b.Program.label) i)
    blocks;
  (* Unknown targets become -1 and only raise if control actually
     reaches them, matching the tree path's lazy [Program.find]. *)
  let resolve l =
    match Hashtbl.find_opt index (Label.name l) with Some i -> i | None -> -1
  in
  let op_bounds = Array.make (nblocks + 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i (b : Program.block) ->
      op_bounds.(i) <- !total;
      total := !total + List.length b.Program.body)
    blocks;
  op_bounds.(nblocks) <- !total;
  let n = !total in
  let kind = Array.make n knop in
  let dst = Array.make n (-1) in
  let aux = Array.make n 0 in
  let alu = Array.make n Opcode.Add in
  let cmp = Array.make n Opcode.Eq in
  let s1_reg = Array.make n (-1) in
  let s1_imm = Array.make n 0 in
  let s2_reg = Array.make n (-1) in
  let s2_imm = Array.make n 0 in
  let is_load = Array.make n false in
  let is_store = Array.make n false in
  let may_fault = Array.make n false in
  let ops = Array.make n Instr.Nop in
  let labels = Array.map (fun (b : Program.block) -> b.Program.label) blocks in
  let term_kind = Array.make (max 1 nblocks) thalt in
  let term_src = Array.make (max 1 nblocks) (-1) in
  let term_t = Array.make (max 1 nblocks) (-1) in
  let term_f = Array.make (max 1 nblocks) (-1) in
  let set1 i (o : Operand.t) =
    match o with
    | Operand.Reg r -> s1_reg.(i) <- Reg.index r
    | Operand.Imm v -> s1_imm.(i) <- v
  in
  let set2 i (o : Operand.t) =
    match o with
    | Operand.Reg r -> s2_reg.(i) <- Reg.index r
    | Operand.Imm v -> s2_imm.(i) <- v
  in
  let decode_op i (op : Instr.op) =
    ops.(i) <- op;
    match op with
    | Instr.Alu { op = o; dst = d; a; b } ->
        kind.(i) <- kalu;
        dst.(i) <- Reg.index d;
        alu.(i) <- o;
        may_fault.(i) <- Opcode.alu_unsafe o;
        set1 i a;
        set2 i b
    | Instr.Mov { dst = d; src } ->
        kind.(i) <- kmov;
        dst.(i) <- Reg.index d;
        set1 i src
    | Instr.Load { dst = d; base; off } ->
        kind.(i) <- kload;
        dst.(i) <- Reg.index d;
        aux.(i) <- off;
        is_load.(i) <- true;
        may_fault.(i) <- true;
        s1_reg.(i) <- Reg.index base
    | Instr.Store { src; base; off } ->
        kind.(i) <- kstore;
        aux.(i) <- off;
        is_store.(i) <- true;
        may_fault.(i) <- true;
        s1_reg.(i) <- Reg.index base;
        s2_reg.(i) <- Reg.index src
    | Instr.Cmp { op = o; dst = d; a; b } ->
        kind.(i) <- kcmp;
        dst.(i) <- Reg.index d;
        cmp.(i) <- o;
        set1 i a;
        set2 i b
    | Instr.Setc { dst = d; op = o; a; b } ->
        kind.(i) <- ksetc;
        dst.(i) <- Cond.index d;
        cmp.(i) <- o;
        set1 i a;
        set2 i b
    | Instr.Out o ->
        kind.(i) <- kout;
        set1 i o
    | Instr.Nop -> kind.(i) <- knop
  in
  Array.iteri
    (fun bi (b : Program.block) ->
      List.iteri (fun j op -> decode_op (op_bounds.(bi) + j) op) b.Program.body;
      match b.Program.term with
      | Instr.Halt -> term_kind.(bi) <- thalt
      | Instr.Jmp l ->
          term_kind.(bi) <- tjmp;
          term_t.(bi) <- resolve l
      | Instr.Br { src; if_true; if_false } ->
          term_kind.(bi) <- tbr;
          term_src.(bi) <- Reg.index src;
          term_t.(bi) <- resolve if_true;
          term_f.(bi) <- resolve if_false)
    blocks;
  {
    source = p;
    entry = resolve p.Program.entry;
    nblocks;
    index;
    labels;
    op_bounds;
    kind;
    dst;
    aux;
    alu;
    cmp;
    s1_reg;
    s1_imm;
    s2_reg;
    s2_imm;
    is_load;
    is_store;
    may_fault;
    ops;
    term_kind;
    term_src;
    term_t;
    term_f;
    nregs = max 1 (Program.max_reg p + 1);
    nconds = max 1 (Program.max_cond p + 1);
  }

let block_index d l =
  match Hashtbl.find_opt d.index (Label.name l) with Some i -> i | None -> -1

(* [run] validates with physical equality, like [Vliw_sim] does for the
   lowered VLIW form: a decoded form is a view of one exact program
   value, not of any structurally equal one. *)
let check_source d program =
  if d.source != program then
    invalid_arg "Decoded.check_source: decoded form built from a different program"
