module type SPEC = sig
  type mode

  val name : string
  val values : (string * mode) list
  val fallback : mode
end

module Make (X : SPEC) = struct
  let of_string s = List.assoc_opt s X.values

  let to_string m =
    match List.find_opt (fun (_, v) -> v = m) X.values with
    | Some (s, _) -> s
    | None -> assert false (* every mode is listed in [values] *)

  let expected = String.concat "|" (List.map fst X.values)

  let default =
    match Sys.getenv_opt X.name with
    | None -> X.fallback
    | Some s -> (
        match of_string (String.lowercase_ascii (String.trim s)) with
        | Some m -> m
        | None ->
            Printf.eprintf "psb: ignoring unknown %s=%s (expected %s)\n%!"
              X.name s expected;
            X.fallback)

  let pp ppf m = Format.pp_print_string ppf (to_string m)
end
