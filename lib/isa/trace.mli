(** Dynamic execution profiles derived from an interpreter block trace.

    This is the reproduction's stand-in for the [pixie] statistics the
    paper relies on: per-block and per-edge execution counts, profile-based
    static branch prediction, and the Table-3 metric (accuracy of
    predicting [n] successive branches). *)

type t

val of_blocks : Program.t -> Label.t list -> t
val of_result : Program.t -> Interp.result -> t

val block_count : t -> Label.t -> int
val edge_count : t -> src:Label.t -> dst:Label.t -> int
val dynamic_branches : t -> int

val hot_blocks : ?limit:int -> t -> (Label.t * int) list
(** Blocks by descending execution count (ties broken by label name) —
    the hot-block histogram behind [psb profile]. [limit] keeps the top
    [n] entries; all blocks by default. *)

val taken_fraction : t -> Label.t -> float option
(** For a block ending in [Br], the fraction of executions that went to
    [if_true]; [None] if the block never executed or is not a branch. *)

val predict : t -> Label.t -> bool
(** Profile-based static prediction for a branch block: the majority
    direction ([true] = [if_true]); defaults to [true] when unseen. *)

val prediction_accuracy : t -> float
(** Fraction of dynamic branches predicted correctly by {!predict}. *)

val successive_accuracy : t -> int -> float
(** [successive_accuracy t n]: fraction of length-[n] windows of
    consecutive dynamic branches in which all [n] are predicted correctly
    (Table 3). [1.0] when there are fewer than [n] dynamic branches. *)
