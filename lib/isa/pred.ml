type t = bool Cond.Map.t
(* Invariant: each condition appears at most once, with its required value. *)

type value = True | False | Unspec
type cond_value = T | F | U

let always = Cond.Map.empty
let is_always = Cond.Map.is_empty

let conj p c v =
  match Cond.Map.find_opt c p with
  | None -> Cond.Map.add c v p
  | Some v' when v = v' -> p
  | Some _ ->
      invalid_arg
        (Format.asprintf "Pred.conj: contradictory literal on %a" Cond.pp c)

let of_list lits = List.fold_left (fun p (c, v) -> conj p c v) always lits
let literals p = Cond.Map.bindings p
let conds p = Cond.Map.fold (fun c _ acc -> Cond.Set.add c acc) p Cond.Set.empty
let fold_conds f p acc = Cond.Map.fold f p acc
let iter_conds f p = Cond.Map.iter f p
let arity p = Cond.Map.cardinal p
let requires p c = Cond.Map.find_opt c p
let count_conds f p = Cond.Map.fold (fun c _ n -> if f c then n + 1 else n) p 0
let max_cond p = Option.map fst (Cond.Map.max_binding_opt p)

let flip p c =
  match Cond.Map.find_opt c p with
  | None ->
      invalid_arg
        (Format.asprintf "Pred.flip: %a not in predicate" Cond.pp c)
  | Some v -> Cond.Map.add c (not v) p

let eval p lookup =
  (* Unspec must dominate False no matter where the literals sit: a
     short-circuiting [Map.for_all] visits the tree root first, so its
     verdict on a mixed unspec/mismatch predicate would depend on the
     map's internal shape (i.e. on literal insertion order). Traverse
     every literal, exiting only for the dominant [Unspec]. *)
  let exception Unspecified in
  try
    let matched = ref true in
    Cond.Map.iter
      (fun c v ->
        match lookup c with
        | U -> raise Unspecified
        | T -> if not v then matched := false
        | F -> if v then matched := false)
      p;
    if !matched then True else False
  with Unspecified -> Unspec

let eval_early_false p lookup =
  let any_false =
    Cond.Map.exists
      (fun c v ->
        match lookup c with T -> not v | F -> v | U -> false)
      p
  in
  if any_false then False
  else
    let any_unspec = Cond.Map.exists (fun c _ -> lookup c = U) p in
    if any_unspec then Unspec else True

let implies p q =
  Cond.Map.for_all
    (fun c v -> match Cond.Map.find_opt c p with Some v' -> v = v' | None -> false)
    q

let disjoint p q =
  Cond.Map.exists
    (fun c v -> match Cond.Map.find_opt c q with Some v' -> v <> v' | None -> false)
    p

let equal = Cond.Map.equal Bool.equal
let compare = Cond.Map.compare Bool.compare

let rename f p =
  Cond.Map.fold (fun c v acc -> conj acc (f c) v) p always

let to_vector ~width p =
  let buf = Bytes.make width 'X' in
  Cond.Map.iter
    (fun c v ->
      let i = Cond.index c in
      if i >= width then
        invalid_arg
          (Format.asprintf "Pred.to_vector: %a out of CCR width %d" Cond.pp c
             width);
      Bytes.set buf i (if v then '1' else '0'))
    p;
  Bytes.to_string buf

(* ----- compiled form: the paper's ternary-mask comparator (§4.2.1) -----

   A conjunction over conditions [0 .. word_bits-1] packs into two machine
   words: [c_mask] has bit [i] set iff the predicate mentions condition
   [i], [c_want] the required value of each mentioned bit. Evaluation
   against a packed CCR ({!Ccr}-side) is then a pair of AND/compare ops —
   the software mirror of the per-entry mask comparators.

   Predicates reaching past [word_bits] conditions keep the same encoding
   per word in [c_wide] (index 0 = conditions [0..word_bits-1], aliasing
   [c_mask]/[c_want]); they are rare enough that the evaluator may loop. *)

let word_bits = Sys.int_size

type compiled = {
  c_source : t;
  c_mask : int;
  c_want : int;
  c_wide : (int array * int array) option;
}

let compile p =
  let maxi = match max_cond p with None -> -1 | Some c -> Cond.index c in
  if maxi < word_bits then
    let mask, want =
      Cond.Map.fold
        (fun c v (m, w) ->
          let b = 1 lsl Cond.index c in
          (m lor b, if v then w lor b else w))
        p (0, 0)
    in
    { c_source = p; c_mask = mask; c_want = want; c_wide = None }
  else begin
    let nwords = (maxi / word_bits) + 1 in
    let masks = Array.make nwords 0 and wants = Array.make nwords 0 in
    Cond.Map.iter
      (fun c v ->
        let i = Cond.index c in
        let w = i / word_bits and b = 1 lsl (i mod word_bits) in
        masks.(w) <- masks.(w) lor b;
        if v then wants.(w) <- wants.(w) lor b)
      p;
    {
      c_source = p;
      c_mask = masks.(0);
      c_want = wants.(0);
      c_wide = Some (masks, wants);
    }
  end

let compiled_always = compile always
let source cp = cp.c_source

let compiled_fits ~width cp =
  match cp.c_wide with
  | None ->
      if width >= word_bits then true
      else cp.c_mask land lnot ((1 lsl width) - 1) = 0
  | Some (masks, _) ->
      let nwords = Array.length masks in
      let ok = ref true in
      for w = 0 to nwords - 1 do
        let lo = w * word_bits in
        let allowed =
          if width >= lo + word_bits then -1
          else if width <= lo then 0
          else (1 lsl (width - lo)) - 1
        in
        if masks.(w) land lnot allowed <> 0 then ok := false
      done;
      !ok

let pp ppf p =
  if is_always p then Format.pp_print_string ppf "alw"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "&")
      (fun ppf (c, v) ->
        if v then Cond.pp ppf c else Format.fprintf ppf "!%a" Cond.pp c)
      ppf (literals p)

let pp_value ppf v =
  Format.pp_print_string ppf
    (match v with True -> "T" | False -> "F" | Unspec -> "U")
