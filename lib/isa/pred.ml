type t = bool Cond.Map.t
(* Invariant: each condition appears at most once, with its required value. *)

type value = True | False | Unspec
type cond_value = T | F | U

let always = Cond.Map.empty
let is_always = Cond.Map.is_empty

let conj p c v =
  match Cond.Map.find_opt c p with
  | None -> Cond.Map.add c v p
  | Some v' when v = v' -> p
  | Some _ ->
      invalid_arg
        (Format.asprintf "Pred.conj: contradictory literal on %a" Cond.pp c)

let of_list lits = List.fold_left (fun p (c, v) -> conj p c v) always lits
let literals p = Cond.Map.bindings p
let conds p = Cond.Map.fold (fun c _ acc -> Cond.Set.add c acc) p Cond.Set.empty
let arity p = Cond.Map.cardinal p
let requires p c = Cond.Map.find_opt c p
let count_conds f p = Cond.Map.fold (fun c _ n -> if f c then n + 1 else n) p 0
let max_cond p = Option.map fst (Cond.Map.max_binding_opt p)

let flip p c =
  match Cond.Map.find_opt c p with
  | None ->
      invalid_arg
        (Format.asprintf "Pred.flip: %a not in predicate" Cond.pp c)
  | Some v -> Cond.Map.add c (not v) p

let eval p lookup =
  let exception Unspecified in
  try
    let matched =
      Cond.Map.for_all
        (fun c v ->
          match lookup c with
          | U -> raise Unspecified
          | T -> v
          | F -> not v)
        p
    in
    if matched then True else False
  with Unspecified -> Unspec

let eval_early_false p lookup =
  let any_false =
    Cond.Map.exists
      (fun c v ->
        match lookup c with T -> not v | F -> v | U -> false)
      p
  in
  if any_false then False
  else
    let any_unspec = Cond.Map.exists (fun c _ -> lookup c = U) p in
    if any_unspec then Unspec else True

let implies p q =
  Cond.Map.for_all
    (fun c v -> match Cond.Map.find_opt c p with Some v' -> v = v' | None -> false)
    q

let disjoint p q =
  Cond.Map.exists
    (fun c v -> match Cond.Map.find_opt c q with Some v' -> v <> v' | None -> false)
    p

let equal = Cond.Map.equal Bool.equal
let compare = Cond.Map.compare Bool.compare

let rename f p =
  Cond.Map.fold (fun c v acc -> conj acc (f c) v) p always

let to_vector ~width p =
  let buf = Bytes.make width 'X' in
  Cond.Map.iter
    (fun c v ->
      let i = Cond.index c in
      if i >= width then
        invalid_arg
          (Format.asprintf "Pred.to_vector: %a out of CCR width %d" Cond.pp c
             width);
      Bytes.set buf i (if v then '1' else '0'))
    p;
  Bytes.to_string buf

let pp ppf p =
  if is_always p then Format.pp_print_string ppf "alw"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "&")
      (fun ppf (c, v) ->
        if v then Cond.pp ppf c else Format.fprintf ppf "!%a" Cond.pp c)
      ppf (literals p)

let pp_value ppf v =
  Format.pp_print_string ppf
    (match v with True -> "T" | False -> "F" | Unspec -> "U")
