(** Predicates: conjunctions of (possibly negated) branch conditions.

    The paper restricts predicate expressions to an ANDed operation with
    negation (e.g. [c1 & !c2 & c3]) so that a predicate can be encoded as a
    ternary vector over the CCR entries — one of required-true ([1]),
    required-false ([0]) or don't-care ([X]) per condition — and evaluated
    by a simple masked-match operation (three gate delays, §4.2.1). *)

type t

type value = True | False | Unspec
(** Result of evaluating a predicate against the CCR. *)

type cond_value = T | F | U
(** Value of a single branch condition: true, false, or not yet specified. *)

val always : t
(** The empty conjunction, written [alw] in the paper: always true. *)

val is_always : t -> bool

val of_list : (Cond.t * bool) list -> t
(** [of_list [(c0, true); (c2, false)]] is the predicate [c0 & !c2].
    @raise Invalid_argument if the same condition appears with both
    polarities. *)

val conj : t -> Cond.t -> bool -> t
(** [conj p c v] is [p & (c = v)].
    @raise Invalid_argument if [p] already requires [c = not v]. *)

val literals : t -> (Cond.t * bool) list
(** Sorted by condition index. *)

val conds : t -> Cond.Set.t

val fold_conds : (Cond.t -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the literals in condition order, without materialising a
    set or list (the allocation-free counterpart of {!conds}). *)

val iter_conds : (Cond.t -> bool -> unit) -> t -> unit

val arity : t -> int
(** Number of branch conditions the predicate depends on. *)

val requires : t -> Cond.t -> bool option
(** [requires p c] is [Some v] if [p] contains the literal [c = v]. *)

val count_conds : (Cond.t -> bool) -> t -> int
(** [count_conds f p] is the number of distinct conditions of [p]
    satisfying [f] — e.g. the number of still-unresolved conditions at a
    given cycle, the quantity bounded by [max_spec_conds]. *)

val max_cond : t -> Cond.t option
(** Highest condition referenced, or [None] for [alw]. Used to check a
    predicate against the physical CCR width. *)

val flip : t -> Cond.t -> t
(** [flip p c] negates the polarity of the literal on [c], yielding a
    predicate disjoint with [p] (they disagree on [c]).
    @raise Invalid_argument if [p] does not mention [c]. *)

val eval : t -> (Cond.t -> cond_value) -> value
(** Hardware evaluation rule (§3.2): if any required condition is
    unspecified the result is [Unspec] regardless of the other literals;
    otherwise [True] iff every literal matches. The rule is a pure
    function of the literal {e set} — deliberately independent of the
    predicate's internal representation — so the compiled mask kernel
    ({!Ccr.evalc}) reproduces it bit-exactly. *)

val eval_early_false : t -> (Cond.t -> cond_value) -> value
(** Stricter rule used in ablations: a single mismatching specified literal
    makes the predicate [False] even while other literals are unspecified.
    Semantically equivalent (the state is squashed either way) but frees
    shadow storage earlier. *)

val implies : t -> t -> bool
(** [implies p q]: whenever [p] is true, [q] is true (the literals of [q]
    are a subset of those of [p]). *)

val disjoint : t -> t -> bool
(** [disjoint p q]: [p] and [q] cannot both be true (they contain a
    condition with opposite polarities). Instructions with disjoint
    predicates lie on mutually exclusive control paths. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val rename : (Cond.t -> Cond.t) -> t -> t
(** Rename the conditions (used to map virtual conditions onto the [K]
    physical CCR entries of a region).
    @raise Invalid_argument if the renaming merges two literals with
    opposite polarities. *)

val word_bits : int
(** Number of condition indices a single packed word covers
    ([Sys.int_size]). *)

type compiled = private {
  c_source : t;  (** the predicate this was compiled from *)
  c_mask : int;  (** bit [i] set iff condition [i] is mentioned *)
  c_want : int;  (** required value of every mentioned bit *)
  c_wide : (int array * int array) option;
      (** [(masks, wants)] per word for predicates reaching condition
          indices [>= word_bits]; word 0 aliases [c_mask]/[c_want].
          [None] for the (overwhelmingly common) single-word case. *)
}
(** A predicate compiled to the paper's ternary-mask comparator form
    (§4.2.1): one required/mentioned bit pair per condition, so that
    evaluation against a packed CCR is a handful of word operations with
    zero allocation. Compiled once per static instruction (at pcode
    construction); evaluated every cycle by {!Ccr}-side hardware mirrors. *)

val compile : t -> compiled

val compiled_always : compiled
(** [compile always], shared. *)

val source : compiled -> t

val compiled_fits : width:int -> compiled -> bool
(** Whether every mentioned condition index is [< width] — the mask form
    of the CCR-width check ([mask land ones(width) = mask]). *)

val to_vector : width:int -> t -> string
(** Ternary-vector encoding over CCR entries [0 .. width-1], e.g. ["1X0"].
    @raise Invalid_argument if a condition index is [>= width]. *)

val pp : Format.formatter -> t -> unit
(** Prints [alw], or the conjunction, e.g. [c0&!c2]. *)

val pp_value : Format.formatter -> value -> unit
