(** Predecoded flat program form for the scalar machines.

    What {!Lowered} ({i lib/machine}) is to predicated VLIW regions,
    this pass is to plain {!Program}s: a one-time [of_program] walk
    compiles the block list into structure-of-arrays form — dense
    int-tagged opcodes, preresolved operand register indices and
    immediates, branch targets as block indices, CSR-style per-block
    instruction bounds, and per-instruction load/store/may-fault flags —
    so the per-instruction step of the reference interpreter
    ({!Interp}) and the dispatch/complete loops of the ROB backend
    become array walks with no variant matching, no per-instruction
    list allocation, and no [Label] hashing on the hot path.

    The decoded form is a {e view}: it shares the original {!Instr.op}
    values ([ops], for observer callbacks) and is only valid for the
    exact program value it was built from ([source] is compared
    physically, mirroring the stale-lowered-form rejection in the VLIW
    machine). Both kernels are pinned identical — cycles, traces,
    events, metrics, faults — by the differential test stack; the
    kernel axis is {!Scalar_kernel} ([PSB_SCALAR_KERNEL=decoded|tree]). *)

(** {2 Opcode class tags}

    Values of the [kind] array. The order matches the ROB backend's
    retirement class table, so per-class counters index directly. *)

val kalu : int
val kmov : int
val kload : int
val kstore : int
val kcmp : int
val ksetc : int
val kout : int
val knop : int

val kbranch : int
(** Not produced by [of_program] (terminators live in the [term_*]
    arrays); reserved for backends that tag branch entries in the same
    class space. *)

val num_kinds : int

(** {2 Terminator tags} — values of the [term_kind] array. *)

val thalt : int
val tjmp : int
val tbr : int

type t = {
  source : Program.t;  (** the exact program this form was decoded from *)
  entry : int;  (** block index of the program entry *)
  nblocks : int;
  index : (string, int) Hashtbl.t;  (** label name → block index *)
  labels : Label.t array;  (** block index → label (trace/event names) *)
  op_bounds : int array;
      (** CSR bounds: block [b]'s operations are the flat indices
          [op_bounds.(b) .. op_bounds.(b+1) - 1]; length [nblocks + 1] *)
  kind : int array;  (** opcode class tag, one of the [k*] values above *)
  dst : int array;
      (** destination register index ([kalu]/[kmov]/[kload]/[kcmp]),
          condition index ([ksetc]), [-1] otherwise *)
  aux : int array;  (** memory offset for loads/stores, [0] otherwise *)
  alu : Opcode.alu array;  (** valid where [kind] is [kalu] *)
  cmp : Opcode.cmp array;  (** valid where [kind] is [kcmp]/[ksetc] *)
  s1_reg : int array;
      (** first-source register index, [-1] when the operand is an
          immediate (then [s1_imm] holds it). First source = [a] for
          ALU/compares, [src] for mov/out, [base] for loads/stores. *)
  s1_imm : int array;
  s2_reg : int array;
      (** second source: [b] for ALU/compares, the stored [src] register
          for stores; [-1] where absent or immediate *)
  s2_imm : int array;
  is_load : bool array;
  is_store : bool array;
  may_fault : bool array;
      (** can raise at runtime: memory operations and unsafe ALU ops *)
  ops : Instr.op array;  (** the original operations, shared, per flat index *)
  term_kind : int array;  (** per block: [thalt] / [tjmp] / [tbr] *)
  term_src : int array;  (** branch condition register index, [-1] otherwise *)
  term_t : int array;
      (** jump target / branch taken target as a block index; [-1] for
          halt and for labels missing from the program (raising only if
          control reaches them, like the tree path's lazy lookup) *)
  term_f : int array;  (** branch fall-through target block index *)
  nregs : int;  (** [max 1 (Program.max_reg + 1)], array sizing hint *)
  nconds : int;  (** [max 1 (Program.max_cond + 1)] *)
}

val of_program : Program.t -> t
(** Decode once; O(program size). *)

val num_ops : t -> int
val block_ops : t -> int -> int

val block_index : t -> Label.t -> int
(** Block index of a label, [-1] if unknown (hash lookup, no scan). *)

val check_source : t -> Program.t -> unit
(** @raise Invalid_argument if the form was not decoded from exactly
    this program value (physical equality, like the stale-lowered-form
    check in the VLIW machine). *)
