type mode = Decoded | Tree

include Kernel_mode.Make (struct
  type nonrec mode = mode

  let name = "PSB_SCALAR_KERNEL"
  let values = [ ("decoded", Decoded); ("tree", Tree) ]
  let fallback = Decoded
end)
