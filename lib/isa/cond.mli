(** Branch-condition registers (entries of the CCR).

    In scalar code, conditions are virtual and unbounded; region formation
    renames the conditions used inside a region onto the [K] physical CCR
    entries (the paper uses [K] = 4 for the base machine). *)

type t = int

val make : int -> t
val index : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [c<i>]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Format.formatter -> Set.t -> unit
(** Prints as [{c0,c2}]. *)
