(** Bounded Fibonacci with an odd-term filter: a small, fast demo
    workload for the observability tooling ([psb trace fib],
    [psb profile fib]). Registered as a {!Suite.extras} entry — not part
    of the paper's six-benchmark suite, so the tables and figures are
    unaffected. *)

val workload : Dsl.t
