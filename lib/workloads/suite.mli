(** The benchmark suite: the six kernels standing in for the paper's
    programs (Table 2), plus extra named workloads for tooling demos. *)

val all : Dsl.t list
(** In the paper's order: compress, eqntott, espresso, grep, li, nroff. *)

val extras : Dsl.t list
(** Workloads findable by {!find} but outside the evaluation suite (e.g.
    [fib]) — the tables and figures only ever use {!all}. *)

val find : string -> Dsl.t
(** Searches {!all} then {!extras}. @raise Not_found for unknown names. *)

val names : string list
(** Names of {!all} (the evaluation suite only). *)
