open Psb_isa
open Dsl

(* Register plan: r1 = i, r2 = a (fib i), r3 = b (fib i+1), r4 = N,
   r5 = odd-sum accumulator, r6 = scratch compare, r7 = t, r8 = parity,
   r20 = output table base. *)

let n = 600
let table_base = 0

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry"
        [ mov 1 (i 0); mov 2 (i 0); mov 3 (i 1); mov 5 (i 0) ]
        (jmp "loop");
      block "loop" [ cmp 6 Opcode.Lt (r 1) (r 4) ] (br 6 "step" "done");
      block "step"
        [
          add 7 (r 2) (r 3);
          (* keep values bounded so the sum stays in small-int range *)
          band 7 (r 7) (i 0xffff);
          mov 2 (r 3);
          mov 3 (r 7);
          add 9 (r 20) (r 1);
          store 2 9 0;
          band 8 (r 2) (i 1);
        ]
        (br 8 "odd" "next");
      block "odd" [ add 5 (r 5) (r 2) ] (jmp "next");
      block "next" [ add 1 (r 1) (i 1) ] (jmp "loop");
      block "done" [ out (r 2); out (r 5) ] halt;
    ]

let make_mem () = Memory.create ~size:2048

let workload =
  {
    name = "fib";
    description = "bounded Fibonacci with an odd-term filter (small demo)";
    program;
    regs = [ (reg 4, n); (reg 20, table_base) ];
    make_mem;
  }
