let all =
  [
    Compress_k.workload;
    Eqntott_k.workload;
    Espresso_k.workload;
    Grep_k.workload;
    Li_k.workload;
    Nroff_k.workload;
  ]

(* Workloads findable by name but outside the paper's six-benchmark
   suite (so the tables and figures keep their shape). *)
let extras = [ Fib_k.workload ]

let find name = List.find (fun (w : Dsl.t) -> w.Dsl.name = name) (all @ extras)
let names = List.map (fun (w : Dsl.t) -> w.Dsl.name) all
