(** Static speculation-safety verifier for compiled predicated code.

    The paper's predicating mechanism is only sound if every compiled
    schedule respects a catalogue of structural invariants — predicates
    resolve before the exits that need them, buffered speculative state
    fits the machine's shadow-register and store-buffer capacity on every
    CCR resolution path, recovery-mode re-execution is idempotent or
    squashed, and speculative writers of one architectural register
    commit in program order. The machine ({!Psb_machine.Vliw_sim}) checks
    these dynamically and raises [Machine_error] when a schedule breaks
    one; this module proves them statically, per region, over the emitted
    {!Psb_machine.Pcode}, so a miscompile is a compile-time diagnostic
    with a program location instead of a simulator abort on whichever
    input happens to reach the broken bundle.

    The analysis is a timing abstraction of the machine's cycle loop: a
    bundle at index [b] issues at cycle [b] (stalls only delay every
    event uniformly, so relative cycle arithmetic is exact), an operation
    of latency [l] writes back at [b + l], and a condition set by a
    [Setc] issued at [s] is visible to issue-time predicate evaluation
    from cycle [s + l] on and to writeback-time evaluation one cycle
    later. Each check compares those derived times against the
    guarantees [Psb_compiler.Depgraph] encodes as edge latencies, so
    every schedule the compiler emits today verifies, and a transform
    that drops a dependence edge is caught the moment it runs.

    [docs/INVARIANTS.md] is the prose catalogue of the invariants this
    module enforces, cross-referenced to the paper and to the tests. *)

open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode

(** {1 Diagnostics} *)

type check =
  | Wellformed
      (** Predicate well-formedness: every condition a predicate or exit
          reads is written by exactly one dominating [Setc], fits the
          CCR, and is resolved where the machine requires it resolved
          (exit evaluation, no write pending when an exit fires). *)
  | Capacity
      (** Buffered-state capacity: worst-case speculative demand —
          unresolved conditions carried at issue, shadow-register
          versions per architectural register, store-buffer occupancy —
          never exceeds the {!Machine_model} limits. *)
  | Recovery
      (** Recovery soundness: every operation that can issue while its
          predicate is still unspecified (and so can be re-executed in
          recovery mode from the RPC) is idempotent-or-squashed — its
          effect is a buffered register write, a buffered store, or a
          buffered fault, never an unbuffered side effect. *)
  | Commit_order
      (** WAW / commit-order consistency: non-disjoint writers of one
          architectural register retire in program order even when the
          earlier writer's value is parked in a shadow register, and
          stores to one address enter the store buffer in program
          order. *)

val check_name : check -> string
(** Stable lower-case identifier ([wellformed], [capacity], [recovery],
    [commit-order]) used in metrics labels and JSON. *)

val pp_check : Format.formatter -> check -> unit

type loc = {
  region : Label.t;
  bundle : int option;  (** bundle index, [None] for region-wide facts *)
  slot : int option;  (** slot index within the bundle *)
}
(** Program location of a violation, precise to the slot when the
    violated invariant is attributable to one. *)

type violation = { check : check; loc : loc; message : string }

val pp_violation : Format.formatter -> violation -> unit
(** One line: [check at region[bundle.slot]: message]. *)

(** {1 Reports} *)

type report = {
  regions : int;  (** regions analysed *)
  bundles : int;
  slots : int;
  conds : int;  (** distinct condition definitions checked *)
  writer_pairs : int;  (** same-register writer pairs analysed *)
  sb_demand : int;  (** worst-case store-buffer occupancy, all regions *)
  violations : violation list;  (** in region/bundle/slot order *)
}

val run : ?single_shadow:bool -> Machine_model.t -> Pcode.t -> report
(** Verify every region of a compiled program against [machine]'s
    capacity limits. [single_shadow] (default [true], matching
    [Psb_compiler.Driver.compile]) selects the shadow-register file the
    code was compiled for; under the infinite ablation the per-register
    shadow-capacity check is vacuous and skipped. Pure: never raises on
    malformed input — malformedness {e is} the output. *)

val ok : report -> bool
(** [ok r] iff [r.violations = []]. *)

val pp : Format.formatter -> report -> unit
(** Multi-line human-readable report: summary counters, then one line
    per violation. *)

val to_json : report -> Psb_obs.Json.t
(** Schema: [{"ok", "regions", "bundles", "slots", "conds",
    "writer_pairs", "sb_demand", "violations": [{"check", "region",
    "bundle", "slot", "message"}...]}]. [bundle]/[slot] members are
    omitted when the violation is region-wide. *)

val observe_metrics : report -> Psb_obs.Metrics.t -> unit
(** Export pass/violation counters into a metrics registry:
    [verify_passes] / [verify_failures] (one per report),
    [verify_regions] / [verify_slots] (work done), and
    [verify_violations] labelled by [check] — all four check labels are
    always present so a clean run shows explicit zeros. *)
