open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode

type check = Wellformed | Capacity | Recovery | Commit_order

let all_checks = [ Wellformed; Capacity; Recovery; Commit_order ]

let check_name = function
  | Wellformed -> "wellformed"
  | Capacity -> "capacity"
  | Recovery -> "recovery"
  | Commit_order -> "commit-order"

let pp_check ppf c = Format.pp_print_string ppf (check_name c)

type loc = { region : Label.t; bundle : int option; slot : int option }
type violation = { check : check; loc : loc; message : string }

let pp_loc ppf l =
  Label.pp ppf l.region;
  match (l.bundle, l.slot) with
  | Some b, Some s -> Format.fprintf ppf "[%d.%d]" b s
  | Some b, None -> Format.fprintf ppf "[%d]" b
  | None, _ -> ()

let pp_violation ppf v =
  Format.fprintf ppf "%a at %a: %s" pp_check v.check pp_loc v.loc v.message

type report = {
  regions : int;
  bundles : int;
  slots : int;
  conds : int;
  writer_pairs : int;
  sb_demand : int;
  violations : violation list;
}

let ok r = r.violations = []

(* The analysis reasons in issue cycles relative to the region start:
   bundle [b] issues at cycle [b] (stalls delay all later events
   uniformly, so relative arithmetic is exact), an op of latency [l]
   issued at [b] writes back at step 1 of cycle [b + l], and a condition
   set at [s] is applied to the CCR at step 2 of cycle [s + l] — visible
   to issue/exit evaluation from cycle [s + l] and to writeback-time
   evaluation from cycle [s + l + 1].  [never] stands for "no cycle":
   the condition is unset (or multiply set) in the region. *)
let never = max_int / 4

(* One per-region accumulator so every violation carries its location. *)
type ctx = {
  name : Label.t;
  mutable viols : violation list;
  mutable conds : int;
  mutable pairs : int;
  mutable sb_demand : int;
}

let add ctx check ?bundle ?slot fmt =
  Format.kasprintf
    (fun message ->
      ctx.viols <-
        { check; loc = { region = ctx.name; bundle; slot }; message }
        :: ctx.viols)
    fmt

(* A register writer, in flattened slot order. *)
type writer = {
  wb_bundle : int;
  wb_slot : int;
  wb_pred : Pred.t;
  wb : int;  (** writeback cycle *)
  rez : int;  (** cycle the predicate's last condition becomes available *)
}

let verify_region ~single_shadow machine (r : Pcode.region) =
  let ctx =
    { name = r.Pcode.name; viols = []; conds = 0; pairs = 0; sb_demand = 0 }
  in
  let ccr = Machine_model.ccr_size machine in
  let slots =
    Array.to_list r.Pcode.code
    |> List.mapi (fun b bundle -> List.mapi (fun s slot -> (b, s, slot)) bundle)
    |> List.concat
  in
  (* ----- condition definitions (Setc slots) ----- *)
  let defs : (int, (int * int * int) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b, s, slot) ->
      match slot with
      | Pcode.Op { Pcode.op; pred; _ } -> (
          match Instr.cond_def op with
          | None -> ()
          | Some c ->
              let lat = Machine_model.latency machine op in
              let prev =
                Option.value (Hashtbl.find_opt defs (Cond.index c)) ~default:[]
              in
              Hashtbl.replace defs (Cond.index c) (prev @ [ (b, s, lat) ]);
              if Cond.index c >= ccr then
                add ctx Wellformed ~bundle:b ~slot:s
                  "condition %a is outside the CCR (%d entries)" Cond.pp c ccr;
              if not (Pred.is_always pred) then
                add ctx Wellformed ~bundle:b ~slot:s
                  "condition-set instruction for %a is predicated (%a) — \
                   Setc must issue under alw"
                  Cond.pp c Pred.pp pred)
      | Pcode.Exit _ -> ())
    slots;
  ctx.conds <- Hashtbl.length defs;
  (* [avail c]: first cycle at which issue-time predicate evaluation sees
     [c] specified. *)
  let avail c =
    match Hashtbl.find_opt defs (Cond.index c) with
    | Some [ (b, _, lat) ] -> b + lat
    | _ -> never
  in
  let resolve p = Pred.fold_conds (fun c _ acc -> max acc (avail c)) p 0 in
  (* ----- predicate well-formedness ----- *)
  let reported_missing = Hashtbl.create 4 in
  let check_pred_conds b s slot =
    let p = Pcode.slot_pred slot in
    (* The compiled mask answers the CCR-width question for the whole
       predicate at once; the per-condition scan below only has to name
       offenders when it says no. *)
    let fits = Pred.compiled_fits ~width:ccr (Pcode.slot_cpred slot) in
    Pred.iter_conds
      (fun c _ ->
        if (not fits) && Cond.index c >= ccr then
          add ctx Wellformed ~bundle:b ~slot:s
            "predicate %a reads %a, outside the CCR (%d entries)" Pred.pp p
            Cond.pp c ccr;
        match Hashtbl.find_opt defs (Cond.index c) with
        | Some [ _ ] -> ()
        | Some ((db, ds, _) :: _ :: _ ) ->
            if not (Hashtbl.mem reported_missing (Cond.index c)) then begin
              Hashtbl.add reported_missing (Cond.index c) ();
              add ctx Wellformed ~bundle:db ~slot:ds
                "condition %a is set more than once — condition registers \
                 are write-once within a region"
                Cond.pp c
            end
        | Some [] | None ->
            if not (Hashtbl.mem reported_missing (Cond.index c)) then begin
              Hashtbl.add reported_missing (Cond.index c) ();
              add ctx Wellformed ~bundle:b ~slot:s
                "predicate %a reads %a, which no Setc in this region writes \
                 — it can never resolve"
                Pred.pp p Cond.pp c
            end)
      p
  in
  List.iter (fun (b, s, slot) -> check_pred_conds b s slot) slots;
  (* ----- per-slot issue-time checks ----- *)
  let max_spec = Machine_model.max_spec_conds machine in
  List.iter
    (fun (b, s, slot) ->
      let pred = Pcode.slot_pred slot in
      (* speculation degree: conditions still unspecified when the bundle
         issues; the CCR match hardware tracks at most [max_spec_conds] *)
      let unresolved = Pred.count_conds (fun c -> avail c > b) pred in
      if unresolved > max_spec then
        add ctx Capacity ~bundle:b ~slot:s
          "predicate %a carries %d unresolved conditions at issue — the \
           machine speculates past at most %d"
          Pred.pp pred unresolved max_spec;
      match slot with
      | Pcode.Exit _ ->
          (* exits evaluate against the live CCR when their bundle issues:
             every condition must already be specified *)
          Pred.iter_conds
            (fun c _ ->
              let a = avail c in
              if a > b && a < never then
                add ctx Wellformed ~bundle:b ~slot:s
                  "exit reads %a, specified no earlier than cycle %d but \
                   evaluated at cycle %d"
                  Cond.pp c a b)
            pred;
          (* an exit that fires while a condition write is in flight loses
             the write: the machine raises a machine error on this *)
          Hashtbl.iter
            (fun ci ds ->
              match ds with
              | [ (db, _, lat) ] when db <= b && b < db + lat ->
                  add ctx Wellformed ~bundle:b ~slot:s
                    "exit can fire while the write to %a (set at bundle %d, \
                     latency %d) is still pending"
                    Cond.pp (Cond.make ci) db lat
              | _ -> ())
            defs
      | Pcode.Op { Pcode.op; _ } -> (
          (* recovery soundness: anything that can issue while its
             predicate is unspecified may be re-executed in recovery mode
             and must be idempotent-or-squashed — register writes, loads
             and stores are buffered; an Out is externally visible the
             cycle it executes *)
          match op with
          | Instr.Out _ when resolve pred > b ->
              add ctx Recovery ~bundle:b ~slot:s
                "output instruction can issue while %a is unspecified — its \
                 effect is neither buffered nor squashable in recovery mode"
                Pred.pp pred
          | _ -> ()))
    slots;
  (* ----- shadow-register capacity and commit order ----- *)
  let writers : (Reg.t, writer list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b, s, slot) ->
      match slot with
      | Pcode.Op { Pcode.op; pred; _ } ->
          List.iter
            (fun reg ->
              let w =
                {
                  wb_bundle = b;
                  wb_slot = s;
                  wb_pred = pred;
                  wb = b + Machine_model.latency machine op;
                  rez = resolve pred;
                }
              in
              let prev = Option.value (Hashtbl.find_opt writers reg) ~default:[] in
              Hashtbl.replace writers reg (prev @ [ w ]))
            (Instr.defs op)
      | Pcode.Exit _ -> ())
    slots;
  let shadow_cap = Machine_model.shadow_capacity ~single_shadow machine in
  let rec pairwise reg = function
    | [] -> ()
    | i :: rest ->
        List.iter
          (fun j ->
            ctx.pairs <- ctx.pairs + 1;
            if Pred.disjoint i.wb_pred j.wb_pred then begin
              (* mutually exclusive writers: only shadow contention can go
                 wrong.  [i] occupies the shadow entry from its writeback
                 until its predicate resolves; a second speculative
                 writeback before that demands a second shadow version. *)
              if
                shadow_cap = 1 && i.rez >= i.wb && j.rez >= j.wb
                && j.wb < i.rez
              then
                add ctx Capacity ~bundle:j.wb_bundle ~slot:j.wb_slot
                  "second speculative version of %a demanded at cycle %d \
                   while the write from %d.%d occupies its shadow register \
                   until cycle %d"
                  Reg.pp reg j.wb i.wb_bundle i.wb_slot i.rez
            end
            else begin
              (* possibly-both-true writers must retire in program order *)
              if j.wb < i.wb then
                add ctx Commit_order ~bundle:j.wb_bundle ~slot:j.wb_slot
                  "write to %a retires at cycle %d, before the \
                   program-order-earlier write from %d.%d retires at %d"
                  Reg.pp reg j.wb i.wb_bundle i.wb_slot i.wb;
              (* if [i]'s value is parked speculative, it commits from the
                 shadow when its predicate resolves; a later write landing
                 at or before that commit is overwritten by the stale
                 value.  Exemption: when either writer is unpredicated the
                 pair is the join-duplication select idiom (4.2.2) — the
                 predicated duplicate of a post-join instruction commits
                 over the always-path copy, and the commit IS the select.
                 This mirrors exactly when Depgraph emits a commit-order
                 hazard edge. *)
              if
                (not (Pred.is_always i.wb_pred))
                && (not (Pred.is_always j.wb_pred))
                && (not (Pred.equal i.wb_pred j.wb_pred))
                && i.rez >= i.wb && i.rez < never && j.wb <= i.rez
              then
                add ctx Commit_order ~bundle:j.wb_bundle ~slot:j.wb_slot
                  "write to %a at cycle %d can be overwritten when the \
                   buffered speculative write from %d.%d commits at cycle \
                   %d"
                  Reg.pp reg j.wb i.wb_bundle i.wb_slot i.rez
            end)
          rest;
        pairwise reg rest
  in
  Hashtbl.iter pairwise writers;
  (* ----- store order and store-buffer occupancy ----- *)
  let stores =
    List.filter_map
      (fun (b, s, slot) ->
        match slot with
        | Pcode.Op { Pcode.op = Instr.Store { base; off; _ } as op; pred; _ }
          ->
            Some
              ( (base, off),
                {
                  wb_bundle = b;
                  wb_slot = s;
                  wb_pred = pred;
                  wb = b + Machine_model.latency machine op;
                  rez = resolve pred;
                } )
        | _ -> None)
      slots
  in
  let base_redefined_between i j =
    (* conservative: any same-region write to the base register between
       the two stores makes the address comparison meaningless *)
    let base = fst (fst i) in
    let lo = (snd i).wb_bundle and hi = (snd j).wb_bundle in
    List.exists
      (fun (b, _, slot) ->
        b >= lo && b <= hi
        &&
        match slot with
        | Pcode.Op { Pcode.op; _ } ->
            List.exists (Reg.equal base) (Instr.defs op)
        | Pcode.Exit _ -> false)
      slots
  in
  let rec store_pairs = function
    | [] -> ()
    | i :: rest ->
        List.iter
          (fun j ->
            let (bi, oi) = fst i and (bj, oj) = fst j in
            if
              Reg.equal bi bj && oi = oj
              && (not (Pred.disjoint (snd i).wb_pred (snd j).wb_pred))
              && (not (base_redefined_between i j))
              && (snd j).wb < (snd i).wb
            then
              add ctx Commit_order ~bundle:(snd j).wb_bundle
                ~slot:(snd j).wb_slot
                "store to mem[%a%+d] enters the store buffer at cycle %d, \
                 before the program-order-earlier store from %d.%d enters \
                 at %d"
                Reg.pp bj oj (snd j).wb (snd i).wb_bundle (snd i).wb_slot
                (snd i).wb)
          rest;
        store_pairs rest
  in
  store_pairs stores;
  (* worst-case occupancy: entries append at writeback (stores share one
     latency, so appends are FIFO in slot order), become drainable when
     both appended and resolved, and leave head-first through
     [dcache_ports] per cycle.  The all-true resolution path realises
     this bound, so exceeding [sb_capacity] is reachable demand. *)
  let entries = List.map snd stores in
  let n = List.length entries in
  if n > 0 then begin
    let append = Array.of_list (List.map (fun w -> w.wb) entries) in
    let rel =
      Array.of_list (List.map (fun w -> max w.wb (min w.rez never)) entries)
    in
    let ports = max 1 (Machine_model.dcache_ports machine) in
    let free = Array.make n 0 in
    for k = 0 to n - 1 do
      let f = rel.(k) in
      let f = if k > 0 then max f free.(k - 1) else f in
      let f = if k >= ports then max f (free.(k - ports) + 1) else f in
      free.(k) <- f
    done;
    let cap = Machine_model.sb_capacity machine in
    let worst = ref 0 and worst_k = ref 0 in
    for k = 0 to n - 1 do
      let occ = ref 0 in
      for j = 0 to k do
        if free.(j) >= append.(k) then incr occ
      done;
      if !occ > !worst then begin
        worst := !occ;
        worst_k := k
      end
    done;
    ctx.sb_demand <- !worst;
    if !worst > cap then begin
      let w = List.nth entries !worst_k in
      add ctx Capacity ~bundle:w.wb_bundle ~slot:w.wb_slot
        "worst-case store-buffer occupancy reaches %d entries at cycle %d \
         — capacity is %d"
        !worst append.(!worst_k) cap
    end
  end;
  ctx

let run ?(single_shadow = true) machine (code : Pcode.t) =
  let order = Hashtbl.create 8 in
  List.iteri
    (fun i (r : Pcode.region) -> Hashtbl.replace order r.Pcode.name i)
    code.Pcode.regions;
  let ctxs =
    List.map (verify_region ~single_shadow machine) code.Pcode.regions
  in
  let violations =
    List.concat_map (fun c -> List.rev c.viols) ctxs
    |> List.stable_sort (fun a b ->
           let key v =
             ( Option.value (Hashtbl.find_opt order v.loc.region) ~default:0,
               Option.value v.loc.bundle ~default:max_int,
               Option.value v.loc.slot ~default:max_int )
           in
           compare (key a) (key b))
  in
  {
    regions = Pcode.num_regions code;
    bundles = Pcode.num_bundles code;
    slots = Pcode.num_slots code;
    conds = List.fold_left (fun acc c -> acc + c.conds) 0 ctxs;
    writer_pairs = List.fold_left (fun acc c -> acc + c.pairs) 0 ctxs;
    sb_demand = List.fold_left (fun acc c -> max acc c.sb_demand) 0 ctxs;
    violations;
  }

let pp ppf r =
  Format.fprintf ppf
    "%s: %d region%s, %d bundles, %d slots, %d conds, %d writer pairs, \
     sb demand %d"
    (if ok r then "ok" else "FAIL")
    r.regions
    (if r.regions = 1 then "" else "s")
    r.bundles r.slots r.conds r.writer_pairs r.sb_demand;
  List.iter (fun v -> Format.fprintf ppf "@.  %a" pp_violation v) r.violations

let to_json r =
  let module J = Psb_obs.Json in
  J.obj
    [
      ("ok", J.Bool (ok r));
      ("regions", J.Int r.regions);
      ("bundles", J.Int r.bundles);
      ("slots", J.Int r.slots);
      ("conds", J.Int r.conds);
      ("writer_pairs", J.Int r.writer_pairs);
      ("sb_demand", J.Int r.sb_demand);
      ( "violations",
        J.List
          (List.map
             (fun v ->
               J.obj
                 [
                   ("check", J.String (check_name v.check));
                   ("region", J.String (Label.name v.loc.region));
                   ( "bundle",
                     match v.loc.bundle with
                     | Some b -> J.Int b
                     | None -> J.Null );
                   ( "slot",
                     match v.loc.slot with Some s -> J.Int s | None -> J.Null
                   );
                   ("message", J.String v.message);
                 ])
             r.violations) );
    ]

let observe_metrics r m =
  let open Psb_obs.Metrics in
  inc (counter m (if ok r then "verify_passes" else "verify_failures"));
  inc (counter m "verify_regions") ~by:r.regions;
  inc (counter m "verify_slots") ~by:r.slots;
  List.iter
    (fun c ->
      let n =
        List.length (List.filter (fun v -> v.check = c) r.violations)
      in
      inc (counter m "verify_violations" ~labels:[ ("check", check_name c) ])
        ~by:n)
    all_checks
