(* Property-based tests of the compiler's structural invariants, checked
   over the random-program generator:

   - unit formation: exit predicates are pairwise disjoint (exactly one
     path out); copies of the same block carry pairwise-disjoint
     predicates; the per-region condition count respects the CCR; every
     (copy, direction) has a step; condition-set instructions carry the
     [alw] predicate;
   - schedules: the independent validator accepts every model's schedule;
     every operation issues no later than each exit it is compatible with
     (nothing needed on a path is left unissued when the path leaves);
     predicated exits wait for their own conditions. *)

open Psb_isa
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Cfg = Psb_cfg.Cfg
module Dominance = Psb_cfg.Dominance
module Loops = Psb_cfg.Loops

let machine = Machine_model.base

let units_of g scope =
  let program = g.Gen_programs.program in
  let _, profile =
    Driver.profile_of program ~regs:Gen_programs.regs
      ~mem:(Gen_programs.make_mem g)
  in
  let cfg = Cfg.of_program program in
  let dom = Dominance.compute cfg in
  let loop_heads = Loops.loop_heads cfg dom in
  let params =
    Runit.default_params ~scope ~max_conds:machine.Machine_model.ccr_size
      ~fuse_compare:true ()
  in
  Runit.build_all params cfg profile ~loop_heads ~entry:program.Program.entry

let forall_units g scope f =
  Label.Map.for_all (fun _ u -> f u) (units_of g scope)

let both_scopes ~name prop =
  QCheck.Test.make ~name ~count:80 Gen_programs.arb_program (fun g ->
      prop g Model.Region && prop g Model.Trace)

let prop_exits_disjoint =
  both_scopes ~name:"exit predicates pairwise disjoint" (fun g scope ->
       forall_units g scope (fun u ->
           let xs = Array.to_list u.Runit.exits in
           List.for_all
             (fun (a : Runit.uexit) ->
               List.for_all
                 (fun (b : Runit.uexit) ->
                   a.Runit.xid = b.Runit.xid
                   || Pred.disjoint a.Runit.pred b.Runit.pred)
                 xs)
             xs))

let prop_copies_disjoint =
  both_scopes ~name:"same-block copies pairwise disjoint" (fun g scope ->
       forall_units g scope (fun u ->
           let cs = Array.to_list u.Runit.copies in
           List.for_all
             (fun (a : Runit.copy) ->
               List.for_all
                 (fun (b : Runit.copy) ->
                   a.Runit.cid = b.Runit.cid
                   || (not (Label.equal a.Runit.label b.Runit.label))
                   || Pred.disjoint a.Runit.pred b.Runit.pred)
                 cs)
             cs))

let prop_cond_budget =
  both_scopes ~name:"condition budget respects CCR" (fun g scope ->
       forall_units g scope (fun u ->
           u.Runit.nconds <= machine.Machine_model.ccr_size))

let prop_steps_total =
  both_scopes ~name:"every copy direction has a step" (fun g scope ->
       forall_units g scope (fun u ->
           Array.for_all
             (fun (c : Runit.copy) ->
               let b = Program.find g.Gen_programs.program c.Runit.label in
               let dirs =
                 match b.Program.term with
                 | Instr.Br _ -> [ Runit.Dtrue; Runit.Dfalse ]
                 | Instr.Jmp _ | Instr.Halt -> [ Runit.Djmp ]
               in
               List.for_all
                 (fun d -> Hashtbl.mem u.Runit.steps (c.Runit.cid, d))
                 dirs)
             u.Runit.copies))

let prop_setc_always =
  both_scopes ~name:"condition-set instructions are alw" (fun g scope ->
       forall_units g scope (fun u ->
           Array.for_all
             (fun (i : Runit.uinstr) ->
               match i.Runit.op with
               | Instr.Setc _ -> Pred.is_always i.Runit.pred
               | _ -> true)
             u.Runit.instrs))

let prop_validator_all_models =
  QCheck.Test.make ~name:"schedule validator accepts every model" ~count:40
    Gen_programs.arb_program (fun g ->
      let program = g.Gen_programs.program in
      let _, profile =
        Driver.profile_of program ~regs:Gen_programs.regs
          ~mem:(Gen_programs.make_mem g)
      in
      List.for_all
        (fun model ->
          let compiled = Driver.compile ~model ~machine ~profile program in
          Label.Map.for_all
            (fun _ s -> Sched.check s model machine = Ok ())
            compiled.Driver.schedules)
        (Model.trace_pred_counter :: Model.all))

let prop_completion_before_exits =
  QCheck.Test.make ~name:"ops issue no later than compatible exits" ~count:60
    Gen_programs.arb_program (fun g ->
      let program = g.Gen_programs.program in
      let _, profile =
        Driver.profile_of program ~regs:Gen_programs.regs
          ~mem:(Gen_programs.make_mem g)
      in
      let compiled =
        Driver.compile ~model:Model.region_pred ~machine ~profile program
      in
      Label.Map.for_all
        (fun _ (s : Sched.t) ->
          let u = s.Sched.unit_ in
          let ni = Array.length u.Runit.instrs in
          Array.for_all
            (fun (i : Runit.uinstr) ->
              match i.Runit.op with
              | Instr.Setc _ | Instr.Nop -> true
              | _ ->
                  Array.for_all
                    (fun (x : Runit.uexit) ->
                      Pred.disjoint i.Runit.dep_pred x.Runit.pred
                      || i.Runit.seq > x.Runit.seq
                      || s.Sched.issue.(i.Runit.uid)
                         <= s.Sched.issue.(ni + x.Runit.xid))
                    u.Runit.exits)
            u.Runit.instrs)
        compiled.Driver.schedules)

let prop_exits_wait_for_conditions =
  QCheck.Test.make ~name:"predicated exits wait for their conditions"
    ~count:60 Gen_programs.arb_program (fun g ->
      let program = g.Gen_programs.program in
      let _, profile =
        Driver.profile_of program ~regs:Gen_programs.regs
          ~mem:(Gen_programs.make_mem g)
      in
      let compiled =
        Driver.compile ~model:Model.region_pred ~machine ~profile program
      in
      Label.Map.for_all
        (fun _ (s : Sched.t) ->
          let u = s.Sched.unit_ in
          let ni = Array.length u.Runit.instrs in
          Array.for_all
            (fun (x : Runit.uexit) ->
              Cond.Set.for_all
                (fun c ->
                  let setc = Runit.setc_uid u c in
                  s.Sched.issue.(ni + x.Runit.xid) >= s.Sched.issue.(setc) + 1)
                (Pred.conds x.Runit.pred))
            u.Runit.exits)
        compiled.Driver.schedules)

(* ----- compile cache ----- *)

let profile_of g =
  let program = g.Gen_programs.program in
  let _, profile =
    Driver.profile_of program ~regs:Gen_programs.regs
      ~mem:(Gen_programs.make_mem g)
  in
  profile

(* Structural equality of compiled results: same schedules (per-label
   issue cycles), same static size, same predicated code text. *)
let compiled_equal (a : Driver.compiled) (b : Driver.compiled) =
  Driver.code_size a = Driver.code_size b
  && Label.Map.equal
       (fun (s1 : Sched.t) (s2 : Sched.t) -> s1.Sched.issue = s2.Sched.issue)
       a.Driver.schedules b.Driver.schedules
  && Option.equal
       (fun c1 c2 ->
         Format.asprintf "%a" Psb_machine.Pcode.pp c1
         = Format.asprintf "%a" Psb_machine.Pcode.pp c2)
       a.Driver.pcode b.Driver.pcode

let prop_cache_hit_equals_fresh =
  QCheck.Test.make ~name:"cache hit = fresh compile (structurally)" ~count:40
    Gen_programs.arb_program (fun g ->
      let program = g.Gen_programs.program in
      let profile = profile_of g in
      let cache = Compile_cache.create () in
      List.for_all
        (fun model ->
          let via_cache () =
            Driver.compile ~cache ~model ~machine ~profile program
          in
          let first = via_cache () in
          let second = via_cache () in
          let fresh = Driver.compile ~model ~machine ~profile program in
          (* the hit returns the cached value itself... *)
          second == first
          (* ...and that value is indistinguishable from recompiling *)
          && compiled_equal first fresh)
        Model.all
      && (Compile_cache.stats cache).Compile_cache.hits
         = List.length Model.all)

let prop_cache_keys_distinct =
  QCheck.Test.make ~name:"distinct configurations never collide" ~count:40
    Gen_programs.arb_program (fun g ->
      let program = g.Gen_programs.program in
      let profile = profile_of g in
      let machines =
        [
          Machine_model.base;
          Machine_model.full_issue ~width:4 ~max_spec_conds:4;
          Machine_model.full_issue ~width:8 ~max_spec_conds:8;
        ]
      in
      let all_keys () =
        List.concat_map
          (fun model ->
            List.concat_map
              (fun machine ->
                List.concat_map
                  (fun single_shadow ->
                    List.concat_map
                      (fun avoid_commit_deps ->
                        List.map
                          (fun verify ->
                            Compile_cache.key ~model ~machine ~single_shadow
                              ~avoid_commit_deps ~verify ~profile program)
                          [ true; false ])
                      [ true; false ])
                  [ true; false ])
              machines)
          (Model.trace_pred_counter :: Model.all)
      in
      let keys = all_keys () in
      (* every (model × machine × flags) combination keys differently,
         and the key is a pure function of its inputs *)
      List.length (List.sort_uniq compare keys) = List.length keys
      && keys = all_keys ())

let prop_cache_program_sensitivity =
  (* two different random programs (their canonical text differs) must
     key differently even under the same model/machine/flags *)
  QCheck.Test.make ~name:"distinct programs never collide"
    ~count:40
    QCheck.(pair Gen_programs.arb_program Gen_programs.arb_program)
    (fun (g1, g2) ->
      QCheck.assume
        (Asm.print g1.Gen_programs.program <> Asm.print g2.Gen_programs.program);
      let k g =
        Compile_cache.key ~model:Model.region_pred ~machine
          ~single_shadow:true ~avoid_commit_deps:false ~verify:true
          ~profile:(profile_of g) g.Gen_programs.program
      in
      k g1 <> k g2)

let prop_cache_verify_flag_regression =
  (* regression: a schedule compiled with verification off must never be
     served from the cache to a verified compile — the flags key apart *)
  QCheck.Test.make ~name:"verify flag keys apart" ~count:40
    Gen_programs.arb_program (fun g ->
      let program = g.Gen_programs.program in
      let profile = profile_of g in
      let k verify =
        Compile_cache.key ~model:Model.region_pred ~machine
          ~single_shadow:true ~avoid_commit_deps:false ~verify ~profile
          program
      in
      k true <> k false)

let () =
  Alcotest.run "properties"
    [
      ( "runit",
        List.map Qc.to_alcotest
          [
            prop_exits_disjoint;
            prop_copies_disjoint;
            prop_cond_budget;
            prop_steps_total;
            prop_setc_always;
          ] );
      ( "sched",
        List.map Qc.to_alcotest
          [
            prop_validator_all_models;
            prop_completion_before_exits;
            prop_exits_wait_for_conditions;
          ] );
      ( "cache",
        List.map Qc.to_alcotest
          [
            prop_cache_hit_equals_fresh;
            prop_cache_keys_distinct;
            prop_cache_program_sensitivity;
            prop_cache_verify_flag_regression;
          ] );
    ]
