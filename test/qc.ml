(* Seed-replayable QCheck → Alcotest adapter: every property draws its
   generator state from [Psb_proptest.Seed] (PSB_QCHECK_SEED, else
   QCHECK_SEED, else self-init — printed to stderr either way), so any
   failure replays with [PSB_QCHECK_SEED=N dune runtest]. *)

let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Psb_proptest.Seed.rand ()) t
