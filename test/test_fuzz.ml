(* The fuzzing harness's own tests: the minimized counterexample corpus
   replays clean on the healthy pipeline, the deliberately injected
   scheduler-ordering miscompile is found and shrunk to a tiny program,
   and the value-prediction limit regime dominates the plain oracle. *)

open Psb_proptest
module Limits = Psb_eval.Limits

let corpus_dir = "corpus"

(* ----- corpus replay: every checked-in counterexample must load and
   pass the full differential on today's (healthy) pipeline ----- *)

let test_corpus_replay () =
  let entries = Corpus.load_dir corpus_dir in
  Alcotest.(check bool)
    "corpus is not empty (at least the injected-bug counterexample)" true
    (entries <> []);
  List.iter
    (fun (file, loaded) ->
      match loaded with
      | Error m -> Alcotest.failf "%s failed to load: %s" file m
      | Ok g -> (
          match Diff.check g with
          | Ok () -> ()
          | Error f ->
              Alcotest.failf "%s fails the healthy pipeline: %s" file
                (Diff.pp_failure f)))
    entries

(* ----- the fire drill: an injected scheduler ordering bug must be
   caught by the differential and shrink to a minimal program ----- *)

let find_injected () =
  let cfg =
    {
      Fuzz.default with
      Fuzz.trials = 60;
      seed = 7;
      inject = Some Inject.Sched_order;
      max_counterexamples = 1;
    }
  in
  Fuzz.run cfg

let test_injected_bug_found_and_shrunk () =
  let outcome = find_injected () in
  match outcome.Fuzz.counterexamples with
  | [] ->
      Alcotest.failf "injected sched-order bug survived %d trials undetected"
        outcome.Fuzz.tested
  | cx :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 3 diamonds (got %d, %d shrink steps)"
           (Gen.num_diamonds cx.Fuzz.cx_program)
           cx.Fuzz.cx_shrink_steps)
        true
        (Gen.num_diamonds cx.Fuzz.cx_program <= 3);
      (* the minimized program must still witness the bug on its own *)
      (match Diff.check ~inject:Inject.Sched_order cx.Fuzz.cx_program with
      | Error _ -> ()
      | Ok () ->
          Alcotest.fail "minimized counterexample no longer fails under injection");
      (* and be a perfectly healthy program without it *)
      match Diff.check cx.Fuzz.cx_program with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "minimized counterexample fails without injection: %s"
            (Diff.pp_failure f)

(* the committed corpus entry for the injected bug must itself re-expose
   the bug when the injection is switched back on — that is the file's
   reason to exist *)
let test_corpus_exposes_injection () =
  let entries = Corpus.load_dir corpus_dir in
  let exposes =
    List.exists
      (fun (_, loaded) ->
        match loaded with
        | Error _ -> false
        | Ok g -> (
            match Diff.check ~inject:Inject.Sched_order g with
            | Error _ -> true
            | Ok () -> false))
      entries
  in
  Alcotest.(check bool)
    "some corpus entry re-exposes the injected sched-order bug" true exposes

(* ----- shrinker sanity on a synthetic predicate: minimizing against
   "has at least 2 diamonds" must land on exactly 2 ----- *)

let test_shrink_to_predicate () =
  let shape = { Gen.default_shape with Gen.max_diamonds = 6; max_iters = 12 } in
  let st = Random.State.make [| 0xBEEF; 3 |] in
  let rec find_big n =
    if n = 0 then Alcotest.fail "generator never drew >= 4 diamonds"
    else
      let g = Gen.gen shape st in
      if Gen.num_diamonds g >= 4 then g else find_big (n - 1)
  in
  let g0 = find_big 100 in
  (* greedy descent with the same loop the fuzzer uses, against a pure
     structural predicate instead of the differential *)
  let fails g = Gen.num_diamonds g >= 2 in
  let exception Shrunk of Gen.t in
  let cur = ref g0 and progress = ref true in
  while !progress do
    progress := false;
    match Gen.shrink !cur (fun c -> if fails c then raise (Shrunk c)) with
    | () -> ()
    | exception Shrunk c ->
        cur := c;
        progress := true
  done;
  Alcotest.(check int) "minimal witness of >=2 diamonds has exactly 2" 2
    (Gen.num_diamonds !cur)

(* handmade programs must be shrink-inert (a corpus entry can never be
   "minimized" into an unrelated rebuilt program) *)
let test_handmade_never_shrinks () =
  let g =
    Gen.handmade ~descr:"inert"
      (Psb_isa.Asm.parse_exn "entry main\nmain:\n  out 1\n  halt")
  in
  let candidates = ref 0 in
  Gen.shrink g (fun _ -> incr candidates);
  Alcotest.(check int) "no shrink candidates" 0 !candidates

(* ----- corpus round-trip ----- *)

let test_corpus_roundtrip () =
  let g = Fuzz.gen_trial { Fuzz.default with Fuzz.seed = 11 } 0 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "psb-corpus-test" in
  let path = Corpus.save ~dir ~seed:11 ~stage:"unit" ~detail:"round-trip" g in
  match Corpus.load path with
  | Error m -> Alcotest.failf "reload failed: %s" m
  | Ok g' ->
      Alcotest.(check string)
        "program text survives"
        (Psb_isa.Asm.print g.Gen.program)
        (Psb_isa.Asm.print g'.Gen.program);
      Alcotest.(check bool) "demand flag survives" g.Gen.demand g'.Gen.demand;
      Alcotest.(check (list (pair int int)))
        "memory image survives" g.Gen.mem_data g'.Gen.mem_data;
      (* and the reloaded program behaves identically *)
      let r1 =
        Psb_isa.Interp.run ~regs:Gen.regs ~mem:(Gen.make_mem g) g.Gen.program
      in
      let r2 =
        Psb_isa.Interp.run ~regs:Gen.regs ~mem:(Gen.make_mem g') g'.Gen.program
      in
      Alcotest.(check bool) "same behaviour" true (Psb_isa.Interp.equivalent r1 r2)

(* ----- value-prediction limit regime over the generator fleet ----- *)

let test_limits_fleet_value_dominates () =
  let rows = Fuzz.limits_fleet ~n:6 ~seed:5 () in
  Alcotest.(check int) "fleet size" 6 (List.length rows);
  List.iter
    (fun (r : Limits.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: value %.3f >= oracle %.3f" r.Limits.name
           r.Limits.value_ipc r.Limits.oracle_ipc)
        true
        (r.Limits.value_ipc >= r.Limits.oracle_ipc -. 1e-9))
    rows

let () =
  Alcotest.run "fuzz"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay corpus on healthy pipeline" `Quick
            test_corpus_replay;
          Alcotest.test_case "corpus re-exposes injected bug" `Quick
            test_corpus_exposes_injection;
          Alcotest.test_case "save/load round-trip" `Quick test_corpus_roundtrip;
        ] );
      ( "inject",
        [
          Alcotest.test_case "injected sched-order bug found and shrunk" `Quick
            test_injected_bug_found_and_shrunk;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "greedy descent reaches minimal witness" `Quick
            test_shrink_to_predicate;
          Alcotest.test_case "handmade programs are shrink-inert" `Quick
            test_handmade_never_shrinks;
        ] );
      ( "limits",
        [
          Alcotest.test_case "value oracle dominates plain oracle (fleet)"
            `Quick test_limits_fleet_value_dominates;
        ] );
    ]
