(* Differential testing: generate random structured programs, compile
   them for every executable model, run the predicated code on the
   cycle-level machine, and require the observable behaviour of the scalar
   reference interpreter (exactly for halting runs; same-fatality for
   fatal traps, where the compiler may legitimately have reordered
   independent side effects). *)

open Psb_isa
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Rob_sim = Psb_machine.Rob_sim

open Gen_programs

let outcomes_match (a : Interp.outcome) (b : Interp.outcome) =
  match (a, b) with
  | Interp.Halted, Interp.Halted -> true
  | Interp.Fatal f1, Interp.Fatal f2 -> Fault.equal f1 f2
  | Interp.Out_of_fuel, Interp.Out_of_fuel -> true
  | _ -> false

let differential model =
  QCheck.Test.make
    ~name:("compiled = scalar [" ^ model.Model.name ^ "]")
    ~count:120 arb_program
    (fun g ->
      let scalar_mem = make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
      QCheck.assume (scalar.Interp.outcome <> Interp.Out_of_fuel);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      let compiled =
        Driver.compile ~model ~machine:Machine_model.base ~profile g.program
      in
      let vliw_mem = make_mem g in
      let vliw = Driver.run_vliw compiled ~regs ~mem:vliw_mem in
      (* On a *fatal* trap only the fault itself is defined: the compiler
         may have hoisted independent stores/outputs above the faulting
         instruction (standard VLIW imprecision at fatal traps — the
         paper's precision mechanism covers speculative faults, which are
         the recoverable ones). Halted runs must match exactly. *)
      let ok =
        match scalar.Interp.outcome with
        | Interp.Fatal _ ->
            (* reordering may surface a different (also fatal) fault first *)
            (match vliw.Vliw_sim.outcome with Interp.Fatal _ -> true | _ -> false)
        | _ ->
            outcomes_match scalar.Interp.outcome vliw.Vliw_sim.outcome
            && scalar.Interp.output = vliw.Vliw_sim.output
            && Memory.equal scalar_mem vliw_mem
      in
      if not ok then
        QCheck.Test.fail_reportf
          "scalar: %a / output %s@.vliw: %a / output %s@.memory equal: %b"
          Interp.pp_outcome scalar.Interp.outcome
          (String.concat "," (List.map string_of_int scalar.Interp.output))
          Interp.pp_outcome vliw.Vliw_sim.outcome
          (String.concat "," (List.map string_of_int vliw.Vliw_sim.output))
          (Memory.equal scalar_mem vliw_mem);
      true)

let estimate_never_crashes =
  QCheck.Test.make ~name:"all models compile + estimate" ~count:60 arb_program
    (fun g ->
      let scalar_mem = make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
      QCheck.assume (scalar.Interp.outcome = Interp.Halted);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      List.for_all
        (fun model ->
          let compiled =
            Driver.compile ~model ~machine:Machine_model.base ~profile g.program
          in
          let est =
            Driver.estimate_cycles compiled g.program
              ~block_trace:scalar.Interp.block_trace
          in
          est > 0)
        Model.all)

let infinite_shadow_agrees =
  QCheck.Test.make ~name:"infinite shadow = single shadow semantics" ~count:60
    arb_program (fun g ->
      let scalar_mem = make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
      QCheck.assume (scalar.Interp.outcome <> Interp.Out_of_fuel);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      let compiled =
        Driver.compile ~single_shadow:false ~model:Model.region_pred
          ~machine:Machine_model.base ~profile g.program
      in
      let vliw_mem = make_mem g in
      let vliw =
        Driver.run_vliw ~regfile_mode:Psb_machine.Regfile.Infinite compiled
          ~regs ~mem:vliw_mem
      in
      match scalar.Interp.outcome with
      | Interp.Fatal _ -> (
          match vliw.Vliw_sim.outcome with Interp.Fatal _ -> true | _ -> false)
      | _ ->
          outcomes_match scalar.Interp.outcome vliw.Vliw_sim.outcome
          && scalar.Interp.output = vliw.Vliw_sim.output
          && Memory.equal scalar_mem vliw_mem)

(* ----- parallel differential fuzzing -----

   The pool-sharded version of [differential]: a fixed-seed batch of
   random programs crossed with every executable model, each
   (program × model) cell an independent task on an 8-wide pool. This
   exercises the whole compile/simulate pipeline concurrently (shared
   nothing but immutable inputs), checks the same observable-equivalence
   contract, and additionally requires that the batch covered
   exception-recovery episodes — the paper's precise-interrupt machinery
   must keep working when cells run on arbitrary domains. *)

let executable_models =
  List.filter (fun (m : Model.t) -> m.Model.executable) Model.all

type cell_report = {
  cr_model : string;
  cr_index : int;
  cr_ok : bool;
  cr_detail : string;
  cr_scalar_faults : int;
  cr_vliw_faults : int;
  cr_halted : bool;
}

let run_cell (idx, g, (model : Model.t)) =
  let scalar_mem = make_mem g in
  let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
  let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
  let compiled =
    Driver.compile ~model ~machine:Machine_model.base ~profile g.program
  in
  let vliw_mem = make_mem g in
  let vliw = Driver.run_vliw compiled ~regs ~mem:vliw_mem in
  let ok, detail =
    match scalar.Interp.outcome with
    | Interp.Out_of_fuel -> (true, "skipped: out of fuel")
    | Interp.Fatal _ -> (
        match vliw.Vliw_sim.outcome with
        | Interp.Fatal _ -> (true, "")
        | o -> (false, Format.asprintf "fatal scalar but vliw %a" Interp.pp_outcome o))
    | Interp.Halted ->
        if not (outcomes_match scalar.Interp.outcome vliw.Vliw_sim.outcome)
        then (false, Format.asprintf "outcome %a" Interp.pp_outcome vliw.Vliw_sim.outcome)
        else if scalar.Interp.output <> vliw.Vliw_sim.output then
          (false, "output differs")
        else if not (Memory.equal scalar_mem vliw_mem) then
          (false, "memory differs")
        else if
          (* recovery must not be lost in translation: every fault the
             scalar reference handled, the machine must also have
             recovered from (it cannot halt with matching state
             otherwise, but make the episode itself observable) *)
          scalar.Interp.faults_handled > 0
          && vliw.Vliw_sim.faults_handled = 0
        then (false, "scalar recovered but vliw reported no recovery")
        else (true, "")
  in
  {
    cr_model = model.Model.name;
    cr_index = idx;
    cr_ok = ok;
    cr_detail = detail;
    cr_scalar_faults = scalar.Interp.faults_handled;
    cr_vliw_faults = vliw.Vliw_sim.faults_handled;
    cr_halted = (scalar.Interp.outcome = Interp.Halted);
  }

(* A handcrafted batch member that deterministically touches unmapped
   demand pages, so the recovery-coverage assertion below never depends
   on the random draw. *)
let recovery_prog : Gen_programs.t =
  let reg = Reg.make and lbl = Label.make in
  let blocks =
    [
      Program.block (lbl "entry")
        [
          Instr.Mov { dst = reg 7; src = Operand.imm 200 };
          (* 200 and 300 sit inside the unmapped 128..384 window *)
          Instr.Load { dst = reg 1; base = reg 7; off = 0 };
          Instr.Mov { dst = reg 7; src = Operand.imm 300 };
          Instr.Load { dst = reg 2; base = reg 7; off = 0 };
          Instr.Out (Operand.reg (reg 1));
          Instr.Out (Operand.reg (reg 2));
        ]
        Instr.Halt;
    ]
  in
  Gen_programs.handmade ~demand:true ~descr:"handcrafted demand-page recovery"
    (Program.make ~entry:(lbl "entry") blocks)

let test_parallel_differential () =
  let st = Random.State.make [| 0xC0FFEE; 42 |] in
  let programs = List.init 40 (fun i -> (i, Gen_programs.gen_program st)) in
  let programs = (List.length programs, recovery_prog) :: programs in
  let cells =
    List.concat_map
      (fun (i, g) -> List.map (fun m -> (i, g, m)) executable_models)
      programs
  in
  let reports =
    Psb_parallel.Pool.with_pool ~jobs:8 (fun pool ->
        Psb_parallel.Pool.map pool run_cell cells)
  in
  Alcotest.(check int)
    "every cell produced a verdict"
    (List.length cells) (List.length reports);
  let reports =
    List.map
      (function
        | Ok r -> r
        | Error e ->
            Alcotest.failf "cell raised: %s"
              (Printexc.to_string e.Psb_parallel.Pool.exn))
      reports
  in
  List.iter
    (fun r ->
      if not r.cr_ok then
        Alcotest.failf "program %d, model %s: %s" r.cr_index r.cr_model
          r.cr_detail)
    reports;
  (* the fixed seed must actually exercise recovery, or the equivalence
     checks above are vacuous on the precise-interrupt path *)
  let recovered =
    List.length
      (List.filter (fun r -> r.cr_halted && r.cr_vliw_faults > 0) reports)
  in
  Alcotest.(check bool)
    (Printf.sprintf "batch covered recovery episodes (%d cells)" recovered)
    true (recovered > 0)

(* ----- predicate-kernel identity -----

   The bitmask kernel (with dirty-condition gating) and the reference
   map kernel must be indistinguishable: same outputs, same memory, and
   the exact same cycle count — gating may only skip evaluations whose
   outcome could not have changed, never delay a commit or squash. *)

let run_both_kernels compiled ~regs ~mem_of =
  let module K = Psb_machine.Pred_kernel in
  let run kernel =
    Driver.run_vliw ~pred_kernel:kernel compiled ~regs ~mem:(mem_of ())
  in
  (run K.Mask, run K.Map)

let kernels_agree (a : Vliw_sim.result) (b : Vliw_sim.result) =
  outcomes_match a.Vliw_sim.outcome b.Vliw_sim.outcome
  && a.Vliw_sim.output = b.Vliw_sim.output
  && a.Vliw_sim.cycles = b.Vliw_sim.cycles
  && a.Vliw_sim.stats.Vliw_sim.commits = b.Vliw_sim.stats.Vliw_sim.commits
  && a.Vliw_sim.stats.Vliw_sim.squashes = b.Vliw_sim.stats.Vliw_sim.squashes
  && a.Vliw_sim.stats.Vliw_sim.recoveries = b.Vliw_sim.stats.Vliw_sim.recoveries

let pred_kernel_identity =
  QCheck.Test.make ~name:"mask kernel = map kernel (cycle-exact)" ~count:120
    arb_program (fun g ->
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:(make_mem g) g.program in
      QCheck.assume (scalar.Interp.outcome <> Interp.Out_of_fuel);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      let compiled =
        Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
          ~profile g.program
      in
      let mask, map = run_both_kernels compiled ~regs ~mem_of:(fun () -> make_mem g) in
      if not (kernels_agree mask map) then
        QCheck.Test.fail_reportf
          "kernels diverged: mask %d cycles / %a, map %d cycles / %a"
          mask.Vliw_sim.cycles Interp.pp_outcome mask.Vliw_sim.outcome
          map.Vliw_sim.cycles Interp.pp_outcome map.Vliw_sim.outcome;
      true)

let test_pred_kernel_suite_identity () =
  let open Psb_workloads in
  List.iter
    (fun (w : Dsl.t) ->
      let _, profile =
        Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
      in
      List.iter
        (fun model ->
          let compiled =
            Driver.compile ~model ~machine:Machine_model.base ~profile
              w.Dsl.program
          in
          let mask, map =
            run_both_kernels compiled ~regs:w.Dsl.regs ~mem_of:w.Dsl.make_mem
          in
          Alcotest.(check int)
            (w.Dsl.name ^ "/" ^ model.Model.name ^ " cycles")
            map.Vliw_sim.cycles mask.Vliw_sim.cycles;
          Alcotest.(check (list int))
            (w.Dsl.name ^ "/" ^ model.Model.name ^ " output")
            map.Vliw_sim.output mask.Vliw_sim.output)
        executable_models)
    Suite.all

(* ----- execution-kernel identity -----

   The lowered structure-of-arrays kernel and the tree-walking reference
   must be indistinguishable: lowering preresolves operands and compiles
   dispatch, but may never change what issues, commits or squashes in
   any cycle. *)

let run_both_exec_kernels compiled ~regs ~mem_of =
  let module K = Psb_machine.Exec_kernel in
  let run kernel =
    Driver.run_vliw ~exec_kernel:kernel compiled ~regs ~mem:(mem_of ())
  in
  (run K.Lowered, run K.Tree)

let exec_kernel_identity =
  QCheck.Test.make ~name:"lowered kernel = tree kernel (cycle-exact)"
    ~count:120 arb_program (fun g ->
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:(make_mem g) g.program in
      QCheck.assume (scalar.Interp.outcome <> Interp.Out_of_fuel);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      let compiled =
        Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
          ~profile g.program
      in
      let low, tree =
        run_both_exec_kernels compiled ~regs ~mem_of:(fun () -> make_mem g)
      in
      if not (kernels_agree low tree) then
        QCheck.Test.fail_reportf
          "kernels diverged: lowered %d cycles / %a, tree %d cycles / %a"
          low.Vliw_sim.cycles Interp.pp_outcome low.Vliw_sim.outcome
          tree.Vliw_sim.cycles Interp.pp_outcome tree.Vliw_sim.outcome;
      true)

let test_exec_kernel_suite_identity () =
  let open Psb_workloads in
  List.iter
    (fun (w : Dsl.t) ->
      let _, profile =
        Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
      in
      List.iter
        (fun model ->
          let compiled =
            Driver.compile ~model ~machine:Machine_model.base ~profile
              w.Dsl.program
          in
          let low, tree =
            run_both_exec_kernels compiled ~regs:w.Dsl.regs
              ~mem_of:w.Dsl.make_mem
          in
          Alcotest.(check int)
            (w.Dsl.name ^ "/" ^ model.Model.name ^ " cycles")
            tree.Vliw_sim.cycles low.Vliw_sim.cycles;
          Alcotest.(check (list int))
            (w.Dsl.name ^ "/" ^ model.Model.name ^ " output")
            tree.Vliw_sim.output low.Vliw_sim.output;
          Alcotest.(check int)
            (w.Dsl.name ^ "/" ^ model.Model.name ^ " commits")
            tree.Vliw_sim.stats.Vliw_sim.commits
            low.Vliw_sim.stats.Vliw_sim.commits)
        executable_models)
    Suite.all

(* ----- scalar-kernel identity -----

   The predecoded flat form ([Decoded.of_program]) and the tree-walking
   reference must be indistinguishable on both scalar backends (the
   interpreter and the ROB machine): decoding preresolves operands and
   branch targets, but may never change semantics, cycle charging,
   traces, fault handling or the pipeline accounting. *)

let scalar_results_agree (a : Interp.result) (b : Interp.result) =
  outcomes_match a.Interp.outcome b.Interp.outcome
  && a.Interp.output = b.Interp.output
  && a.Interp.cycles = b.Interp.cycles
  && a.Interp.dyn_instrs = b.Interp.dyn_instrs
  && List.equal Label.equal a.Interp.block_trace b.Interp.block_trace
  && Reg.Map.equal Int.equal a.Interp.regs b.Interp.regs
  && a.Interp.faults_handled = b.Interp.faults_handled

let run_both_scalar_kernels ~decoded ~regs ~mem_of program =
  let run kernel mem =
    Interp.run ~fuel:500_000 ~kernel ~decoded ~regs ~mem program
  in
  let dec_mem = mem_of () and tree_mem = mem_of () in
  ( (run Scalar_kernel.Decoded dec_mem, dec_mem),
    (run Scalar_kernel.Tree tree_mem, tree_mem) )

let scalar_kernel_identity =
  QCheck.Test.make ~name:"decoded interp = tree interp (cycle-exact)"
    ~count:200 arb_program (fun g ->
      let decoded = Decoded.of_program g.program in
      let (dec, dec_mem), (tree, tree_mem) =
        run_both_scalar_kernels ~decoded ~regs
          ~mem_of:(fun () -> make_mem g) g.program
      in
      if not (scalar_results_agree dec tree && Memory.equal dec_mem tree_mem)
      then
        QCheck.Test.fail_reportf
          "scalar kernels diverged: decoded %a / %d cycles / %d instrs, tree \
           %a / %d cycles / %d instrs"
          Interp.pp_outcome dec.Interp.outcome dec.Interp.cycles
          dec.Interp.dyn_instrs Interp.pp_outcome tree.Interp.outcome
          tree.Interp.cycles tree.Interp.dyn_instrs;
      true)

let run_both_rob_kernels ~decoded ~regs ~mem_of program =
  let run kernel mem =
    Rob_sim.run ~kernel ~decoded ~model:Machine_model.base ~regs ~mem program
  in
  let dec_mem = mem_of () and tree_mem = mem_of () in
  ( (run Scalar_kernel.Decoded dec_mem, dec_mem),
    (run Scalar_kernel.Tree tree_mem, tree_mem) )

let rob_results_agree (a : Rob_sim.result) (b : Rob_sim.result) =
  outcomes_match a.Rob_sim.outcome b.Rob_sim.outcome
  && a.Rob_sim.output = b.Rob_sim.output
  && a.Rob_sim.cycles = b.Rob_sim.cycles
  && a.Rob_sim.dyn_instrs = b.Rob_sim.dyn_instrs
  && Reg.Map.equal Int.equal a.Rob_sim.regs b.Rob_sim.regs
  && a.Rob_sim.faults_handled = b.Rob_sim.faults_handled
  && a.Rob_sim.stats = b.Rob_sim.stats
  && a.Rob_sim.breakdown = b.Rob_sim.breakdown

let rob_kernel_identity =
  QCheck.Test.make ~name:"decoded rob = tree rob (cycle-exact)" ~count:120
    arb_program (fun g ->
      let decoded = Decoded.of_program g.program in
      let (dec, dec_mem), (tree, tree_mem) =
        run_both_rob_kernels ~decoded ~regs ~mem_of:(fun () -> make_mem g)
          g.program
      in
      if not (rob_results_agree dec tree && Memory.equal dec_mem tree_mem)
      then
        QCheck.Test.fail_reportf
          "rob kernels diverged: decoded %a / %d cycles, tree %a / %d cycles"
          Interp.pp_outcome dec.Rob_sim.outcome dec.Rob_sim.cycles
          Interp.pp_outcome tree.Rob_sim.outcome tree.Rob_sim.cycles;
      true)

let test_scalar_kernel_suite_identity () =
  let open Psb_workloads in
  List.iter
    (fun (w : Dsl.t) ->
      let decoded = Decoded.of_program w.Dsl.program in
      let (dec, dec_mem), (tree, tree_mem) =
        run_both_scalar_kernels ~decoded ~regs:w.Dsl.regs
          ~mem_of:w.Dsl.make_mem w.Dsl.program
      in
      Alcotest.(check bool)
        (w.Dsl.name ^ " results agree")
        true
        (scalar_results_agree dec tree);
      Alcotest.(check int) (w.Dsl.name ^ " cycles") tree.Interp.cycles
        dec.Interp.cycles;
      Alcotest.(check bool)
        (w.Dsl.name ^ " memory equal")
        true
        (Memory.equal dec_mem tree_mem))
    Suite.all

let test_rob_kernel_suite_identity () =
  let open Psb_workloads in
  List.iter
    (fun (w : Dsl.t) ->
      let decoded = Decoded.of_program w.Dsl.program in
      let (dec, dec_mem), (tree, tree_mem) =
        run_both_rob_kernels ~decoded ~regs:w.Dsl.regs ~mem_of:w.Dsl.make_mem
          w.Dsl.program
      in
      Alcotest.(check bool)
        (w.Dsl.name ^ " results agree")
        true
        (rob_results_agree dec tree);
      Alcotest.(check int) (w.Dsl.name ^ " cycles") tree.Rob_sim.cycles
        dec.Rob_sim.cycles;
      Alcotest.(check bool)
        (w.Dsl.name ^ " memory equal")
        true
        (Memory.equal dec_mem tree_mem))
    Suite.all

let asm_roundtrip =
  QCheck.Test.make ~name:"asm print/parse round-trips" ~count:200
    Gen_programs.arb_program (fun g ->
      let text = Asm.print g.Gen_programs.program in
      match Asm.parse text with
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s@.%s" m text
      | Ok p -> Asm.print p = text)

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        List.map Qc.to_alcotest
          [
            differential Model.region_pred;
            differential Model.trace_pred;
            differential Model.region_sched;
            differential Model.guarded;
            estimate_never_crashes;
            infinite_shadow_agrees;
            pred_kernel_identity;
            exec_kernel_identity;
            scalar_kernel_identity;
            rob_kernel_identity;
            asm_roundtrip;
          ] );
      ( "pred-kernel",
        [
          Alcotest.test_case "whole suite cycle-exact (all models)" `Quick
            test_pred_kernel_suite_identity;
        ] );
      ( "exec-kernel",
        [
          Alcotest.test_case "whole suite cycle-exact (all models)" `Quick
            test_exec_kernel_suite_identity;
        ] );
      ( "scalar-kernel",
        [
          Alcotest.test_case "whole suite cycle-exact" `Quick
            test_scalar_kernel_suite_identity;
        ] );
      ( "rob-kernel",
        [
          Alcotest.test_case "whole suite cycle-exact" `Quick
            test_rob_kernel_suite_identity;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pool-sharded differential (all models)" `Quick
            test_parallel_differential;
        ] );
    ]
