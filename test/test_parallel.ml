(* Unit tests for the work-stealing domain pool: deterministic result
   ordering, per-task exception capture, stats accounting, and the deque
   underneath it. These run at several pool widths — including widths
   well above the machine's core count — because the ordering and
   capture contracts must not depend on how tasks land on domains. *)

module Pool = Psb_parallel.Pool
module Deque = Psb_parallel.Deque

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

(* ----- deque ----- *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  List.iter (fun i -> Deque.push d i) [ 1; 2; 3; 4 ];
  check_int "length" 4 (Deque.length d);
  (* owner pops LIFO *)
  check_bool "pop newest" true (Deque.pop d = Some 4);
  (* thief steals FIFO *)
  check_bool "steal oldest" true (Deque.steal d = Some 1);
  check_bool "pop" true (Deque.pop d = Some 3);
  check_bool "steal" true (Deque.steal d = Some 2);
  check_bool "empty pop" true (Deque.pop d = None);
  check_bool "empty steal" true (Deque.steal d = None)

let test_deque_grow () =
  let d = Deque.create () in
  let n = 1000 in
  for i = 1 to n do
    Deque.push d i
  done;
  check_int "all queued" n (Deque.length d);
  (* drain alternating from both ends; everything comes out once *)
  let seen = Hashtbl.create n in
  for k = 0 to n - 1 do
    let v = if k mod 2 = 0 then Deque.pop d else Deque.steal d in
    match v with
    | Some v ->
        check_bool "no duplicate" false (Hashtbl.mem seen v);
        Hashtbl.add seen v ()
    | None -> Alcotest.fail "premature empty"
  done;
  check_int "drained" 0 (Deque.length d)

(* ----- pool: ordering ----- *)

let test_map_order jobs () =
  Pool.with_pool ~jobs (fun p ->
      let inputs = List.init 200 Fun.id in
      let out = Pool.map_exn p (fun x -> (x * x) + 1) inputs in
      List.iteri
        (fun i y -> check_int (Printf.sprintf "slot %d" i) ((i * i) + 1) y)
        out;
      (* a second batch on the same pool still works *)
      let out2 = Pool.map_exn p string_of_int inputs in
      check_bool "second batch" true
        (out2 = List.map string_of_int inputs))

(* ----- pool: exception capture ----- *)

let test_exception_capture jobs () =
  Pool.with_pool ~jobs (fun p ->
      let inputs = List.init 50 Fun.id in
      let out =
        Pool.map p (fun x -> if x = 17 then raise (Boom x) else x) inputs
      in
      check_int "all slots present" 50 (List.length out);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int "ok slot" i v
          | Error e ->
              check_int "failing slot is 17" 17 i;
              check_bool "carries the exception" true (e.Pool.exn = Boom 17))
        out)

let test_map_exn_reraises jobs () =
  Pool.with_pool ~jobs (fun p ->
      match
        Pool.map_exn p (fun x -> if x mod 3 = 1 then raise (Boom x) else x)
          (List.init 9 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 1 -> ()
      (* first failure in input order, not completion order *)
      | exception Boom n -> Alcotest.failf "re-raised Boom %d, want Boom 1" n)

(* ----- pool: accounting and lifecycle ----- *)

let test_stats () =
  Pool.with_pool ~jobs:4 (fun p ->
      check_int "jobs" 4 (Pool.jobs p);
      let n = 64 in
      ignore (Pool.map_exn p (fun x -> x + 1) (List.init n Fun.id));
      let stats = Pool.stats p in
      check_int "one stat per domain" 4 (Array.length stats);
      let total =
        Array.fold_left (fun acc s -> acc + s.Pool.tasks) 0 stats
      in
      check_int "every task accounted once" n total;
      Array.iter
        (fun s -> check_bool "busy time non-negative" true (s.Pool.busy_seconds >= 0.))
        stats)

let test_sequential_inline () =
  (* jobs = 1 spawns nothing and runs inline, preserving the contract *)
  Pool.with_pool ~jobs:1 (fun p ->
      check_int "jobs" 1 (Pool.jobs p);
      let out = Pool.map p (fun x -> if x = 2 then raise Exit else -x) [ 0; 1; 2; 3 ] in
      check_bool "inline capture" true
        (match out with
        | [ Ok 0; Ok -1; Error e; Ok -3 ] -> e.Pool.exn = Exit
        | _ -> false);
      check_int "one domain stat" 1 (Array.length (Pool.stats p)))

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 () in
  ignore (Pool.map_exn p Fun.id [ 1; 2; 3 ]);
  Pool.shutdown p;
  Pool.shutdown p (* second shutdown is a no-op *)

let test_invalid_jobs () =
  match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs = 0 should be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "parallel"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO / thief FIFO" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "grow and drain" `Quick test_deque_grow;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "map order, jobs=1" `Quick (test_map_order 1);
          Alcotest.test_case "map order, jobs=2" `Quick (test_map_order 2);
          Alcotest.test_case "map order, jobs=8" `Quick (test_map_order 8);
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "capture, jobs=1" `Quick (test_exception_capture 1);
          Alcotest.test_case "capture, jobs=4" `Quick (test_exception_capture 4);
          Alcotest.test_case "map_exn re-raise, jobs=1" `Quick
            (test_map_exn_reraises 1);
          Alcotest.test_case "map_exn re-raise, jobs=4" `Quick
            (test_map_exn_reraises 4);
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "stats accounting" `Quick test_stats;
          Alcotest.test_case "jobs=1 inline" `Quick test_sequential_inline;
          Alcotest.test_case "double shutdown" `Quick test_shutdown_idempotent;
          Alcotest.test_case "jobs=0 rejected" `Quick test_invalid_jobs;
        ] );
    ]
