(* The static speculation-safety verifier (lib/verify):

   - positive: every Suite workload (extras included), compiled for every
     executable model, verifies cleanly — on the base machine and on a
     full-issue one, with and without commit-dependence avoidance;
   - negative: four hand-written pcode fixtures, one per check class,
     each producing exactly one structured diagnostic of its class;
   - the report serialises (JSON round-trip) and exports metrics;
   - qcheck: a compiled program mutated to demand a second shadow
     version of a register is rejected by the verifier, and the machine,
     running the same mutated code, flags the hazard (shadow-conflict
     stall or machine error) instead of miscommitting silently. *)

open Psb_isa
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode
module Vliw_sim = Psb_machine.Vliw_sim
module Verify = Psb_verify.Verify
module Dsl = Psb_workloads.Dsl
module Suite = Psb_workloads.Suite

let machine = Machine_model.base

let executable_models =
  List.filter
    (fun (m : Model.t) -> m.Model.executable)
    (Model.trace_pred_counter :: Model.all)

(* ----- positive: the whole suite verifies ----- *)

let pcode_of ?(avoid_commit_deps = false) ~model ~machine (w : Dsl.t) =
  let _, profile =
    Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
  in
  let compiled =
    Driver.compile ~verify:false ~avoid_commit_deps ~model ~machine ~profile
      w.Dsl.program
  in
  Option.get compiled.Driver.pcode

let test_suite_verifies () =
  List.iter
    (fun (w : Dsl.t) ->
      List.iter
        (fun (model : Model.t) ->
          List.iter
            (fun (mname, machine) ->
              List.iter
                (fun avoid_commit_deps ->
                  let code =
                    pcode_of ~avoid_commit_deps ~model ~machine w
                  in
                  let r = Verify.run machine code in
                  if not (Verify.ok r) then
                    Alcotest.failf "%s/%s/%s (acd=%b): %a" w.Dsl.name
                      model.Model.name mname avoid_commit_deps Verify.pp r)
                [ false; true ])
            [
              ("base", Machine_model.base);
              ("full8", Machine_model.full_issue ~width:8 ~max_spec_conds:8);
            ])
        executable_models)
    (Suite.all @ Suite.extras)

let test_driver_verifies_by_default () =
  (* the default compile path runs the verifier and reports its pass *)
  let w = Suite.find "li" in
  let _, profile =
    Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
  in
  let metrics = Psb_obs.Metrics.create () in
  let _ =
    Driver.compile ~metrics ~model:Model.region_pred ~machine ~profile
      w.Dsl.program
  in
  let passes =
    Psb_obs.Metrics.(counter_value (counter metrics "verify_passes"))
  in
  Alcotest.(check bool) "verify ran and passed" true (passes >= 1)

(* ----- negative fixtures, one per check class ----- *)

let lbl = Label.make
let p_c0 = Pred.of_list [ (Cond.make 0, true) ]
let p_nc0 = Pred.of_list [ (Cond.make 0, false) ]

let mov ?(pred = Pred.always) dst v =
  Pcode.op pred (Instr.Mov { dst = Reg.make dst; src = Operand.imm v })

let setc c =
  Pcode.op Pred.always
    (Instr.Setc
       {
         dst = Cond.make c;
         op = Opcode.Lt;
         a = Operand.reg (Reg.make 0);
         b = Operand.imm 1;
       })

let prog name code =
  Pcode.make ~entry:(lbl name)
    [ { Pcode.name = lbl name; code; source_blocks = [] } ]

(* wellformed: a predicate reads a condition no Setc in the region
   writes, so it can never resolve *)
let fix_wellformed =
  prog "f-wf" [| [ mov ~pred:p_c0 1 1 ]; [ Pcode.exit_stop Pred.always ] |]

(* capacity: two disjoint speculative writers of r1 in flight at once —
   the second demands a shadow version while the first still holds it *)
let fix_capacity =
  prog "f-cap"
    [|
      [ mov ~pred:p_c0 1 1; mov ~pred:p_nc0 1 2 ];
      [];
      [ setc 0 ];
      [ Pcode.exit_stop Pred.always ];
    |]

(* recovery: an Out can issue while its predicate is unspecified; its
   effect is neither buffered nor squashable on re-execution *)
let fix_recovery =
  prog "f-rec"
    [|
      [ Pcode.op p_c0 (Instr.Out (Operand.imm 7)) ];
      [ setc 0 ];
      [ Pcode.exit_stop Pred.always ];
    |]

(* commit order: a buffered speculative write commits after a later
   non-disjoint predicated write retires, clobbering it with the stale
   value.  Both writers are predicated on different conditions (the
   unpredicated case is the exempted join-duplication select idiom):
   c1 resolves before the second write retires, so it lands in the
   sequential file while the c0 write is still parked in the shadow. *)
let p_c1 = Pred.of_list [ (Cond.make 1, true) ]

let fix_commit_order =
  prog "f-waw"
    [|
      [ mov ~pred:p_c0 1 1; setc 1 ];
      [ mov ~pred:p_c1 1 2 ];
      [ setc 0 ];
      [ Pcode.exit_stop Pred.always ];
    |]

let fixtures =
  [
    (Verify.Wellformed, fix_wellformed);
    (Verify.Capacity, fix_capacity);
    (Verify.Recovery, fix_recovery);
    (Verify.Commit_order, fix_commit_order);
  ]

let single_violation check p =
  let r = Verify.run machine p in
  Alcotest.(check int)
    (Verify.check_name check ^ ": one violation")
    1
    (List.length r.Verify.violations);
  let v = List.hd r.Verify.violations in
  Alcotest.(check string)
    (Verify.check_name check ^ ": class")
    (Verify.check_name check)
    (Verify.check_name v.Verify.check);
  v

let test_fixture (check, p) () =
  let v = single_violation check p in
  (* structured: the diagnostic carries a precise program location *)
  Alcotest.(check bool) "has bundle" true (v.Verify.loc.Verify.bundle <> None);
  Alcotest.(check bool) "has slot" true (v.Verify.loc.Verify.slot <> None);
  Alcotest.(check bool) "has message" true (String.length v.Verify.message > 0)

let test_fixtures_distinct () =
  (* the four fixtures exercise four different check classes and four
     different diagnostics *)
  let vs = List.map (fun (c, p) -> single_violation c p) fixtures in
  let names =
    List.sort_uniq compare
      (List.map (fun v -> Verify.check_name v.Verify.check) vs)
  in
  Alcotest.(check int) "distinct classes" 4 (List.length names);
  let msgs =
    List.sort_uniq compare (List.map (fun v -> v.Verify.message) vs)
  in
  Alcotest.(check int) "distinct messages" 4 (List.length msgs)

let test_report_json () =
  let r = Verify.run machine fix_capacity in
  let j = Verify.to_json r in
  (* round-trips through the strict parser *)
  (match Psb_obs.Json.parse (Psb_obs.Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round-trip" true (Psb_obs.Json.equal j j')
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e);
  let member name = Psb_obs.Json.member name j in
  Alcotest.(check (option bool))
    "ok member" (Some false)
    (Option.map (function Psb_obs.Json.Bool b -> b | _ -> true) (member "ok"));
  Alcotest.(check int) "violations member" 1
    (List.length (Psb_obs.Json.to_list (Option.get (member "violations"))))

let test_report_metrics () =
  let m = Psb_obs.Metrics.create () in
  Verify.observe_metrics (Verify.run machine fix_capacity) m;
  Verify.observe_metrics (Verify.run machine (pcode_of ~model:Model.region_pred ~machine (Suite.find "li"))) m;
  let c name labels =
    Psb_obs.Metrics.(counter_value (counter m name ~labels))
  in
  Alcotest.(check int) "failures" 1 (c "verify_failures" []);
  Alcotest.(check int) "passes" 1 (c "verify_passes" []);
  Alcotest.(check int) "capacity violations" 1
    (c "verify_violations" [ ("check", "capacity") ]);
  Alcotest.(check int) "recovery violations" 0
    (c "verify_violations" [ ("check", "recovery") ])

(* ----- qcheck: static rejection matches dynamic flagging ----- *)

(* Clone a speculative register-writing slot with its predicate flipped
   on a condition that resolves after the clone's writeback: the clone
   is disjoint with the original, and both are unresolved at writeback,
   so two shadow versions of one register are demanded at once. The
   bundles touched must be exit-free so the hazard (second writeback
   arriving while the first shadow entry is live) cannot be cut short by
   a region exit. *)
let mutate (code : Pcode.t) =
  let try_region (r : Pcode.region) =
    let setc_bundle = Hashtbl.create 4 in
    Array.iteri
      (fun b bundle ->
        List.iter
          (fun slot ->
            match slot with
            | Pcode.Op { Pcode.op; _ } -> (
                match Instr.cond_def op with
                | Some c -> Hashtbl.replace setc_bundle (Cond.index c) b
                | None -> ())
            | Pcode.Exit _ -> ())
          bundle)
      r.Pcode.code;
    let has_exit b =
      b >= Array.length r.Pcode.code
      || List.exists
           (function Pcode.Exit _ -> true | Pcode.Op _ -> false)
           r.Pcode.code.(b)
    in
    let found = ref None in
    Array.iteri
      (fun b bundle ->
        List.iteri
          (fun s slot ->
            if !found = None then
              match slot with
              | Pcode.Op { Pcode.op; pred; _ } -> (
                  match (Instr.defs op, Instr.cond_def op) with
                  | [ reg ], None
                    when (not (Instr.has_side_effect op))
                         && (not (has_exit b))
                         && (not (has_exit (b + 1)))
                         && not (has_exit (b + 2)) ->
                      let late c =
                        match Hashtbl.find_opt setc_bundle (Cond.index c) with
                        | Some sb -> sb >= b + 1
                        | None -> false
                      in
                      let cs =
                        List.filter late (Cond.Set.elements (Pred.conds pred))
                      in
                      (match cs with
                      | c :: _ ->
                          found := Some (b, s, reg, Pred.flip pred c)
                      | [] -> ())
                  | _ -> ())
              | Pcode.Exit _ -> ())
          bundle)
      r.Pcode.code;
    match !found with
    | None -> None
    | Some (b, s, reg, pred') ->
        let clone =
          Pcode.op pred' (Instr.Mov { dst = reg; src = Operand.imm 3 })
        in
        let insert_after k l =
          List.concat (List.mapi (fun i x -> if i = k then [ x; clone ] else [ x ]) l)
        in
        let code' =
          Array.mapi
            (fun i bundle -> if i = b then insert_after s bundle else bundle)
            r.Pcode.code
        in
        Some ({ r with Pcode.code = code' }, b, reg)
  in
  let rec go before = function
    | [] -> None
    | r :: rest -> (
        match try_region r with
        | Some (r', b, reg) ->
            Some
              ( Pcode.make ~entry:code.Pcode.entry
                  (List.rev_append before (r' :: rest)),
                r.Pcode.name,
                b,
                reg )
        | None -> go (r :: before) rest)
  in
  go [] code.Pcode.regions

let prop_shadow_overflow =
  QCheck.Test.make
    ~name:"shadow overflow: verifier rejects, machine flags" ~count:40
    Gen_programs.arb_program
    (fun g ->
      let program = g.Gen_programs.program in
      let _, profile =
        Driver.profile_of program ~regs:Gen_programs.regs
          ~mem:(Gen_programs.make_mem g)
      in
      let compiled =
        Driver.compile ~verify:false ~model:Model.region_pred ~machine
          ~profile program
      in
      let code = Option.get compiled.Driver.pcode in
      (* the compiler's own output always verifies *)
      Verify.ok (Verify.run machine code)
      &&
      match mutate code with
      | None -> true (* nothing speculative to overflow *)
      | Some (code', rname, b, reg) ->
          let rejected =
            List.exists
              (fun (v : Verify.violation) -> v.Verify.check = Verify.Capacity)
              (Verify.run machine code').Verify.violations
          in
          (* The overflow is only dynamic when clone AND original both
             issue speculatively in the same visit of the mutated bundle:
             with any guarding condition already resolved, at most one of
             the pair writes a shadow version (the other executes
             non-speculatively or squashes) and there is nothing to flag —
             the static verifier still rejects, conservatively. Op_issue
             events follow their Bundle_issue, so count speculative
             defs of the cloned register per bundle visit. *)
          let in_site = ref false in
          let site_writes = ref 0 in
          let overflow = ref false in
          let on_event _ = function
            | Vliw_sim.Bundle_issue { region; pc; _ } ->
                in_site := Label.equal region rname && pc = b;
                site_writes := 0
            | Vliw_sim.Op_issue { op; spec = true; _ } when !in_site ->
                if List.exists (Reg.equal reg) (Instr.defs op) then begin
                  incr site_writes;
                  if !site_writes >= 2 then overflow := true
                end
            | _ -> ()
          in
          let flagged =
            match
              Vliw_sim.run ~on_event ~model:machine ~regs:Gen_programs.regs
                ~mem:(Gen_programs.make_mem g) code'
            with
            | res ->
                (not !overflow)
                || res.Vliw_sim.stats.Vliw_sim.shadow_conflicts > 0
            | exception Vliw_sim.Machine_error _ -> true
          in
          rejected && flagged)

let () =
  Alcotest.run "verify"
    [
      ( "suite",
        [
          Alcotest.test_case "every workload x executable model verifies"
            `Slow test_suite_verifies;
          Alcotest.test_case "driver verifies by default" `Quick
            test_driver_verifies_by_default;
        ] );
      ( "fixtures",
        List.map
          (fun ((check, _) as fx) ->
            Alcotest.test_case (Verify.check_name check) `Quick
              (test_fixture fx))
          fixtures
        @ [
            Alcotest.test_case "four distinct diagnostics" `Quick
              test_fixtures_distinct;
            Alcotest.test_case "report JSON round-trips" `Quick
              test_report_json;
            Alcotest.test_case "report exports metrics" `Quick
              test_report_metrics;
          ] );
      ( "qcheck",
        [ Qc.to_alcotest prop_shadow_overflow ] );
    ]
