(* Tests of the scalar transformations (copy propagation, DCE, jump
   threading): targeted behaviour plus semantic preservation on the whole
   benchmark suite and on random programs. *)

open Psb_isa
open Psb_compiler
open Psb_workloads

let reg = Reg.make
let lbl = Label.make
let rr i = Operand.reg (reg i)
let im i = Operand.imm i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run program ~regs ~mem = Interp.run ~regs ~mem program

let same_semantics ?(regs = []) ~mem_fn p1 p2 =
  let m1 = mem_fn () and m2 = mem_fn () in
  let r1 = run p1 ~regs ~mem:m1 and r2 = run p2 ~regs ~mem:m2 in
  r1.Interp.outcome = r2.Interp.outcome
  && r1.Interp.output = r2.Interp.output
  && Memory.equal m1 m2

(* ---------- copy propagation ---------- *)

let test_copy_prop_basic () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = im 7 };
            Instr.Mov { dst = reg 2; src = rr 1 };
            Instr.Alu { op = Opcode.Add; dst = reg 3; a = rr 2; b = rr 2 };
            Instr.Out (rr 3);
          ]
          Instr.Halt;
      ]
  in
  let p' = Transform.copy_propagate p in
  (* the add now reads r1 (or even the constant via r1=7 -> imm) *)
  let b = Program.find p' (lbl "e") in
  (match List.nth b.Program.body 2 with
  | Instr.Alu { a = Operand.Imm 7; b = Operand.Imm 7; _ } -> ()
  | Instr.Alu { a = Operand.Reg r1; b = Operand.Reg r2; _ }
    when Reg.index r1 = 1 && Reg.index r2 = 1 ->
      ()
  | op -> Alcotest.failf "copy not propagated: %a" Instr.pp_op op);
  check_bool "semantics preserved" true
    (same_semantics ~mem_fn:(fun () -> Memory.create ~size:16) p p')

let test_copy_prop_kill () =
  (* redefinition of the source kills the copy *)
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 2; src = rr 1 };
            Instr.Mov { dst = reg 1; src = im 9 } (* kills r2 -> r1 *);
            Instr.Out (rr 2);
          ]
          Instr.Halt;
      ]
  in
  let p' = Transform.copy_propagate p in
  let b = Program.find p' (lbl "e") in
  (match List.nth b.Program.body 2 with
  | Instr.Out (Operand.Reg r) when Reg.index r = 2 -> ()
  | op -> Alcotest.failf "copy wrongly survived the kill: %a" Instr.pp_op op);
  check_bool "semantics preserved" true
    (same_semantics
       ~regs:[ (reg 1, 5) ]
       ~mem_fn:(fun () -> Memory.create ~size:16)
       p p')

(* ---------- DCE ---------- *)

let test_dce_removes_dead () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = im 1 } (* dead *);
            Instr.Mov { dst = reg 1; src = im 2 };
            Instr.Mov { dst = reg 5; src = im 42 } (* dead forever *);
            Instr.Out (rr 1);
          ]
          Instr.Halt;
      ]
  in
  let p' = Transform.dead_code_eliminate p in
  check_int "two ops removed" (Program.size p - 2) (Program.size p');
  check_bool "semantics preserved" true
    (same_semantics ~mem_fn:(fun () -> Memory.create ~size:16) p p')

let test_dce_keeps_branch_compare () =
  (* the Cmp feeding a branch must survive (terminator use) *)
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [ Instr.Cmp { op = Opcode.Lt; dst = reg 4; a = im 1; b = im 2 } ]
          (Instr.Br { src = reg 4; if_true = lbl "a"; if_false = lbl "b" });
        Program.block (lbl "a") [ Instr.Out (im 1) ] Instr.Halt;
        Program.block (lbl "b") [ Instr.Out (im 0) ] Instr.Halt;
      ]
  in
  let p' = Transform.dead_code_eliminate p in
  check_int "nothing removed" (Program.size p) (Program.size p');
  check_bool "semantics preserved" true
    (same_semantics ~mem_fn:(fun () -> Memory.create ~size:16) p p')

let test_dce_keeps_side_effects () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = im 3 };
            Instr.Store { src = reg 1; base = reg 2; off = 0 } (* kept *);
            Instr.Load { dst = reg 9; base = reg 2; off = 0 }
            (* dead dst but unsafe: kept to preserve fault behaviour *);
          ]
          Instr.Halt;
      ]
  in
  let p' = Transform.dead_code_eliminate p in
  check_int "nothing removed" (Program.size p) (Program.size p')

(* ---------- jump threading ---------- *)

let test_jump_thread () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [ Instr.Cmp { op = Opcode.Lt; dst = reg 4; a = im 1; b = im 2 } ]
          (Instr.Br { src = reg 4; if_true = lbl "hop1"; if_false = lbl "x" });
        Program.block (lbl "hop1") [] (Instr.Jmp (lbl "hop2"));
        Program.block (lbl "hop2") [] (Instr.Jmp (lbl "x"));
        Program.block (lbl "x") [ Instr.Out (im 5) ] Instr.Halt;
      ]
  in
  let p' = Transform.jump_thread p in
  check_int "trivial blocks removed" 2 (List.length p'.Program.blocks);
  (match (Program.find p' (lbl "e")).Program.term with
  | Instr.Br { if_true; _ } ->
      check_bool "retargeted through the chain" true (Label.equal if_true (lbl "x"))
  | _ -> Alcotest.fail "terminator changed shape");
  check_bool "semantics preserved" true
    (same_semantics ~mem_fn:(fun () -> Memory.create ~size:16) p p')

(* ---------- preservation on the suite and on random programs ---------- *)

let test_optimize_suite () =
  List.iter
    (fun (w : Dsl.t) ->
      let p' = Transform.optimize w.Dsl.program in
      let p'' = Transform.jump_thread p' in
      check_bool (w.Dsl.name ^ " optimize preserves semantics") true
        (same_semantics ~regs:w.Dsl.regs ~mem_fn:w.Dsl.make_mem w.Dsl.program p');
      check_bool (w.Dsl.name ^ " jump_thread preserves semantics") true
        (same_semantics ~regs:w.Dsl.regs ~mem_fn:w.Dsl.make_mem w.Dsl.program p'');
      check_bool (w.Dsl.name ^ " no growth") true
        (Program.size p' <= Program.size w.Dsl.program))
    Suite.all

let test_unroll_suite () =
  List.iter
    (fun (w : Dsl.t) ->
      List.iter
        (fun factor ->
          let p' = Transform.unroll_loops ~factor w.Dsl.program in
          check_bool
            (Format.asprintf "%s unroll x%d preserves semantics" w.Dsl.name factor)
            true
            (same_semantics ~regs:w.Dsl.regs ~mem_fn:w.Dsl.make_mem w.Dsl.program p');
          check_bool
            (Format.asprintf "%s unroll x%d grows" w.Dsl.name factor)
            true
            (List.length p'.Program.blocks > List.length w.Dsl.program.Program.blocks))
        [ 2; 3 ])
    Suite.all

let test_unroll_compiles () =
  (* unrolled code must still compile and run equivalently on the machine *)
  let w = Suite.find "nroff" in
  let program = Transform.unroll_loops ~factor:2 w.Dsl.program in
  let scalar, profile =
    Driver.profile_of program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
  in
  let compiled =
    Driver.compile ~model:Model.region_pred
      ~machine:Psb_machine.Machine_model.base ~profile program
  in
  let vliw = Driver.run_vliw compiled ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) in
  Alcotest.(check (list int)) "unrolled output" scalar.Interp.output
    vliw.Psb_machine.Vliw_sim.output

let prop_unroll_preserves =
  QCheck.Test.make ~name:"unroll preserves random-program semantics" ~count:80
    Gen_programs.arb_program (fun g ->
      let p' = Transform.unroll_loops ~factor:2 g.Gen_programs.program in
      let m1 = Gen_programs.make_mem g and m2 = Gen_programs.make_mem g in
      let regs = Gen_programs.regs in
      let r1 = Interp.run ~fuel:500_000 ~regs ~mem:m1 g.Gen_programs.program in
      let r2 = Interp.run ~fuel:500_000 ~regs ~mem:m2 p' in
      QCheck.assume (r1.Interp.outcome <> Interp.Out_of_fuel);
      r1.Interp.outcome = r2.Interp.outcome
      && r1.Interp.output = r2.Interp.output
      && Memory.equal m1 m2)

let prop_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves random-program semantics"
    ~count:150 Gen_programs.arb_program (fun g ->
      let p' = Transform.optimize g.Gen_programs.program in
      let m1 = Gen_programs.make_mem g and m2 = Gen_programs.make_mem g in
      let regs = Gen_programs.regs in
      let r1 = Interp.run ~fuel:500_000 ~regs ~mem:m1 g.Gen_programs.program in
      let r2 = Interp.run ~fuel:500_000 ~regs ~mem:m2 p' in
      QCheck.assume (r1.Interp.outcome <> Interp.Out_of_fuel);
      r1.Interp.outcome = r2.Interp.outcome
      && r1.Interp.output = r2.Interp.output
      && Memory.equal m1 m2)

let prop_optimized_still_compiles =
  QCheck.Test.make ~name:"optimized programs still compile + run equivalently"
    ~count:60 Gen_programs.arb_program (fun g ->
      let p = Transform.optimize g.Gen_programs.program in
      let regs = Gen_programs.regs in
      let m1 = Gen_programs.make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:m1 p in
      QCheck.assume (scalar.Interp.outcome = Interp.Halted);
      let _, profile = Driver.profile_of p ~regs ~mem:(Gen_programs.make_mem g) in
      let compiled =
        Driver.compile ~model:Model.region_pred
          ~machine:Psb_machine.Machine_model.base ~profile p
      in
      let m2 = Gen_programs.make_mem g in
      let vliw = Driver.run_vliw compiled ~regs ~mem:m2 in
      vliw.Psb_machine.Vliw_sim.outcome = Interp.Halted
      && vliw.Psb_machine.Vliw_sim.output = scalar.Interp.output
      && Memory.equal m1 m2)

let () =
  Alcotest.run "transform"
    [
      ( "copy-prop",
        [
          Alcotest.test_case "basic" `Quick test_copy_prop_basic;
          Alcotest.test_case "kill" `Quick test_copy_prop_kill;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes dead" `Quick test_dce_removes_dead;
          Alcotest.test_case "keeps branch compare" `Quick
            test_dce_keeps_branch_compare;
          Alcotest.test_case "keeps side effects" `Quick test_dce_keeps_side_effects;
        ] );
      ("jump-thread", [ Alcotest.test_case "chain" `Quick test_jump_thread ]);
      ( "unroll",
        [
          Alcotest.test_case "benchmark suite" `Quick test_unroll_suite;
          Alcotest.test_case "compiles + runs" `Quick test_unroll_compiles;
          Qc.to_alcotest prop_unroll_preserves;
        ] );
      ( "preservation",
        Alcotest.test_case "benchmark suite" `Quick test_optimize_suite
        :: List.map Qc.to_alcotest
             [ prop_optimize_preserves; prop_optimized_still_compiles ] );
    ]
