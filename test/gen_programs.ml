(* The shared random-program generator now lives in lib/proptest as
   [Psb_proptest.Gen] (shape-tunable, shrinkable, reused by the fuzzer
   and the bench); this shim keeps the historical test-local name. *)

include Psb_proptest.Gen
