(* Tests of the predicating machine: predicated register file, store
   buffer, CCR, and the cycle-level VLIW simulator — including the
   Figure 4 (commit/squash) and Figure 5 (future-condition recovery)
   scenarios, exercised on hand-written predicated code. *)

open Psb_isa
open Psb_machine

let reg = Reg.make
let cond = Cond.make
let lbl = Label.make

let p_true c = Pred.of_list [ (c, true) ]
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A CCR with the given condition assignments — ticks now take the packed
   CCR itself rather than a lookup closure. *)
let ccr_with ?(width = 4) assigns =
  let ccr = Ccr.create ~width in
  List.iter (fun (c, v) -> Ccr.set ccr (cond c) v) assigns;
  ccr

(* Oracle check: the incremental live/fault counters must agree with a
   full recount of the buffered state. *)
let check_rf_counters rf =
  let live, faults = Regfile.debug_recount rf in
  check_bool "rf live counter" true (Regfile.has_spec rf = (live > 0));
  check_int "rf fault counter" faults (Regfile.buffered_faults rf)

let check_sb_counters sb =
  let len, spec, faults = Store_buffer.debug_recount sb in
  check_int "sb length counter" len (Store_buffer.length sb);
  check_bool "sb spec counter" true (Store_buffer.has_spec sb = (spec > 0));
  check_int "sb fault counter" faults (Store_buffer.buffered_faults sb)

(* ---------- CCR ---------- *)

let test_ccr_basic () =
  let ccr = Ccr.create ~width:4 in
  check_bool "initially unspecified" true (Ccr.get ccr (cond 0) = Pred.U);
  Ccr.set ccr (cond 0) true;
  Ccr.set ccr (cond 2) false;
  check_bool "c0 true" true (Ccr.get ccr (cond 0) = Pred.T);
  check_bool "c2 false" true (Ccr.get ccr (cond 2) = Pred.F);
  Ccr.reset ccr;
  check_bool "reset" true (Ccr.get ccr (cond 0) = Pred.U)

let test_ccr_eval () =
  let ccr = Ccr.create ~width:4 in
  let p = Pred.of_list [ (cond 0, true); (cond 1, false) ] in
  check_bool "unspec" true (Ccr.eval ccr p = Pred.Unspec);
  Ccr.set ccr (cond 0) true;
  (* paper rule: still unspecified while c1 is unset *)
  check_bool "still unspec" true (Ccr.eval ccr p = Pred.Unspec);
  Ccr.set ccr (cond 1) false;
  check_bool "true" true (Ccr.eval ccr p = Pred.True);
  Ccr.set ccr (cond 1) true;
  check_bool "false" true (Ccr.eval ccr p = Pred.False)

let test_ccr_assign () =
  let a = Ccr.create ~width:3 and b = Ccr.create ~width:3 in
  Ccr.set b (cond 1) true;
  Ccr.assign a ~from:b;
  check_bool "copied" true (Ccr.get a (cond 1) = Pred.T);
  Ccr.set b (cond 1) false;
  check_bool "independent" true (Ccr.get a (cond 1) = Pred.T)

(* ---------- Register file ---------- *)

let test_regfile_commit () =
  let rf = Regfile.create ~nregs:4 () in
  Regfile.write_seq rf (reg 0) 10;
  let p = p_true (cond 0) in
  check_bool "spec write ok" true
    (Regfile.write_spec rf (reg 0) 99 ~cpred:(Pred.compile p) ~fault:None = `Ok);
  check_int "seq unchanged" 10 (Regfile.read_seq rf (reg 0));
  check_int "shadow read" 99 (Regfile.read rf (reg 0) ~shadow:true ~pred:p);
  check_rf_counters rf;
  ignore (Regfile.tick rf (ccr_with [ (0, true) ]));
  check_int "committed" 99 (Regfile.read_seq rf (reg 0));
  check_bool "shadow cleared" true (not (Regfile.has_spec rf));
  check_rf_counters rf

let test_regfile_squash () =
  let rf = Regfile.create ~nregs:4 () in
  Regfile.write_seq rf (reg 1) 7;
  ignore
    (Regfile.write_spec rf (reg 1) 42
       ~cpred:(Pred.compile (p_true (cond 0)))
       ~fault:None);
  ignore (Regfile.tick rf (ccr_with [ (0, false) ]));
  check_int "squashed: seq intact" 7 (Regfile.read_seq rf (reg 1));
  check_bool "no spec left" true (not (Regfile.has_spec rf));
  check_int "one squash" 1 (Regfile.squashes rf)

let test_regfile_shadow_fallback () =
  (* §3.5 operand fetch: reading shadow with V clear falls back to seq. *)
  let rf = Regfile.create ~nregs:4 () in
  Regfile.write_seq rf (reg 2) 5;
  check_int "fallback" 5 (Regfile.read rf (reg 2) ~shadow:true ~pred:Pred.always)

let test_regfile_conflict () =
  let rf = Regfile.create ~nregs:4 () in
  let c0 = Pred.compile (p_true (cond 0))
  and c1 = Pred.compile (p_true (cond 1)) in
  check_bool "first ok" true
    (Regfile.write_spec rf (reg 0) 1 ~cpred:c0 ~fault:None = `Ok);
  check_bool "different pred conflicts" true
    (Regfile.write_spec rf (reg 0) 2 ~cpred:c1 ~fault:None = `Conflict);
  check_bool "same pred overwrites" true
    (Regfile.write_spec rf (reg 0) 3 ~cpred:c0 ~fault:None = `Ok);
  check_int "conflict counted" 1 (Regfile.conflicts rf);
  check_rf_counters rf

let test_regfile_infinite_mode () =
  let rf = Regfile.create ~mode:Regfile.Infinite ~nregs:4 () in
  let c0 = Pred.compile (p_true (cond 0))
  and c1 = Pred.compile (p_true (cond 1)) in
  check_bool "first ok" true
    (Regfile.write_spec rf (reg 0) 1 ~cpred:c0 ~fault:None = `Ok);
  check_bool "second ok too" true
    (Regfile.write_spec rf (reg 0) 2 ~cpred:c1 ~fault:None = `Ok);
  check_int "no conflicts" 0 (Regfile.conflicts rf);
  (* c0 true, c1 false: version 1 commits, version 2 squashes. *)
  ignore (Regfile.tick rf (ccr_with [ (0, true); (1, false) ]));
  check_int "right version committed" 1 (Regfile.read_seq rf (reg 0))

let test_regfile_exception_buffering () =
  let rf = Regfile.create ~nregs:4 () in
  let f = Fault.Mem (Memory.Unmapped 100) in
  let p = p_true (cond 0) in
  ignore
    (Regfile.write_spec rf (reg 3) 0 ~cpred:(Pred.compile p) ~fault:(Some f));
  check_rf_counters rf;
  check_int "no detection while unspec" 0
    (List.length (Regfile.committing_exceptions rf (fun _ -> Pred.U)));
  check_int "detected on commit" 1
    (List.length (Regfile.committing_exceptions rf (fun _ -> Pred.T)));
  check_int "squash clears it" 0
    (List.length (Regfile.committing_exceptions rf (fun _ -> Pred.F)))

(* ---------- Store buffer ---------- *)

let test_sb_fifo_drain () =
  let sb = Store_buffer.create () in
  let mem = Memory.create ~size:64 in
  Store_buffer.append sb ~addr:1 ~value:11 ~cpred:Pred.compiled_always
    ~spec:false ~fault:None;
  Store_buffer.append sb ~addr:2 ~value:22 ~cpred:Pred.compiled_always
    ~spec:false ~fault:None;
  check_sb_counters sb;
  check_int "drain limited" 1 (Store_buffer.drain sb ~max:1 mem);
  check_int "first written" 11 (Memory.peek mem 1);
  check_int "second pending" 0 (Memory.peek mem 2);
  check_int "drain rest" 1 (Store_buffer.drain sb ~max:8 mem);
  check_int "second written" 22 (Memory.peek mem 2)

let test_sb_spec_blocks_drain () =
  let sb = Store_buffer.create () in
  let mem = Memory.create ~size:64 in
  Store_buffer.append sb ~addr:1 ~value:1
    ~cpred:(Pred.compile (p_true (cond 0)))
    ~spec:true ~fault:None;
  Store_buffer.append sb ~addr:2 ~value:2 ~cpred:Pred.compiled_always
    ~spec:false ~fault:None;
  check_int "speculative head blocks" 0 (Store_buffer.drain sb ~max:8 mem);
  check_sb_counters sb;
  ignore (Store_buffer.tick sb (ccr_with [ (0, true) ]));
  check_sb_counters sb;
  check_int "after commit both drain" 2 (Store_buffer.drain sb ~max:8 mem);
  check_int "order preserved" 1 (Memory.peek mem 1)

let test_sb_squash () =
  let sb = Store_buffer.create () in
  let mem = Memory.create ~size:64 in
  Store_buffer.append sb ~addr:1 ~value:1
    ~cpred:(Pred.compile (p_true (cond 0)))
    ~spec:true ~fault:None;
  ignore (Store_buffer.tick sb (ccr_with [ (0, false) ]));
  check_sb_counters sb;
  check_int "squashed entry discarded" 0 (Store_buffer.drain sb ~max:8 mem);
  check_int "nothing written" 0 (Memory.peek mem 1);
  check_int "buffer empty" 0 (Store_buffer.length sb)

let test_sb_forwarding () =
  let sb = Store_buffer.create () in
  let p0 = p_true (cond 0) in
  let not_p0 = Pred.of_list [ (cond 0, false) ] in
  let unspec = ccr_with [] in
  Store_buffer.append sb ~addr:5 ~value:50 ~cpred:Pred.compiled_always
    ~spec:false ~fault:None;
  (match Store_buffer.forward sb ~addr:5 ~load_pred:Pred.always unspec with
  | `Hit (50, None) -> ()
  | _ -> Alcotest.fail "expected hit from non-speculative entry");
  Store_buffer.append sb ~addr:5 ~value:60 ~cpred:(Pred.compile p0) ~spec:true
    ~fault:None;
  (* A load on the opposite path skips the speculative entry. *)
  (match Store_buffer.forward sb ~addr:5 ~load_pred:not_p0 unspec with
  | `Hit (50, None) -> ()
  | _ -> Alcotest.fail "disjoint speculative entry must be skipped");
  (* A load control-dependent on the store sees the speculative value. *)
  (match Store_buffer.forward sb ~addr:5 ~load_pred:p0 unspec with
  | `Hit (60, None) -> ()
  | _ -> Alcotest.fail "implied speculative entry must forward");
  (* An unrelated load with an unresolved store is a commit dependence. *)
  (match Store_buffer.forward sb ~addr:5 ~load_pred:Pred.always unspec with
  | `Commit_dependence -> ()
  | _ -> Alcotest.fail "expected commit-dependence report")

(* ---------- VLIW machine: hand-written predicated code ---------- *)

let model = Machine_model.base

let run_pcode ?regs ?(mem_size = 256) ?mem pcode =
  let mem = match mem with Some m -> m | None -> Memory.create ~size:mem_size in
  let regs = Option.value regs ~default:[] in
  (Vliw_sim.run ~model ~regs ~mem pcode, mem)

let region name ?(sources = []) bundles =
  { Pcode.name = lbl name; code = Array.of_list bundles; source_blocks = sources }

let mov ?(pred = Pred.always) d src = Pcode.op pred (Instr.Mov { dst = reg d; src })

let setc c op a b = Pcode.op Pred.always (Instr.Setc { dst = cond c; op; a; b })

let load ?(pred = Pred.always) ?(shadow = []) d base off =
  Pcode.op
    ~shadow_srcs:(List.fold_left (fun s r -> Reg.Set.add (reg r) s) Reg.Set.empty shadow)
    pred
    (Instr.Load { dst = reg d; base = reg base; off })

let store ?(pred = Pred.always) src base off =
  Pcode.op pred (Instr.Store { src = reg src; base = reg base; off })

let out ?(pred = Pred.always) o = Pcode.op pred (Instr.Out o)
let imm i = Operand.imm i
let r i = Operand.reg (reg i)

(* A diamond collapsed into one region: r2 chosen by c0, both sides
   executed speculatively before c0 is known. *)
let diamond_region ~c0_true =
  let cmp_imm = if c0_true then 10 else 1 in
  region "main"
    [
      [ mov 1 (imm 5) ];
      (* both arms execute speculatively: shadow writes with predicates *)
      [
        mov ~pred:(p_true (cond 0)) 2 (imm 111);
        mov ~pred:(Pred.of_list [ (cond 0, false) ]) 3 (imm 222);
      ];
      [ setc 0 Opcode.Lt (r 1) (imm cmp_imm) ];
      [ out (r 2); out (r 3) ];
      [ Pcode.exit_stop Pred.always ];
    ]

let test_vliw_diamond_commit () =
  let pcode = Pcode.make ~entry:(lbl "main") [ diamond_region ~c0_true:true ] in
  let res, _ = run_pcode pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  (* c0 true: r2 committed to 111, r3's write squashed (reads as 0). *)
  Alcotest.(check (list int)) "output" [ 111; 0 ] res.Vliw_sim.output;
  check_bool "some commit" true (res.Vliw_sim.stats.Vliw_sim.commits >= 1);
  check_bool "some squash" true (res.Vliw_sim.stats.Vliw_sim.squashes >= 1)

let test_vliw_diamond_squash () =
  let pcode = Pcode.make ~entry:(lbl "main") [ diamond_region ~c0_true:false ] in
  let res, _ = run_pcode pcode in
  Alcotest.(check (list int)) "output" [ 0; 222 ] res.Vliw_sim.output

let test_vliw_spec_store_commit () =
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 7) ];
            [ store ~pred:(p_true (cond 0)) 1 0 10 ] (* spec store mem[r0+10] *);
            [ setc 0 Opcode.Eq (r 1) (imm 7) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, mem = run_pcode pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "store committed and drained" 7 (Memory.peek mem 10)

let test_vliw_spec_store_squash () =
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 7) ];
            [ store ~pred:(p_true (cond 0)) 1 0 10 ];
            [ setc 0 Opcode.Eq (r 1) (imm 999) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, mem = run_pcode pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "store squashed" 0 (Memory.peek mem 10)

(* Figure-5-style scenario: a speculative load faults; the fault is
   buffered with its predicate; the condition later commits it; the
   machine recovers through the future condition and handles the fault
   (demand page mapped), then resumes. *)
let recovery_region ~addr =
  let nop = Pcode.op Pred.always Instr.Nop in
  region "main"
    [
      [ mov 2 (imm addr) ];
      [ load ~pred:(p_true (cond 0)) 3 2 0 ] (* speculative, faults *);
      [ nop ] (* respect the two-cycle load latency *);
      [
        Pcode.op
          ~shadow_srcs:(Reg.Set.singleton (reg 3))
          (p_true (cond 0))
          (Instr.Alu { op = Opcode.Add; dst = reg 4; a = r 3; b = imm 1 });
      ]
      (* dependent on the corrupted value; must be re-executed *);
      [ mov 5 (imm 50) ] (* independent non-speculative work *);
      [ setc 0 Opcode.Lt (imm 0) (imm 1) ] (* commits the exception *);
      [ out (r 4); out (r 5) ];
      [ Pcode.exit_stop Pred.always ];
    ]

let test_vliw_recovery_recoverable () =
  let mem = Memory.create_demand ~size:4096 ~unmapped:(1024, 2048) in
  Memory.poke mem 1100 77;
  (* poke maps the page; fault must come from an address on another page *)
  let addr = 1200 in
  let pcode = Pcode.make ~entry:(lbl "main") [ recovery_region ~addr ] in
  let res, _ = run_pcode ~mem pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "one recovery" 1 res.Vliw_sim.stats.Vliw_sim.recoveries;
  check_int "fault handled once" 1 res.Vliw_sim.faults_handled;
  (* mem[1200] reads 0 after mapping; r4 = 0 + 1 *)
  Alcotest.(check (list int)) "output" [ 1; 50 ] res.Vliw_sim.output

let test_vliw_recovery_dependent_reexecuted () =
  let mem = Memory.create_demand ~size:4096 ~unmapped:(1024, 2048) in
  Memory.poke mem 1100 77;
  (* Remap trick: pre-poke the faulting address on an unmapped page is not
     possible (poke maps it); instead verify via a mapped-later value: the
     handled load reads 0, so the dependent add yields 1 — checked above.
     Here check a non-faulting speculative chain for contrast. *)
  let pcode = Pcode.make ~entry:(lbl "main") [ recovery_region ~addr:1100 ] in
  let res, _ = run_pcode ~mem pcode in
  check_int "no recovery when page mapped" 0 res.Vliw_sim.stats.Vliw_sim.recoveries;
  Alcotest.(check (list int)) "output" [ 78; 50 ] res.Vliw_sim.output

let test_vliw_fatal_committed_exception () =
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 2 (imm (-4)) ];
            [ load ~pred:(p_true (cond 0)) 3 2 0 ];
            [ Pcode.op Pred.always Instr.Nop ];
            [ setc 0 Opcode.Lt (imm 0) (imm 1) ];
            [ out (r 3) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, _ = run_pcode pcode in
  (match res.Vliw_sim.outcome with
  | Interp.Fatal (Fault.Mem (Memory.Out_of_bounds -4)) -> ()
  | o -> Alcotest.failf "expected fatal OOB, got %a" Interp.pp_outcome o);
  check_int "recovery attempted" 1 res.Vliw_sim.stats.Vliw_sim.recoveries

let test_vliw_squashed_fault_ignored () =
  (* The linked-list motivation (§2.1): a speculative load faults but its
     predicate turns out false — the fault must vanish without a trace. *)
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 2 (imm (-4)) ];
            [ load ~pred:(p_true (cond 0)) 3 2 0 ];
            [ Pcode.op Pred.always Instr.Nop ];
            [ setc 0 Opcode.Lt (imm 1) (imm 0) ] (* c0 = false *);
            [ out (imm 123) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, _ = run_pcode pcode in
  check_bool "halted normally" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "no recoveries" 0 res.Vliw_sim.stats.Vliw_sim.recoveries;
  Alcotest.(check (list int)) "output" [ 123 ] res.Vliw_sim.output

let test_vliw_region_transition () =
  let r1 =
    region "r1"
      [
        [ mov 1 (imm 3) ];
        [ setc 0 Opcode.Lt (r 1) (imm 10) ];
        [
          Pcode.exit_to (p_true (cond 0)) (lbl "r2");
          Pcode.exit_stop (Pred.of_list [ (cond 0, false) ]);
        ];
      ]
  in
  let r2 =
    region "r2"
      [
        (* c0 must have been reset on entry: a predicated op here must be
           speculative again, not committed from the previous region. *)
        [ mov ~pred:(p_true (cond 0)) 2 (imm 5) ];
        [ setc 0 Opcode.Gt (r 1) (imm 100) ] (* false in r2 *);
        [ out (r 2) ];
        [ Pcode.exit_stop Pred.always ];
      ]
  in
  let pcode = Pcode.make ~entry:(lbl "r1") [ r1; r2 ] in
  let res, _ = run_pcode pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  (* In r2, c0 is false, so r2's speculative mov squashes: out = 0. *)
  Alcotest.(check (list int)) "output" [ 0 ] res.Vliw_sim.output;
  check_int "one transition + final stop" 2
    res.Vliw_sim.stats.Vliw_sim.region_transitions

let test_vliw_shadow_source_fetch () =
  (* A consumer reading the producer's speculative value via the shadow
     flag, before the producer commits. *)
  let p0 = p_true (cond 0) in
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 5) ];
            [ mov ~pred:p0 2 (imm 40) ];
            [ Pcode.op Pred.always Instr.Nop ];
            [
              Pcode.op
                ~shadow_srcs:(Reg.Set.singleton (reg 2))
                p0
                (Instr.Alu { op = Opcode.Add; dst = reg 4; a = r 2; b = imm 2 });
            ];
            [ setc 0 Opcode.Lt (r 1) (imm 10) ];
            [ out (r 4) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, _ = run_pcode pcode in
  Alcotest.(check (list int)) "shadow operand seen" [ 42 ] res.Vliw_sim.output

let test_vliw_out_of_fuel () =
  let pcode =
    Pcode.make ~entry:(lbl "spin")
      [
        region "spin"
          [ [ mov 1 (imm 1) ]; [ Pcode.exit_to Pred.always (lbl "spin") ] ];
      ]
  in
  let res, _ = Vliw_sim.run ~fuel:1000 ~model ~regs:[] ~mem:(Memory.create ~size:16)
      pcode |> fun r -> (r, ()) in
  check_bool "out of fuel" true (res.Vliw_sim.outcome = Interp.Out_of_fuel)

let test_vliw_conflict_stall () =
  (* Two speculative writes to the same register with different predicates,
     issued in the same bundle as the condition-setting instruction so the
     conflict resolves one cycle later: the single-shadow model must stall
     once and still produce the right result. *)
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 5) ];
            [
              setc 0 Opcode.Lt (r 1) (imm 10);
              mov ~pred:(p_true (cond 0)) 2 (imm 111);
              mov ~pred:(Pred.of_list [ (cond 0, false) ]) 2 (imm 222);
            ];
            [ Pcode.op Pred.always Instr.Nop ];
            [ out (r 2) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, _ = run_pcode pcode in
  Alcotest.(check (list int)) "right value" [ 111 ] res.Vliw_sim.output;
  check_bool "conflict recorded" true
    (res.Vliw_sim.stats.Vliw_sim.shadow_conflicts >= 1);
  (* The infinite-shadow model executes the same code without stalls. *)
  let mem = Memory.create ~size:256 in
  let res_inf =
    Vliw_sim.run ~regfile_mode:Regfile.Infinite ~model ~regs:[] ~mem pcode
  in
  Alcotest.(check (list int)) "same result" [ 111 ] res_inf.Vliw_sim.output;
  check_int "no conflicts" 0 res_inf.Vliw_sim.stats.Vliw_sim.shadow_conflicts

(* ---------- recovery edge cases ---------- *)

(* Two independent speculative faults committed by two different conditions
   in one region: two full recovery episodes back to back. *)
let test_vliw_double_recovery () =
  let mem = Memory.create_demand ~size:4096 ~unmapped:(1024, 3072) in
  let nop = Pcode.op Pred.always Instr.Nop in
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 2 (imm 1200); mov 3 (imm 2200) ];
            [ load ~pred:(p_true (cond 0)) 4 2 0 ] (* faults, pred c0 *);
            [ load ~pred:(p_true (cond 1)) 5 3 0 ] (* faults, pred c1 *);
            [ nop ];
            [ setc 0 Opcode.Lt (imm 0) (imm 1) ] (* commits fault #1 *);
            [ nop ];
            [ setc 1 Opcode.Lt (imm 1) (imm 2) ] (* commits fault #2 *);
            [
              Pcode.op
                ~shadow_srcs:(Reg.Set.of_list [ reg 4; reg 5 ])
                (Pred.of_list [ (cond 0, true); (cond 1, true) ])
                (Instr.Alu { op = Opcode.Add; dst = reg 6; a = r 4; b = r 5 });
            ];
            [ out (r 6) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, _ = run_pcode ~mem pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "two recoveries" 2 res.Vliw_sim.stats.Vliw_sim.recoveries;
  check_int "two faults handled" 2 res.Vliw_sim.faults_handled;
  Alcotest.(check (list int)) "sum of mapped zeros" [ 0 ] res.Vliw_sim.output

(* A speculative store before the commit point must be invalidated at
   detection and regenerated by the recovery re-execution. *)
let test_vliw_recovery_regenerates_store () =
  let mem = Memory.create_demand ~size:4096 ~unmapped:(1024, 2048) in
  let nop = Pcode.op Pred.always Instr.Nop in
  let p0 = p_true (cond 0) in
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 2 (imm 1200); mov 3 (imm 77) ];
            [ load ~pred:p0 4 2 0; store ~pred:p0 3 0 10 ]
            (* the load faults; the store is speculative and will be
               invalidated, then re-executed during recovery *);
            [ nop ];
            [ setc 0 Opcode.Lt (imm 0) (imm 1) ];
            [ out (imm 1) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, mem = run_pcode ~mem pcode in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "one recovery" 1 res.Vliw_sim.stats.Vliw_sim.recoveries;
  check_int "store survived recovery" 77 (Memory.peek mem 10)

(* A fatal fault whose predicate commits: recovery runs, re-faults, and
   the future condition says handle it — fatal aborts the program. *)
let test_vliw_fatal_during_recovery () =
  let nop = Pcode.op Pred.always Instr.Nop in
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 2 (imm (-3)) ];
            [ load ~pred:(p_true (cond 0)) 4 2 0 ];
            [ nop ];
            [ setc 0 Opcode.Lt (imm 0) (imm 1) ];
            [ out (imm 9) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let res, _ = run_pcode pcode in
  (match res.Vliw_sim.outcome with
  | Interp.Fatal (Fault.Mem (Memory.Out_of_bounds -3)) -> ()
  | o -> Alcotest.failf "expected fatal OOB, got %a" Interp.pp_outcome o);
  check_int "recovery was attempted" 1 res.Vliw_sim.stats.Vliw_sim.recoveries

(* Store-buffer capacity: with two store units feeding one D-cache write
   port, a burst of stores outruns the drain, fills the tiny FIFO, and
   stalls the next store bundle until the backlog clears. A speculative
   head whose resolver is scheduled behind a stalled store can never
   resolve — the deadlock guard reports it as a machine error. *)
let test_vliw_sb_capacity_stall () =
  let burst =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 7) ];
            [ store 1 0 20; store 1 0 21 ];
            [ store 1 0 22; store 1 0 23 ];
            [ store 1 0 24 ];
            [ out (imm 1) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let tiny =
    {
      model with
      Machine_model.sb_capacity = 2;
      Machine_model.store_units = 2;
      Machine_model.dcache_ports = 1;
    }
  in
  let mem = Memory.create ~size:256 in
  let res = Vliw_sim.run ~model:tiny ~regs:[] ~mem burst in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_bool "stalled on the full buffer" true
    (res.Vliw_sim.stats.Vliw_sim.sb_stall_cycles > 0);
  check_int "all stores landed" 7 (Memory.peek mem 24);
  (* ample capacity: no stalls *)
  let roomy = { tiny with Machine_model.sb_capacity = 16 } in
  let res2 = Vliw_sim.run ~model:roomy ~regs:[] ~mem:(Memory.create ~size:256) burst in
  check_int "no stalls at capacity 16" 0 res2.Vliw_sim.stats.Vliw_sim.sb_stall_cycles;
  (* pathological: a speculative head blocks the FIFO and its resolving
     Setc sits behind a stalled store bundle *)
  let bad =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 7) ];
            [ store ~pred:(p_true (cond 0)) 1 0 20 ];
            [ store 1 0 21 ];
            [ setc 0 Opcode.Gt (imm 1) (imm 0) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let cap1 = { tiny with Machine_model.sb_capacity = 1 } in
  match Vliw_sim.run ~model:cap1 ~regs:[] ~mem:(Memory.create ~size:256) bad with
  | _ -> Alcotest.fail "expected a machine error"
  | exception Vliw_sim.Machine_error _ -> ()

(* ---------- The paper's own example: Figure 4 / Table 1 ---------- *)

(* The scheduled code of Figure 4, transcribed bundle by bundle for the
   2-issue machine, and driven down the c0&c1 path of Table 1:

     (1) i1 : alw   r1 = load(r2)      i15: c0&c1  r2.s = r2 - 1
     (2) i10: !c0   r5.s = load array  i14: c0&c1  store(r7) = r5
     (3) i2 : alw   r3 = r1 + 1        i16: c0&c1  r7.s = r2.s << 1
     (4) i6 : c0    r6 = load(r3)      i3 : alw    c0 = r3 < r4
     (5) i11: alw   c2 = r2 < 0        nop
     (6) i7 : alw   c1 = r5 < r6       i12: !c0&c2  j L6
     (7) i9 : c0&!c1 j L5              i17: c0&c1   j L8
     (8) i13: !c0&!c2 j L7             nop

   Expected behaviour (Table 1): the speculative r5 is squashed when c0
   sets true; i6 commits during execution; r2, r7 and the buffered store
   commit when c1 sets true; the region exits through i17 to L8. *)
let test_paper_figure4 () =
  let c0 = cond 0 and c1 = cond 1 and c2 = cond 2 in
  let p_c0c1 = Pred.of_list [ (c0, true); (c1, true) ] in
  let p_nc0 = Pred.of_list [ (c0, false) ] in
  let p_c0 = Pred.of_list [ (c0, true) ] in
  let p_c0nc1 = Pred.of_list [ (c0, true); (c1, false) ] in
  let p_nc0c2 = Pred.of_list [ (c0, false); (c2, true) ] in
  let p_nc0nc2 = Pred.of_list [ (c0, false); (c2, false) ] in
  let setc_cmp c op a b = Pcode.op Pred.always (Instr.Setc { dst = c; op; a; b }) in
  let main =
    region "L4"
      [
        (* (1) *)
        [ load 1 2 0; Pcode.op p_c0c1 (Instr.Alu { op = Opcode.Sub; dst = reg 2; a = r 2; b = imm 1 }) ];
        (* (2): i10 loads the array element; i14 buffers a speculative store *)
        [ load ~pred:p_nc0 5 8 0; store ~pred:p_c0c1 5 7 0 ];
        (* (3) *)
        [ Pcode.op Pred.always (Instr.Alu { op = Opcode.Add; dst = reg 3; a = r 1; b = imm 1 });
          Pcode.op ~shadow_srcs:(Reg.Set.singleton (reg 2)) p_c0c1
            (Instr.Alu { op = Opcode.Sll; dst = reg 7; a = r 2; b = imm 1 }) ];
        (* (4) *)
        [ load ~pred:p_c0 6 3 0; setc_cmp c0 Opcode.Lt (r 3) (r 4) ];
        (* (5) *)
        [ setc_cmp c2 Opcode.Lt (r 2) (imm 0) ];
        (* (6) *)
        [ setc_cmp c1 Opcode.Lt (r 5) (r 6); Pcode.exit_to p_nc0c2 (lbl "L6") ];
        (* (7) *)
        [ Pcode.exit_to p_c0nc1 (lbl "L5"); Pcode.exit_to p_c0c1 (lbl "L8") ];
        (* (8) *)
        [ Pcode.exit_to p_nc0nc2 (lbl "L7") ];
      ]
  in
  let stop name = region name [ [ out (imm 0); Pcode.exit_stop Pred.always ] ] in
  let l8 = region "L8" [ [ out (imm 8); Pcode.exit_stop Pred.always ] ] in
  let pcode =
    Pcode.make ~entry:(lbl "L4") [ main; l8; stop "L5"; stop "L6"; stop "L7" ]
  in
  let mem = Memory.create ~size:256 in
  Memory.poke mem 40 5 (* r1 = mem[r2=40] = 5, so r3 = 6 *);
  Memory.poke mem 6 100 (* r6 = mem[r3=6] = 100 *);
  Memory.poke mem 64 55 (* the array element i10 loads speculatively *);
  let regs =
    [ (reg 2, 40); (reg 4, 10); (reg 5, 7); (reg 7, 99); (reg 8, 64) ]
  in
  let two_issue =
    { Machine_model.base with Machine_model.issue_width = 2 }
  in
  let events = ref [] in
  let on_event cycle ev = events := (cycle, ev) :: !events in
  let res = Vliw_sim.run ~on_event ~model:two_issue ~regs ~mem pcode in
  let events = List.rev !events in
  (* took the i17 exit to L8 *)
  Alcotest.(check (list int)) "exited to L8" [ 8 ] res.Vliw_sim.output;
  (* r2 committed as r2 - 1 *)
  check_int "r2 committed" 39 (Reg.Map.find (reg 2) res.Vliw_sim.regs);
  (* i16 read the speculative r2 through the shadow: r7 = (40-1) << 1 *)
  check_int "r7 from shadow r2" 78 (Reg.Map.find (reg 7) res.Vliw_sim.regs);
  (* i14 stored the sequential r5 at the old r7 and committed via sb1 *)
  check_int "store committed" 7 (Memory.peek mem 99);
  (* i10's speculative r5 was squashed: the sequential r5 is untouched *)
  check_int "r5 squashed" 7 (Reg.Map.find (reg 5) res.Vliw_sim.regs);
  (* i6 committed during execution *)
  check_int "r6 committed in flight" 100 (Reg.Map.find (reg 6) res.Vliw_sim.regs);
  check_bool "at least one squash (r5)" true (res.Vliw_sim.stats.Vliw_sim.squashes >= 1);
  check_bool "speculative commits (r2, r7, sb1)" true
    (res.Vliw_sim.stats.Vliw_sim.commits >= 3);
  (* Table 1 runs 7 cycles to the transfer; allow the pipeline-drain tail *)
  check_bool
    (Format.asprintf "region time ~ Table 1 (got %d cycles)" res.Vliw_sim.cycles)
    true
    (res.Vliw_sim.cycles >= 7 && res.Vliw_sim.cycles <= 12);
  (* Table 1's event sequence: r5 squashes when c0 sets (cycle 5 in the
     paper's 1-based counting); r2, r7 and the buffered store all commit
     together when c1 sets (cycle 7); the exit to L8 fires the same
     cycle. *)
  let cycle_of ev =
    List.find_map (fun (c, e) -> if e = ev then Some c else None) events
  in
  let get name ev =
    match cycle_of ev with
    | Some c -> c
    | None -> Alcotest.failf "event %s missing from the trace" name
  in
  let t_squash_r5 = get "squash r5" (Vliw_sim.Reg_squash (reg 5)) in
  let t_commit_r2 = get "commit r2" (Vliw_sim.Reg_commit (reg 2)) in
  let t_commit_r7 = get "commit r7" (Vliw_sim.Reg_commit (reg 7)) in
  let t_commit_sb = get "commit sb" (Vliw_sim.Store_commit 99) in
  let t_exit = get "exit" (Vliw_sim.Region_exit (Pcode.To_region (lbl "L8"))) in
  check_bool "r5 squashed before the c0&c1 commits" true
    (t_squash_r5 < t_commit_r2);
  check_int "r2 and r7 commit together" t_commit_r2 t_commit_r7;
  check_int "the store commits with them" t_commit_r2 t_commit_sb;
  check_int "exit fires the same cycle as the commits" t_commit_r2 t_exit;
  (* the squash happens exactly two cycles before the commit group, as in
     Table 1 (c0 at cycle 5, c1 at cycle 7) *)
  check_int "squash-to-commit spacing" 2 (t_commit_r2 - t_squash_r5)

(* The Figure 5 walkthrough (§3.5): i4's speculative exception commits
   when c1 sets true; the machine saves the future condition, rolls back,
   and in recovery mode handles i4's fault (its predicate is true under
   the future condition), ignores i5's (false under it), and regenerates
   i6's value; recovery ends at the original commit point.

     i1: alw    ? r1 = r2          i5: c0&!c1 ? r5.s = load(r6)   [faults]
     i2: alw    ? c0 = r3 < 0      i6: c0&c1  ? r7.s = r7 + r3.s
     i3: c0     ? r2 = load(r2)    i7: alw    ? c1 = r2 > r8
     i4: c0&c1  ? r3.s = load(r4)  [faults]                          *)
let test_paper_figure5 () =
  let c0 = cond 0 and c1 = cond 1 in
  let p_c0 = p_true c0 in
  let p_c0c1 = Pred.of_list [ (c0, true); (c1, true) ] in
  let p_c0nc1 = Pred.of_list [ (c0, true); (c1, false) ] in
  let pcode =
    Pcode.make ~entry:(lbl "R")
      [
        region "R"
          [
            [ mov 1 (r 2) ];
            [ setc 0 Opcode.Lt (r 3) (imm 0) ];
            [ load ~pred:p_c0 2 2 0 ];
            [ load ~pred:p_c0c1 3 4 0 ];
            [ load ~pred:p_c0nc1 5 6 0 ];
            [
              Pcode.op
                ~shadow_srcs:(Reg.Set.singleton (reg 3))
                p_c0c1
                (Instr.Alu { op = Opcode.Add; dst = reg 7; a = r 7; b = r 3 });
            ];
            [ setc 1 Opcode.Gt (r 2) (r 8) ];
            [ out (r 7) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let mem = Memory.create_demand ~size:4096 ~unmapped:(1024, 2048) in
  Memory.poke mem 50 99 (* i3's load: 99 > r8, so c1 sets true *);
  let regs =
    [ (reg 2, 50); (reg 3, -1); (reg 4, 1100); (reg 6, 1300); (reg 7, 10); (reg 8, 5) ]
  in
  let single_issue = { Machine_model.base with Machine_model.issue_width = 1 } in
  let events = ref [] in
  let on_event cycle ev = events := (cycle, ev) :: !events in
  let res = Vliw_sim.run ~on_event ~model:single_issue ~regs ~mem pcode in
  let events = List.rev !events in
  check_bool "halted" true (res.Vliw_sim.outcome = Interp.Halted);
  check_int "one recovery episode" 1 res.Vliw_sim.stats.Vliw_sim.recoveries;
  (* i4's exception handled; i5's squashed without a handler call *)
  check_int "only i4's fault handled" 1 res.Vliw_sim.faults_handled;
  (* r7 regenerated by i6's re-execution: 10 + mem[1100 after mapping]=0 *)
  Alcotest.(check (list int)) "r7 regenerated" [ 10 ] res.Vliw_sim.output;
  (* event order: detection → recovery done → r3/r7 commit and r5 squash *)
  let idx name p =
    match List.find_index (fun (_, e) -> p e) events with
    | Some i -> i
    | None -> Alcotest.failf "event %s missing" name
  in
  let det = idx "detect" (fun e -> e = Vliw_sim.Exception_detected) in
  let fin = idx "recovery done" (fun e -> e = Vliw_sim.Recovery_done) in
  let commit_r3 = idx "commit r3" (fun e -> e = Vliw_sim.Reg_commit (reg 3)) in
  let commit_r7 = idx "commit r7" (fun e -> e = Vliw_sim.Reg_commit (reg 7)) in
  let squash_r5 = idx "squash r5" (fun e -> e = Vliw_sim.Reg_squash (reg 5)) in
  check_bool "detection precedes recovery end" true (det < fin);
  check_bool "commits happen after recovery" true
    (fin < commit_r3 && fin < commit_r7 && fin < squash_r5);
  (* the squashed i5 entry never triggers a second detection *)
  check_int "exactly one detection" 1
    (List.length (List.filter (fun (_, e) -> e = Vliw_sim.Exception_detected) events))

(* ---------- machine invariants on bad code ---------- *)

let expect_machine_error name pcode =
  match run_pcode pcode with
  | _ -> Alcotest.failf "%s: expected a machine error" name
  | exception Vliw_sim.Machine_error _ -> ()

let test_vliw_bad_code_rejected () =
  (* running off a region end: the only exit's predicate never fires *)
  expect_machine_error "non-exhaustive exits"
    (Pcode.make ~entry:(lbl "m")
       [
         region "m"
           [
             [ mov 1 (imm 0) ];
             [ setc 0 Opcode.Lt (imm 2) (imm 1) ] (* c0 = false *);
             [ Pcode.exit_to (p_true (cond 0)) (lbl "m") ];
           ];
       ]);
  (* a side-effecting Out issued under an unspecified predicate *)
  expect_machine_error "speculative Out"
    (Pcode.make ~entry:(lbl "m")
       [
         region "m"
           [
             [ out ~pred:(p_true (cond 0)) (imm 1) ];
             [ setc 0 Opcode.Lt (imm 1) (imm 2) ];
             [ Pcode.exit_stop Pred.always ];
           ];
       ]);
  (* a commit-dependence violation: a load hits an unresolved speculative
     store to the same address with an unrelated predicate *)
  expect_machine_error "commit dependence"
    (Pcode.make ~entry:(lbl "m")
       [
         region "m"
           [
             [ mov 1 (imm 7) ];
             [ store ~pred:(p_true (cond 0)) 1 0 10 ];
             [ load 2 0 10 ] (* alw load of the same address *);
             [ setc 0 Opcode.Lt (imm 1) (imm 2) ];
             [ Pcode.exit_stop Pred.always ];
           ];
       ])

(* region predicating must agree with the scalar reference at every
   machine width, not just the base 4-issue *)
let test_vliw_widths_agree () =
  let w = Psb_workloads.Suite.find "espresso" in
  let open Psb_workloads in
  let scalar, profile =
    Psb_compiler.Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs
      ~mem:(w.Dsl.make_mem ())
  in
  List.iter
    (fun width ->
      let machine = Machine_model.full_issue ~width ~max_spec_conds:4 in
      let compiled =
        Psb_compiler.Driver.compile ~model:Psb_compiler.Model.region_pred
          ~machine ~profile w.Dsl.program
      in
      let res =
        Psb_compiler.Driver.run_vliw compiled ~regs:w.Dsl.regs
          ~mem:(w.Dsl.make_mem ())
      in
      Alcotest.(check (list int))
        (Format.asprintf "%d-issue output" width)
        scalar.Interp.output res.Vliw_sim.output;
      (* a single-issue predicated machine pays for both diamond arms and
         can legitimately trail the scalar machine (the paper's Figure 8
         starts at 2-issue); from 2-issue up, predication must win *)
      if width >= 2 then
        check_bool
          (Format.asprintf "%d-issue no slower than scalar" width)
          true
          (res.Vliw_sim.cycles <= scalar.Interp.cycles)
      else
        check_bool "1-issue within 2x of scalar" true
          (res.Vliw_sim.cycles <= 2 * scalar.Interp.cycles))
    [ 1; 2; 8 ]

(* ---------- predicated-code text round trip ---------- *)

let test_pcode_text_roundtrip () =
  (* compile a real workload, print its predicated code, parse it back,
     and check both the text fixpoint and the machine behaviour *)
  let w = Psb_workloads.Suite.find "li" in
  let open Psb_workloads in
  let scalar, profile =
    Psb_compiler.Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs
      ~mem:(w.Dsl.make_mem ())
  in
  let compiled =
    Psb_compiler.Driver.compile ~model:Psb_compiler.Model.region_pred
      ~machine:Machine_model.base ~profile w.Dsl.program
  in
  let code = Option.get compiled.Psb_compiler.Driver.pcode in
  let text = Pcode_text.print code in
  match Pcode_text.parse text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok code' ->
      Alcotest.(check string) "print/parse fixpoint" text (Pcode_text.print code');
      let res =
        Vliw_sim.run ~model:Machine_model.base ~regs:w.Dsl.regs
          ~mem:(w.Dsl.make_mem ()) code'
      in
      Alcotest.(check (list int)) "parsed code runs identically"
        scalar.Interp.output res.Vliw_sim.output

let test_pcode_text_errors () =
  List.iter
    (fun src ->
      match Pcode_text.parse src with
      | Ok _ -> Alcotest.failf "expected parse error for %S" src
      | Error _ -> ())
    [
      "region r:\n  (0) alw ? halt\n" (* no entry *);
      "entry r\nregion r:\n  (1) alw ? halt\n" (* index out of sequence *);
      "entry r\nregion r:\n  (0) c0&!c0 ? halt\n" (* contradictory pred *);
      "entry r\nregion r:\n  (0) alw ? r1 = frob 1 2\n" (* bad op *);
      "entry r\nregion r:\n  (0) alw ? nop\n" (* no exit in last bundle *);
    ]

(* ---------- Predicate kernels: mask eval = map eval ---------- *)

(* Random predicates whose condition indices straddle the word boundary
   ([Pred.word_bits] = [Sys.int_size]), so both the single-word mask path
   and the multi-word fallback are exercised. *)
let gen_boundary_pred =
  let interesting =
    [
      0;
      1;
      5;
      30;
      Pred.word_bits - 2;
      Pred.word_bits - 1;
      Pred.word_bits;
      Pred.word_bits + 1;
      Pred.word_bits + 17;
      100;
    ]
  in
  QCheck.Gen.(
    list_size (int_bound 5) (pair (oneofl interesting) bool) >|= fun lits ->
    List.fold_left
      (fun p (c, v) ->
        match Pred.conj p (cond c) v with p' -> p' | exception _ -> p)
      Pred.always lits)

let arb_boundary_pred =
  QCheck.make ~print:(Format.asprintf "%a" Pred.pp) gen_boundary_pred

let gen_cond_states =
  QCheck.Gen.(array_size (return 128) (oneofl [ Some true; Some false; None ]))

let prop_mask_eval_agrees =
  QCheck.Test.make ~name:"compiled mask eval = map eval (incl. multi-word)"
    ~count:2000
    (QCheck.pair arb_boundary_pred (QCheck.make gen_cond_states))
    (fun (p, states) ->
      let ccr = Ccr.create ~width:128 in
      Array.iteri
        (fun i s ->
          match s with Some v -> Ccr.set ccr (cond i) v | None -> ())
        states;
      let cp = Pred.compile p in
      let by_map = Ccr.eval ccr p in
      Ccr.evalc ccr cp = by_map && Pred.eval p (Ccr.lookup ccr) = by_map)

let prop_mask_eval_tracks_resets =
  (* The packed mirror must stay coherent through set/reset/assign, not
     just after a straight-line fill. *)
  QCheck.Test.make ~name:"packed CCR mirror coherent under set/reset/assign"
    ~count:500
    (QCheck.pair arb_boundary_pred (QCheck.make gen_cond_states))
    (fun (p, states) ->
      let ccr = Ccr.create ~width:128 in
      Array.iteri
        (fun i s ->
          match s with Some v -> Ccr.set ccr (cond i) v | None -> ())
        states;
      let snapshot = Ccr.copy ccr in
      Ccr.reset ccr;
      let cp = Pred.compile p in
      let after_reset =
        Ccr.evalc ccr cp = Ccr.eval ccr p
        && (Pred.is_always p || Ccr.evalc ccr cp = Pred.Unspec)
      in
      Ccr.assign ccr ~from:snapshot;
      after_reset && Ccr.evalc ccr cp = Ccr.eval snapshot p)

(* Dirty-condition gating at the register-file level: a tick whose dirty
   mask misses the version's conditions must skip it (still buffered),
   and a later tick with the right bit must commit it. *)
let test_regfile_dirty_gating () =
  let rf = Regfile.create ~nregs:4 () in
  let p = p_true (cond 2) in
  ignore (Regfile.write_spec rf (reg 0) 9 ~cpred:(Pred.compile p) ~fault:None);
  let ccr = ccr_with [ (2, true) ] in
  (* cond 2 is specified, but the tick is told only cond 0 changed: the
     mask kernel must not even look. *)
  ignore (Regfile.tick ~dirty:(1 lsl 0) rf ccr);
  check_bool "still buffered after gated tick" true (Regfile.has_spec rf);
  check_int "skipped once" 1 (Regfile.tick_skipped rf);
  ignore (Regfile.tick ~dirty:(1 lsl 2) rf ccr);
  check_bool "committed once ungated" true (not (Regfile.has_spec rf));
  check_int "committed value" 9 (Regfile.read_seq rf (reg 0));
  check_rf_counters rf

(* A store appended with an already-decided predicate must be examined on
   its first tick even when the dirty mask is empty — entries enter the
   buffer unconditionally, unlike register versions. *)
let test_sb_dirty_gating_fresh_entry () =
  let sb = Store_buffer.create () in
  let mem = Memory.create ~size:64 in
  let ccr = ccr_with [ (0, true) ] in
  Store_buffer.append sb ~addr:3 ~value:33
    ~cpred:(Pred.compile (p_true (cond 0)))
    ~spec:true ~fault:None;
  ignore (Store_buffer.tick ~dirty:0 sb ccr);
  check_int "fresh entry examined despite empty dirty mask" 1
    (Store_buffer.tick_examined sb);
  check_int "committed and drains" 1 (Store_buffer.drain sb ~max:8 mem);
  check_int "value written" 33 (Memory.peek mem 3);
  (* once examined (and still unresolved), gating applies *)
  Store_buffer.append sb ~addr:4 ~value:44
    ~cpred:(Pred.compile (p_true (cond 1)))
    ~spec:true ~fault:None;
  ignore (Store_buffer.tick ~dirty:0 sb ccr);
  ignore (Store_buffer.tick ~dirty:0 sb ccr);
  check_int "second tick skipped" 1 (Store_buffer.tick_skipped sb);
  check_sb_counters sb

(* The gating regression at machine level: the bundle that resolves the
   buffered write's condition also writes an unrelated condition. Both
   kernels must agree cycle-for-cycle and the gated tick must still
   commit. *)
let test_vliw_dirty_gating_same_cycle_conds () =
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 5) ];
            [
              mov ~pred:(p_true (cond 0)) 2 (imm 111);
              mov ~pred:(p_true (cond 1)) 3 (imm 222);
            ];
            (* c0 (relevant to r2) and c1 (relevant to r3) are specified by
               the same bundle; a third, unread condition rides along. *)
            [
              setc 0 Opcode.Lt (r 1) (imm 10);
              setc 1 Opcode.Lt (imm 10) (r 1);
              setc 2 Opcode.Eq (r 1) (imm 5);
            ];
            [ out (r 2); out (r 3) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let run kernel =
    let mem = Memory.create ~size:64 in
    Vliw_sim.run ~model ~pred_kernel:kernel ~regs:[] ~mem pcode
  in
  let mask = run Pred_kernel.Mask and map = run Pred_kernel.Map in
  Alcotest.(check (list int)) "mask output" [ 111; 0 ] mask.Vliw_sim.output;
  Alcotest.(check (list int))
    "map output" map.Vliw_sim.output mask.Vliw_sim.output;
  check_int "identical cycles" map.Vliw_sim.cycles mask.Vliw_sim.cycles;
  check_int "identical commits" map.Vliw_sim.stats.Vliw_sim.commits
    mask.Vliw_sim.stats.Vliw_sim.commits;
  check_int "identical squashes" map.Vliw_sim.stats.Vliw_sim.squashes
    mask.Vliw_sim.stats.Vliw_sim.squashes

(* ---------- Region lowering (Exec_kernel) ---------- *)

(* Cycle-exactness of the lowered structure-of-arrays kernel against the
   tree reference on hand-written edge cases; the broad random coverage
   lives in the differential suite and the fuzzer. *)

let run_both_exec ?(machine = model) pcode =
  let run kernel =
    let mem = Memory.create ~size:256 in
    (Vliw_sim.run ~model:machine ~exec_kernel:kernel ~regs:[] ~mem pcode, mem)
  in
  (run Exec_kernel.Lowered, run Exec_kernel.Tree)

let check_exec_identical name ((low, lmem), (tree, tmem)) =
  check_int (name ^ ": cycles") tree.Vliw_sim.cycles low.Vliw_sim.cycles;
  Alcotest.(check (list int))
    (name ^ ": output") tree.Vliw_sim.output low.Vliw_sim.output;
  check_int (name ^ ": commits") tree.Vliw_sim.stats.Vliw_sim.commits
    low.Vliw_sim.stats.Vliw_sim.commits;
  check_int (name ^ ": squashes") tree.Vliw_sim.stats.Vliw_sim.squashes
    low.Vliw_sim.stats.Vliw_sim.squashes;
  check_int (name ^ ": sb stalls") tree.Vliw_sim.stats.Vliw_sim.sb_stall_cycles
    low.Vliw_sim.stats.Vliw_sim.sb_stall_cycles;
  check_int (name ^ ": conflict stalls")
    tree.Vliw_sim.stats.Vliw_sim.conflict_stall_cycles
    low.Vliw_sim.stats.Vliw_sim.conflict_stall_cycles;
  check_bool (name ^ ": memory") true (Memory.equal tmem lmem)

let test_lowered_shape () =
  let pcode = Pcode.make ~entry:(lbl "main") [ diamond_region ~c0_true:true ] in
  let low = Lowered.compile ~machine:model pcode in
  check_int "one region" 1 (Array.length low.Lowered.regions);
  check_int "entry index" 0 low.Lowered.entry;
  let lr = low.Lowered.regions.(0) in
  check_int "bundle count" 5 lr.Lowered.nbundles;
  (* every pcode slot lands in exactly one flat slot *)
  check_int "ops + exits = slots" (Pcode.num_slots pcode)
    (Lowered.num_ops low + Lowered.num_exits low);
  check_int "exit count" 1 (Lowered.num_exits low);
  (* the CSR bounds are monotone and cover all ops *)
  Array.iteri
    (fun i b ->
      if i > 0 then
        check_bool "op_bounds monotone" true (b >= lr.Lowered.op_bounds.(i - 1)))
    lr.Lowered.op_bounds;
  check_int "op_bounds closed" (Lowered.num_ops low)
    lr.Lowered.op_bounds.(lr.Lowered.nbundles);
  check_int "widest bundle" 2 low.Lowered.max_bundle_ops

let test_lowered_exit_only_region () =
  (* a region that is nothing but its exit bundle, reached through a
     region transition (exercises exit-target index resolution) *)
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [ [ mov 1 (imm 3) ]; [ out (r 1) ];
            [ Pcode.exit_to Pred.always (lbl "tail") ] ];
        region "tail" [ [ Pcode.exit_stop Pred.always ] ];
      ]
  in
  let low = Lowered.compile ~machine:model pcode in
  let tail = low.Lowered.regions.(1) in
  check_int "no ops" 0 tail.Lowered.op_bounds.(tail.Lowered.nbundles);
  check_int "one exit" 1 tail.Lowered.ex_bounds.(tail.Lowered.nbundles);
  check_exec_identical "exit-only" (run_both_exec pcode)

let test_lowered_single_op_region () =
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [ region "main" [ [ out (imm 42) ]; [ Pcode.exit_stop Pred.always ] ] ]
  in
  let low = Lowered.compile ~machine:model pcode in
  check_int "one op" 1 (Lowered.num_ops low);
  check_exec_identical "single-op" (run_both_exec pcode)

let test_lowered_sb_capacity_identity () =
  (* store burst against a tiny store buffer: the lowered kernel's
     stall decision must fire on exactly the same cycles *)
  let burst =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 7) ];
            [ store 1 0 20; store 1 0 21 ];
            [ store 1 0 22; store 1 0 23 ];
            [ store 1 0 24 ];
            [ out (imm 1) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let tiny =
    {
      model with
      Machine_model.sb_capacity = 2;
      Machine_model.store_units = 2;
      Machine_model.dcache_ports = 1;
    }
  in
  let ((low, _), _) as both = run_both_exec ~machine:tiny burst in
  check_exec_identical "sb-capacity" both;
  check_bool "stall path actually exercised" true
    (low.Vliw_sim.stats.Vliw_sim.sb_stall_cycles > 0)

let test_lowered_shadow_conflict_identity () =
  let pcode =
    Pcode.make ~entry:(lbl "main")
      [
        region "main"
          [
            [ mov 1 (imm 5) ];
            [
              setc 0 Opcode.Lt (r 1) (imm 10);
              mov ~pred:(p_true (cond 0)) 2 (imm 111);
              mov ~pred:(Pred.of_list [ (cond 0, false) ]) 2 (imm 222);
            ];
            [ Pcode.op Pred.always Instr.Nop ];
            [ out (r 2) ];
            [ Pcode.exit_stop Pred.always ];
          ];
      ]
  in
  let ((low, _), _) as both = run_both_exec pcode in
  check_exec_identical "shadow-conflict" both;
  check_bool "conflict path actually exercised" true
    (low.Vliw_sim.stats.Vliw_sim.shadow_conflicts >= 1)

let test_lowered_stale_form_rejected () =
  (* the machine must reject a cached lowering that was not built from
     the exact pcode value (the fuzzer's injection hazard) *)
  let make () =
    Pcode.make ~entry:(lbl "main")
      [ region "main" [ [ out (imm 1) ]; [ Pcode.exit_stop Pred.always ] ] ]
  in
  let pcode = make () in
  let other = make () in
  let low = Lowered.compile ~machine:model other in
  (match
     Vliw_sim.run ~model ~exec_kernel:Exec_kernel.Lowered ~lowered:low ~regs:[]
       ~mem:(Memory.create ~size:64) pcode
   with
  | _ -> Alcotest.fail "stale lowered form accepted"
  | exception Invalid_argument _ -> ());
  (* and one built against a different machine model *)
  let wide = { model with Machine_model.issue_width = model.Machine_model.issue_width + 1 } in
  let low_wide = Lowered.compile ~machine:wide pcode in
  match
    Vliw_sim.run ~model ~exec_kernel:Exec_kernel.Lowered ~lowered:low_wide
      ~regs:[] ~mem:(Memory.create ~size:64) pcode
  with
  | _ -> Alcotest.fail "mismatched-machine lowered form accepted"
  | exception Invalid_argument _ -> ()

(* ---------- Hardware cost ---------- *)

let test_hwcost () =
  let r = Hwcost.analyze Hwcost.default in
  check_int "three gate levels" 3 r.Hwcost.eval_gate_levels;
  check_int "region predicate bits = 2K" 8 r.Hwcost.encode_bits_region;
  check_int "trace predicate bits" 3 r.Hwcost.encode_bits_trace;
  check_bool "storage overhead near paper's 76%" true
    (r.Hwcost.storage_overhead > 0.5 && r.Hwcost.storage_overhead < 1.0);
  check_bool "commit overhead near paper's 31%" true
    (r.Hwcost.commit_overhead > 0.15 && r.Hwcost.commit_overhead < 0.5);
  check_bool "total = storage + commit" true
    (abs_float
       (r.Hwcost.total_overhead
       -. (r.Hwcost.storage_overhead +. r.Hwcost.commit_overhead))
    < 1e-9);
  (* Exact pins at the paper's design point: the cost model is pure
     arithmetic on the params, so any drift is a model change that must
     be reflected in EXPERIMENTS.md, not noise. *)
  check_int "base register file" 16384 r.Hwcost.base_transistors;
  check_bool "storage overhead exact" true
    (r.Hwcost.storage_overhead = 0.8125);
  check_bool "commit overhead exact" true
    (r.Hwcost.commit_overhead = 0.296875);
  check_bool "total overhead exact" true
    (r.Hwcost.total_overhead = 1.109375)

let test_hwcost_rob () =
  let r = Hwcost.analyze Hwcost.default in
  (* 32 entries x (32 result + 5 dst + 4 state bits) x 8T flip-flops *)
  check_int "ROB entry storage" 10496 r.Hwcost.rob_entry_transistors;
  (* 32 regs x 5 tag bits x 16T cell + 32 busy flip-flops *)
  check_int "rename map" 2816 r.Hwcost.rob_rename_transistors;
  (* 32 entries x (2 tag comparators + 1 address comparator) *)
  check_int "completion + forwarding CAMs" 13056 r.Hwcost.rob_cam_transistors;
  check_bool "ROB overhead exact" true (r.Hwcost.rob_overhead = 1.609375);
  check_bool "ROB costs more than predication on the same yardstick" true
    (r.Hwcost.rob_overhead > r.Hwcost.total_overhead)

(* ---------- the rival out-of-order backend ---------- *)

module Suite = Psb_workloads.Suite
module Dsl = Psb_workloads.Dsl

let rob_machines =
  [
    ("base", Machine_model.base);
    ("scalar", Machine_model.scalar);
    ("full-issue-8", Machine_model.full_issue ~width:8 ~max_spec_conds:8);
  ]

(* The acceptance property: the ROB backend is architecturally
   byte-identical to the DSL interpreter on the whole suite, under every
   machine model — outcome, output, written registers, final memory and
   the handled-fault count all agree, and the cycle accounting is total
   (the breakdown sums exactly to the cycle count). *)
let test_rob_suite_identical () =
  List.iter
    (fun (mname, model) ->
      List.iter
        (fun (w : Dsl.t) ->
          let tag = w.Dsl.name ^ "/" ^ mname in
          let ref_mem = w.Dsl.make_mem () in
          let s = Interp.run ~regs:w.Dsl.regs ~mem:ref_mem w.Dsl.program in
          let rob_mem = w.Dsl.make_mem () in
          let r =
            Rob_sim.run ~model ~regs:w.Dsl.regs ~mem:rob_mem w.Dsl.program
          in
          check_bool (tag ^ ": outcome") true
            (s.Interp.outcome = r.Rob_sim.outcome);
          check_bool (tag ^ ": output") true (s.Interp.output = r.Rob_sim.output);
          check_bool (tag ^ ": registers") true
            (Reg.Map.equal Int.equal s.Interp.regs r.Rob_sim.regs);
          check_bool (tag ^ ": memory") true (Memory.equal ref_mem rob_mem);
          check_int (tag ^ ": faults handled") s.Interp.faults_handled
            r.Rob_sim.faults_handled;
          check_int
            (tag ^ ": breakdown sums to cycles")
            r.Rob_sim.cycles
            (Rob_sim.breakdown_total r.Rob_sim.breakdown))
        Suite.all)
    rob_machines

(* A wrong-path fatal fault must vanish with the squashed entry: the
   2-bit counters start weakly taken, so the first visit of [head]
   predicts [bad] — whose load dereferences a negative address (fatal) —
   while the actual path is [good]. The branch condition hangs off a
   load-fed add chain, so the wrong-path load completes (fault buffered)
   well before the branch resolves and flushes it. *)
let test_rob_squashed_fatal_fault () =
  let program =
    Asm.parse_exn
      {|
entry entry
entry:
  r1 = 0
  r9 = -64
  jmp head
head:
  r3 = load r1+0
  r4 = add r3 1
  r5 = add r4 1
  r6 = r5 < 0
  br r6 ? bad : good
bad:
  r8 = load r9+0
  jmp good
good:
  out r5
  halt
|}
  in
  let ref_mem = Memory.create ~size:64 in
  let s = Interp.run ~regs:[] ~mem:ref_mem program in
  let mem = Memory.create ~size:64 in
  let r = Rob_sim.run ~model:Machine_model.base ~regs:[] ~mem program in
  check_bool "interp halts" true (s.Interp.outcome = Interp.Halted);
  check_bool "rob halts despite the wrong-path fatal load" true
    (r.Rob_sim.outcome = Interp.Halted);
  check_bool "output" true (r.Rob_sim.output = [ 2 ]);
  check_int "one mispredict" 1 r.Rob_sim.stats.Rob_sim.mispredicts;
  check_bool "the fatal fault was buffered then squashed" true
    (r.Rob_sim.stats.Rob_sim.squashed_faults >= 1);
  check_int "no fault ever raised" 0 r.Rob_sim.faults_handled;
  check_bool "registers match interp" true
    (Reg.Map.equal Int.equal s.Interp.regs r.Rob_sim.regs)

(* The retirement timeline reconciles exactly like the VLIW machine's:
   commit-ordered Region_enter residencies telescope to the cycle total,
   and every committed entry appears as one Rob_commit. *)
let test_rob_spec_profile_reconciles () =
  let w = Suite.find "compress" in
  let events = Psb_obs.Events.create ~capacity:(1 lsl 20) () in
  let r =
    Rob_sim.run ~events ~model:Machine_model.base ~regs:w.Dsl.regs
      ~mem:(w.Dsl.make_mem ()) w.Dsl.program
  in
  let prof =
    Psb_obs.Spec_profile.of_events ~total_cycles:r.Rob_sim.cycles events
  in
  check_bool "profile reconciles" true (Psb_obs.Spec_profile.reconciles prof);
  let commits = ref 0 in
  Psb_obs.Events.iter events (fun _cycle kind _a _b ->
      if kind = Psb_obs.Events.Rob_commit then incr commits);
  check_int "one Rob_commit per retired entry"
    r.Rob_sim.stats.Rob_sim.committed !commits

(* Rob_commit's [a] is the fetch sequence number; in-order retirement
   means it is strictly increasing over the whole run, mispredicts,
   fault restarts and all. *)
let prop_rob_commit_monotone =
  QCheck.Test.make
    ~name:"Rob_commit fetch sequence strictly increases (program order)"
    ~count:60 Gen_programs.arb_program (fun g ->
      let events = Psb_obs.Events.create ~capacity:(1 lsl 18) () in
      let _ =
        Rob_sim.run ~events ~model:Machine_model.base ~regs:Gen_programs.regs
          ~mem:(Gen_programs.make_mem g) g.Gen_programs.program
      in
      let last = ref min_int and ok = ref true in
      Psb_obs.Events.iter events (fun _cycle kind a _b ->
          if kind = Psb_obs.Events.Rob_commit then begin
            if a <= !last then ok := false;
            last := a
          end);
      !ok)

(* Direct generator-driven differential (the fuzzer runs the same check
   as a pipeline stage; this keeps a seed-replayable copy in tier 1). *)
let prop_rob_matches_interp =
  QCheck.Test.make ~name:"rob backend = scalar interpreter (arch state)"
    ~count:60 Gen_programs.arb_program (fun g ->
      let ref_mem = Gen_programs.make_mem g in
      let s =
        Interp.run ~regs:Gen_programs.regs ~mem:ref_mem g.Gen_programs.program
      in
      match s.Interp.outcome with
      | Interp.Out_of_fuel -> true (* cycle fuel is not comparable *)
      | Interp.Halted | Interp.Fatal _ ->
          let rob_mem = Gen_programs.make_mem g in
          let r =
            Rob_sim.run ~model:Machine_model.base ~regs:Gen_programs.regs
              ~mem:rob_mem g.Gen_programs.program
          in
          s.Interp.outcome = r.Rob_sim.outcome
          && s.Interp.output = r.Rob_sim.output
          && Reg.Map.equal Int.equal s.Interp.regs r.Rob_sim.regs
          && Memory.equal ref_mem rob_mem
          && s.Interp.faults_handled = r.Rob_sim.faults_handled
          && Rob_sim.breakdown_total r.Rob_sim.breakdown = r.Rob_sim.cycles)

(* ---------- predecoded scalar form (Scalar_kernel) ---------- *)

(* Decoded/tree cycle-exactness on hand-written edge shapes, on both
   scalar backends (interpreter and ROB); the broad random coverage
   lives in the differential suite and the fuzzer. *)

let run_both_scalar ?fuel ?(mem_of = fun () -> Memory.create ~size:64) program
    =
  let decoded = Decoded.of_program program in
  let run kernel =
    let mem = mem_of () in
    (Interp.run ?fuel ~kernel ~decoded ~regs:[] ~mem program, mem)
  in
  (run Scalar_kernel.Decoded, run Scalar_kernel.Tree)

let check_scalar_identical name ((dec, dmem), (tree, tmem)) =
  check_bool (name ^ ": outcome") true
    (dec.Interp.outcome = tree.Interp.outcome);
  Alcotest.(check (list int))
    (name ^ ": output") tree.Interp.output dec.Interp.output;
  check_int (name ^ ": cycles") tree.Interp.cycles dec.Interp.cycles;
  check_int (name ^ ": dyn instrs") tree.Interp.dyn_instrs
    dec.Interp.dyn_instrs;
  check_bool (name ^ ": trace") true
    (List.equal Label.equal tree.Interp.block_trace dec.Interp.block_trace);
  check_bool (name ^ ": regs") true
    (Reg.Map.equal Int.equal tree.Interp.regs dec.Interp.regs);
  check_int (name ^ ": faults") tree.Interp.faults_handled
    dec.Interp.faults_handled;
  check_bool (name ^ ": memory") true (Memory.equal tmem dmem)

let run_both_rob ?fuel ?(mem_of = fun () -> Memory.create ~size:64) program =
  let decoded = Decoded.of_program program in
  let run kernel =
    let mem = mem_of () in
    ( Rob_sim.run ?fuel ~kernel ~decoded ~model:Machine_model.base ~regs:[]
        ~mem program,
      mem )
  in
  (run Scalar_kernel.Decoded, run Scalar_kernel.Tree)

let check_rob_identical name ((dec, dmem), (tree, tmem)) =
  check_bool (name ^ ": outcome") true
    (dec.Rob_sim.outcome = tree.Rob_sim.outcome);
  Alcotest.(check (list int))
    (name ^ ": output") tree.Rob_sim.output dec.Rob_sim.output;
  check_int (name ^ ": cycles") tree.Rob_sim.cycles dec.Rob_sim.cycles;
  check_bool (name ^ ": stats") true (tree.Rob_sim.stats = dec.Rob_sim.stats);
  check_bool (name ^ ": breakdown") true
    (tree.Rob_sim.breakdown = dec.Rob_sim.breakdown);
  check_bool (name ^ ": regs") true
    (Reg.Map.equal Int.equal tree.Rob_sim.regs dec.Rob_sim.regs);
  check_bool (name ^ ": memory") true (Memory.equal tmem dmem)

let test_decoded_empty_blocks () =
  (* blocks with no operations at all — only terminators — including the
     entry block; op_bounds must still be a valid (degenerate) CSR *)
  let program =
    Program.make ~entry:(lbl "entry")
      [
        Program.block (lbl "entry") [] (Instr.Jmp (lbl "mid"));
        Program.block (lbl "mid") [] (Instr.Jmp (lbl "tail"));
        Program.block (lbl "tail")
          [ Instr.Mov { dst = reg 1; src = imm 7 }; Instr.Out (r 1) ]
          Instr.Halt;
      ]
  in
  let decoded = Decoded.of_program program in
  check_int "entry has no ops" 0
    (Decoded.block_ops decoded (Decoded.block_index decoded (lbl "entry")));
  check_int "two flat ops in total" 2 (Decoded.num_ops decoded);
  check_scalar_identical "empty-blocks" (run_both_scalar program);
  check_rob_identical "empty-blocks/rob" (run_both_rob program)

let test_decoded_fallthrough_only () =
  (* a conditional whose both arms are op-less forwarding blocks that
     reconverge — control flows through without touching the op arrays,
     and the 2-bit predictor in the ROB frontend sees the branch *)
  let program =
    Asm.parse_exn
      {|
entry entry
entry:
  r1 = 0
  jmp head
head:
  r2 = r1 < 3
  br r2 ? stay : leave
stay:
  jmp body
body:
  r1 = add r1 1
  out r1
  jmp head
leave:
  jmp tail
tail:
  halt
|}
  in
  check_scalar_identical "fallthrough-only" (run_both_scalar program);
  check_rob_identical "fallthrough-only/rob" (run_both_rob program)

let test_decoded_fault_on_first_instr () =
  (* instruction 0 of the entry block faults before anything else ran:
     recoverable on demand memory (handled, retried), fatal on a
     negative address *)
  let recoverable =
    Program.make ~entry:(lbl "entry")
      [
        Program.block (lbl "entry")
          [
            Instr.Load { dst = reg 1; base = reg 0; off = 200 };
            Instr.Out (r 1);
          ]
          Instr.Halt;
      ]
  in
  let demand () = Memory.create_demand ~size:512 ~unmapped:(128, 384) in
  let ((dec, _), _) as both =
    run_both_scalar ~mem_of:demand recoverable
  in
  check_scalar_identical "fault-instr0" both;
  check_int "fault was handled" 1 dec.Interp.faults_handled;
  check_rob_identical "fault-instr0/rob"
    (run_both_rob ~mem_of:demand recoverable);
  let fatal =
    Program.make ~entry:(lbl "entry")
      [
        Program.block (lbl "entry")
          [ Instr.Load { dst = reg 1; base = reg 0; off = -4 } ]
          Instr.Halt;
      ]
  in
  let ((dec, _), _) as both = run_both_scalar fatal in
  check_scalar_identical "fatal-instr0" both;
  check_bool "run is fatal" true
    (match dec.Interp.outcome with Interp.Fatal _ -> true | _ -> false);
  check_rob_identical "fatal-instr0/rob" (run_both_rob fatal)

let test_decoded_out_of_fuel_mid_block () =
  (* the fuel runs dry in the middle of a block body: both kernels
     sample the budget at block entry only, so both must overshoot to
     exactly the same boundary, trace included *)
  let body =
    List.init 10 (fun i ->
        Instr.Alu
          { op = Opcode.Add; dst = reg 1; a = r 1; b = imm (i + 1) })
  in
  let program =
    Program.make ~entry:(lbl "entry")
      [ Program.block (lbl "entry") body (Instr.Jmp (lbl "entry")) ]
  in
  let ((dec, _), _) as both = run_both_scalar ~fuel:25 program in
  check_scalar_identical "fuel-mid-block" both;
  check_bool "actually out of fuel" true
    (dec.Interp.outcome = Interp.Out_of_fuel);
  check_bool "budget expired mid-block, stopped at the next boundary" true
    (dec.Interp.dyn_instrs > 25);
  (* the ROB's fuel is cycles, not instructions; parity must hold at
     whatever point the budget expires *)
  let ((dec, _), _) as rob_both = run_both_rob ~fuel:7 program in
  check_rob_identical "fuel-mid-block/rob" rob_both;
  check_bool "rob out of fuel" true
    (dec.Rob_sim.outcome = Interp.Out_of_fuel)

let test_decoded_stale_form_rejected () =
  (* both scalar backends must reject a decoded form that was not built
     from the exact program value (the driver-cache hazard: structural
     equality is not enough) *)
  let make () =
    Program.make ~entry:(lbl "entry")
      [ Program.block (lbl "entry") [ Instr.Out (imm 1) ] Instr.Halt ]
  in
  let program = make () in
  let other = make () in
  let stale = Decoded.of_program other in
  (match
     Interp.run ~kernel:Scalar_kernel.Decoded ~decoded:stale ~regs:[]
       ~mem:(Memory.create ~size:64) program
   with
  | _ -> Alcotest.fail "interp accepted a stale decoded form"
  | exception Invalid_argument _ -> ());
  match
    Rob_sim.run ~kernel:Scalar_kernel.Decoded ~decoded:stale
      ~model:Machine_model.base ~regs:[] ~mem:(Memory.create ~size:64) program
  with
  | _ -> Alcotest.fail "rob accepted a stale decoded form"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "machine"
    [
      ( "ccr",
        [
          Alcotest.test_case "basic" `Quick test_ccr_basic;
          Alcotest.test_case "eval" `Quick test_ccr_eval;
          Alcotest.test_case "assign" `Quick test_ccr_assign;
        ] );
      ( "regfile",
        [
          Alcotest.test_case "commit" `Quick test_regfile_commit;
          Alcotest.test_case "squash" `Quick test_regfile_squash;
          Alcotest.test_case "shadow fallback" `Quick test_regfile_shadow_fallback;
          Alcotest.test_case "conflict" `Quick test_regfile_conflict;
          Alcotest.test_case "infinite mode" `Quick test_regfile_infinite_mode;
          Alcotest.test_case "exception buffering" `Quick
            test_regfile_exception_buffering;
        ] );
      ( "store-buffer",
        [
          Alcotest.test_case "fifo drain" `Quick test_sb_fifo_drain;
          Alcotest.test_case "spec blocks drain" `Quick test_sb_spec_blocks_drain;
          Alcotest.test_case "squash" `Quick test_sb_squash;
          Alcotest.test_case "forwarding" `Quick test_sb_forwarding;
        ] );
      ( "vliw",
        [
          Alcotest.test_case "diamond commit" `Quick test_vliw_diamond_commit;
          Alcotest.test_case "diamond squash" `Quick test_vliw_diamond_squash;
          Alcotest.test_case "spec store commit" `Quick test_vliw_spec_store_commit;
          Alcotest.test_case "spec store squash" `Quick test_vliw_spec_store_squash;
          Alcotest.test_case "recovery (recoverable)" `Quick
            test_vliw_recovery_recoverable;
          Alcotest.test_case "no recovery when mapped" `Quick
            test_vliw_recovery_dependent_reexecuted;
          Alcotest.test_case "fatal committed exception" `Quick
            test_vliw_fatal_committed_exception;
          Alcotest.test_case "squashed fault ignored" `Quick
            test_vliw_squashed_fault_ignored;
          Alcotest.test_case "region transition" `Quick test_vliw_region_transition;
          Alcotest.test_case "shadow source fetch" `Quick
            test_vliw_shadow_source_fetch;
          Alcotest.test_case "out of fuel" `Quick test_vliw_out_of_fuel;
          Alcotest.test_case "conflict stall" `Quick test_vliw_conflict_stall;
          Alcotest.test_case "double recovery" `Quick test_vliw_double_recovery;
          Alcotest.test_case "recovery regenerates store" `Quick
            test_vliw_recovery_regenerates_store;
          Alcotest.test_case "fatal during recovery" `Quick
            test_vliw_fatal_during_recovery;
          Alcotest.test_case "store-buffer capacity" `Quick
            test_vliw_sb_capacity_stall;
        ] );
      ( "bad-code",
        [
          Alcotest.test_case "machine rejects invalid schedules" `Quick
            test_vliw_bad_code_rejected;
        ] );
      ( "widths",
        [ Alcotest.test_case "1/2/8-issue agree" `Quick test_vliw_widths_agree ] );
      ( "pcode-text",
        [
          Alcotest.test_case "round trip" `Quick test_pcode_text_roundtrip;
          Alcotest.test_case "errors" `Quick test_pcode_text_errors;
        ] );
      ( "paper-example",
        [
          Alcotest.test_case "figure 4 / table 1" `Quick test_paper_figure4;
          Alcotest.test_case "figure 5 recovery" `Quick test_paper_figure5;
        ] );
      ( "pred-kernel",
        [
          Qc.to_alcotest prop_mask_eval_agrees;
          Qc.to_alcotest prop_mask_eval_tracks_resets;
          Alcotest.test_case "regfile dirty gating" `Quick
            test_regfile_dirty_gating;
          Alcotest.test_case "store-buffer fresh entry" `Quick
            test_sb_dirty_gating_fresh_entry;
          Alcotest.test_case "same-cycle condition writes" `Quick
            test_vliw_dirty_gating_same_cycle_conds;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "flat shape" `Quick test_lowered_shape;
          Alcotest.test_case "exit-only region" `Quick
            test_lowered_exit_only_region;
          Alcotest.test_case "single-op region" `Quick
            test_lowered_single_op_region;
          Alcotest.test_case "sb-capacity identity" `Quick
            test_lowered_sb_capacity_identity;
          Alcotest.test_case "shadow-conflict identity" `Quick
            test_lowered_shadow_conflict_identity;
          Alcotest.test_case "stale form rejected" `Quick
            test_lowered_stale_form_rejected;
        ] );
      ( "hwcost",
        [
          Alcotest.test_case "paper numbers" `Quick test_hwcost;
          Alcotest.test_case "rival ROB columns" `Quick test_hwcost_rob;
        ] );
      ( "rob",
        [
          Alcotest.test_case "suite byte-identical x machine models" `Quick
            test_rob_suite_identical;
          Alcotest.test_case "squashed fatal fault vanishes" `Quick
            test_rob_squashed_fatal_fault;
          Alcotest.test_case "speculation profile reconciles" `Quick
            test_rob_spec_profile_reconciles;
          Qc.to_alcotest prop_rob_commit_monotone;
          Qc.to_alcotest prop_rob_matches_interp;
        ] );
      ( "decoded",
        [
          Alcotest.test_case "empty blocks" `Quick test_decoded_empty_blocks;
          Alcotest.test_case "fallthrough-only blocks" `Quick
            test_decoded_fallthrough_only;
          Alcotest.test_case "fault on instruction 0" `Quick
            test_decoded_fault_on_first_instr;
          Alcotest.test_case "out of fuel mid-block" `Quick
            test_decoded_out_of_fuel_mid_block;
          Alcotest.test_case "stale form rejected" `Quick
            test_decoded_stale_form_rejected;
        ] );
    ]
