(* Compiler tests: unit (region/trace) formation, dependence-respecting
   schedules, and — most importantly — end-to-end semantic equivalence:
   programs compiled for the predicating machine must produce exactly the
   scalar interpreter's observable behaviour (output, outcome, memory),
   including programs whose speculative loads fault. *)

open Psb_isa
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Cfg = Psb_cfg.Cfg

let reg = Reg.make
let lbl = Label.make
let rr i = Operand.reg (reg i)
let im i = Operand.imm i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mov d s = Instr.Mov { dst = reg d; src = s }
let add d a b = Instr.Alu { op = Opcode.Add; dst = reg d; a; b }
let cmp d op a b = Instr.Cmp { op; dst = reg d; a; b }
let load d b off = Instr.Load { dst = reg d; base = reg b; off }
let store s b off = Instr.Store { src = reg s; base = reg b; off }
let out o = Instr.Out o
let br s t f = Instr.Br { src = reg s; if_true = lbl t; if_false = lbl f }
let jmp l = Instr.Jmp (lbl l)
let block name body term = Program.block (lbl name) body term

(* Diamond inside a loop; sums different constants depending on parity. *)
let diamond_loop =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (im 0); mov 2 (im 0); mov 9 (im 6) ] (jmp "head");
      block "head"
        [ cmp 4 Opcode.Lt (rr 1) (im 3) ]
        (br 4 "then" "else");
      block "then" [ add 2 (rr 2) (im 10) ] (jmp "join");
      block "else" [ add 2 (rr 2) (im 100) ] (jmp "join");
      block "join"
        [ add 1 (rr 1) (im 1); cmp 5 Opcode.Lt (rr 1) (rr 9) ]
        (br 5 "head" "exit");
      block "exit" [ out (rr 2) ] Instr.Halt;
    ]

(* NULL-terminated linked-list sum: the §2.1 motivating pattern. The
   speculative next-pointer dereference faults on the last iteration and
   must squash silently. List nodes: [addr] = value, [addr+1] = next
   (0 terminates; node addresses start at 8 so 0 is "NULL" but address 0
   itself is made invalid by placing nodes high and using offset -8). *)
let list_sum =
  Program.make ~entry:(lbl "entry")
    [
      (* r1 = head pointer, r2 = sum *)
      block "entry" [ mov 2 (im 0) ] (jmp "head");
      block "head"
        [ cmp 4 Opcode.Ne (rr 1) (im 0) ]
        (br 4 "body" "done");
      block "body"
        [
          load 3 1 0 (* value *);
          add 2 (rr 2) (rr 3);
          load 1 1 1 (* next; speculating this dereferences NULL-ish *);
        ]
        (jmp "head");
      block "done" [ out (rr 2) ] Instr.Halt;
    ]

let list_mem ~nodes =
  (* place nodes at 8, 16, 24, ...; NULL = 0 would read mem[0]/mem[1],
     which are valid addresses — to make NULL deref actually fault we put
     the list high and leave address 0..7 unmapped demand pages? Fatal is
     too strong; use values such that next=0 and mem[0..1] are readable
     zeros: the speculative deref then reads garbage 0 and squashes. To
     exercise a *fault*, a variant uses negative NULL. *)
  let mem = Memory.create ~size:1024 in
  for i = 0 to nodes - 1 do
    let addr = 8 + (8 * i) in
    Memory.poke mem addr (i + 1);
    Memory.poke mem (addr + 1) (if i = nodes - 1 then 0 else addr + 8)
  done;
  mem

(* Variant where NULL is represented by -1: the speculative dereference of
   the last next-pointer faults (out of bounds) and must be squashed. *)
let list_sum_nullfault =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 2 (im 0) ] (jmp "head");
      block "head"
        [ cmp 4 Opcode.Ge (rr 1) (im 0) ]
        (br 4 "body" "done");
      block "body"
        [ load 3 1 0; add 2 (rr 2) (rr 3); load 1 1 1 ]
        (jmp "head");
      block "done" [ out (rr 2) ] Instr.Halt;
    ]

let list_mem_nullfault ~nodes =
  let mem = Memory.create ~size:1024 in
  for i = 0 to nodes - 1 do
    let addr = 8 + (8 * i) in
    Memory.poke mem addr (i + 1);
    Memory.poke mem (addr + 1) (if i = nodes - 1 then -1 else addr + 8)
  done;
  mem

(* Demand paging: a loop that touches successive pages; speculative loads
   fault on unmapped pages and commit → exercises recovery in compiled
   code. *)
let pager =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (im 0); mov 2 (im 0); mov 9 (im 6) ] (jmp "head");
      block "head"
        [ cmp 4 Opcode.Lt (rr 1) (rr 9) ]
        (br 4 "body" "done");
      block "body"
        [
          Instr.Alu { op = Opcode.Mul; dst = reg 5; a = rr 1; b = im 70 };
          add 5 (rr 5) (im 256);
          load 3 5 0;
          add 2 (rr 2) (rr 3);
          add 1 (rr 1) (im 1);
        ]
        (jmp "head");
      block "done" [ out (rr 2) ] Instr.Halt;
    ]

let pager_mem () = Memory.create_demand ~size:2048 ~unmapped:(256, 1024)

(* Store-heavy diamond: speculative stores on both arms. *)
let store_diamond =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (im 0); mov 9 (im 8) ] (jmp "head");
      block "head"
        [
          Instr.Alu { op = Opcode.And; dst = reg 4; a = rr 1; b = im 1 };
        ]
        (br 4 "odd" "even");
      block "odd" [ store 1 1 100 ] (jmp "join");
      block "even" [ store 1 1 200 ] (jmp "join");
      block "join"
        [ add 1 (rr 1) (im 1); cmp 5 Opcode.Lt (rr 1) (rr 9) ]
        (br 5 "head" "exit");
      block "exit" [ out (rr 1) ] Instr.Halt;
    ]

(* ---------- helpers ---------- *)

let machine = Machine_model.base

let compile_with model ?(machine = machine) program ~regs ~mem_fn =
  let _, profile = Driver.profile_of program ~regs ~mem:(mem_fn ()) in
  Driver.compile ~model ~machine ~profile program

let check_equivalent ?(name = "") model program ~regs ~mem_fn =
  let compiled = compile_with model program ~regs ~mem_fn in
  let mem_scalar = mem_fn () in
  let scalar = Interp.run ~regs ~mem:mem_scalar program in
  let mem_vliw = mem_fn () in
  let vliw = Driver.run_vliw compiled ~regs ~mem:mem_vliw in
  let ctx = name ^ ":" ^ model.Model.name in
  Alcotest.(check (list int)) (ctx ^ " output") scalar.Interp.output vliw.Vliw_sim.output;
  check_bool (ctx ^ " outcome matches") true
    (match (scalar.Interp.outcome, vliw.Vliw_sim.outcome) with
    | Interp.Halted, Interp.Halted -> true
    | Interp.Fatal f1, Interp.Fatal f2 -> Fault.equal f1 f2
    | _ -> false);
  check_bool (ctx ^ " memory equal") true (Memory.equal mem_scalar mem_vliw);
  (compiled, scalar, vliw)

let exec_models = [ Model.region_pred; Model.trace_pred; Model.region_sched ]

(* ---------- unit formation ---------- *)

let test_region_formation () =
  let regs = [] in
  let mem_fn () = Memory.create ~size:64 in
  let _, profile = Driver.profile_of diamond_loop ~regs ~mem:(mem_fn ()) in
  let cfg = Cfg.of_program diamond_loop in
  let params = Runit.default_params ~scope:Model.Region ~max_conds:4 () in
  let avoid = Label.Set.of_list [ lbl "entry"; lbl "head" ] in
  let u = Runit.build params cfg profile ~header:(lbl "head") ~avoid in
  (* head, then, else, join, exit — join's two path predicates merge
     (c0 | !c0 → alw, the equivalent-block rule). *)
  check_int "five copies" 5 (Array.length u.Runit.copies);
  check_int "two conditions" 2 u.Runit.nconds;
  let join_copy =
    Array.to_list u.Runit.copies
    |> List.find (fun c -> Label.equal c.Runit.label (lbl "join"))
  in
  check_bool "join predicate merged to alw" true
    (Pred.is_always join_copy.Runit.pred);
  (* exits: the loop back edge (head is a seed) and the program halt. *)
  check_int "two exits" 2 (Array.length u.Runit.exits);
  Alcotest.(check (list string)) "exit targets" [ "head" ]
    (List.map Label.name (Runit.exit_targets u));
  check_bool "halt exit present" true
    (Array.exists (fun (x : Runit.uexit) -> x.Runit.target = None) u.Runit.exits)

let test_trace_formation () =
  let regs = [] in
  let mem_fn () = Memory.create ~size:64 in
  let _, profile = Driver.profile_of diamond_loop ~regs ~mem:(mem_fn ()) in
  let cfg = Cfg.of_program diamond_loop in
  let params = Runit.default_params ~scope:Model.Trace ~max_conds:4 () in
  let avoid = Label.Set.of_list [ lbl "entry"; lbl "head" ] in
  let u = Runit.build params cfg profile ~header:(lbl "head") ~avoid in
  (* The likely path: head → then → join (then taken 3 of 6 iterations —
     at 50/50 the tie goes to if_true). Single copy per block. *)
  check_bool "at most one copy per label" true
    (let labels = Array.to_list u.Runit.copies |> List.map (fun c -> c.Runit.label) in
     List.length labels = List.length (List.sort_uniq Label.compare labels));
  (* off-trace targets become exits *)
  check_bool "else is an exit target" true
    (List.exists (Label.equal (lbl "else")) (Runit.exit_targets u))

let test_units_cover_program () =
  List.iter
    (fun (model : Model.t) ->
      let compiled =
        compile_with model diamond_loop ~regs:[]
          ~mem_fn:(fun () -> Memory.create ~size:64)
      in
      check_bool
        (model.Model.name ^ " has unit for entry")
        true
        (Label.Map.mem (lbl "entry") compiled.Driver.units))
    Model.all

(* ---------- schedule validity ---------- *)

let test_schedules_valid_all_models () =
  List.iter
    (fun (model : Model.t) ->
      let compiled =
        compile_with model diamond_loop ~regs:[]
          ~mem_fn:(fun () -> Memory.create ~size:64)
      in
      (* Driver.compile runs Sched.check internally; also sanity: every
         schedule is nonempty and ends with an exit. *)
      Label.Map.iter
        (fun _ (s : Sched.t) ->
          check_bool (model.Model.name ^ " schedule has length") true
            (s.Sched.length >= 1))
        compiled.Driver.schedules)
    Model.all

(* ---------- end-to-end equivalence ---------- *)

let test_equiv_diamond () =
  List.iter
    (fun m ->
      ignore
        (check_equivalent ~name:"diamond" m diamond_loop ~regs:[]
           ~mem_fn:(fun () -> Memory.create ~size:64)))
    exec_models

let test_equiv_list_sum () =
  List.iter
    (fun m ->
      ignore
        (check_equivalent ~name:"list" m list_sum
           ~regs:[ (reg 1, 8) ]
           ~mem_fn:(fun () -> list_mem ~nodes:10)))
    exec_models

let test_equiv_list_nullfault () =
  (* The speculative next-dereference faults out-of-bounds on the last
     iteration; its predicate turns false and the fault must vanish. *)
  List.iter
    (fun m ->
      let _, scalar, vliw =
        check_equivalent ~name:"list-null" m list_sum_nullfault
          ~regs:[ (reg 1, 8) ]
          ~mem_fn:(fun () -> list_mem_nullfault ~nodes:10)
      in
      check_bool "scalar halted" true (scalar.Interp.outcome = Interp.Halted);
      Alcotest.(check (list int)) "sum" [ 55 ] vliw.Vliw_sim.output)
    exec_models

let test_equiv_pager () =
  List.iter
    (fun m ->
      let _, scalar, vliw =
        check_equivalent ~name:"pager" m pager ~regs:[] ~mem_fn:pager_mem
      in
      check_bool "faults were handled" true (scalar.Interp.faults_handled > 0);
      check_int "same number of faults handled" scalar.Interp.faults_handled
        vliw.Vliw_sim.faults_handled)
    exec_models

let test_equiv_store_diamond () =
  List.iter
    (fun m ->
      ignore
        (check_equivalent ~name:"stores" m store_diamond ~regs:[]
           ~mem_fn:(fun () -> Memory.create ~size:512)))
    exec_models

let test_infinite_shadow_equiv () =
  (* The infinite-shadow ablation must not change semantics. *)
  let compiled =
    let _, profile =
      Driver.profile_of diamond_loop ~regs:[] ~mem:(Memory.create ~size:64)
    in
    Driver.compile ~single_shadow:false ~model:Model.region_pred ~machine
      ~profile diamond_loop
  in
  let mem = Memory.create ~size:64 in
  let vliw =
    Driver.run_vliw ~regfile_mode:Psb_machine.Regfile.Infinite compiled
      ~regs:[] ~mem
  in
  Alcotest.(check (list int)) "output" [ 330 ] vliw.Vliw_sim.output

(* ---------- cycle accounting ---------- *)

let test_speedup_sane () =
  (* The predicated machine should never be slower than scalar on the
     diamond loop, and the estimate should be within a reasonable band of
     the measured cycles. *)
  let regs = [] in
  let mem_fn () = Memory.create ~size:64 in
  let scalar = Interp.run ~regs ~mem:(mem_fn ()) diamond_loop in
  let compiled = compile_with Model.region_pred diamond_loop ~regs ~mem_fn in
  let vliw = Driver.run_vliw compiled ~regs ~mem:(mem_fn ()) in
  check_bool "VLIW no slower than scalar" true
    (vliw.Vliw_sim.cycles <= scalar.Interp.cycles);
  let est =
    Driver.estimate_cycles compiled diamond_loop
      ~block_trace:scalar.Interp.block_trace
  in
  let ratio = float_of_int est /. float_of_int vliw.Vliw_sim.cycles in
  check_bool
    (Format.asprintf "estimate within band (est %d, measured %d)" est
       vliw.Vliw_sim.cycles)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_model_ordering_diamond () =
  (* On a branch-unpredictable diamond, region predicating should beat the
     global model. *)
  let regs = [] in
  let mem_fn () = Memory.create ~size:64 in
  let scalar = Interp.run ~regs ~mem:(mem_fn ()) diamond_loop in
  let est model =
    let c = compile_with model diamond_loop ~regs ~mem_fn in
    Driver.estimate_cycles c diamond_loop ~block_trace:scalar.Interp.block_trace
  in
  let global = est Model.global and rp = est Model.region_pred in
  check_bool
    (Format.asprintf "region-pred (%d) <= global (%d)" rp global)
    true (rp <= global)

(* ---------- model lookup (the CLI's -m conv) ---------- *)

let test_model_find () =
  (match Model.find "region-pred" with
  | Ok m -> Alcotest.(check string) "hyphen name" "region-pred" m.Model.name
  | Error e -> Alcotest.failf "region-pred: %s" e);
  (match Model.find "region_pred" with
  | Ok m ->
      Alcotest.(check string) "underscores normalise" "region-pred"
        m.Model.name
  | Error e -> Alcotest.failf "region_pred: %s" e);
  match Model.find "trace-pred-counter" with
  | Ok m ->
      Alcotest.(check string) "counter variant findable" "trace-pred-counter"
        m.Model.name
  | Error e -> Alcotest.failf "trace-pred-counter: %s" e

let test_model_find_unknown_lists_all () =
  match Model.find "nonsense" with
  | Ok _ -> Alcotest.fail "nonsense resolved to a model"
  | Error msg ->
      (* The CLI surfaces this string verbatim, so it must name every
         valid model. *)
      List.iter
        (fun (m : Model.t) ->
          Alcotest.(check bool)
            (m.Model.name ^ " listed") true
            (let rec contains i =
               i + String.length m.Model.name <= String.length msg
               && (String.sub msg i (String.length m.Model.name) = m.Model.name
                  || contains (i + 1))
             in
             contains 0))
        (Model.trace_pred_counter :: Model.all)

let () =
  Alcotest.run "compiler"
    [
      ( "units",
        [
          Alcotest.test_case "region formation" `Quick test_region_formation;
          Alcotest.test_case "trace formation" `Quick test_trace_formation;
          Alcotest.test_case "program coverage" `Quick test_units_cover_program;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "all models valid" `Quick
            test_schedules_valid_all_models;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "diamond loop" `Quick test_equiv_diamond;
          Alcotest.test_case "linked list" `Quick test_equiv_list_sum;
          Alcotest.test_case "list w/ faulting NULL" `Quick
            test_equiv_list_nullfault;
          Alcotest.test_case "demand paging recovery" `Quick test_equiv_pager;
          Alcotest.test_case "speculative stores" `Quick test_equiv_store_diamond;
          Alcotest.test_case "infinite shadow" `Quick test_infinite_shadow_equiv;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "speedup sanity" `Quick test_speedup_sane;
          Alcotest.test_case "model ordering" `Quick test_model_ordering_diamond;
        ] );
      ( "model-lookup",
        [
          Alcotest.test_case "by name" `Quick test_model_find;
          Alcotest.test_case "unknown lists every model" `Quick
            test_model_find_unknown_lists_all;
        ] );
    ]
