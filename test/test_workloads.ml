(* Workload tests: every kernel terminates, produces deterministic output,
   exhibits its intended branch-predictability regime (Table 3 shape), and
   compiles correctly: all executable models must reproduce the scalar
   semantics exactly on the full suite. *)

open Psb_isa
open Psb_workloads
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim

let check_bool = Alcotest.(check bool)

let scalar_results =
  lazy
    (List.map
       (fun (w : Dsl.t) ->
         (w, Interp.run ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program))
       Suite.all)

let test_all_halt () =
  List.iter
    (fun ((w : Dsl.t), (res : Interp.result)) ->
      check_bool (w.Dsl.name ^ " halts") true (res.Interp.outcome = Interp.Halted);
      check_bool (w.Dsl.name ^ " does work") true (res.Interp.cycles > 5_000);
      check_bool (w.Dsl.name ^ " not huge") true (res.Interp.cycles < 5_000_000);
      check_bool (w.Dsl.name ^ " outputs") true (res.Interp.output <> []))
    (Lazy.force scalar_results)

let test_deterministic () =
  List.iter
    (fun ((w : Dsl.t), (res : Interp.result)) ->
      let again = Interp.run ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program in
      check_bool (w.Dsl.name ^ " deterministic") true
        (Interp.equivalent res again))
    (Lazy.force scalar_results)

let test_predictability_regimes () =
  let acc name n =
    let w = Suite.find name in
    let _, res =
      List.find (fun ((x : Dsl.t), _) -> x.Dsl.name = name) (Lazy.force scalar_results)
    in
    Trace.successive_accuracy (Trace.of_result w.Dsl.program res) n
  in
  (* grep and nroff are the predictable programs (paper: .97/.98 at depth 1,
     .83/.86 at depth 8); the others decay much faster. *)
  check_bool "grep predictable" true (acc "grep" 1 > 0.90);
  check_bool "nroff predictable" true (acc "nroff" 1 > 0.85);
  check_bool "grep deep windows survive" true (acc "grep" 8 > 0.6);
  check_bool "compress decays" true (acc "compress" 8 < 0.6);
  check_bool "eqntott decays" true (acc "eqntott" 8 < 0.7);
  check_bool "li decays" true (acc "li" 8 < 0.7);
  check_bool "compress starts high" true (acc "compress" 1 > 0.6)

let test_table3_monotone () =
  List.iter
    (fun ((w : Dsl.t), res) ->
      let t = Trace.of_result w.Dsl.program res in
      let prev = ref 1.1 in
      for n = 1 to 8 do
        let a = Trace.successive_accuracy t n in
        check_bool
          (Format.asprintf "%s acc(%d)=%.2f non-increasing" w.Dsl.name n a)
          true
          (a <= !prev +. 1e-9);
        prev := a
      done)
    (Lazy.force scalar_results)

(* The heavyweight test: semantic equivalence of compiled code on the
   whole suite, for every executable model. *)
let test_compiled_equivalence model () =
  List.iter
    (fun ((w : Dsl.t), (scalar : Interp.result)) ->
      let _, profile =
        Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
      in
      let compiled =
        Driver.compile ~model ~machine:Machine_model.base ~profile w.Dsl.program
      in
      let mem_scalar = w.Dsl.make_mem () in
      let scalar2 =
        Interp.run ~regs:w.Dsl.regs ~mem:mem_scalar w.Dsl.program
      in
      assert (Interp.equivalent scalar scalar2);
      let mem_vliw = w.Dsl.make_mem () in
      let vliw = Driver.run_vliw compiled ~regs:w.Dsl.regs ~mem:mem_vliw in
      let ctx = w.Dsl.name ^ ":" ^ model.Model.name in
      Alcotest.(check (list int))
        (ctx ^ " output") scalar.Interp.output vliw.Vliw_sim.output;
      check_bool (ctx ^ " halted") true (vliw.Vliw_sim.outcome = Interp.Halted);
      check_bool (ctx ^ " memory") true (Memory.equal mem_scalar mem_vliw);
      check_bool (ctx ^ " faster than scalar") true
        (vliw.Vliw_sim.cycles <= scalar.Interp.cycles))
    (Lazy.force scalar_results)

let test_estimates_all_models () =
  (* Every model's trace-driven estimate replays without error and lands in
     a sane band (faster than 1.2x scalar, slower than 20x). *)
  List.iter
    (fun ((w : Dsl.t), (scalar : Interp.result)) ->
      let _, profile =
        Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
      in
      List.iter
        (fun model ->
          let compiled =
            Driver.compile ~model ~machine:Machine_model.base ~profile
              w.Dsl.program
          in
          let est =
            Driver.estimate_cycles compiled w.Dsl.program
              ~block_trace:scalar.Interp.block_trace
          in
          let ctx = w.Dsl.name ^ ":" ^ model.Model.name in
          check_bool
            (Format.asprintf "%s estimate sane (%d vs scalar %d)" ctx est
               scalar.Interp.cycles)
            true
            (est * 10 > scalar.Interp.cycles && est < scalar.Interp.cycles * 2))
        Model.all)
    (Lazy.force scalar_results)

let test_synth_generator () =
  let p = { Synth.default with iterations = 100; depth = 2 } in
  let w = Synth.generate p in
  let res = Interp.run ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program in
  check_bool "synth halts" true (res.Interp.outcome = Interp.Halted);
  (* predictable vs unpredictable synthetic: accuracy tracks taken_prob *)
  let acc prob =
    let w = Synth.generate { p with taken_prob = prob; iterations = 400 } in
    let res = Interp.run ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program in
    Trace.prediction_accuracy (Trace.of_result w.Dsl.program res)
  in
  check_bool "p=0.95 predictable" true (acc 0.95 > 0.9);
  check_bool "p=0.5 unpredictable" true (acc 0.5 < 0.75)

(* ----- Synth.generate over its whole parameter space: every sweep
   point must halt under the interpreter and round-trip through the
   assembler (the sweep experiments and the docs both rely on it) ----- *)

let arb_synth_params =
  let gen st =
    {
      Synth.iterations = 1 + QCheck.Gen.int_bound 199 st;
      depth = 1 + QCheck.Gen.int_bound 5 st;
      taken_prob = QCheck.Gen.float_bound_inclusive 1.0 st;
      work_per_arm = 1 + QCheck.Gen.int_bound 4 st;
      seed = QCheck.Gen.int_bound 10_000 st;
    }
  in
  let print (p : Synth.params) =
    Printf.sprintf "{iterations=%d; depth=%d; taken_prob=%.3f; work_per_arm=%d; seed=%d}"
      p.Synth.iterations p.Synth.depth p.Synth.taken_prob p.Synth.work_per_arm
      p.Synth.seed
  in
  QCheck.make ~print gen

let prop_synth_halts_and_roundtrips =
  QCheck.Test.make ~name:"Synth.generate halts + asm round-trips" ~count:100
    arb_synth_params (fun p ->
      let w = Synth.generate p in
      let res =
        Interp.run ~fuel:2_000_000 ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
          w.Dsl.program
      in
      if res.Interp.outcome <> Interp.Halted then
        QCheck.Test.fail_reportf "%s: %a" (Synth.name_of p) Interp.pp_outcome
          res.Interp.outcome;
      let text = Asm.print w.Dsl.program in
      match Asm.parse text with
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m
      | Ok prog -> Asm.print prog = text)

let () =
  Alcotest.run "workloads"
    [
      ( "scalar",
        [
          Alcotest.test_case "all halt" `Quick test_all_halt;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "predictability regimes" `Quick
            test_predictability_regimes;
          Alcotest.test_case "table3 monotone" `Quick test_table3_monotone;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "region-pred equivalence" `Slow
            (test_compiled_equivalence Model.region_pred);
          Alcotest.test_case "trace-pred equivalence" `Slow
            (test_compiled_equivalence Model.trace_pred);
          Alcotest.test_case "region-sched equivalence" `Slow
            (test_compiled_equivalence Model.region_sched);
          Alcotest.test_case "estimates all models" `Slow
            test_estimates_all_models;
        ] );
      ( "synth",
        Alcotest.test_case "generator" `Quick test_synth_generator
        :: List.map Qc.to_alcotest [ prop_synth_halts_and_roundtrips ] );
    ]
