(* Tests of the observability layer: JSON printer/parser round-trips,
   the metrics registry, the Chrome trace-event sink (golden schema
   test), the cycle-accounting breakdown, and ordering invariants of the
   machine's event stream. *)

open Psb_isa
open Psb_compiler
open Psb_workloads
module Json = Psb_obs.Json
module Metrics = Psb_obs.Metrics
module Events = Psb_obs.Events
module Spec_profile = Psb_obs.Spec_profile
module Trace_event = Psb_obs.Trace_event
module Vliw_sim = Psb_machine.Vliw_sim
module Vliw_trace = Psb_machine.Vliw_trace
module Machine_model = Psb_machine.Machine_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let executable_models =
  List.filter (fun (m : Model.t) -> m.Model.executable) Model.all

let workloads = Suite.all @ Suite.extras

(* Compile [w] under [model] and run it with the given instrumentation. *)
let run_workload ?on_event ?events ?metrics (w : Dsl.t) (model : Model.t) =
  let _, profile =
    Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
  in
  let compiled =
    Driver.compile ~model ~machine:Machine_model.base ~profile w.Dsl.program
  in
  Driver.run_vliw ?on_event ?events ?metrics compiled ~regs:w.Dsl.regs
    ~mem:(w.Dsl.make_mem ())

(* ---------- JSON ---------- *)

let sample =
  Json.Obj
    [
      ("int", Json.Int 42);
      ("neg", Json.Int (-7));
      ("float", Json.Float 1.5);
      ("string", Json.String "quote \" slash \\ newline \n tab \t");
      ("true", Json.Bool true);
      ("null", Json.Null);
      ( "list",
        Json.List [ Json.Int 1; Json.String "two"; Json.List []; Json.Obj [] ]
      );
      ("nested", Json.Obj [ ("k", Json.Float 0.125) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun minify ->
      let s = Json.to_string ~minify sample in
      match Json.parse s with
      | Ok v -> check_bool "round-trip" true (Json.equal v sample)
      | Error e -> Alcotest.failf "parse (minify=%b): %s" minify e)
    [ true; false ]

let test_json_parse_basics () =
  let ok s v =
    match Json.parse s with
    | Ok v' -> check_bool s true (Json.equal v v')
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "[1,2.0,-3]" (Json.List [ Json.Int 1; Json.Float 2.0; Json.Int (-3) ]);
  ok "{\"a\":[],\"b\":{}}" (Json.Obj [ ("a", Json.List []); ("b", Json.Obj []) ]);
  ok "\"\\u0041\\u00e9\"" (Json.String "A\xc3\xa9");
  ok "  true " (Json.Bool true);
  ok "1e2" (Json.Float 100.)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2"; "[1] x" ]

let test_json_obj_drops_null () =
  let v = Json.obj [ ("keep", Json.Int 1); ("drop", Json.Null) ] in
  check_bool "null dropped" true (Json.equal v (Json.Obj [ ("keep", Json.Int 1) ]))

let test_json_accessors () =
  check_int "member" 42
    (Option.get (Option.bind (Json.member "int" sample) Json.to_int));
  check_bool "missing" true (Json.member "nope" sample = None);
  check_int "list len" 4 (List.length (Json.to_list (Option.get (Json.member "list" sample))));
  check_bool "int widens" true (Json.to_float (Json.Int 3) = Some 3.)

(* ---------- metrics ---------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests" ~labels:[ ("kind", "a") ] in
  Metrics.inc c;
  Metrics.inc c ~by:4;
  (* find-or-create: same name+labels is the same counter *)
  Metrics.inc (Metrics.counter m "requests" ~labels:[ ("kind", "a") ]);
  check_int "counter" 6 (Metrics.counter_value c);
  let other = Metrics.counter m "requests" ~labels:[ ("kind", "b") ] in
  check_int "distinct labels" 0 (Metrics.counter_value other)

let test_metrics_histograms () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "occ" ~buckets:[ 1.; 2.; 4. ] in
  List.iter (Metrics.observe h) [ 0.; 1.; 3.; 100. ];
  check_int "count" 4 (Metrics.histogram_count h);
  check_bool "sum" true (Metrics.histogram_sum h = 104.);
  check_bool "mean" true (Metrics.histogram_mean h = 26.)

let test_metrics_json_deterministic () =
  let build () =
    let m = Metrics.create () in
    Metrics.inc (Metrics.counter m "b");
    Metrics.inc (Metrics.counter m "a" ~labels:[ ("x", "1") ]) ~by:2;
    Metrics.observe (Metrics.histogram m "h") 3.;
    m
  in
  let s1 = Json.to_string (Metrics.to_json (build ())) in
  let s2 = Json.to_string (Metrics.to_json (build ())) in
  check_bool "deterministic dump" true (s1 = s2);
  match Json.parse s1 with
  | Error e -> Alcotest.failf "metrics json: %s" e
  | Ok v ->
      check_int "counters" 2
        (List.length (Json.to_list (Option.get (Json.member "counters" v))));
      check_int "histograms" 1
        (List.length (Json.to_list (Option.get (Json.member "histograms" v))))

(* ---------- golden trace schema ---------- *)

(* Round-trip a real machine trace through the parser and check the
   Chrome trace-event schema: every event carries name/ph/ts/pid/tid,
   spans carry dur, and the metadata block records the run. *)
let test_trace_golden () =
  let model = Model.region_pred in
  let w = Suite.find "fib" in
  let sink = Vliw_trace.create ~model:Machine_model.base () in
  let res = run_workload ~on_event:(Vliw_trace.on_event sink) w model in
  let doc = Vliw_trace.to_json ~result:res sink in
  let s = Json.to_string doc in
  match Json.parse s with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok v ->
      check_bool "round-trip" true (Json.equal v doc);
      let events = Json.to_list (Option.get (Json.member "traceEvents" v)) in
      check_bool "has events" true (List.length events > 100);
      List.iter
        (fun e ->
          let field n = Option.get (Json.member n e) in
          check_bool "name" true (Json.to_str (field "name") <> None);
          let ph = Option.get (Json.to_str (field "ph")) in
          check_bool "ph" true (List.mem ph [ "M"; "X"; "i"; "C" ]);
          check_bool "pid" true (Json.to_int (field "pid") = Some 1);
          check_bool "tid" true (Json.to_int (field "tid") <> None);
          if ph <> "M" then
            check_bool "ts" true (Option.get (Json.to_int (field "ts")) >= 0);
          if ph = "X" then
            check_bool "dur" true (Option.get (Json.to_int (field "dur")) >= 1))
        events;
      let meta = Option.get (Json.member "metadata" v) in
      check_int "cycles metadata" res.Vliw_sim.cycles
        (Option.get (Json.to_int (Option.get (Json.member "cycles" meta))));
      let bd = Option.get (Json.member "cycle_breakdown" meta) in
      let total =
        List.fold_left
          (fun acc (name, _) ->
            acc
            + Option.get (Json.to_int (Option.get (Json.member name bd))))
          0
          (Vliw_sim.breakdown_fields res.Vliw_sim.breakdown)
      in
      check_int "breakdown metadata sums to cycles" res.Vliw_sim.cycles total

(* ---------- cycle accounting ---------- *)

(* The tentpole invariant: every simulated cycle lands in exactly one
   category, for every workload under every executable model. *)
let test_accounting_sums () =
  List.iter
    (fun (w : Dsl.t) ->
      List.iter
        (fun (model : Model.t) ->
          let res = run_workload w model in
          let bd = res.Vliw_sim.breakdown in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s breakdown sums to cycles" w.Dsl.name
               model.Model.name)
            res.Vliw_sim.cycles
            (Vliw_sim.breakdown_total bd);
          List.iter
            (fun (cat, v) ->
              check_bool
                (Printf.sprintf "%s/%s %s >= 0" w.Dsl.name model.Model.name cat)
                true (v >= 0))
            (Vliw_sim.breakdown_fields bd))
        executable_models)
    workloads

let test_accounting_recovery_cycles () =
  (* Workloads with no recoveries must charge nothing to recovery. *)
  List.iter
    (fun (w : Dsl.t) ->
      let res = run_workload w Model.region_pred in
      if res.Vliw_sim.stats.Vliw_sim.recoveries = 0 then
        check_int
          (w.Dsl.name ^ " no recovery cycles")
          0 res.Vliw_sim.breakdown.Vliw_sim.bd_recovery)
    workloads

(* ---------- event-stream invariants ---------- *)

let collect_events (w : Dsl.t) model =
  let events = ref [] in
  let on_event c e = events := (c, e) :: !events in
  let res = run_workload ~on_event w model in
  (res, List.rev !events)

(* A region exit closes the region: invalidation happens at the exit, so
   no buffered-state resolution (commit or squash) may appear in the
   stream until the next bundle issues in the new region. *)
let test_no_resolution_after_exit () =
  List.iter
    (fun (w : Dsl.t) ->
      List.iter
        (fun (model : Model.t) ->
          let _, events = collect_events w model in
          let after_exit = ref false in
          List.iter
            (fun (cycle, e) ->
              match e with
              | Vliw_sim.Region_exit _ -> after_exit := true
              | Vliw_sim.Bundle_issue _ -> after_exit := false
              | Vliw_sim.Reg_commit _ | Vliw_sim.Reg_squash _
              | Vliw_sim.Store_commit _ | Vliw_sim.Store_squash _ ->
                  if !after_exit then
                    Alcotest.failf
                      "%s/%s: state resolution at cycle %d between a region \
                       exit and the next bundle"
                      w.Dsl.name model.Model.name cycle
              | _ -> ())
            events)
        executable_models)
    workloads

let test_recovery_done_count () =
  List.iter
    (fun (w : Dsl.t) ->
      List.iter
        (fun (model : Model.t) ->
          let res, events = collect_events w model in
          let dones =
            List.length
              (List.filter
                 (fun (_, e) -> e = Vliw_sim.Recovery_done)
                 events)
          in
          check_int
            (Printf.sprintf "%s/%s recovery episodes" w.Dsl.name
               model.Model.name)
            res.Vliw_sim.stats.Vliw_sim.recoveries dones)
        executable_models)
    workloads

(* Cycle numbers in the event stream never decrease, and no event is
   stamped past the final cycle count. *)
let test_event_cycles_monotone () =
  List.iter
    (fun (w : Dsl.t) ->
      let res, events = collect_events w Model.region_pred in
      let last = ref 0 in
      List.iter
        (fun (cycle, _) ->
          check_bool (w.Dsl.name ^ " monotone") true (cycle >= !last);
          last := cycle)
        events;
      check_bool (w.Dsl.name ^ " bounded") true (!last <= res.Vliw_sim.cycles))
    workloads

(* A run that actually recovers (the §3.5 demand-paging scenario from
   examples/exception_recovery.ml): the accounting must still sum, must
   charge the recovery category, and the event stream must close every
   episode. *)
let test_accounting_under_recovery () =
  let open Psb_workloads.Dsl in
  let stride = 70 and iters = 8 in
  let program =
    Program.make ~entry:(lbl "entry")
      [
        block "entry" [ mov 1 (i 0); mov 2 (i 0) ] (jmp "head");
        block "head"
          [
            add 5 (r 20) (r 1);
            load 6 5 0;
            mul 6 (r 6) (i 3);
            sub 6 (r 6) (i 1);
            cmp 4 Opcode.Gt (r 6) (i 0);
          ]
          (br 4 "body" "done");
        block "body"
          [
            mul 7 (r 1) (i stride);
            add 7 (r 7) (r 21);
            load 3 7 0;
            add 2 (r 2) (r 3);
            add 1 (r 1) (i 1);
          ]
          (jmp "head");
        block "done" [ out (r 2) ] halt;
      ]
  in
  let make_mem () =
    let mem = Memory.create_demand ~size:2048 ~unmapped:(320, 1024) in
    for k = 0 to iters - 1 do
      Memory.poke mem k (if k = iters - 1 then 0 else 1)
    done;
    for k = 0 to iters - 1 do
      let a = 256 + (k * stride) in
      if Memory.probe mem a = None then Memory.poke mem a (k + 1)
    done;
    mem
  in
  let regs = [ (Reg.make 20, 0); (Reg.make 21, 256) ] in
  let _, profile = Driver.profile_of program ~regs ~mem:(make_mem ()) in
  let compiled =
    Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
      ~profile program
  in
  let events = ref [] in
  let sink = Vliw_trace.create ~model:Machine_model.base () in
  let on_event c e =
    events := (c, e) :: !events;
    Vliw_trace.on_event sink c e
  in
  let res = Driver.run_vliw ~on_event compiled ~regs ~mem:(make_mem ()) in
  check_bool "recovers" true (res.Vliw_sim.stats.Vliw_sim.recoveries > 0);
  (* the trace sink renders each episode as a span on the recovery track *)
  (match Json.parse (Json.to_string (Vliw_trace.to_json ~result:res sink)) with
  | Error e -> Alcotest.failf "recovery trace does not parse: %s" e
  | Ok v ->
      let recovery_spans =
        List.filter
          (fun e ->
            Option.bind (Json.member "name" e) Json.to_str = Some "recovery"
            && Option.bind (Json.member "ph" e) Json.to_str = Some "X")
          (Json.to_list (Option.get (Json.member "traceEvents" v)))
      in
      check_int "recovery spans" res.Vliw_sim.stats.Vliw_sim.recoveries
        (List.length recovery_spans));
  check_bool "recovery cycles charged" true
    (res.Vliw_sim.breakdown.Vliw_sim.bd_recovery > 0);
  check_int "sums under recovery" res.Vliw_sim.cycles
    (Vliw_sim.breakdown_total res.Vliw_sim.breakdown);
  let count p = List.length (List.filter (fun (_, e) -> p e) !events) in
  check_int "every episode closes"
    res.Vliw_sim.stats.Vliw_sim.recoveries
    (count (fun e -> e = Vliw_sim.Recovery_done));
  check_int "every episode opens"
    res.Vliw_sim.stats.Vliw_sim.recoveries
    (count (fun e -> e = Vliw_sim.Exception_detected))

(* ---------- structured event ring ---------- *)

let test_events_ring () =
  let e = Events.create ~capacity:4 () in
  check_int "capacity" 4 (Events.capacity e);
  Events.emit e ~cycle:0 Events.Issue ~a:1 ~b:0;
  Events.emit e ~cycle:1 Events.Issue ~a:2 ~b:0;
  Events.emit e ~cycle:2 Events.Issue ~a:3 ~b:0;
  check_int "length" 3 (Events.length e);
  check_int "total" 3 (Events.total e);
  check_int "dropped" 0 (Events.dropped e);
  (* two more wrap the ring: the two oldest are overwritten *)
  Events.emit e ~cycle:3 Events.Sb_append ~a:4 ~b:1;
  Events.emit e ~cycle:4 Events.Sb_append ~a:5 ~b:0;
  check_int "length at cap" 4 (Events.length e);
  check_int "total after wrap" 5 (Events.total e);
  check_int "dropped after wrap" 1 (Events.dropped e);
  let got = ref [] in
  Events.iter e (fun cycle kind a b -> got := (cycle, kind, a, b) :: !got);
  check_bool "iter oldest first" true
    (List.rev !got
    = [
        (1, Events.Issue, 2, 0);
        (2, Events.Issue, 3, 0);
        (3, Events.Sb_append, 4, 1);
        (4, Events.Sb_append, 5, 0);
      ]);
  Events.clear e;
  check_int "cleared length" 0 (Events.length e);
  check_int "cleared total" 0 (Events.total e);
  check_int "cleared dropped" 0 (Events.dropped e)

let test_events_intern () =
  let e = Events.create ~capacity:8 () in
  let a = Events.intern e "loop" in
  let b = Events.intern e "done" in
  check_int "dense ids" 0 a;
  check_int "dense ids 2" 1 b;
  check_int "find not create" a (Events.intern e "loop");
  check_bool "name" true (Events.name e a = "loop");
  check_bool "unknown id" true (Events.name e 7 = "?7");
  check_bool "halt id" true (Events.name e (-1) = "?-1");
  Events.clear e;
  check_bool "names survive clear" true (Events.name e b = "done")

let test_events_json () =
  let e = Events.create ~capacity:8 () in
  ignore (Events.intern e "entry");
  Events.emit e ~cycle:0 Events.Region_enter ~a:0 ~b:0;
  Events.emit e ~cycle:5 Events.Shadow_commit ~a:3 ~b:42;
  let s = Json.to_string (Events.to_json e) in
  match Json.parse s with
  | Error err -> Alcotest.failf "events json: %s" err
  | Ok v ->
      let field n = Option.get (Json.member n v) in
      check_int "total" 2 (Option.get (Json.to_int (field "total")));
      check_int "dropped" 0 (Option.get (Json.to_int (field "dropped")));
      check_int "events" 2 (List.length (Json.to_list (field "events")));
      let first = List.hd (Json.to_list (field "events")) in
      check_bool "kind name" true
        (Option.bind (Json.member "kind" first) Json.to_str
        = Some "region_enter")

(* The zero-overhead claim, allocation half: emitting into the ring and
   ticking the machine structures with a ring attached must not allocate
   on the minor heap. The tolerance absorbs the boxed floats that
   [Gc.minor_words] itself returns. *)
let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_events_emit_no_alloc () =
  let e = Events.create ~capacity:1024 () in
  (* warm up: fill and wrap once so the steady state is measured *)
  for i = 0 to 2047 do
    Events.emit e ~cycle:i Events.Issue ~a:i ~b:0
  done;
  let words =
    minor_words_of (fun () ->
        for i = 0 to 99_999 do
          Events.emit e ~cycle:i Events.Shadow_write ~a:i ~b:i
        done)
  in
  check_bool
    (Printf.sprintf "emit allocates nothing (%.0f words / 100k emits)" words)
    true (words < 256.)

(* Attaching a ring to the per-cycle tick paths must add zero minor-heap
   allocation: measured as a delta between identical state with and
   without [?events], under the compiled-mask kernel (the production hot
   path — the Map reference walk allocates by design). The store-buffer
   side is additionally absolute: its tick allocates nothing at all. *)
let test_tick_no_alloc_with_events () =
  let module Regfile = Psb_machine.Regfile in
  let module Store_buffer = Psb_machine.Store_buffer in
  let module Ccr = Psb_machine.Ccr in
  let module Pred_kernel = Psb_machine.Pred_kernel in
  let entries = 16 in
  (* all predicates stay Unspec so no version ever resolves and the
     timed state survives arbitrarily many ticks *)
  let pred i =
    Pred.of_list
      [ (Cond.make (i mod 4), true); (Cond.make (4 + (i mod 4)), i mod 2 = 0) ]
  in
  let ccr = Ccr.create ~width:8 in
  let ring = Events.create ~capacity:1024 () in
  let make_rf events =
    let rf = Regfile.create ~mode:Regfile.Single ?events ~nregs:entries () in
    for i = 0 to entries - 1 do
      match
        Regfile.write_spec rf (Reg.make i) i
          ~cpred:(Pred.compile (pred i))
          ~fault:None
      with
      | `Ok -> ()
      | `Conflict -> assert false
    done;
    rf
  in
  let make_sb events =
    let sb = Store_buffer.create ?events () in
    for i = 0 to entries - 1 do
      Store_buffer.append sb ~addr:i ~value:i
        ~cpred:(Pred.compile (pred i))
        ~spec:true ~fault:None
    done;
    sb
  in
  let rf_plain = make_rf None and rf_events = make_rf (Some ring) in
  let sb_plain = make_sb None and sb_events = make_sb (Some ring) in
  let mode = Pred_kernel.Mask in
  let measure f =
    ignore (f ());
    minor_words_of (fun () ->
        for _ = 1 to 10_000 do
          ignore (f ())
        done)
  in
  let rf0 = measure (fun () -> Regfile.tick ~mode ~dirty:(-1) rf_plain ccr) in
  let rf1 = measure (fun () -> Regfile.tick ~mode ~dirty:(-1) rf_events ccr) in
  let sb0 =
    measure (fun () -> Store_buffer.tick ~mode ~dirty:(-1) sb_plain ccr)
  in
  let sb1 =
    measure (fun () -> Store_buffer.tick ~mode ~dirty:(-1) sb_events ccr)
  in
  check_bool
    (Printf.sprintf "events add nothing to rf tick (%+.0f words / 10k)"
       (rf1 -. rf0))
    true
    (rf1 -. rf0 < 256.);
  check_bool
    (Printf.sprintf "sb tick allocates nothing (%.0f words / 10k)" sb1)
    true (sb1 < 256.);
  check_bool
    (Printf.sprintf "events add nothing to sb tick (%+.0f words / 10k)"
       (sb1 -. sb0))
    true
    (sb1 -. sb0 < 256.)

(* ---------- speculation scorecards ---------- *)

(* The profiler's reconciliation guarantees, for every workload under
   every executable model: region residencies telescope to the machine's
   cycle count, useful/wasted issue cycles match the machine's own
   accounting, and buffered-state commits match the commit counter. *)
let test_spec_profile_reconciles () =
  List.iter
    (fun (w : Dsl.t) ->
      List.iter
        (fun (model : Model.t) ->
          let events = Events.create ~capacity:(1 lsl 20) () in
          let res = run_workload ~events w model in
          let prof =
            Spec_profile.of_events ~total_cycles:res.Vliw_sim.cycles events
          in
          let ctx fmt =
            Printf.sprintf ("%s/%s " ^^ fmt) w.Dsl.name model.Model.name
          in
          check_int (ctx "dropped") 0 (Spec_profile.dropped prof);
          check_bool (ctx "reconciles") true (Spec_profile.reconciles prof);
          check_int (ctx "attributed cycles") res.Vliw_sim.cycles
            (Spec_profile.attributed_cycles prof);
          let sum f =
            List.fold_left
              (fun acc c -> acc + f c)
              0 (Spec_profile.cards prof)
          in
          check_int (ctx "useful")
            res.Vliw_sim.breakdown.Vliw_sim.bd_useful
            (sum (fun c -> c.Spec_profile.useful));
          check_int (ctx "wasted")
            res.Vliw_sim.breakdown.Vliw_sim.bd_squashed
            (sum (fun c -> c.Spec_profile.wasted));
          check_int (ctx "commits") res.Vliw_sim.stats.Vliw_sim.commits
            (Spec_profile.commit_total prof);
          List.iter
            (fun (c : Spec_profile.card) ->
              let r = Spec_profile.squash_rate c in
              check_bool (ctx "squash rate in [0,1]") true
                (r >= 0. && r <= 1.))
            (Spec_profile.cards prof))
        executable_models)
    workloads

(* Reconciliation must survive exception recovery: the re-executed
   cycles belong to the region that faulted, and the deferred/raised
   fault events appear on its card. *)
let test_spec_profile_recovery () =
  let open Psb_workloads.Dsl in
  let stride = 70 and iters = 8 in
  let program =
    Program.make ~entry:(lbl "entry")
      [
        block "entry" [ mov 1 (i 0); mov 2 (i 0) ] (jmp "head");
        block "head"
          [
            add 5 (r 20) (r 1);
            load 6 5 0;
            mul 6 (r 6) (i 3);
            sub 6 (r 6) (i 1);
            cmp 4 Opcode.Gt (r 6) (i 0);
          ]
          (br 4 "body" "done");
        block "body"
          [
            mul 7 (r 1) (i stride);
            add 7 (r 7) (r 21);
            load 3 7 0;
            add 2 (r 2) (r 3);
            add 1 (r 1) (i 1);
          ]
          (jmp "head");
        block "done" [ out (r 2) ] halt;
      ]
  in
  let make_mem () =
    let mem = Memory.create_demand ~size:2048 ~unmapped:(320, 1024) in
    for k = 0 to iters - 1 do
      Memory.poke mem k (if k = iters - 1 then 0 else 1)
    done;
    for k = 0 to iters - 1 do
      let a = 256 + (k * stride) in
      if Memory.probe mem a = None then Memory.poke mem a (k + 1)
    done;
    mem
  in
  let regs = [ (Reg.make 20, 0); (Reg.make 21, 256) ] in
  let _, profile = Driver.profile_of program ~regs ~mem:(make_mem ()) in
  let compiled =
    Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
      ~profile program
  in
  let events = Events.create ~capacity:(1 lsl 20) () in
  let res = Driver.run_vliw ~events compiled ~regs ~mem:(make_mem ()) in
  check_bool "recovers" true (res.Vliw_sim.stats.Vliw_sim.recoveries > 0);
  let prof = Spec_profile.of_events ~total_cycles:res.Vliw_sim.cycles events in
  check_bool "reconciles under recovery" true (Spec_profile.reconciles prof);
  let sum f =
    List.fold_left (fun acc c -> acc + f c) 0 (Spec_profile.cards prof)
  in
  check_int "raised faults = recovery episodes"
    res.Vliw_sim.stats.Vliw_sim.recoveries
    (sum (fun c -> c.Spec_profile.faults_raised));
  check_bool "faults deferred first" true
    (sum (fun c -> c.Spec_profile.faults_deferred) > 0);
  check_int "commits under recovery" res.Vliw_sim.stats.Vliw_sim.commits
    (Spec_profile.commit_total prof)

(* A ring too small for the run voids reconciliation instead of lying. *)
let test_spec_profile_truncated () =
  let w = Suite.find "li" in
  let events = Events.create ~capacity:64 () in
  let res = run_workload ~events w Model.region_pred in
  let prof = Spec_profile.of_events ~total_cycles:res.Vliw_sim.cycles events in
  check_bool "dropped events" true (Spec_profile.dropped prof > 0);
  check_bool "does not claim reconciliation" true
    (not (Spec_profile.reconciles prof))

(* ---------- histogram quantiles ---------- *)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "q" ~buckets:[ 1.; 2.; 4.; 8. ] in
  check_bool "empty" true (Metrics.histogram_quantile h 0.5 = None);
  List.iter (fun v -> Metrics.observe h (float_of_int v)) [ 1; 2; 3; 4; 5; 6 ];
  let get q = Option.get (Metrics.histogram_quantile h q) in
  check_bool "p0 is min" true (get 0. = 1.);
  check_bool "p100 is max" true (get 1. = 6.);
  check_bool "clamped below" true (get (-0.5) = 1.);
  check_bool "clamped above" true (get 2. = 6.);
  let p50 = get 0.5 and p90 = get 0.9 and p99 = get 0.99 in
  check_bool "p50 in range" true (p50 >= 1. && p50 <= 6.);
  check_bool "monotone" true (p50 <= p90 && p90 <= p99);
  (* a single observation pins every quantile *)
  let one = Metrics.histogram m "one" in
  Metrics.observe one 5.;
  check_bool "single obs" true
    (Metrics.histogram_quantile one 0.5 = Some 5.
    && Metrics.histogram_quantile one 0.99 = Some 5.);
  (* values past the last bound live in the +inf bucket: quantiles
     degrade to the observed max, never to infinity *)
  let inf = Metrics.histogram m "inf" ~buckets:[ 1. ] in
  List.iter (Metrics.observe inf) [ 100.; 200. ];
  check_bool "inf bucket degrades to max" true
    (Metrics.histogram_quantile inf 0.9 = Some 200.)

let test_histogram_buckets_conflict () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "occ" ~buckets:[ 1.; 2.; 4. ] in
  Metrics.observe h 3.;
  (* re-passing the original layout (any order, duplicates collapsed)
     and omitting buckets both find the same histogram *)
  check_bool "same layout ok" true
    (Metrics.histogram m "occ" ~buckets:[ 4.; 1.; 2.; 2. ] == h);
  check_bool "no buckets ok" true (Metrics.histogram m "occ" == h);
  check_bool "raises on conflicting buckets" true
    (try
       ignore (Metrics.histogram m "occ" ~buckets:[ 1.; 2.; 8. ]);
       false
     with Invalid_argument _ -> true);
  (* different labels are a different histogram: no conflict *)
  ignore (Metrics.histogram m "occ" ~labels:[ ("k", "v") ] ~buckets:[ 3. ])

(* ---------- trace-event escaping and field order ---------- *)

let test_trace_event_escaping () =
  let sink = Trace_event.create ~process_name:"esc \"proc\"" () in
  let tr = Trace_event.track sink "tr\tack" in
  let names =
    [
      "quote \" backslash \\";
      "control \x01\x02\x1f chars";
      "newline \n tab \t cr \r";
      "non-ASCII caf\xc3\xa9 \xe2\x86\x92";
    ]
  in
  List.iteri
    (fun idx n -> Trace_event.instant sink tr ~name:n ~ts:idx ())
    names;
  let doc = Trace_event.to_json sink () in
  let s = Json.to_string ~minify:true doc in
  match Json.parse s with
  | Error e -> Alcotest.failf "escaped trace does not parse: %s" e
  | Ok v ->
      check_bool "round-trip" true (Json.equal v doc);
      let events = Json.to_list (Option.get (Json.member "traceEvents" v)) in
      let instant_names =
        List.filter_map
          (fun e ->
            if Option.bind (Json.member "ph" e) Json.to_str = Some "i" then
              Option.bind (Json.member "name" e) Json.to_str
            else None)
          events
      in
      check_bool "names survive escaping" true (instant_names = names)

let test_trace_event_field_order () =
  let sink = Trace_event.create () in
  let tr = Trace_event.track sink "t" in
  Trace_event.span sink tr ~name:"s" ~ts:0 ~dur:2 ();
  Trace_event.instant sink tr ~name:"i" ~ts:1 ();
  Trace_event.counter sink ~name:"c" ~ts:2 ~value:3;
  let doc1 = Json.to_string (Trace_event.to_json sink ()) in
  let doc2 = Json.to_string (Trace_event.to_json sink ()) in
  check_bool "serialisation deterministic" true (doc1 = doc2);
  let events =
    Json.to_list (Option.get (Json.member "traceEvents" (Trace_event.to_json sink ())))
  in
  List.iter
    (fun e ->
      match e with
      | Json.Obj fields ->
          let keys = List.map fst fields in
          let expect =
            (* metadata records ("M") carry no timestamp *)
            if Option.bind (Json.member "ph" e) Json.to_str = Some "M" then
              [ "name"; "ph"; "pid"; "tid" ]
            else [ "name"; "ph"; "ts"; "pid"; "tid" ]
          in
          let rec prefix = function
            | [], _ -> true
            | e :: es, k :: ks when e = k -> prefix (es, ks)
            | _ -> false
          in
          check_bool
            (Printf.sprintf "deterministic field order (got %s)"
               (String.concat "," keys))
            true
            (prefix (expect, keys))
      | _ -> Alcotest.fail "trace event is not an object")
    events

(* ---------- metrics integration ---------- *)

let test_vliw_metrics_agree () =
  let w = Suite.find "fib" in
  let metrics = Metrics.create () in
  let res = run_workload ~metrics w Model.region_pred in
  let counter name =
    Metrics.counter_value (Metrics.counter metrics name)
  in
  check_int "cycles counter" res.Vliw_sim.cycles (counter "vliw_cycles_total");
  check_int "bundles counter" res.Vliw_sim.stats.Vliw_sim.dyn_bundles
    (counter "vliw_dyn_bundles");
  let by_cat =
    List.fold_left
      (fun acc (cat, _) ->
        acc
        + Metrics.counter_value
            (Metrics.counter metrics "vliw_cycles"
               ~labels:[ ("category", cat) ]))
      0
      (Vliw_sim.breakdown_fields res.Vliw_sim.breakdown)
  in
  check_int "per-category counters sum to cycles" res.Vliw_sim.cycles by_cat

let test_scalar_fib_equivalence () =
  let w = Suite.find "fib" in
  let scalar =
    Psb_machine.Scalar_sim.run ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
      w.Dsl.program
  in
  List.iter
    (fun (model : Model.t) ->
      let res = run_workload w model in
      check_bool
        (Printf.sprintf "fib output agrees under %s" model.Model.name)
        true
        (res.Vliw_sim.output = scalar.Interp.output))
    executable_models

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "obj drops null" `Quick test_json_obj_drops_null;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histograms" `Quick test_metrics_histograms;
          Alcotest.test_case "json deterministic" `Quick
            test_metrics_json_deterministic;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "buckets conflict raises" `Quick
            test_histogram_buckets_conflict;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden schema" `Quick test_trace_golden;
          Alcotest.test_case "string escaping" `Quick
            test_trace_event_escaping;
          Alcotest.test_case "field order" `Quick
            test_trace_event_field_order;
        ] );
      ( "event ring",
        [
          Alcotest.test_case "ring semantics" `Quick test_events_ring;
          Alcotest.test_case "intern table" `Quick test_events_intern;
          Alcotest.test_case "json" `Quick test_events_json;
          Alcotest.test_case "emit allocation-free" `Quick
            test_events_emit_no_alloc;
          Alcotest.test_case "ticks allocation-free" `Quick
            test_tick_no_alloc_with_events;
        ] );
      ( "speculation profile",
        [
          Alcotest.test_case "reconciles everywhere" `Slow
            test_spec_profile_reconciles;
          Alcotest.test_case "reconciles under recovery" `Quick
            test_spec_profile_recovery;
          Alcotest.test_case "truncation voids reconciliation" `Quick
            test_spec_profile_truncated;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "sums to cycles" `Slow test_accounting_sums;
          Alcotest.test_case "recovery zero" `Quick
            test_accounting_recovery_cycles;
          Alcotest.test_case "sums under recovery" `Quick
            test_accounting_under_recovery;
        ] );
      ( "events",
        [
          Alcotest.test_case "no resolution after exit" `Slow
            test_no_resolution_after_exit;
          Alcotest.test_case "recovery-done count" `Slow
            test_recovery_done_count;
          Alcotest.test_case "cycles monotone" `Quick
            test_event_cycles_monotone;
        ] );
      ( "integration",
        [
          Alcotest.test_case "vliw metrics agree" `Quick
            test_vliw_metrics_agree;
          Alcotest.test_case "fib scalar equivalence" `Quick
            test_scalar_fib_equivalence;
        ] );
    ]
