(* Tests of the ISA layer: predicates (with qcheck properties), memory
   faults, the reference interpreter and its cycle model, and trace
   analysis. *)

open Psb_isa

let cond = Cond.make
let reg = Reg.make
let lbl = Label.make
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Pred ---------- *)

let test_pred_always () =
  check_bool "always is true" true
    (Pred.eval Pred.always (fun _ -> Pred.U) = Pred.True);
  check_bool "is_always" true (Pred.is_always Pred.always);
  check_int "arity" 0 (Pred.arity Pred.always)

let test_pred_eval () =
  let p = Pred.of_list [ (cond 0, true); (cond 2, false) ] in
  let mk c0 c2 c =
    match Cond.index c with 0 -> c0 | 2 -> c2 | _ -> Pred.U
  in
  check_bool "both needed" true (Pred.eval p (mk Pred.T Pred.U) = Pred.Unspec);
  check_bool "true" true (Pred.eval p (mk Pred.T Pred.F) = Pred.True);
  check_bool "false" true (Pred.eval p (mk Pred.T Pred.T) = Pred.False);
  (* paper hardware rule vs early-false rule *)
  check_bool "paper rule: unspec wins" true
    (Pred.eval p (mk Pred.U Pred.T) = Pred.Unspec);
  check_bool "early-false rule" true
    (Pred.eval_early_false p (mk Pred.U Pred.T) = Pred.False)

let test_pred_contradiction () =
  Alcotest.check_raises "contradictory literal"
    (Invalid_argument "Pred.conj: contradictory literal on c1") (fun () ->
      ignore (Pred.of_list [ (cond 1, true); (cond 1, false) ]))

let test_pred_implies_disjoint () =
  let p = Pred.of_list [ (cond 0, true); (cond 1, true) ] in
  let q = Pred.of_list [ (cond 0, true) ] in
  let r = Pred.of_list [ (cond 0, false) ] in
  check_bool "p implies q" true (Pred.implies p q);
  check_bool "q not implies p" false (Pred.implies q p);
  check_bool "everything implies always" true (Pred.implies q Pred.always);
  check_bool "disjoint" true (Pred.disjoint p r);
  check_bool "not disjoint" false (Pred.disjoint p q)

let test_pred_vector () =
  let p = Pred.of_list [ (cond 0, true); (cond 1, false); (cond 2, true) ] in
  Alcotest.(check string) "encoding" "101X" (Pred.to_vector ~width:4 p);
  Alcotest.(check string) "don't care" "1XXX"
    (Pred.to_vector ~width:4 (Pred.of_list [ (cond 0, true) ]))

let test_pred_rename () =
  let p = Pred.of_list [ (cond 5, true); (cond 9, false) ] in
  let q = Pred.rename (fun c -> cond (if Cond.index c = 5 then 1 else 2)) p in
  check_bool "requires c1 true" true (Pred.requires q (cond 1) = Some true);
  check_bool "requires !c2" true (Pred.requires q (cond 2) = Some false);
  check_bool "old names gone" true (Pred.requires q (cond 5) = None);
  (* A renaming that merges opposite literals must be rejected. *)
  Alcotest.check_raises "merging rename rejected"
    (Invalid_argument "Pred.conj: contradictory literal on c0") (fun () ->
      ignore (Pred.rename (fun _ -> cond 0) p))

(* qcheck generators *)

let gen_pred =
  QCheck.Gen.(
    list_size (int_bound 4) (pair (int_bound 5) bool) >|= fun lits ->
    List.fold_left
      (fun p (c, v) ->
        match Pred.conj p (cond c) v with p' -> p' | exception _ -> p)
      Pred.always lits)

let arb_pred = QCheck.make ~print:(Format.asprintf "%a" Pred.pp) gen_pred

let gen_ccr_fn =
  QCheck.Gen.(
    array_size (return 6) (oneofl [ Pred.T; Pred.F; Pred.U ]) >|= fun arr c ->
    arr.(Cond.index c mod 6))

let prop_eval_monotone =
  (* Specifying more conditions never flips True<->False; it can only move
     Unspec to a specified value. *)
  QCheck.Test.make ~name:"pred eval is monotone under specification"
    ~count:500
    (QCheck.pair arb_pred (QCheck.make gen_ccr_fn))
    (fun (p, lookup) ->
      let v1 = Pred.eval p lookup in
      (* specify all unknowns as true *)
      let lookup2 c = match lookup c with Pred.U -> Pred.T | v -> v in
      let v2 = Pred.eval p lookup2 in
      match (v1, v2) with
      | Pred.True, Pred.True | Pred.False, Pred.False -> true
      | Pred.Unspec, _ -> true
      | _ -> false)

let prop_eval_agrees_when_specified =
  QCheck.Test.make ~name:"paper rule = early-false rule when fully specified"
    ~count:500
    (QCheck.pair arb_pred (QCheck.make gen_ccr_fn))
    (fun (p, lookup) ->
      let lookup c = match lookup c with Pred.U -> Pred.F | v -> v in
      Pred.eval p lookup = Pred.eval_early_false p lookup)

let prop_implies_semantics =
  QCheck.Test.make ~name:"implies is semantic implication" ~count:500
    (QCheck.triple arb_pred arb_pred (QCheck.make gen_ccr_fn))
    (fun (p, q, lookup) ->
      let lookup c = match lookup c with Pred.U -> Pred.T | v -> v in
      (not (Pred.implies p q))
      || Pred.eval p lookup <> Pred.True
      || Pred.eval q lookup = Pred.True)

let prop_disjoint_semantics =
  QCheck.Test.make ~name:"disjoint predicates are never both true" ~count:500
    (QCheck.triple arb_pred arb_pred (QCheck.make gen_ccr_fn))
    (fun (p, q, lookup) ->
      let lookup c = match lookup c with Pred.U -> Pred.T | v -> v in
      (not (Pred.disjoint p q))
      || not (Pred.eval p lookup = Pred.True && Pred.eval q lookup = Pred.True))

(* ---------- Opcode ---------- *)

let test_opcode_semantics () =
  check_int "add" 7 (Opcode.eval_alu Opcode.Add 3 4);
  check_int "sub" (-1) (Opcode.eval_alu Opcode.Sub 3 4);
  check_int "mul" 12 (Opcode.eval_alu Opcode.Mul 3 4);
  check_int "div" 3 (Opcode.eval_alu Opcode.Div 13 4);
  check_int "div negative" (-3) (Opcode.eval_alu Opcode.Div (-13) 4);
  check_int "and" 4 (Opcode.eval_alu Opcode.And 12 6);
  check_int "or" 14 (Opcode.eval_alu Opcode.Or 12 6);
  check_int "xor" 10 (Opcode.eval_alu Opcode.Xor 12 6);
  check_int "sll" 24 (Opcode.eval_alu Opcode.Sll 3 3);
  check_int "srl" 3 (Opcode.eval_alu Opcode.Srl 24 3);
  check_int "sra" (-2) (Opcode.eval_alu Opcode.Sra (-8) 2);
  (* shift counts are masked to 6 bits, so a "negative" count is large *)
  check_int "sll masked count" (3 lsl 1) (Opcode.eval_alu Opcode.Sll 3 65);
  Alcotest.check_raises "div by zero"
    (Opcode.Arithmetic_fault "division by zero") (fun () ->
      ignore (Opcode.eval_alu Opcode.Div 1 0));
  check_bool "cmp table" true
    (Opcode.eval_cmp Opcode.Le 3 3
    && Opcode.eval_cmp Opcode.Ge 3 3
    && (not (Opcode.eval_cmp Opcode.Lt 3 3))
    && Opcode.eval_cmp Opcode.Ne 3 4);
  check_bool "only div is unsafe" true
    (Opcode.alu_unsafe Opcode.Div && not (Opcode.alu_unsafe Opcode.Sra))

let test_pred_vector_errors () =
  Alcotest.check_raises "vector width"
    (Invalid_argument "Pred.to_vector: c5 out of CCR width 4") (fun () ->
      ignore (Pred.to_vector ~width:4 (Pred.of_list [ (cond 5, true) ])))

(* ---------- Memory ---------- *)

let test_memory_bounds () =
  let m = Memory.create ~size:16 in
  Memory.write m 3 42;
  check_int "rw" 42 (Memory.read m 3);
  Alcotest.check_raises "negative is fatal" (Memory.Fault (Memory.Out_of_bounds (-1)))
    (fun () -> ignore (Memory.read m (-1)));
  Alcotest.check_raises "past end" (Memory.Fault (Memory.Out_of_bounds 16))
    (fun () -> ignore (Memory.read m 16))

let test_memory_demand () =
  let m = Memory.create_demand ~size:1024 ~unmapped:(128, 256) in
  check_int "mapped region ok" 0 (Memory.read m 10);
  (match Memory.read m 130 with
  | _ -> Alcotest.fail "expected unmapped fault"
  | exception Memory.Fault (Memory.Unmapped 130) -> ());
  check_bool "handler maps" true (Memory.handle_fault m (Memory.Unmapped 130));
  check_int "after mapping" 0 (Memory.read m 130);
  check_bool "fatal not handled" false
    (Memory.handle_fault m (Memory.Out_of_bounds 2000))

let test_memory_page_boundaries () =
  (* the demand range is rounded to page granularity *)
  let m = Memory.create_demand ~size:1024 ~unmapped:(100, 130) in
  (* pages are 64 words: [64..127] and [128..191] intersect [100,130) *)
  (match Memory.read m 70 with
  | _ -> Alcotest.fail "address 70 shares a page with 100: must fault"
  | exception Memory.Fault (Memory.Unmapped 70) -> ());
  (match Memory.read m 190 with
  | _ -> Alcotest.fail "address 190 shares a page with 129: must fault"
  | exception Memory.Fault (Memory.Unmapped 190) -> ());
  check_int "next page is mapped" 0 (Memory.read m 192);
  (* handling one address maps its whole page *)
  check_bool "handled" true (Memory.handle_fault m (Memory.Unmapped 70));
  check_int "same page now readable" 0 (Memory.read m 127);
  (match Memory.read m 128 with
  | _ -> Alcotest.fail "second page still unmapped"
  | exception Memory.Fault (Memory.Unmapped 128) -> ())

let test_memory_probe_equal () =
  let m = Memory.create_demand ~size:512 ~unmapped:(64, 128) in
  check_bool "probe unmapped" true (Memory.probe m 70 <> None);
  check_bool "probe ok" true (Memory.probe m 10 = None);
  check_bool "probe oob" true (Memory.probe m 600 <> None);
  let m2 = Memory.copy m in
  Memory.poke m2 10 5;
  check_bool "copy is independent" false (Memory.equal m m2);
  Memory.poke m 10 5;
  check_bool "equal after same writes" true (Memory.equal m m2)

(* ---------- Interp ---------- *)

(* sum = 10 + 20: straight-line program. *)
let straight_line =
  Program.make ~entry:(lbl "e")
    [
      Program.block (lbl "e")
        [
          Instr.Mov { dst = reg 1; src = Operand.imm 10 };
          Instr.Mov { dst = reg 2; src = Operand.imm 20 };
          Instr.Alu
            { op = Opcode.Add; dst = reg 3; a = Operand.reg (reg 1); b = Operand.reg (reg 2) };
          Instr.Out (Operand.reg (reg 3));
        ]
        Instr.Halt;
    ]

let test_interp_basic () =
  let mem = Memory.create ~size:64 in
  let r = Interp.run ~regs:[] ~mem straight_line in
  check_bool "halted" true (r.Interp.outcome = Interp.Halted);
  Alcotest.(check (list int)) "output" [ 30 ] r.Interp.output;
  check_int "r3" 30 (Reg.Map.find (reg 3) r.Interp.regs);
  (* 4 ops + halt = 5 cycles, no load stalls *)
  check_int "cycles" 5 r.Interp.cycles

let test_interp_load_use_stall () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = Operand.imm 0 };
            Instr.Load { dst = reg 2; base = reg 1; off = 0 };
            Instr.Alu
              { op = Opcode.Add; dst = reg 3; a = Operand.reg (reg 2); b = Operand.imm 1 };
          ]
          Instr.Halt;
      ]
  in
  let mem = Memory.create ~size:64 in
  let r = Interp.run ~regs:[] ~mem p in
  (* 3 ops + halt + 1 load-use stall = 5 *)
  check_int "cycles with stall" 5 r.Interp.cycles;
  (* without the dependent use, no stall *)
  let p2 =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = Operand.imm 0 };
            Instr.Load { dst = reg 2; base = reg 1; off = 0 };
            Instr.Alu
              { op = Opcode.Add; dst = reg 3; a = Operand.imm 5; b = Operand.imm 1 };
          ]
          Instr.Halt;
      ]
  in
  let r2 = Interp.run ~regs:[] ~mem:(Memory.create ~size:64) p2 in
  check_int "cycles without stall" 4 r2.Interp.cycles

let branchy ~n =
  (* loop: i from n downto 0, accumulate; tests Br/Jmp and trace capture *)
  Program.make ~entry:(lbl "head")
    [
      Program.block (lbl "head")
        [ Instr.Cmp { op = Opcode.Gt; dst = reg 8; a = Operand.reg (reg 1); b = Operand.imm 0 } ]
        (Instr.Br { src = reg 8; if_true = lbl "body"; if_false = lbl "done" });
      Program.block (lbl "body")
        [
          Instr.Alu { op = Opcode.Add; dst = reg 2; a = Operand.reg (reg 2); b = Operand.reg (reg 1) };
          Instr.Alu { op = Opcode.Sub; dst = reg 1; a = Operand.reg (reg 1); b = Operand.imm 1 };
        ]
        (Instr.Jmp (lbl "head"));
      Program.block (lbl "done") [ Instr.Out (Operand.reg (reg 2)) ] Instr.Halt;
    ]
  |> fun p -> (p, [ (reg 1, n); (reg 2, 0) ])

let test_interp_loop () =
  let p, regs = branchy ~n:10 in
  let r = Interp.run ~regs ~mem:(Memory.create ~size:16) p in
  Alcotest.(check (list int)) "sum 1..10" [ 55 ] r.Interp.output;
  check_int "head visits" 11
    (List.length (List.filter (Label.equal (lbl "head")) r.Interp.block_trace))

let test_interp_fatal_fault () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = Operand.imm (-8) };
            Instr.Load { dst = reg 2; base = reg 1; off = 0 };
          ]
          Instr.Halt;
      ]
  in
  let r = Interp.run ~regs:[] ~mem:(Memory.create ~size:64) p in
  match r.Interp.outcome with
  | Interp.Fatal (Fault.Mem (Memory.Out_of_bounds -8)) -> ()
  | o -> Alcotest.failf "expected fatal, got %a" Interp.pp_outcome o

let test_interp_recoverable_fault () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Mov { dst = reg 1; src = Operand.imm 130 };
            Instr.Load { dst = reg 2; base = reg 1; off = 0 };
            Instr.Out (Operand.reg (reg 2));
          ]
          Instr.Halt;
      ]
  in
  let mem = Memory.create_demand ~size:1024 ~unmapped:(128, 256) in
  let r = Interp.run ~regs:[] ~mem p in
  check_bool "halted" true (r.Interp.outcome = Interp.Halted);
  check_int "one fault handled" 1 r.Interp.faults_handled

let test_interp_div_fault () =
  let p =
    Program.make ~entry:(lbl "e")
      [
        Program.block (lbl "e")
          [
            Instr.Alu { op = Opcode.Div; dst = reg 1; a = Operand.imm 1; b = Operand.imm 0 };
          ]
          Instr.Halt;
      ]
  in
  let r = Interp.run ~regs:[] ~mem:(Memory.create ~size:16) p in
  match r.Interp.outcome with
  | Interp.Fatal (Fault.Arith _) -> ()
  | o -> Alcotest.failf "expected arith fault, got %a" Interp.pp_outcome o

(* With the trace off and the decoded kernel, the interpreter's hot
   loop must not allocate per dynamic instruction or per block entered:
   the same count-down loop run for 100x the iterations may not cost
   meaningfully more minor words (a recorded trace alone is multiple
   words per block entered, which the trace-on control run pins). *)
let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_interp_no_trace_no_alloc () =
  let program =
    Program.make ~entry:(lbl "head")
      [
        Program.block (lbl "head")
          [
            Instr.Alu
              {
                op = Opcode.Sub;
                dst = reg 1;
                a = Operand.reg (reg 1);
                b = Operand.imm 1;
              };
            Instr.Cmp
              {
                op = Opcode.Gt;
                dst = reg 2;
                a = Operand.reg (reg 1);
                b = Operand.imm 0;
              };
          ]
          (Instr.Br { src = reg 2; if_true = lbl "head"; if_false = lbl "done" });
        Program.block (lbl "done") [] Instr.Halt;
      ]
  in
  let decoded = Decoded.of_program program in
  let mem = Memory.create ~size:16 in
  let go ~record_trace n =
    (* pin the decoded kernel: the no-allocation guarantee is specific to
       the flat form, so this test must not inherit PSB_SCALAR_KERNEL *)
    Interp.run ~record_trace ~kernel:Scalar_kernel.Decoded ~decoded
      ~regs:[ (reg 1, n) ]
      ~mem program
  in
  (* warm up so any one-time setup is off the measurement *)
  ignore (go ~record_trace:false 10);
  let small = minor_words_of (fun () -> ignore (go ~record_trace:false 1_000)) in
  let large =
    minor_words_of (fun () -> ignore (go ~record_trace:false 100_000))
  in
  check_bool
    (Printf.sprintf
       "no per-iteration allocation with the trace off (%.0f -> %.0f words)"
       small large)
    true
    (large -. small < 4096.);
  (* control: with the trace on, allocation does scale with the blocks
     entered — the delta above really is the trace cells' absence *)
  let traced =
    minor_words_of (fun () -> ignore (go ~record_trace:true 100_000))
  in
  check_bool
    (Printf.sprintf "trace-on control allocates per block (%.0f words)" traced)
    true
    (traced -. large > 100_000.);
  let r = go ~record_trace:false 5 in
  check_bool "trace suppressed" true (r.Interp.block_trace = [])

(* ---------- Trace ---------- *)

let test_trace_counts () =
  let p, regs = branchy ~n:4 in
  let r = Interp.run ~regs ~mem:(Memory.create ~size:16) p in
  let t = Trace.of_result p r in
  check_int "head count" 5 (Trace.block_count t (lbl "head"));
  check_int "body count" 4 (Trace.block_count t (lbl "body"));
  check_int "edge head->body" 4 (Trace.edge_count t ~src:(lbl "head") ~dst:(lbl "body"));
  check_int "dyn branches" 5 (Trace.dynamic_branches t);
  check_bool "predicts taken" true (Trace.predict t (lbl "head"));
  check_bool "taken fraction" true
    (Trace.taken_fraction t (lbl "head") = Some 0.8)

let test_trace_successive () =
  let p, regs = branchy ~n:9 in
  let r = Interp.run ~regs ~mem:(Memory.create ~size:16) p in
  let t = Trace.of_result p r in
  (* 10 dynamic branches: 9 taken (predicted), last one not. *)
  let a1 = Trace.successive_accuracy t 1 in
  check_bool "acc(1) = 0.9" true (abs_float (a1 -. 0.9) < 1e-9);
  let a2 = Trace.successive_accuracy t 2 in
  (* windows of 2: 9 windows, 8 all-correct *)
  check_bool "acc(2)" true (abs_float (a2 -. (8. /. 9.)) < 1e-9);
  check_bool "monotone decreasing" true
    (Trace.successive_accuracy t 4 <= a2 +. 1e-9)

let test_program_validation () =
  Alcotest.check_raises "undefined target"
    (Invalid_argument "Program.make: undefined target nowhere in block e")
    (fun () ->
      ignore
        (Program.make ~entry:(lbl "e")
           [ Program.block (lbl "e") [] (Instr.Jmp (lbl "nowhere")) ]))

(* ---------- Asm ---------- *)

let test_asm_roundtrip_manual () =
  let text = Asm.print straight_line in
  match Asm.parse text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok p -> Alcotest.(check string) "round trip" text (Asm.print p)

let test_asm_parse_source () =
  let src = {x|
# sum 0..4
entry main
main:
  r1 = 0
  r2 = 0
  jmp head
head:
  r4 = r1 < 5
  br r4 ? body : done
body:
  r2 = add r2 r1
  r1 = add r1 1
  jmp head
done:
  out r2
  halt
|x} in
  match Asm.parse src with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok p ->
      let r = Interp.run ~regs:[] ~mem:(Memory.create ~size:16) p in
      Alcotest.(check (list int)) "runs" [ 10 ] r.Interp.output;
      (* round trip again *)
      Alcotest.(check string) "stable print" (Asm.print p)
        (Asm.print (Asm.parse_exn (Asm.print p)))

let test_asm_memory_ops () =
  let src = {x|entry e
e:
  r1 = 8
  store r1+2 = r1
  r2 = load r1+2
  r3 = load r1+-8
  out r2
  halt
|x} in
  match Asm.parse src with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok p ->
      let r = Interp.run ~regs:[] ~mem:(Memory.create ~size:32) p in
      Alcotest.(check (list int)) "store/load round trip" [ 8 ] r.Interp.output;
      Alcotest.(check string) "print stable" (Asm.print p)
        (Asm.print (Asm.parse_exn (Asm.print p)))

let test_asm_errors () =
  let bad = [
    "e:
  halt
" (* no entry *);
    "entry e
e:
  r1 = 0
" (* no terminator *);
    "entry e
e:
  r1 = frob r2 r3
  halt
" (* bad op *);
    "entry e
e:
  jmp nowhere
" (* undefined target *);
  ] in
  List.iter
    (fun src ->
      match Asm.parse src with
      | Ok _ -> Alcotest.failf "expected a parse error for %S" src
      | Error _ -> ())
    bad

let qsuite name tests = (name, List.map Qc.to_alcotest tests)

let () =
  Alcotest.run "isa"
    [
      ( "pred",
        [
          Alcotest.test_case "always" `Quick test_pred_always;
          Alcotest.test_case "eval" `Quick test_pred_eval;
          Alcotest.test_case "contradiction" `Quick test_pred_contradiction;
          Alcotest.test_case "implies/disjoint" `Quick test_pred_implies_disjoint;
          Alcotest.test_case "vector encoding" `Quick test_pred_vector;
          Alcotest.test_case "rename" `Quick test_pred_rename;
        ] );
      qsuite "pred-props"
        [
          prop_eval_monotone;
          prop_eval_agrees_when_specified;
          prop_implies_semantics;
          prop_disjoint_semantics;
        ];
      ( "opcode",
        [
          Alcotest.test_case "semantics" `Quick test_opcode_semantics;
          Alcotest.test_case "vector errors" `Quick test_pred_vector_errors;
        ] );
      ( "memory",
        [
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "demand paging" `Quick test_memory_demand;
          Alcotest.test_case "page boundaries" `Quick test_memory_page_boundaries;
          Alcotest.test_case "probe/copy/equal" `Quick test_memory_probe_equal;
        ] );
      ( "interp",
        [
          Alcotest.test_case "basic" `Quick test_interp_basic;
          Alcotest.test_case "load-use stall" `Quick test_interp_load_use_stall;
          Alcotest.test_case "loop" `Quick test_interp_loop;
          Alcotest.test_case "fatal fault" `Quick test_interp_fatal_fault;
          Alcotest.test_case "recoverable fault" `Quick test_interp_recoverable_fault;
          Alcotest.test_case "div fault" `Quick test_interp_div_fault;
          Alcotest.test_case "no trace, no per-block allocation" `Quick
            test_interp_no_trace_no_alloc;
        ] );
      ( "trace",
        [
          Alcotest.test_case "counts" `Quick test_trace_counts;
          Alcotest.test_case "successive accuracy" `Quick test_trace_successive;
        ] );
      ( "program",
        [ Alcotest.test_case "validation" `Quick test_program_validation ] );
      ( "asm",
        [
          Alcotest.test_case "round trip" `Quick test_asm_roundtrip_manual;
          Alcotest.test_case "parse source" `Quick test_asm_parse_source;
          Alcotest.test_case "memory ops" `Quick test_asm_memory_ops;
          Alcotest.test_case "errors" `Quick test_asm_errors;
        ] );
    ]
