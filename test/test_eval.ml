(* Evaluation tests: lock in the reproduced shapes of the paper's tables
   and figures — who wins, where, and by roughly how much. These encode
   the qualitative claims of §4, not exact numbers. *)

open Psb_compiler
open Psb_eval

let check_bool = Alcotest.(check bool)
let h = lazy (Harness.create ())

let col (t : Experiments.speedup_table) name =
  let rec idx i = function
    | [] -> invalid_arg ("no model " ^ name)
    | (m : Model.t) :: _ when m.Model.name = name -> i
    | _ :: rest -> idx (i + 1) rest
  in
  let i = idx 0 t.Experiments.models in
  ( List.nth t.Experiments.geomean i,
    List.map (fun (w, ss) -> (w, List.nth ss i)) t.Experiments.rows )

let test_table2 () =
  let rows = Experiments.table2 (Lazy.force h) in
  Alcotest.(check int) "six benchmarks" 6 (List.length rows);
  List.iter
    (fun (r : Experiments.table2_row) ->
      check_bool (r.Experiments.t2_name ^ " has lines") true
        (r.Experiments.t2_lines > 10);
      check_bool (r.Experiments.t2_name ^ " has cycles") true
        (r.Experiments.t2_scalar_cycles > 5000))
    rows

let test_table3_shape () =
  let rows = Experiments.table3 (Lazy.force h) in
  let acc name i =
    let r = List.find (fun r -> r.Experiments.t3_name = name) rows in
    r.Experiments.t3_acc.(i - 1)
  in
  (* paper Table 3 pattern: grep/nroff stay high, others decay *)
  check_bool "grep(1) ~ .97" true (acc "grep" 1 > 0.9);
  check_bool "grep(8) high" true (acc "grep" 8 > 0.7);
  check_bool "nroff(8) high" true (acc "nroff" 8 > 0.7);
  check_bool "compress(8) low" true (acc "compress" 8 < 0.6);
  check_bool "espresso(8) low" true (acc "espresso" 8 < 0.6);
  check_bool "li(8) low" true (acc "li" 8 < 0.6)

let test_fig6_ordering () =
  let t = Experiments.figure6 (Lazy.force h) in
  let g, _ = col t "global"
  and s, _ = col t "squashing"
  and tr, _ = col t "trace-sched"
  and rs, _ = col t "region-sched" in
  (* paper: global 1.27x < squashing 1.45x < trace 1.78x ~ region-sched *)
  check_bool "global is the weakest" true (g <= s && g <= tr && g <= rs);
  check_bool "squashing beats global" true (s > g *. 1.02);
  check_bool "region-sched competitive with trace-sched" true
    (rs > tr *. 0.95);
  check_bool "all speed up" true (g > 1.0)

let test_fig7_ordering () =
  let t = Experiments.figure7 (Lazy.force h) in
  let g, _ = col t "global"
  and b, _ = col t "boosting"
  and tp, tp_rows = col t "trace-pred"
  and rp, rp_rows = col t "region-pred" in
  (* paper: global 1.27 < boosting 1.74 < trace-pred 2.24 < region-pred 2.45 *)
  check_bool "boosting beats global" true (b > g *. 1.05);
  check_bool "trace-pred at least boosting-level" true (tp > b *. 0.97);
  check_bool "region-pred is the best overall" true (rp >= tp && rp > b *. 0.97);
  let w name rows = List.assoc name rows in
  (* region gains concentrate in the unpredictable programs... *)
  check_bool "eqntott: region > trace" true
    (w "eqntott" rp_rows > w "eqntott" tp_rows *. 1.02);
  check_bool "espresso: region > trace" true
    (w "espresso" rp_rows > w "espresso" tp_rows *. 1.02);
  (* ... and vanish on the predictable ones (paper: "no benefit over trace
     predicating" for grep/nroff; slightly lower on grep/li from commit
     dependences) *)
  check_bool "grep: region ~ trace" true
    (abs_float ((w "grep" rp_rows /. w "grep" tp_rows) -. 1.0) < 0.05);
  check_bool "nroff: region ~ trace" true
    (abs_float ((w "nroff" rp_rows /. w "nroff" tp_rows) -. 1.0) < 0.05)

let test_fig8_shape () =
  let rows = Experiments.figure8 (Lazy.force h) in
  List.iter
    (fun (r : Experiments.fig8_row) ->
      let s issue conds =
        (List.find
           (fun (c : Experiments.fig8_cell) ->
             c.Experiments.issue = issue && c.Experiments.conds = conds)
           r.Experiments.cells)
          .Experiments.speedup
      in
      (* more allowed conditions never hurts at fixed width *)
      List.iter
        (fun issue ->
          check_bool
            (Format.asprintf "%s %d-issue monotone in conds"
               r.Experiments.f8_name issue)
            true
            (s issue 1 <= s issue 2 +. 0.01
            && s issue 2 <= s issue 4 +. 0.01
            && s issue 4 <= s issue 8 +. 0.01))
        [ 2; 4; 8 ];
      (* wider machines never lose at full speculation depth *)
      check_bool (r.Experiments.f8_name ^ " wider helps") true
        (s 2 8 <= s 4 8 +. 0.01 && s 4 8 <= s 8 8 +. 0.01);
      (* the paper: speculation past eight conditions adds little *)
      check_bool (r.Experiments.f8_name ^ " depth-8 saturates") true
        (s 8 8 < s 8 4 *. 1.1))
    rows

let test_shadow_ablation () =
  let rows = Experiments.shadow_ablation (Lazy.force h) in
  List.iter
    (fun (r : Experiments.shadow_row) ->
      check_bool (r.Experiments.sh_name ^ " loss non-negative") true
        (r.Experiments.sh_loss >= -0.001))
    rows;
  (* the paper's fn.1 (0-1% loss) holds for most programs; [li] is the
     adversarial case (both diamond arms write the accumulator) *)
  let small =
    List.filter (fun r -> r.Experiments.sh_loss < 0.01) rows |> List.length
  in
  check_bool "fn.1 holds on most workloads" true (small >= 4)

let test_validation_band () =
  let rows = Experiments.validation (Lazy.force h) in
  List.iter
    (fun (r : Experiments.validation_row) ->
      let ratio = float_of_int r.Experiments.v_estimated /. float_of_int r.Experiments.v_measured in
      check_bool
        (Format.asprintf "%s/%s ratio %.2f in band" r.Experiments.v_name
           r.Experiments.v_model ratio)
        true
        (ratio > 0.75 && ratio < 1.25))
    rows

let test_sweep_shape () =
  let rows = Experiments.predictability_sweep () in
  List.iter
    (fun (r : Experiments.sweep_row) ->
      check_bool "region >= trace everywhere" true
        (r.Experiments.sw_region >= r.Experiments.sw_trace -. 0.02))
    rows;
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  let gap (r : Experiments.sweep_row) =
    r.Experiments.sw_region -. r.Experiments.sw_trace
  in
  check_bool "gap shrinks as branches become predictable" true
    (gap first > gap last +. 0.1)

let test_related_spectrum () =
  let t = Experiments.related_work (Lazy.force h) in
  let g, _ = col t "guarded"
  and b, _ = col t "boosting"
  and rp, _ = col t "region-pred" in
  (* §2.2's narrative: buffering beats pipeline-only speculative state,
     and unconstrained predicating tops the spectrum *)
  check_bool "boosting above guarded" true (b > g);
  check_bool "region-pred tops the spectrum" true (rp >= b)

let test_geomean_total () =
  let eps = 1e-9 in
  let close msg want got = check_bool msg true (abs_float (want -. got) < eps) in
  (* empty product: an empty sweep aggregates to "no change", it must
     not collapse on a 0-length fold *)
  close "geomean [] = 1" 1.0 (Harness.geomean []);
  close "geomean singleton" 2.5 (Harness.geomean [ 2.5 ]);
  close "geomean pair" 2.0 (Harness.geomean [ 1.0; 4.0 ]);
  close "geomean triple" 2.0 (Harness.geomean [ 1.0; 2.0; 4.0 ])

(* Determinism: the experiments member of the Report document must be
   byte-identical whether the harness is sequential or sharded over a
   pool wider than the machine — cells are pure, results land by input
   position, and cache hits return deterministically-compiled values.
   This is the test-enforced form of `bench --json -j 1` = `-j 8`. *)
let test_parallel_determinism () =
  let names =
    [ "table2"; "table3"; "fig6"; "fig7"; "validation"; "counter"; "sweep" ]
  in
  let seq = Psb_obs.Json.to_string (Report.all ~names (Lazy.force h)) in
  let par =
    Psb_parallel.Pool.with_pool ~jobs:8 (fun pool ->
        let hp = Harness.create ~pool () in
        Psb_obs.Json.to_string (Report.all ~names hp))
  in
  Alcotest.(check string) "bytes identical at -j 1 vs -j 8" seq par

(* The harness routes every compile through one shared cache; repeating
   an experiment must hit instead of recompiling. *)
let test_cache_traffic () =
  let h = Lazy.force h in
  ignore (Experiments.figure6 h);
  let s1 = Harness.cache_stats h in
  check_bool "compiles happened" true (s1.Compile_cache.misses > 0);
  check_bool "entries match misses" true
    (s1.Compile_cache.entries = s1.Compile_cache.misses);
  ignore (Experiments.figure6 h);
  let s2 = Harness.cache_stats h in
  check_bool "rerun adds no entries" true
    (s2.Compile_cache.entries = s1.Compile_cache.entries);
  check_bool "rerun is all hits" true
    (s2.Compile_cache.hits >= s1.Compile_cache.hits + 24)

let test_limits () =
  let rows = Limits.analyze_suite () in
  List.iter
    (fun (r : Limits.row) ->
      (* the limit-study shape: basic blocks are ILP-starved, removing
         control dependences opens a large gap (paper §1) *)
      check_bool (r.Limits.name ^ " block IPC small") true
        (r.Limits.block_ipc > 0.3 && r.Limits.block_ipc < 3.0);
      check_bool (r.Limits.name ^ " oracle above block") true
        (r.Limits.oracle_ipc > r.Limits.block_ipc);
      check_bool (r.Limits.name ^ " headroom >= 2x") true (r.Limits.headroom >= 2.0))
    rows

let test_limits_value_oracle () =
  (* the value-prediction oracle only removes constraints relative to
     the unconstrained oracle, so its IPC must dominate on every
     workload — and actually open extra headroom somewhere *)
  let rows = Limits.analyze_suite () in
  List.iter
    (fun (r : Limits.row) ->
      check_bool
        (Printf.sprintf "%s value %.3f >= oracle %.3f" r.Limits.name
           r.Limits.value_ipc r.Limits.oracle_ipc)
        true
        (r.Limits.value_ipc >= r.Limits.oracle_ipc -. 1e-9);
      check_bool (r.Limits.name ^ " value_headroom consistent") true
        (abs_float
           (r.Limits.value_headroom -. (r.Limits.value_ipc /. r.Limits.oracle_ipc))
        < 1e-6))
    rows;
  check_bool "value prediction opens extra headroom on some workload" true
    (List.exists (fun (r : Limits.row) -> r.Limits.value_headroom > 1.05) rows)

(* ---------- benchmark regression gating ---------- *)

let bech_doc groups =
  Psb_obs.Json.Obj
    [
      ("schema", Psb_obs.Json.String "psb-bechamel-v1");
      ( "groups",
        Psb_obs.Json.List
          (List.map
             (fun (name, results) ->
               Psb_obs.Json.Obj
                 [
                   ("name", Psb_obs.Json.String name);
                   ( "results",
                     Psb_obs.Json.List
                       (List.map
                          (fun (n, ns) ->
                            Psb_obs.Json.Obj
                              [
                                ("name", Psb_obs.Json.String n);
                                ("ns_per_run", Psb_obs.Json.Float ns);
                                ( "minor_words_per_run",
                                  Psb_obs.Json.Float 0. );
                              ])
                          results) );
                 ])
             groups) );
    ]

let parse_doc groups =
  match Baseline.of_json (bech_doc groups) with
  | Ok d -> d
  | Error e -> Alcotest.failf "baseline doc: %s" e

let test_baseline_parse () =
  let d = parse_doc [ ("g", [ ("g/a", 10.); ("g/b", 20.) ]); ("h", []) ] in
  check_bool "groups" true (Baseline.groups d = [ "g"; "h" ]);
  (match Baseline.of_json (Psb_obs.Json.Obj [ ("schema", Psb_obs.Json.String "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong schema marker");
  (match Baseline.of_string "{\"schema\": \"psb-bechamel-v1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted missing groups");
  match Baseline.of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON"

(* the gate's first line of defence: every malformed baseline the bench
   could be pointed at must come back as [Error] (which [bench
   --baseline] turns into a diagnostic and exit 2), never an exception *)
let test_baseline_malformed_is_error () =
  let cases =
    [
      ("empty file", "");
      ("whitespace only", "   \n  ");
      ("wrong toplevel shape", "[1, 2]");
      ("truncated JSON", "{\"schema\": \"psb-bechamel-v1\", \"groups\": [");
      ("groups not a list", "{\"schema\": \"psb-bechamel-v1\", \"groups\": 3}");
      ( "non-numeric ns_per_run",
        "{\"schema\": \"psb-bechamel-v1\", \"groups\": [{\"name\": \"g\", \
         \"results\": [{\"name\": \"g/a\", \"ns_per_run\": \"fast\"}]}]}" );
    ]
  in
  List.iter
    (fun (what, text) ->
      match Baseline.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: accepted" what
      | exception e ->
          Alcotest.failf "%s: raised %s instead of returning Error" what
            (Printexc.to_string e))
    cases

let test_baseline_within_threshold () =
  let baseline = parse_doc [ ("g", [ ("g/a", 100.); ("g/b", 100.) ]) ] in
  (* +30% and -20%: both inside a 50% gate; an extra current-only
     benchmark is not a regression *)
  let current =
    parse_doc [ ("g", [ ("g/a", 130.); ("g/b", 80.); ("g/new", 999.) ]) ]
  in
  let r = Baseline.compare_docs ~threshold_pct:50. ~baseline ~current in
  check_bool "ok" true (Baseline.ok r);
  Alcotest.(check int) "rows follow the baseline" 2 (List.length r.Baseline.rows);
  let a = List.find (fun (row : Baseline.row) -> row.Baseline.name = "g/a") r.Baseline.rows in
  check_bool "delta computed" true (abs_float (a.Baseline.delta_pct -. 30.) < 1e-9);
  check_bool "not regressed" true (not a.Baseline.regressed)

let test_baseline_injected_regression () =
  let baseline = parse_doc [ ("g", [ ("g/a", 100.); ("g/b", 100.) ]) ] in
  (* g/a got 3x slower — past a 50% threshold the gate must fail *)
  let current = parse_doc [ ("g", [ ("g/a", 300.); ("g/b", 100.) ]) ] in
  let r = Baseline.compare_docs ~threshold_pct:50. ~baseline ~current in
  check_bool "gate fails" true (not (Baseline.ok r));
  let a = List.find (fun (row : Baseline.row) -> row.Baseline.name = "g/a") r.Baseline.rows in
  check_bool "culprit flagged" true a.Baseline.regressed;
  let b = List.find (fun (row : Baseline.row) -> row.Baseline.name = "g/b") r.Baseline.rows in
  check_bool "innocent row passes" true (not b.Baseline.regressed);
  (* the same 3x is fine under a 300% threshold *)
  check_bool "generous threshold passes" true
    (Baseline.ok (Baseline.compare_docs ~threshold_pct:300. ~baseline ~current))

let test_baseline_missing_benchmark () =
  let baseline = parse_doc [ ("g", [ ("g/a", 100.); ("g/gone", 100.) ]) ] in
  let current = parse_doc [ ("g", [ ("g/a", 100.) ]) ] in
  let r = Baseline.compare_docs ~threshold_pct:50. ~baseline ~current in
  check_bool "vanished benchmark fails the gate" true (not (Baseline.ok r));
  let gone = List.find (fun (row : Baseline.row) -> row.Baseline.name = "g/gone") r.Baseline.rows in
  check_bool "missing current" true (gone.Baseline.current_ns = None);
  (* the report document parses and carries the verdict *)
  match Psb_obs.Json.parse (Psb_obs.Json.to_string (Baseline.to_json r)) with
  | Error e -> Alcotest.failf "report json: %s" e
  | Ok v ->
      check_bool "ok member" true
        (Option.bind (Psb_obs.Json.member "ok" v) (function
           | Psb_obs.Json.Bool b -> Some b
           | _ -> None)
        = Some false)

(* The checked-in BENCH_*.json baselines must stay parseable: the CI
   gate reads them with this exact parser. *)
let test_baseline_checked_in_files () =
  (* dune runtest runs in _build/default/test (the copied root is one
     up); dune exec runs from the workspace root itself *)
  let has_bench d =
    try
      Array.exists
        (fun f -> String.length f >= 6 && String.sub f 0 6 = "BENCH_")
        (Sys.readdir d)
    with Sys_error _ -> false
  in
  let root = if has_bench "." then "." else ".." in
  let candidates =
    List.filter
      (fun f ->
        Filename.check_suffix f ".json"
        && String.length f >= 6
        && String.sub f 0 6 = "BENCH_")
      (try Array.to_list (Sys.readdir root) with Sys_error _ -> [])
  in
  check_bool "found checked-in baselines" true (candidates <> []);
  List.iter
    (fun f ->
      let path = Filename.concat root f in
      let contents = In_channel.with_open_text path In_channel.input_all in
      match Baseline.of_string contents with
      | Ok d -> check_bool (f ^ " has groups") true (Baseline.groups d <> [])
      | Error e -> Alcotest.failf "%s: %s" f e)
    candidates

(* ---------- report schema 4 ---------- *)

let test_report_speculation_member () =
  let doc = Report.all ~names:[ "table2" ] ~runtime:true (Lazy.force h) in
  let open Psb_obs.Json in
  (match member "schema_version" doc with
  | Some (Int 4) -> ()
  | other ->
      Alcotest.failf "schema_version: %s"
        (match other with Some v -> to_string v | None -> "missing"));
  let spec =
    Option.get
      (Option.bind (member "runtime" doc) (fun r -> member "speculation" r))
  in
  match spec with
  | Obj entries ->
      check_bool "one entry per workload" true (List.length entries >= 6);
      List.iter
        (fun (w, card) ->
          check_bool (w ^ " reconciles") true
            (member "reconciles" card = Some (Bool true));
          check_bool (w ^ " has cycles") true
            (match Option.bind (member "cycles" card) to_int with
            | Some c -> c > 0
            | None -> false);
          check_bool (w ^ " has regions") true
            (to_list (Option.get (member "regions" card)) <> []))
        entries
  | _ -> Alcotest.fail "speculation member is not an object"

(* ---------- rival ROB experiment ---------- *)

let test_rob_experiment () =
  let t = Experiments.rob_rival (Lazy.force h) in
  Alcotest.(check int) "six benchmarks" 6 (List.length t.Experiments.rob_rows);
  List.iter
    (fun (r : Experiments.rob_row) ->
      check_bool (r.Experiments.r_name ^ " architecturally identical") true
        r.Experiments.r_identical;
      check_bool (r.Experiments.r_name ^ " beats scalar") true
        (r.Experiments.r_speedup > 1.0))
    t.Experiments.rob_rows;
  check_bool "geomean > 1" true (t.Experiments.rob_geomean > 1.0);
  check_bool "rob registered in the dispatch" true
    (List.mem "rob" Report.experiment_names);
  match Report.experiment (Lazy.force h) "rob" with
  | Some json -> (
      match Psb_obs.Json.member "rows" json with
      | Some (Psb_obs.Json.List rows) ->
          Alcotest.(check int) "json rows" 6 (List.length rows)
      | _ -> Alcotest.fail "rob report member has no rows")
  | None -> Alcotest.fail "rob missing from the experiment dispatch"

let test_hwcost_json_rob_fields () =
  match Report.experiment (Lazy.force h) "hwcost" with
  | Some json ->
      List.iter
        (fun f ->
          check_bool (f ^ " present") true (Psb_obs.Json.member f json <> None))
        [
          "rob_entry_transistors"; "rob_rename_transistors";
          "rob_cam_transistors"; "rob_overhead";
        ]
  | None -> Alcotest.fail "hwcost missing from the experiment dispatch"

let () =
  Alcotest.run "eval"
    [
      ( "tables",
        [
          Alcotest.test_case "table2" `Quick test_table2;
          Alcotest.test_case "table3 shape" `Quick test_table3_shape;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig6 ordering" `Slow test_fig6_ordering;
          Alcotest.test_case "fig7 ordering" `Slow test_fig7_ordering;
          Alcotest.test_case "fig8 shape" `Slow test_fig8_shape;
        ] );
      ( "limits",
        [
          Alcotest.test_case "headroom" `Quick test_limits;
          Alcotest.test_case "value oracle dominates" `Quick
            test_limits_value_oracle;
        ] );
      ( "harness",
        [
          Alcotest.test_case "geomean is total" `Quick test_geomean_total;
          Alcotest.test_case "cache traffic" `Slow test_cache_traffic;
          Alcotest.test_case "-j 1 = -j 8 byte-identical" `Slow
            test_parallel_determinism;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "parse" `Quick test_baseline_parse;
          Alcotest.test_case "malformed baselines are diagnostics" `Quick
            test_baseline_malformed_is_error;
          Alcotest.test_case "within threshold" `Quick
            test_baseline_within_threshold;
          Alcotest.test_case "injected regression fails" `Quick
            test_baseline_injected_regression;
          Alcotest.test_case "missing benchmark fails" `Quick
            test_baseline_missing_benchmark;
          Alcotest.test_case "checked-in files parse" `Quick
            test_baseline_checked_in_files;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema 4 speculation" `Slow
            test_report_speculation_member;
          Alcotest.test_case "rob experiment" `Quick test_rob_experiment;
          Alcotest.test_case "hwcost rob fields" `Quick
            test_hwcost_json_rob_fields;
        ] );
      ( "related",
        [ Alcotest.test_case "2.2 spectrum" `Slow test_related_spectrum ] );
      ( "ablations",
        [
          Alcotest.test_case "shadow fn.1" `Slow test_shadow_ablation;
          Alcotest.test_case "estimate vs measured" `Slow test_validation_band;
          Alcotest.test_case "predictability sweep" `Slow test_sweep_shape;
        ] );
    ]
