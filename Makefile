.PHONY: all build test fmt doc bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# API documentation (needs odoc; CI treats odoc warnings as errors).
doc:
	dune build @doc
	@echo open _build/default/_doc/_html/index.html

bench:
	dune exec bench/main.exe

# Machine-readable results (Report schema v1) for archiving in CI.
bench-json:
	mkdir -p _artifacts
	dune exec bench/main.exe -- --json > _artifacts/results.json
	@echo wrote _artifacts/results.json

clean:
	dune clean
	rm -rf _artifacts
