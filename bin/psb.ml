(* psb — command-line front end for the predicated-state-buffering stack.

   Subcommands:
     list                   available workloads and models
     run WORKLOAD           scalar reference run (cycles, output, profile)
     compile WORKLOAD       compile and dump units/schedules/predicated code
     sim WORKLOAD           compile and execute on the VLIW machine
     rob [WORKLOAD]         run on the out-of-order ROB backend, check vs scalar
     trace WORKLOAD         emit a run as Chrome trace-event JSON
     timeline WORKLOAD      human-readable machine event log
     profile WORKLOAD       cycle-accounting breakdown, hot blocks, metrics
     speculate WORKLOAD     per-region speculation scorecards
     verify [WORKLOAD]      static speculation-safety check of compiled code
     speedup WORKLOAD       all models side by side
     exec FILE.psb          assemble and run a .psb file
     pexec FILE.ppsb        run hand-written predicated code on the machine
     fuzz                   whole-pipeline differential fuzzing
     experiments [NAME..]   regenerate the paper's tables and figures *)

open Cmdliner
open Psb_isa
open Psb_compiler
open Psb_workloads
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
module Vliw_trace = Psb_machine.Vliw_trace
module Pcode = Psb_machine.Pcode

let wconv =
  Arg.conv ~docv:"WORKLOAD"
    ( (fun s ->
        match Suite.find s with
        | w -> Ok w
        | exception Not_found ->
            let names =
              List.map
                (fun (w : Dsl.t) -> w.Dsl.name)
                (Suite.all @ Suite.extras)
            in
            Error
              (`Msg
                (Printf.sprintf
                   "unknown workload %s; available: %s (see `psb list`)" s
                   (String.concat ", " names)))),
      fun ppf (w : Dsl.t) -> Format.pp_print_string ppf w.Dsl.name )

let workload_arg =
  Arg.(required & pos 0 (some wconv) None & info [] ~docv:"WORKLOAD")

let mconv =
  Arg.conv ~docv:"MODEL"
    ( (fun s ->
        match Model.find s with
        | Ok m -> Ok m
        | Error msg -> Error (`Msg (msg ^ " — see `psb list`"))),
      Model.pp )

let model_arg =
  Arg.(
    value
    & opt mconv Model.region_pred
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Execution model (see `psb list`).")

let issue_arg =
  Arg.(
    value & opt int 4
    & info [ "issue" ] ~docv:"N" ~doc:"Issue width (full-issue machine if not 4).")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run copy propagation, DCE and jump threading first.")

let preoptimize flag program =
  if flag then Transform.jump_thread (Transform.optimize program) else program

let machine_of_issue issue =
  if issue = 4 then Machine_model.base
  else Machine_model.full_issue ~width:issue ~max_spec_conds:4

(* ----- list ----- *)

let list_cmd =
  let run () =
    Format.printf "workloads:@.";
    List.iter
      (fun (w : Dsl.t) ->
        Format.printf "  %-10s %s@." w.Dsl.name w.Dsl.description)
      Suite.all;
    Format.printf "@.models:@.";
    List.iter
      (fun (m : Model.t) ->
        Format.printf "  %-14s scope=%s%s%s@." m.Model.name
          (match m.Model.scope with Model.Trace -> "trace" | Model.Region -> "region")
          (if m.Model.branch_elim then ", predicated" else ", branches kept")
          (if m.Model.executable then ", executable" else ", estimated"))
      Model.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and execution models")
    Term.(const run $ const ())

(* ----- run ----- *)

let run_cmd =
  let run (w : Dsl.t) =
    let res = Interp.run ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) w.Dsl.program in
    Format.printf "workload:   %s@." w.Dsl.name;
    Format.printf "outcome:    %a@." Interp.pp_outcome res.Interp.outcome;
    Format.printf "cycles:     %d@." res.Interp.cycles;
    Format.printf "instrs:     %d@." res.Interp.dyn_instrs;
    Format.printf "output:     %s@."
      (String.concat " " (List.map string_of_int res.Interp.output));
    let t = Trace.of_result w.Dsl.program res in
    Format.printf "branches:   %d (%.1f%% predicted by profile)@."
      (Trace.dynamic_branches t)
      (100. *. Trace.prediction_accuracy t)
  in
  Cmd.v (Cmd.info "run" ~doc:"Scalar reference run of a workload")
    Term.(const run $ workload_arg)

(* ----- compile ----- *)

let compile_cmd =
  let run (w : Dsl.t) model issue dump_code =
    let machine = machine_of_issue issue in
    let _, profile =
      Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let compiled = Driver.compile ~model ~machine ~profile w.Dsl.program in
    Format.printf "model %s on %a@." model.Model.name Machine_model.pp machine;
    Format.printf "%d units, %d static slots@.@."
      (Label.Map.cardinal compiled.Driver.units)
      (Driver.code_size compiled);
    Label.Map.iter
      (fun _ (s : Sched.t) -> Format.printf "%a@." Sched.pp s)
      compiled.Driver.schedules;
    match (dump_code, compiled.Driver.pcode) with
    | true, Some code -> Format.printf "@.%a@." Pcode.pp code
    | true, None -> Format.printf "@.(model is not executable: no VLIW code)@."
    | false, _ -> ()
  in
  let dump =
    Arg.(value & flag & info [ "code" ] ~doc:"Also dump the predicated VLIW code.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a workload and dump units and schedules")
    Term.(const run $ workload_arg $ model_arg $ issue_arg $ dump)

(* ----- sim ----- *)

let sim_cmd =
  let run (w : Dsl.t) model issue opt =
    let machine = machine_of_issue issue in
    let program = preoptimize opt w.Dsl.program in
    let scalar, profile =
      Driver.profile_of program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let compiled = Driver.compile ~model ~machine ~profile program in
    let res = Driver.run_vliw compiled ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ()) in
    let s = res.Vliw_sim.stats in
    Format.printf "workload:      %s  (model %s)@." w.Dsl.name model.Model.name;
    Format.printf "outcome:       %a@." Interp.pp_outcome res.Vliw_sim.outcome;
    Format.printf "cycles:        %d (scalar %d, speedup %.2fx)@."
      res.Vliw_sim.cycles scalar.Interp.cycles
      (float_of_int scalar.Interp.cycles /. float_of_int res.Vliw_sim.cycles);
    Format.printf "bundles:       %d (%.2f ops/cycle)@." s.Vliw_sim.dyn_bundles
      (float_of_int s.Vliw_sim.dyn_ops /. float_of_int (max 1 res.Vliw_sim.cycles));
    Format.printf "speculative:   %d issued, %d commits, %d squashes@."
      s.Vliw_sim.spec_ops s.Vliw_sim.commits s.Vliw_sim.squashes;
    Format.printf "exceptions:    %d handled, %d recoveries (%d cycles)@."
      res.Vliw_sim.faults_handled s.Vliw_sim.recoveries s.Vliw_sim.recovery_cycles;
    Format.printf "shadow:        %d conflicts, %d stall cycles@."
      s.Vliw_sim.shadow_conflicts s.Vliw_sim.conflict_stall_cycles;
    Format.printf "store buffer:  max occupancy %d@." s.Vliw_sim.sb_max_occupancy;
    Format.printf "output:        %s@."
      (String.concat " " (List.map string_of_int res.Vliw_sim.output));
    if res.Vliw_sim.output <> scalar.Interp.output then begin
      Format.printf "ERROR: output differs from the scalar reference!@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Execute a workload on the predicating VLIW machine")
    Term.(const run $ workload_arg $ model_arg $ issue_arg $ optimize_arg)

(* ----- rob: the rival out-of-order backend ----- *)

let rob_cmd =
  let module Rob_sim = Psb_machine.Rob_sim in
  let run w_opt issue json =
    let machine = machine_of_issue issue in
    let check (w : Dsl.t) =
      let scalar_mem = w.Dsl.make_mem () in
      let scalar =
        Interp.run ~record_trace:false ~regs:w.Dsl.regs ~mem:scalar_mem
          w.Dsl.program
      in
      let rob_mem = w.Dsl.make_mem () in
      let res =
        Rob_sim.run ~model:machine ~regs:w.Dsl.regs ~mem:rob_mem w.Dsl.program
      in
      let ok =
        scalar.Interp.outcome = res.Rob_sim.outcome
        && scalar.Interp.output = res.Rob_sim.output
        && Reg.Map.equal Int.equal scalar.Interp.regs res.Rob_sim.regs
        && scalar.Interp.faults_handled = res.Rob_sim.faults_handled
        && Memory.equal scalar_mem rob_mem
        && Rob_sim.breakdown_total res.Rob_sim.breakdown = res.Rob_sim.cycles
      in
      (w, scalar, res, ok)
    in
    let ws = match w_opt with Some w -> [ w ] | None -> Suite.all in
    let rows = List.map check ws in
    if json then begin
      let open Psb_obs.Json in
      let doc =
        List
          (List.map
             (fun ((w : Dsl.t), (scalar : Interp.result), (r : Rob_sim.result), ok) ->
               obj
                 [
                   ("workload", String w.Dsl.name);
                   ("scalar_cycles", Int scalar.Interp.cycles);
                   ("rob_cycles", Int r.Rob_sim.cycles);
                   ( "speedup",
                     Float
                       (float_of_int scalar.Interp.cycles
                       /. float_of_int (max 1 r.Rob_sim.cycles)) );
                   ("committed", Int r.Rob_sim.stats.Rob_sim.committed);
                   ("squashed", Int r.Rob_sim.stats.Rob_sim.squashed);
                   ("mispredicts", Int r.Rob_sim.stats.Rob_sim.mispredicts);
                   ( "cycle_breakdown",
                     Obj
                       (List.map
                          (fun (k, v) -> (k, Int v))
                          (Rob_sim.breakdown_fields r.Rob_sim.breakdown)) );
                   ("architecturally_identical", Bool ok);
                 ])
             rows)
      in
      print_endline (to_string doc)
    end
    else begin
      Format.printf "%-10s %10s %10s %8s %6s %11s %8s  %s@." "workload"
        "scalar" "rob" "speedup" "ipc" "mispredicts" "squashed" "identical";
      List.iter
        (fun ((w : Dsl.t), (scalar : Interp.result), (r : Rob_sim.result), ok) ->
          Format.printf "%-10s %10d %10d %7.2fx %6.2f %11d %8d  %s@."
            w.Dsl.name scalar.Interp.cycles r.Rob_sim.cycles
            (float_of_int scalar.Interp.cycles
            /. float_of_int (max 1 r.Rob_sim.cycles))
            (float_of_int r.Rob_sim.dyn_instrs
            /. float_of_int (max 1 r.Rob_sim.cycles))
            r.Rob_sim.stats.Rob_sim.mispredicts
            r.Rob_sim.stats.Rob_sim.squashed
            (if ok then "yes" else "NO"))
        rows
    end;
    if List.exists (fun (_, _, _, ok) -> not ok) rows then begin
      Format.eprintf
        "ERROR: ROB backend diverged from the scalar reference@.";
      exit 1
    end
  in
  let workload_opt =
    Arg.(value & pos 0 (some wconv) None & info [] ~docv:"WORKLOAD")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON document instead of text.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs $(i,WORKLOAD) (default: the whole suite) on the rival \
         out-of-order reorder-buffer backend and checks its architectural \
         results — outcome, output, final registers, final memory, \
         handled faults — are byte-identical to the scalar reference \
         interpreter. Exits non-zero on any divergence, so it doubles as \
         a CI lane.";
    ]
  in
  Cmd.v
    (Cmd.info "rob" ~man
       ~doc:
         "Execute workloads on the out-of-order ROB backend and check them \
          against the scalar reference")
    Term.(const run $ workload_opt $ issue_arg $ json)

(* ----- timeline: human-readable machine event log ----- *)

let timeline_cmd =
  let run (w : Dsl.t) model limit =
    let machine = Machine_model.base in
    let _, profile =
      Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let compiled = Driver.compile ~model ~machine ~profile w.Dsl.program in
    let shown = ref 0 in
    let on_event cycle ev =
      if !shown < limit then begin
        Format.printf "cycle %5d  %a@." cycle Vliw_sim.pp_event ev;
        incr shown;
        if !shown = limit then Format.printf "... (truncated; use -n)@."
      end
    in
    match compiled.Driver.pcode with
    | None -> Format.printf "model %s is not executable@." model.Model.name
    | Some code ->
        let res =
          Vliw_sim.run ~on_event ~model:machine ~regs:w.Dsl.regs
            ~mem:(w.Dsl.make_mem ()) code
        in
        Format.printf "%a in %d cycles@." Interp.pp_outcome res.Vliw_sim.outcome
          res.Vliw_sim.cycles
  in
  let limit =
    Arg.(value & opt int 60 & info [ "n" ] ~docv:"N" ~doc:"Events to show.")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Show the machine's commit/squash/recovery timeline for a workload")
    Term.(const run $ workload_arg $ model_arg $ limit)

(* ----- trace: Chrome trace-event JSON ----- *)

let trace_cmd =
  let run (w : Dsl.t) model issue opt out limit =
    let machine = machine_of_issue issue in
    let program = preoptimize opt w.Dsl.program in
    let _, profile =
      Driver.profile_of program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let compiled = Driver.compile ~model ~machine ~profile program in
    if compiled.Driver.pcode = None then begin
      Format.eprintf "model %s is not executable; pick one of:@." model.Model.name;
      List.iter
        (fun (m : Model.t) ->
          if m.Model.executable then Format.eprintf "  %s@." m.Model.name)
        Model.all;
      exit 1
    end;
    let sink = Vliw_trace.create ?limit ~model:machine () in
    let res =
      Driver.run_vliw compiled
        ~on_event:(Vliw_trace.on_event sink)
        ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let json = Psb_obs.Json.to_string (Vliw_trace.to_json ~result:res sink) in
    (match out with
    | None -> print_endline json
    | Some path ->
        let oc =
          try open_out path
          with Sys_error m ->
            Format.eprintf "cannot write trace: %s@." m;
            exit 1
        in
        output_string oc json;
        output_char oc '\n';
        close_out oc;
        Format.eprintf "wrote %s (%a in %d cycles)@." path Interp.pp_outcome
          res.Vliw_sim.outcome res.Vliw_sim.cycles);
    if Vliw_trace.truncated sink then
      Format.eprintf "warning: trace truncated at the event limit (--limit)@."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace to $(docv) instead of standard output.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:"Cap the number of recorded trace events (default 2000000).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles $(i,WORKLOAD), executes it on the VLIW machine, and \
         emits the run as Chrome trace-event JSON. Load the file in \
         Perfetto (https://ui.perfetto.dev) or chrome://tracing; one \
         simulated cycle renders as one microsecond.";
      `P
        "Tracks: $(b,issue) shows one span per issued bundle; \
         $(b,alu)/$(b,br)/$(b,ld)/$(b,st) lanes show each executed \
         operation for the length of its latency (speculative ops are \
         suffixed $(b,.s)); $(b,recovery) spans each exception \
         re-execution episode; $(b,ccr), $(b,shadow-regfile) and \
         $(b,store-buffer) carry instant markers for condition writes, \
         speculative commits/squashes and store traffic, plus a \
         store-buffer occupancy counter series.";
      `P
        "The final outcome, cycle count and cycle-accounting breakdown \
         travel in the document's $(b,metadata) object.";
    ]
  in
  Cmd.v
    (Cmd.info "trace" ~man
       ~doc:"Emit a run as Chrome trace-event JSON (Perfetto-loadable)")
    Term.(
      const run $ workload_arg $ model_arg $ issue_arg $ optimize_arg $ out
      $ limit)

(* ----- speculate: per-region speculation scorecards ----- *)

let speculate_cmd =
  let run (w : Dsl.t) model issue opt json capacity rob =
    let machine = machine_of_issue issue in
    let program = preoptimize opt w.Dsl.program in
    if rob then begin
      let events = Psb_obs.Events.create ~capacity () in
      let res =
        Psb_machine.Rob_sim.run ~events ~model:machine ~regs:w.Dsl.regs
          ~mem:(w.Dsl.make_mem ()) program
      in
      let prof =
        Psb_obs.Spec_profile.of_events ~total_cycles:res.Psb_machine.Rob_sim.cycles
          events
      in
      if json then begin
        let open Psb_obs.Json in
        let doc =
          obj
            [
              ("workload", String w.Dsl.name);
              ("model", String "rob");
              ("cycles", Int res.Psb_machine.Rob_sim.cycles);
              ( "cycle_breakdown",
                Obj
                  (List.map
                     (fun (k, v) -> (k, Int v))
                     (Psb_machine.Rob_sim.breakdown_fields
                        res.Psb_machine.Rob_sim.breakdown)) );
              ("speculation", Psb_obs.Spec_profile.to_json prof);
            ]
        in
        print_endline (to_string doc)
      end
      else begin
        Format.printf "workload: %s  (out-of-order ROB backend), %a in %d cycles@.@."
          w.Dsl.name Interp.pp_outcome res.Psb_machine.Rob_sim.outcome
          res.Psb_machine.Rob_sim.cycles;
        Format.printf "%a@." Psb_obs.Spec_profile.pp prof
      end;
      exit 0
    end;
    let _, profile =
      Driver.profile_of program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let compiled = Driver.compile ~model ~machine ~profile program in
    if compiled.Driver.pcode = None then begin
      Format.eprintf "model %s is not executable; pick one of:@." model.Model.name;
      List.iter
        (fun (m : Model.t) ->
          if m.Model.executable then Format.eprintf "  %s@." m.Model.name)
        Model.all;
      exit 1
    end;
    let events = Psb_obs.Events.create ~capacity () in
    let res =
      Driver.run_vliw compiled ~events ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    let prof =
      Psb_obs.Spec_profile.of_events ~total_cycles:res.Vliw_sim.cycles events
    in
    if json then begin
      let open Psb_obs.Json in
      let doc =
        obj
          [
            ("workload", String w.Dsl.name);
            ("model", String model.Model.name);
            ("cycles", Int res.Vliw_sim.cycles);
            ( "cycle_breakdown",
              Obj
                (List.map
                   (fun (k, v) -> (k, Int v))
                   (Vliw_sim.breakdown_fields res.Vliw_sim.breakdown)) );
            ("speculation", Psb_obs.Spec_profile.to_json prof);
          ]
      in
      print_endline (to_string doc)
    end
    else begin
      Format.printf "workload: %s  (model %s), %a in %d cycles@.@." w.Dsl.name
        model.Model.name Interp.pp_outcome res.Vliw_sim.outcome
        res.Vliw_sim.cycles;
      Format.printf "%a@." Psb_obs.Spec_profile.pp prof
    end
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON document instead of text.")
  in
  let capacity =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Event ring capacity (default 1048576). The scorecards only \
             reconcile with the machine's cycle accounting when no events \
             are dropped.")
  in
  let rob =
    Arg.(
      value & flag
      & info [ "rob" ]
          ~doc:
            "Profile the rival out-of-order reorder-buffer backend instead \
             of the predicating VLIW machine (the scorecards then count \
             reorder-buffer commits and squashes).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles and runs $(i,WORKLOAD) with the structured speculation \
         event log attached, then folds the stream into per-region \
         scorecards: residency cycles, useful vs wasted issue cycles, \
         shadow-register and store-buffer commit/squash outcomes, \
         forwarding hits, D-cache flushes, deferred/raised faults, and \
         buffered-value lifetime / store-buffer dwell quantiles.";
      `P
        "The final line reports reconciliation: per-region residencies \
         telescope to exactly the machine's cycle count, useful/wasted \
         sums match the cycle-accounting breakdown, and no events were \
         dropped. See docs/OBSERVABILITY.md for the schema.";
    ]
  in
  Cmd.v
    (Cmd.info "speculate" ~man
       ~doc:"Per-region speculation scorecards (squash rates, lifetimes)")
    Term.(
      const run $ workload_arg $ model_arg $ issue_arg $ optimize_arg $ json
      $ capacity $ rob)

(* ----- profile: where did the cycles go ----- *)

let profile_cmd =
  let run (w : Dsl.t) model issue opt json rob =
    let machine = machine_of_issue issue in
    let program = preoptimize opt w.Dsl.program in
    let metrics = Psb_obs.Metrics.create () in
    let scalar =
      Psb_machine.Scalar_sim.run ~metrics ~record_trace:true ~regs:w.Dsl.regs
        ~mem:(w.Dsl.make_mem ()) program
    in
    if rob then begin
      let module Rob_sim = Psb_machine.Rob_sim in
      let res =
        Rob_sim.run ~metrics ~model:machine ~regs:w.Dsl.regs
          ~mem:(w.Dsl.make_mem ()) program
      in
      let trace = Trace.of_result program scalar in
      let hot = Trace.hot_blocks ~limit:10 trace in
      if json then begin
        let open Psb_obs.Json in
        let doc =
          obj
            [
              ("workload", String w.Dsl.name);
              ("model", String "rob");
              ("scalar_cycles", Int scalar.Interp.cycles);
              ("rob_cycles", Int res.Rob_sim.cycles);
              ( "cycle_breakdown",
                Obj
                  (List.map
                     (fun (k, v) -> (k, Int v))
                     (Rob_sim.breakdown_fields res.Rob_sim.breakdown)) );
              ( "hot_blocks",
                List
                  (List.map
                     (fun (l, n) ->
                       Obj
                         [ ("label", String (Label.name l)); ("count", Int n) ])
                     hot) );
              ("metrics", Psb_obs.Metrics.to_json metrics);
            ]
        in
        print_endline (to_string doc)
      end
      else begin
        let s = res.Rob_sim.stats in
        Format.printf "workload:      %s  (out-of-order ROB backend)@."
          w.Dsl.name;
        Format.printf "scalar:        %d cycles@." scalar.Interp.cycles;
        Format.printf "rob:           %d cycles (%.2fx)@.@." res.Rob_sim.cycles
          (float_of_int scalar.Interp.cycles
          /. float_of_int (max 1 res.Rob_sim.cycles));
        Format.printf "%a@.@." Rob_sim.pp_breakdown res.Rob_sim.breakdown;
        Format.printf
          "frontend:      %d fetched, %d committed, %d squashed@."
          s.Rob_sim.fetched s.Rob_sim.committed s.Rob_sim.squashed;
        Format.printf "branches:      %d, %d mispredicted@." s.Rob_sim.branches
          s.Rob_sim.mispredicts;
        Format.printf
          "memory:        %d loads forwarded, %d fault restarts@."
          s.Rob_sim.loads_forwarded s.Rob_sim.fault_restarts;
        Format.printf "buffer:        max occupancy %d, %d full stalls@."
          s.Rob_sim.rob_max_occupancy s.Rob_sim.rob_full_stalls;
        Format.printf "@.metrics:@.%a@." Psb_obs.Metrics.pp metrics
      end;
      exit 0
    end;
    let trace = Trace.of_result program scalar in
    let profile =
      Psb_cfg.Branch_predict.of_trace (Psb_cfg.Cfg.of_program program) trace
    in
    let cache = Compile_cache.create () in
    let compiled =
      Driver.compile ~metrics ~cache ~model ~machine ~profile program
    in
    Compile_cache.observe_metrics cache metrics;
    let res =
      if compiled.Driver.pcode = None then None
      else
        Some
          (Driver.run_vliw compiled ~metrics ~regs:w.Dsl.regs
             ~mem:(w.Dsl.make_mem ()))
    in
    let hot = Trace.hot_blocks ~limit:10 trace in
    if json then begin
      let open Psb_obs.Json in
      let doc =
        obj
          [
            ("workload", String w.Dsl.name);
            ("model", String model.Model.name);
            ("scalar_cycles", Int scalar.Interp.cycles);
            ( "vliw_cycles",
              match res with
              | Some r -> Int r.Vliw_sim.cycles
              | None -> Null );
            ( "cycle_breakdown",
              match res with
              | Some r ->
                  Obj
                    (List.map
                       (fun (k, v) -> (k, Int v))
                       (Vliw_sim.breakdown_fields r.Vliw_sim.breakdown))
              | None -> Null );
            ( "hot_blocks",
              List
                (List.map
                   (fun (l, n) ->
                     Obj
                       [
                         ("label", String (Label.name l)); ("count", Int n);
                       ])
                   hot) );
            ("metrics", Psb_obs.Metrics.to_json metrics);
          ]
      in
      print_endline (to_string doc)
    end
    else begin
      Format.printf "workload:      %s  (model %s)@." w.Dsl.name
        model.Model.name;
      Format.printf "scalar:        %d cycles@." scalar.Interp.cycles;
      (match res with
      | Some r ->
          Format.printf "vliw:          %d cycles (%.2fx)@.@." r.Vliw_sim.cycles
            (float_of_int scalar.Interp.cycles
            /. float_of_int r.Vliw_sim.cycles);
          Format.printf "%a@." Vliw_sim.pp_breakdown r.Vliw_sim.breakdown
      | None ->
          Format.printf "vliw:          (model %s is estimate-only)@."
            model.Model.name);
      Format.printf "@.hot blocks (scalar profile):@.";
      List.iter
        (fun (l, n) -> Format.printf "  %-12s %8d executions@." (Label.name l) n)
        hot;
      (* Quantile summary of the machine's per-cycle distributions. The
         find-or-create leaves buckets unspecified so it never conflicts
         with the layout the simulator created them with. *)
      let quantiles name title =
        let h = Psb_obs.Metrics.histogram metrics name in
        if Psb_obs.Metrics.histogram_count h > 0 then
          let q p =
            Option.value (Psb_obs.Metrics.histogram_quantile h p)
              ~default:Float.nan
          in
          Format.printf "  %-22s p50=%g p90=%g p99=%g@." title (q 0.5) (q 0.9)
            (q 0.99)
      in
      Format.printf "@.distributions:@.";
      quantiles "vliw_sb_occupancy" "store-buffer occupancy";
      quantiles "vliw_bundle_ops" "executed ops/bundle";
      quantiles "compile_seconds" "compile time (s)";
      Format.printf "@.metrics:@.%a@." Psb_obs.Metrics.pp metrics
    end
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON document instead of text.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles and runs $(i,WORKLOAD) with the metrics registry \
         attached to every stage, then reports: the cycle-accounting \
         breakdown (every simulated cycle charged to exactly one of \
         useful issue, squashed issue, shadow-conflict stall, \
         store-buffer stall, recovery re-execution or region-transition \
         penalty — the categories sum to the total cycle count); the \
         hottest basic blocks of the scalar profile; and the collected \
         metrics — compiler pass timings, schedule densities, dynamic \
         operation classes and store-buffer occupancy histograms.";
      `P
        "With $(b,--rob) the workload instead runs on the rival \
         out-of-order reorder-buffer backend, with its own accounting \
         categories (fault restarts, commit, redirect flushes, memory \
         waits, frontend refills, execute waits).";
    ]
  in
  let rob =
    Arg.(
      value & flag
      & info [ "rob" ]
          ~doc:
            "Profile the out-of-order reorder-buffer backend instead of \
             compiling for the VLIW machine.")
  in
  Cmd.v
    (Cmd.info "profile" ~man
       ~doc:"Cycle-accounting breakdown, hot blocks and metrics for a workload")
    Term.(
      const run $ workload_arg $ model_arg $ issue_arg $ optimize_arg $ json
      $ rob)

(* ----- speedup ----- *)

let speedup_cmd =
  let run (w : Dsl.t) issue =
    let machine = machine_of_issue issue in
    let scalar, profile =
      Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
    in
    Format.printf "%s: scalar %d cycles@." w.Dsl.name scalar.Interp.cycles;
    List.iter
      (fun (m : Model.t) ->
        let compiled = Driver.compile ~model:m ~machine ~profile w.Dsl.program in
        let est =
          Driver.estimate_cycles compiled w.Dsl.program
            ~block_trace:scalar.Interp.block_trace
        in
        let measured =
          if m.Model.executable then
            let r =
              Driver.run_vliw compiled ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
            in
            Format.asprintf " (measured %d, %.2fx)" r.Vliw_sim.cycles
              (float_of_int scalar.Interp.cycles /. float_of_int r.Vliw_sim.cycles)
          else ""
        in
        Format.printf "  %-14s %8d cycles  %.2fx%s@." m.Model.name est
          (float_of_int scalar.Interp.cycles /. float_of_int est)
          measured)
      Model.all
  in
  Cmd.v
    (Cmd.info "speedup" ~doc:"Compare all execution models on one workload")
    Term.(const run $ workload_arg $ issue_arg)

(* ----- exec: run an assembly file ----- *)

let exec_cmd =
  let run path model =
    let text =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Asm.parse text with
    | Error m ->
        Format.printf "parse error: %s@." m;
        exit 1
    | Ok program ->
        let mem () = Memory.create ~size:4096 in
        let scalar, profile = Driver.profile_of program ~regs:[] ~mem:(mem ()) in
        Format.printf "scalar: %a, %d cycles, output %s@." Interp.pp_outcome
          scalar.Interp.outcome scalar.Interp.cycles
          (String.concat " " (List.map string_of_int scalar.Interp.output));
        if model.Model.executable then begin
          let compiled =
            Driver.compile ~model ~machine:Machine_model.base ~profile program
          in
          let vliw = Driver.run_vliw compiled ~regs:[] ~mem:(mem ()) in
          Format.printf "%s: %a, %d cycles (%.2fx), output %s@."
            model.Model.name Interp.pp_outcome vliw.Vliw_sim.outcome
            vliw.Vliw_sim.cycles
            (float_of_int scalar.Interp.cycles /. float_of_int vliw.Vliw_sim.cycles)
            (String.concat " " (List.map string_of_int vliw.Vliw_sim.output))
        end
        else Format.printf "(model %s is estimate-only)@." model.Model.name
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.psb")
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Assemble and run a .psb file (scalar + predicated)")
    Term.(const run $ path $ model_arg)

(* ----- pexec: run a predicated-code file on the machine ----- *)

let pexec_cmd =
  let run path =
    let text =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Psb_machine.Pcode_text.parse text with
    | Error m ->
        Format.printf "parse error: %s@." m;
        exit 1
    | Ok code ->
        let mem = Memory.create ~size:4096 in
        (* modest default inputs so Figure-4-style files have data *)
        Memory.poke mem 40 5;
        Memory.poke mem 6 100;
        Memory.poke mem 64 55;
        let regs =
          [
            (Psb_isa.Reg.make 2, 40); (Psb_isa.Reg.make 4, 10);
            (Psb_isa.Reg.make 5, 7); (Psb_isa.Reg.make 7, 99);
            (Psb_isa.Reg.make 8, 64);
          ]
        in
        let events = ref [] in
        let on_event c e = events := (c, e) :: !events in
        let res = Vliw_sim.run ~on_event ~model:Machine_model.base ~regs ~mem code in
        Format.printf "outcome: %a in %d cycles, output %s@." Interp.pp_outcome
          res.Vliw_sim.outcome res.Vliw_sim.cycles
          (String.concat " " (List.map string_of_int res.Vliw_sim.output));
        Format.printf "timeline:@.";
        List.iter
          (fun (c, e) -> Format.printf "  cycle %2d  %a@." c Vliw_sim.pp_event e)
          (List.rev !events)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ppsb") in
  Cmd.v
    (Cmd.info "pexec"
       ~doc:"Run a predicated-code (.ppsb) file on the machine, with its \
             commit/squash timeline")
    Term.(const run $ path)

(* ----- verify: static speculation-safety check ----- *)

let verify_cmd =
  let run wopt mopt issue opt json =
    let machine = machine_of_issue issue in
    let workloads =
      match wopt with Some w -> [ w ] | None -> Suite.all @ Suite.extras
    in
    let models =
      match mopt with
      | Some (m : Model.t) ->
          if not m.Model.executable then begin
            Format.eprintf
              "psb verify: model %s is estimate-only (no predicated code to \
               verify)@."
              m.Model.name;
            exit 2
          end;
          [ m ]
      | None ->
          List.filter
            (fun (m : Model.t) -> m.Model.executable)
            (Model.trace_pred_counter :: Model.all)
    in
    let results =
      List.concat_map
        (fun (w : Dsl.t) ->
          let program = preoptimize opt w.Dsl.program in
          let _, profile =
            Driver.profile_of program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
          in
          List.map
            (fun (model : Model.t) ->
              (* compile unverified, then run the verifier ourselves: the
                 point of this command is the report, not the exception
                 the driver would turn it into *)
              let compiled =
                Driver.compile ~verify:false ~model ~machine ~profile program
              in
              let report =
                match compiled.Driver.pcode with
                | Some code -> Psb_verify.Verify.run machine code
                | None -> assert false (* executable models emit pcode *)
              in
              (w, model, report))
            models)
        workloads
    in
    let failed =
      List.exists (fun (_, _, r) -> not (Psb_verify.Verify.ok r)) results
    in
    if json then begin
      let open Psb_obs.Json in
      let doc =
        obj
          [
            ("machine", String (Format.asprintf "%a" Machine_model.pp machine));
            ("ok", Bool (not failed));
            ( "results",
              List
                (List.map
                   (fun ((w : Dsl.t), (m : Model.t), r) ->
                     obj
                       [
                         ("workload", String w.Dsl.name);
                         ("model", String m.Model.name);
                         ("report", Psb_verify.Verify.to_json r);
                       ])
                   results) );
          ]
      in
      print_endline (to_string doc)
    end
    else
      List.iter
        (fun ((w : Dsl.t), (m : Model.t), r) ->
          Format.printf "%-10s %-16s %a@." w.Dsl.name m.Model.name
            Psb_verify.Verify.pp r)
        results;
    if failed then exit 1
  in
  let wopt = Arg.(value & pos 0 (some wconv) None & info [] ~docv:"WORKLOAD") in
  let mopt =
    Arg.(
      value
      & opt (some mconv) None
      & info [ "m"; "model" ] ~docv:"MODEL"
          ~doc:"Verify only this executable model (default: all executable \
                models).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON document instead of text.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles $(i,WORKLOAD) (default: every workload in the suite, \
         demos included) for each executable model and runs the static \
         speculation-safety verifier over the emitted predicated code: \
         predicate well-formedness, shadow-register / store-buffer \
         capacity, recovery soundness and WAW commit order (the catalogue \
         lives in docs/INVARIANTS.md). One line per (workload, model) \
         pair; violations are listed with their region, bundle and slot. \
         Exits 1 if any check fails, 2 on usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "verify" ~man
       ~doc:"Statically verify compiled code against the speculation-safety \
             invariants")
    Term.(const run $ wopt $ mopt $ issue_arg $ optimize_arg $ json)

(* ----- experiments ----- *)

let jobs_arg =
  Arg.(
    value
    & opt int (Psb_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard experiment cells over $(docv) domains (default: physical \
           cores). Results are byte-identical at every level.")

let experiments_cmd =
  let run jobs names =
    let pool =
      if jobs > 1 then Some (Psb_parallel.Pool.create ~jobs ()) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Psb_parallel.Pool.shutdown pool)
    @@ fun () ->
    let h = Psb_eval.Harness.create ?pool () in
    let print title pp v =
      Format.printf "== %s ==@.%a@.@." title pp v
    in
    let all = names = [] in
    let want n = all || List.mem n names in
    if want "table2" then
      print "table2" Psb_eval.Experiments.pp_table2 (Psb_eval.Experiments.table2 h);
    if want "table3" then
      print "table3" Psb_eval.Experiments.pp_table3 (Psb_eval.Experiments.table3 h);
    if want "fig6" then
      print "fig6"
        (Psb_eval.Experiments.pp_speedups ~title:"Figure 6: restricted models")
        (Psb_eval.Experiments.figure6 h);
    if want "fig7" then
      print "fig7"
        (Psb_eval.Experiments.pp_speedups ~title:"Figure 7: predicating models")
        (Psb_eval.Experiments.figure7 h);
    if want "fig8" then
      print "fig8" Psb_eval.Experiments.pp_figure8 (Psb_eval.Experiments.figure8 h);
    if want "shadow" then
      print "shadow" Psb_eval.Experiments.pp_shadow
        (Psb_eval.Experiments.shadow_ablation h);
    if want "validation" then
      print "validation" Psb_eval.Experiments.pp_validation
        (Psb_eval.Experiments.validation h);
    if want "related" then
      print "related"
        (Psb_eval.Experiments.pp_speedups ~title:"Related-work spectrum (2.2)")
        (Psb_eval.Experiments.related_work h);
    if want "counter" then
      print "counter" Psb_eval.Experiments.pp_counter
        (Psb_eval.Experiments.counter_ablation h);
    if want "btb" then
      print "btb" Psb_eval.Experiments.pp_btb (Psb_eval.Experiments.btb_ablation h);
    if want "dup" then
      print "dup" Psb_eval.Experiments.pp_dup (Psb_eval.Experiments.dup_ablation h);
    if want "size" then
      print "size" Psb_eval.Experiments.pp_size
        (Psb_eval.Experiments.code_growth h);
    if want "unroll" then
      print "unroll" Psb_eval.Experiments.pp_unroll
        (Psb_eval.Experiments.unroll_ablation h);
    if want "limits" then
      print "limits" Psb_eval.Limits.pp (Psb_eval.Limits.analyze_suite ());
    if want "limits-gen" then
      print "limits-gen" Psb_eval.Limits.pp
        (Psb_proptest.Fuzz.limits_fleet ~n:8 ~seed:7 ());
    if want "sweep" then
      print "sweep" Psb_eval.Experiments.pp_sweep
        (Psb_eval.Experiments.predictability_sweep ?pool ());
    if want "hwcost" then
      print "hwcost" Psb_machine.Hwcost.pp_report
        (Psb_machine.Hwcost.analyze Psb_machine.Hwcost.default)
  in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (all, or by name)")
    Term.(const run $ jobs_arg $ names)

(* ----- fuzz: sharded pipeline differential campaigns ----- *)

let fuzz_cmd =
  let module F = Psb_proptest.Fuzz in
  let module G = Psb_proptest.Gen in
  let run trials seed jobs corpus replay inject only no_shrink diamonds iters
      nesting alias_mask fault_rate demand json =
    (* under --json the summary document owns stdout; progress and
       counterexample listings move to stderr *)
    let say fmt =
      Format.fprintf
        (if json then Format.err_formatter else Format.std_formatter)
        fmt
    in
    let inject =
      match inject with
      | Some s -> (
          match Psb_proptest.Inject.of_name s with
          | Ok t -> Some t
          | Error m ->
              Format.eprintf "psb fuzz: %s@." m;
              exit 2)
      | None -> Psb_proptest.Inject.of_env ()
    in
    match replay with
    | Some dir ->
        (* replay mode: every corpus entry through the full differential *)
        let entries = Psb_proptest.Corpus.load_dir dir in
        if entries = [] then
          Format.printf "psb fuzz: no .psbasm files under %s@." dir;
        let failures =
          List.filter_map
            (fun (file, loaded) ->
              match loaded with
              | Error m -> Some (file, Printf.sprintf "load error: %s" m)
              | Ok g -> (
                  match Psb_proptest.Diff.check ?inject g with
                  | Ok () ->
                      Format.printf "  ok   %s@." file;
                      None
                  | Error f ->
                      Format.printf "  FAIL %s: %s@." file
                        (Psb_proptest.Diff.pp_failure f);
                      Some (file, Psb_proptest.Diff.pp_failure f)))
            entries
        in
        Format.printf "replayed %d, %d failed@." (List.length entries)
          (List.length failures);
        if failures <> [] then exit 1
    | None ->
        let seed =
          match seed with
          | Some s -> s
          | None ->
              Random.self_init ();
              Random.int 1_000_000_000
        in
        let shape =
          {
            G.default_shape with
            G.max_diamonds = diamonds;
            max_iters = iters;
            nesting;
            alias_mask;
            fault_prob = fault_rate;
            demand =
              (match demand with
              | "on" -> `On
              | "off" -> `Off
              | _ -> `Random);
          }
        in
        let cfg =
          {
            F.trials;
            seed;
            shape;
            inject;
            shrink = not no_shrink;
            max_shrink_steps = F.default.F.max_shrink_steps;
            max_counterexamples = F.default.F.max_counterexamples;
          }
        in
        let cfg, descr =
          match only with
          | Some i ->
              (* replay exactly one trial of a previous campaign *)
              ( { cfg with F.trials = i + 1 },
                Printf.sprintf "trial %d of seed %d" i seed )
          | None -> (cfg, Printf.sprintf "%d trials, seed %d" trials seed)
        in
        say "psb fuzz: %s%s (replay: psb fuzz --seed %d -n %d%s)@." descr
          (match inject with
          | Some b -> " [injected bug: " ^ Psb_proptest.Inject.name b ^ "]"
          | None -> "")
          seed cfg.F.trials
          (match inject with
          | Some b -> " --inject " ^ Psb_proptest.Inject.name b
          | None -> "");
        let outcome =
          let campaign pool =
            match only with
            | Some i -> (
                let t0 = Unix.gettimeofday () in
                let times : (string, float) Hashtbl.t = Hashtbl.create 8 in
                let finish counterexamples =
                  {
                    F.tested = 1;
                    counterexamples;
                    wall_s = Unix.gettimeofday () -. t0;
                    stage_seconds =
                      Hashtbl.fold (fun k v acc -> (k, v) :: acc) times [];
                  }
                in
                let g = F.gen_trial cfg i in
                match Psb_proptest.Diff.check ?inject ~times g with
                | Ok () -> finish []
                | Error f ->
                    let g, f, steps =
                      if cfg.F.shrink then F.minimize cfg g f else (g, f, 0)
                    in
                    finish
                      [
                        {
                          F.cx_trial = i;
                          cx_stage = f.Psb_proptest.Diff.stage;
                          cx_detail = f.Psb_proptest.Diff.detail;
                          cx_program = g;
                          cx_shrink_steps = steps;
                        };
                      ])
            | None ->
                F.run ?pool
                  ~on_progress:(fun ~tested ~found ->
                    say "  tested %d/%d, %d counterexample(s)@." tested
                      cfg.F.trials found)
                  cfg
          in
          if jobs > 1 then
            Psb_parallel.Pool.with_pool ~jobs (fun pool -> campaign (Some pool))
          else campaign None
        in
        List.iter
          (fun (cx : F.counterexample) ->
            say "@.counterexample (trial %d, %d shrink steps) at %s:@."
              cx.F.cx_trial cx.F.cx_shrink_steps cx.F.cx_stage;
            say "  %s@." cx.F.cx_detail;
            say "%s@." (G.pp cx.F.cx_program);
            match corpus with
            | Some dir ->
                let path =
                  Psb_proptest.Corpus.save ~dir ~seed ~stage:cx.F.cx_stage
                    ~detail:cx.F.cx_detail cx.F.cx_program
                in
                say "saved %s@." path
            | None -> ())
          outcome.F.counterexamples;
        if json then begin
          let open Psb_obs.Json in
          let doc =
            obj
              [
                ("schema", String "psb-fuzz-v1");
                ("trials", Int cfg.F.trials);
                ("seed", Int seed);
                ("jobs", Int jobs);
                ("tested", Int outcome.F.tested);
                ("wall_s", Float outcome.F.wall_s);
                ("trials_per_second", Float (F.trials_per_second outcome));
                ( "stage_seconds",
                  Obj
                    (List.map
                       (fun (k, v) -> (k, Float v))
                       outcome.F.stage_seconds) );
                ( "counterexamples",
                  List
                    (List.map
                       (fun (cx : F.counterexample) ->
                         obj
                           [
                             ("trial", Int cx.F.cx_trial);
                             ("stage", String cx.F.cx_stage);
                             ("detail", String cx.F.cx_detail);
                             ("shrink_steps", Int cx.F.cx_shrink_steps);
                             ("program", String (G.pp cx.F.cx_program));
                           ])
                       outcome.F.counterexamples) );
              ]
          in
          print_endline (to_string doc)
        end
        else begin
          Format.printf "@.%d tested, %d counterexample(s) in %.2fs (%.1f \
                         trials/s)@."
            outcome.F.tested
            (List.length outcome.F.counterexamples)
            outcome.F.wall_s
            (F.trials_per_second outcome);
          if outcome.F.stage_seconds <> [] then begin
            Format.printf "per-stage cumulative seconds (all trials%s):@."
              (if jobs > 1 then ", summed across domains" else "");
            List.iter
              (fun (k, v) -> Format.printf "  %-8s %8.3f@." k v)
              outcome.F.stage_seconds
          end
        end;
        if outcome.F.counterexamples <> [] then exit 1
  in
  let trials =
    Arg.(
      value & opt int 200
      & info [ "n"; "trials" ] ~docv:"N" ~doc:"Number of random programs.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign seed (default: self-initialised; printed either way so \
             any run replays with $(b,--seed)).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Write minimized counterexamples as .psbasm files into $(docv) \
             (content-addressed, so re-finding a bug never duplicates).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Replay every .psbasm corpus file in $(docv) through the full \
             differential instead of fuzzing (e.g. $(b,test/corpus)).")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"BUG"
          ~doc:
            "Apply a deliberate miscompile before verify/run \
             ($(b,sched-order)); defaults to \\$PSB_INJECT_BUG. The campaign \
             must then find a counterexample — the harness's fire drill.")
  in
  let only =
    Arg.(
      value
      & opt (some int) None
      & info [ "only" ] ~docv:"I"
          ~doc:"Run only trial $(docv) of the given seed (counterexample replay).")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report unshrunk programs.")
  in
  let diamonds =
    Arg.(
      value & opt int 3
      & info [ "diamonds" ] ~docv:"N" ~doc:"Max diamonds per loop body.")
  in
  let iters =
    Arg.(
      value & opt int 8
      & info [ "iters" ] ~docv:"N" ~doc:"Max loop trip count.")
  in
  let nesting =
    Arg.(
      value & opt int 2
      & info [ "nesting" ] ~docv:"D"
          ~doc:"Loop-nesting depth (2 enables an inner counted loop).")
  in
  let alias_mask =
    Arg.(
      value & opt int 63
      & info [ "alias-mask" ] ~docv:"MASK"
          ~doc:
            "Address mask for generated memory ops — smaller means denser \
             aliasing.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.1
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Relative weight of faulting division among generated ops.")
  in
  let demand =
    Arg.(
      value
      & opt (enum [ ("on", "on"); ("off", "off"); ("random", "random") ]) "random"
      & info [ "demand" ] ~docv:"MODE" ~doc:"Demand-paged memory: on, off, random.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the campaign summary (tested, wall-clock, trials/s, \
             per-stage cumulative seconds, counterexamples) as a JSON \
             document on stdout; progress moves to stderr.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the whole pipeline: random programs through every stage \
          differential (interp/scalar/VLIW, both predicate kernels, \
          verify-then-run, compile cache), shrinking failures to minimal \
          counterexamples")
    Term.(
      const run $ trials $ seed $ jobs_arg $ corpus $ replay $ inject $ only
      $ no_shrink $ diamonds $ iters $ nesting $ alias_mask $ fault_rate
      $ demand $ json)

let () =
  let doc = "Unconstrained speculative execution with predicated state buffering" in
  let info = Cmd.info "psb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; compile_cmd; sim_cmd; rob_cmd; speedup_cmd;
            trace_cmd; timeline_cmd; profile_cmd; speculate_cmd; verify_cmd;
            exec_cmd; pexec_cmd; experiments_cmd; fuzz_cmd;
          ]))
