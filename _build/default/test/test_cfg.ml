(* Tests of the CFG layer: graph construction, dominance / post-dominance /
   equivalence, liveness, loops, branch prediction. *)

open Psb_isa
open Psb_cfg

let reg = Reg.make
let lbl = Label.make
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Diamond with a loop around it:

        entry
          |
        head <------+
        /  \        |
      then  else    |
        \  /        |
        join -------+ (backedge while c1)
          |
        exit(halt)
*)
let diamond_loop =
  let cmp d op a b = Instr.Cmp { op; dst = reg d; a; b } in
  let add d a b = Instr.Alu { op = Opcode.Add; dst = reg d; a; b } in
  let rr i = Operand.reg (reg i) in
  let im i = Operand.imm i in
  Program.make ~entry:(lbl "entry")
    [
      Program.block (lbl "entry")
        [ Instr.Mov { dst = reg 1; src = im 0 }; Instr.Mov { dst = reg 9; src = im 3 } ]
        (Instr.Jmp (lbl "head"));
      Program.block (lbl "head")
        [ cmp 4 Opcode.Lt (rr 1) (im 2) ]
        (Instr.Br { src = reg 4; if_true = lbl "then"; if_false = lbl "else" });
      Program.block (lbl "then") [ add 2 (rr 2) (im 10) ] (Instr.Jmp (lbl "join"));
      Program.block (lbl "else") [ add 2 (rr 2) (im 100) ] (Instr.Jmp (lbl "join"));
      Program.block (lbl "join")
        [ add 1 (rr 1) (im 1); cmp 5 Opcode.Lt (rr 1) (rr 9) ]
        (Instr.Br { src = reg 5; if_true = lbl "head"; if_false = lbl "exit" });
      Program.block (lbl "exit") [ Instr.Out (rr 2) ] Instr.Halt;
    ]

let cfg = Cfg.of_program diamond_loop
let dom = Dominance.compute cfg

let test_cfg_structure () =
  check_int "blocks" 6 (Cfg.num_blocks cfg);
  Alcotest.(check (list string)) "succs of head" [ "then"; "else" ]
    (Cfg.succs cfg (lbl "head"));
  check_int "preds of join" 2 (List.length (Cfg.preds cfg (lbl "join")));
  check_int "preds of head" 2 (List.length (Cfg.preds cfg (lbl "head")));
  Alcotest.(check (list string)) "exits" [ "exit" ] (Cfg.exits cfg);
  check_bool "rpo starts at entry" true
    (List.hd (Cfg.rpo cfg) = lbl "entry")

let test_dominance () =
  check_bool "entry dom all" true (Dominance.dominates dom (lbl "entry") (lbl "join"));
  check_bool "head dom join" true (Dominance.dominates dom (lbl "head") (lbl "join"));
  check_bool "then not dom join" false
    (Dominance.dominates dom (lbl "then") (lbl "join"));
  check_bool "reflexive" true (Dominance.dominates dom (lbl "join") (lbl "join"));
  check_bool "idom of join is head" true
    (Dominance.idom dom (lbl "join") = Some (lbl "head"))

let test_postdominance () =
  check_bool "exit pdom head" true
    (Dominance.postdominates dom (lbl "exit") (lbl "head"));
  check_bool "join pdom then" true
    (Dominance.postdominates dom (lbl "join") (lbl "then"));
  check_bool "then not pdom head" false
    (Dominance.postdominates dom (lbl "then") (lbl "head"));
  (* §3.3 footnote 2: head and join are equivalent *)
  check_bool "head equivalent join" true
    (Dominance.equivalent dom (lbl "head") (lbl "join"));
  check_bool "head not equivalent then" false
    (Dominance.equivalent dom (lbl "head") (lbl "then"))

let test_liveness () =
  let live = Liveness.compute cfg in
  (* r1 and r2 are live around the loop; r9 live from entry to join. *)
  check_bool "r1 live into head" true
    (Reg.Set.mem (reg 1) (Liveness.live_in live (lbl "head")));
  check_bool "r2 live into exit" true
    (Reg.Set.mem (reg 2) (Liveness.live_in live (lbl "exit")));
  check_bool "r9 live out of then" true
    (Reg.Set.mem (reg 9) (Liveness.live_out live (lbl "then")));
  check_bool "r2 dead after exit out" true
    (Reg.Set.is_empty (Liveness.live_out live (lbl "exit")));
  (* A fresh dead register exists at entry of then. *)
  (match Liveness.dead_at_entry live (lbl "then") ~avoid:Reg.Set.empty ~max_reg:9 with
  | Some r -> check_bool "dead reg not live" true
      (not (Reg.Set.mem r (Liveness.live_in live (lbl "then"))))
  | None -> Alcotest.fail "expected a dead register")

let test_live_before () =
  let live = Liveness.compute cfg in
  (* In join: [add r1; setc c1]; before index 0, r1 is live (used). *)
  let s = Liveness.live_before live (lbl "join") 0 in
  check_bool "r1 live before add" true (Reg.Set.mem (reg 1) s)

let test_loops () =
  let loops = Loops.natural_loops cfg dom in
  check_int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check_bool "head is head" true (Label.equal l.Loops.head (lbl "head"));
  check_bool "join in body" true (Loops.in_loop l (lbl "join"));
  check_bool "then in body" true (Loops.in_loop l (lbl "then"));
  check_bool "entry not in body" false (Loops.in_loop l (lbl "entry"));
  check_bool "exit not in body" false (Loops.in_loop l (lbl "exit"))

let test_branch_predict_profile () =
  let mem = Memory.create ~size:16 in
  let res = Interp.run ~regs:[] ~mem diamond_loop in
  let trace = Trace.of_result diamond_loop res in
  let bp = Branch_predict.of_trace cfg trace in
  (* r1 = 0,1,2: head's c0 = r1<2 is true twice, false once → predict true *)
  check_bool "head predicted taken" true (Branch_predict.predict bp (lbl "head"));
  check_bool "confidence sensible" true
    (Branch_predict.confidence bp (lbl "head") >= 0.5);
  let p_then = Branch_predict.edge_probability bp (lbl "head") (lbl "then") in
  let p_else = Branch_predict.edge_probability bp (lbl "head") (lbl "else") in
  check_bool "probabilities sum to 1" true (abs_float (p_then +. p_else -. 1.0) < 1e-9)

let test_branch_predict_heuristic () =
  let bp = Branch_predict.heuristic cfg dom in
  (* join -> head is a backedge: predicted taken. *)
  check_bool "backedge predicted" true (Branch_predict.predict bp (lbl "join"))

let () =
  Alcotest.run "cfg"
    [
      ( "cfg",
        [ Alcotest.test_case "structure" `Quick test_cfg_structure ] );
      ( "dominance",
        [
          Alcotest.test_case "dominators" `Quick test_dominance;
          Alcotest.test_case "post-dominators" `Quick test_postdominance;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "live sets" `Quick test_liveness;
          Alcotest.test_case "live before" `Quick test_live_before;
        ] );
      ("loops", [ Alcotest.test_case "natural loops" `Quick test_loops ]);
      ( "branch-predict",
        [
          Alcotest.test_case "profile" `Quick test_branch_predict_profile;
          Alcotest.test_case "heuristic" `Quick test_branch_predict_heuristic;
        ] );
    ]
