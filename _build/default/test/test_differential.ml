(* Differential testing: generate random structured programs, compile
   them for every executable model, run the predicated code on the
   cycle-level machine, and require the observable behaviour of the scalar
   reference interpreter (exactly for halting runs; same-fatality for
   fatal traps, where the compiler may legitimately have reordered
   independent side effects). *)

open Psb_isa
open Psb_compiler
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim

open Gen_programs

let outcomes_match (a : Interp.outcome) (b : Interp.outcome) =
  match (a, b) with
  | Interp.Halted, Interp.Halted -> true
  | Interp.Fatal f1, Interp.Fatal f2 -> Fault.equal f1 f2
  | Interp.Out_of_fuel, Interp.Out_of_fuel -> true
  | _ -> false

let differential model =
  QCheck.Test.make
    ~name:("compiled = scalar [" ^ model.Model.name ^ "]")
    ~count:120 arb_program
    (fun g ->
      let scalar_mem = make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
      QCheck.assume (scalar.Interp.outcome <> Interp.Out_of_fuel);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      let compiled =
        Driver.compile ~model ~machine:Machine_model.base ~profile g.program
      in
      let vliw_mem = make_mem g in
      let vliw = Driver.run_vliw compiled ~regs ~mem:vliw_mem in
      (* On a *fatal* trap only the fault itself is defined: the compiler
         may have hoisted independent stores/outputs above the faulting
         instruction (standard VLIW imprecision at fatal traps — the
         paper's precision mechanism covers speculative faults, which are
         the recoverable ones). Halted runs must match exactly. *)
      let ok =
        match scalar.Interp.outcome with
        | Interp.Fatal _ ->
            (* reordering may surface a different (also fatal) fault first *)
            (match vliw.Vliw_sim.outcome with Interp.Fatal _ -> true | _ -> false)
        | _ ->
            outcomes_match scalar.Interp.outcome vliw.Vliw_sim.outcome
            && scalar.Interp.output = vliw.Vliw_sim.output
            && Memory.equal scalar_mem vliw_mem
      in
      if not ok then
        QCheck.Test.fail_reportf
          "scalar: %a / output %s@.vliw: %a / output %s@.memory equal: %b"
          Interp.pp_outcome scalar.Interp.outcome
          (String.concat "," (List.map string_of_int scalar.Interp.output))
          Interp.pp_outcome vliw.Vliw_sim.outcome
          (String.concat "," (List.map string_of_int vliw.Vliw_sim.output))
          (Memory.equal scalar_mem vliw_mem);
      true)

let estimate_never_crashes =
  QCheck.Test.make ~name:"all models compile + estimate" ~count:60 arb_program
    (fun g ->
      let scalar_mem = make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
      QCheck.assume (scalar.Interp.outcome = Interp.Halted);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      List.for_all
        (fun model ->
          let compiled =
            Driver.compile ~model ~machine:Machine_model.base ~profile g.program
          in
          let est =
            Driver.estimate_cycles compiled g.program
              ~block_trace:scalar.Interp.block_trace
          in
          est > 0)
        Model.all)

let infinite_shadow_agrees =
  QCheck.Test.make ~name:"infinite shadow = single shadow semantics" ~count:60
    arb_program (fun g ->
      let scalar_mem = make_mem g in
      let scalar = Interp.run ~fuel:500_000 ~regs ~mem:scalar_mem g.program in
      QCheck.assume (scalar.Interp.outcome <> Interp.Out_of_fuel);
      let _, profile = Driver.profile_of g.program ~regs ~mem:(make_mem g) in
      let compiled =
        Driver.compile ~single_shadow:false ~model:Model.region_pred
          ~machine:Machine_model.base ~profile g.program
      in
      let vliw_mem = make_mem g in
      let vliw =
        Driver.run_vliw ~regfile_mode:Psb_machine.Regfile.Infinite compiled
          ~regs ~mem:vliw_mem
      in
      match scalar.Interp.outcome with
      | Interp.Fatal _ -> (
          match vliw.Vliw_sim.outcome with Interp.Fatal _ -> true | _ -> false)
      | _ ->
          outcomes_match scalar.Interp.outcome vliw.Vliw_sim.outcome
          && scalar.Interp.output = vliw.Vliw_sim.output
          && Memory.equal scalar_mem vliw_mem)

let asm_roundtrip =
  QCheck.Test.make ~name:"asm print/parse round-trips" ~count:200
    Gen_programs.arb_program (fun g ->
      let text = Asm.print g.Gen_programs.program in
      match Asm.parse text with
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s@.%s" m text
      | Ok p -> Asm.print p = text)

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            differential Model.region_pred;
            differential Model.trace_pred;
            differential Model.region_sched;
            differential Model.guarded;
            estimate_never_crashes;
            infinite_shadow_agrees;
            asm_roundtrip;
          ] );
    ]
