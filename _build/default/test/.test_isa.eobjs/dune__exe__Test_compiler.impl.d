test/test_compiler.ml: Alcotest Array Driver Fault Format Instr Interp Label List Memory Model Opcode Operand Pred Program Psb_cfg Psb_compiler Psb_isa Psb_machine Reg Runit Sched
