test/gen_programs.ml: Format Instr Label List Memory Opcode Operand Program Psb_isa QCheck Reg
