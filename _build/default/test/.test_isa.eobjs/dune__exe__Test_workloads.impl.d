test/test_workloads.ml: Alcotest Driver Dsl Format Interp Lazy List Memory Model Psb_compiler Psb_isa Psb_machine Psb_workloads Suite Synth Trace
