test/test_cfg.ml: Alcotest Branch_predict Cfg Dominance Instr Interp Label List Liveness Loops Memory Opcode Operand Program Psb_cfg Psb_isa Reg Trace
