test/test_differential.ml: Alcotest Asm Driver Fault Gen_programs Interp List Memory Model Psb_compiler Psb_isa Psb_machine QCheck QCheck_alcotest String
