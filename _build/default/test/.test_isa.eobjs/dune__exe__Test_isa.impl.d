test/test_isa.ml: Alcotest Array Asm Cond Fault Format Instr Interp Label List Memory Opcode Operand Pred Program Psb_isa QCheck QCheck_alcotest Reg Trace
