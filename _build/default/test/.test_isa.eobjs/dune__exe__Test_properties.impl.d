test/test_properties.ml: Alcotest Array Cond Driver Gen_programs Hashtbl Instr Label List Model Pred Program Psb_cfg Psb_compiler Psb_isa Psb_machine QCheck QCheck_alcotest Runit Sched
