test/test_eval.ml: Alcotest Array Experiments Format Harness Lazy Limits List Model Psb_compiler Psb_eval
