(* Shared random-program generator for property-based differential
   testing: structured, always-terminating programs (counted loops around
   chains of data-dependent diamonds) with loads, stores, faulting
   arithmetic, demand paging and occasional out-of-bounds accesses. *)

open Psb_isa

let reg = Reg.make
let lbl = Label.make
let rr i = Operand.reg (reg i)
let im i = Operand.imm i

(* ---------- generator ---------- *)

type gprog = {
  program : Program.t;
  mem_data : (int * int) list;
  demand : bool;
  descr : string;
}

let pp_gprog g =
  Format.asprintf "%s@.%a" g.descr Program.pp g.program

(* Data registers the random ops read and write — small pool so WAW/WAR
   collisions across diamond arms are frequent. *)
let data_regs = [ 1; 2; 3; 4 ]
let scratch = 6 (* comparison scratch *)
let addr_reg = 7
let counter = 10
let base = 20

let gen_operand st =
  if QCheck.Gen.bool st then rr (QCheck.Gen.oneofl data_regs st)
  else im (QCheck.Gen.int_range (-3) 9 st)

let gen_alu_op st =
  QCheck.Gen.oneofl
    [ Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.And; Opcode.Or; Opcode.Xor ]
    st

(* One random straight-line operation (as a short op sequence: memory
   accesses come with their address computation). Loads/stores index off
   the single data structure at [base]; the index is usually masked in
   bounds, but occasionally ranges over demand pages and, rarely, out of
   range (fatal faults). Division can fault too. *)
let gen_op st =
  match QCheck.Gen.int_bound 9 st with
  | 0 | 1 | 2 ->
      let d = QCheck.Gen.oneofl data_regs st in
      [ Instr.Alu { op = gen_alu_op st; dst = reg d; a = gen_operand st; b = gen_operand st } ]
  | 3 ->
      let d = QCheck.Gen.oneofl data_regs st in
      [ Instr.Mov { dst = reg d; src = gen_operand st } ]
  | 4 | 5 ->
      let d = QCheck.Gen.oneofl data_regs st in
      let x = QCheck.Gen.oneofl data_regs st in
      let mask = if QCheck.Gen.int_bound 9 st = 0 then 511 else 63 in
      [
        Instr.Alu { op = Opcode.And; dst = reg addr_reg; a = rr x; b = im mask };
        Instr.Load { dst = reg d; base = reg addr_reg; off = 0 };
      ]
  | 6 ->
      let s = QCheck.Gen.oneofl data_regs st in
      let x = QCheck.Gen.oneofl data_regs st in
      [
        Instr.Alu { op = Opcode.And; dst = reg addr_reg; a = rr x; b = im 63 };
        Instr.Store { src = reg s; base = reg addr_reg; off = 0 };
      ]
  | 7 ->
      let d = QCheck.Gen.oneofl data_regs st in
      (* division faults on zero divisors sometimes *)
      [ Instr.Alu { op = Opcode.Div; dst = reg d; a = gen_operand st; b = gen_operand st } ]
  | 8 ->
      let d = QCheck.Gen.oneofl data_regs st in
      [
        Instr.Cmp
          { op = QCheck.Gen.oneofl [ Opcode.Lt; Opcode.Eq; Opcode.Ge ] st;
            dst = reg d; a = gen_operand st; b = gen_operand st };
      ]
  | _ -> [ Instr.Out (gen_operand st) ]

let gen_ops n st = List.concat (List.init n (fun _ -> gen_op st))

let gen_program st =
  let ndiamonds = 1 + QCheck.Gen.int_bound 2 st in
  let iters = 2 + QCheck.Gen.int_bound 6 st in
  let blocks = ref [] in
  let addb name body term = blocks := Program.block (lbl name) body term :: !blocks in
  (* entry *)
  addb "entry"
    [
      Instr.Mov { dst = reg counter; src = im 0 };
      Instr.Mov { dst = reg 1; src = im (QCheck.Gen.int_bound 20 st) };
      Instr.Mov { dst = reg 2; src = im (QCheck.Gen.int_bound 20 st) };
      Instr.Mov { dst = reg 3; src = im 1 };
      Instr.Mov { dst = reg 4; src = im 2 };
    ]
    (Instr.Jmp (lbl "head"));
  addb "head"
    [ Instr.Cmp { op = Opcode.Lt; dst = reg scratch; a = rr counter; b = im iters } ]
    (Instr.Br { src = reg scratch; if_true = lbl "d0_test"; if_false = lbl "end" });
  for k = 0 to ndiamonds - 1 do
    let pre = Format.asprintf "d%d" k in
    let next = if k + 1 < ndiamonds then Format.asprintf "d%d_test" (k + 1) else "latch" in
    addb (pre ^ "_test")
      (gen_ops (QCheck.Gen.int_bound 2 st) st
      @ [
          Instr.Cmp
            { op = QCheck.Gen.oneofl [ Opcode.Lt; Opcode.Ne; Opcode.Ge ] st;
              dst = reg scratch;
              a = rr (QCheck.Gen.oneofl data_regs st);
              b = gen_operand st };
        ])
      (Instr.Br { src = reg scratch; if_true = lbl (pre ^ "_t"); if_false = lbl (pre ^ "_f") });
    addb (pre ^ "_t") (gen_ops (1 + QCheck.Gen.int_bound 2 st) st) (Instr.Jmp (lbl (pre ^ "_join")));
    addb (pre ^ "_f") (gen_ops (1 + QCheck.Gen.int_bound 2 st) st) (Instr.Jmp (lbl (pre ^ "_join")));
    addb (pre ^ "_join") (gen_ops (QCheck.Gen.int_bound 1 st) st) (Instr.Jmp (lbl next))
  done;
  addb "latch"
    [ Instr.Alu { op = Opcode.Add; dst = reg counter; a = rr counter; b = im 1 } ]
    (Instr.Jmp (lbl "head"));
  addb "end"
    [ Instr.Out (rr 1); Instr.Out (rr 2); Instr.Out (rr 3); Instr.Out (rr 4) ]
    Instr.Halt;
  let program = Program.make ~entry:(lbl "entry") (List.rev !blocks) in
  let mem_data =
    List.init 64 (fun k -> (k, QCheck.Gen.int_range (-20) 40 st))
  in
  let demand = QCheck.Gen.bool st in
  {
    program;
    mem_data;
    demand;
    descr = Format.asprintf "diamonds=%d iters=%d demand=%b" ndiamonds iters demand;
  }

let arb_program = QCheck.make ~print:pp_gprog gen_program

let make_mem g =
  let mem =
    if g.demand then Memory.create_demand ~size:512 ~unmapped:(128, 384)
    else Memory.create ~size:512
  in
  List.iter (fun (a, v) -> Memory.poke mem a v) g.mem_data;
  mem

let regs = [ (reg base, 0) ]

