(** Predicated store buffer (§3.2).

    A FIFO in front of the D-cache. Both speculative and non-speculative
    stores are appended in issue order. Entries carry W (speculative), V
    (valid) and E (outstanding speculative exception) flags and a
    predicate with its own evaluation hardware: true → commit (clear W),
    false → squash (clear V). Head entries that are valid and
    non-speculative drain to the D-cache. *)

open Psb_isa

type t

val create : unit -> t

val append :
  t -> addr:int -> value:int -> pred:Pred.t -> spec:bool ->
  fault:Fault.t option -> unit

val tick : t -> (Cond.t -> Pred.cond_value) -> (int * [ `Commit | `Squash ]) list
(** Evaluate speculative entries' predicates; commit or squash. Returns
    the affected addresses, in buffer order, for event tracing. *)

val committing_exceptions :
  t -> (Cond.t -> Pred.cond_value) -> Fault.t list
(** Buffered store exceptions whose predicate evaluates true under the
    (tentative) CCR. *)

val drain : t -> max:int -> Memory.t -> int
(** Write up to [max] head entries that are valid and non-speculative to
    memory; squashed head entries are discarded for free. Stops at the
    first still-speculative entry. Returns the number of D-cache writes.
    @raise Memory.Fault if a drained store faults (a non-speculative
    exception; the machine handles it like the scalar machine would). *)

val drain_all : t -> Memory.t -> unit
(** Drain every non-speculative entry (used when the machine halts).
    @raise Invalid_argument if speculative entries remain. *)

val forward :
  t -> addr:int -> load_pred:Pred.t -> (Cond.t -> Pred.cond_value) ->
  [ `Hit of int * Fault.t option | `Miss | `Commit_dependence ]
(** Store-to-load forwarding. Searches youngest → oldest among valid
    entries with the same address: entries on mutually exclusive paths
    (disjoint predicates) or already-squashed entries are skipped; an entry
    the load is control-dependent on (its predicate implied by the load's,
    or already true) forwards its value. An unresolved entry that may or
    may not be on the load's path is a {e commit dependence}
    (§4.2.2) — the scheduler must have prevented it, so the machine
    reports it as an error. *)

val invalidate_spec : t -> unit
val has_spec : t -> bool
val length : t -> int
val max_occupancy : t -> int
val spec_appends : t -> int
val commits : t -> int
val squashes : t -> int
