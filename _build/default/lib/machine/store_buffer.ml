open Psb_isa

type entry = {
  addr : int;
  value : int;
  pred : Pred.t;
  mutable spec : bool; (* W *)
  mutable valid : bool; (* V *)
  fault : Fault.t option; (* E *)
}

type t = {
  mutable entries : entry list; (* oldest (head) first *)
  mutable max_occupancy : int;
  mutable spec_appends : int;
  mutable commits : int;
  mutable squashes : int;
}

let create () =
  { entries = []; max_occupancy = 0; spec_appends = 0; commits = 0; squashes = 0 }

let append t ~addr ~value ~pred ~spec ~fault =
  let e = { addr; value; pred; spec; valid = true; fault } in
  t.entries <- t.entries @ [ e ];
  if spec then t.spec_appends <- t.spec_appends + 1;
  t.max_occupancy <- max t.max_occupancy (List.length t.entries)

let tick t lookup =
  List.filter_map
    (fun e ->
      if e.spec && e.valid then
        match Pred.eval e.pred lookup with
        | Pred.True ->
            assert (e.fault = None);
            t.commits <- t.commits + 1;
            e.spec <- false;
            Some (e.addr, `Commit)
        | Pred.False ->
            t.squashes <- t.squashes + 1;
            e.valid <- false;
            Some (e.addr, `Squash)
        | Pred.Unspec -> None
      else None)
    t.entries

let committing_exceptions t lookup =
  List.filter_map
    (fun e ->
      match e.fault with
      | Some f when e.spec && e.valid && Pred.eval e.pred lookup = Pred.True ->
          Some f
      | Some _ | None -> None)
    t.entries

let drain t ~max:limit mem =
  let written = ref 0 in
  let rec go entries =
    match entries with
    | [] -> []
    | e :: rest ->
        if not e.valid then go rest (* squashed: free discard *)
        else if e.spec || !written >= limit then entries
        else begin
          (match e.fault with
          | Some (Fault.Mem f) -> raise (Memory.Fault f)
          | Some (Fault.Arith _) | None -> ());
          Memory.write mem e.addr e.value;
          incr written;
          go rest
        end
  in
  t.entries <- go t.entries;
  !written

let drain_all t mem =
  ignore (drain t ~max:max_int mem);
  (* With no limit, drain only stops at a still-speculative entry. *)
  if t.entries <> [] then
    invalid_arg "Store_buffer.drain_all: speculative entries remain"

let forward t ~addr ~load_pred lookup =
  let candidates =
    List.rev t.entries (* youngest first *)
    |> List.filter (fun e -> e.valid && e.addr = addr)
  in
  let rec search = function
    | [] -> `Miss
    | e :: rest ->
        if Pred.disjoint e.pred load_pred then search rest
        else if (not e.spec) || Pred.implies load_pred e.pred then
          `Hit (e.value, e.fault)
        else (
          match Pred.eval e.pred lookup with
          | Pred.True -> `Hit (e.value, e.fault)
          | Pred.False -> search rest
          | Pred.Unspec -> `Commit_dependence)
  in
  search candidates

let invalidate_spec t =
  List.iter (fun e -> if e.spec then e.valid <- false) t.entries;
  t.entries <- List.filter (fun e -> e.valid) t.entries

let has_spec t = List.exists (fun e -> e.valid && e.spec) t.entries
let length t = List.length t.entries
let max_occupancy t = t.max_occupancy
let spec_appends t = t.spec_appends
let commits t = t.commits
let squashes t = t.squashes
