open Psb_isa

type t = Pred.cond_value array

let create ~width =
  if width <= 0 then invalid_arg "Ccr.create: width must be positive";
  Array.make width Pred.U

let width = Array.length

let get t c =
  let i = Cond.index c in
  if i >= Array.length t then
    invalid_arg (Format.asprintf "Ccr.get: %a outside CCR" Cond.pp c);
  t.(i)

let set t c v =
  let i = Cond.index c in
  if i >= Array.length t then
    invalid_arg (Format.asprintf "Ccr.set: %a outside CCR" Cond.pp c);
  t.(i) <- (if v then Pred.T else Pred.F)

let reset t = Array.fill t 0 (Array.length t) Pred.U
let copy t = Array.copy t

let assign t ~from =
  if Array.length t <> Array.length from then
    invalid_arg "Ccr.assign: width mismatch";
  Array.blit from 0 t 0 (Array.length t)

let lookup t c = get t c
let eval t p = Pred.eval p (lookup t)

let all_specified t p =
  Cond.Set.for_all (fun c -> get t c <> Pred.U) (Pred.conds p)

let pp ppf t =
  Format.pp_print_string ppf "{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string ppf ",";
      Format.pp_print_string ppf
        (match v with Pred.T -> "T" | Pred.F -> "F" | Pred.U -> "U"))
    t;
  Format.pp_print_string ppf "}"
