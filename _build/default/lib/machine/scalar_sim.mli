(** The scalar baseline (MIPS R3000-like, §4).

    A thin, documented front-end over the reference interpreter: single
    issue, one cycle per instruction, two-cycle loads (one-cycle load-use
    interlock), branches free under the paper's optimistic BTB assumption.
    Its cycle counts play the role of the pixie-measured R3000 cycles. *)

open Psb_isa

val run :
  ?fuel:int ->
  ?record_trace:bool ->
  ?observer:(Instr.op -> int option -> unit) ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Program.t ->
  Interp.result

val cycles :
  regs:(Reg.t * int) list -> mem:Memory.t -> Program.t -> int
(** Convenience: scalar cycle count only (no trace recorded). *)
