(** Machine configurations.

    The paper's base VLIW machine (§4): 4 ALUs, 4 branch units, 2 load
    units, 1 store unit, up to 4 instructions issued per cycle, CCR with 4
    entries, load latency 2 cycles, all other latencies 1.

    "Full-issue" machines (Figure 8) duplicate every resource to the issue
    width. *)

open Psb_isa

type t = {
  issue_width : int;
  alu_units : int;
  branch_units : int;  (** jump/exit slots per cycle *)
  load_units : int;
  store_units : int;
  ccr_size : int;  (** number of branch conditions, K *)
  load_latency : int;
  int_latency : int;
  max_spec_conds : int;
      (** how many unresolved branch conditions an instruction may be
          speculated past (Figure 8 sweeps 1/2/4/8) *)
  transition_penalty : int;
      (** extra cycles charged on a region transition; 0 under the paper's
          optimistic BTB assumption, 1 models a BTB-miss redirect (the
          paper notes the optimism is worth "a few percent") *)
  sb_capacity : int;
      (** store-buffer entries; a bundle carrying a store stalls while the
          FIFO is full *)
  dcache_ports : int;
      (** D-cache write ports: store-buffer entries drained per cycle *)
}

val base : t
(** The paper's base 4-issue machine. *)

val scalar : t
(** Single-issue reference (R3000-like). *)

val full_issue : width:int -> max_spec_conds:int -> t
(** Fully duplicated resources at the given issue width (Figure 8). *)

val latency : t -> Instr.op -> int

type unit_class = Alu_unit | Branch_unit | Load_unit | Store_unit

val unit_of_op : Instr.op -> unit_class
val units_available : t -> unit_class -> int
val pp : Format.formatter -> t -> unit
