open Psb_isa

let run = Interp.run

let cycles ~regs ~mem program =
  (Interp.run ~record_trace:false ~regs ~mem program).Interp.cycles
