(** Textual format for predicated VLIW code — the machine-level twin of
    {!Psb_isa.Asm}. Prints exactly what {!Pcode.pp} prints and parses it
    back, so hand-written predicated programs (like the paper's Figure 4)
    can live in [.ppsb] files:

    {v
    entry L4
    region L4:
      (0) alw ? r1 = load r2+0 || c0&c1 ? r2 = sub r2 1
      (1) !c0 ? r5 = load r8+0 || c0&c1 ? store r7+0 = r5
      (2) alw ? r3 = add r1 1 || c0&c1 ? r7 = sll r2 1 [shadow:r2]
      ...
      (6) c0&!c1 ? j L5 || c0&c1 ? j L8
    v}

    [#] starts a comment. Bundle indices [(n)] are checked to be
    consecutive within a region. *)

val print : Pcode.t -> string

val parse : string -> (Pcode.t, string) result
(** Errors carry a line number. Validation is {!Pcode.make}'s. *)

val parse_exn : string -> Pcode.t
(** @raise Failure on parse errors. *)
