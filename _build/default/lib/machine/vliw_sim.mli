(** Cycle-level simulator of the predicating VLIW machine (Figure 1).

    Executes {!Pcode.t}. Each cycle: completed writebacks are applied;
    pending condition writes are checked against the buffered speculative
    exceptions ({e detection}, §3.5) before updating the CCR; the register
    file and store buffer evaluate their stored predicates and commit or
    squash; the store buffer drains to the D-cache; and one bundle issues.
    An instruction whose predicate evaluates true executes
    non-speculatively, false is squashed, unspecified executes
    speculatively into the shadow state.

    On detection of a committed speculative exception the machine saves the
    future condition, invalidates all speculative state, rolls back to the
    region top (the implicit RPC) and re-executes in {e recovery mode}:
    instructions whose predicate is specified under the (frozen) current
    condition are squashed, unspecified ones re-execute, and a re-occurring
    exception is handled if its predicate is true under the future
    condition. Recovery ends when the PC reaches the EPC; the future
    condition is then copied into the CCR.

    Region exits reset the CCR and squash any speculative state left
    behind — the closed-region property of §3.3 guarantees such state
    belongs to untaken paths. *)

open Psb_isa

type stats = {
  dyn_bundles : int;
  dyn_ops : int;  (** executed operation slots (squashed ones excluded) *)
  squashed_ops : int;
  spec_ops : int;  (** ops issued with an unspecified predicate *)
  commits : int;  (** speculative register/store commits *)
  squashes : int;
  recoveries : int;  (** recovery-mode episodes *)
  recovery_cycles : int;
  shadow_conflicts : int;
  conflict_stall_cycles : int;
  sb_max_occupancy : int;
  sb_stall_cycles : int;  (** cycles issue stalled on a full store buffer *)
  region_transitions : int;
}

type result = {
  outcome : Interp.outcome;
  output : int list;
  cycles : int;
  regs : int Reg.Map.t;
  faults_handled : int;
  stats : stats;
}

type event =
  | Reg_commit of Reg.t
  | Reg_squash of Reg.t
  | Store_commit of int  (** address *)
  | Store_squash of int
  | Exception_detected
  | Recovery_done
  | Region_exit of Pcode.exit_target

val pp_event : Format.formatter -> event -> unit

exception Machine_error of string
(** Raised when executed code violates a machine invariant the scheduler
    must uphold (commit-dependence violation, side effect with an
    unspecified predicate, running off a region end, Setc bundled with an
    exit, ...). Indicates a compiler bug, not a program fault. *)

val run :
  ?fuel:int ->
  ?regfile_mode:Regfile.mode ->
  ?on_event:(int -> event -> unit) ->
  model:Machine_model.t ->
  regs:(Reg.t * int) list ->
  mem:Memory.t ->
  Pcode.t ->
  result
(** [fuel] bounds the cycle count (default 60M). [mem] is mutated.
    [on_event] receives commit/squash/detection/recovery/exit events with
    the cycle they occur in — the machine's observable timeline (compare
    Table 1). *)
