lib/machine/hwcost.mli: Format
