lib/machine/pcode.ml: Array Cond Format Hashtbl Instr Label List Machine_model Option Pred Psb_isa Reg Seq
