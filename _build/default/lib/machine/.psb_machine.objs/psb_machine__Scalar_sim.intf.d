lib/machine/scalar_sim.mli: Instr Interp Memory Program Psb_isa Reg
