lib/machine/pcode_text.mli: Pcode
