lib/machine/regfile.mli: Cond Fault Pred Psb_isa Reg
