lib/machine/hwcost.ml: Format
