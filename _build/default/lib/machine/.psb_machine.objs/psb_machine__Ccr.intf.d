lib/machine/ccr.mli: Cond Format Pred Psb_isa
