lib/machine/scalar_sim.ml: Interp Psb_isa
