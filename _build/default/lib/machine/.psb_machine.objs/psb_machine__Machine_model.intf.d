lib/machine/machine_model.mli: Format Instr Psb_isa
