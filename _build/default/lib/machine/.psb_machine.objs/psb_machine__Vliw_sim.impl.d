lib/machine/vliw_sim.ml: Array Ccr Cond Fault Format Instr Interp Label List Machine_model Memory Opcode Operand Option Pcode Pred Psb_isa Reg Regfile Store_buffer
