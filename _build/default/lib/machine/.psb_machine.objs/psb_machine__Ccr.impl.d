lib/machine/ccr.ml: Array Cond Format Pred Psb_isa
