lib/machine/store_buffer.mli: Cond Fault Memory Pred Psb_isa
