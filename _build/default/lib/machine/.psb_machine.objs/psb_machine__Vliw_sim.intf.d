lib/machine/vliw_sim.mli: Format Interp Machine_model Memory Pcode Psb_isa Reg Regfile
