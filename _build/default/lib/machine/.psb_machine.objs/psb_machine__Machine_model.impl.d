lib/machine/machine_model.ml: Format Instr Psb_isa
