lib/machine/regfile.ml: Array Fault List Pred Psb_isa Reg Seq
