lib/machine/pcode_text.ml: Array Asm Cond Format Label List Pcode Pred Psb_isa Reg String
