lib/machine/pcode.mli: Format Instr Label Machine_model Pred Psb_isa Reg
