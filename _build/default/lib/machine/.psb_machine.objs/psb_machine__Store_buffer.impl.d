lib/machine/store_buffer.ml: Fault List Memory Pred Psb_isa
