open Psb_isa

let print code = Format.asprintf "%a" Pcode.pp code

exception Err of int * string

let fail ln fmt = Format.kasprintf (fun s -> raise (Err (ln, s))) fmt

let strip s =
  let is_ws c = c = ' ' || c = '\t' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ws s.[!i] do incr i done;
  while !j >= !i && is_ws s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let split_on_substring ~sep s =
  let seplen = String.length sep in
  let rec go acc start =
    match
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (String.sub s start (i - start) :: acc) (i + seplen)
  in
  go [] 0

let parse_pred ln s =
  let s = strip s in
  if s = "alw" then Pred.always
  else
    String.split_on_char '&' s
    |> List.fold_left
         (fun p lit ->
           let lit = strip lit in
           let neg = String.length lit > 0 && lit.[0] = '!' in
           let name = if neg then String.sub lit 1 (String.length lit - 1) else lit in
           if String.length name < 2 || name.[0] <> 'c' then
             fail ln "bad predicate literal %S" lit
           else
             match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
             | Some i when i >= 0 -> (
                 match Pred.conj p (Cond.make i) (not neg) with
                 | p -> p
                 | exception Invalid_argument m -> fail ln "%s" m)
             | _ -> fail ln "bad predicate literal %S" lit)
         Pred.always

let parse_shadow ln s =
  (* "[shadow:r1 r2]" *)
  let inner = String.sub s 8 (String.length s - 9) in
  String.split_on_char ' ' inner
  |> List.filter (fun t -> t <> "")
  |> List.fold_left
       (fun acc tok ->
         if String.length tok >= 2 && tok.[0] = 'r' then
           match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
           | Some i when i >= 0 -> Reg.Set.add (Reg.make i) acc
           | _ -> fail ln "bad shadow register %S" tok
         else fail ln "bad shadow register %S" tok)
       Reg.Set.empty

let parse_slot ln s =
  let s = strip s in
  match split_on_substring ~sep:" ? " s with
  | [ pred_s; rest ] -> (
      let pred = parse_pred ln pred_s in
      let rest = strip rest in
      if rest = "halt" then Pcode.exit_stop pred
      else if String.length rest > 2 && String.sub rest 0 2 = "j " then
        Pcode.exit_to pred (Label.make (strip (String.sub rest 2 (String.length rest - 2))))
      else
        let body, shadow =
          match String.index_opt rest '[' with
          | Some i when String.length rest - i >= 9
                        && String.sub rest i 8 = "[shadow:" ->
              ( strip (String.sub rest 0 i),
                parse_shadow ln (String.sub rest i (String.length rest - i)) )
          | _ -> (rest, Reg.Set.empty)
        in
        match Asm.op_of_string body with
        | Ok op -> Pcode.op ~shadow_srcs:shadow pred op
        | Error m -> fail ln "%s" m)
  | _ -> fail ln "expected `PRED ? OP`, got %S" s

let parse text =
  let lines = String.split_on_char '\n' text in
  try
    let entry = ref None in
    let regions = ref [] in
    let current : (Label.t * Pcode.bundle list) option ref = ref None in
    let finish () =
      match !current with
      | None -> ()
      | Some (name, rev_bundles) ->
          regions :=
            {
              Pcode.name;
              code = Array.of_list (List.rev rev_bundles);
              source_blocks = [];
            }
            :: !regions;
          current := None
    in
    List.iteri
      (fun idx raw ->
        let ln = idx + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let line = strip line in
        if line = "" then ()
        else if String.length line > 6 && String.sub line 0 6 = "entry " then begin
          if !entry <> None then fail ln "duplicate entry declaration";
          entry := Some (Label.make (strip (String.sub line 6 (String.length line - 6))))
        end
        else if
          String.length line > 7
          && String.sub line 0 7 = "region "
          && line.[String.length line - 1] = ':'
        then begin
          finish ();
          current :=
            Some (Label.make (strip (String.sub line 7 (String.length line - 8))), [])
        end
        else if String.length line > 0 && line.[0] = '(' then begin
          match String.index_opt line ')' with
          | None -> fail ln "missing bundle index"
          | Some i -> (
              let n =
                match int_of_string_opt (String.sub line 1 (i - 1)) with
                | Some n -> n
                | None -> fail ln "bad bundle index"
              in
              let rest = String.sub line (i + 1) (String.length line - i - 1) in
              let bundle =
                if strip rest = "" then []
                else split_on_substring ~sep:"||" rest |> List.map (parse_slot ln)
              in
              match !current with
              | None -> fail ln "bundle outside any region"
              | Some (name, bs) ->
                  if List.length bs <> n then
                    fail ln "bundle index %d out of sequence (expected %d)" n
                      (List.length bs);
                  current := Some (name, bundle :: bs))
        end
        else fail ln "cannot parse line %S" line)
      lines;
    finish ();
    match !entry with
    | None -> Error "no entry declaration"
    | Some entry -> (
        match Pcode.make ~entry (List.rev !regions) with
        | code -> Ok code
        | exception Invalid_argument m -> Error m)
  with Err (ln, m) -> Error (Format.asprintf "line %d: %s" ln m)

let parse_exn text =
  match parse text with Ok c -> c | Error m -> failwith ("Pcode_text.parse: " ^ m)
