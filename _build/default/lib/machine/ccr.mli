(** Condition code register: [K] branch conditions, each true, false or
    unspecified. Conditions are region-local: {!reset} is applied by the
    hardware on every region transition (§3.3). *)

open Psb_isa

type t

val create : width:int -> t
val width : t -> int

val get : t -> Cond.t -> Pred.cond_value
(** @raise Invalid_argument if the condition is outside the CCR. *)

val set : t -> Cond.t -> bool -> unit
val reset : t -> unit
val copy : t -> t
val assign : t -> from:t -> unit
(** Overwrite the contents of [t] with those of [from]. *)

val lookup : t -> Cond.t -> Pred.cond_value
(** Same as {!get}; shaped for {!Pred.eval}. *)

val eval : t -> Pred.t -> Pred.value
val all_specified : t -> Pred.t -> bool
val pp : Format.formatter -> t -> unit
