(** Predicated register file (Figure 2).

    Each entry holds a sequential value and (at most) one speculative value
    labelled with its predicate, plus flags: V (speculative value valid) and
    E (outstanding speculative exception). The paper's W flag — which of the
    two physical storages currently holds the speculative value, flipped on
    commit to avoid a copy — is an implementation trick; here commit copies
    the shadow into the sequential storage, which is observably identical.

    Two capacity models: [Single] (the paper's cost-reduced design — a
    second same-register speculative write with a different predicate is a
    {e storage conflict} and must stall, footnote 1) and [Infinite]
    (the idealised design used to bound the cost of that choice). *)

open Psb_isa

type mode = Single | Infinite

type t

val create : ?mode:mode -> nregs:int -> unit -> t
val nregs : t -> int
val mode : t -> mode

val read_seq : t -> Reg.t -> int

val read : t -> Reg.t -> shadow:bool -> pred:Pred.t -> int
(** Operand fetch. With [shadow:true] the speculative value is returned if
    valid, falling back to the sequential register otherwise (the §3.5
    operand-fetch fix). [pred] is the reader's predicate, used in the
    [Infinite] model to pick the matching speculative version. *)

val read_fault : t -> Reg.t -> shadow:bool -> pred:Pred.t -> Fault.t option
(** The buffered exception attached to the value {!read} would return, if
    any (a corrupted operand propagates corruption, sentinel-style). *)

val write_seq : t -> Reg.t -> int -> unit

val write_spec :
  t -> Reg.t -> int -> pred:Pred.t -> fault:Fault.t option ->
  [ `Ok | `Conflict ]
(** Speculative write: buffer the value with its predicate; sets V, and E
    when [fault] is given. [`Conflict] (single-shadow model only) when a
    valid speculative value with a different predicate already occupies the
    entry — the machine must stall the writer. *)

val committing_exceptions :
  t -> (Cond.t -> Pred.cond_value) -> (Reg.t * Fault.t) list
(** Buffered exceptions whose predicate evaluates true under the given
    (tentative) CCR — the detection signal of §3.5. *)

val tick : t -> (Cond.t -> Pred.cond_value) -> (Reg.t * [ `Commit | `Squash ]) list
(** Evaluate every valid speculative entry: true → commit (copy to
    sequential state, clear V), false → squash (clear V). Returns what
    happened, in register order, for event tracing. Entries with E must
    have been intercepted by {!committing_exceptions} first; a committing
    entry with E set is an internal error. *)

val invalidate_spec : t -> unit
(** Clear all speculative state (on exception detection and region exit). *)

val has_spec : t -> bool
val conflicts : t -> int
(** Number of storage conflicts reported so far (ablation statistic). *)

val spec_writes : t -> int
val commits : t -> int
val squashes : t -> int
val final_state : t -> int Reg.Map.t
(** Sequential values of registers ever written. *)
