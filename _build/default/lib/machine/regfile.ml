open Psb_isa

type mode = Single | Infinite

type version = {
  value : int;
  pred : Pred.t;
  fault : Fault.t option;
  seqno : int; (* issue order, newest wins on reads *)
}

type entry = {
  mutable seq : int;
  mutable written : bool;
  mutable versions : version list; (* valid speculative versions, newest first *)
}

type t = {
  mode : mode;
  entries : entry array;
  mutable conflicts : int;
  mutable spec_writes : int;
  mutable commits : int;
  mutable squashes : int;
  mutable next_seqno : int;
}

let create ?(mode = Single) ~nregs () =
  {
    mode;
    entries =
      Array.init (max nregs 1) (fun _ ->
          { seq = 0; written = false; versions = [] });
    conflicts = 0;
    spec_writes = 0;
    commits = 0;
    squashes = 0;
    next_seqno = 0;
  }

let nregs t = Array.length t.entries
let mode t = t.mode
let entry t r = t.entries.(Reg.index r)
let read_seq t r = (entry t r).seq

(* Pick the speculative version a reader with predicate [pred] should see:
   the newest version whose predicate is not on a mutually-exclusive path.
   In the Single model there is at most one version. *)
let pick_version e ~pred =
  List.find_opt (fun v -> not (Pred.disjoint v.pred pred)) e.versions

let read t r ~shadow ~pred =
  let e = entry t r in
  if shadow then
    match pick_version e ~pred with Some v -> v.value | None -> e.seq
  else e.seq

let read_fault t r ~shadow ~pred =
  let e = entry t r in
  if shadow then
    match pick_version e ~pred with Some v -> v.fault | None -> None
  else None

let write_seq t r v =
  let e = entry t r in
  e.seq <- v;
  e.written <- true

let write_spec t r value ~pred ~fault =
  let e = entry t r in
  t.spec_writes <- t.spec_writes + 1;
  (* A same-predicate rewrite (speculative WAW on one path) takes the new
     value, but flag E is sticky: an outstanding exception buffered in the
     overwritten version must still be detected when the predicate commits
     — the excepting instruction's result may be dead, its exception is
     not. Recovery re-executes both instructions in order, so the final
     value regenerates correctly. The earliest fault wins, matching the
     order recovery would handle them. *)
  let merge_fault old_fault =
    match old_fault with Some f -> Some f | None -> fault
  in
  let fresh = { value; pred; fault; seqno = t.next_seqno } in
  t.next_seqno <- t.next_seqno + 1;
  match t.mode with
  | Infinite ->
      let same, rest =
        List.partition (fun v -> Pred.equal v.pred pred) e.versions
      in
      let fresh =
        match same with
        | v :: _ -> { fresh with fault = merge_fault v.fault }
        | [] -> fresh
      in
      e.versions <- fresh :: rest;
      `Ok
  | Single -> (
      match e.versions with
      | [] ->
          e.versions <- [ fresh ];
          `Ok
      | [ v ] when Pred.equal v.pred pred ->
          e.versions <- [ { fresh with fault = merge_fault v.fault } ];
          `Ok
      | _ ->
          t.conflicts <- t.conflicts + 1;
          `Conflict)

let committing_exceptions t lookup =
  Array.to_seqi t.entries
  |> Seq.concat_map (fun (i, e) ->
         List.to_seq e.versions
         |> Seq.filter_map (fun v ->
                match v.fault with
                | Some f when Pred.eval v.pred lookup = Pred.True ->
                    Some (Reg.make i, f)
                | Some _ | None -> None))
  |> List.of_seq

let tick t lookup =
  let events = ref [] in
  Array.iteri
    (fun idx e ->
      if e.versions <> [] then begin
        (* Commits are processed oldest-first so that if several versions
           of the same register commit in one cycle (compiler bug in the
           Single model, possible WAW in Infinite), the newest wins. *)
        let committing, rest =
          List.partition (fun v -> Pred.eval v.pred lookup = Pred.True) e.versions
        in
        (match List.sort (fun a b -> compare a.seqno b.seqno) committing with
        | [] -> ()
        | winners ->
            List.iter
              (fun v ->
                assert (v.fault = None);
                t.commits <- t.commits + 1;
                e.seq <- v.value;
                e.written <- true)
              winners;
            events := (Reg.make idx, `Commit) :: !events);
        let keep, squashed =
          List.partition (fun v -> Pred.eval v.pred lookup <> Pred.False) rest
        in
        t.squashes <- t.squashes + List.length squashed;
        if squashed <> [] then events := (Reg.make idx, `Squash) :: !events;
        e.versions <- keep
      end)
    t.entries;
  List.rev !events

let invalidate_spec t = Array.iter (fun e -> e.versions <- []) t.entries
let has_spec t = Array.exists (fun e -> e.versions <> []) t.entries
let conflicts t = t.conflicts
let spec_writes t = t.spec_writes
let commits t = t.commits
let squashes t = t.squashes

let final_state t =
  Array.to_seqi t.entries
  |> Seq.filter (fun (_, e) -> e.written)
  |> Seq.fold_left (fun m (i, e) -> Reg.Map.add (Reg.make i) e.seq m) Reg.Map.empty
