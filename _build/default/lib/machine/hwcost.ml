type params = {
  nregs : int;
  width : int;
  read_ports : int;
  write_ports : int;
  ccr_size : int;
  shadow_read_ports : int;
  shadow_write_ports : int;
}

let default =
  {
    nregs = 32;
    width = 32;
    read_ports = 8;
    write_ports = 4;
    ccr_size = 4;
    (* The shadow value is read through the same operand-fetch path but
       needs its own write ports for speculative writebacks plus the
       commit-copy path. *)
    shadow_read_ports = 8;
    shadow_write_ports = 1;
  }

type report = {
  base_transistors : int;
  storage_transistors : int;
  commit_transistors : int;
  storage_overhead : float;
  commit_overhead : float;
  total_overhead : float;
  eval_gate_levels : int;
  encode_bits_region : int;
  encode_bits_trace : int;
  encode_bits_srcs : int;
}

(* A multi-ported SRAM cell: a cross-coupled pair (4T) plus one pass
   transistor per single-ended port connection. *)
let cell_transistors ~read_ports ~write_ports = 4 + read_ports + write_ports

let xor_t = 6 (* CMOS XOR *)
let or_t = 4
let and_t = 4
let flipflop_t = 8

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let analyze p =
  let base_cell = cell_transistors ~read_ports:p.read_ports ~write_ports:p.write_ports in
  let base = p.nregs * p.width * base_cell in
  let shadow_cell =
    cell_transistors ~read_ports:p.shadow_read_ports ~write_ports:p.shadow_write_ports
  in
  let storage = p.nregs * p.width * shadow_cell in
  (* Commit hardware per entry: 2K bits of ternary predicate storage, the
     masked-match logic (XOR + OR per condition, an AND tree), the three
     flags (W, V, E) and their update logic. *)
  let pred_storage = 2 * p.ccr_size * flipflop_t in
  let match_logic = p.ccr_size * (xor_t + or_t) + (p.ccr_size - 1) * and_t in
  let flags = 3 * (flipflop_t + and_t) in
  let commit = p.nregs * (pred_storage + match_logic + flags) in
  let fb = float_of_int base in
  {
    base_transistors = base;
    storage_transistors = storage;
    commit_transistors = commit;
    storage_overhead = float_of_int storage /. fb;
    commit_overhead = float_of_int commit /. fb;
    total_overhead = float_of_int (storage + commit) /. fb;
    eval_gate_levels = 3;
    encode_bits_region = 2 * p.ccr_size;
    encode_bits_trace = ceil_log2 p.ccr_size + 1;
    encode_bits_srcs = 2;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>base register file:     %d transistors@,\
     speculative storage:   +%d (%.0f%%)@,\
     commit hardware:       +%d (%.0f%%)@,\
     total overhead:        %.0f%%@,\
     predicate evaluation:  %d gate levels@,\
     encoding: region +%d predicate bits, trace +%d bits, +%d source bits@]"
    r.base_transistors r.storage_transistors (100. *. r.storage_overhead)
    r.commit_transistors (100. *. r.commit_overhead)
    (100. *. r.total_overhead) r.eval_gate_levels r.encode_bits_region
    r.encode_bits_trace r.encode_bits_srcs
