open Psb_isa

type t = {
  cfg : Cfg.t;
  dom : Label.Set.t Label.Map.t; (* block -> its dominators *)
  pdom : Label.Set.t Label.Map.t; (* block -> its post-dominators *)
}

(* Iterative set-based dataflow: dom(b) = {b} ∪ ⋂ dom(preds b). Graphs here
   are small (tens of blocks), so the simple algorithm is the right one. *)
let solve nodes entry_nodes preds =
  let all = List.fold_left (fun s l -> Label.Set.add l s) Label.Set.empty nodes in
  let init =
    List.fold_left
      (fun m l ->
        let s =
          if List.exists (Label.equal l) entry_nodes then Label.Set.singleton l
          else all
        in
        Label.Map.add l s m)
      Label.Map.empty nodes
  in
  let step m =
    List.fold_left
      (fun (m, changed) l ->
        if List.exists (Label.equal l) entry_nodes then (m, changed)
        else
          let ps = preds l in
          let meet =
            match ps with
            | [] -> Label.Set.singleton l (* unreachable in this direction *)
            | p :: rest ->
                List.fold_left
                  (fun acc q -> Label.Set.inter acc (Label.Map.find q m))
                  (Label.Map.find p m) rest
          in
          let s = Label.Set.add l meet in
          if Label.Set.equal s (Label.Map.find l m) then (m, changed)
          else (Label.Map.add l s m, true))
      (m, false) nodes
  in
  let rec fixpoint m =
    let m, changed = step m in
    if changed then fixpoint m else m
  in
  fixpoint init

let compute cfg =
  let nodes = Cfg.rpo cfg in
  let dom = solve nodes [ Cfg.entry cfg ] (Cfg.preds cfg) in
  let exit_nodes = Cfg.exits cfg in
  (* Post-dominance: run the same solver on the reversed graph, with every
     Halt block as an entry (this is the virtual-exit construction). *)
  let pdom = solve nodes exit_nodes (Cfg.succs cfg) in
  { cfg; dom; pdom }

let dominates t a b =
  match Label.Map.find_opt b t.dom with
  | Some s -> Label.Set.mem a s
  | None -> false

let postdominates t a b =
  match Label.Map.find_opt b t.pdom with
  | Some s -> Label.Set.mem a s
  | None -> false

let idom t b =
  match Label.Map.find_opt b t.dom with
  | None -> None
  | Some s ->
      let strict = Label.Set.remove b s in
      (* The immediate dominator is the strict dominator dominated by all
         other strict dominators. *)
      Label.Set.fold
        (fun cand acc ->
          match acc with
          | Some best when dominates t cand best -> acc
          | _ when Label.Set.for_all (fun d -> dominates t d cand) strict ->
              Some cand
          | _ -> acc)
        strict None

let equivalent t x y = dominates t x y && postdominates t y x

let dominance_frontier t b =
  List.filter
    (fun y ->
      (not (dominates t b y && not (Label.equal b y)))
      && List.exists (fun p -> dominates t b p) (Cfg.preds t.cfg y))
    (Cfg.rpo t.cfg)
