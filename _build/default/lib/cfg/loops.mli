(** Natural-loop detection. Loop heads are the seeds from which the
    paper's region former grows regions (§3.3). *)

open Psb_isa

type loop = { head : Label.t; body : Label.Set.t }

val back_edges : Cfg.t -> Dominance.t -> (Label.t * Label.t) list
(** Edges [(src, head)] where [head] dominates [src]. *)

val natural_loops : Cfg.t -> Dominance.t -> loop list
(** One loop per head, bodies of same-head back edges merged, ordered by
    reverse post-order of the head. *)

val loop_heads : Cfg.t -> Dominance.t -> Label.t list

val in_loop : loop -> Label.t -> bool
