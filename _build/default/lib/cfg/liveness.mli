(** Backward liveness analysis of general registers.

    Used by register renaming (a legal rename target must be dead on the
    side-effect-causing path, §2.1) and by the schedule validator. *)

open Psb_isa

type t

val compute : Cfg.t -> t

val live_in : t -> Label.t -> Reg.Set.t
val live_out : t -> Label.t -> Reg.Set.t

val live_before : t -> Label.t -> int -> Reg.Set.t
(** [live_before t l i]: registers live immediately before the [i]-th
    operation of block [l] ([i] ranges over [0 .. length body]; at
    [length body] this is the set live before the terminator, which equals
    [live_out] since terminators read no general registers). *)

val dead_at_entry : t -> Label.t -> avoid:Reg.Set.t -> max_reg:int -> Reg.t option
(** A register not live into [l] and not in [avoid]; fresh registers above
    [max_reg] are preferred when none of the existing ones is free. *)
