(** Control-flow graph over the basic blocks of a scalar program. *)

open Psb_isa

type t

val of_program : Program.t -> t
val program : t -> Program.t
val entry : t -> Label.t

val block : t -> Label.t -> Program.block
val blocks : t -> Program.block list
(** In reverse post-order from the entry (unreachable blocks omitted). *)

val succs : t -> Label.t -> Label.t list
val preds : t -> Label.t -> Label.t list
val rpo : t -> Label.t list
val reachable : t -> Label.t -> bool
val exits : t -> Label.t list
(** Blocks terminated by [Halt]. *)

val num_blocks : t -> int
