open Psb_isa

type loop = { head : Label.t; body : Label.Set.t }

let back_edges cfg dom =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun s -> if Dominance.dominates dom s l then Some (l, s) else None)
        (Cfg.succs cfg l))
    (Cfg.rpo cfg)

(* Natural loop of back edge (src, head): head plus all nodes that reach
   src without passing through head. *)
let loop_body cfg (src, head) =
  let body = ref (Label.Set.add head Label.Set.empty) in
  let rec pull l =
    if not (Label.Set.mem l !body) then begin
      body := Label.Set.add l !body;
      List.iter pull (Cfg.preds cfg l)
    end
  in
  pull src;
  !body

let natural_loops cfg dom =
  let edges = back_edges cfg dom in
  let by_head = Hashtbl.create 8 in
  List.iter
    (fun ((_, head) as e) ->
      let body = loop_body cfg e in
      let cur =
        Option.value (Hashtbl.find_opt by_head head) ~default:Label.Set.empty
      in
      Hashtbl.replace by_head head (Label.Set.union cur body))
    edges;
  List.filter_map
    (fun l ->
      Option.map (fun body -> { head = l; body }) (Hashtbl.find_opt by_head l))
    (Cfg.rpo cfg)

let loop_heads cfg dom = List.map (fun l -> l.head) (natural_loops cfg dom)
let in_loop loop l = Label.Set.mem l loop.body
