open Psb_isa

type t = {
  program : Program.t;
  preds : Label.t list Label.Map.t;
  rpo : Label.t list;
}

let compute_rpo program =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      let b = Program.find program l in
      List.iter dfs (Program.successors b);
      order := l :: !order
    end
  in
  dfs program.Program.entry;
  !order

let of_program program =
  let rpo = compute_rpo program in
  let preds =
    List.fold_left
      (fun acc l ->
        let b = Program.find program l in
        List.fold_left
          (fun acc s ->
            let existing = Option.value (Label.Map.find_opt s acc) ~default:[] in
            if List.exists (Label.equal l) existing then acc
            else Label.Map.add s (l :: existing) acc)
          acc (Program.successors b))
      Label.Map.empty rpo
  in
  { program; preds; rpo }

let program t = t.program
let entry t = t.program.Program.entry
let block t l = Program.find t.program l
let blocks t = List.map (block t) t.rpo
let succs t l = Program.successors (block t l)
let preds t l = Option.value (Label.Map.find_opt l t.preds) ~default:[]
let rpo t = t.rpo
let reachable t l = List.exists (Label.equal l) t.rpo

let exits t =
  List.filter
    (fun l -> match (block t l).Program.term with Instr.Halt -> true | _ -> false)
    t.rpo

let num_blocks t = List.length t.rpo
