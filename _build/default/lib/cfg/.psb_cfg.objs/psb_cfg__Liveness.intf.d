lib/cfg/liveness.mli: Cfg Label Psb_isa Reg
