lib/cfg/branch_predict.ml: Cfg Dominance Instr Label List Option Program Psb_isa Trace
