lib/cfg/liveness.ml: Cfg Instr Label List Option Program Psb_isa Reg
