lib/cfg/cfg.mli: Label Program Psb_isa
