lib/cfg/loops.mli: Cfg Dominance Label Psb_isa
