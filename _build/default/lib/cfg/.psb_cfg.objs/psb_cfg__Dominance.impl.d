lib/cfg/dominance.ml: Cfg Label List Psb_isa
