lib/cfg/branch_predict.mli: Cfg Dominance Label Psb_isa Trace
