lib/cfg/dominance.mli: Cfg Label Psb_isa
