lib/cfg/cfg.ml: Hashtbl Instr Label List Option Program Psb_isa
