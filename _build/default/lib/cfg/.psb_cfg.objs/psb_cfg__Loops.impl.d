lib/cfg/loops.ml: Cfg Dominance Hashtbl Label List Option Psb_isa
