(** Dominators, post-dominators and control equivalence.

    The paper's region former needs dominance (the header must dominate
    every block of a region) and the equivalence test of §3.3 footnote 2:
    block [X] is equivalent to [Y] iff [X] dominates [Y] and [Y]
    post-dominates [X] — an equivalent join block inherits the control
    dependence of its equivalent block and needs no duplication. *)

open Psb_isa

type t

val compute : Cfg.t -> t

val dominates : t -> Label.t -> Label.t -> bool
(** [dominates t a b]: every path from entry to [b] passes through [a].
    Reflexive. *)

val idom : t -> Label.t -> Label.t option
(** Immediate dominator ([None] for the entry). *)

val postdominates : t -> Label.t -> Label.t -> bool
(** [postdominates t a b]: every path from [b] to program exit passes
    through [a]. Computed against a virtual exit joining all [Halt]
    blocks. *)

val equivalent : t -> Label.t -> Label.t -> bool
(** [equivalent t x y]: [x] dominates [y] and [y] post-dominates [x]. *)

val dominance_frontier : t -> Label.t -> Label.t list
