open Psb_isa

type t = {
  cfg : Cfg.t;
  live_in : Reg.Set.t Label.Map.t;
  live_out : Reg.Set.t Label.Map.t;
}

let of_list = List.fold_left (fun s r -> Reg.Set.add r s) Reg.Set.empty

(* Registers the terminator reads (a Br tests its source register). *)
let term_uses (b : Program.block) =
  match b.Program.term with
  | Instr.Br { src; _ } -> Reg.Set.singleton src
  | Instr.Jmp _ | Instr.Halt -> Reg.Set.empty

let block_use_def (b : Program.block) =
  (* use = registers read before any write in the block; def = written.
     The terminator reads at the end of the block: its source is a use
     unless defined earlier in the block. *)
  let use, def =
    List.fold_left
      (fun (use, def) op ->
        let use =
          List.fold_left
            (fun u r -> if Reg.Set.mem r def then u else Reg.Set.add r u)
            use (Instr.uses op)
        in
        (use, Reg.Set.union def (of_list (Instr.defs op))))
      (Reg.Set.empty, Reg.Set.empty)
      b.Program.body
  in
  (Reg.Set.union use (Reg.Set.diff (term_uses b) def), def)

let compute cfg =
  let nodes = Cfg.rpo cfg in
  let use_def =
    List.fold_left
      (fun m l -> Label.Map.add l (block_use_def (Cfg.block cfg l)) m)
      Label.Map.empty nodes
  in
  let live_in = ref Label.Map.empty and live_out = ref Label.Map.empty in
  List.iter
    (fun l ->
      live_in := Label.Map.add l Reg.Set.empty !live_in;
      live_out := Label.Map.add l Reg.Set.empty !live_out)
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in post-order for fast convergence of the backward problem. *)
    List.iter
      (fun l ->
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc (Label.Map.find s !live_in))
            Reg.Set.empty (Cfg.succs cfg l)
        in
        let use, def = Label.Map.find l use_def in
        let inn = Reg.Set.union use (Reg.Set.diff out def) in
        if not (Reg.Set.equal out (Label.Map.find l !live_out)) then begin
          live_out := Label.Map.add l out !live_out;
          changed := true
        end;
        if not (Reg.Set.equal inn (Label.Map.find l !live_in)) then begin
          live_in := Label.Map.add l inn !live_in;
          changed := true
        end)
      (List.rev nodes)
  done;
  { cfg; live_in = !live_in; live_out = !live_out }

let live_in t l =
  Option.value (Label.Map.find_opt l t.live_in) ~default:Reg.Set.empty

let live_out t l =
  Option.value (Label.Map.find_opt l t.live_out) ~default:Reg.Set.empty

let live_before t l i =
  let b = Cfg.block t.cfg l in
  let ops = b.Program.body in
  let n = List.length ops in
  if i > n then invalid_arg "Liveness.live_before: index out of range";
  (* Walk backwards from block exit to position i; the terminator's read
     happens after the last operation. *)
  let rec back j live rev_ops =
    if j < i then live
    else
      match rev_ops with
      | [] -> live
      | op :: rest ->
          let live =
            Reg.Set.union
              (of_list (Instr.uses op))
              (Reg.Set.diff live (of_list (Instr.defs op)))
          in
          back (j - 1) live rest
  in
  back (n - 1) (Reg.Set.union (live_out t l) (term_uses b)) (List.rev ops)

let dead_at_entry t l ~avoid ~max_reg =
  let live = live_in t l in
  let rec try_existing i =
    if i > max_reg then None
    else
      let r = Reg.make i in
      if Reg.Set.mem r live || Reg.Set.mem r avoid then try_existing (i + 1)
      else Some r
  in
  match try_existing 0 with
  | Some r -> Some r
  | None -> Some (Reg.make (max_reg + 1))
