(** compress-like kernel: LZW dictionary build with open-addressing hash
    probing.

    The probe loop's hit/miss/collision branches are data-dependent, like
    the paper's [compress] (Table 3: 0.88 at depth 1 decaying to 0.22 at
    depth 8) — the workload where region predicating gains most over
    trace-limited speculation. *)

val workload : Dsl.t
