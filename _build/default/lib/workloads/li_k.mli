(** li-like kernel: expression-tree reduction with an explicit stack.

    Pointer-chasing over heap-allocated nodes with a data-dependent tag
    dispatch — the lisp-interpreter access pattern of the paper's [li]
    (Table 3: 0.88 → 0.38). The critical path runs through unsafe loads,
    which is exactly what buffered speculation accelerates. *)

val workload : Dsl.t
