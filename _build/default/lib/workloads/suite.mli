(** The benchmark suite: the six kernels standing in for the paper's
    programs (Table 2). *)

val all : Dsl.t list
(** In the paper's order: compress, eqntott, espresso, grep, li, nroff. *)

val find : string -> Dsl.t
(** @raise Not_found for unknown names. *)

val names : string list
