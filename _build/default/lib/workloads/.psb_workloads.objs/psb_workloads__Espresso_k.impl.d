lib/workloads/espresso_k.ml: Dsl Memory Opcode Program Psb_isa
