lib/workloads/li_k.mli: Dsl
