lib/workloads/nroff_k.mli: Dsl
