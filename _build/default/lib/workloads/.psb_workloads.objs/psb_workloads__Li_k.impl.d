lib/workloads/li_k.ml: Dsl Memory Opcode Program Psb_isa
