lib/workloads/suite.ml: Compress_k Dsl Eqntott_k Espresso_k Grep_k Li_k List Nroff_k
