lib/workloads/synth.ml: Dsl Format List Memory Opcode Program Psb_isa
