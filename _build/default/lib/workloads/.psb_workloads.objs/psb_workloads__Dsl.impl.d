lib/workloads/dsl.ml: Instr Label Memory Opcode Operand Program Psb_isa Reg
