lib/workloads/espresso_k.mli: Dsl
