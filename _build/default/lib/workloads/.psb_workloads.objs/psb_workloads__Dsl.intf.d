lib/workloads/dsl.mli: Instr Label Memory Opcode Operand Program Psb_isa Reg
