lib/workloads/eqntott_k.ml: Array Dsl Memory Opcode Program Psb_isa
