lib/workloads/grep_k.mli: Dsl
