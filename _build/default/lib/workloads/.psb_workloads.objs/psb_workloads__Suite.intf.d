lib/workloads/suite.mli: Dsl
