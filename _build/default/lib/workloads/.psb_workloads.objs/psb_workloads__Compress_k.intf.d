lib/workloads/compress_k.mli: Dsl
