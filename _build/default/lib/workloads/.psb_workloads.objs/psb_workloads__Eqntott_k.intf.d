lib/workloads/eqntott_k.mli: Dsl
