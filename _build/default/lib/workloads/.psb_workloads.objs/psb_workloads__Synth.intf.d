lib/workloads/synth.mli: Dsl
