lib/workloads/grep_k.ml: Array Dsl List Memory Opcode Program Psb_isa
