lib/workloads/compress_k.ml: Dsl Memory Opcode Program Psb_isa
