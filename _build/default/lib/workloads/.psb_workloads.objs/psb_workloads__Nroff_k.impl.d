lib/workloads/nroff_k.ml: Dsl Memory Opcode Program Psb_isa
