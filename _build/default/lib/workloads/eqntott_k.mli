(** eqntott-like kernel: pairwise comparison of ternary bit-vector terms.

    The dominant function of the paper's [eqntott] is [cmppt], which
    compares two product terms element by element and leaves at the first
    difference — a data-dependent early-exit loop whose branches level off
    near 50% predictability at depth (Table 3: 0.87 → 0.49). *)

val workload : Dsl.t
