open Psb_isa
open Dsl

(* r1 = input index, r2 = prefix code, r3 = next free code, r4 = symbol,
   r5-r12 scratch, r13 = output checksum, r14 = key+1, r15 = h,
   r20 = input base, r21 = hash-key table, r22 = hash-code table.
   Hash tables are empty (0) initially; stored keys are key+1. *)

let n = 760
let hsize = 509 (* prime *)
let code_limit = 256 + 230 (* stop inserting when the table is nearly full,
                              like compress's dictionary cap *)

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry"
        [ mov 1 (i 0); mov 2 (i 0); mov 3 (i 256); mov 13 (i 0) ]
        (jmp "loop");
      block "loop"
        [ cmp 5 Opcode.Lt (r 1) (i n) ]
        (br 5 "body" "done");
      block "body"
        [
          add 6 (r 20) (r 1);
          load 4 6 0;
          sll 7 (r 2) (i 8);
          bor 7 (r 7) (r 4);
          (* h = key mod HSIZE *)
          div 8 (r 7) (i hsize);
          mul 8 (r 8) (i hsize);
          sub 15 (r 7) (r 8);
          add 14 (r 7) (i 1);
        ]
        (jmp "probe");
      block "probe"
        [ add 9 (r 21) (r 15); load 10 9 0; cmp 5 Opcode.Eq (r 10) (i 0) ]
        (br 5 "miss" "check");
      block "check"
        [ cmp 5 Opcode.Eq (r 10) (r 14) ]
        (br 5 "hit" "collide");
      block "collide"
        [ add 15 (r 15) (i 1); cmp 5 Opcode.Ge (r 15) (i hsize) ]
        (br 5 "wrap" "probe");
      block "wrap" [ mov 15 (i 0) ] (jmp "probe");
      block "miss"
        [ cmp 5 Opcode.Lt (r 3) (i code_limit) ]
        (br 5 "insert" "emit_only");
      block "insert"
        [
          add 9 (r 21) (r 15);
          store 14 9 0;
          add 11 (r 22) (r 15);
          store 3 11 0;
          add 3 (r 3) (i 1);
        ]
        (jmp "emit_only");
      block "emit_only"
        [
          (* emit prefix code into the checksum, start a new prefix *)
          mul 13 (r 13) (i 31);
          add 13 (r 13) (r 2);
          band 13 (r 13) (i 0xFFFFFF);
          mov 2 (r 4);
        ]
        (jmp "next");
      block "hit" [ add 12 (r 22) (r 15); load 2 12 0 ] (jmp "next");
      block "next" [ add 1 (r 1) (i 1) ] (jmp "loop");
      block "done" [ out (r 13); out (r 3) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:4096 in
  let rand = lcg 1234 in
  (* a small alphabet with skewed frequencies gives repeating digrams,
     so the dictionary gets both hits and misses *)
  for k = 0 to n - 1 do
    let v = match rand () mod 8 with 0 | 1 | 2 -> 1 | 3 | 4 -> 2 | 5 -> 3 | 6 -> 4 | _ -> rand () mod 16 in
    Memory.poke mem k v
  done;
  mem

let workload =
  {
    name = "compress";
    description = "LZW hash probing (data-dependent branches)";
    program;
    regs = [ (reg 20, 0); (reg 21, 1024); (reg 22, 2048) ];
    make_mem;
  }
