(** grep-like kernel: naive string search.

    Scans a text for a short pattern; the inner-loop "mismatch, advance"
    branch is almost always taken, making this — like the paper's [grep] —
    an extremely branch-predictable workload (Table 3: 0.97 at depth 1,
    still 0.83 at depth 8). *)

val workload : Dsl.t
