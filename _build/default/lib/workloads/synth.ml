open Psb_isa
open Dsl

type params = {
  iterations : int;
  depth : int;
  taken_prob : float;
  work_per_arm : int;
  seed : int;
}

let default =
  { iterations = 300; depth = 3; taken_prob = 0.5; work_per_arm = 2; seed = 5 }

let name_of p =
  Format.asprintf "synth-d%d-p%02.0f" p.depth (p.taken_prob *. 100.)

(* r1 = iteration counter, r2 = accumulator, r3 = random-table cursor,
   r4-r9 scratch, r20 = decision-table base. The table holds [depth]
   decisions per iteration. *)
let generate p =
  let diamond k =
    let pre = Format.asprintf "d%d" k in
    [
      block (pre ^ "_test")
        [ add 5 (r 20) (r 3); load 4 5 0; add 3 (r 3) (i 1);
          cmp 6 Opcode.Ne (r 4) (i 0) ]
        (br 6 (pre ^ "_then") (pre ^ "_else"));
      block (pre ^ "_then")
        (List.init p.work_per_arm (fun w ->
             add 2 (r 2) (i ((k * 7) + w + 1))))
        (jmp (pre ^ "_join"));
      block (pre ^ "_else")
        (List.init p.work_per_arm (fun w ->
             bxor 2 (r 2) (i ((k * 13) + w + 3))))
        (jmp (pre ^ "_join"));
      block (pre ^ "_join") []
        (jmp (if k + 1 < p.depth then Format.asprintf "d%d_test" (k + 1)
              else "latch"));
    ]
  in
  let blocks =
    [
      block "entry" [ mov 1 (i 0); mov 2 (i 0); mov 3 (i 0) ] (jmp "head");
      block "head"
        [ cmp 6 Opcode.Lt (r 1) (i p.iterations) ]
        (br 6 "d0_test" "done");
    ]
    @ List.concat_map diamond (List.init p.depth (fun k -> k))
    @ [
        block "latch" [ add 1 (r 1) (i 1) ] (jmp "head");
        block "done" [ out (r 2) ] halt;
      ]
  in
  let program = Program.make ~entry:(lbl "entry") blocks in
  let make_mem () =
    let size = max 256 (p.iterations * p.depth * 2) in
    let mem = Memory.create ~size in
    let rand = lcg p.seed in
    let threshold = int_of_float (p.taken_prob *. 1024.) in
    for k = 0 to (p.iterations * p.depth) - 1 do
      Memory.poke mem k (if rand () mod 1024 < threshold then 1 else 0)
    done;
    mem
  in
  {
    name = name_of p;
    description = "synthetic diamond chain";
    program;
    regs = [ (reg 20, 0) ];
    make_mem;
  }
