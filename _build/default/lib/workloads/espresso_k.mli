(** espresso-like kernel: cube covering and distance over a PLA.

    Pairwise cover checks and distance counts over bitmask cubes — loops
    with moderately unpredictable data-dependent conditions, like the
    paper's [espresso] (Table 3: 0.85 → 0.33). *)

val workload : Dsl.t
