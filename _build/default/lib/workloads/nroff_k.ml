open Psb_isa
open Dsl

(* r1 = i, r2 = col, r3 = lines, r4 = word/char, r5-r8 scratch,
   r9 = checksum, r20 = word-length array, r21 = char array. *)

let nwords = 2600
let nchars = 3600
let width = 120

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (i 0); mov 2 (i 0); mov 3 (i 0) ] (jmp "fill");
      block "fill"
        [ cmp 5 Opcode.Lt (r 1) (i nwords) ]
        (br 5 "fill_body" "case_init");
      block "fill_body"
        [ add 6 (r 20) (r 1); load 4 6 0; add 7 (r 2) (r 4);
          cmp 5 Opcode.Gt (r 7) (i width) ]
        (br 5 "newline" "same_line");
      block "newline" [ add 3 (r 3) (i 1); mov 2 (r 4) ] (jmp "fill_next");
      block "same_line" [ add 2 (r 7) (i 1) ] (jmp "fill_next");
      block "fill_next" [ add 1 (r 1) (i 1) ] (jmp "fill");
      block "case_init" [ mov 1 (i 0); mov 9 (i 0) ] (jmp "case");
      block "case"
        [ cmp 5 Opcode.Lt (r 1) (i nchars) ]
        (br 5 "case_body" "done");
      block "case_body"
        [ add 6 (r 21) (r 1); load 4 6 0; cmp 5 Opcode.Ge (r 4) (i 97) ]
        (br 5 "to_upper" "keep");
      block "to_upper" [ sub 4 (r 4) (i 32) ] (jmp "accum");
      block "keep" [] (jmp "accum");
      block "accum"
        [ bxor 9 (r 9) (r 4); add 1 (r 1) (i 1) ]
        (jmp "case");
      block "done" [ out (r 3); out (r 9) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:8192 in
  let rand = lcg 7 in
  for k = 0 to nwords - 1 do
    Memory.poke mem k (1 + (rand () mod 6))
  done;
  for k = 0 to nchars - 1 do
    (* mostly lowercase letters, occasionally digits *)
    let v = if rand () mod 50 = 0 then 48 + (rand () mod 10) else 97 + (rand () mod 26) in
    Memory.poke mem (nwords + k) v
  done;
  mem

let workload =
  {
    name = "nroff";
    description = "line filling + case conversion (predictable branches)";
    program;
    regs = [ (reg 20, 0); (reg 21, nwords) ];
    make_mem;
  }
