open Psb_isa
open Dsl

(* Register plan: r1 = i, r2 = j, r3 = match count, r4 = N - M, r5 = M,
   r6 = scratch compare, r7-r11 = address/data scratch,
   r20 = text base, r21 = pattern base. *)

let text_base = 0
let n = 4800
let m = 4

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 3 (i 0); mov 1 (i 0) ] (jmp "outer");
      block "outer"
        [ cmp 6 Opcode.Le (r 1) (r 4) ]
        (br 6 "inner_init" "done");
      block "inner_init" [ mov 2 (i 0) ] (jmp "inner");
      block "inner"
        [ cmp 6 Opcode.Lt (r 2) (r 5) ]
        (br 6 "inner_body" "matched");
      block "inner_body"
        [
          add 7 (r 1) (r 2);
          add 9 (r 20) (r 7);
          load 8 9 0;
          add 10 (r 21) (r 2);
          load 11 10 0;
          cmp 6 Opcode.Eq (r 8) (r 11);
        ]
        (br 6 "inner_inc" "next_i");
      block "inner_inc" [ add 2 (r 2) (i 1) ] (jmp "inner");
      block "matched" [ add 3 (r 3) (i 1) ] (jmp "next_i");
      block "next_i" [ add 1 (r 1) (i 1) ] (jmp "outer");
      block "done" [ out (r 3) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:8192 in
  let rand = lcg 42 in
  for k = 0 to n - 1 do
    Memory.poke mem (text_base + k) (rand () mod 26)
  done;
  (* plant the pattern a few times *)
  let pat = [| 7; 3; 11; 19 |] in
  List.iter
    (fun at -> Array.iteri (fun k c -> Memory.poke mem (text_base + at + k) c) pat)
    [ 100; 700; 1311; 2444; 3900 ];
  let pat_base = n in
  Array.iteri (fun k c -> Memory.poke mem (pat_base + k) c) pat;
  mem

let workload =
  {
    name = "grep";
    description = "string search (highly predictable branches)";
    program;
    regs =
      [
        (reg 4, n - m);
        (reg 5, m);
        (reg 20, text_base);
        (reg 21, n);
      ];
    make_mem;
  }
