open Psb_isa
open Dsl

(* r1 = sp, r3 = accumulator, r4 = node pointer, r5-r10 scratch,
   r11 = op counter, r20 = heap base, r21 = stack base.
   Node layout: [tag; a; b] — tag 0: leaf, a = value;
   tag 1: add node, a/b = children; tag 2: negate node, a = child. *)

let program =
  Program.make ~entry:(lbl "entry")
    [
      (* push the root (node 0) *)
      block "entry"
        [ mov 4 (r 20); store 4 21 0; mov 1 (i 1); mov 3 (i 0); mov 11 (i 0) ]
        (jmp "loop");
      block "loop"
        [ cmp 5 Opcode.Gt (r 1) (i 0) ]
        (br 5 "pop" "done");
      block "pop"
        [
          sub 1 (r 1) (i 1);
          add 6 (r 21) (r 1);
          load 4 6 0;
          load 7 4 0 (* tag: pointer chase *);
          add 11 (r 11) (i 1);
          cmp 5 Opcode.Eq (r 7) (i 0);
        ]
        (br 5 "leaf" "inner");
      block "leaf" [ load 8 4 1; add 3 (r 3) (r 8) ] (jmp "loop");
      block "inner"
        [ cmp 5 Opcode.Eq (r 7) (i 1) ]
        (br 5 "add_node" "neg_node");
      block "add_node"
        [
          load 8 4 1;
          add 9 (r 21) (r 1);
          store 8 9 0;
          add 1 (r 1) (i 1);
          load 8 4 2;
          add 9 (r 21) (r 1);
          store 8 9 0;
          add 1 (r 1) (i 1);
        ]
        (jmp "loop");
      block "neg_node"
        [
          (* negate: subtract twice the subtree value later is complex;
             instead treat as leaf holding a negative constant in slot 1 *)
          load 8 4 1;
          sub 3 (r 3) (r 8);
        ]
        (jmp "loop");
      block "done" [ out (r 3); out (r 11) ] halt;
    ]

let heap_base = 0
let stack_base = 7000
let max_nodes = 2200

let make_mem () =
  let mem = Memory.create ~size:9000 in
  let rand = lcg 31415 in
  let next = ref 0 in
  let alloc () =
    let a = heap_base + (3 * !next) in
    incr next;
    if !next > max_nodes then failwith "li_k: heap overflow";
    a
  in
  (* build a random expression tree of the given node budget *)
  let rec build budget =
    let a = alloc () in
    if budget <= 1 then begin
      match rand () mod 3 with
      | 0 ->
          Memory.poke mem a 2;
          Memory.poke mem (a + 1) (rand () mod 50)
      | _ ->
          Memory.poke mem a 0;
          Memory.poke mem (a + 1) (rand () mod 100)
    end
    else begin
      Memory.poke mem a 1;
      let lb = 1 + (rand () mod (budget - 1)) in
      let l = build lb in
      let r = build (budget - lb) in
      Memory.poke mem (a + 1) l;
      Memory.poke mem (a + 2) r
    end;
    a
  in
  ignore (build 1050);
  mem

let workload =
  {
    name = "li";
    description = "expression-tree reduction (pointer chasing, tag dispatch)";
    program;
    regs = [ (reg 20, heap_base); (reg 21, stack_base) ];
    make_mem;
  }
