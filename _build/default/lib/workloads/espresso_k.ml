open Psb_isa
open Dsl

(* r1 = i, r2 = j, r3 = w, r4 = covers count, r5-r12 scratch,
   r13/r14 = cube bases, r15 = distance count, r16 = covered flag,
   r20 = cubes base. Cubes: ncubes rows of nwords bitmasks. *)

let ncubes = 40
let nwords = 4

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 4 (i 0); mov 15 (i 0); mov 1 (i 0) ] (jmp "iloop");
      block "iloop"
        [ cmp 5 Opcode.Lt (r 1) (i ncubes) ]
        (br 5 "jinit" "done");
      block "jinit" [ mov 2 (i 0) ] (jmp "jloop");
      block "jloop"
        [ cmp 5 Opcode.Lt (r 2) (i ncubes) ]
        (br 5 "pair_init" "inext");
      block "pair_init"
        [
          mul 13 (r 1) (i nwords);
          add 13 (r 13) (r 20);
          mul 14 (r 2) (i nwords);
          add 14 (r 14) (r 20);
          mov 16 (i 1);
          mov 3 (i 0);
        ]
        (jmp "wloop");
      block "wloop"
        [ cmp 5 Opcode.Lt (r 3) (i nwords) ]
        (br 5 "wbody" "pair_done");
      block "wbody"
        [
          add 6 (r 13) (r 3);
          load 7 6 0;
          add 8 (r 14) (r 3);
          load 9 8 0;
          band 10 (r 7) (r 9);
          (* covering: a & b = b for every word *)
          cmp 5 Opcode.Eq (r 10) (r 9);
        ]
        (br 5 "w_dist" "not_covered");
      block "not_covered" [ mov 16 (i 0) ] (jmp "w_dist");
      block "w_dist"
        [ cmp 5 Opcode.Eq (r 10) (i 0) ]
        (br 5 "disjoint_word" "wnext");
      block "disjoint_word" [ add 15 (r 15) (i 1) ] (jmp "wnext");
      block "wnext" [ add 3 (r 3) (i 1) ] (jmp "wloop");
      block "pair_done"
        [ cmp 5 Opcode.Ne (r 16) (i 0) ]
        (br 5 "covered" "jnext");
      block "covered" [ add 4 (r 4) (i 1) ] (jmp "jnext");
      block "jnext" [ add 2 (r 2) (i 1) ] (jmp "jloop");
      block "inext" [ add 1 (r 1) (i 1) ] (jmp "iloop");
      block "done" [ out (r 4); out (r 15) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:1024 in
  let rand = lcg 2718 in
  for c = 0 to ncubes - 1 do
    for w = 0 to nwords - 1 do
      (* dense-ish masks so covering is occasionally true *)
      Memory.poke mem ((c * nwords) + w) (rand () land 0xFF lor 0x11)
    done
  done;
  mem

let workload =
  {
    name = "espresso";
    description = "cube cover/distance over a PLA (mixed predictability)";
    program;
    regs = [ (reg 20, 0) ];
    make_mem;
  }
