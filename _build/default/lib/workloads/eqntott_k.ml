open Psb_isa
open Dsl

(* r1 = i, r2 = j, r3 = k, r4 = "less" count, r5-r12 scratch,
   r13 = base address of term i, r14 = base of term j,
   r20 = terms base. Terms: nterms rows of bwidth values in {0,1,2}. *)

let nterms = 40
let bwidth = 8

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 4 (i 0); mov 1 (i 0) ] (jmp "iloop");
      block "iloop"
        [ cmp 5 Opcode.Lt (r 1) (i nterms) ]
        (br 5 "jinit" "done");
      block "jinit" [ mov 2 (i 0) ] (jmp "jloop");
      block "jloop"
        [ cmp 5 Opcode.Lt (r 2) (i nterms) ]
        (br 5 "cmp_init" "inext");
      block "cmp_init"
        [
          mul 13 (r 1) (i bwidth);
          add 13 (r 13) (r 20);
          mul 14 (r 2) (i bwidth);
          add 14 (r 14) (r 20);
          mov 3 (i 0);
        ]
        (jmp "kloop");
      block "kloop"
        [ cmp 5 Opcode.Lt (r 3) (i bwidth) ]
        (br 5 "kbody" "jnext") (* equal terms: not less *);
      block "kbody"
        [
          add 6 (r 13) (r 3);
          load 7 6 0;
          add 8 (r 14) (r 3);
          load 9 8 0;
          cmp 5 Opcode.Eq (r 7) (r 9);
        ]
        (br 5 "knext" "differ");
      block "knext" [ add 3 (r 3) (i 1) ] (jmp "kloop");
      block "differ"
        [ cmp 5 Opcode.Lt (r 7) (r 9) ]
        (br 5 "less" "jnext");
      block "less" [ add 4 (r 4) (i 1) ] (jmp "jnext");
      block "jnext" [ add 2 (r 2) (i 1) ] (jmp "jloop");
      block "inext" [ add 1 (r 1) (i 1) ] (jmp "iloop");
      block "done" [ out (r 4) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:1024 in
  let rand = lcg 99 in
  (* clustered terms: halves share prefixes so comparisons go deep *)
  let prototypes =
    Array.init 4 (fun _ -> Array.init bwidth (fun _ -> rand () mod 3))
  in
  for t = 0 to nterms - 1 do
    let proto = prototypes.(t mod 4) in
    for k = 0 to bwidth - 1 do
      (* perturb the tail of the prototype *)
      let v = if k >= bwidth - 3 && rand () mod 2 = 0 then rand () mod 3 else proto.(k) in
      Memory.poke mem ((t * bwidth) + k) v
    done
  done;
  mem

let workload =
  {
    name = "eqntott";
    description = "ternary term comparison (early-exit compare loops)";
    program;
    regs = [ (reg 20, 0) ];
    make_mem;
  }
