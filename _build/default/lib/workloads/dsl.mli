(** Helpers for writing benchmark kernels in the PSB IR. *)

open Psb_isa

val reg : int -> Reg.t
val lbl : string -> Label.t
val r : int -> Operand.t
(** Register operand. *)

val i : int -> Operand.t
(** Immediate operand. *)

val mov : int -> Operand.t -> Instr.op
val add : int -> Operand.t -> Operand.t -> Instr.op
val sub : int -> Operand.t -> Operand.t -> Instr.op
val mul : int -> Operand.t -> Operand.t -> Instr.op
val div : int -> Operand.t -> Operand.t -> Instr.op
val band : int -> Operand.t -> Operand.t -> Instr.op
val bor : int -> Operand.t -> Operand.t -> Instr.op
val bxor : int -> Operand.t -> Operand.t -> Instr.op
val sll : int -> Operand.t -> Operand.t -> Instr.op
val srl : int -> Operand.t -> Operand.t -> Instr.op
val cmp : int -> Opcode.cmp -> Operand.t -> Operand.t -> Instr.op
val load : int -> int -> int -> Instr.op
(** [load dst base off]. *)

val store : int -> int -> int -> Instr.op
(** [store src base off]. *)

val out : Operand.t -> Instr.op
val br : int -> string -> string -> Instr.control
val jmp : string -> Instr.control
val halt : Instr.control
val block : string -> Instr.op list -> Instr.control -> Program.block

val lcg : int -> unit -> int
(** Deterministic pseudo-random stream for workload data (30-bit). *)

type t = {
  name : string;
  description : string;
  program : Program.t;
  regs : (Reg.t * int) list;
  make_mem : unit -> Memory.t;
}
(** A benchmark workload: program, initial registers, and a fresh-memory
    factory (so each run starts from identical state). *)
