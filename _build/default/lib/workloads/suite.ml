let all =
  [
    Compress_k.workload;
    Eqntott_k.workload;
    Espresso_k.workload;
    Grep_k.workload;
    Li_k.workload;
    Nroff_k.workload;
  ]

let find name = List.find (fun (w : Dsl.t) -> w.Dsl.name = name) all
let names = List.map (fun (w : Dsl.t) -> w.Dsl.name) all
