open Psb_isa

let reg = Reg.make
let lbl = Label.make
let r n = Operand.reg (reg n)
let i n = Operand.imm n
let mov d src = Instr.Mov { dst = reg d; src }
let alu op d a b = Instr.Alu { op; dst = reg d; a; b }
let add = alu Opcode.Add
let sub = alu Opcode.Sub
let mul = alu Opcode.Mul
let div = alu Opcode.Div
let band = alu Opcode.And
let bor = alu Opcode.Or
let bxor = alu Opcode.Xor
let sll = alu Opcode.Sll
let srl = alu Opcode.Srl
let cmp d op a b = Instr.Cmp { op; dst = reg d; a; b }
let load d base off = Instr.Load { dst = reg d; base = reg base; off }
let store src base off = Instr.Store { src = reg src; base = reg base; off }
let out o = Instr.Out o
let br s t f = Instr.Br { src = reg s; if_true = lbl t; if_false = lbl f }
let jmp l = Instr.Jmp (lbl l)
let halt = Instr.Halt
let block name body term = Program.block (lbl name) body term

let lcg seed =
  let s = ref seed in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s

type t = {
  name : string;
  description : string;
  program : Program.t;
  regs : (Reg.t * int) list;
  make_mem : unit -> Memory.t;
}
