(** nroff-like kernel: line filling and case conversion.

    Greedy line filling over a stream of word lengths (the "word fits on
    this line" branch is usually true) followed by a character-case
    conversion scan — both highly predictable, matching the paper's
    [nroff] (Table 3: 0.98 at depth 1). *)

val workload : Dsl.t
