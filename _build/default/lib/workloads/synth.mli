(** Parameterised synthetic workload generator.

    Produces a loop whose body is a chain of [depth] data-driven diamonds;
    each diamond's branch is taken with probability [taken_prob] (driven by
    a pre-generated random table). Sweeping [taken_prob] moves the workload
    between the grep-like (predictable) and eqntott-like (unpredictable)
    regimes, which is what separates trace-scoped from region-scoped
    speculation. *)

type params = {
  iterations : int;
  depth : int;  (** diamonds per iteration *)
  taken_prob : float;
  work_per_arm : int;  (** ALU ops per diamond arm *)
  seed : int;
}

val default : params
val generate : params -> Dsl.t
val name_of : params -> string
