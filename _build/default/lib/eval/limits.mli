(** ILP limit study (the paper's §1 motivation, after Lam & Wilson [10]
    and Wall [20]).

    An oracle dataflow schedule of the dynamic instruction stream: every
    instruction issues as soon as its operands are ready (infinite
    resources, perfect renaming and memory disambiguation). Two regimes:

    - {b block-limited}: control dependences are barriers — no instruction
      issues before the branch that guards it; this is the basic-block ILP
      the limit studies call "very limited";
    - {b unconstrained}: control dependences eliminated (perfect
      speculation of all instructions) — the oracle the predicating
      mechanism chases.

    The ratio between the two is the headroom that motivates the paper. *)

open Psb_workloads

type row = {
  name : string;
  dyn_instrs : int;
  block_ipc : float;
  oracle_ipc : float;
  headroom : float;  (** oracle / block *)
}

val analyze : Dsl.t -> row
val analyze_suite : ?workloads:Dsl.t list -> unit -> row list
val pp : Format.formatter -> row list -> unit
