lib/eval/experiments.ml: Array Driver Dsl Format Harness Interp List Model Program Psb_compiler Psb_isa Psb_machine Psb_workloads Synth Trace Transform
