lib/eval/limits.mli: Dsl Format Psb_workloads
