lib/eval/experiments.mli: Format Harness Model Psb_compiler
