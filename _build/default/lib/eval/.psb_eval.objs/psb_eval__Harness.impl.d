lib/eval/harness.ml: Driver Dsl Format Interp List Model Option Psb_cfg Psb_compiler Psb_isa Psb_machine Psb_workloads Suite
