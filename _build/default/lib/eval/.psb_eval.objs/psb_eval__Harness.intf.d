lib/eval/harness.mli: Driver Dsl Interp Model Psb_cfg Psb_compiler Psb_isa Psb_machine Psb_workloads
