lib/eval/limits.ml: Array Dsl Format Hashtbl Instr Interp List Memory Opcode Operand Option Program Psb_isa Psb_workloads Reg Suite
