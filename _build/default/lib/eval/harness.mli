(** Shared experiment harness: scalar reference runs, profiles, per-model
    cycle measurements, and speedup arithmetic.

    Methodology (recorded in EXPERIMENTS.md): all figures use the
    trace-driven cycle estimates so that predicated and non-predicated
    models are compared under one accounting; the machine-measured cycles
    of the executable models are reported separately as validation and in
    the ablations. *)

open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim
open Psb_compiler
open Psb_workloads

type entry = {
  workload : Dsl.t;
  scalar : Interp.result;
  profile : Psb_cfg.Branch_predict.t;
}

type t = { machine : Machine_model.t; entries : entry list }

val create : ?machine:Machine_model.t -> ?workloads:Dsl.t list -> unit -> t

val scalar_cycles : entry -> int

val compile : t -> ?machine:Machine_model.t -> Model.t -> entry -> Driver.compiled

val estimated_cycles :
  t -> ?machine:Machine_model.t -> Model.t -> entry -> int
(** Trace-driven accounting on the model's schedules. *)

val measured : t -> ?single_shadow:bool ->
  ?regfile_mode:Psb_machine.Regfile.mode -> Model.t -> entry ->
  Vliw_sim.result
(** Run the compiled code on the machine simulator (executable models).
    Also asserts observable equivalence with the scalar reference. *)

val speedup : scalar:int -> cycles:int -> float
val geomean : float list -> float
