open Psb_isa
module Cfg = Psb_cfg.Cfg
module Liveness = Psb_cfg.Liveness

(* ----- copy propagation (block-local) ----- *)

let copy_propagate program =
  let rewrite_block (b : Program.block) =
    (* env maps a register to the operand it currently copies *)
    let env : (Reg.t * Operand.t) list ref = ref [] in
    let kill r =
      env :=
        List.filter
          (fun (d, src) ->
            (not (Reg.equal d r))
            && not (List.exists (Reg.equal r) (Operand.regs src)))
          !env
    in
    let subst_operand op =
      match op with
      | Operand.Reg r -> (
          match List.assoc_opt r !env with Some o -> o | None -> op)
      | Operand.Imm _ -> op
    in
    let subst_reg r =
      (* register positions (load base, store src) can only take another
         register *)
      match List.assoc_opt r !env with
      | Some (Operand.Reg r') -> r'
      | Some (Operand.Imm _) | None -> r
    in
    let body =
      List.map
        (fun op ->
          let op' =
            match op with
            | Instr.Alu x -> Instr.Alu { x with a = subst_operand x.a; b = subst_operand x.b }
            | Instr.Cmp x -> Instr.Cmp { x with a = subst_operand x.a; b = subst_operand x.b }
            | Instr.Setc x -> Instr.Setc { x with a = subst_operand x.a; b = subst_operand x.b }
            | Instr.Mov x -> Instr.Mov { x with src = subst_operand x.src }
            | Instr.Load x -> Instr.Load { x with base = subst_reg x.base }
            | Instr.Store x ->
                Instr.Store { x with src = subst_reg x.src; base = subst_reg x.base }
            | Instr.Out o -> Instr.Out (subst_operand o)
            | Instr.Nop -> Instr.Nop
          in
          List.iter kill (Instr.defs op');
          (match op' with
          | Instr.Mov { dst; src } ->
              if not (List.exists (Reg.equal dst) (Operand.regs src)) then
                env := (dst, src) :: !env
          | _ -> ());
          op')
        b.Program.body
    in
    let term =
      match b.Program.term with
      | Instr.Br x -> Instr.Br { x with src = subst_reg x.src }
      | (Instr.Jmp _ | Instr.Halt) as t -> t
    in
    { b with Program.body = body; term }
  in
  Program.map_blocks rewrite_block program

(* ----- dead-code elimination ----- *)

let dce_pass program =
  let cfg = Cfg.of_program program in
  let live = Liveness.compute cfg in
  let changed = ref false in
  let rewrite_block (b : Program.block) =
    if not (Cfg.reachable cfg b.Program.label) then b
    else begin
      let n = List.length b.Program.body in
      let body =
        List.filteri
          (fun idx op ->
            let keep =
              Instr.has_side_effect op
              || Instr.cond_def op <> None
              ||
              match Instr.defs op with
              | [] -> true (* Nop and friends: harmless, keep *)
              | defs ->
                  (* live after this op = live before the next position *)
                  let after =
                    if idx + 1 <= n then
                      Liveness.live_before live b.Program.label (idx + 1)
                    else Liveness.live_out live b.Program.label
                  in
                  List.exists (fun d -> Reg.Set.mem d after) defs
            in
            (* Loads may fault; removing a dead one changes the fault
               behaviour. The paper's compiler treats that as acceptable
               (dead unsafe code is still dead); we keep faulting ops to
               preserve exact semantics. *)
            let keep = keep || Instr.is_unsafe op in
            if not keep then changed := true;
            keep)
          b.Program.body
      in
      { b with Program.body = body }
    end
  in
  let program' = Program.map_blocks rewrite_block program in
  (program', !changed)

let rec dead_code_eliminate program =
  let program', changed = dce_pass program in
  if changed then dead_code_eliminate program' else program'

let rec optimize program =
  let p1 = copy_propagate program in
  let p2 = dead_code_eliminate p1 in
  if Program.size p2 < Program.size program then optimize p2 else p2

(* ----- loop unrolling ----- *)

module Dominance = Psb_cfg.Dominance
module Loops = Psb_cfg.Loops

let unroll_loops ~factor program =
  if factor < 2 then program
  else begin
    let cfg = Cfg.of_program program in
    let dom = Dominance.compute cfg in
    let loops = Loops.natural_loops cfg dom in
    let heads = Label.Set.of_list (List.map (fun l -> l.Loops.head) loops) in
    let innermost =
      List.filter
        (fun l ->
          Label.Set.for_all
            (fun b ->
              Label.equal b l.Loops.head || not (Label.Set.mem b heads))
            l.Loops.body)
        loops
    in
    (* process loops with pairwise-disjoint bodies only *)
    let chosen, _ =
      List.fold_left
        (fun (acc, used) l ->
          if Label.Set.is_empty (Label.Set.inter l.Loops.body used) then
            (l :: acc, Label.Set.union used l.Loops.body)
          else (acc, used))
        ([], Label.Set.empty) innermost
    in
    let copy_name l i = Label.make (Format.asprintf "%s~u%d" (Label.name l) i) in
    let unroll_one blocks (l : Loops.loop) =
      let in_body lbl = Label.Set.mem lbl l.Loops.body in
      let head = l.Loops.head in
      (* retarget rule for copy [i] (1 .. factor-1): internal edges stay in
         copy i; edges to the head go to copy i+1's head (the last copy
         wraps to the original head); loop exits keep their targets. *)
      let retarget_for i lbl =
        if Label.equal lbl head then
          if i + 1 < factor then copy_name head (i + 1) else head
        else if in_body lbl then copy_name lbl i
        else lbl
      in
      let term_map f = function
        | Instr.Br b ->
            Instr.Br { b with if_true = f b.if_true; if_false = f b.if_false }
        | Instr.Jmp t -> Instr.Jmp (f t)
        | Instr.Halt -> Instr.Halt
      in
      let copies =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun (b : Program.block) ->
                if in_body b.Program.label then
                  Some
                    {
                      b with
                      Program.label = copy_name b.Program.label i;
                      term = term_map (retarget_for i) b.Program.term;
                    }
                else None)
              blocks)
          (List.init (factor - 1) (fun i -> i + 1))
      in
      (* the original copy's back edges now enter copy 1 *)
      let blocks =
        List.map
          (fun (b : Program.block) ->
            if in_body b.Program.label then
              let f lbl =
                if Label.equal lbl head && not (Label.equal b.Program.label head)
                then
                  (* only back edges (head-targeting edges from inside) move *)
                  copy_name head 1
                else if Label.equal lbl head && Label.equal b.Program.label head
                then copy_name head 1 (* self loop *)
                else lbl
              in
              { b with Program.term = term_map f b.Program.term }
            else b)
          blocks
      in
      blocks @ copies
    in
    let blocks = List.fold_left unroll_one program.Program.blocks chosen in
    Program.make ~entry:program.Program.entry blocks
  end

(* ----- jump threading (delete transformation) ----- *)

let jump_thread program =
  let entry = program.Program.entry in
  (* trivial block: empty body, unconditional jump *)
  let trivial =
    List.filter_map
      (fun (b : Program.block) ->
        match (b.Program.body, b.Program.term) with
        | [], Instr.Jmp target
          when (not (Label.equal b.Program.label entry))
               && not (Label.equal target b.Program.label) ->
            Some (b.Program.label, target)
        | _ -> None)
      program.Program.blocks
  in
  (* resolve chains, guarding against cycles of trivial jumps *)
  let rec resolve seen l =
    match List.assoc_opt l trivial with
    | Some next when not (List.exists (Label.equal next) seen) ->
        resolve (l :: seen) next
    | _ -> l
  in
  let blocks =
    program.Program.blocks
    |> List.filter (fun (b : Program.block) ->
           (not (List.mem_assoc b.Program.label trivial))
           || Label.equal b.Program.label entry)
    |> List.map (fun (b : Program.block) ->
           let term =
             match b.Program.term with
             | Instr.Br x ->
                 Instr.Br
                   {
                     x with
                     if_true = resolve [] x.if_true;
                     if_false = resolve [] x.if_false;
                   }
             | Instr.Jmp l -> Instr.Jmp (resolve [] l)
             | Instr.Halt -> Instr.Halt
           in
           { b with Program.term })
  in
  Program.make ~entry blocks
