open Psb_isa

type t = {
  cycles : int;
  unit_visits : int;
  exits_taken : (Label.t * int) list;
}

let measure ~units ~schedules program ~block_trace =
  let trace = Array.of_list block_trace in
  let n = Array.length trace in
  let cycles = ref 0 and visits = ref 0 in
  let exit_counts = Hashtbl.create 16 in
  let pos = ref 0 in
  while !pos < n do
    let header = trace.(!pos) in
    let u =
      match Label.Map.find_opt header units with
      | Some u -> u
      | None ->
          failwith
            (Format.asprintf "Cycles.measure: no unit for %a" Label.pp header)
    in
    let sched = Label.Map.find header schedules in
    incr visits;
    Hashtbl.replace exit_counts header
      (1 + Option.value (Hashtbl.find_opt exit_counts header) ~default:0);
    (* Walk the copies of this unit along the recorded path. *)
    let rec walk cid =
      let label = u.Runit.copies.(cid).Runit.label in
      if not (Label.equal label trace.(!pos)) then
        failwith
          (Format.asprintf "Cycles.measure: unit %a expected %a, trace has %a"
             Label.pp header Label.pp label Label.pp trace.(!pos));
      let block = Program.find program label in
      let dir =
        match block.Program.term with
        | Instr.Halt | Instr.Jmp _ -> Runit.Djmp
        | Instr.Br { if_true; if_false; _ } ->
            if !pos + 1 >= n then
              failwith "Cycles.measure: trace ends at a branch"
            else if Label.equal trace.(!pos + 1) if_true then Runit.Dtrue
            else if Label.equal trace.(!pos + 1) if_false then Runit.Dfalse
            else failwith "Cycles.measure: trace does not follow the branch"
      in
      match Hashtbl.find_opt u.Runit.steps (cid, dir) with
      | None -> failwith "Cycles.measure: missing step"
      | Some (Runit.Goto cid') ->
          incr pos;
          walk cid'
      | Some (Runit.Take_exit xid) ->
          cycles := !cycles + Sched.exit_cycle sched xid + 1;
          incr pos
    in
    walk 0
  done;
  {
    cycles = !cycles;
    unit_visits = !visits;
    exits_taken =
      Hashtbl.fold (fun l c acc -> (l, c) :: acc) exit_counts []
      |> List.sort (fun (a, _) (b, _) -> Label.compare a b);
  }
