(** Trace-driven cycle accounting.

    Replays a dynamic block trace (recorded by the scalar reference run,
    our [pixie]) through the per-unit schedules: each visit to a unit costs
    the issue cycle of the exit the execution actually takes, plus one.
    This is how the non-predicated models (global, squashing, trace
    scheduling, boosting) are evaluated, and it doubles as a cross-check
    for the machine-measured predicated models. *)

open Psb_isa

type t = {
  cycles : int;
  unit_visits : int;
  exits_taken : (Label.t * int) list;  (** (unit, count) *)
}

val measure :
  units:Runit.t Label.Map.t ->
  schedules:Sched.t Label.Map.t ->
  Program.t ->
  block_trace:Label.t list ->
  t
(** @raise Failure if the trace cannot be replayed through the units
    (indicates a unit-construction bug). *)
