open Psb_isa
module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode

type t = {
  unit_ : Runit.t;
  graph : Depgraph.t;
  issue : int array;
  length : int;
}

type node_kind = Ninstr of Runit.uinstr | Nexit of Runit.uexit

let node_kind (u : Runit.t) ni node =
  if node < ni then Ninstr u.Runit.instrs.(node)
  else Nexit u.Runit.exits.(node - ni)

(* Resource demand of a node: (consumes_slot, unit_class option). *)
let demand (model : Model.t) = function
  | Ninstr i -> (
      match i.Runit.op with
      | Instr.Nop -> (false, None)
      | Instr.Setc _ ->
          if model.Model.branch_elim then (true, Some Machine_model.Alu_unit)
          else (true, Some Machine_model.Branch_unit)
      | op -> (true, Some (Machine_model.unit_of_op op)))
  | Nexit x ->
      if model.Model.branch_elim then (true, Some Machine_model.Branch_unit)
      else (
        match x.Runit.from_branch with
        | Some _ -> (false, None) (* the branch (Setc) pays the slot *)
        | None -> (true, Some Machine_model.Branch_unit))

let is_setc_node = function
  | Ninstr { Runit.op = Instr.Setc _; _ } -> true
  | Ninstr _ | Nexit _ -> false

let is_exit_node = function Nexit _ -> true | Ninstr _ -> false

let schedule (model : Model.t) (machine : Machine_model.t) ~single_shadow u =
  let g = Depgraph.build model machine ~single_shadow u in
  let ni = Depgraph.n_instrs g in
  let n = Depgraph.n_nodes g in
  let issue = Array.make n (-1) in
  let remaining = ref n in
  (* spec_time of a condition: cycle its value becomes visible. *)
  let spec_time c =
    let uid = Runit.setc_uid u c in
    if issue.(uid) < 0 then max_int else issue.(uid) + 1
  in
  let unresolved_ok kind t =
    match kind with
    | Nexit _ -> true
    | Ninstr i ->
        let k =
          match model.Model.cond_limit with
          | None -> machine.Machine_model.max_spec_conds
          | Some l -> min l machine.Machine_model.max_spec_conds
        in
        let unresolved =
          Cond.Set.fold
            (fun c acc -> if spec_time c > t then acc + 1 else acc)
            (Pred.conds i.Runit.pred) 0
        in
        unresolved <= k
  in
  let ready node t =
    issue.(node) < 0
    && List.for_all
         (fun (src, lat) -> issue.(src) >= 0 && issue.(src) + lat <= t)
         (Depgraph.in_edges g node)
    && unresolved_ok (node_kind u ni node) t
  in
  let t = ref 0 in
  let deadline = 100_000 in
  while !remaining > 0 do
    if !t > deadline then failwith "Sched.schedule: no progress (cyclic constraints?)";
    (* capacity for this cycle *)
    let slots = ref machine.Machine_model.issue_width in
    let cap = Hashtbl.create 4 in
    Hashtbl.replace cap Machine_model.Alu_unit machine.Machine_model.alu_units;
    Hashtbl.replace cap Machine_model.Branch_unit machine.Machine_model.branch_units;
    Hashtbl.replace cap Machine_model.Load_unit machine.Machine_model.load_units;
    Hashtbl.replace cap Machine_model.Store_unit machine.Machine_model.store_units;
    let has_setc = ref false and has_exit = ref false in
    let try_place node =
      let kind = node_kind u ni node in
      let consumes, klass = demand model kind in
      let fits_units =
        match klass with None -> true | Some k -> Hashtbl.find cap k > 0
      in
      let fits_slot = (not consumes) || !slots > 0 in
      let structural_ok =
        (not model.Model.executable)
        || (not (is_setc_node kind && !has_exit))
           && not (is_exit_node kind && !has_setc)
      in
      if fits_units && fits_slot && structural_ok then begin
        issue.(node) <- !t;
        decr remaining;
        if consumes then begin
          decr slots;
          match klass with
          | Some k -> Hashtbl.replace cap k (Hashtbl.find cap k - 1)
          | None -> ()
        end;
        if is_setc_node kind then has_setc := true;
        if is_exit_node kind then has_exit := true
      end
    in
    (* Iterate to a fixpoint within the cycle: placing a node can make a
       zero-latency successor (completion edges, WAR) ready in the same
       bundle. Condition visibility (spec_time = issue + 1) cannot change
       within the cycle, so this converges. *)
    let progress = ref true in
    while !progress && !remaining > 0 do
      progress := false;
      let before = !remaining in
      List.init n (fun i -> i)
      |> List.filter (fun node -> ready node !t)
      |> List.sort (fun a b ->
             compare
               (-Depgraph.height g a, a)
               (-Depgraph.height g b, b))
      |> List.iter (fun node -> if issue.(node) < 0 then try_place node);
      if !remaining < before then progress := true
    done;
    incr t
  done;
  let length =
    Array.fold_left
      (fun acc (x : Runit.uexit) -> max acc (issue.(ni + x.xid) + 1))
      1 u.Runit.exits
  in
  { unit_ = u; graph = g; issue; length }

let exit_cycle t xid = t.issue.(Depgraph.n_instrs t.graph + xid)

let check t (model : Model.t) (machine : Machine_model.t) =
  let g = t.graph in
  let ni = Depgraph.n_instrs g in
  let n = Depgraph.n_nodes g in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* edges *)
  for node = 0 to n - 1 do
    List.iter
      (fun (src, lat) ->
        if t.issue.(src) + lat > t.issue.(node) then
          err "edge %d->%d (lat %d) violated: %d -> %d" src node lat
            t.issue.(src) t.issue.(node))
      (Depgraph.in_edges g node)
  done;
  (* resources per cycle *)
  let by_cycle = Hashtbl.create 64 in
  for node = 0 to n - 1 do
    let c = t.issue.(node) in
    Hashtbl.replace by_cycle c (node :: Option.value (Hashtbl.find_opt by_cycle c) ~default:[])
  done;
  Hashtbl.iter
    (fun c nodes ->
      let slots = ref 0 in
      let counts = Hashtbl.create 4 in
      let setc = ref false and exit_ = ref false in
      List.iter
        (fun node ->
          let kind = node_kind t.unit_ ni node in
          if is_setc_node kind then setc := true;
          if is_exit_node kind then exit_ := true;
          let consumes, klass = demand model kind in
          if consumes then incr slots;
          match klass with
          | Some k ->
              Hashtbl.replace counts k
                (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
          | None -> ())
        nodes;
      if !slots > machine.Machine_model.issue_width then
        err "cycle %d: %d slots > issue width" c !slots;
      Hashtbl.iter
        (fun k cnt ->
          if cnt > Machine_model.units_available machine k then
            err "cycle %d: unit class over-subscribed" c)
        counts;
      if model.Model.executable && !setc && !exit_ then
        err "cycle %d: Setc bundled with an exit" c)
    by_cycle;
  match !errors with [] -> Ok () | e :: _ -> Error e

let emit t =
  let u = t.unit_ in
  let ni = Depgraph.n_instrs t.graph in
  let bundles = Array.make t.length [] in
  Array.iter
    (fun (i : Runit.uinstr) ->
      match i.op with
      | Instr.Nop -> ()
      | _ ->
          let c = t.issue.(i.uid) in
          (* A Setc scheduled after the last exit can never execute: every
             path has left the region. Drop it. *)
          if c < t.length then
            bundles.(c) <-
              Pcode.op ~shadow_srcs:(Depgraph.shadow_srcs t.graph i.uid) i.pred
                i.op
              :: bundles.(c))
    u.Runit.instrs;
  Array.iter
    (fun (x : Runit.uexit) ->
      let c = t.issue.(ni + x.xid) in
      let slot =
        match x.target with
        | Some l -> Pcode.exit_to x.pred l
        | None -> Pcode.exit_stop x.pred
      in
      bundles.(c) <- bundles.(c) @ [ slot ])
    u.Runit.exits;
  (* ops before exits inside each bundle, original insertion order *)
  let code =
    Array.map
      (fun slots ->
        let ops, exits =
          List.partition (function Pcode.Op _ -> true | Pcode.Exit _ -> false) slots
        in
        List.rev ops @ exits)
      bundles
  in
  {
    Pcode.name = u.Runit.header;
    code;
    source_blocks =
      Array.to_list u.Runit.copies |> List.map (fun c -> c.Runit.label);
  }

let pp ppf t =
  let ni = Depgraph.n_instrs t.graph in
  Format.fprintf ppf "@[<v>schedule for %a (length %d):@," Label.pp
    t.unit_.Runit.header t.length;
  Array.iter
    (fun (i : Runit.uinstr) ->
      Format.fprintf ppf "  t=%d  i%d %a ? %a@," t.issue.(i.uid) i.uid Pred.pp
        i.pred Instr.pp_op i.op)
    t.unit_.Runit.instrs;
  Array.iter
    (fun (x : Runit.uexit) ->
      Format.fprintf ppf "  t=%d  x%d %a ? exit@," t.issue.(ni + x.xid) x.xid
        Pred.pp x.pred)
    t.unit_.Runit.exits;
  Format.fprintf ppf "@]"
