(** Classic scalar transformations the paper's schedulers lean on (§4.1):
    copy propagation and dead-code elimination — applied after register
    renaming "to eliminate the data dependences upon the replaced copy
    instruction ... furthermore, we eliminate the copy instruction if the
    copied variable is no longer used" [Aho-Sethi-Ullman]. *)

open Psb_isa

val copy_propagate : Program.t -> Program.t
(** Block-local copy propagation: after [Mov dst (Reg src)], uses of [dst]
    read [src] until either register is redefined. Immediate moves
    propagate as constants. *)

val dead_code_eliminate : Program.t -> Program.t
(** Liveness-based global DCE: removes side-effect-free operations whose
    results are dead. Runs to a fixpoint. *)

val optimize : Program.t -> Program.t
(** [copy_propagate] then [dead_code_eliminate], iterated to a fixpoint. *)

val jump_thread : Program.t -> Program.t
(** Percolation's "delete transformation": a block that is empty except
    for an unconditional jump is removed and its predecessors retargeted
    (the entry block is kept). *)

val unroll_loops : factor:int -> Program.t -> Program.t
(** The paper's named future work (§4.2.2: "other compilation techniques
    which expose more parallelism (e.g. loop unrolling) may be required to
    exploit more parallelism"): chain [factor] copies of each innermost
    natural loop so that only the first copy's head remains a loop head —
    region formation can then cover [factor] iterations in one region.
    Pure duplication: semantics are unchanged. Loops whose bodies overlap
    an already-unrolled loop are left alone. *)
