(** Resource-constrained list scheduler over a unit's dependence graph,
    plus emission of predicated VLIW code for the executable models.

    Priorities are critical-path heights. Per-cycle resources follow
    {!Psb_machine.Machine_model}: issue width, ALUs, branch units, load and
    store units. Condition-set instructions take an ALU slot in predicated
    models and a branch slot otherwise (they {e are} the branches there);
    predicated exits take branch slots; in non-predicated models an exit
    derived from a conditional branch is free (its branch already paid).
    The machine's structural rule that a [Setc] may not share a bundle with
    an exit is enforced here for executable models.

    An instruction of a [Buffered] class may issue while at most
    [max_spec_conds] of its predicate's conditions are still unresolved
    (Figure 8's sweep). *)

module Machine_model = Psb_machine.Machine_model
module Pcode = Psb_machine.Pcode

type t = {
  unit_ : Runit.t;
  graph : Depgraph.t;
  issue : int array;  (** per node index (instr uids then exits) *)
  length : int;  (** schedule length: last exit bundle + 1 *)
}

val schedule :
  Model.t -> Machine_model.t -> single_shadow:bool -> Runit.t -> t

val exit_cycle : t -> int -> int
(** Issue cycle of exit [xid]. *)

val check : t -> Model.t -> Machine_model.t -> (unit, string) result
(** Independent validator: every edge satisfied, resources respected,
    Setc/exit separation, exits after their predicates. *)

val emit : t -> Pcode.region
(** Predicated code for the unit (executable models only). *)

val pp : Format.formatter -> t -> unit
