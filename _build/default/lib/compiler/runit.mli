(** Scheduling units: regions and traces (§3.3).

    A unit is built from a header block by growing along CFG edges that
    static branch prediction considers beneficial. The result is an acyclic
    set of {e block copies}, each carrying the ANDed-predicate of the paths
    that reach it. Join blocks whose incoming path predicates merge to a
    single conjunction (complementary literals cancel — the equivalent-block
    case of footnote 2) get one copy; others are duplicated per merged
    predicate, reproducing the paper's join-block duplication. Region
    growth stops at loop heads, at other units' headers, at the CCR budget
    ([K] conditions per region) and at the duplication cap.

    Each in-unit conditional branch is converted to a condition-set
    instruction [ck := (src <> 0)] on a fresh CCR slot; the branch itself
    disappears (its directions become in-unit edges or predicated exits).
    A trace is the degenerate case: growth follows only the predicted
    direction, so the unit is a single path and every block has one copy. *)

open Psb_isa
module Cfg = Psb_cfg.Cfg
module Branch_predict = Psb_cfg.Branch_predict

type dir = Dtrue | Dfalse | Djmp

type uinstr = {
  uid : int;
  op : Instr.op;  (** [Setc] for converted branches *)
  pred : Pred.t;  (** emitted predicate ([alw] for [Setc]) *)
  dep_pred : Pred.t;  (** home-block predicate, for dependence analysis *)
  seq : int;  (** linearized original order *)
}

type uexit = {
  xid : int;
  pred : Pred.t;  (** firing predicate *)
  target : Label.t option;  (** [None] = program halt *)
  from_branch : Cond.t option;
      (** the condition of the branch this exit came from ([None] for
          fall-through jumps/halts) — in non-predicated models the branch
          instruction itself plays the role of the exit *)
  seq : int;
}

type copy = { cid : int; label : Label.t; pred : Pred.t }

type step = Goto of int | Take_exit of int

type t = {
  header : Label.t;
  instrs : uinstr array;
  exits : uexit array;
  copies : copy array;  (** copy 0 is the header *)
  steps : (int * dir, step) Hashtbl.t;
  setc_of_cond : (Cond.t * int) array;  (** condition → uid of its [Setc] *)
  nconds : int;
}

type params = {
  scope : Model.scope;
  max_conds : int;  (** CCR size: conditions available per unit *)
  max_blocks : int;
  max_copies_per_block : int;
  grow_threshold : float;  (** minimum edge probability for region growth *)
  fuse_compare : bool;
      (** predicated models: when the branched-on register is produced by
          a [Cmp] in the same block, the synthesized [Setc] performs that
          comparison directly (the paper's condition-set instructions,
          e.g. [c0 = r3 < r4]), shortening the condition path by a cycle *)
  avoid_commit_deps : bool;
      (** §4.2.2's refinement: keep a join block split (one copy per
          incoming path) when merging its predicates would make it read a
          value produced under an unresolved predicate — a commit
          dependence. Costs duplication, buys scheduling freedom. *)
}

val default_params :
  scope:Model.scope ->
  max_conds:int ->
  ?fuse_compare:bool ->
  ?avoid_commit_deps:bool ->
  unit ->
  params

val build :
  params ->
  Cfg.t ->
  Branch_predict.t ->
  header:Label.t ->
  avoid:Label.Set.t ->
  t
(** [avoid] is the set of labels that must not be swallowed (headers of
    other units, loop heads). The unit's exits may target labels in
    [avoid] or any label outside the unit. *)

val exit_targets : t -> Label.t list
(** Labels this unit can exit to (deduplicated). *)

val build_all :
  params ->
  Cfg.t ->
  Branch_predict.t ->
  loop_heads:Label.t list ->
  entry:Label.t ->
  t Label.Map.t
(** Cover the program: build a unit for the entry and then for every exit
    target, until closed. Loop heads bound unit growth (speculative state
    is closed within one loop body). *)

val setc_uid : t -> Cond.t -> int
val pp : Format.formatter -> t -> unit
