(** Dependence graph over a scheduling unit, encoding each model's code
    motion legality (§2.1, §3.3, §4.2.2).

    Nodes are the unit's instructions plus its exits; every edge points
    seq-forward, so the graph is a DAG. Latencies on edges may be zero or
    negative (pipeline-squash windows).

    Register dependences assume the compiler renames illegal register
    motions (as the paper's global scheduler does), so:
    - WAR and WAW edges are dropped between instructions on mutually
      exclusive paths (disjoint predicates) — predicated shadow state keeps
      at most one of them;
    - RAW edges from producers the consumer is control-dependent on mark
      the operand for shadow fetch;
    - RAW edges from producers on partially overlapping paths (values
      merging at a join) become {e commit dependences}: the consumer also
      waits for the producer's conditions to resolve and reads the
      sequential state (§4.2.2).

    Memory dependences use a symbolic base+offset analysis. Two distinct
    {e initial-register} roots are assumed not to alias (standing in for
    the reference compiler's alias analysis: workloads place each data
    structure at its own base register; the end-to-end semantic
    equivalence tests validate the assumption on every workload). Computed
    addresses are conservative: they may alias anything.

    Speculation-class edges tie each instruction to the condition-set
    instructions of its own predicate: [No_spec] waits for full resolution,
    [Squash w] may issue up to [w] cycles early, [Buffered] is free. In
    non-predicated models the [Setc] nodes are the branches themselves:
    they execute sequentially and exits fire with them. *)

open Psb_isa
module Machine_model = Psb_machine.Machine_model

type t

val n_instrs : t -> int
val n_exits : t -> int
val n_nodes : t -> int
(** Node index space: instruction [uid]s, then [n_instrs + xid]. *)

val build :
  Model.t -> Machine_model.t -> single_shadow:bool -> Runit.t -> t

val in_edges : t -> int -> (int * int) list
(** [(src_node, latency)] pairs. *)

val out_edges : t -> int -> (int * int) list

val shadow_srcs : t -> int -> Reg.Set.t
(** Registers instruction [uid] must fetch from the speculative state. *)

val height : t -> int -> int
(** Critical-path height of a node (longest latency path to any sink). *)
