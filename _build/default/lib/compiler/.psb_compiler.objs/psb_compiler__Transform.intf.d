lib/compiler/transform.mli: Program Psb_isa
