lib/compiler/cycles.ml: Array Format Hashtbl Instr Label List Option Program Psb_isa Runit Sched
