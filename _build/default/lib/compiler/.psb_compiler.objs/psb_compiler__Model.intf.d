lib/compiler/model.mli: Format Psb_isa
