lib/compiler/model.ml: Format Instr Psb_isa
