lib/compiler/driver.ml: Array Cycles Format Interp Label List Model Program Psb_cfg Psb_isa Psb_machine Runit Sched Trace
