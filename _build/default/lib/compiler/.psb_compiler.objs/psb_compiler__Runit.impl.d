lib/compiler/runit.ml: Array Cond Format Hashtbl Instr Label List Model Opcode Operand Option Pred Program Psb_cfg Psb_isa Queue Reg
