lib/compiler/driver.mli: Label Memory Model Program Psb_cfg Psb_isa Psb_machine Reg Runit Sched
