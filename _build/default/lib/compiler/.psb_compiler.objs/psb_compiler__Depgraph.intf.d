lib/compiler/depgraph.mli: Model Psb_isa Psb_machine Reg Runit
