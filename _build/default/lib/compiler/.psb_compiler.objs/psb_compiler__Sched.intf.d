lib/compiler/sched.mli: Depgraph Format Model Psb_machine Runit
