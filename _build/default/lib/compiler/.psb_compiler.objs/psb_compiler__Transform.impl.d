lib/compiler/transform.ml: Format Instr Label List Operand Program Psb_cfg Psb_isa Reg
