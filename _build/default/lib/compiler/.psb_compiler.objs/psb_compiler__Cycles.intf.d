lib/compiler/cycles.mli: Label Program Psb_isa Runit Sched
