lib/compiler/runit.mli: Cond Format Hashtbl Instr Label Model Pred Psb_cfg Psb_isa
