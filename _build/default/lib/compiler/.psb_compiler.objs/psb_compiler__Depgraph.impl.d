lib/compiler/depgraph.ml: Array Cond Hashtbl Instr List Model Opcode Operand Pred Psb_isa Psb_machine Reg Runit
