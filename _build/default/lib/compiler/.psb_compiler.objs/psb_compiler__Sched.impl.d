lib/compiler/sched.ml: Array Cond Depgraph Format Hashtbl Instr Label List Model Option Pred Psb_isa Psb_machine Runit
