open Psb_isa
module Branch_predict = Psb_cfg.Branch_predict
module Cfg = Psb_cfg.Cfg

type dir = Dtrue | Dfalse | Djmp

type uinstr = {
  uid : int;
  op : Instr.op;
  pred : Pred.t;
  dep_pred : Pred.t;
  seq : int;
}

type uexit = {
  xid : int;
  pred : Pred.t;
  target : Label.t option;
  from_branch : Cond.t option;
  seq : int;
}

type copy = { cid : int; label : Label.t; pred : Pred.t }
type step = Goto of int | Take_exit of int

type t = {
  header : Label.t;
  instrs : uinstr array;
  exits : uexit array;
  copies : copy array;
  steps : (int * dir, step) Hashtbl.t;
  setc_of_cond : (Cond.t * int) array;
  nconds : int;
}

type params = {
  scope : Model.scope;
  max_conds : int;
  max_blocks : int;
  max_copies_per_block : int;
  grow_threshold : float;
  fuse_compare : bool;
  avoid_commit_deps : bool;
}

let default_params ~scope ~max_conds ?(fuse_compare = false)
    ?(avoid_commit_deps = false) () =
  {
    scope;
    max_conds;
    max_blocks = 24;
    max_copies_per_block = 4;
    grow_threshold = 0.12;
    fuse_compare;
    avoid_commit_deps;
  }

(* ----- Phase 1: candidate labels and in-unit edges ----- *)

let successor_edges (b : Program.block) =
  match b.Program.term with
  | Instr.Br { if_true; if_false; _ } ->
      [ (Dtrue, if_true); (Dfalse, if_false) ]
  | Instr.Jmp l -> [ (Djmp, l) ]
  | Instr.Halt -> []

(* For traces, the single direction we follow out of a block. *)
let chosen_dir cfg bp label =
  match (Cfg.block cfg label).Program.term with
  | Instr.Br _ -> if Branch_predict.predict bp label then Dtrue else Dfalse
  | Instr.Jmp _ -> Djmp
  | Instr.Halt -> Djmp

let grow_candidates params cfg bp ~header ~avoid =
  let candidates = ref (Label.Set.singleton header) in
  let edge_ok : (Label.t * dir, unit) Hashtbl.t = Hashtbl.create 16 in
  let branch_count = ref 0 in
  let count_branch l =
    match (Cfg.block cfg l).Program.term with
    | Instr.Br _ -> incr branch_count
    | Instr.Jmp _ | Instr.Halt -> ()
  in
  count_branch header;
  let may_add dst =
    (not (Label.Set.mem dst !candidates))
    && (not (Label.Set.mem dst avoid))
    && (not (Label.equal dst header))
    && Label.Set.cardinal !candidates < params.max_blocks
    &&
    match (Cfg.block cfg dst).Program.term with
    | Instr.Br _ -> !branch_count < params.max_conds
    | Instr.Jmp _ | Instr.Halt -> true
  in
  (match params.scope with
  | Model.Trace ->
      (* Follow the predicted path while allowed. *)
      let rec follow l =
        let d = chosen_dir cfg bp l in
        match List.assoc_opt d (successor_edges (Cfg.block cfg l)) with
        | None -> ()
        | Some dst ->
            if may_add dst then begin
              candidates := Label.Set.add dst !candidates;
              count_branch dst;
              Hashtbl.replace edge_ok (l, d) ();
              follow dst
            end
            else if Label.Set.mem dst !candidates then
              (* joining the trace again would create a side entrance *) ()
      in
      follow header
  | Model.Region ->
      (* BFS; an edge is beneficial if static prediction gives it enough
         probability (§3.3: a heuristic function of static branch
         prediction drives region growth). *)
      let queue = Queue.create () in
      Queue.add header queue;
      while not (Queue.is_empty queue) do
        let src = Queue.pop queue in
        List.iter
          (fun (d, dst) ->
            let p = Branch_predict.edge_probability bp src dst in
            if p >= params.grow_threshold then
              if Label.Set.mem dst !candidates then
                Hashtbl.replace edge_ok (src, d) ()
              else if may_add dst then begin
                candidates := Label.Set.add dst !candidates;
                count_branch dst;
                Hashtbl.replace edge_ok (src, d) ();
                Queue.add dst queue
              end)
          (successor_edges (Cfg.block cfg src))
      done);
  (!candidates, edge_ok)

(* Topological order of the candidate subgraph from the header; edges that
   would close a cycle are removed from [edge_ok] (they become exits). *)
let topo_candidates cfg header candidates edge_ok =
  let visited = Hashtbl.create 16 and on_stack = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    Hashtbl.replace visited l ();
    Hashtbl.replace on_stack l ();
    List.iter
      (fun (d, dst) ->
        if Hashtbl.mem edge_ok (l, d) && Label.Set.mem dst candidates then
          if Hashtbl.mem on_stack dst then Hashtbl.remove edge_ok (l, d)
          else if not (Hashtbl.mem visited dst) then dfs dst)
      (successor_edges (Cfg.block cfg l));
    Hashtbl.remove on_stack l;
    order := l :: !order
  in
  dfs header;
  !order

(* ----- Predicate merging at joins ----- *)

(* Two conjunctions merge when they differ in exactly one condition's
   polarity: c&p and !c&p cover the same paths as p (the equivalent-block
   rule). Returns the merged predicate. *)
let mergeable p q =
  let lp = Pred.literals p and lq = Pred.literals q in
  if List.length lp <> List.length lq then None
  else begin
    let diff =
      List.filter
        (fun (c, v) -> Pred.requires q c <> Some v)
        lp
    in
    match diff with
    | [ (c, _) ] when Pred.requires q c = Some (not (Option.get (Pred.requires p c))) ->
        (* remove c from p *)
        let lits = List.filter (fun (c', _) -> not (Cond.equal c c')) lp in
        if List.for_all (fun (c', v) -> Pred.requires q c' = Some v) lits then
          Some (Pred.of_list lits)
        else None
    | _ -> None
  end

(* Merge incoming (pred, payload) groups to a fixpoint. *)
let merge_groups groups =
  let rec step acc = function
    | [] -> List.rev acc
    | (p, es) :: rest -> (
        match
          List.find_map
            (fun (q, es') ->
              if Pred.equal p q then Some (q, es', p)
              else Option.map (fun m -> (q, es', m)) (mergeable p q))
            acc
        with
        | Some (q, es', merged) ->
            let acc = List.filter (fun (r, _) -> not (Pred.equal r q)) acc in
            step ((merged, es' @ es) :: acc) rest
        | None -> step ((p, es) :: acc) rest)
  in
  let rec fixpoint groups =
    let merged = step [] groups in
    if List.length merged < List.length groups then fixpoint merged else merged
  in
  fixpoint groups

(* A branch on [src] can take its comparison directly from a [Cmp] that
   defines [src] in the same block, provided nothing between the [Cmp] and
   the branch redefines the comparison's operands (or [src] itself). *)
let fusable_compare body src =
  let rec scan acc = function
    | [] -> acc
    | op :: rest ->
        let acc =
          match op with
          | Instr.Cmp { op = cop; dst; a; b } when Reg.equal dst src ->
              Some (cop, a, b)
          | _ ->
              let defs = Instr.defs op in
              (match acc with
              | Some (_, a, b)
                when List.exists
                       (fun r ->
                         List.exists (Reg.equal r) (Operand.regs a @ Operand.regs b))
                       defs ->
                  None
              | acc -> acc)
        in
        scan acc rest
  in
  scan None body

(* ----- Phase 2: copies, instructions, exits ----- *)

let uses_before_def body =
  List.fold_left
    (fun (uses, defs) op ->
      let uses =
        List.fold_left
          (fun u r -> if List.exists (Reg.equal r) defs then u else r :: u)
          uses (Instr.uses op)
      in
      (uses, Instr.defs op @ defs))
    ([], []) body
  |> fst

let build params cfg bp ~header ~avoid =
  let candidates, edge_ok = grow_candidates params cfg bp ~header ~avoid in
  let topo = topo_candidates cfg header candidates edge_ok in
  (* registers any candidate block reads before (re)defining them — the
     potential downstream consumers of a merged join's ambiguity *)
  let candidate_uses =
    Label.Set.fold
      (fun l acc ->
        List.fold_left
          (fun acc r -> Reg.Set.add r acc)
          acc
          (uses_before_def (Cfg.block cfg l).Program.body))
      candidates Reg.Set.empty
  in
  let instrs = ref [] and exits = ref [] and copies = ref [] in
  let steps = Hashtbl.create 32 in
  let setcs = ref [] in
  let next_uid = ref 0 and next_xid = ref 0 and next_cid = ref 0 in
  let next_cond = ref 0 and seq = ref 0 in
  let fresh_seq () = incr seq; !seq - 1 in
  let add_instr op ~pred ~dep_pred =
    let uid = !next_uid in
    incr next_uid;
    instrs := { uid; op; pred; dep_pred; seq = fresh_seq () } :: !instrs;
    uid
  in
  let add_exit ~pred ~target ~from_branch =
    let xid = !next_xid in
    incr next_xid;
    exits := { xid; pred; target; from_branch; seq = fresh_seq () } :: !exits;
    xid
  in
  (* pending in-edges per label: (from_cid, dir, pred, from_branch) list *)
  let pending : (Label.t, (int * dir * Pred.t * Cond.t option) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let push_pending l e =
    Hashtbl.replace pending l
      (e :: Option.value (Hashtbl.find_opt pending l) ~default:[])
  in
  let emit_copy label pred in_edges =
    let cid = !next_cid in
    incr next_cid;
    copies := { cid; label; pred } :: !copies;
    List.iter (fun (from, d, _, _) -> Hashtbl.replace steps (from, d) (Goto cid)) in_edges;
    let b = Cfg.block cfg label in
    List.iter (fun op -> ignore (add_instr op ~pred ~dep_pred:pred)) b.Program.body;
    (match b.Program.term with
    | Instr.Halt ->
        let xid = add_exit ~pred ~target:None ~from_branch:None in
        Hashtbl.replace steps (cid, Djmp) (Take_exit xid)
    | Instr.Jmp l ->
        if Hashtbl.mem edge_ok (label, Djmp) && Label.Set.mem l candidates then
          push_pending l (cid, Djmp, pred, None)
        else begin
          let xid = add_exit ~pred ~target:(Some l) ~from_branch:None in
          Hashtbl.replace steps (cid, Djmp) (Take_exit xid)
        end
    | Instr.Br { src; if_true; if_false } ->
        let c = Cond.make !next_cond in
        incr next_cond;
        let setc_op =
          match
            if params.fuse_compare then fusable_compare b.Program.body src
            else None
          with
          | Some (op, a', b') -> Instr.Setc { dst = c; op; a = a'; b = b' }
          | None ->
              Instr.Setc
                { dst = c; op = Opcode.Ne; a = Operand.reg src; b = Operand.imm 0 }
        in
        let uid = add_instr setc_op ~pred:Pred.always ~dep_pred:pred in
        setcs := (c, uid) :: !setcs;
        List.iter
          (fun (d, tgt, value) ->
            let pred' = Pred.conj pred c value in
            if Hashtbl.mem edge_ok (label, d) && Label.Set.mem tgt candidates
            then push_pending tgt (cid, d, pred', Some c)
            else begin
              let xid = add_exit ~pred:pred' ~target:(Some tgt) ~from_branch:(Some c) in
              Hashtbl.replace steps (cid, d) (Take_exit xid)
            end)
          [ (Dtrue, if_true, true); (Dfalse, if_false, false) ])
  in
  let demote label in_edges =
    List.iter
      (fun (from, d, pred, from_branch) ->
        let xid = add_exit ~pred ~target:(Some label) ~from_branch in
        Hashtbl.replace steps (from, d) (Take_exit xid))
      in_edges
  in
  List.iter
    (fun label ->
      if Label.equal label header then emit_copy label Pred.always []
      else
        match Hashtbl.find_opt pending label with
        | None -> () (* unreachable within the unit (upstream was demoted) *)
        | Some in_edges ->
            let raw_groups =
              List.map (fun ((_, _, p, _) as e) -> (p, [ e ])) in_edges
            in
            let groups = merge_groups raw_groups in
            (* §4.2.2: a merged join that reads a register produced under a
               predicate its merged predicate does not imply would carry a
               commit dependence; if requested, keep the copies split (one
               per incoming predicate) instead. *)
            let groups =
              if
                params.avoid_commit_deps
                && List.length groups < List.length in_edges
              then begin
                let commit_dep_under merged =
                  List.exists
                    (fun (i : uinstr) ->
                      List.exists
                        (fun r -> Reg.Set.mem r candidate_uses)
                        (Instr.defs i.op)
                      && (not (Pred.disjoint i.dep_pred merged))
                      && not (Pred.implies merged i.dep_pred))
                    !instrs
                in
                if List.exists (fun (m, _) -> commit_dep_under m) groups then
                  (* split: dedupe only exactly-equal predicates *)
                  List.fold_left
                    (fun acc (p, es) ->
                      if List.exists (fun (q, _) -> Pred.equal p q) acc then
                        List.map
                          (fun (q, qs) ->
                            if Pred.equal p q then (q, qs @ es) else (q, qs))
                          acc
                      else acc @ [ (p, es) ])
                    [] raw_groups
                else groups
              end
              else groups
            in
            let is_branch =
              match (Cfg.block cfg label).Program.term with
              | Instr.Br _ -> true
              | Instr.Jmp _ | Instr.Halt -> false
            in
            let conds_needed = if is_branch then List.length groups else 0 in
            if
              List.length groups > params.max_copies_per_block
              || !next_cond + conds_needed > params.max_conds
            then demote label in_edges
            else
              List.iter (fun (pred, es) -> emit_copy label pred es) groups)
    topo;
  {
    header;
    instrs = Array.of_list (List.rev !instrs);
    exits = Array.of_list (List.rev !exits);
    copies = Array.of_list (List.rev !copies);
    steps;
    setc_of_cond = Array.of_list (List.rev !setcs);
    nconds = !next_cond;
  }

let exit_targets t =
  Array.to_list t.exits
  |> List.filter_map (fun e -> e.target)
  |> List.sort_uniq Label.compare

let build_all params cfg bp ~loop_heads ~entry =
  let avoid =
    List.fold_left (fun s l -> Label.Set.add l s) (Label.Set.singleton entry)
      loop_heads
  in
  let units = ref Label.Map.empty in
  let work = Queue.create () in
  Queue.add entry work;
  while not (Queue.is_empty work) do
    let h = Queue.pop work in
    if not (Label.Map.mem h !units) then begin
      let u = build params cfg bp ~header:h ~avoid in
      units := Label.Map.add h u !units;
      List.iter (fun tgt -> Queue.add tgt work) (exit_targets u)
    end
  done;
  !units

let setc_uid t c =
  match Array.find_opt (fun (c', _) -> Cond.equal c c') t.setc_of_cond with
  | Some (_, uid) -> uid
  | None -> invalid_arg (Format.asprintf "Runit.setc_uid: unknown %a" Cond.pp c)

let pp ppf t =
  Format.fprintf ppf "@[<v>unit %a (%d copies, %d conds):@," Label.pp t.header
    (Array.length t.copies) t.nconds;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  copy %d: %a [%a]@," c.cid Label.pp c.label Pred.pp
        c.pred)
    t.copies;
  Array.iter
    (fun (i : uinstr) ->
      Format.fprintf ppf "  i%d: %a ? %a@," i.uid Pred.pp i.pred Instr.pp_op i.op)
    t.instrs;
  Array.iter
    (fun (e : uexit) ->
      Format.fprintf ppf "  x%d: %a ? -> %s@," e.xid Pred.pp e.pred
        (match e.target with Some l -> Label.name l | None -> "halt"))
    t.exits;
  Format.fprintf ppf "@]"
