open Psb_isa
module Machine_model = Psb_machine.Machine_model

type t = {
  n_instrs : int;
  n_exits : int;
  in_edges : (int * int) list array;
  out_edges : (int * int) list array;
  shadow : Reg.Set.t array;
  heights : int array;
}

let n_instrs t = t.n_instrs
let n_exits t = t.n_exits
let n_nodes t = t.n_instrs + t.n_exits
let in_edges t n = t.in_edges.(n)
let out_edges t n = t.out_edges.(n)
let shadow_srcs t uid = t.shadow.(uid)
let height t n = t.heights.(n)

(* ----- symbolic addresses for alias analysis ----- *)

type root = Init of Reg.t | Opaque of int (* uid of the defining instr *)
type sym = Addr of root * int | Top

(* Two initial-register roots are assumed disjoint (workloads place their
   structures at distinct bases — the end-to-end equivalence tests check
   the assumption). A computed (opaque) address may point anywhere, so it
   conservatively aliases everything except a provably different offset
   from the same opaque definition. *)
let may_alias a b =
  match (a, b) with
  | Top, _ | _, Top -> true
  | Addr (r1, o1), Addr (r2, o2) -> (
      match (r1, r2) with
      | Init x, Init y -> if Reg.equal x y then o1 = o2 else false
      | Opaque x, Opaque y -> if x = y then o1 = o2 else true
      | Init _, Opaque _ | Opaque _, Init _ -> true)

(* Symbolic register values along the unit's linear order. The value of a
   register after an instruction is tracked only when the write is
   unconditional enough to be unambiguous: a write under a non-always
   predicate makes the register Top for later readers on other paths.
   (Conservative: Top may-aliases everything.) *)
let compute_syms (u : Runit.t) =
  let tbl : (int, sym array) Hashtbl.t = Hashtbl.create 64 in
  let nregs =
    Array.fold_left
      (fun acc (i : Runit.uinstr) ->
        List.fold_left
          (fun acc r -> max acc (Reg.index r + 1))
          acc
          (Instr.defs i.op @ Instr.uses i.op))
      1 u.Runit.instrs
  in
  let cur = Array.init nregs (fun i -> Addr (Init (Reg.make i), 0)) in
  Array.iter
    (fun (i : Runit.uinstr) ->
      (* record the environment *before* instruction i *)
      Hashtbl.replace tbl i.uid (Array.copy cur);
      let operand_sym = function
        | Operand.Reg r -> cur.(Reg.index r)
        | Operand.Imm _ -> Top
      in
      let new_value =
        match i.op with
        | Instr.Mov { src = Operand.Reg r; _ } -> cur.(Reg.index r)
        | Instr.Mov { src = Operand.Imm _; _ } -> Addr (Opaque i.uid, 0)
        | Instr.Alu { op = Opcode.Add; a; b; _ } -> (
            match (operand_sym a, (a, b)) with
            | Addr (r, o), (_, Operand.Imm k) -> Addr (r, o + k)
            | _, (Operand.Imm k, Operand.Reg rb) -> (
                match cur.(Reg.index rb) with
                | Addr (r, o) -> Addr (r, o + k)
                | Top -> Addr (Opaque i.uid, 0))
            | _ -> Addr (Opaque i.uid, 0))
        | Instr.Alu { op = Opcode.Sub; a; b = Operand.Imm k; _ } -> (
            match operand_sym a with
            | Addr (r, o) -> Addr (r, o - k)
            | Top -> Addr (Opaque i.uid, 0))
        | Instr.Alu _ | Instr.Load _ | Instr.Cmp _ -> Addr (Opaque i.uid, 0)
        | Instr.Store _ | Instr.Setc _ | Instr.Out _ | Instr.Nop -> Top
      in
      List.iter
        (fun r ->
          cur.(Reg.index r) <-
            (if Pred.is_always i.pred then new_value else Top))
        (Instr.defs i.op))
    u.Runit.instrs;
  fun uid r ->
    match Hashtbl.find_opt tbl uid with
    | Some env when Reg.index r < Array.length env -> env.(Reg.index r)
    | _ -> Top

let addr_sym syms (i : Runit.uinstr) =
  match i.op with
  | Instr.Load { base; off; _ } | Instr.Store { base; off; _ } -> (
      match syms i.uid base with
      | Addr (r, o) -> Addr (r, o + off)
      | Top -> Top)
  | _ -> Top

(* ----- graph construction ----- *)

let build (model : Model.t) (machine : Machine_model.t) ~single_shadow
    (u : Runit.t) =
  let ni = Array.length u.Runit.instrs in
  let nx = Array.length u.Runit.exits in
  let n = ni + nx in
  let in_e = Array.make n [] and out_e = Array.make n [] in
  let shadow = Array.make ni Reg.Set.empty in
  let add_edge src dst lat =
    if src <> dst then begin
      in_e.(dst) <- (src, lat) :: in_e.(dst);
      out_e.(src) <- (dst, lat) :: out_e.(src)
    end
  in
  let lat_of (i : Runit.uinstr) = Machine_model.latency machine i.op in
  let instrs = u.Runit.instrs in
  let is_setc (i : Runit.uinstr) =
    match i.op with Instr.Setc _ -> true | _ -> false
  in
  let setc_node c = Runit.setc_uid u c in
  let cond_edges_to dst_node pred lat =
    Cond.Set.iter (fun c -> add_edge (setc_node c) dst_node lat) (Pred.conds pred)
  in
  (* --- register dependences --- *)
  (* For each consumer and each used register, classify all compatible
     earlier producers. *)
  Array.iter
    (fun (j : Runit.uinstr) ->
      let uses = List.sort_uniq Reg.compare (Instr.uses j.op) in
      List.iter
        (fun r ->
          let producers =
            Array.to_list instrs
            |> List.filter (fun (i : Runit.uinstr) ->
                   i.seq < j.seq
                   && List.exists (Reg.equal r) (Instr.defs i.op)
                   && not (Pred.disjoint i.dep_pred j.dep_pred))
          in
          if producers <> [] then begin
            let mixed =
              List.exists
                (fun (i : Runit.uinstr) -> not (Pred.implies j.dep_pred i.dep_pred))
                producers
            in
            List.iter
              (fun (i : Runit.uinstr) ->
                add_edge i.uid j.uid (lat_of i);
                if mixed then
                  (* commit dependence: wait until every producer's
                     predicate resolves, then read the sequential state *)
                  cond_edges_to j.uid i.pred 1)
              producers;
            if not mixed then begin
              (* the latest producer wins; fetch from the shadow state if
                 it may still be speculative *)
              let latest =
                List.fold_left
                  (fun acc (i : Runit.uinstr) ->
                    match acc with
                    | Some (a : Runit.uinstr) when a.seq > i.seq -> acc
                    | _ -> Some i)
                  None producers
              in
              match latest with
              | Some p when not (Pred.is_always p.pred) ->
                  shadow.(j.uid) <- Reg.Set.add r shadow.(j.uid)
              | Some _ | None -> ()
            end
          end)
        uses)
    instrs;
  (* WAR / WAW / shadow serialization *)
  Array.iter
    (fun (j : Runit.uinstr) ->
      let defs = Instr.defs j.op in
      List.iter
        (fun r ->
          Array.iter
            (fun (i : Runit.uinstr) ->
              if i.seq < j.seq then begin
                let compatible = not (Pred.disjoint i.dep_pred j.dep_pred) in
                (* WAR *)
                if compatible && List.exists (Reg.equal r) (Instr.uses i.op) then
                  add_edge i.uid j.uid 0;
                if List.exists (Reg.equal r) (Instr.defs i.op) then begin
                  (* WAW *)
                  if compatible then add_edge i.uid j.uid 1;
                  if
                    model.Model.executable
                    && (not (Pred.is_always i.pred))
                    && (not (Pred.is_always j.pred))
                    && not (Pred.equal i.pred j.pred)
                  then
                    if compatible then
                      (* Commit-order hazard: if both writes can be live
                         speculatively and the earlier one's predicate may
                         resolve later, it would clobber the later write's
                         committed value. The later write's writeback must
                         land strictly after the cycle in which the earlier
                         predicate resolves (writebacks apply before the
                         commit tick within a cycle). *)
                      cond_edges_to j.uid i.pred (2 - lat_of j)
                    else if single_shadow then
                      (* Mutually exclusive writes never both commit, but a
                         single shadow entry cannot hold both pending
                         versions (fn. 1): serialise to avoid the storage
                         conflict stall. *)
                      cond_edges_to j.uid i.pred (1 - lat_of j)
                end
              end)
            instrs)
        defs)
    instrs;
  (* --- memory and output ordering --- *)
  let syms = compute_syms u in
  let mem_ops =
    Array.to_list instrs |> List.filter (fun i -> Instr.is_memory i.Runit.op)
  in
  List.iter
    (fun (j : Runit.uinstr) ->
      List.iter
        (fun (i : Runit.uinstr) ->
          if i.seq < j.seq && not (Pred.disjoint i.dep_pred j.dep_pred) then begin
            let alias = may_alias (addr_sym syms i) (addr_sym syms j) in
            if alias then
              match (Instr.is_store i.op, Instr.is_store j.op) with
              | false, false -> () (* load-load *)
              | true, false ->
                  (* store → load: forwarding needs the entry appended; a
                     partially overlapping store is a commit dependence *)
                  add_edge i.uid j.uid 1;
                  if not (Pred.implies j.dep_pred i.dep_pred) then
                    cond_edges_to j.uid i.pred 1
              | false, true -> add_edge i.uid j.uid 0 (* load → store WAR *)
              | true, true -> add_edge i.uid j.uid 1 (* store order *)
          end)
        mem_ops)
    mem_ops;
  (* observable output order *)
  let outs =
    Array.to_list instrs
    |> List.filter (fun i -> match i.Runit.op with Instr.Out _ -> true | _ -> false)
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        add_edge a.Runit.uid b.Runit.uid 1;
        chain rest
    | [ _ ] | [] -> ()
  in
  chain outs;
  (* --- speculation classes --- *)
  Array.iter
    (fun (j : Runit.uinstr) ->
      if not (is_setc j) then
        match Model.spec_class_of model j.op with
        | Model.Buffered -> ()
        | Model.No_spec -> cond_edges_to j.uid j.pred 1
        | Model.Squash w -> cond_edges_to j.uid j.pred (1 - w))
    instrs;
  (* --- branches in non-predicated models execute sequentially; so do
     condition-set instructions under counter-type predicates (§4.2.1) --- *)
  if (not model.Model.branch_elim) || model.Model.counter_preds then begin
    let setcs =
      Array.to_list instrs |> List.filter is_setc
      |> List.sort (fun (a : Runit.uinstr) (b : Runit.uinstr) ->
             compare a.seq b.seq)
    in
    chain setcs;
    (* a branch retires its block: it waits for its own path conditions *)
    List.iter (fun (s : Runit.uinstr) -> cond_edges_to s.uid s.dep_pred 1) setcs
  end;
  (* --- exits --- *)
  Array.iter
    (fun (x : Runit.uexit) ->
      let xnode = ni + x.xid in
      (* A predicated exit fires once the CCR holds its predicate (one
         cycle after the condition-set instructions). In non-predicated
         models the exit is ordinary control flow: it happens no earlier
         than the branches that guard its path resolve (same cycle as the
         last of them — branches redirect at execute under the BTB
         assumption). *)
      cond_edges_to xnode x.pred (if model.Model.branch_elim then 1 else 0);
      (* completion: everything on a path that leaves through this exit
         must have issued when the exit fires *)
      Array.iter
        (fun (i : Runit.uinstr) ->
          if
            i.seq < x.seq && (not (is_setc i))
            && (match i.op with Instr.Nop -> false | _ -> true)
            && not (Pred.disjoint i.dep_pred x.pred)
          then add_edge i.uid xnode 0)
        instrs)
    u.Runit.exits;
  (* --- critical-path heights (reverse topological by node index) --- *)
  let heights = Array.make n 0 in
  (* Edges are seq-forward; instruction uid order equals seq order and
     exits come after their sources, but exit/instr indices interleave in
     seq. Process nodes in decreasing seq order. *)
  let seq_of node =
    if node < ni then instrs.(node).Runit.seq
    else u.Runit.exits.(node - ni).Runit.seq
  in
  let order = List.init n (fun i -> i) in
  let order =
    List.sort (fun a b -> compare (seq_of b) (seq_of a)) order
  in
  List.iter
    (fun node ->
      let h =
        List.fold_left
          (fun acc (dst, lat) -> max acc (heights.(dst) + max lat 0 + 1))
          0 out_e.(node)
      in
      heights.(node) <- h)
    order;
  {
    n_instrs = ni;
    n_exits = nx;
    in_edges = in_e;
    out_edges = out_e;
    shadow;
    heights;
  }
