(** General-purpose registers of the PSB machine.

    Registers are identified by a small integer index. Register [r0] is an
    ordinary register (no hard-wired zero); workload builders allocate
    registers through {!fresh} counters of their own. *)

type t = int

val make : int -> t
(** [make i] is register [ri]. Raises [Invalid_argument] if [i < 0]. *)

val index : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [r<i>]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
