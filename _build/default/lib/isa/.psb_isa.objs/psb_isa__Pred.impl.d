lib/isa/pred.ml: Bool Bytes Cond Format List
