lib/isa/interp.mli: Fault Format Instr Label Memory Program Reg
