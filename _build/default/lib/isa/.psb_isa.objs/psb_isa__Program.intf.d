lib/isa/program.mli: Cond Format Instr Label Reg
