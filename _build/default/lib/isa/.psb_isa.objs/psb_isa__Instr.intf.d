lib/isa/instr.mli: Cond Format Label Opcode Operand Reg
