lib/isa/memory.mli: Format
