lib/isa/fault.mli: Format Memory
