lib/isa/trace.ml: Array Hashtbl Instr Interp Label List Option Program
