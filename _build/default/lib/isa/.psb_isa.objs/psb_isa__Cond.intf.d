lib/isa/cond.mli: Format Map Set
