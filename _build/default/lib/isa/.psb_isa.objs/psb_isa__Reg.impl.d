lib/isa/reg.ml: Format Int Map Set
