lib/isa/pred.mli: Cond Format
