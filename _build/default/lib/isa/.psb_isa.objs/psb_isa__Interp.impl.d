lib/isa/interp.ml: Array Cond Fault Format Instr Int Label List Memory Opcode Operand Program Reg Seq
