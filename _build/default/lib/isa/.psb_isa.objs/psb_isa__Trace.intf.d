lib/isa/trace.mli: Interp Label Program
