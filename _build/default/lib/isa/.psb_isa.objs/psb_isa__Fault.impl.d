lib/isa/fault.ml: Format Memory
