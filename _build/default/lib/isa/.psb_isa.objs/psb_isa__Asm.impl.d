lib/isa/asm.ml: Cond Format Instr Label List Opcode Operand Option Program Reg String
