lib/isa/program.ml: Cond Format Hashtbl Instr Label List Reg
