lib/isa/opcode.ml: Format
