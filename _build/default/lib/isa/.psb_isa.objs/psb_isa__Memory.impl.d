lib/isa/memory.ml: Format Hashtbl List Option
