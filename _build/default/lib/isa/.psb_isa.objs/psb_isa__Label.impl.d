lib/isa/label.ml: Format Map Set String
