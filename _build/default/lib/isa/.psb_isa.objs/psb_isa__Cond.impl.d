lib/isa/cond.ml: Format Int Map Set
