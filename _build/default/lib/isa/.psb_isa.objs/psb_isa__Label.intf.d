lib/isa/label.mli: Format Map Set
