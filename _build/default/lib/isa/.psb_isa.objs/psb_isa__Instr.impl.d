lib/isa/instr.ml: Cond Format Label Opcode Operand Reg
