(** Unified execution faults: memory faults and arithmetic faults.

    Speculative execution buffers either kind with the instruction's
    predicate (flag E of the destination entry); committed faults are
    handled if recoverable (demand paging) and fatal otherwise. *)

type t = Mem of Memory.fault | Arith of string

val recoverable : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
