(** Textual assembly format for scalar programs.

    The format is exactly what {!Program.pp} prints, so printing and
    parsing round-trip:

    {v
    entry main
    main:
      r1 = 0
      r2 = add r1 5
      r3 = load r2+4
      store r2+4 = r3
      r4 = r1 < r2
      out r4
      br r4 ? then : else
    then:
      jmp main
    else:
      halt
    v}

    [#] starts a comment to end of line. Blank lines are ignored. *)

val print : Program.t -> string

val parse : string -> (Program.t, string) result
(** Error messages carry a line number. *)

val parse_exn : string -> Program.t
(** @raise Failure on parse errors. *)

val op_of_string : string -> (Instr.op, string) result
(** Parse a single straight-line operation (the instruction grammar used
    inside blocks), e.g. ["r2 = add r1 5"] or ["c0 = r1 < r2"]. *)
