type t = Reg of Reg.t | Imm of int

let reg r = Reg r
let imm i = Imm i
let regs = function Reg r -> [ r ] | Imm _ -> []

let equal a b =
  match (a, b) with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm i1, Imm i2 -> i1 = i2
  | Reg _, Imm _ | Imm _, Reg _ -> false

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.pp_print_int ppf i

let subst old replacement = function
  | Reg r when Reg.equal r old -> Reg replacement
  | (Reg _ | Imm _) as op -> op
