type block = {
  label : Label.t;
  body : Instr.op list;
  term : Instr.control;
}

type t = { entry : Label.t; blocks : block list }

let block label body term = { label; body; term }
let successors b = Instr.control_targets b.term

let validate ~entry blocks =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem seen b.label then
        invalid_arg
          (Format.asprintf "Program.make: duplicate label %a" Label.pp b.label);
      Hashtbl.add seen b.label ())
    blocks;
  if not (Hashtbl.mem seen entry) then
    invalid_arg
      (Format.asprintf "Program.make: entry %a not defined" Label.pp entry);
  List.iter
    (fun b ->
      List.iter
        (fun tgt ->
          if not (Hashtbl.mem seen tgt) then
            invalid_arg
              (Format.asprintf "Program.make: undefined target %a in block %a"
                 Label.pp tgt Label.pp b.label))
        (successors b))
    blocks

let make ~entry blocks =
  validate ~entry blocks;
  { entry; blocks }

let find t l = List.find (fun b -> Label.equal b.label l) t.blocks
let mem_label t l = List.exists (fun b -> Label.equal b.label l) t.blocks
let labels t = List.map (fun b -> b.label) t.blocks

let size t =
  List.fold_left (fun acc b -> acc + List.length b.body + 1) 0 t.blocks

let map_blocks f t = make ~entry:t.entry (List.map f t.blocks)

let fold_ops f init t =
  List.fold_left
    (fun acc b -> List.fold_left f acc b.body)
    init t.blocks

let defined_regs t =
  fold_ops
    (fun acc op -> List.fold_left (fun s r -> Reg.Set.add r s) acc (Instr.defs op))
    Reg.Set.empty t

let used_conds t =
  fold_ops
    (fun acc op ->
      match Instr.cond_def op with
      | Some c -> Cond.Set.add c acc
      | None -> acc)
    Cond.Set.empty t

let max_reg t =
  let m = ref (-1) in
  let see r = if Reg.index r > !m then m := Reg.index r in
  List.iter
    (fun b ->
      List.iter
        (fun op ->
          List.iter see (Instr.defs op);
          List.iter see (Instr.uses op))
        b.body)
    t.blocks;
  !m

let max_cond t =
  Cond.Set.fold (fun c m -> max (Cond.index c) m) (used_conds t) (-1)

let pp ppf t =
  Format.fprintf ppf "@[<v>entry %a@," Label.pp t.entry;
  List.iter
    (fun b ->
      Format.fprintf ppf "%a:@," Label.pp b.label;
      List.iter (fun op -> Format.fprintf ppf "  %a@," Instr.pp_op op) b.body;
      Format.fprintf ppf "  %a@," Instr.pp_control b.term)
    t.blocks;
  Format.fprintf ppf "@]"
