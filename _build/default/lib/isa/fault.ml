type t = Mem of Memory.fault | Arith of string

let recoverable = function
  | Mem f -> not (Memory.is_fatal f)
  | Arith _ -> false

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Mem f -> Memory.pp_fault ppf f
  | Arith s -> Format.fprintf ppf "arithmetic fault: %s" s

let to_string t = Format.asprintf "%a" pp t
