(** Instructions of the MIPS-like scalar ISA.

    Straight-line operations ({!op}) are separated from block terminators
    ({!control}); a basic block is a list of operations followed by exactly
    one terminator (see {!Program}). *)

type op =
  | Alu of { op : Opcode.alu; dst : Reg.t; a : Operand.t; b : Operand.t }
  | Mov of { dst : Reg.t; src : Operand.t }
      (** [dst = src]; also serves as load-immediate. *)
  | Load of { dst : Reg.t; base : Reg.t; off : int }
      (** [dst = mem[base + off]]; may fault (unsafe). *)
  | Store of { src : Reg.t; base : Reg.t; off : int }
      (** [mem[base + off] = src]; may fault. *)
  | Cmp of { op : Opcode.cmp; dst : Reg.t; a : Operand.t; b : Operand.t }
      (** Comparison into a general register (0/1), like MIPS [slt]. *)
  | Setc of { dst : Cond.t; op : Opcode.cmp; a : Operand.t; b : Operand.t }
      (** Condition-set instruction, e.g. [c0 = r3 < r4]. Machine-level:
          created by region formation when branches are converted to
          predicates; scalar programs use {!Cmp} + [Br] instead. *)
  | Out of Operand.t
      (** Emit an observable output value (used to compare machine
          semantics); side-effecting, never speculated. *)
  | Nop

type control =
  | Br of { src : Reg.t; if_true : Label.t; if_false : Label.t }
      (** Two-way conditional branch: taken (to [if_true]) iff the register
          is non-zero. *)
  | Jmp of Label.t
  | Halt

val defs : op -> Reg.t list
(** Registers written. *)

val uses : op -> Reg.t list
(** Registers read. *)

val cond_def : op -> Cond.t option
(** The condition register a [Setc] writes. Operations never read
    condition registers directly — conditions are consumed through
    predicates and branch terminators. *)

val is_load : op -> bool
val is_store : op -> bool
val is_memory : op -> bool

val is_unsafe : op -> bool
(** May raise an exception when executed: loads, stores and division. *)

val has_side_effect : op -> bool
(** Irreversible effect beyond a register write: stores and [Out]. *)

val subst_uses : old:Reg.t -> by:Reg.t -> op -> op
(** Replace register [old] with [by] in source operands only. *)

val with_dst : Reg.t -> op -> op
(** Replace the destination register. @raise Invalid_argument if the
    operation has no register destination. *)

val equal_op : op -> op -> bool
val equal_control : control -> control -> bool

val control_targets : control -> Label.t list
val retarget : control -> old:Label.t -> by:Label.t -> control
(** Replace successor label [old] with [by]. *)

val pp_op : Format.formatter -> op -> unit
val pp_control : Format.formatter -> control -> unit
