(** Arithmetic/logic and comparison operators of the MIPS-like ISA. *)

type alu =
  | Add
  | Sub
  | Mul
  | Div  (** integer division; divide by zero is an arithmetic fault *)
  | And
  | Or
  | Xor
  | Sll  (** shift left logical *)
  | Srl  (** shift right logical *)
  | Sra  (** shift right arithmetic *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

exception Arithmetic_fault of string
(** Raised by {!eval_alu} on division by zero. *)

val eval_alu : alu -> int -> int -> int
(** [eval_alu op a b] computes [a op b]. Shifts use [b land 63].
    @raise Arithmetic_fault on division by zero. *)

val eval_cmp : cmp -> int -> int -> bool

val alu_unsafe : alu -> bool
(** [true] when the operation can fault (division). Unsafe operations are
    subject to the speculative-exception machinery. *)

val pp_alu : Format.formatter -> alu -> unit
val pp_cmp : Format.formatter -> cmp -> unit
val equal_alu : alu -> alu -> bool
val equal_cmp : cmp -> cmp -> bool
