type op =
  | Alu of { op : Opcode.alu; dst : Reg.t; a : Operand.t; b : Operand.t }
  | Mov of { dst : Reg.t; src : Operand.t }
  | Load of { dst : Reg.t; base : Reg.t; off : int }
  | Store of { src : Reg.t; base : Reg.t; off : int }
  | Cmp of { op : Opcode.cmp; dst : Reg.t; a : Operand.t; b : Operand.t }
  | Setc of { dst : Cond.t; op : Opcode.cmp; a : Operand.t; b : Operand.t }
  | Out of Operand.t
  | Nop

type control =
  | Br of { src : Reg.t; if_true : Label.t; if_false : Label.t }
  | Jmp of Label.t
  | Halt

let defs = function
  | Alu { dst; _ } | Mov { dst; _ } | Load { dst; _ } | Cmp { dst; _ } ->
      [ dst ]
  | Store _ | Setc _ | Out _ | Nop -> []

let uses = function
  | Alu { a; b; _ } | Cmp { a; b; _ } | Setc { a; b; _ } ->
      Operand.regs a @ Operand.regs b
  | Mov { src; _ } | Out src -> Operand.regs src
  | Load { base; _ } -> [ base ]
  | Store { src; base; _ } -> [ src; base ]
  | Nop -> []

let cond_def = function
  | Setc { dst; _ } -> Some dst
  | Alu _ | Mov _ | Load _ | Store _ | Cmp _ | Out _ | Nop -> None

let is_load = function
  | Load _ -> true
  | Alu _ | Mov _ | Store _ | Cmp _ | Setc _ | Out _ | Nop -> false

let is_store = function
  | Store _ -> true
  | Alu _ | Mov _ | Load _ | Cmp _ | Setc _ | Out _ | Nop -> false

let is_memory op = is_load op || is_store op

let is_unsafe = function
  | Load _ | Store _ -> true
  | Alu { op; _ } -> Opcode.alu_unsafe op
  | Cmp _ | Setc _ | Mov _ | Out _ | Nop -> false

let has_side_effect = function
  | Store _ | Out _ -> true
  | Alu _ | Mov _ | Load _ | Cmp _ | Setc _ | Nop -> false

let subst_uses ~old ~by op =
  let s = Operand.subst old by in
  let sr r = if Reg.equal r old then by else r in
  match op with
  | Alu x -> Alu { x with a = s x.a; b = s x.b }
  | Cmp x -> Cmp { x with a = s x.a; b = s x.b }
  | Mov x -> Mov { x with src = s x.src }
  | Load x -> Load { x with base = sr x.base }
  | Store x -> Store { x with src = sr x.src; base = sr x.base }
  | Setc x -> Setc { x with a = s x.a; b = s x.b }
  | Out o -> Out (s o)
  | Nop -> Nop

let with_dst dst = function
  | Alu x -> Alu { x with dst }
  | Mov x -> Mov { x with dst }
  | Load x -> Load { x with dst }
  | Cmp x -> Cmp { x with dst }
  | Store _ | Setc _ | Out _ | Nop ->
      invalid_arg "Instr.with_dst: operation has no register destination"

let equal_op (a : op) (b : op) = a = b
let equal_control (a : control) (b : control) = a = b

let control_targets = function
  | Br { if_true; if_false; _ } -> [ if_true; if_false ]
  | Jmp l -> [ l ]
  | Halt -> []

let retarget ctrl ~old ~by =
  let r l = if Label.equal l old then by else l in
  match ctrl with
  | Br b -> Br { b with if_true = r b.if_true; if_false = r b.if_false }
  | Jmp l -> Jmp (r l)
  | Halt -> Halt

let pp_op ppf = function
  | Alu { op; dst; a; b } ->
      Format.fprintf ppf "%a = %a %a %a" Reg.pp dst Opcode.pp_alu op Operand.pp
        a Operand.pp b
  | Mov { dst; src } -> Format.fprintf ppf "%a = %a" Reg.pp dst Operand.pp src
  | Load { dst; base; off } ->
      Format.fprintf ppf "%a = load %a+%d" Reg.pp dst Reg.pp base off
  | Store { src; base; off } ->
      Format.fprintf ppf "store %a+%d = %a" Reg.pp base off Reg.pp src
  | Cmp { op; dst; a; b } ->
      Format.fprintf ppf "%a = %a %a %a" Reg.pp dst Operand.pp a Opcode.pp_cmp
        op Operand.pp b
  | Setc { dst; op; a; b } ->
      Format.fprintf ppf "%a = %a %a %a" Cond.pp dst Operand.pp a Opcode.pp_cmp
        op Operand.pp b
  | Out o -> Format.fprintf ppf "out %a" Operand.pp o
  | Nop -> Format.pp_print_string ppf "nop"

let pp_control ppf = function
  | Br { src; if_true; if_false } ->
      Format.fprintf ppf "br %a ? %a : %a" Reg.pp src Label.pp if_true
        Label.pp if_false
  | Jmp l -> Format.fprintf ppf "jmp %a" Label.pp l
  | Halt -> Format.pp_print_string ppf "halt"
