type t = string

let make s =
  if s = "" then invalid_arg "Label.make: empty label";
  s

let name l = l
let equal = String.equal
let compare = String.compare
let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)
