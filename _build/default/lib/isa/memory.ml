type fault = Out_of_bounds of int | Unmapped of int

exception Fault of fault

let page_size = 64

type t = {
  size : int;
  data : (int, int) Hashtbl.t;
  unmapped : (int, unit) Hashtbl.t; (* keyed by page number *)
}

let create ~size = { size; data = Hashtbl.create 256; unmapped = Hashtbl.create 8 }

let create_demand ~size ~unmapped:(lo, hi) =
  let t = create ~size in
  let first = lo / page_size and last = (hi - 1) / page_size in
  for p = first to last do
    Hashtbl.replace t.unmapped p ()
  done;
  t

let check t addr =
  if addr < 0 || addr >= t.size then raise (Fault (Out_of_bounds addr));
  if Hashtbl.mem t.unmapped (addr / page_size) then raise (Fault (Unmapped addr))

let read t addr =
  check t addr;
  Option.value (Hashtbl.find_opt t.data addr) ~default:0

let write t addr v =
  check t addr;
  Hashtbl.replace t.data addr v

let peek t addr = Option.value (Hashtbl.find_opt t.data addr) ~default:0

let poke t addr v =
  Hashtbl.remove t.unmapped (addr / page_size);
  Hashtbl.replace t.data addr v

let probe t addr =
  if addr < 0 || addr >= t.size then Some (Out_of_bounds addr)
  else if Hashtbl.mem t.unmapped (addr / page_size) then Some (Unmapped addr)
  else None

let handle_fault t = function
  | Unmapped addr ->
      Hashtbl.remove t.unmapped (addr / page_size);
      true
  | Out_of_bounds _ -> false

let is_fatal = function Out_of_bounds _ -> true | Unmapped _ -> false
let size t = t.size

let copy t =
  { size = t.size; data = Hashtbl.copy t.data; unmapped = Hashtbl.copy t.unmapped }

let normalized t =
  Hashtbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) t.data []
  |> List.sort compare

let equal a b = a.size = b.size && normalized a = normalized b

let pp_fault ppf = function
  | Out_of_bounds a -> Format.fprintf ppf "out-of-bounds access at %d" a
  | Unmapped a -> Format.fprintf ppf "unmapped page access at %d" a
