(** Bounds-checked word-addressed memory with optional demand-mapped pages.

    Two kinds of faults model the paper's exception taxonomy:
    - {b fatal} faults (out-of-bounds, e.g. a NULL/negative pointer
      dereference): the program cannot continue past them;
    - {b recoverable} faults (access to a demand page that is not yet
      mapped, a stand-in for OS page faults): an exception handler maps the
      page and the access is retried — this is what exercises the paper's
      future-condition recovery, where a committed speculative exception is
      handled and the process restarted. *)

type t

type fault =
  | Out_of_bounds of int  (** fatal *)
  | Unmapped of int  (** recoverable by {!handle_fault} *)

exception Fault of fault

val page_size : int

val create : size:int -> t
(** All addresses [0 .. size-1] mapped. *)

val create_demand : size:int -> unmapped:(int * int) -> t
(** [create_demand ~size ~unmapped:(lo, hi)]: pages intersecting
    [lo .. hi-1] start unmapped and fault until {!handle_fault}. *)

val read : t -> int -> int
(** @raise Fault on a bad or unmapped address. Unwritten mapped words
    read as [0]. *)

val write : t -> int -> int -> unit
(** [write t addr v]. @raise Fault like {!read}. *)

val peek : t -> int -> int
(** Read without fault side conditions (testing/debug only): unmapped or
    out-of-range addresses read as [0]. *)

val poke : t -> int -> int -> unit
(** Backdoor write used to initialise workload data; maps the page. *)

val probe : t -> int -> fault option
(** Check whether an access to [addr] would fault, without performing it
    (used by the store buffer to set flag E on speculative stores whose
    address is known bad). *)

val handle_fault : t -> fault -> bool
(** Simulates the OS handler: maps the faulting page for [Unmapped] and
    returns [true]; returns [false] for fatal faults. *)

val is_fatal : fault -> bool
val size : t -> int
val copy : t -> t
val equal : t -> t -> bool
(** Same size and same contents of mapped words. *)

val pp_fault : Format.formatter -> fault -> unit
