(** Scalar programs: labelled basic blocks with a unique entry. *)

type block = {
  label : Label.t;
  body : Instr.op list;
  term : Instr.control;
}

type t = private { entry : Label.t; blocks : block list }

val block : Label.t -> Instr.op list -> Instr.control -> block

val make : entry:Label.t -> block list -> t
(** Validates that labels are unique, the entry exists, and every branch
    target names a block. @raise Invalid_argument otherwise. *)

val find : t -> Label.t -> block
(** @raise Not_found if no block carries the label. *)

val mem_label : t -> Label.t -> bool
val labels : t -> Label.t list
val size : t -> int
(** Static instruction count, terminators included ("lines" of Table 2). *)

val successors : block -> Label.t list

val map_blocks : (block -> block) -> t -> t
(** @raise Invalid_argument if the result fails validation. *)

val defined_regs : t -> Reg.Set.t
val used_conds : t -> Cond.Set.t
val max_reg : t -> int
(** Highest register index mentioned, [-1] if none — used to allocate fresh
    registers for renaming. *)

val max_cond : t -> int

val pp : Format.formatter -> t -> unit
