(** Instruction source operands: a register or an immediate. *)

type t = Reg of Reg.t | Imm of int

val reg : Reg.t -> t
val imm : int -> t

val regs : t -> Reg.t list
(** The registers read by the operand ([[]] for an immediate). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val subst : Reg.t -> Reg.t -> t -> t
(** [subst old replacement op] replaces register [old] with [replacement]. *)
