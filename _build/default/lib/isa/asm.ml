let print program = Format.asprintf "%a" Program.pp program

exception Parse_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let alu_of_string = function
  | "add" -> Some Opcode.Add
  | "sub" -> Some Opcode.Sub
  | "mul" -> Some Opcode.Mul
  | "div" -> Some Opcode.Div
  | "and" -> Some Opcode.And
  | "or" -> Some Opcode.Or
  | "xor" -> Some Opcode.Xor
  | "sll" -> Some Opcode.Sll
  | "srl" -> Some Opcode.Srl
  | "sra" -> Some Opcode.Sra
  | _ -> None

let cmp_of_string = function
  | "==" -> Some Opcode.Eq
  | "!=" -> Some Opcode.Ne
  | "<" -> Some Opcode.Lt
  | "<=" -> Some Opcode.Le
  | ">" -> Some Opcode.Gt
  | ">=" -> Some Opcode.Ge
  | _ -> None

let parse_reg ln tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (n - 1)) with
    | Some i when i >= 0 -> Reg.make i
    | _ -> fail ln "bad register %S" tok
  else fail ln "expected a register, got %S" tok

let parse_cond ln tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = 'c' then
    match int_of_string_opt (String.sub tok 1 (n - 1)) with
    | Some i when i >= 0 -> Cond.make i
    | _ -> fail ln "bad condition %S" tok
  else fail ln "expected a condition, got %S" tok

let parse_operand ln tok =
  match int_of_string_opt tok with
  | Some i -> Operand.imm i
  | None -> Operand.reg (parse_reg ln tok)

(* "r2+4" or "r2+-4" → (reg, offset) *)
let parse_addr ln tok =
  match String.index_opt tok '+' with
  | None -> fail ln "expected base+offset, got %S" tok
  | Some i ->
      let base = parse_reg ln (String.sub tok 0 i) in
      let off_s = String.sub tok (i + 1) (String.length tok - i - 1) in
      let off =
        match int_of_string_opt off_s with
        | Some o -> o
        | None -> fail ln "bad offset in %S" tok
      in
      (base, off)

let parse_op ln tokens =
  match tokens with
  | [ "nop" ] -> Instr.Nop
  | [ "out"; o ] -> Instr.Out (parse_operand ln o)
  | [ "store"; addr; "="; src ] ->
      let base, off = parse_addr ln addr in
      Instr.Store { src = parse_reg ln src; base; off }
  | [ dst; "="; "load"; addr ] ->
      let base, off = parse_addr ln addr in
      Instr.Load { dst = parse_reg ln dst; base; off }
  | [ dst; "="; a; op; b ] when cmp_of_string op <> None ->
      let op = Option.get (cmp_of_string op) in
      let a = parse_operand ln a and b = parse_operand ln b in
      if String.length dst > 0 && dst.[0] = 'c' then
        Instr.Setc { dst = parse_cond ln dst; op; a; b }
      else Instr.Cmp { dst = parse_reg ln dst; op; a; b }
  | [ dst; "="; op; a; b ] when alu_of_string op <> None ->
      Instr.Alu
        {
          op = Option.get (alu_of_string op);
          dst = parse_reg ln dst;
          a = parse_operand ln a;
          b = parse_operand ln b;
        }
  | [ dst; "="; src ] ->
      Instr.Mov { dst = parse_reg ln dst; src = parse_operand ln src }
  | _ -> fail ln "cannot parse instruction: %s" (String.concat " " tokens)

let parse_term ln tokens =
  match tokens with
  | [ "halt" ] -> Some Instr.Halt
  | [ "jmp"; l ] -> Some (Instr.Jmp (Label.make l))
  | [ "br"; src; "?"; t; ":"; f ] ->
      Some
        (Instr.Br
           {
             src = parse_reg ln src;
             if_true = Label.make t;
             if_false = Label.make f;
           })
  | _ -> None

let tokenize line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse text =
  let lines = String.split_on_char '\n' text in
  try
    let entry = ref None in
    let blocks = ref [] in
    (* current block under construction: (label, rev ops) *)
    let current : (Label.t * Instr.op list) option ref = ref None in
    let finish_block ln term =
      match !current with
      | None -> fail ln "instruction outside any block"
      | Some (label, rev_ops) ->
          blocks := Program.block label (List.rev rev_ops) term :: !blocks;
          current := None
    in
    List.iteri
      (fun idx line ->
        let ln = idx + 1 in
        match tokenize line with
        | [] -> ()
        | [ "entry"; l ] ->
            if !entry <> None then fail ln "duplicate entry declaration";
            entry := Some (Label.make l)
        | [ tok ] when String.length tok > 1 && tok.[String.length tok - 1] = ':'
          ->
            (match !current with
            | Some (label, _) ->
                fail ln "block %s has no terminator" (Label.name label)
            | None -> ());
            current := Some (Label.make (String.sub tok 0 (String.length tok - 1)), [])
        | tokens -> (
            match parse_term ln tokens with
            | Some term -> finish_block ln term
            | None -> (
                let op = parse_op ln tokens in
                match !current with
                | None -> fail ln "instruction outside any block"
                | Some (label, ops) -> current := Some (label, op :: ops))))
      lines;
    (match !current with
    | Some (label, _) ->
        raise (Parse_error (List.length lines, "block " ^ Label.name label ^ " has no terminator"))
    | None -> ());
    match !entry with
    | None -> Error "no entry declaration"
    | Some entry -> (
        match Program.make ~entry (List.rev !blocks) with
        | p -> Ok p
        | exception Invalid_argument m -> Error m)
  with Parse_error (ln, m) -> Error (Format.asprintf "line %d: %s" ln m)

let op_of_string line =
  match parse_op 0 (tokenize line) with
  | op -> Ok op
  | exception Parse_error (_, m) -> Error m

let parse_exn text =
  match parse text with Ok p -> p | Error m -> failwith ("Asm.parse: " ^ m)
