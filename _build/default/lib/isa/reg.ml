type t = int

let make i =
  if i < 0 then invalid_arg "Reg.make: negative index";
  i

let index r = r
let equal = Int.equal
let compare = Int.compare
let hash r = r
let pp ppf r = Format.fprintf ppf "r%d" r
let to_string r = Format.asprintf "%a" pp r

module Set = Set.Make (Int)
module Map = Map.Make (Int)
