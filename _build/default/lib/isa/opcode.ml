type alu = Add | Sub | Mul | Div | And | Or | Xor | Sll | Srl | Sra
type cmp = Eq | Ne | Lt | Le | Gt | Ge

exception Arithmetic_fault of string

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div ->
      if b = 0 then raise (Arithmetic_fault "division by zero");
      a / b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> a lsl (b land 63)
  | Srl -> a lsr (b land 63)
  | Sra -> a asr (b land 63)

let eval_cmp op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let alu_unsafe = function
  | Div -> true
  | Add | Sub | Mul | And | Or | Xor | Sll | Srl | Sra -> false

let pp_alu ppf op =
  let s =
    match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Sll -> "sll"
    | Srl -> "srl"
    | Sra -> "sra"
  in
  Format.pp_print_string ppf s

let pp_cmp ppf op =
  let s =
    match op with
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
  in
  Format.pp_print_string ppf s

let equal_alu (a : alu) b = a = b
let equal_cmp (a : cmp) b = a = b
