(* Future-condition recovery (§3.5), end to end.

   A sentinel-terminated scan reads a control word, post-processes it, and
   only then knows whether the loop continues — so the loop condition
   resolves late. Meanwhile the data load for the same iteration is hoisted
   to the top of the region and executes speculatively; its page is demand
   mapped, so the speculative load *faults*. The fault is buffered with the
   load's predicate (flag E in the shadow entry). When the late condition
   finally commits the load, the machine:

     1. suppresses the CCR update and saves it as the *future condition*,
     2. invalidates all speculative state (precise interrupt point),
     3. rolls back to the region top (the implicit RPC) and re-executes in
        recovery mode: instructions whose predicates are decided under the
        current condition are squashed; the faulting load re-faults and —
        its predicate being true under the future condition — is handled
        for real (the page is mapped in),
     4. on reaching the EPC, copies the future condition into the CCR and
        resumes normal execution.

     dune exec examples/exception_recovery.exe *)

open Psb_isa
open Psb_workloads.Dsl
module Driver = Psb_compiler.Driver
module Model = Psb_compiler.Model
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim

let stride = 70 (* > page size (64): every iteration touches a new page *)
let iters = 8

(* r1 = i, r2 = sum, r20 = control array (mapped), r21 = data (demand). *)
let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (i 0); mov 2 (i 0) ] (jmp "head");
      block "head"
        [
          add 5 (r 20) (r 1);
          load 6 5 0 (* control word *);
          mul 6 (r 6) (i 3);
          sub 6 (r 6) (i 1) (* post-processing delays the condition *);
          cmp 4 Opcode.Gt (r 6) (i 0);
        ]
        (br 4 "body" "done");
      block "body"
        [
          mul 7 (r 1) (i stride);
          add 7 (r 7) (r 21);
          load 3 7 0 (* hoisted data load; faults on unmapped pages *);
          add 2 (r 2) (r 3);
          add 1 (r 1) (i 1);
        ]
        (jmp "head");
      block "done" [ out (r 2) ] halt;
    ]

let make_mem () =
  let mem = Memory.create_demand ~size:2048 ~unmapped:(320, 1024) in
  for k = 0 to iters - 1 do
    Memory.poke mem k (if k = iters - 1 then 0 else 1) (* control sentinel *)
  done;
  for k = 0 to iters - 1 do
    let a = 256 + (k * stride) in
    if Memory.probe mem a = None then Memory.poke mem a (k + 1)
  done;
  mem

let () =
  let regs = [ (reg 20, 0); (reg 21, 256) ] in
  let scalar, profile = Driver.profile_of program ~regs ~mem:(make_mem ()) in
  Format.printf "scalar: %d cycles, %d page faults handled, output %s@."
    scalar.Interp.cycles scalar.Interp.faults_handled
    (String.concat "," (List.map string_of_int scalar.Interp.output));

  let compiled =
    Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
      ~profile program
  in
  let vliw = Driver.run_vliw compiled ~regs ~mem:(make_mem ()) in
  let s = vliw.Vliw_sim.stats in
  Format.printf "vliw:   %d cycles, output %s@." vliw.Vliw_sim.cycles
    (String.concat "," (List.map string_of_int vliw.Vliw_sim.output));
  Format.printf "@.speculative exceptions committed and recovered:@.";
  Format.printf "  page faults handled:   %d (same as scalar: %b)@."
    vliw.Vliw_sim.faults_handled
    (vliw.Vliw_sim.faults_handled = scalar.Interp.faults_handled);
  Format.printf "  recovery episodes:     %d@." s.Vliw_sim.recoveries;
  Format.printf "  cycles in recovery:    %d@." s.Vliw_sim.recovery_cycles;
  Format.printf "  final state identical: %b@."
    (vliw.Vliw_sim.output = scalar.Interp.output);
  assert (vliw.Vliw_sim.output = scalar.Interp.output);
  assert (s.Vliw_sim.recoveries > 0)
