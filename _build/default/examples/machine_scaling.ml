(* Exploring the design space with the public API: how does region
   predicating scale with machine width and speculation depth on one
   workload, and what does the predicating hardware itself cost?
   (A one-workload slice of Figure 8 plus the §4.2.1 cost model.)

     dune exec examples/machine_scaling.exe *)

open Psb_isa
open Psb_workloads
module Driver = Psb_compiler.Driver
module Model = Psb_compiler.Model
module Machine_model = Psb_machine.Machine_model
module Hwcost = Psb_machine.Hwcost

let () =
  let w = Suite.find "eqntott" in
  let scalar, profile =
    Driver.profile_of w.Dsl.program ~regs:w.Dsl.regs ~mem:(w.Dsl.make_mem ())
  in
  Format.printf "workload %s: scalar %d cycles@.@." w.Dsl.name
    scalar.Interp.cycles;
  Format.printf "%8s %8s %10s %10s@." "issue" "conds" "cycles" "speedup";
  List.iter
    (fun issue ->
      List.iter
        (fun conds ->
          let machine = Machine_model.full_issue ~width:issue ~max_spec_conds:conds in
          let compiled =
            Driver.compile ~model:Model.region_pred ~machine ~profile
              w.Dsl.program
          in
          let cycles =
            Driver.estimate_cycles compiled w.Dsl.program
              ~block_trace:scalar.Interp.block_trace
          in
          Format.printf "%8d %8d %10d %9.2fx@." issue conds cycles
            (float_of_int scalar.Interp.cycles /. float_of_int cycles))
        [ 1; 4 ])
    [ 2; 4; 8 ];

  (* What the shadow state costs in silicon (§4.2.1). *)
  Format.printf "@.hardware cost of the predicated register file:@.%a@."
    Hwcost.pp_report
    (Hwcost.analyze Hwcost.default);

  (* And what the single-shadow simplification costs in cycles (fn. 1). *)
  let measure mode single =
    let compiled =
      Driver.compile ~single_shadow:single ~model:Model.region_pred
        ~machine:Machine_model.base ~profile w.Dsl.program
    in
    (Driver.run_vliw ~regfile_mode:mode compiled ~regs:w.Dsl.regs
       ~mem:(w.Dsl.make_mem ()))
      .Psb_machine.Vliw_sim.cycles
  in
  let single = measure Psb_machine.Regfile.Single true in
  let infinite = measure Psb_machine.Regfile.Infinite false in
  Format.printf "@.single shadow: %d cycles, infinite shadows: %d (%.1f%% loss)@."
    single infinite
    (100. *. ((float_of_int single /. float_of_int infinite) -. 1.))
