(* Quickstart: write a small program, run it on the scalar reference
   machine, compile it for the predicating VLIW machine, execute it there,
   and compare.

     dune exec examples/quickstart.exe *)

open Psb_isa
open Psb_workloads.Dsl
module Driver = Psb_compiler.Driver
module Model = Psb_compiler.Model
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim

(* abs-sum: walk an array, accumulate absolute values — a loop with an
   unpredictable sign branch, which is where predication shines. *)
let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (i 0); mov 2 (i 0) ] (jmp "head");
      block "head" [ cmp 5 Opcode.Lt (r 1) (i 64) ] (br 5 "body" "done");
      block "body"
        [ add 6 (r 20) (r 1); load 3 6 0; cmp 5 Opcode.Lt (r 3) (i 0) ]
        (br 5 "neg" "pos");
      block "neg" [ sub 2 (r 2) (r 3) ] (jmp "next");
      block "pos" [ add 2 (r 2) (r 3) ] (jmp "next");
      block "next" [ add 1 (r 1) (i 1) ] (jmp "head");
      block "done" [ out (r 2) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:128 in
  let rand = lcg 11 in
  for k = 0 to 63 do
    Memory.poke mem k ((rand () mod 199) - 99)
  done;
  mem

let () =
  (* 1. Scalar reference run: semantics + cycle oracle + training profile. *)
  let scalar, profile = Driver.profile_of program ~regs:[] ~mem:(make_mem ()) in
  Format.printf "scalar:   %d cycles, output %s@." scalar.Interp.cycles
    (String.concat " " (List.map string_of_int scalar.Interp.output));

  (* 2. Compile for the predicating machine (region predicating model). *)
  let compiled =
    Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
      ~profile program
  in
  Format.printf "compiled: %d regions, %d static slots@."
    (Label.Map.cardinal compiled.Driver.units)
    (Driver.code_size compiled);

  (* 3. Execute the predicated VLIW code on the cycle-level machine. *)
  let vliw = Driver.run_vliw compiled ~regs:[] ~mem:(make_mem ()) in
  Format.printf "vliw:     %d cycles, output %s@." vliw.Vliw_sim.cycles
    (String.concat " " (List.map string_of_int vliw.Vliw_sim.output));
  Format.printf "speedup:  %.2fx  (%d speculative ops, %d commits, %d squashes)@."
    (float_of_int scalar.Interp.cycles /. float_of_int vliw.Vliw_sim.cycles)
    vliw.Vliw_sim.stats.Vliw_sim.spec_ops
    vliw.Vliw_sim.stats.Vliw_sim.commits
    vliw.Vliw_sim.stats.Vliw_sim.squashes;
  assert (vliw.Vliw_sim.output = scalar.Interp.output)
